// Command quality reproduces the match-quality experiments of the
// paper's §4: Figure 10 (lexicon length distributions), Figure 11
// (recall and precision vs. the user match threshold for several
// intra-cluster substitution costs) and Figure 12 (precision-recall
// curves and the best-parameter report).
//
// Usage:
//
//	quality            # all figures
//	quality -fig 11    # one figure
//	quality -clusters coarse -weak 0
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"lexequal/internal/core"
	"lexequal/internal/dataset"
	"lexequal/internal/metrics"
	"lexequal/internal/phoneme"
	"lexequal/internal/ttp"
)

var (
	figFlag      = flag.Int("fig", 0, "figure to reproduce (10, 11 or 12); 0 = all")
	clustersFlag = flag.String("clusters", "default", "phoneme cluster set: default, coarse or fine")
	weakFlag     = flag.Float64("weak", core.DefaultWeakIndel, "weak-phoneme indel discount (0 disables)")
	sourceFlag   = flag.String("source", "all", "name sources: all, indian, american, generic")
)

func main() {
	flag.Parse()
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quality:", err)
		os.Exit(1)
	}
}

func parseSource(s string) (dataset.Source, error) {
	switch strings.ToLower(s) {
	case "all":
		return dataset.SourceAll, nil
	case "indian":
		return dataset.SourceIndian, nil
	case "american":
		return dataset.SourceAmerican, nil
	case "generic":
		return dataset.SourceGeneric, nil
	default:
		return 0, fmt.Errorf("unknown source %q", s)
	}
}

func run() error {
	src, err := parseSource(*sourceFlag)
	if err != nil {
		return err
	}
	clusters, err := phoneme.ByName(*clustersFlag)
	if err != nil {
		return err
	}
	lex, err := dataset.BuildLexicon(ttp.Default(), src)
	if err != nil {
		return err
	}
	op, err := core.New(core.Options{Clusters: clusters})
	if err != nil {
		return err
	}

	fmt.Printf("lexicon: %d strings in %d tag groups (ideal matches: %d)\n\n",
		len(lex.Entries), lex.Groups, lex.IdealMatches())

	if *figFlag == 0 || *figFlag == 10 {
		if err := fig10(lex, op); err != nil {
			return err
		}
	}
	if *figFlag == 0 || *figFlag == 11 || *figFlag == 12 {
		ev, err := metrics.NewEvaluator(lex, op.Registry())
		if err != nil {
			return err
		}
		icscs := []float64{0, 0.25, 0.5, 0.75, 1}
		thresholds := []float64{0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.35, 0.4, 0.45, 0.5, 0.6, 0.8, 1.0}
		fmt.Println("computing all-pairs quality grid (one pass per ICSC)...")
		grid, err := ev.Grid(clusters, *weakFlag, icscs, thresholds)
		if err != nil {
			return err
		}
		fmt.Println()
		if *figFlag == 0 || *figFlag == 11 {
			fig11(grid, icscs, thresholds)
		}
		if *figFlag == 0 || *figFlag == 12 {
			fig12(grid, icscs, thresholds)
		}
	}
	return nil
}

// fig10 prints the length distribution of the lexicon (Figure 10).
func fig10(lex *dataset.Lexicon, op *core.Operator) error {
	lh, ph, err := dataset.Distributions(lex.Entries, op)
	if err != nil {
		return err
	}
	fmt.Println("=== Figure 10: Distribution of Multiscript Lexicon ===")
	fmt.Println("  (paper: avg lexicographic 7.35, avg phonemic 7.16)")
	fmt.Printf("  measured: avg lexicographic %.2f, avg phonemic %.2f, %d strings\n\n",
		lh.Mean(), ph.Mean(), lh.Total)
	fmt.Println("  length  #lexicographic  #phonemic")
	maxLen := 0
	for _, n := range lh.Lengths() {
		if n > maxLen {
			maxLen = n
		}
	}
	for _, n := range ph.Lengths() {
		if n > maxLen {
			maxLen = n
		}
	}
	for n := 1; n <= maxLen; n++ {
		if lh.Counts[n] == 0 && ph.Counts[n] == 0 {
			continue
		}
		fmt.Printf("  %6d  %14d  %9d\n", n, lh.Counts[n], ph.Counts[n])
	}
	fmt.Println()
	return nil
}

// fig11 prints recall and precision against the match threshold, one
// series per ICSC (Figure 11).
func fig11(grid [][]metrics.QualityPoint, icscs, thresholds []float64) {
	fmt.Println("=== Figure 11: Recall and Precision vs User Match Threshold ===")
	header := "  threshold"
	for _, c := range icscs {
		header += fmt.Sprintf("  cost=%-4.2f", c)
	}
	fmt.Println("\n  --- Recall ---")
	fmt.Println(header)
	for ti, thr := range thresholds {
		line := fmt.Sprintf("  %9.2f", thr)
		for ci := range icscs {
			line += fmt.Sprintf("  %9.3f", grid[ci][ti].Recall)
		}
		fmt.Println(line)
	}
	fmt.Println("\n  --- Precision ---")
	fmt.Println(header)
	for ti, thr := range thresholds {
		line := fmt.Sprintf("  %9.2f", thr)
		for ci := range icscs {
			line += fmt.Sprintf("  %9.3f", grid[ci][ti].Precision)
		}
		fmt.Println(line)
	}
	fmt.Println()
	fmt.Println("  paper's qualitative claims to check against the tables above:")
	fmt.Println("   - recall improves with threshold, ~perfect past 0.5")
	fmt.Println("   - recall improves as the intracluster cost drops")
	fmt.Println("   - precision drops with threshold, fastest for cost 0 (Soundex)")
	fmt.Println()
}

// fig12 prints the precision-recall curves and the best operating
// point (Figure 12).
func fig12(grid [][]metrics.QualityPoint, icscs, thresholds []float64) {
	fmt.Println("=== Figure 12: Precision-Recall Curves ===")
	fmt.Println("\n  --- by intracluster substitution cost (series over thresholds) ---")
	for ci, c := range icscs {
		if c != 0 && c != 0.5 && c != 1 {
			continue // the paper plots costs 0, 0.5, 1 for clarity
		}
		fmt.Printf("  cost=%.2f:", c)
		for ti := range thresholds {
			p := grid[ci][ti]
			fmt.Printf(" (R=%.2f,P=%.2f)", p.Recall, p.Precision)
		}
		fmt.Println()
	}
	fmt.Println("\n  --- by threshold (series over costs) ---")
	for ti, thr := range thresholds {
		if thr != 0.2 && thr != 0.3 && thr != 0.4 {
			continue // the paper plots thresholds 0.2, 0.3, 0.4
		}
		fmt.Printf("  threshold=%.2f:", thr)
		for ci := range icscs {
			p := grid[ci][ti]
			fmt.Printf(" (R=%.2f,P=%.2f)", p.Recall, p.Precision)
		}
		fmt.Println()
	}
	best := metrics.Best(grid)
	fmt.Printf("\n  best operating point (closest to the perfect-match corner):\n")
	fmt.Printf("    cost=%.2f threshold=%.2f -> recall %.3f, precision %.3f\n",
		best.ICSC, best.Threshold, best.Recall, best.Precision)
	fmt.Println("  (paper: cost 0.25-0.5 and threshold 0.25-0.35 -> recall ~0.95, precision ~0.85)")
	fmt.Println()
}
