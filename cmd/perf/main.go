// Command perf reproduces the run-time efficiency experiments of the
// paper's §5 over the synthetic 200k-name dataset: Table 1 (native
// exact matching vs the LexEQUAL UDF), Table 2 (q-gram filtering),
// Table 3 (phonetic indexing, with its false-dismissal audit) and
// Figure 13 (the generated set's length distributions).
//
// The interesting outcome is the *shape*: exact ≪ indexed ≪ q-gram ≪
// naive UDF, spanning orders of magnitude, with the phonetic index
// introducing a small percentage of false dismissals. Absolute numbers
// differ from the paper's (compiled Go vs interpreted PL/SQL on 2003
// hardware).
//
// Usage:
//
//	perf -rows 200000            # build (or reuse) data/perf.db and run everything
//	perf -table 3 -queries 50
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"lexequal/internal/core"
	"lexequal/internal/dataset"
	"lexequal/internal/db"
	"lexequal/internal/ttp"
)

var (
	dirFlag       = flag.String("dir", "data", "data directory (perf.db is created inside)")
	rowsFlag      = flag.Int("rows", dataset.DefaultGeneratedSize, "generated dataset size")
	tableFlag     = flag.Int("table", 0, "table to reproduce (1, 2 or 3); 0 = all")
	figFlag       = flag.Int("fig", 0, "figure to reproduce (13); 0 = all")
	queriesFlag   = flag.Int("queries", 20, "number of selection queries to average")
	joinRowsFlag  = flag.Int("joinrows", 1000, "subset size for the join experiments (the paper used a 0.2% subset for the UDF join)")
	thresholdFlag = flag.Float64("threshold", 0.25, "match threshold (the paper's example queries use 0.25)")
	rebuildFlag   = flag.Bool("rebuild", false, "rebuild the database even if present")
)

func main() {
	flag.Parse()
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "perf:", err)
		os.Exit(1)
	}
}

// fixture bundles everything the experiments need.
type fixture struct {
	op      *core.Operator
	d       *db.DB
	cfg     *db.LexConfig
	sub     *db.DB // join subset database
	subCfg  *db.LexConfig
	queries []core.Text
	gen     []dataset.Entry
}

func run() error {
	op, err := core.New(core.Options{})
	if err != nil {
		return err
	}
	lex, err := dataset.BuildLexicon(ttp.Default(), dataset.SourceAll)
	if err != nil {
		return err
	}
	gen := dataset.Generate(lex, *rowsFlag)

	if *figFlag == 0 || *figFlag == 13 {
		if err := fig13(gen, op); err != nil {
			return err
		}
	}
	if *tableFlag < 0 {
		return nil
	}

	fx := &fixture{op: op, gen: gen}
	if err := fx.open(); err != nil {
		return err
	}
	defer fx.close()

	if *tableFlag == 0 || *tableFlag == 1 {
		if err := table1(fx); err != nil {
			return err
		}
	}
	if *tableFlag == 0 || *tableFlag == 2 {
		if err := table2(fx); err != nil {
			return err
		}
	}
	if *tableFlag == 0 || *tableFlag == 3 {
		if err := table3(fx); err != nil {
			return err
		}
	}
	return nil
}

func (fx *fixture) open() error {
	dir := filepath.Join(*dirFlag, fmt.Sprintf("perf-%d.db", *rowsFlag))
	if *rebuildFlag {
		os.RemoveAll(dir)
	}
	texts := make([]core.Text, len(fx.gen))
	for i, e := range fx.gen {
		texts[i] = e.Text
	}
	var err error
	fx.d, fx.cfg, err = openOrBuild(dir, fx.op, texts)
	if err != nil {
		return err
	}
	// Join subset database (the paper's 0.2% subset methodology).
	n := *joinRowsFlag
	if n > len(texts) {
		n = len(texts)
	}
	subDir := filepath.Join(*dirFlag, fmt.Sprintf("perf-%d-join-%d.db", *rowsFlag, n))
	if *rebuildFlag {
		os.RemoveAll(subDir)
	}
	fx.sub, fx.subCfg, err = openOrBuild(subDir, fx.op, texts[:n])
	if err != nil {
		return err
	}
	// Selection queries: spread across the generated set so they hit.
	step := len(texts) / *queriesFlag
	if step == 0 {
		step = 1
	}
	for i := 0; i < len(texts) && len(fx.queries) < *queriesFlag; i += step {
		fx.queries = append(fx.queries, texts[i])
	}
	return nil
}

func openOrBuild(dir string, op *core.Operator, texts []core.Text) (*db.DB, *db.LexConfig, error) {
	d, err := db.Open(dir)
	if err != nil {
		return nil, nil, err
	}
	if _, ok := d.Table("names"); !ok {
		fmt.Printf("loading %d rows into %s (heap + q-grams + indexes)...\n", len(texts), dir)
		start := time.Now()
		if _, err := db.CreateNameTable(d, "names", op, texts, db.NameTableSpec{WithAux: true, WithIndexes: true}); err != nil {
			d.Close()
			return nil, nil, err
		}
		fmt.Printf("  loaded in %v\n\n", time.Since(start))
	}
	cfg, err := db.ResolveLexConfig(d, "names", op)
	if err != nil {
		d.Close()
		return nil, nil, err
	}
	return d, cfg, nil
}

func (fx *fixture) close() {
	fx.d.Close()
	fx.sub.Close()
}

// timeScan averages the latency of running mk(query) over the fixture's
// queries; it returns the mean duration and total result rows.
func timeScan(fx *fixture, mk func(q core.Text) db.Node) (time.Duration, int, error) {
	start := time.Now()
	total := 0
	for _, q := range fx.queries {
		rows, err := db.Collect(mk(q))
		if err != nil {
			return 0, 0, err
		}
		total += len(rows)
	}
	return time.Since(start) / time.Duration(len(fx.queries)), total, nil
}

func table1(fx *fixture) error {
	fmt.Println("=== Table 1: Relative Performance of Approximate Matching ===")
	fmt.Printf("  (paper on 200k rows: exact scan 0.59s; UDF scan 1418s; exact join 0.20s; UDF join 4004s on a 0.2%% subset)\n\n")

	// Exact scan: native equality over a full sequential scan.
	exactScan, _, err := timeScan(fx, func(q core.Text) db.Node {
		return &db.Filter{
			Child: db.NewSeqScan(fx.cfg.Table),
			Pred: &db.Binary{Op: "=",
				L: &db.ColRef{Idx: fx.cfg.NameCol},
				R: &db.Const{V: db.NStr(q.Value, q.Lang)}},
		}
	})
	if err != nil {
		return err
	}
	fmt.Printf("  %-34s %12v per query\n", "Scan, exact (= operator):", exactScan)

	// UDF scan: LexEQUAL on every row.
	udfScan, matches, err := timeScan(fx, func(q core.Text) db.Node {
		return db.NewLexScanNaive(fx.cfg, q, *thresholdFlag, nil)
	})
	if err != nil {
		return err
	}
	fmt.Printf("  %-34s %12v per query  (%d matches over %d queries)\n",
		"Scan, approximate (LexEQUAL UDF):", udfScan, matches, len(fx.queries))
	fmt.Printf("  %-34s %12.1fx\n\n", "UDF/exact scan slowdown:", ratio(udfScan, exactScan))

	// Exact join: hash equi-join over the full table.
	start := time.Now()
	exactRows, err := db.Collect(&db.HashJoin{
		Left:     db.NewSeqScan(fx.cfg.Table),
		Right:    db.NewSeqScan(fx.cfg.Table),
		LeftCol:  fx.cfg.NameCol,
		RightCol: fx.cfg.NameCol,
	})
	if err != nil {
		return err
	}
	exactJoin := time.Since(start)
	fmt.Printf("  %-34s %12v  (%d pairs, full %d rows)\n",
		"Join, exact (= operator):", exactJoin, len(exactRows), fx.cfg.Table.Count())

	// UDF join: nested loop with the UDF, on the subset (per footnote 3).
	start = time.Now()
	udfRows, err := db.Collect(db.NewLexJoin(fx.subCfg, fx.subCfg, *thresholdFlag, false, core.Naive))
	if err != nil {
		return err
	}
	udfJoin := time.Since(start)
	n := int(fx.subCfg.Table.Count())
	full := float64(fx.cfg.Table.Count()) / float64(n)
	fmt.Printf("  %-34s %12v  (%d pairs on a %d-row subset; ~%.0fx that, ≈%v, at full size)\n\n",
		"Join, approximate (LexEQUAL UDF):", udfJoin, len(udfRows), n,
		full*full, time.Duration(float64(udfJoin)*full*full).Round(time.Second))
	return nil
}

func table2(fx *fixture) error {
	fmt.Println("=== Table 2: Q-Gram Filter Performance ===")
	fmt.Printf("  (paper: scan 13.5s — ~100x better than the UDF scan; join 856s — ~5x better)\n\n")

	qgScan, matches, err := timeScan(fx, func(q core.Text) db.Node {
		return db.NewLexScanQGram(fx.cfg, q, *thresholdFlag, nil)
	})
	if err != nil {
		return err
	}
	fmt.Printf("  %-34s %12v per query  (%d matches)\n", "Scan, UDF + q-gram filters:", qgScan, matches)

	start := time.Now()
	qgRows, err := db.Collect(db.NewLexJoin(fx.subCfg, fx.subCfg, *thresholdFlag, false, core.QGram))
	if err != nil {
		return err
	}
	qgJoin := time.Since(start)
	fmt.Printf("  %-34s %12v  (%d pairs on the %d-row subset)\n\n",
		"Join, UDF + q-gram filters:", qgJoin, len(qgRows), fx.subCfg.Table.Count())
	return nil
}

func table3(fx *fixture) error {
	fmt.Println("=== Table 3: Phonetic Index Performance ===")
	fmt.Printf("  (paper: scan 0.71s; join 15.2s; 4-5%% false dismissals)\n\n")

	idxScan, matches, err := timeScan(fx, func(q core.Text) db.Node {
		return db.NewLexScanIndexed(fx.cfg, q, *thresholdFlag, nil)
	})
	if err != nil {
		return err
	}
	fmt.Printf("  %-34s %12v per query  (%d matches)\n", "Scan, UDF + phonetic index:", idxScan, matches)

	start := time.Now()
	idxRows, err := db.Collect(db.NewLexJoin(fx.subCfg, fx.subCfg, *thresholdFlag, false, core.Indexed))
	if err != nil {
		return err
	}
	idxJoin := time.Since(start)
	fmt.Printf("  %-34s %12v  (%d pairs on the %d-row subset)\n",
		"Join, UDF + phonetic index:", idxJoin, len(idxRows), fx.subCfg.Table.Count())

	// False-dismissal audit: indexed vs naive over the same queries, at
	// several thresholds. The index's neighborhood (signature equality)
	// is threshold-independent, so the dismissal rate grows with the
	// threshold: at tight thresholds it is near zero, around 0.1 it
	// lands in the paper's 4-5% regime, and at loose thresholds the UDF
	// admits many signature-distant pairs the index cannot see.
	fmt.Println("\n  False dismissals vs naive (paper reports 4-5%):")
	for _, thr := range []float64{0.05, 0.10, 0.15, *thresholdFlag} {
		naiveTotal, dismissed := 0, 0
		for _, q := range fx.queries {
			naiveRows, err := db.Collect(db.NewLexScanNaive(fx.cfg, q, thr, nil))
			if err != nil {
				return err
			}
			idxRows, err := db.Collect(db.NewLexScanIndexed(fx.cfg, q, thr, nil))
			if err != nil {
				return err
			}
			got := map[int64]bool{}
			for _, r := range idxRows {
				got[r[fx.cfg.IDCol].I] = true
			}
			naiveTotal += len(naiveRows)
			for _, r := range naiveRows {
				if !got[r[fx.cfg.IDCol].I] {
					dismissed++
				}
			}
		}
		rate := 0.0
		if naiveTotal > 0 {
			rate = 100 * float64(dismissed) / float64(naiveTotal)
		}
		fmt.Printf("    threshold %.2f: %4d of %4d (%.1f%%)\n", thr, dismissed, naiveTotal, rate)
	}
	fmt.Println()
	return nil
}

func fig13(gen []dataset.Entry, op *core.Operator) error {
	lh, ph, err := dataset.Distributions(gen, op)
	if err != nil {
		return err
	}
	fmt.Println("=== Figure 13: Distribution of Generated Data Set ===")
	fmt.Println("  (paper: ~200,000 names; avg lexicographic 14.71, avg phonemic 14.31)")
	fmt.Printf("  measured: %d names; avg lexicographic %.2f, avg phonemic %.2f\n\n",
		lh.Total, lh.Mean(), ph.Mean())
	fmt.Println("  length  #lexicographic  #phonemic")
	maxLen := 0
	for _, n := range lh.Lengths() {
		if n > maxLen {
			maxLen = n
		}
	}
	for n := 1; n <= maxLen; n++ {
		if lh.Counts[n] == 0 && ph.Counts[n] == 0 {
			continue
		}
		fmt.Printf("  %6d  %14d  %9d\n", n, lh.Counts[n], ph.Counts[n])
	}
	fmt.Println()
	return nil
}

func ratio(a, b time.Duration) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}
