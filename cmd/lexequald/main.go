// Command lexequald serves a lexequal database over TCP: the SQL
// subset (with the LexEQUAL extensions) behind a length-prefixed frame
// protocol, one session per connection. See DESIGN.md §10.
//
// Usage:
//
//	lexequald -db DIR [-addr HOST:PORT] [-max-conns N]
//	          [-query-timeout D] [-slow-query D] [-group-commit D]
//	          [-checkpoint-interval D] [-repl-retain-segments N]
//	          [-follow HOST:PORT]
//
// With -follow the daemon runs as a read replica (DESIGN.md §16): the
// database directory is opened (or created) in replica mode, a
// continuous apply loop streams the primary's WAL and applies it, and
// every session is read-only — writes are rejected with a redirect to
// the primary. Without -follow the daemon is a primary and serves
// replication streams to any follower that connects.
//
// The bound address is printed as "listening on HOST:PORT" once the
// listener is up (useful with -addr 127.0.0.1:0). If opening the
// database replayed the WAL, the recovery duration and record counts
// are logged so operators can see how far the last checkpoint bounded
// the replay. SIGTERM or SIGINT triggers a graceful drain: in-flight
// statements finish, their responses are delivered, a final checkpoint
// and pager flush run once, and the process exits 0.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"lexequal/internal/db"
	"lexequal/internal/repl"
	"lexequal/internal/server"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "lexequald:", err)
		os.Exit(1)
	}
}

func run() error {
	fs := flag.NewFlagSet("lexequald", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:7045", "TCP listen address (port 0 = OS-assigned)")
	dir := fs.String("db", "lexequal.db", "database directory (created if missing)")
	maxConns := fs.Int("max-conns", 64, "max concurrently served connections")
	queryTimeout := fs.Duration("query-timeout", 30*time.Second, "per-statement deadline (0 = none)")
	slowQuery := fs.Duration("slow-query", time.Second, "slow-query log threshold (0 = off)")
	groupCommit := fs.Duration("group-commit", 0, "WAL group-commit collection window (0 = WAL default)")
	ckptInterval := fs.Duration("checkpoint-interval", 30*time.Second, "background checkpointer poll interval (0 = off)")
	retainSegs := fs.Int("repl-retain-segments", 0, "max live WAL segments follower pins may retain (0 = unlimited)")
	follow := fs.String("follow", "", "run as a read replica of the primary at HOST:PORT")
	fs.Parse(os.Args[1:])

	d, err := db.OpenOpts(*dir, db.Options{Replica: *follow != ""})
	if err != nil {
		return err
	}
	if rs := d.RecoveryStats(); rs.Ran {
		fmt.Printf("recovered in %v: redo floor %d, %d records scanned, %d skipped below floor, %d replayed (%d pages applied)\n",
			rs.Duration, rs.Redo.Floor, rs.Redo.Scanned, rs.Redo.Skipped, rs.Redo.Replayed, rs.Redo.Applied)
	}
	srv, err := server.New(d, nil, server.Config{
		Addr:               *addr,
		MaxConns:           *maxConns,
		QueryTimeout:       *queryTimeout,
		SlowQuery:          *slowQuery,
		GroupCommit:        *groupCommit,
		CheckpointInterval: *ckptInterval,
		ReplRetainSegments: *retainSegs,
	})
	if err != nil {
		d.Close()
		return err
	}
	var follower *repl.Follower
	if *follow != "" {
		follower, err = repl.StartFollower(d, *follow)
		if err != nil {
			d.Close()
			return err
		}
		srv.SetFollower(follower)
		fmt.Printf("following %s from applied lsn %d\n", *follow, d.AppliedLSN())
	}
	if err := srv.Start(); err != nil {
		if follower != nil {
			follower.Stop()
		}
		d.Close()
		return err
	}
	fmt.Printf("listening on %s\n", srv.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, os.Interrupt)
	got := <-sig
	fmt.Printf("received %s, draining\n", got)
	// Stop the apply loop first so no batch lands mid-drain; Shutdown
	// then finishes in-flight statements and flushes the pager exactly
	// once (the database is closed by it, not here).
	if follower != nil {
		follower.Stop()
	}
	return srv.Shutdown()
}
