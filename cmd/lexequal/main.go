// Command lexequal is the command-line face of the library: match two
// multiscript names with full evidence, transcribe text to IPA, compute
// Soundex codes, inspect the phoneme clusters, and run SQL (with the
// LexEQUAL extensions) against an embedded database.
//
// Usage:
//
//	lexequal match [-threshold 0.3] [-lang1 L] [-lang2 L] NAME1 NAME2
//	lexequal phonemes [-lang L] TEXT...
//	lexequal soundex NAME...
//	lexequal clusters [-set default|coarse|fine]
//	lexequal sql -db DIR [STATEMENT]     (no statement: read from stdin)
//	lexequal check DIR                   (verify database integrity)
//	lexequal client -addr HOST:PORT [STATEMENT...]   (talk to lexequald)
package main

import (
	"bufio"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"

	"lexequal"
	"lexequal/internal/phoneme"
	"lexequal/internal/server"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "match":
		err = cmdMatch(os.Args[2:])
	case "phonemes":
		err = cmdPhonemes(os.Args[2:])
	case "soundex":
		err = cmdSoundex(os.Args[2:])
	case "clusters":
		err = cmdClusters(os.Args[2:])
	case "sql":
		err = cmdSQL(os.Args[2:])
	case "check":
		err = cmdCheck(os.Args[2:])
	case "client":
		err = cmdClient(os.Args[2:])
	case "-h", "--help", "help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "lexequal: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "lexequal:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `lexequal — multiscript phonetic matching (LexEQUAL, EDBT 2004)

commands:
  match     match two names across scripts, with evidence
  phonemes  transcribe text to IPA
  soundex   classical Soundex codes
  clusters  show a phoneme cluster partition
  sql       run SQL with the LexEQUAL extensions against a database dir
  check     verify the integrity of a database dir (checksums, structure, indexes; -wal adds the log)
  client    send statements to a running lexequald server
`)
}

func resolveLang(explicit, text string) (lexequal.Language, error) {
	if explicit != "" {
		return parseLang(explicit)
	}
	l := lexequal.GuessLanguage(text)
	if l == "" {
		return l, fmt.Errorf("cannot determine the language of %q; pass -lang", text)
	}
	return l, nil
}

func parseLang(s string) (lexequal.Language, error) {
	switch strings.ToLower(s) {
	case "english", "en":
		return lexequal.English, nil
	case "hindi", "hi":
		return lexequal.Hindi, nil
	case "tamil", "ta":
		return lexequal.Tamil, nil
	case "greek", "el":
		return lexequal.Greek, nil
	case "spanish", "es":
		return lexequal.Spanish, nil
	case "french", "fr":
		return lexequal.French, nil
	default:
		return "", fmt.Errorf("unknown language %q", s)
	}
}

func newMatcher(icsc, weak float64, clusters string, threshold float64) (*lexequal.Matcher, error) {
	cfg := lexequal.Config{Threshold: threshold, Clusters: clusters}
	if icsc >= 0 {
		cfg.ICSC = &icsc
	}
	if weak >= 0 {
		cfg.WeakIndel = &weak
	}
	return lexequal.New(cfg)
}

func cmdMatch(args []string) error {
	fs := flag.NewFlagSet("match", flag.ExitOnError)
	threshold := fs.Float64("threshold", 0.3, "match threshold in [0,1]")
	icsc := fs.Float64("icsc", -1, "intra-cluster substitution cost (-1 = default 0.25)")
	weak := fs.Float64("weak", -1, "weak indel discount (-1 = default 0.5)")
	clusters := fs.String("clusters", "", "cluster set: default, coarse or fine")
	lang1 := fs.String("lang1", "", "language of the first name (default: detect)")
	lang2 := fs.String("lang2", "", "language of the second name (default: detect)")
	fs.Parse(args)
	if fs.NArg() != 2 {
		return fmt.Errorf("match needs exactly two names")
	}
	m, err := newMatcher(*icsc, *weak, *clusters, *threshold)
	if err != nil {
		return err
	}
	l1, err := resolveLang(*lang1, fs.Arg(0))
	if err != nil {
		return err
	}
	l2, err := resolveLang(*lang2, fs.Arg(1))
	if err != nil {
		return err
	}
	ex, err := m.Explain(lexequal.T(fs.Arg(0), l1), lexequal.T(fs.Arg(1), l2), *threshold)
	if err != nil {
		return err
	}
	fmt.Println(ex)
	return nil
}

func cmdPhonemes(args []string) error {
	fs := flag.NewFlagSet("phonemes", flag.ExitOnError)
	lang := fs.String("lang", "", "language (default: detect per argument)")
	fs.Parse(args)
	if fs.NArg() == 0 {
		return fmt.Errorf("phonemes needs at least one text argument")
	}
	m := lexequal.NewDefault()
	for _, text := range fs.Args() {
		l, err := resolveLang(*lang, text)
		if err != nil {
			return err
		}
		ipa, err := m.Phonemes(text, l)
		if err != nil {
			return err
		}
		fmt.Printf("%-20s %-8s /%s/\n", text, l, ipa)
	}
	return nil
}

func cmdSoundex(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("soundex needs at least one name")
	}
	for _, name := range args {
		fmt.Printf("%-20s %s\n", name, lexequal.Soundex(name))
	}
	return nil
}

func cmdClusters(args []string) error {
	fs := flag.NewFlagSet("clusters", flag.ExitOnError)
	set := fs.String("set", "default", "cluster set: default, coarse or fine")
	fs.Parse(args)
	c, err := phoneme.ByName(*set)
	if err != nil {
		return err
	}
	fmt.Print(c.Describe())
	return nil
}

func cmdSQL(args []string) error {
	fs := flag.NewFlagSet("sql", flag.ExitOnError)
	dir := fs.String("db", "lexequal.db", "database directory")
	fs.Parse(args)
	d, err := lexequal.Open(*dir)
	if err != nil {
		return err
	}
	defer d.Close()
	exec := func(stmt string) {
		stmt = strings.TrimSpace(stmt)
		if stmt == "" {
			return
		}
		res, err := d.Exec(stmt)
		if err != nil {
			fmt.Fprintln(os.Stderr, "error:", err)
			return
		}
		fmt.Print(lexequal.Format(res))
	}
	if fs.NArg() > 0 {
		exec(strings.Join(fs.Args(), " "))
		return nil
	}
	// REPL: one statement per line (or ;-separated).
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	interactive := isTerminal()
	if interactive {
		fmt.Println("lexequal sql — enter statements, one per line (ctrl-D to exit)")
	}
	for {
		if interactive {
			fmt.Print("lexequal> ")
		}
		if !sc.Scan() {
			break
		}
		for _, stmt := range strings.Split(sc.Text(), ";") {
			exec(stmt)
		}
	}
	return sc.Err()
}

// cmdClient is the network counterpart of cmdSQL: statements go to a
// running lexequald over the frame protocol (including the STATUS
// admin command). It doubles as the serve-smoke client in CI.
func cmdClient(args []string) error {
	fs := flag.NewFlagSet("client", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:7045", "lexequald address")
	fs.Parse(args)
	c, err := server.Dial(*addr)
	if err != nil {
		return err
	}
	defer c.Close()
	exec := func(stmt string) error {
		stmt = strings.TrimSpace(stmt)
		if stmt == "" {
			return nil
		}
		out, err := c.Query(stmt)
		if err != nil {
			var re *server.RemoteError
			if errors.As(err, &re) {
				fmt.Fprintln(os.Stderr, "error:", re.Msg)
				return nil // statement failed; connection still good
			}
			return err
		}
		fmt.Print(out)
		return nil
	}
	if fs.NArg() > 0 {
		// Each argument is one statement, so shell-quoted statements
		// containing spaces pass through unsplit.
		for _, stmt := range fs.Args() {
			if err := exec(stmt); err != nil {
				return err
			}
		}
		return nil
	}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		for _, stmt := range strings.Split(sc.Text(), ";") {
			if err := exec(stmt); err != nil {
				return err
			}
		}
	}
	return sc.Err()
}

func cmdCheck(args []string) error {
	fs := flag.NewFlagSet("check", flag.ExitOnError)
	wal := fs.Bool("wal", false, "also verify the write-ahead log and its coupling to the data files")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: lexequal check [-wal] DIR")
	}
	dir := fs.Arg(0)
	if _, err := os.Stat(dir); err != nil {
		return err // don't silently create an empty db just to check it
	}
	open := lexequal.Open
	if lexequal.IsReplicaDir(dir) {
		open = lexequal.OpenReplica
	}
	d, err := open(dir)
	if err != nil {
		return fmt.Errorf("open %s: %w", dir, err)
	}
	defer d.Close()
	issues := d.Check()
	if *wal {
		issues = append(issues, d.CheckWAL()...)
	}
	if len(issues) == 0 {
		fmt.Printf("%s: ok (%d tables)\n", dir, len(d.Tables()))
		return nil
	}
	for _, is := range issues {
		fmt.Println(is)
	}
	return fmt.Errorf("%s: %d integrity issue(s)", dir, len(issues))
}

func isTerminal() bool {
	st, err := os.Stdin.Stat()
	return err == nil && st.Mode()&os.ModeCharDevice != 0
}
