// Command lexequallint is the engine-invariant multichecker: it runs
// the internal/analysis suite (pinbalance, vfsonly, corrupterr,
// nopanic, lockcheck) over the named packages and exits non-zero when
// any invariant is violated.
//
// Usage:
//
//	lexequallint [-list] [-only name,name] [packages]
//
// With no package patterns it checks ./... . Findings print as
// file:line:col: message [analyzer]. A finding is suppressed — with a
// mandatory justification — by an adjacent annotation:
//
//	//lint:ignore <analyzer> <reason>
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"lexequal/internal/analysis"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	flag.Parse()

	analyzers := analysis.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *only != "" {
		byName := map[string]*analysis.Analyzer{}
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		analyzers = analyzers[:0]
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "lexequallint: unknown analyzer %q\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.Load(".", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lexequallint: %v\n", err)
		os.Exit(2)
	}
	diags, err := analysis.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lexequallint: %v\n", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "lexequallint: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		os.Exit(1)
	}
}
