// Command lexequallint is the engine-invariant multichecker: it runs
// the internal/analysis suite — the per-package AST tier (vfsonly,
// walonly, corrupterr, nopanic, lockcheck) and the dataflow tier
// (errpath, lockorder) — over the named packages and exits non-zero
// when any invariant is violated.
//
// Usage:
//
//	lexequallint [-list] [-only name,name] [-json] [-graph] [packages]
//
// With no package patterns it checks ./... . Findings print as
// file:line:col: message [analyzer]; -json emits them as a JSON array
// instead (CI archives this artifact). -graph skips the analyzers and
// dumps the program's lock-acquisition-order graph as Graphviz DOT,
// with sanctioned-order violations highlighted. A finding is
// suppressed — with a mandatory justification — by an adjacent
// annotation:
//
//	//lint:ignore <analyzer> <reason>
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"lexequal/internal/analysis"
)

// jsonDiag is the -json wire form of one finding.
type jsonDiag struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Message  string `json:"message"`
}

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	asJSON := flag.Bool("json", false, "emit findings as a JSON array on stdout")
	graph := flag.Bool("graph", false, "dump the lock-acquisition-order graph as Graphviz DOT and exit")
	flag.Parse()

	analyzers := analysis.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *only != "" {
		byName := map[string]*analysis.Analyzer{}
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		analyzers = analyzers[:0]
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "lexequallint: unknown analyzer %q\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.Load(".", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lexequallint: %v\n", err)
		os.Exit(2)
	}

	if *graph {
		prog := analysis.NewProgram(pkgs)
		g := analysis.BuildLockOrder(prog)
		fmt.Print(g.DOT(prog))
		return
	}

	diags, err := analysis.Run(pkgs, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lexequallint: %v\n", err)
		os.Exit(2)
	}
	if *asJSON {
		out := make([]jsonDiag, 0, len(diags))
		for _, d := range diags {
			out = append(out, jsonDiag{
				Analyzer: d.Analyzer,
				File:     d.Pos.Filename,
				Line:     d.Pos.Line,
				Column:   d.Pos.Column,
				Message:  d.Message,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintf(os.Stderr, "lexequallint: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "lexequallint: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		os.Exit(1)
	}
}
