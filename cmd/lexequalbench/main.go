// Command lexequalbench measures the §5-shaped matching workloads
// (naive scan vs q-gram filtering vs phonetic indexing, selections and
// self-joins) serially and on the morsel-driven parallel pipeline, and
// writes a machine-readable report. It is the acceptance harness of the
// parallel pipeline: besides timing, it re-checks that every parallel
// run returns byte-identical results and Stats to the serial run, and
// that the scratch DP kernel is allocation-free in steady state.
//
// Usage:
//
//	lexequalbench                  # default workload, writes BENCH_PR3.json
//	lexequalbench -quick           # small workload for CI smoke runs
//	lexequalbench -rows 10000 -workers 1,2,4 -out bench.json
//
// Speedups are bounded by the machine: the report records GOMAXPROCS
// and NumCPU so a single-core container honestly shows ~1x.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"reflect"
	"runtime"
	"strconv"
	"strings"
	"time"

	"lexequal/internal/core"
	"lexequal/internal/dataset"
	"lexequal/internal/editdist"
	"lexequal/internal/phoneme"
	"lexequal/internal/ttp"
)

var (
	rowsFlag      = flag.Int("rows", 10000, "corpus size for selection workloads")
	joinRowsFlag  = flag.Int("joinrows", 2000, "corpus size for the self-join workloads")
	queriesFlag   = flag.Int("queries", 20, "number of selection queries per measurement")
	workersFlag   = flag.String("workers", "1,2,4", "comma-separated worker counts to measure")
	thresholdFlag = flag.Float64("threshold", 0.25, "match threshold")
	quickFlag     = flag.Bool("quick", false, "small workload for CI smoke runs (overrides -rows/-joinrows/-queries)")
	outFlag       = flag.String("out", "BENCH_PR3.json", "output report path")
)

// Report is the JSON document lexequalbench emits.
type Report struct {
	Bench      string    `json:"bench"`
	Timestamp  time.Time `json:"timestamp"`
	GoMaxProcs int       `json:"gomaxprocs"`
	NumCPU     int       `json:"num_cpu"`
	Rows       int       `json:"rows"`
	JoinRows   int       `json:"join_rows"`
	Queries    int       `json:"queries"`
	Threshold  float64   `json:"threshold"`
	Workers    []int     `json:"workers"`

	Kernel    KernelReport     `json:"kernel"`
	Workloads []WorkloadReport `json:"workloads"`

	// IdenticalAcrossWorkers is the determinism audit: every parallel
	// run's rows/pairs and Stats matched the serial run exactly.
	IdenticalAcrossWorkers bool `json:"identical_across_workers"`
}

// KernelReport measures the bounded-DP scratch kernel in isolation.
type KernelReport struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	CellsPerOp  float64 `json:"cells_per_op"`
}

// WorkloadReport is one (operation, strategy, workers) measurement.
type WorkloadReport struct {
	Op       string  `json:"op"` // "select" or "selfjoin"
	Strategy string  `json:"strategy"`
	Workers  int     `json:"workers"`
	Seconds  float64 `json:"seconds"`
	Matches  int     `json:"matches"`
	Speedup  float64 `json:"speedup_vs_serial"`

	Stats core.Stats `json:"stats"`
}

func main() {
	flag.Parse()
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "lexequalbench:", err)
		os.Exit(1)
	}
}

func parseWorkers(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad -workers element %q", f)
		}
		out = append(out, n)
	}
	if len(out) == 0 || out[0] != 1 {
		out = append([]int{1}, out...) // serial baseline always runs first
	}
	return out, nil
}

func run() error {
	rows, joinRows, queries := *rowsFlag, *joinRowsFlag, *queriesFlag
	if *quickFlag {
		rows, joinRows, queries = 2000, 500, 5
	}
	workers, err := parseWorkers(*workersFlag)
	if err != nil {
		return err
	}

	op, err := core.New(core.Options{})
	if err != nil {
		return err
	}
	lex, err := dataset.BuildLexicon(ttp.Default(), dataset.SourceAll)
	if err != nil {
		return err
	}
	gen := dataset.Generate(lex, rows)
	texts := make([]core.Text, len(gen))
	for i, e := range gen {
		texts[i] = e.Text
	}
	fmt.Printf("building corpora (%d select rows, %d join rows)...\n", rows, joinRows)
	corpus, err := op.NewCorpus(texts)
	if err != nil {
		return err
	}
	jn := joinRows
	if jn > len(texts) {
		jn = len(texts)
	}
	joinCorpus, err := op.NewCorpus(texts[:jn])
	if err != nil {
		return err
	}
	// Selection queries spread across the corpus so they hit.
	var qs []core.Text
	step := len(texts) / queries
	if step == 0 {
		step = 1
	}
	for i := 0; i < len(texts) && len(qs) < queries; i += step {
		qs = append(qs, texts[i])
	}

	rep := &Report{
		Bench:      "lexequal-parallel-pipeline",
		Timestamp:  time.Now().UTC(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Rows:       len(texts),
		JoinRows:   jn,
		Queries:    len(qs),
		Threshold:  *thresholdFlag,
		Workers:    workers,

		Kernel:                 kernelBench(op),
		IdenticalAcrossWorkers: true,
	}

	for _, strat := range []core.Strategy{core.Naive, core.QGram, core.Indexed} {
		// Selections.
		var baseRows [][]int
		var baseStats []core.Stats
		var serial float64
		for _, w := range workers {
			start := time.Now()
			var gotRows [][]int
			var gotStats []core.Stats
			matches := 0
			for _, q := range qs {
				ids, st, err := corpus.Select(q, *thresholdFlag, nil, strat, core.Parallel(w))
				if err != nil {
					return err
				}
				matches += len(ids)
				gotRows = append(gotRows, ids)
				gotStats = append(gotStats, st)
			}
			secs := time.Since(start).Seconds()
			wr := WorkloadReport{Op: "select", Strategy: strat.String(), Workers: w, Seconds: secs, Matches: matches}
			for _, st := range gotStats {
				wr.Stats.Add(st)
			}
			if w == 1 {
				baseRows, baseStats, serial = gotRows, gotStats, secs
			} else if !reflect.DeepEqual(gotRows, baseRows) || !reflect.DeepEqual(gotStats, baseStats) {
				rep.IdenticalAcrossWorkers = false
			}
			if serial > 0 {
				wr.Speedup = serial / secs
			}
			rep.Workloads = append(rep.Workloads, wr)
			fmt.Printf("  select  %-8s workers=%d  %8.3fs  (%d matches, %.2fx)\n",
				strat, w, secs, matches, wr.Speedup)
		}
		// Self-joins.
		var basePairs []core.Pair
		var baseSt core.Stats
		serial = 0
		for _, w := range workers {
			start := time.Now()
			pairs, st, err := core.SelfJoin(joinCorpus, *thresholdFlag, false, strat, core.Parallel(w))
			if err != nil {
				return err
			}
			secs := time.Since(start).Seconds()
			wr := WorkloadReport{Op: "selfjoin", Strategy: strat.String(), Workers: w, Seconds: secs, Matches: len(pairs), Stats: st}
			if w == 1 {
				basePairs, baseSt, serial = pairs, st, secs
			} else if !reflect.DeepEqual(pairs, basePairs) || st != baseSt {
				rep.IdenticalAcrossWorkers = false
			}
			if serial > 0 {
				wr.Speedup = serial / secs
			}
			rep.Workloads = append(rep.Workloads, wr)
			fmt.Printf("  selfjoin %-8s workers=%d  %8.3fs  (%d pairs, %.2fx)\n",
				strat, w, secs, len(pairs), wr.Speedup)
		}
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(*outFlag, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("report written to %s (gomaxprocs=%d, identical_across_workers=%v)\n",
		*outFlag, rep.GoMaxProcs, rep.IdenticalAcrossWorkers)
	if !rep.IdenticalAcrossWorkers {
		return fmt.Errorf("parallel results diverged from serial — determinism contract broken")
	}
	return nil
}

// kernelBench times the allocation-free bounded-DP kernel on a
// representative close pair and audits its steady-state allocations
// directly from the allocator statistics.
func kernelBench(op *core.Operator) KernelReport {
	a := phoneme.MustParse("dʒəʋaːɦərlaːl")
	b := phoneme.MustParse("dʒawɑhɑrlɑl")
	cm := op.Cost()
	bound := 0.25 * float64(len(b))
	s := editdist.NewScratch()
	editdist.DistanceBoundedScratch(a, b, cm, bound, s) // warm the buffers
	s.TakeCells()

	const iters = 20000
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	for i := 0; i < iters; i++ {
		editdist.DistanceBoundedScratch(a, b, cm, bound, s)
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	return KernelReport{
		NsPerOp:     float64(elapsed.Nanoseconds()) / iters,
		AllocsPerOp: float64(after.Mallocs-before.Mallocs) / iters,
		CellsPerOp:  float64(s.TakeCells()) / iters,
	}
}
