// Command lexequalbench measures the §5-shaped matching workloads
// (naive scan vs q-gram filtering vs phonetic indexing, selections and
// self-joins) across the execution grid — serial vs morsel-parallel,
// scalar vs bit-parallel kernel — and writes a machine-readable report.
// It is the acceptance harness of the execution pipeline: besides
// timing, it re-checks that every (kernel, workers) run returns results
// byte-identical to the scalar serial run (raw Stats identical across
// worker counts, kernel-independent Canon Stats identical across
// kernels), and measures the verification kernels in isolation over a
// prefilter-survivor candidate stream.
//
// Usage:
//
//	lexequalbench                  # default workload, writes BENCH_PR8.json
//	lexequalbench -quick           # small workload for CI smoke runs
//	lexequalbench -rows 10000 -workers 1,2,4 -out bench.json
//
// Speedups from parallelism are bounded by the machine: the report
// records GOMAXPROCS, NumCPU, and the effective worker cap, and a
// warning is printed when GOMAXPROCS cannot actually run the requested
// worker counts. Kernel speedups (scalar vs bit-parallel) are
// per-core and do not depend on the processor count.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"reflect"
	"runtime"
	"strconv"
	"strings"
	"time"

	"lexequal/internal/core"
	"lexequal/internal/dataset"
	"lexequal/internal/editdist"
	"lexequal/internal/phoneme"
	"lexequal/internal/ttp"
)

var (
	rowsFlag      = flag.Int("rows", 10000, "corpus size for selection workloads")
	joinRowsFlag  = flag.Int("joinrows", 2000, "corpus size for the self-join workloads")
	queriesFlag   = flag.Int("queries", 20, "number of selection queries per measurement")
	workersFlag   = flag.String("workers", "1,2,4", "comma-separated worker counts to measure")
	thresholdFlag = flag.Float64("threshold", 0.25, "match threshold")
	quickFlag     = flag.Bool("quick", false, "small workload for CI smoke runs (overrides -rows/-joinrows/-queries)")
	outFlag       = flag.String("out", "BENCH_PR8.json", "output report path")
)

// Report is the JSON document lexequalbench emits.
type Report struct {
	Bench      string    `json:"bench"`
	Timestamp  time.Time `json:"timestamp"`
	GoMaxProcs int       `json:"gomaxprocs"`
	NumCPU     int       `json:"num_cpu"`
	// EffectiveWorkerCap is how many of the requested workers can
	// actually run simultaneously: min(GOMAXPROCS, max(workers)).
	// Parallel speedups beyond this cap are not measurable here.
	EffectiveWorkerCap int     `json:"effective_worker_cap"`
	Rows               int     `json:"rows"`
	JoinRows           int     `json:"join_rows"`
	Queries            int     `json:"queries"`
	Threshold          float64 `json:"threshold"`
	Workers            []int   `json:"workers"`

	// Kernels holds the isolated verification-kernel measurements, one
	// per cost model (scalar banded DP vs bit-parallel + fallback over
	// the same prefilter-survivor candidate stream).
	Kernels   []KernelReport   `json:"kernels"`
	Workloads []WorkloadReport `json:"workloads"`

	// IdenticalAcrossWorkers: every parallel run's rows/pairs and raw
	// Stats matched the same-kernel serial run exactly.
	IdenticalAcrossWorkers bool `json:"identical_across_workers"`
	// IdenticalAcrossKernels: every bit-parallel run's rows/pairs and
	// kernel-independent Stats (core.Stats.Canon) matched the scalar
	// run exactly.
	IdenticalAcrossKernels bool `json:"identical_across_kernels"`
}

// KernelReport measures one cost model's verification kernels in
// isolation: the same survivor candidate stream (rows admitted by the
// batched signature prefilter, i.e. what the verify stage actually
// sees) is decided by the scalar banded DP and by the bit-parallel
// kernel with scalar fallback for undecided pairs — exactly the
// pipeline's dispatch.
type KernelReport struct {
	Model      string `json:"model"`
	Queries    int    `json:"queries"`
	Candidates int    `json:"candidates"` // survivor pairs per pass

	ScalarNsPerOp float64 `json:"scalar_ns_per_op"`
	BitvecNsPerOp float64 `json:"bitvec_ns_per_op"`
	Speedup       float64 `json:"speedup"`

	DecidedFrac       float64 `json:"decided_frac"` // pairs the bit-parallel kernel decided outright
	ScalarAllocsPerOp float64 `json:"scalar_allocs_per_op"`
	BitvecAllocsPerOp float64 `json:"bitvec_allocs_per_op"`
	Identical         bool    `json:"identical"` // both kernels agreed on every pair
}

// WorkloadReport is one (operation, strategy, kernel, workers)
// measurement.
type WorkloadReport struct {
	Op       string  `json:"op"` // "select" or "selfjoin"
	Strategy string  `json:"strategy"`
	Kernel   string  `json:"kernel"`
	Workers  int     `json:"workers"`
	Seconds  float64 `json:"seconds"`
	Matches  int     `json:"matches"`
	Speedup  float64 `json:"speedup_vs_serial"` // same-kernel serial baseline

	Stats core.Stats `json:"stats"`
}

func main() {
	flag.Parse()
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "lexequalbench:", err)
		os.Exit(1)
	}
}

func parseWorkers(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad -workers element %q", f)
		}
		out = append(out, n)
	}
	if len(out) == 0 || out[0] != 1 {
		out = append([]int{1}, out...) // serial baseline always runs first
	}
	return out, nil
}

func maxInt(xs []int) int {
	m := 0
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

func run() error {
	rows, joinRows, queries := *rowsFlag, *joinRowsFlag, *queriesFlag
	if *quickFlag {
		rows, joinRows, queries = 2000, 500, 5
	}
	workers, err := parseWorkers(*workersFlag)
	if err != nil {
		return err
	}

	op, err := core.New(core.Options{})
	if err != nil {
		return err
	}
	lex, err := dataset.BuildLexicon(ttp.Default(), dataset.SourceAll)
	if err != nil {
		return err
	}
	gen := dataset.Generate(lex, rows)
	texts := make([]core.Text, len(gen))
	for i, e := range gen {
		texts[i] = e.Text
	}
	fmt.Printf("building corpora (%d select rows, %d join rows)...\n", rows, joinRows)
	corpus, err := op.NewCorpus(texts)
	if err != nil {
		return err
	}
	jn := joinRows
	if jn > len(texts) {
		jn = len(texts)
	}
	joinCorpus, err := op.NewCorpus(texts[:jn])
	if err != nil {
		return err
	}
	// Selection queries spread across the corpus so they hit.
	var qs []core.Text
	step := len(texts) / queries
	if step == 0 {
		step = 1
	}
	for i := 0; i < len(texts) && len(qs) < queries; i += step {
		qs = append(qs, texts[i])
	}

	gmp := runtime.GOMAXPROCS(0)
	cap := gmp
	if m := maxInt(workers); m < cap {
		cap = m
	}
	if gmp < maxInt(workers) {
		fmt.Fprintf(os.Stderr,
			"lexequalbench: warning: GOMAXPROCS=%d < max requested workers=%d — parallel speedups are capped at %dx on this machine\n",
			gmp, maxInt(workers), gmp)
	}

	rep := &Report{
		Bench:              "lexequal-bitparallel-pipeline",
		Timestamp:          time.Now().UTC(),
		GoMaxProcs:         gmp,
		NumCPU:             runtime.NumCPU(),
		EffectiveWorkerCap: cap,
		Rows:               len(texts),
		JoinRows:           jn,
		Queries:            len(qs),
		Threshold:          *thresholdFlag,
		Workers:            workers,

		IdenticalAcrossWorkers: true,
		IdenticalAcrossKernels: true,
	}

	// Isolated kernel measurements: default clustered model and the
	// unit model, over the same survivor candidate stream.
	streams := buildStreams(op, corpus, qs, *thresholdFlag)
	for _, m := range []struct {
		name string
		cm   editdist.CostModel
	}{
		{"clustered-default", op.Cost()},
		{"unit", editdist.Unit{}},
	} {
		kr, err := kernelBench(m.name, m.cm, streams)
		if err != nil {
			return err
		}
		rep.Kernels = append(rep.Kernels, kr)
		fmt.Printf("  kernel  %-18s scalar %8.1f ns/op  bitvec %8.1f ns/op  (%.2fx, %.1f%% decided, identical=%v)\n",
			kr.Model, kr.ScalarNsPerOp, kr.BitvecNsPerOp, kr.Speedup, 100*kr.DecidedFrac, kr.Identical)
		if !kr.Identical {
			rep.IdenticalAcrossKernels = false
		}
	}

	kernels := []core.Kernel{core.KernelScalar, core.KernelBitvec}
	for _, strat := range []core.Strategy{core.Naive, core.QGram, core.Indexed} {
		// Selections: scalar serial is the cross-kernel baseline; each
		// kernel's own serial run is its parallel-speedup baseline.
		var canonRows [][]int
		var canonStats []core.Stats
		for _, kern := range kernels {
			var baseRows [][]int
			var baseStats []core.Stats
			var serial float64
			for _, w := range workers {
				start := time.Now()
				var gotRows [][]int
				var gotStats []core.Stats
				matches := 0
				for _, q := range qs {
					ids, st, err := corpus.Select(q, *thresholdFlag, nil, strat, core.Parallel(w), core.WithKernel(kern))
					if err != nil {
						return err
					}
					matches += len(ids)
					gotRows = append(gotRows, ids)
					gotStats = append(gotStats, st)
				}
				secs := time.Since(start).Seconds()
				wr := WorkloadReport{Op: "select", Strategy: strat.String(), Kernel: kern.String(), Workers: w, Seconds: secs, Matches: matches}
				for _, st := range gotStats {
					wr.Stats.Add(st)
				}
				if w == 1 {
					baseRows, baseStats, serial = gotRows, gotStats, secs
					if kern == core.KernelScalar {
						canonRows, canonStats = gotRows, gotStats
					} else if !reflect.DeepEqual(gotRows, canonRows) || !canonEqual(gotStats, canonStats) {
						rep.IdenticalAcrossKernels = false
					}
				} else if !reflect.DeepEqual(gotRows, baseRows) || !reflect.DeepEqual(gotStats, baseStats) {
					rep.IdenticalAcrossWorkers = false
				}
				if serial > 0 {
					wr.Speedup = serial / secs
				}
				rep.Workloads = append(rep.Workloads, wr)
				fmt.Printf("  select  %-8s kernel=%-6s workers=%d  %8.3fs  (%d matches, %.2fx)\n",
					strat, kern, w, secs, matches, wr.Speedup)
			}
		}
		// Self-joins.
		var canonPairs []core.Pair
		var canonSt core.Stats
		for _, kern := range kernels {
			var basePairs []core.Pair
			var baseSt core.Stats
			var serial float64
			for _, w := range workers {
				start := time.Now()
				pairs, st, err := core.SelfJoin(joinCorpus, *thresholdFlag, false, strat, core.Parallel(w), core.WithKernel(kern))
				if err != nil {
					return err
				}
				secs := time.Since(start).Seconds()
				wr := WorkloadReport{Op: "selfjoin", Strategy: strat.String(), Kernel: kern.String(), Workers: w, Seconds: secs, Matches: len(pairs), Stats: st}
				if w == 1 {
					basePairs, baseSt, serial = pairs, st, secs
					if kern == core.KernelScalar {
						canonPairs, canonSt = pairs, st
					} else if !reflect.DeepEqual(pairs, canonPairs) || st.Canon() != canonSt.Canon() {
						rep.IdenticalAcrossKernels = false
					}
				} else if !reflect.DeepEqual(pairs, basePairs) || st != baseSt {
					rep.IdenticalAcrossWorkers = false
				}
				if serial > 0 {
					wr.Speedup = serial / secs
				}
				rep.Workloads = append(rep.Workloads, wr)
				fmt.Printf("  selfjoin %-8s kernel=%-6s workers=%d  %8.3fs  (%d pairs, %.2fx)\n",
					strat, kern, w, secs, len(pairs), wr.Speedup)
			}
		}
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(*outFlag, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("report written to %s (gomaxprocs=%d, identical_across_workers=%v, identical_across_kernels=%v)\n",
		*outFlag, rep.GoMaxProcs, rep.IdenticalAcrossWorkers, rep.IdenticalAcrossKernels)
	if !rep.IdenticalAcrossWorkers {
		return fmt.Errorf("parallel results diverged from serial — determinism contract broken")
	}
	if !rep.IdenticalAcrossKernels {
		return fmt.Errorf("bit-parallel results diverged from scalar — kernel equivalence contract broken")
	}
	return nil
}

// canonEqual compares per-query Stats lists under the kernel-
// independent Canon view.
func canonEqual(a, b []core.Stats) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Canon() != b[i].Canon() {
			return false
		}
	}
	return true
}

// kernelStream is one query pattern plus its prefilter-survivor
// candidates and their per-pair bounds.
type kernelStream struct {
	qp     phoneme.String
	cands  []phoneme.String
	bounds []float64
}

// buildStreams materializes the verify-survivor workload: for each
// query, the corpus rows the batched signature prefilter admits — the
// candidate mix the verification kernel actually sees in the pipeline.
func buildStreams(op *core.Operator, c *core.Corpus, qs []core.Text, threshold float64) []kernelStream {
	phons := make([]phoneme.String, c.Len())
	for i := range phons {
		phons[i] = c.Phonemes(i)
	}
	batch := op.BuildBatch(phons, core.KernelAuto, core.DefaultQ)
	var streams []kernelStream
	for _, q := range qs {
		qp, err := op.TransformText(q)
		if err != nil || len(qp) == 0 {
			continue
		}
		sf := op.NewSigFilter(qp, threshold, core.DefaultQ)
		var st core.Stats
		ks := kernelStream{qp: qp}
		for i := range phons {
			if len(phons[i]) == 0 || !sf.Admit(batch, i, &st) {
				continue
			}
			smaller := len(qp)
			if len(phons[i]) < smaller {
				smaller = len(phons[i])
			}
			ks.cands = append(ks.cands, phons[i])
			ks.bounds = append(ks.bounds, threshold*float64(smaller))
		}
		if len(ks.cands) > 0 {
			streams = append(streams, ks)
		}
	}
	return streams
}

// kernelBench times both verification kernels over the survivor
// streams: the scalar pass runs the banded DP per pair; the bit-
// parallel pass prepares the pattern once per stream (as the pipeline
// does once per query) and Decides per pair, falling back to the
// scalar DP for undecided pairs. Both passes are audited for agreement
// on every pair and for steady-state allocations.
func kernelBench(name string, cm editdist.CostModel, streams []kernelStream) (KernelReport, error) {
	rep := KernelReport{Model: name, Queries: len(streams), Identical: true}
	bv, ok := editdist.NewBitvec(cm)
	if !ok {
		return rep, fmt.Errorf("cost model %s does not bit-parallelize", name)
	}
	total := 0
	for _, s := range streams {
		total += len(s.cands)
	}
	rep.Candidates = total
	if total == 0 {
		return rep, fmt.Errorf("empty survivor stream — nothing to measure")
	}
	iters := 1 + 400000/total

	// Per-candidate kernel columns, computed once (the pipeline builds
	// them once per batch).
	sigs := make([][]uint64, len(streams))
	weaks := make([][]int, len(streams))
	for si, s := range streams {
		sigs[si] = make([]uint64, len(s.cands))
		weaks[si] = make([]int, len(s.cands))
		for ci, cand := range s.cands {
			sigs[si][ci] = bv.CandSig(cand)
			weaks[si][ci] = editdist.WeakCount(cand)
		}
	}

	// Scalar pass (records the reference outcomes on the first lap).
	matched := make([][]bool, len(streams))
	for si, s := range streams {
		matched[si] = make([]bool, len(s.cands))
	}
	scratch := editdist.NewScratch()
	for si, s := range streams { // warm the scratch buffers
		for ci := range s.cands {
			_, matched[si][ci] = editdist.DistanceBoundedScratch(s.qp, s.cands[ci], cm, s.bounds[ci], scratch)
		}
	}
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	for it := 0; it < iters; it++ {
		for si := range streams {
			s := &streams[si]
			for ci := range s.cands {
				editdist.DistanceBoundedScratch(s.qp, s.cands[ci], cm, s.bounds[ci], scratch)
			}
		}
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	ops := float64(iters) * float64(total)
	rep.ScalarNsPerOp = float64(elapsed.Nanoseconds()) / ops
	rep.ScalarAllocsPerOp = float64(after.Mallocs-before.Mallocs) / ops

	// Bit-parallel pass with scalar fallback, agreement audit on the
	// first lap.
	decided := 0
	for si := range streams {
		s := &streams[si]
		prepared := bv.Prepare(s.qp)
		for ci := range s.cands {
			m, dec := false, false
			if prepared {
				var d bool
				m, d, _ = bv.Decide(s.cands[ci], weaks[si][ci], sigs[si][ci], s.bounds[ci])
				dec = d
			}
			if !dec {
				_, m = editdist.DistanceBoundedScratch(s.qp, s.cands[ci], cm, s.bounds[ci], scratch)
			} else {
				decided++
			}
			if m != matched[si][ci] {
				rep.Identical = false
			}
		}
	}
	rep.DecidedFrac = float64(decided) / float64(total)
	runtime.GC()
	runtime.ReadMemStats(&before)
	start = time.Now()
	for it := 0; it < iters; it++ {
		for si := range streams {
			s := &streams[si]
			prepared := bv.Prepare(s.qp)
			for ci := range s.cands {
				dec := false
				if prepared {
					_, dec, _ = bv.Decide(s.cands[ci], weaks[si][ci], sigs[si][ci], s.bounds[ci])
				}
				if !dec {
					editdist.DistanceBoundedScratch(s.qp, s.cands[ci], cm, s.bounds[ci], scratch)
				}
			}
		}
	}
	elapsed = time.Since(start)
	runtime.ReadMemStats(&after)
	rep.BitvecNsPerOp = float64(elapsed.Nanoseconds()) / ops
	rep.BitvecAllocsPerOp = float64(after.Mallocs-before.Mallocs) / ops
	if rep.BitvecNsPerOp > 0 {
		rep.Speedup = rep.ScalarNsPerOp / rep.BitvecNsPerOp
	}
	return rep, nil
}
