// Command mkdataset builds the paper's two evaluation datasets: the
// tagged multiscript lexicon (§4.1) written as a TSV, and the large
// synthetic set (§5) loaded into an embedded database directory with
// the auxiliary q-gram table and the phonetic index, ready for
// cmd/perf.
//
// Usage:
//
//	mkdataset -out data -rows 200000
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"lexequal/internal/core"
	"lexequal/internal/dataset"
	"lexequal/internal/db"
	"lexequal/internal/ttp"
)

func main() {
	var (
		out     = flag.String("out", "data", "output directory")
		rows    = flag.Int("rows", dataset.DefaultGeneratedSize, "size of the generated performance dataset")
		noPerf  = flag.Bool("skip-perf", false, "only write the lexicon, skip the database load")
		quality = flag.Bool("quality-db", false, "also load the (small) lexicon itself as a database table")
	)
	flag.Parse()

	if err := run(*out, *rows, !*noPerf, *quality); err != nil {
		fmt.Fprintln(os.Stderr, "mkdataset:", err)
		os.Exit(1)
	}
}

func run(out string, rows int, perf, quality bool) error {
	if err := os.MkdirAll(out, 0o755); err != nil {
		return err
	}
	op, err := core.New(core.Options{})
	if err != nil {
		return err
	}

	fmt.Println("building tagged multiscript lexicon...")
	lex, err := dataset.BuildLexicon(ttp.Default(), dataset.SourceAll)
	if err != nil {
		return err
	}
	lh, ph, err := dataset.Distributions(lex.Entries, op)
	if err != nil {
		return err
	}
	fmt.Printf("  %d entries in %d tag groups; avg lengths %.2f (lexicographic) / %.2f (phonemic)\n",
		len(lex.Entries), lex.Groups, lh.Mean(), ph.Mean())

	lexPath := filepath.Join(out, "lexicon.tsv")
	if err := writeLexicon(lexPath, lex, op); err != nil {
		return err
	}
	fmt.Println("  wrote", lexPath)

	if quality {
		dir := filepath.Join(out, "lexicon.db")
		fmt.Println("loading lexicon database at", dir, "...")
		if err := loadDB(dir, op, lex.Texts()); err != nil {
			return err
		}
	}

	if perf {
		fmt.Printf("generating %d-row synthetic dataset...\n", rows)
		gen := dataset.Generate(lex, rows)
		glh, gph, err := dataset.Distributions(gen, op)
		if err != nil {
			return err
		}
		fmt.Printf("  %d entries; avg lengths %.2f (lexicographic) / %.2f (phonemic)\n",
			len(gen), glh.Mean(), gph.Mean())
		dir := filepath.Join(out, "perf.db")
		fmt.Println("loading performance database at", dir, "(heap + q-grams + indexes)...")
		start := time.Now()
		texts := make([]core.Text, len(gen))
		for i, e := range gen {
			texts[i] = e.Text
		}
		if err := loadDB(dir, op, texts); err != nil {
			return err
		}
		fmt.Printf("  loaded in %v\n", time.Since(start))
	}
	return nil
}

func writeLexicon(path string, lex *dataset.Lexicon, op *core.Operator) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := fmt.Fprintln(f, "tag\tlanguage\tname\tipa"); err != nil {
		return err
	}
	for _, e := range lex.Entries {
		p, err := op.Transform(e.Text.Value, e.Text.Lang)
		if err != nil {
			return err
		}
		if _, err := fmt.Fprintf(f, "%d\t%s\t%s\t%s\n", e.Tag, e.Text.Lang, e.Text.Value, p.IPA()); err != nil {
			return err
		}
	}
	return nil
}

func loadDB(dir string, op *core.Operator, texts []core.Text) error {
	// Atomic: the load runs in a staging directory and is renamed into
	// place, so an interrupted mkdataset never leaves a half-built
	// database where cmd/perf would look for one.
	return db.BuildAtomic(dir, db.Options{}, func(d *db.DB) error {
		_, err := db.CreateNameTable(d, "names", op, texts, db.NameTableSpec{WithAux: true, WithIndexes: true})
		return err
	})
}
