#!/bin/sh
# repl_smoke.sh — end-to-end smoke of WAL-shipping replication
# (make repl-smoke): start a primary lexequald, seed it over the wire,
# start a follower lexequald replicating from it, wait for catch-up,
# require byte-identical query answers on both, a rejected write at the
# replica, repl lines in STATUS on both roles, a follower restart that
# resumes without a resync, and clean drains all around.
set -eu

tmp=$(mktemp -d)
cleanup() {
    [ -n "${fpid:-}" ] && kill "$fpid" 2>/dev/null || true
    [ -n "${ppid:-}" ] && kill "$ppid" 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

go build -o "$tmp/bin/" ./cmd/lexequald ./cmd/lexequal

# wait_addr LOGFILE PIDVAR -> prints the bound address
wait_addr() {
    log=$1; spid=$2; addr=
    i=0
    while [ $i -lt 100 ]; do
        addr=$(sed -n 's/^listening on //p' "$log")
        [ -n "$addr" ] && { echo "$addr"; return 0; }
        kill -0 "$spid" 2>/dev/null || { echo "repl-smoke: server died: $(cat "$log")" >&2; return 1; }
        sleep 0.1
        i=$((i + 1))
    done
    echo "repl-smoke: server never reported an address" >&2
    return 1
}

"$tmp/bin/lexequald" -db "$tmp/primary" -addr 127.0.0.1:0 >"$tmp/primary.log" 2>&1 &
ppid=$!
paddr=$(wait_addr "$tmp/primary.log" "$ppid")
echo "repl-smoke: primary at $paddr"

pclient() { "$tmp/bin/lexequal" client -addr "$paddr" "$@"; }

pclient \
    "CREATE TABLE Books (Author NVARCHAR, Title NVARCHAR, Price FLOAT)" \
    "INSERT INTO Books VALUES ('Nehru' LANG english, 'Discovery of India', 9.95), ('नेहरु' LANG hindi, 'भारत एक खोज', 175)" \
    >"$tmp/setup.out"

"$tmp/bin/lexequald" -db "$tmp/replica" -addr 127.0.0.1:0 -follow "$paddr" >"$tmp/replica.log" 2>&1 &
fpid=$!
raddr=$(wait_addr "$tmp/replica.log" "$fpid")
echo "repl-smoke: replica at $raddr"
grep -q "following" "$tmp/replica.log" || { echo "repl-smoke: replica not following:"; cat "$tmp/replica.log"; exit 1; }

rclient() { "$tmp/bin/lexequal" client -addr "$raddr" "$@"; }

# Wait for catch-up: the replica's STATUS lag must reach 0.
i=0
while [ $i -lt 100 ]; do
    rclient STATUS >"$tmp/rstatus.out" 2>/dev/null || true
    grep -q "repl: role=follower" "$tmp/rstatus.out" && grep -q "lag=0" "$tmp/rstatus.out" && break
    sleep 0.1
    i=$((i + 1))
done
grep -q "lag=0" "$tmp/rstatus.out" || { echo "repl-smoke: replica never caught up:"; cat "$tmp/rstatus.out"; exit 1; }

q="SELECT Author FROM Books WHERE Author LEXEQUAL 'Nehru' THRESHOLD 0.30 ORDER BY Author"
pclient "$q" >"$tmp/p.out"
rclient "$q" >"$tmp/r.out"
cmp -s "$tmp/p.out" "$tmp/r.out" || {
    echo "repl-smoke: replica answer diverges:"; diff "$tmp/p.out" "$tmp/r.out" || true; exit 1; }
grep -q "नेहरु" "$tmp/r.out" || { echo "repl-smoke: replica lost the Hindi match"; cat "$tmp/r.out"; exit 1; }

# Writes must be refused at the replica with a clear error.
rclient "INSERT INTO Books VALUES ('X' LANG english, 'Y', 1.0)" 2>"$tmp/w.err" || true
grep -q "read-only replica" "$tmp/w.err" || { echo "repl-smoke: replica write not refused:"; cat "$tmp/w.err"; exit 1; }

# The primary's STATUS must list its follower.
pclient STATUS >"$tmp/pstatus.out"
grep -q "repl: role=primary followers=1" "$tmp/pstatus.out" || {
    echo "repl-smoke: primary STATUS lacks the follower:"; cat "$tmp/pstatus.out"; exit 1; }

# Kill the follower, write more, restart it: it must resume (no
# resync) and converge.
kill -TERM "$fpid"; wait "$fpid" || true; fpid=
pclient "INSERT INTO Books VALUES ('Gandhi' LANG english, 'My Experiments with Truth', 12.0)" >/dev/null
"$tmp/bin/lexequald" -db "$tmp/replica" -addr 127.0.0.1:0 -follow "$paddr" >"$tmp/replica2.log" 2>&1 &
fpid=$!
raddr=$(wait_addr "$tmp/replica2.log" "$fpid")
sed -n 's/^following .* from applied lsn \([0-9]*\)$/\1/p' "$tmp/replica2.log" | grep -qv '^0$' || {
    echo "repl-smoke: restarted follower lost its applied LSN:"; cat "$tmp/replica2.log"; exit 1; }
i=0
while [ $i -lt 100 ]; do
    rclient "SELECT COUNT(*) FROM Books" >"$tmp/count.out" 2>/dev/null || true
    grep -q "3" "$tmp/count.out" && break
    sleep 0.1
    i=$((i + 1))
done
grep -q "3" "$tmp/count.out" || { echo "repl-smoke: restarted replica never converged"; cat "$tmp/count.out"; exit 1; }
grep -q "resync" "$tmp/replica2.log" && { echo "repl-smoke: restart demanded a resync:"; cat "$tmp/replica2.log"; exit 1; }

# Graceful drains: follower first, then primary, both exit 0.
kill -TERM "$fpid"
rc=0; wait "$fpid" || rc=$?; fpid=
[ "$rc" -eq 0 ] || { echo "repl-smoke: follower drain exited $rc:"; cat "$tmp/replica2.log"; exit 1; }
kill -TERM "$ppid"
rc=0; wait "$ppid" || rc=$?; ppid=
[ "$rc" -eq 0 ] || { echo "repl-smoke: primary drain exited $rc:"; cat "$tmp/primary.log"; exit 1; }

echo "repl-smoke: ok"
