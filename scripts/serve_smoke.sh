#!/bin/sh
# serve_smoke.sh — end-to-end smoke of the serving layer (make serve-smoke):
# build lexequald + the client, start a server on an OS-assigned port,
# run a small mixed workload (DDL, DML, LexEQUAL select, STATUS, and a
# SET that must be rejected), then SIGTERM and require a clean exit 0
# with the graceful-drain message.
set -eu

tmp=$(mktemp -d)
cleanup() {
    [ -n "${pid:-}" ] && kill "$pid" 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

go build -o "$tmp/bin/" ./cmd/lexequald ./cmd/lexequal

"$tmp/bin/lexequald" -db "$tmp/db" -addr 127.0.0.1:0 >"$tmp/server.log" 2>&1 &
pid=$!

# Wait for the bound address to appear in the log.
addr=
i=0
while [ $i -lt 100 ]; do
    addr=$(sed -n 's/^listening on //p' "$tmp/server.log")
    [ -n "$addr" ] && break
    kill -0 "$pid" 2>/dev/null || { echo "serve-smoke: server died:"; cat "$tmp/server.log"; exit 1; }
    sleep 0.1
    i=$((i + 1))
done
[ -n "$addr" ] || { echo "serve-smoke: server never reported an address"; exit 1; }
echo "serve-smoke: server at $addr"

client() { "$tmp/bin/lexequal" client -addr "$addr" "$@"; }

client \
    "CREATE TABLE Books (Author NVARCHAR, Title NVARCHAR, Price FLOAT)" \
    "INSERT INTO Books VALUES ('Nehru' LANG english, 'Discovery of India', 9.95), ('नेहरु' LANG hindi, 'भारत एक खोज', 175)" \
    >"$tmp/setup.out"

client "SELECT Author FROM Books WHERE Author LEXEQUAL 'Nehru' THRESHOLD 0.30 ORDER BY Author" \
    >"$tmp/select.out"
grep -q "Nehru" "$tmp/select.out" || { echo "serve-smoke: LexEQUAL select lost Nehru"; cat "$tmp/select.out"; exit 1; }
grep -q "नेहरु" "$tmp/select.out" || { echo "serve-smoke: LexEQUAL select lost the Hindi match"; cat "$tmp/select.out"; exit 1; }

client STATUS >"$tmp/status.out"
grep -q "conns: active=1" "$tmp/status.out" || { echo "serve-smoke: STATUS wrong:"; cat "$tmp/status.out"; exit 1; }

# A non-finite cost parameter must be rejected server-side, and the
# client must report it without dropping the connection.
client "SET lexequal_icsc = NaN" "SELECT COUNT(*) FROM Books" >"$tmp/set.out" 2>"$tmp/set.err"
grep -q "\[0,1\]" "$tmp/set.err" || { echo "serve-smoke: NaN SET not rejected"; cat "$tmp/set.err"; exit 1; }
grep -q "2" "$tmp/set.out" || { echo "serve-smoke: connection unusable after rejected SET"; cat "$tmp/set.out"; exit 1; }

# Graceful drain: SIGTERM must exit 0.
kill -TERM "$pid"
rc=0
wait "$pid" || rc=$?
pid=
[ "$rc" -eq 0 ] || { echo "serve-smoke: drain exited $rc:"; cat "$tmp/server.log"; exit 1; }
grep -q "draining" "$tmp/server.log" || { echo "serve-smoke: no drain message:"; cat "$tmp/server.log"; exit 1; }

echo "serve-smoke: ok"
