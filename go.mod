module lexequal

go 1.22
