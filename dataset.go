package lexequal

import (
	"lexequal/internal/dataset"
	"lexequal/internal/metrics"
	"lexequal/internal/phoneme"
	"lexequal/internal/ttp"
)

// TaggedText is a lexicon entry with its ground-truth tag: two entries
// name the same sound exactly when their tags agree.
type TaggedText struct {
	Text
	Tag int
}

// PaperLexicon reconstructs the paper's tagged multiscript evaluation
// lexicon (§4.1): roughly a thousand base names — Indian, American, and
// generic (places/objects/chemicals) — each present in English, Hindi
// and Tamil under a common tag.
func PaperLexicon() ([]TaggedText, error) {
	lex, err := dataset.BuildLexicon(ttp.Default(), dataset.SourceAll)
	if err != nil {
		return nil, err
	}
	out := make([]TaggedText, len(lex.Entries))
	for i, e := range lex.Entries {
		out[i] = TaggedText{Text: e.Text, Tag: e.Tag}
	}
	return out, nil
}

// QualityPoint reports the match quality of one parameter setting on a
// tagged lexicon, using the paper's §4.2 methodology (recall =
// m1/ΣC(ni,2), precision = m1/m2 over the all-pairs matching).
type QualityPoint = metrics.QualityPoint

// SuggestParameters grid-searches the intra-cluster substitution cost
// and the match threshold on a tagged training set and returns the
// operating point closest to perfect recall and precision — the
// automatic parameter derivation the paper lists as future work (§6).
func SuggestParameters(entries []TaggedText) (QualityPoint, error) {
	lex := &dataset.Lexicon{}
	sizes := map[int]int{}
	maxTag := -1
	for _, e := range entries {
		lex.Entries = append(lex.Entries, dataset.Entry{Text: e.Text, Tag: e.Tag})
		sizes[e.Tag]++
		if e.Tag > maxTag {
			maxTag = e.Tag
		}
	}
	lex.Groups = maxTag + 1
	lex.GroupSizes = make([]int, lex.Groups)
	for tag, n := range sizes {
		lex.GroupSizes[tag] = n
	}
	return metrics.SuggestParameters(lex, nil, phoneme.DefaultClusters())
}

// EvaluateQuality computes recall and precision on a tagged lexicon for
// one explicit (ICSC, threshold) setting.
func EvaluateQuality(entries []TaggedText, icsc, threshold float64) (QualityPoint, error) {
	lex := &dataset.Lexicon{}
	sizes := map[int]int{}
	maxTag := -1
	for _, e := range entries {
		lex.Entries = append(lex.Entries, dataset.Entry{Text: e.Text, Tag: e.Tag})
		sizes[e.Tag]++
		if e.Tag > maxTag {
			maxTag = e.Tag
		}
	}
	lex.Groups = maxTag + 1
	lex.GroupSizes = make([]int, lex.Groups)
	for tag, n := range sizes {
		lex.GroupSizes[tag] = n
	}
	ev, err := metrics.NewEvaluator(lex, nil)
	if err != nil {
		return QualityPoint{}, err
	}
	pts, err := ev.SweepClustered(phoneme.DefaultClusters(), icsc, 0.5, []float64{threshold})
	if err != nil {
		return QualityPoint{}, err
	}
	return pts[0], nil
}
