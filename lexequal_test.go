package lexequal

import (
	"strings"
	"testing"
)

func TestNewDefault(t *testing.T) {
	m := NewDefault()
	if m.Threshold() != 0.30 {
		t.Errorf("default threshold = %v", m.Threshold())
	}
	if len(m.Languages()) != 6 {
		t.Errorf("languages = %v", m.Languages())
	}
}

func TestConfigValidation(t *testing.T) {
	bad := 2.0
	if _, err := New(Config{ICSC: &bad}); err == nil {
		t.Error("ICSC=2 accepted")
	}
	if _, err := New(Config{Clusters: "bogus"}); err == nil {
		t.Error("bogus clusters accepted")
	}
	zero := 0.0
	m, err := New(Config{ICSC: &zero, WeakIndel: &zero})
	if err != nil || m == nil {
		t.Errorf("explicit zeros rejected: %v", err)
	}
}

func TestMatcherHeadline(t *testing.T) {
	m := NewDefault()
	names := []Text{
		T("Nehru", English), T("नेहरु", Hindi), T("நேரு", Tamil), T("Νερου", Greek),
	}
	for _, a := range names {
		for _, b := range names {
			res, err := m.Match(a, b)
			if err != nil || res != True {
				ex, _ := m.Explain(a, b, -1)
				t.Errorf("%v vs %v = %v, %v\n%v", a, b, res, err, ex)
			}
		}
	}
	res, err := m.Match(T("Nehru", English), T("Gandhi", English))
	if err != nil || res != False {
		t.Errorf("Nehru/Gandhi = %v, %v", res, err)
	}
	res, err = m.Match(T("Nehru", English), T("بهنسي", Arabic))
	if err != nil || res != NoResource {
		t.Errorf("Arabic = %v, %v", res, err)
	}
}

func TestMatcherPhonemes(t *testing.T) {
	m := NewDefault()
	p, err := m.Phonemes("Nehru", English)
	if err != nil || p != "neːru" {
		t.Errorf("Phonemes = %q, %v", p, err)
	}
	if _, err := m.Phonemes("x", Arabic); err == nil {
		t.Error("Arabic transcription succeeded")
	}
}

func TestGuessLanguage(t *testing.T) {
	if GuessLanguage("नेहरु") != Hindi || GuessLanguage("Nehru") != English {
		t.Error("GuessLanguage wrong")
	}
}

func TestSoundexFacade(t *testing.T) {
	if Soundex("Nehru") != "N600" {
		t.Errorf("Soundex = %q", Soundex("Nehru"))
	}
}

func TestCorpusFacade(t *testing.T) {
	m := NewDefault()
	c, err := m.NewCorpus([]Text{
		T("Nehru", English), T("नेहरु", Hindi), T("Gandhi", English), T("காந்தி", Tamil),
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, strat := range []Strategy{Naive, QGram, Indexed} {
		got, st, err := m.Select(c, T("Nehru", English), 0.3, nil, strat)
		if err != nil {
			t.Fatalf("%v: %v", strat, err)
		}
		if strat != Indexed && len(got) != 2 {
			t.Errorf("%v select = %v (stats %+v)", strat, got, st)
		}
	}
	// Language-filtered select.
	got, _, err := m.Select(c, T("Nehru", English), 0.3, NewLangSet(Hindi), Naive)
	if err != nil || len(got) != 1 || got[0] != 1 {
		t.Errorf("filtered select = %v, %v", got, err)
	}
	// Join.
	pairs, _, err := SelfJoin(c, 0.3, true, Naive)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, p := range pairs {
		if p.Left == 2 && p.Right == 3 {
			found = true
		}
	}
	if !found {
		t.Errorf("join missing Gandhi pair: %v", pairs)
	}
}

func TestDBFacade(t *testing.T) {
	d, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	d.MustExec(`CREATE TABLE Books (Author NVARCHAR, Title NVARCHAR, Price FLOAT)`)
	d.MustExec(`INSERT INTO Books VALUES
		('Nehru' LANG english, 'Discovery of India', 9.95),
		('नेहरु' LANG hindi, 'भारत एक खोज', 175),
		('Nero' LANG english, 'The Coronation of the Virgin', 99)`)
	res := d.MustExec(`SELECT Author, Title FROM Books WHERE Author LEXEQUAL 'Nehru' THRESHOLD 0.2`)
	authors := map[string]bool{}
	for _, r := range res.Rows {
		authors[r[0].S] = true
	}
	if !authors["Nehru"] || !authors["नेहरु"] {
		t.Fatalf("rows = %v", res.Rows)
	}
	// At a tight threshold the Nero near-homophone must drop out (the
	// paper's threshold-dependent false-positive example).
	tight := d.MustExec(`SELECT Author FROM Books WHERE Author LEXEQUAL 'Nehru' THRESHOLD 0.05`)
	for _, r := range tight.Rows {
		if r[0].S == "Nero" {
			t.Error("Nero matched at threshold 0.05")
		}
	}
	if got := d.Tables(); len(got) != 1 || got[0] != "Books" {
		t.Errorf("Tables = %v", got)
	}
	out := Format(res)
	if !strings.Contains(out, "Nehru") || !strings.Contains(out, "नेहरु") {
		t.Errorf("Format output:\n%s", out)
	}
}

func TestDBLoadNames(t *testing.T) {
	d, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	texts := []Text{
		T("Nehru", English), T("नेहरु", Hindi), T("Gandhi", English),
	}
	if err := d.LoadNames("names", texts, NameTableSpec{WithAux: true, WithIndexes: true}); err != nil {
		t.Fatal(err)
	}
	d.MustExec(`SET lexequal_strategy = indexed`)
	res := d.MustExec(`SELECT id FROM names WHERE name LEXEQUAL 'Nehru' THRESHOLD 0.1`)
	if len(res.Rows) == 0 {
		t.Error("indexed SQL select found nothing")
	}
}

func TestFormatMessageOnly(t *testing.T) {
	if got := Format(&QueryResult{Message: "ok"}); got != "ok\n" {
		t.Errorf("Format message = %q", got)
	}
	if Format(nil) != "" {
		t.Error("Format(nil) non-empty")
	}
}

func TestPaperLexiconFacade(t *testing.T) {
	entries, err := PaperLexicon()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) < 2000 {
		t.Fatalf("lexicon has %d entries", len(entries))
	}
	langs := map[Language]bool{}
	for _, e := range entries {
		langs[e.Lang] = true
	}
	for _, want := range []Language{English, Hindi, Tamil} {
		if !langs[want] {
			t.Errorf("lexicon missing %v entries", want)
		}
	}
}

func TestSuggestAndEvaluateQuality(t *testing.T) {
	// A small hand-tagged training set.
	entries := []TaggedText{
		{Text: T("Nehru", English), Tag: 0},
		{Text: T("नेहरु", Hindi), Tag: 0},
		{Text: T("நேரு", Tamil), Tag: 0},
		{Text: T("Gandhi", English), Tag: 1},
		{Text: T("गांधी", Hindi), Tag: 1},
		{Text: T("காந்தி", Tamil), Tag: 1},
		{Text: T("Kamala", English), Tag: 2},
		{Text: T("कमला", Hindi), Tag: 2},
		{Text: T("கமலா", Tamil), Tag: 2},
	}
	best, err := SuggestParameters(entries)
	if err != nil {
		t.Fatal(err)
	}
	if best.Recall < 0.8 || best.Precision < 0.8 {
		t.Errorf("suggested point weak: %+v", best)
	}
	pt, err := EvaluateQuality(entries, best.ICSC, best.Threshold)
	if err != nil {
		t.Fatal(err)
	}
	if pt.Recall != best.Recall || pt.Precision != best.Precision {
		t.Errorf("EvaluateQuality(%v,%v) = %+v, suggest said %+v", best.ICSC, best.Threshold, pt, best)
	}
}

func TestMetricIndexFacade(t *testing.T) {
	m := NewDefault()
	c, err := m.NewCorpus([]Text{
		T("Nehru", English), T("नेहरु", Hindi), T("Gandhi", English),
	})
	if err != nil {
		t.Fatal(err)
	}
	mi := NewMetricIndex(c)
	rows, _, err := SelectMetric(c, mi, T("Nehru", English), 0.3, nil)
	if err != nil || len(rows) != 2 {
		t.Errorf("metric select = %v, %v", rows, err)
	}
}

func TestSQLDeleteThroughFacade(t *testing.T) {
	d, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	d.MustExec(`CREATE TABLE t (x INT)`)
	d.MustExec(`INSERT INTO t VALUES (1), (2), (3)`)
	res := d.MustExec(`DELETE FROM t WHERE x >= 2`)
	if res.Affected != 2 {
		t.Errorf("deleted %d", res.Affected)
	}
	left := d.MustExec(`SELECT COUNT(*) FROM t`)
	if left.Rows[0][0].I != 1 {
		t.Errorf("remaining = %v", left.Rows)
	}
}
