# Developer entry points. `make ci` is what a pipeline should run:
# static checks (go vet plus the engine-invariant lint suite), build,
# the full test suite under the race detector, and a short smoke run of
# each fuzz target.

GO      ?= go
FUZZTIME ?= 10s

.PHONY: all build vet lint lint-json lockgraph test race fuzz-smoke bench bench-smoke serve-smoke repl-smoke crash-smoke mvcc-smoke ci clean

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# The custom go/analysis suite (DESIGN.md §8, §13): the per-package AST
# tier (VFS-only I/O, wrap-tolerant error matching, no panics in
# library code, lock hygiene) plus the dataflow tier (errpath resource
# leaks on error paths, lockorder cycle/tier analysis). Exits non-zero
# on any finding, including stale //lint:ignore annotations.
lint:
	$(GO) run ./cmd/lexequallint ./...

# Same suite, findings as a JSON array in results/lexequallint.json (CI
# archives it). The exit status of the lint run is preserved.
lint-json:
	@mkdir -p results
	@$(GO) run ./cmd/lexequallint -json ./... > results/lexequallint.json; \
	status=$$?; cat results/lexequallint.json; exit $$status

# Dump the interprocedural lock-acquisition-order graph (DESIGN.md §13)
# as Graphviz DOT, tier inversions highlighted in red.
lockgraph:
	@mkdir -p results
	$(GO) run ./cmd/lexequallint -graph ./... > results/lockorder.dot
	@echo "wrote results/lockorder.dot"

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Full run of the §5 workload benchmark (DESIGN.md §9, §14). Writes
# BENCH_PR8.json with per-kernel (scalar vs bit-parallel) ns/op and
# fails if any parallel run diverges from serial or any bitvec result
# diverges from scalar.
bench:
	$(GO) run ./cmd/lexequalbench -out BENCH_PR8.json

# Shortened benchmark run. The binary exits non-zero unless results are
# identical across every (kernel, workers) pair, so this target is the
# bitvec/scalar identity assertion in the CI gate.
bench-smoke:
	@mkdir -p results
	$(GO) run ./cmd/lexequalbench -quick -out results/BENCH_smoke.json

# Run each native fuzz target briefly; a regression in either parser
# robustness, TTP conversion, or WAL replay shows up here before a long
# fuzz run.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzSQLParse -fuzztime $(FUZZTIME) ./internal/sql/
	$(GO) test -run '^$$' -fuzz FuzzTTPConvert -fuzztime $(FUZZTIME) ./internal/ttp/
	$(GO) test -run '^$$' -fuzz FuzzWALReplay -fuzztime $(FUZZTIME) ./internal/wal/
	$(GO) test -run '^$$' -fuzz FuzzKernelEquivalence -fuzztime $(FUZZTIME) ./internal/editdist/

# End-to-end smoke of lexequald (DESIGN.md §10): spawn a server, run a
# mixed workload through the network client, SIGTERM, require a clean
# drain with exit 0.
serve-smoke:
	sh scripts/serve_smoke.sh

# End-to-end smoke of WAL-shipping replication (DESIGN.md §16): a
# primary and a follower lexequald over the wire, catch-up to lag=0,
# byte-identical answers, rejected replica writes, repl STATUS lines on
# both roles, and a follower restart that resumes without a resync.
repl-smoke:
	sh scripts/repl_smoke.sh

# The crash-torture sweep (DESIGN.md §11): kill the WAL workload at
# every write and sync point, recover, verify. Runs the full sweep (no
# -short stride) plus the recovery-idempotency properties — including
# the concurrent-writer sweep, which kills interleaved MVCC
# transactions mid-flight and demands per-transaction all-or-nothing.
crash-smoke:
	$(GO) test -run 'CrashTorture|RecoveryIdempotent|CrashDuringRecovery|BoundedRecovery|CheckpointENOSPC' -count=1 ./internal/db/
	$(GO) test -run 'GroupCommit|Checkpoint' -count=1 ./internal/server/

# The MVCC concurrency gate (DESIGN.md §15), under the race detector:
# the 8-client mixed read/write soak, the reader-never-blocks and
# conflict-retry contracts at the SQL layer, and the randomized
# serial-equivalence property at the db layer.
mvcc-smoke:
	$(GO) test -race -count=1 -run 'TestMVCCSmoke|TestSelectNeverBlocksBehindWriter|TestWriteWriteConflictAbortsAndRetries' ./internal/sql/
	$(GO) test -race -count=1 -run 'TestMVCC' ./internal/db/

ci: vet build lint race fuzz-smoke serve-smoke repl-smoke crash-smoke mvcc-smoke bench-smoke

clean:
	$(GO) clean ./...
