# Developer entry points. `make ci` is what a pipeline should run:
# static checks, build, the full test suite under the race detector,
# and a short smoke run of each fuzz target.

GO      ?= go
FUZZTIME ?= 10s

.PHONY: all build vet test race fuzz-smoke ci clean

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Run each native fuzz target briefly; a regression in either parser
# robustness or TTP conversion shows up here before a long fuzz run.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzSQLParse -fuzztime $(FUZZTIME) ./internal/sql/
	$(GO) test -run '^$$' -fuzz FuzzTTPConvert -fuzztime $(FUZZTIME) ./internal/ttp/

ci: vet build race fuzz-smoke

clean:
	$(GO) clean ./...
