// Package frame implements the length-prefixed wire framing shared by
// the lexequald query protocol (internal/server) and the WAL-shipping
// replication stream (internal/repl): every message, in both
// directions, is one frame —
//
//	uint32 big-endian payload length | payload bytes
//
// The framing carries no semantics of its own; each protocol defines
// its payload format on top.
package frame

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// MaxFrame bounds a single frame; larger requests or responses are
// rejected rather than buffered. Replication batches size themselves
// well below it.
const MaxFrame = 1 << 20

// Write sends one length-prefixed frame.
func Write(w io.Writer, payload []byte) error {
	if len(payload) > MaxFrame {
		return fmt.Errorf("frame: frame of %d bytes exceeds limit %d", len(payload), MaxFrame)
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// Read reads one length-prefixed frame.
func Read(r *bufio.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return nil, fmt.Errorf("frame: frame of %d bytes exceeds limit %d", n, MaxFrame)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	return payload, nil
}
