// Package phoneme defines the phonemic alphabet used by the LexEQUAL
// operator: an inventory of IPA phonemes annotated with articulatory
// features, parsing of IPA text into phoneme strings, feature-based
// similarity, and the multilingual phoneme clustering that underlies the
// clustered edit distance and the phonetic index of the paper.
//
// Phonemes are small integer handles into a fixed inventory. A phoneme
// string (type String) is the unit of comparison everywhere else in the
// system: Text-To-Phoneme converters produce them, the edit-distance
// kernel consumes them, and the phonetic index is keyed by their cluster
// projection.
package phoneme

import (
	"fmt"
	"sort"
	"strings"
	"unicode/utf8"
)

// Phoneme is a handle into the global inventory. The zero value is
// invalid and never produced by Parse or Lookup.
type Phoneme uint8

// Invalid is the zero Phoneme; it is not part of the inventory.
const Invalid Phoneme = 0

// Class partitions the inventory into consonants and vowels.
type Class uint8

// Phoneme classes.
const (
	Consonant Class = iota + 1
	Vowel
)

func (c Class) String() string {
	switch c {
	case Consonant:
		return "consonant"
	case Vowel:
		return "vowel"
	default:
		return fmt.Sprintf("Class(%d)", uint8(c))
	}
}

// Manner of articulation for consonants.
type Manner uint8

// Consonant manners.
const (
	Plosive Manner = iota + 1
	Nasal
	Trill
	Tap
	Fricative
	Affricate
	Approximant
	Lateral
)

func (m Manner) String() string {
	names := [...]string{"", "plosive", "nasal", "trill", "tap", "fricative", "affricate", "approximant", "lateral"}
	if int(m) < len(names) && m > 0 {
		return names[m]
	}
	return fmt.Sprintf("Manner(%d)", uint8(m))
}

// Place of articulation for consonants.
type Place uint8

// Consonant places.
const (
	Bilabial Place = iota + 1
	Labiodental
	Dental
	Alveolar
	PostAlveolar
	Retroflex
	Palatal
	Velar
	LabioVelar
	Uvular
	Glottal
)

func (p Place) String() string {
	names := [...]string{"", "bilabial", "labiodental", "dental", "alveolar", "postalveolar", "retroflex", "palatal", "velar", "labiovelar", "uvular", "glottal"}
	if int(p) < len(names) && p > 0 {
		return names[p]
	}
	return fmt.Sprintf("Place(%d)", uint8(p))
}

// Height is vowel height (close = high, open = low).
type Height uint8

// Vowel heights.
const (
	Close Height = iota + 1
	NearClose
	CloseMid
	Mid
	OpenMid
	NearOpen
	Open
)

// Backness is vowel backness.
type Backness uint8

// Vowel backness values.
const (
	Front Backness = iota + 1
	Central
	Back
)

// Features is the articulatory feature bundle of a phoneme. Consonants
// use Manner/Place/Voiced/Aspirated; vowels use Height/Backness/Rounded.
// Long and Nasalized apply to vowels (length marks ː, nasal tilde).
type Features struct {
	Class     Class
	Manner    Manner
	Place     Place
	Voiced    bool
	Aspirated bool
	Height    Height
	Backness  Backness
	Rounded   bool
	Long      bool
	Nasalized bool
}

// info is one inventory entry.
type info struct {
	ipa string
	f   Features
}

// inventory holds every phoneme; index 0 is a sentinel for Invalid.
var inventory = []info{{}}

// byIPA maps the IPA spelling of each phoneme to its handle.
var byIPA = map[string]Phoneme{}

// maxSymbolLen is the longest IPA spelling in bytes (for the
// longest-match tokenizer).
var maxSymbolLen int

func register(ipa string, f Features) Phoneme {
	if _, dup := byIPA[ipa]; dup {
		panic("phoneme: duplicate inventory entry " + ipa)
	}
	if len(inventory) > 255 {
		panic("phoneme: inventory overflow")
	}
	p := Phoneme(len(inventory))
	inventory = append(inventory, info{ipa: ipa, f: f})
	byIPA[ipa] = p
	if len(ipa) > maxSymbolLen {
		maxSymbolLen = len(ipa)
	}
	return p
}

// alias registers an alternative spelling for an existing phoneme, so
// that Parse accepts it; the canonical spelling is unchanged.
func alias(spelling, canonical string) {
	p, ok := byIPA[canonical]
	if !ok {
		panic("phoneme: alias target unknown: " + canonical)
	}
	if _, dup := byIPA[spelling]; dup {
		panic("phoneme: duplicate alias " + spelling)
	}
	byIPA[spelling] = p
	if len(spelling) > maxSymbolLen {
		maxSymbolLen = len(spelling)
	}
}

// Lookup returns the phoneme whose IPA spelling is exactly ipa.
func Lookup(ipa string) (Phoneme, bool) {
	p, ok := byIPA[ipa]
	return p, ok
}

// MustLookup is Lookup that panics on unknown spellings. It is intended
// for compile-time-constant tables (TTP rules, cluster definitions).
func MustLookup(ipa string) Phoneme {
	p, ok := byIPA[ipa]
	if !ok {
		panic("phoneme: unknown IPA symbol " + ipa)
	}
	return p
}

// Count reports the number of phonemes in the inventory.
func Count() int { return len(inventory) - 1 }

// All returns every phoneme in the inventory, in registration order.
func All() []Phoneme {
	ps := make([]Phoneme, 0, Count())
	for i := 1; i < len(inventory); i++ {
		ps = append(ps, Phoneme(i))
	}
	return ps
}

// Valid reports whether p is a live inventory handle.
func (p Phoneme) Valid() bool { return p != Invalid && int(p) < len(inventory) }

// IPA returns the canonical IPA spelling of p.
func (p Phoneme) IPA() string {
	if !p.Valid() {
		return "�"
	}
	return inventory[p].ipa
}

// Features returns the articulatory features of p.
func (p Phoneme) Features() Features {
	if !p.Valid() {
		return Features{}
	}
	return inventory[p].f
}

// IsVowel reports whether p is a vowel.
func (p Phoneme) IsVowel() bool { return p.Features().Class == Vowel }

// IsConsonant reports whether p is a consonant.
func (p Phoneme) IsConsonant() bool { return p.Features().Class == Consonant }

func (p Phoneme) String() string { return p.IPA() }

// String is a phoneme string: the phonemic transcription of one name.
type String []Phoneme

// IPA renders s in IPA orthography.
func (s String) IPA() string {
	var b strings.Builder
	for _, p := range s {
		b.WriteString(p.IPA())
	}
	return b.String()
}

func (s String) String() string { return s.IPA() }

// Equal reports element-wise equality.
func (s String) Equal(t String) bool {
	if len(s) != len(t) {
		return false
	}
	for i := range s {
		if s[i] != t[i] {
			return false
		}
	}
	return true
}

// Clone returns an independent copy of s.
func (s String) Clone() String {
	t := make(String, len(s))
	copy(t, s)
	return t
}

// Compare orders phoneme strings lexicographically by handle, giving a
// stable (if linguistically arbitrary) total order used for sorting.
func (s String) Compare(t String) int {
	n := len(s)
	if len(t) < n {
		n = len(t)
	}
	for i := 0; i < n; i++ {
		if s[i] != t[i] {
			if s[i] < t[i] {
				return -1
			}
			return 1
		}
	}
	switch {
	case len(s) < len(t):
		return -1
	case len(s) > len(t):
		return 1
	default:
		return 0
	}
}

// Parse tokenizes IPA text into a phoneme string using longest-match
// against the inventory. Suprasegmentals and unknown marks listed in
// ignorable (stress marks, syllable dots, tie bars) are skipped; any
// other unknown rune is an error.
func Parse(ipa string) (String, error) {
	s, bad := parse(ipa)
	if bad != "" {
		return nil, fmt.Errorf("phoneme: unknown IPA symbol %q in %q", bad, ipa)
	}
	return s, nil
}

// ParseLenient tokenizes like Parse but silently drops unknown symbols.
// The paper strips speech-generation marks (suprasegmentals, diacritics,
// tones, accents) from converter output; ParseLenient implements that
// cleanup for foreign transcriptions.
func ParseLenient(ipa string) String {
	s, _ := parse(ipa)
	return s
}

// MustParse is Parse that panics on error, for constant tables.
func MustParse(ipa string) String {
	s, err := Parse(ipa)
	if err != nil {
		panic(err)
	}
	return s
}

// ignorable are IPA marks that carry no phonemic content for matching:
// primary/secondary stress, syllable break, tie bars, length-neutral
// separators and whitespace.
var ignorable = map[rune]bool{
	'ˈ': true, 'ˌ': true, '.': true, '‿': true, '͡': true, '͜': true,
	' ': true, '\t': true, '-': true, '\'': true,
}

func parse(ipa string) (String, string) {
	var out String
	var firstBad string
	for i := 0; i < len(ipa); {
		// Longest match against the inventory.
		end := i + maxSymbolLen
		if end > len(ipa) {
			end = len(ipa)
		}
		matched := false
		for j := end; j > i; j-- {
			if p, ok := byIPA[ipa[i:j]]; ok {
				// Prefer extending with a length/nasal mark handled by
				// the inventory itself (long vowels are distinct entries),
				// so plain longest-match suffices.
				out = append(out, p)
				i = j
				matched = true
				break
			}
		}
		if matched {
			continue
		}
		r, size := utf8.DecodeRuneInString(ipa[i:])
		if !ignorable[r] && firstBad == "" {
			firstBad = string(r)
		}
		i += size
	}
	return out, firstBad
}

// Inventory returns the IPA spellings of all registered phonemes in a
// deterministic order, for diagnostics.
func Inventory() []string {
	out := make([]string, 0, Count())
	for i := 1; i < len(inventory); i++ {
		out = append(out, inventory[i].ipa)
	}
	sort.Strings(out)
	return out
}
