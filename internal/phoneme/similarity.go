package phoneme

// Similarity returns a feature-based similarity between two phonemes in
// [0,1]: 1 for identical phonemes, 0 for a consonant/vowel mismatch, and
// a weighted feature agreement otherwise. The weights reflect perceptual
// salience (manner and height dominate; aspiration, length and
// nasalization are minor). The clustered cost model of the paper is a
// hard quantization of this measure; Similarity itself backs the
// feature-cost ablation and is useful for auditing cluster quality.
func Similarity(a, b Phoneme) float64 {
	if a == b {
		return 1
	}
	fa, fb := a.Features(), b.Features()
	if fa.Class != fb.Class || fa.Class == 0 {
		return 0
	}
	if fa.Class == Consonant {
		s := 0.0
		if fa.Manner == fb.Manner {
			s += 0.40
		} else if affinity(fa.Manner, fb.Manner) {
			s += 0.20
		}
		if fa.Place == fb.Place {
			s += 0.30
		} else if neighboringPlace(fa.Place, fb.Place) {
			s += 0.15
		}
		if fa.Voiced == fb.Voiced {
			s += 0.20
		}
		if fa.Aspirated == fb.Aspirated {
			s += 0.10
		}
		return s
	}
	// Vowels.
	s := 0.0
	dh := int(fa.Height) - int(fb.Height)
	if dh < 0 {
		dh = -dh
	}
	switch dh {
	case 0:
		s += 0.40
	case 1:
		s += 0.30
	case 2:
		s += 0.15
	}
	db := int(fa.Backness) - int(fb.Backness)
	if db < 0 {
		db = -db
	}
	switch db {
	case 0:
		s += 0.30
	case 1:
		s += 0.15
	}
	if fa.Rounded == fb.Rounded {
		s += 0.15
	}
	if fa.Long == fb.Long {
		s += 0.075
	}
	if fa.Nasalized == fb.Nasalized {
		s += 0.075
	}
	return s
}

// affinity reports manner pairs that pattern together cross-script
// (plosive/affricate, fricative/affricate, tap/trill, approximant
// variants).
func affinity(a, b Manner) bool {
	if a > b {
		a, b = b, a
	}
	switch {
	case a == Plosive && b == Affricate,
		a == Fricative && b == Affricate,
		a == Trill && b == Tap,
		a == Tap && b == Approximant,
		a == Trill && b == Approximant,
		a == Approximant && b == Lateral:
		return true
	}
	return false
}

// neighboringPlace reports adjacent articulation places that often
// substitute for each other across language phoneme sets.
func neighboringPlace(a, b Place) bool {
	if a > b {
		a, b = b, a
	}
	switch {
	case a == Bilabial && b == Labiodental,
		a == Dental && b == Alveolar,
		a == Alveolar && b == PostAlveolar,
		a == PostAlveolar && b == Retroflex,
		a == PostAlveolar && b == Palatal,
		a == Retroflex && b == Palatal,
		a == Palatal && b == Velar,
		a == Velar && b == LabioVelar,
		a == Velar && b == Uvular,
		a == Uvular && b == Glottal:
		return true
	}
	return false
}
