package phoneme

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// ClusterID identifies one cluster of near-equal phonemes within a
// Clusters set. IDs are dense, starting at 1; 0 is never assigned.
type ClusterID uint8

// Clusters partitions the phoneme inventory into groups of near-equal
// phonemes, following the multilingual phoneme clustering of Mareuil et
// al. that the paper adopts (§3.3). Substitutions within a cluster are
// charged the intra-cluster substitution cost; substitutions across
// clusters cost a full unit. The same partition drives the Grouped
// Phoneme String Identifier of the phonetic index (§5.3).
//
// A Clusters value is immutable after construction and safe for
// concurrent use.
type Clusters struct {
	name string
	ids  []ClusterID // indexed by Phoneme
	n    int

	reprOnce sync.Once
	repr     []Phoneme // lazily built representative table
}

// Name returns the human-readable name of the cluster set.
func (c *Clusters) Name() string { return c.name }

// Count returns the number of clusters.
func (c *Clusters) Count() int { return c.n }

// Of returns the cluster of p.
func (c *Clusters) Of(p Phoneme) ClusterID {
	if int(p) >= len(c.ids) {
		return 0
	}
	return c.ids[p]
}

// Same reports whether a and b belong to the same cluster.
func (c *Clusters) Same(a, b Phoneme) bool { return c.Of(a) == c.Of(b) && c.Of(a) != 0 }

// Representative returns the canonical member of p's cluster (the
// lowest-numbered phoneme in it). Projecting every phoneme of a string
// to its representative yields a string whose equality is exactly
// cluster-signature equality — the basis of signature q-grams and the
// phonetic index.
func (c *Clusters) Representative(p Phoneme) Phoneme {
	c.reprOnce.Do(func() {
		c.repr = make([]Phoneme, len(c.ids))
		first := make([]Phoneme, c.n+1)
		for q := Phoneme(1); int(q) < len(c.ids); q++ {
			if id := c.ids[q]; first[id] == 0 {
				first[id] = q
			}
		}
		for q := Phoneme(1); int(q) < len(c.ids); q++ {
			c.repr[q] = first[c.ids[q]]
		}
	})
	if int(p) >= len(c.repr) {
		return Invalid
	}
	return c.repr[p]
}

// Project maps every phoneme of s to its cluster representative.
func (c *Clusters) Project(s String) String {
	out := make(String, len(s))
	for i, p := range s {
		out[i] = c.Representative(p)
	}
	return out
}

// Members returns the phonemes of cluster id, in inventory order.
func (c *Clusters) Members(id ClusterID) []Phoneme {
	var out []Phoneme
	for p := Phoneme(1); int(p) < len(c.ids); p++ {
		if c.ids[p] == id {
			out = append(out, p)
		}
	}
	return out
}

// Signature renders the cluster-ID projection of s (the basis of the
// phonetic index key), e.g. "3.8.5.9" — handy in diagnostics and tests.
func (c *Clusters) Signature(s String) string {
	parts := make([]string, len(s))
	for i, p := range s {
		parts[i] = fmt.Sprintf("%d", c.Of(p))
	}
	return strings.Join(parts, ".")
}

// Describe renders the whole partition for documentation/debugging.
func (c *Clusters) Describe() string {
	var b strings.Builder
	fmt.Fprintf(&b, "clusters %q (%d groups)\n", c.name, c.n)
	for id := ClusterID(1); int(id) <= c.n; id++ {
		ms := c.Members(id)
		ipa := make([]string, len(ms))
		for i, m := range ms {
			ipa[i] = m.IPA()
		}
		sort.Strings(ipa)
		fmt.Fprintf(&b, "  %2d: %s\n", id, strings.Join(ipa, " "))
	}
	return b.String()
}

// FromGroups builds a custom cluster set from explicit groups of
// phonemes (the paper's "user customization of clustering"). Phonemes
// not mentioned in any group each form a singleton cluster. A phoneme
// listed in two groups is an error.
func FromGroups(name string, groups [][]Phoneme) (*Clusters, error) {
	c := &Clusters{name: name, ids: make([]ClusterID, len(inventory))}
	for _, g := range groups {
		if len(g) == 0 {
			continue
		}
		c.n++
		if c.n > 255 {
			return nil, fmt.Errorf("phoneme: too many clusters in %q", name)
		}
		id := ClusterID(c.n)
		for _, p := range g {
			if !p.Valid() {
				return nil, fmt.Errorf("phoneme: invalid phoneme in cluster group %d of %q", id, name)
			}
			if c.ids[p] != 0 {
				return nil, fmt.Errorf("phoneme: %s assigned to two clusters in %q", p.IPA(), name)
			}
			c.ids[p] = id
		}
	}
	// Singleton clusters for the rest, in inventory order for
	// determinism.
	for p := 1; p < len(inventory); p++ {
		if c.ids[p] == 0 {
			c.n++
			if c.n > 255 {
				return nil, fmt.Errorf("phoneme: too many clusters in %q", name)
			}
			c.ids[p] = ClusterID(c.n)
		}
	}
	return c, nil
}

// MustFromGroups is FromGroups that panics on error, for constant sets.
func MustFromGroups(name string, groups [][]Phoneme) *Clusters {
	c, err := FromGroups(name, groups)
	if err != nil {
		panic(err)
	}
	return c
}

// fromPredicates builds a partition by assigning each phoneme to the
// first predicate that accepts it; a final catch-all must accept
// everything.
func fromPredicates(name string, preds []func(Features) bool) *Clusters {
	c := &Clusters{name: name, ids: make([]ClusterID, len(inventory))}
	c.n = len(preds)
	for p := 1; p < len(inventory); p++ {
		f := inventory[p].f
		for i, pred := range preds {
			if pred(f) {
				c.ids[p] = ClusterID(i + 1)
				break
			}
		}
		if c.ids[p] == 0 {
			panic(fmt.Sprintf("phoneme: %s matched no cluster predicate in %q", inventory[p].ipa, name))
		}
	}
	return c
}

// Built lazily: cluster construction must not race with inventory
// registration, and Go runs per-file init functions in file-name order
// (cluster.go would init before inventory.go registers anything).
var (
	clustersOnce    sync.Once
	defaultClusters *Clusters
	coarseClusters  *Clusters
	fineClusters    *Clusters
)

// DefaultClusters returns the standard ten-group multilingual partition:
// labial obstruents (plus the v/ʋ/w confusion set), coronal stops,
// sibilants and affricates, dorsal and laryngeal obstruents, nasals,
// liquids, the palatal glide, and three vowel regions (front,
// open/central, back rounded). This is the partition used by the
// paper-reproduction experiments unless stated otherwise.
func DefaultClusters() *Clusters { initClusters(); return defaultClusters }

// CoarseClusters returns a Soundex-granularity partition: all vowels in
// one group and consonants folded into six broad families. It trades
// precision for recall; the cluster-granularity ablation uses it.
func CoarseClusters() *Clusters { initClusters(); return coarseClusters }

// FineClusters returns a near-identity partition where only
// aspiration/length/nasalization variants of the same base articulation
// share a cluster. It approaches plain Levenshtein behaviour.
func FineClusters() *Clusters { initClusters(); return fineClusters }

// ByName resolves a cluster-set name ("default", "coarse", "fine") to
// the built-in partition, for CLI and SQL session settings.
func ByName(name string) (*Clusters, error) {
	initClusters()
	switch strings.ToLower(name) {
	case "", "default":
		return defaultClusters, nil
	case "coarse", "soundex":
		return coarseClusters, nil
	case "fine", "strict":
		return fineClusters, nil
	default:
		return nil, fmt.Errorf("phoneme: unknown cluster set %q", name)
	}
}

func isLabialObstruent(f Features) bool {
	if f.Class != Consonant {
		return false
	}
	switch f.Place {
	case Bilabial, Labiodental:
		return f.Manner != Nasal
	case LabioVelar:
		return true // w patterns with v/ʋ across Indic and European scripts
	default:
		return false
	}
}

func isCoronalStop(f Features) bool {
	if f.Class != Consonant {
		return false
	}
	switch f.Place {
	case Dental, Alveolar, Retroflex:
		return f.Manner == Plosive || (f.Manner == Fricative && f.Place == Dental)
	default:
		return false
	}
}

func isSibilant(f Features) bool {
	if f.Class != Consonant {
		return false
	}
	if f.Manner != Fricative && f.Manner != Affricate {
		return false
	}
	switch f.Place {
	case Alveolar, PostAlveolar, Retroflex, Palatal:
		return true
	default:
		return false
	}
}

func isDorsal(f Features) bool {
	if f.Class != Consonant {
		return false
	}
	switch f.Place {
	case Velar, Uvular, Glottal:
		return f.Manner == Plosive || f.Manner == Fricative
	default:
		return false
	}
}

func isNasalC(f Features) bool { return f.Class == Consonant && f.Manner == Nasal }

func isLiquid(f Features) bool {
	if f.Class != Consonant {
		return false
	}
	switch f.Manner {
	case Trill, Tap, Lateral:
		return true
	case Approximant:
		return f.Place == Alveolar || f.Place == Retroflex // ɹ ɻ pattern with r
	default:
		return false
	}
}

func isGlide(f Features) bool { return f.Class == Consonant && f.Manner == Approximant }

func isFrontVowel(f Features) bool { return f.Class == Vowel && f.Backness == Front }

func isBackRoundVowel(f Features) bool {
	return f.Class == Vowel && f.Backness == Back && f.Rounded && f.Height <= OpenMid
}

func isVowel(f Features) bool { return f.Class == Vowel }

func anyConsonant(f Features) bool { return f.Class == Consonant }

func initClusters() {
	clustersOnce.Do(buildBuiltinClusters)
}

func buildBuiltinClusters() {
	defaultClusters = fromPredicates("default", []func(Features) bool{
		isLabialObstruent,
		isCoronalStop,
		isSibilant,
		isDorsal,
		isNasalC,
		isLiquid,
		isGlide,
		isFrontVowel,
		isBackRoundVowel,
		isVowel, // remaining vowels: central/open region
	})

	coarseClusters = fromPredicates("coarse", []func(Features) bool{
		isVowel,
		isLabialObstruent,
		func(f Features) bool { return isCoronalStop(f) || isSibilant(f) || isDorsal(f) },
		isNasalC,
		isLiquid,
		anyConsonant, // glides and anything else
	})

	// Fine: one cluster per (class, manner, place, voiced, height,
	// backness, rounded) tuple — aspiration, length and nasalization
	// collapse, nothing else does.
	fineClusters = buildFineClusters()
}

func buildFineClusters() *Clusters {
	type key struct {
		class    Class
		manner   Manner
		place    Place
		voiced   bool
		height   Height
		backness Backness
		rounded  bool
	}
	c := &Clusters{name: "fine", ids: make([]ClusterID, len(inventory))}
	seen := map[key]ClusterID{}
	for p := 1; p < len(inventory); p++ {
		f := inventory[p].f
		k := key{f.Class, f.Manner, f.Place, f.Voiced, f.Height, f.Backness, f.Rounded}
		id, ok := seen[k]
		if !ok {
			c.n++
			id = ClusterID(c.n)
			seen[k] = id
		}
		c.ids[p] = id
	}
	return c
}
