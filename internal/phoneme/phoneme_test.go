package phoneme

import (
	"testing"
	"testing/quick"
)

func TestLookupKnownSymbols(t *testing.T) {
	for _, ipa := range []string{"p", "b", "tʃ", "dʒ", "ə", "aː", "ɑ̃", "ʈʰ", "ŋ", "w"} {
		p, ok := Lookup(ipa)
		if !ok {
			t.Fatalf("Lookup(%q) not found", ipa)
		}
		if got := p.IPA(); got != ipa {
			t.Errorf("Lookup(%q).IPA() = %q", ipa, got)
		}
	}
}

func TestLookupUnknown(t *testing.T) {
	if _, ok := Lookup("ξ"); ok {
		t.Error("Lookup of non-IPA symbol succeeded")
	}
	if _, ok := Lookup(""); ok {
		t.Error("Lookup of empty string succeeded")
	}
}

func TestAliasesResolveToCanonical(t *testing.T) {
	g1 := MustLookup("g")
	g2 := MustLookup("ɡ")
	if g1 != g2 {
		t.Errorf("ASCII g and IPA ɡ are distinct phonemes: %d vs %d", g1, g2)
	}
	if g1.IPA() != "ɡ" {
		t.Errorf("canonical spelling of aliased g = %q, want ɡ", g1.IPA())
	}
	if MustLookup("ʧ") != MustLookup("tʃ") {
		t.Error("legacy ʧ does not alias tʃ")
	}
}

func TestParseLongestMatch(t *testing.T) {
	// "tʃ" must parse as one affricate, not t+ʃ.
	s, err := Parse("tʃa")
	if err != nil {
		t.Fatal(err)
	}
	if len(s) != 2 {
		t.Fatalf("Parse(tʃa) = %v (%d phonemes), want 2", s, len(s))
	}
	if s[0] != MustLookup("tʃ") {
		t.Errorf("first phoneme = %s, want tʃ", s[0])
	}
	// Long vowel must win over short vowel + stray mark.
	s = MustParse("aːm")
	if len(s) != 2 || s[0] != MustLookup("aː") {
		t.Errorf("Parse(aːm) = %v, want [aː m]", s)
	}
	// Aspirated stop must win over plain stop.
	s = MustParse("kʰa")
	if len(s) != 2 || s[0] != MustLookup("kʰ") {
		t.Errorf("Parse(kʰa) = %v, want [kʰ a]", s)
	}
}

func TestParseIgnoresSuprasegmentals(t *testing.T) {
	s, err := Parse("ˈneɪ.ru")
	if err != nil {
		t.Fatalf("Parse with stress/syllable marks: %v", err)
	}
	want := MustParse("neɪru")
	if !s.Equal(want) {
		t.Errorf("got %v want %v", s, want)
	}
}

func TestParseUnknownSymbolErrors(t *testing.T) {
	if _, err := Parse("na#ru"); err == nil {
		t.Error("Parse accepted '#'")
	}
	if got := ParseLenient("na#ru"); got.IPA() != "naru" {
		t.Errorf("ParseLenient(na#ru) = %q, want naru", got.IPA())
	}
}

func TestParseRoundTrip(t *testing.T) {
	for _, ipa := range []string{"dʒəvaːɦərlaːl", "neːru", "junəvɜrsɪti", "ɛspanjøl", "haɪdrədʒən"} {
		s, err := Parse(ipa)
		if err != nil {
			t.Fatalf("Parse(%q): %v", ipa, err)
		}
		if got := s.IPA(); got != ipa {
			t.Errorf("round trip %q -> %q", ipa, got)
		}
	}
}

func TestStringCompare(t *testing.T) {
	// Ordering is by inventory handle; p was registered before b.
	lo, hi := MustLookup("p"), MustLookup("b")
	if lo >= hi {
		lo, hi = hi, lo
	}
	a := String{lo, lo, lo}
	b := String{lo, lo, hi}
	if a.Compare(b) >= 0 || b.Compare(a) <= 0 {
		t.Error("Compare ordering wrong")
	}
	if a.Compare(a) != 0 {
		t.Error("Compare(a,a) != 0")
	}
	short := String{lo, lo}
	if short.Compare(a) >= 0 {
		t.Error("prefix should sort before extension")
	}
}

func TestStringCloneIndependent(t *testing.T) {
	a := MustParse("aba")
	b := a.Clone()
	b[0] = MustLookup("d")
	if a[0] == b[0] {
		t.Error("Clone shares backing array")
	}
}

func TestFeatureSanity(t *testing.T) {
	cases := []struct {
		ipa    string
		class  Class
		manner Manner
		place  Place
		voiced bool
	}{
		{"p", Consonant, Plosive, Bilabial, false},
		{"bʱ", Consonant, Plosive, Bilabial, true},
		{"dʒ", Consonant, Affricate, PostAlveolar, true},
		{"ɳ", Consonant, Nasal, Retroflex, true},
		{"ʂ", Consonant, Fricative, Retroflex, false},
		{"w", Consonant, Approximant, LabioVelar, true},
	}
	for _, c := range cases {
		f := MustLookup(c.ipa).Features()
		if f.Class != c.class || f.Manner != c.manner || f.Place != c.place || f.Voiced != c.voiced {
			t.Errorf("%s features = %+v", c.ipa, f)
		}
	}
	if !MustLookup("aː").Features().Long {
		t.Error("aː not marked long")
	}
	if !MustLookup("ɑ̃").Features().Nasalized {
		t.Error("ɑ̃ not marked nasalized")
	}
	if !Schwa.IsVowel() {
		t.Error("schwa is not a vowel")
	}
}

func TestAllPhonemesHaveClass(t *testing.T) {
	for _, p := range All() {
		if f := p.Features(); f.Class != Consonant && f.Class != Vowel {
			t.Errorf("%s has no class", p.IPA())
		}
		if p.IsVowel() == p.IsConsonant() {
			t.Errorf("%s is both or neither vowel/consonant", p.IPA())
		}
	}
}

func TestInvalidPhoneme(t *testing.T) {
	if Invalid.Valid() {
		t.Error("Invalid reported valid")
	}
	if Invalid.IPA() != "�" {
		t.Errorf("Invalid.IPA() = %q", Invalid.IPA())
	}
	if Phoneme(250).Valid() && Count() < 250 {
		t.Error("out-of-range phoneme reported valid")
	}
}

func TestInventoryCountMatchesAll(t *testing.T) {
	if len(All()) != Count() {
		t.Errorf("All()=%d Count()=%d", len(All()), Count())
	}
	if Count() < 80 {
		t.Errorf("inventory suspiciously small: %d", Count())
	}
}

// Property: rendering is idempotent through the tokenizer. Structural
// equality cannot hold in general (t followed by ʃ renders as "tʃ",
// which re-tokenizes as the affricate — longest match is deliberate),
// but Parse(s.IPA()).IPA() == s.IPA() must always hold.
func TestQuickParseRenderIdempotent(t *testing.T) {
	all := All()
	f := func(idx []uint8) bool {
		s := make(String, 0, len(idx))
		for _, i := range idx {
			s = append(s, all[int(i)%len(all)])
		}
		back, err := Parse(s.IPA())
		return err == nil && back.IPA() == s.IPA()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: Compare is a total order consistent with Equal.
func TestQuickCompareConsistency(t *testing.T) {
	all := All()
	mk := func(idx []uint8) String {
		s := make(String, 0, len(idx))
		for _, i := range idx {
			s = append(s, all[int(i)%len(all)])
		}
		return s
	}
	f := func(ia, ib []uint8) bool {
		a, b := mk(ia), mk(ib)
		c1, c2 := a.Compare(b), b.Compare(a)
		if a.Equal(b) != (c1 == 0) {
			return false
		}
		return c1 == -c2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestSimilarityBounds(t *testing.T) {
	all := All()
	for _, a := range all {
		for _, b := range all {
			s := Similarity(a, b)
			if s < 0 || s > 1 {
				t.Fatalf("Similarity(%s,%s) = %v out of range", a, b, s)
			}
			if s != Similarity(b, a) {
				t.Fatalf("Similarity not symmetric for %s,%s", a, b)
			}
		}
	}
	if Similarity(MustLookup("p"), MustLookup("p")) != 1 {
		t.Error("self-similarity != 1")
	}
	if Similarity(MustLookup("p"), MustLookup("a")) != 0 {
		t.Error("consonant/vowel similarity != 0")
	}
}

func TestSimilarityOrdering(t *testing.T) {
	p, b, k, s := MustLookup("p"), MustLookup("b"), MustLookup("k"), MustLookup("s")
	if Similarity(p, b) <= Similarity(p, k) {
		t.Error("p~b should exceed p~k (voicing-only vs place change)")
	}
	if Similarity(p, b) <= Similarity(p, s) {
		t.Error("p~b should exceed p~s")
	}
	i, ii, u := MustLookup("i"), MustLookup("iː"), MustLookup("u")
	if Similarity(i, ii) <= Similarity(i, u) {
		t.Error("i~iː should exceed i~u")
	}
}
