package phoneme

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestDefaultClustersPartition(t *testing.T) {
	c := DefaultClusters()
	if c.Count() != 10 {
		t.Errorf("default cluster count = %d, want 10", c.Count())
	}
	for _, p := range All() {
		if c.Of(p) == 0 {
			t.Errorf("%s unassigned in default clusters", p.IPA())
		}
	}
}

func TestDefaultClusterExpectations(t *testing.T) {
	c := DefaultClusters()
	same := []struct{ a, b string }{
		{"p", "b"},   // voicing within labial stops
		{"p", "pʰ"},  // aspiration
		{"v", "w"},   // the v/w confusion set
		{"v", "ʋ"},   // Hindi ʋ vs English v
		{"t", "ʈ"},   // alveolar vs retroflex stop (Indic)
		{"t", "d"},   // voicing: Tamil stop neutralization
		{"t", "t̪"},  // dental vs alveolar
		{"s", "ʃ"},   // sibilants
		{"tʃ", "dʒ"}, // affricates
		{"s", "tʃ"},  // sibilant/affricate
		{"k", "ɡ"},   // dorsals
		{"k", "h"},   // velar/glottal (Soundex-ish)
		{"m", "n"},   // nasals
		{"n", "ŋ"},
		{"l", "r"}, // liquids
		{"r", "ɾ"},
		{"ɹ", "r"},
		{"i", "ɪ"}, // front vowels
		{"e", "ɛ"},
		{"i", "iː"}, // length
		{"a", "ə"},  // open/central vowels
		{"a", "aː"},
		{"a", "ɑ"},
		{"u", "o"}, // back rounded
		{"u", "uː"},
	}
	for _, pair := range same {
		if !c.Same(MustLookup(pair.a), MustLookup(pair.b)) {
			t.Errorf("%s and %s should share a default cluster", pair.a, pair.b)
		}
	}
	diff := []struct{ a, b string }{
		{"p", "t"},  // labial vs coronal
		{"p", "k"},  // labial vs dorsal
		{"t", "s"},  // stop vs sibilant
		{"m", "b"},  // nasal vs stop
		{"l", "n"},  // liquid vs nasal
		{"i", "u"},  // front vs back vowel
		{"a", "u"},  // open vs back rounded
		{"p", "a"},  // consonant vs vowel
		{"j", "dʒ"}, // glide vs affricate
	}
	for _, pair := range diff {
		if c.Same(MustLookup(pair.a), MustLookup(pair.b)) {
			t.Errorf("%s and %s should NOT share a default cluster", pair.a, pair.b)
		}
	}
}

func TestCoarseClustersMergeAllVowels(t *testing.T) {
	c := CoarseClusters()
	var vid ClusterID
	for _, p := range All() {
		if !p.IsVowel() {
			continue
		}
		if vid == 0 {
			vid = c.Of(p)
		} else if c.Of(p) != vid {
			t.Fatalf("vowels split in coarse clusters: %s", p.IPA())
		}
	}
	if c.Count() >= DefaultClusters().Count() {
		t.Errorf("coarse (%d) should have fewer clusters than default (%d)", c.Count(), DefaultClusters().Count())
	}
}

func TestFineClustersNearIdentity(t *testing.T) {
	c := FineClusters()
	if !c.Same(MustLookup("p"), MustLookup("pʰ")) {
		t.Error("fine clusters should merge aspiration variants")
	}
	if !c.Same(MustLookup("a"), MustLookup("aː")) {
		t.Error("fine clusters should merge length variants")
	}
	if c.Same(MustLookup("p"), MustLookup("b")) {
		t.Error("fine clusters should separate voicing")
	}
	if c.Same(MustLookup("t"), MustLookup("ʈ")) {
		t.Error("fine clusters should separate retroflex")
	}
	if c.Count() <= DefaultClusters().Count() {
		t.Errorf("fine (%d) should have more clusters than default (%d)", c.Count(), DefaultClusters().Count())
	}
}

func TestFromGroupsCustom(t *testing.T) {
	g, err := FromGroups("custom", [][]Phoneme{
		{MustLookup("p"), MustLookup("b"), MustLookup("f")},
		{MustLookup("a"), MustLookup("e")},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !g.Same(MustLookup("p"), MustLookup("f")) {
		t.Error("custom group not honored")
	}
	if g.Same(MustLookup("p"), MustLookup("a")) {
		t.Error("cross-group phonemes merged")
	}
	// Unmentioned phonemes form singletons.
	if g.Same(MustLookup("k"), MustLookup("ɡ")) {
		t.Error("unmentioned phonemes should be singletons")
	}
	if g.Of(MustLookup("k")) == 0 {
		t.Error("unmentioned phoneme unassigned")
	}
}

func TestFromGroupsRejectsOverlap(t *testing.T) {
	_, err := FromGroups("bad", [][]Phoneme{
		{MustLookup("p"), MustLookup("b")},
		{MustLookup("b"), MustLookup("f")},
	})
	if err == nil {
		t.Error("overlapping groups accepted")
	}
}

func TestFromGroupsRejectsInvalidPhoneme(t *testing.T) {
	if _, err := FromGroups("bad", [][]Phoneme{{Invalid}}); err == nil {
		t.Error("invalid phoneme accepted")
	}
}

func TestByName(t *testing.T) {
	for name, want := range map[string]*Clusters{
		"default": DefaultClusters(),
		"":        DefaultClusters(),
		"coarse":  CoarseClusters(),
		"soundex": CoarseClusters(),
		"fine":    FineClusters(),
		"STRICT":  FineClusters(),
	} {
		got, err := ByName(name)
		if err != nil || got != want {
			t.Errorf("ByName(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("ByName accepted unknown set")
	}
}

func TestSignature(t *testing.T) {
	c := DefaultClusters()
	s := MustParse("neru")
	sig := c.Signature(s)
	if strings.Count(sig, ".") != len(s)-1 {
		t.Errorf("signature %q has wrong arity for %v", sig, s)
	}
	// Same-cluster substitution must not change the signature.
	s2 := MustParse("neːru")
	if c.Signature(s2) != sig {
		t.Errorf("length variant changed signature: %q vs %q", c.Signature(s2), sig)
	}
}

func TestMembersRoundTrip(t *testing.T) {
	c := DefaultClusters()
	total := 0
	for id := ClusterID(1); int(id) <= c.Count(); id++ {
		for _, m := range c.Members(id) {
			if c.Of(m) != id {
				t.Fatalf("member %s of cluster %d maps to %d", m, id, c.Of(m))
			}
			total++
		}
	}
	if total != Count() {
		t.Errorf("members cover %d phonemes, inventory has %d", total, Count())
	}
}

func TestDescribeMentionsEveryCluster(t *testing.T) {
	d := DefaultClusters().Describe()
	if !strings.Contains(d, "10:") || !strings.Contains(d, "default") {
		t.Errorf("Describe output incomplete:\n%s", d)
	}
}

// Property: Same is an equivalence relation (reflexive, symmetric;
// transitivity follows from the ID representation but we check anyway).
func TestQuickClusterEquivalence(t *testing.T) {
	all := All()
	c := DefaultClusters()
	f := func(ia, ib, ic uint8) bool {
		a, b, cc := all[int(ia)%len(all)], all[int(ib)%len(all)], all[int(ic)%len(all)]
		if !c.Same(a, a) {
			return false
		}
		if c.Same(a, b) != c.Same(b, a) {
			return false
		}
		if c.Same(a, b) && c.Same(b, cc) && !c.Same(a, cc) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: intra-cluster similarity should on average exceed
// cross-cluster similarity under the default partition (clusters are
// "like phonemes" per the paper).
func TestClustersAlignWithSimilarity(t *testing.T) {
	c := DefaultClusters()
	var inSum, outSum float64
	var inN, outN int
	for _, a := range All() {
		for _, b := range All() {
			if a >= b {
				continue
			}
			s := Similarity(a, b)
			if c.Same(a, b) {
				inSum += s
				inN++
			} else {
				outSum += s
				outN++
			}
		}
	}
	if inN == 0 || outN == 0 {
		t.Fatal("degenerate partition")
	}
	if inSum/float64(inN) <= outSum/float64(outN) {
		t.Errorf("mean intra-cluster similarity %.3f <= inter %.3f", inSum/float64(inN), outSum/float64(outN))
	}
}

func TestRepresentativeAndProject(t *testing.T) {
	c := DefaultClusters()
	for _, p := range All() {
		r := c.Representative(p)
		if !r.Valid() {
			t.Fatalf("no representative for %s", p)
		}
		if !c.Same(p, r) {
			t.Errorf("representative %s not in %s's cluster", r, p)
		}
		// Idempotent.
		if c.Representative(r) != r {
			t.Errorf("representative of representative differs for %s", p)
		}
	}
	// Projection equality == signature equality.
	a := MustParse("neru")
	b := MustParse("neːrʊ")
	if !c.Project(a).Equal(c.Project(b)) {
		t.Error("cluster variants project differently")
	}
	d := MustParse("neku")
	if c.Project(a).Equal(c.Project(d)) {
		t.Error("cross-cluster strings project equally")
	}
	if c.Representative(Invalid) != Invalid {
		t.Error("Representative(Invalid) != Invalid")
	}
}
