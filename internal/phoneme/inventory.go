package phoneme

// This file registers the phoneme inventory. The set covers the
// languages evaluated or exemplified by the paper (English, Hindi,
// Tamil, Greek, Spanish, French) plus a few symbols that commonly appear
// in dictionary transcriptions so that foreign IPA parses cleanly.
//
// Aspirated stops, long vowels and nasalized vowels are distinct
// inventory entries (their spellings embed the modifier), which lets the
// tokenizer work by plain longest-match and lets cost models treat
// aspiration/length as cluster-internal variation.

func consonant(ipa string, m Manner, pl Place, voiced, aspirated bool) Phoneme {
	return register(ipa, Features{Class: Consonant, Manner: m, Place: pl, Voiced: voiced, Aspirated: aspirated})
}

func vowel(ipa string, h Height, b Backness, rounded bool) Phoneme {
	return register(ipa, Features{Class: Vowel, Height: h, Backness: b, Rounded: rounded})
}

func longVowel(ipa string, h Height, b Backness, rounded bool) Phoneme {
	return register(ipa, Features{Class: Vowel, Height: h, Backness: b, Rounded: rounded, Long: true})
}

func nasalVowel(ipa string, h Height, b Backness, rounded bool) Phoneme {
	return register(ipa, Features{Class: Vowel, Height: h, Backness: b, Rounded: rounded, Nasalized: true})
}

// Commonly referenced phonemes, initialized during inventory
// registration below.
var (
	Schwa Phoneme // ə — the reduced central vowel, pivotal in English and Hindi G2P
)

func init() {
	// --- Plosives ---
	consonant("p", Plosive, Bilabial, false, false)
	consonant("b", Plosive, Bilabial, true, false)
	consonant("pʰ", Plosive, Bilabial, false, true)
	consonant("bʱ", Plosive, Bilabial, true, true)
	consonant("t", Plosive, Alveolar, false, false)
	consonant("d", Plosive, Alveolar, true, false)
	consonant("tʰ", Plosive, Alveolar, false, true)
	consonant("dʱ", Plosive, Alveolar, true, true)
	consonant("t̪", Plosive, Dental, false, false)
	consonant("d̪", Plosive, Dental, true, false)
	consonant("ʈ", Plosive, Retroflex, false, false)
	consonant("ɖ", Plosive, Retroflex, true, false)
	consonant("ʈʰ", Plosive, Retroflex, false, true)
	consonant("ɖʱ", Plosive, Retroflex, true, true)
	consonant("k", Plosive, Velar, false, false)
	consonant("ɡ", Plosive, Velar, true, false)
	consonant("kʰ", Plosive, Velar, false, true)
	consonant("ɡʱ", Plosive, Velar, true, true)
	consonant("q", Plosive, Uvular, false, false)
	consonant("ʔ", Plosive, Glottal, false, false)

	// --- Affricates ---
	consonant("ts", Affricate, Alveolar, false, false)
	consonant("dz", Affricate, Alveolar, true, false)
	consonant("tʃ", Affricate, PostAlveolar, false, false)
	consonant("dʒ", Affricate, PostAlveolar, true, false)
	consonant("tʃʰ", Affricate, PostAlveolar, false, true)
	consonant("dʒʱ", Affricate, PostAlveolar, true, true)

	// --- Nasals ---
	consonant("m", Nasal, Bilabial, true, false)
	consonant("n", Nasal, Alveolar, true, false)
	consonant("ɳ", Nasal, Retroflex, true, false)
	consonant("ɲ", Nasal, Palatal, true, false)
	consonant("ŋ", Nasal, Velar, true, false)

	// --- Trills and taps ---
	consonant("r", Trill, Alveolar, true, false)
	consonant("ɾ", Tap, Alveolar, true, false)
	consonant("ɽ", Tap, Retroflex, true, false)
	consonant("ʀ", Trill, Uvular, true, false)

	// --- Fricatives ---
	consonant("f", Fricative, Labiodental, false, false)
	consonant("v", Fricative, Labiodental, true, false)
	consonant("β", Fricative, Bilabial, true, false)
	consonant("θ", Fricative, Dental, false, false)
	consonant("ð", Fricative, Dental, true, false)
	consonant("s", Fricative, Alveolar, false, false)
	consonant("z", Fricative, Alveolar, true, false)
	consonant("ʃ", Fricative, PostAlveolar, false, false)
	consonant("ʒ", Fricative, PostAlveolar, true, false)
	consonant("ʂ", Fricative, Retroflex, false, false)
	consonant("ʐ", Fricative, Retroflex, true, false)
	consonant("ç", Fricative, Palatal, false, false)
	consonant("x", Fricative, Velar, false, false)
	consonant("ɣ", Fricative, Velar, true, false)
	consonant("ʁ", Fricative, Uvular, true, false)
	consonant("h", Fricative, Glottal, false, false)
	consonant("ɦ", Fricative, Glottal, true, false)

	// --- Approximants and laterals ---
	consonant("ʋ", Approximant, Labiodental, true, false)
	consonant("ɹ", Approximant, Alveolar, true, false)
	consonant("ɻ", Approximant, Retroflex, true, false)
	consonant("j", Approximant, Palatal, true, false)
	consonant("w", Approximant, LabioVelar, true, false)
	consonant("l", Lateral, Alveolar, true, false)
	consonant("ɭ", Lateral, Retroflex, true, false)
	consonant("ʎ", Lateral, Palatal, true, false)

	// --- Short vowels ---
	vowel("i", Close, Front, false)
	vowel("ɪ", NearClose, Front, false)
	vowel("e", CloseMid, Front, false)
	vowel("ɛ", OpenMid, Front, false)
	vowel("æ", NearOpen, Front, false)
	vowel("y", Close, Front, true)
	vowel("ʏ", NearClose, Front, true)
	vowel("ø", CloseMid, Front, true)
	vowel("œ", OpenMid, Front, true)
	vowel("ɨ", Close, Central, false)
	Schwa = vowel("ə", Mid, Central, false)
	vowel("ɜ", OpenMid, Central, false)
	vowel("ɐ", NearOpen, Central, false)
	vowel("a", Open, Central, false)
	vowel("ʌ", OpenMid, Back, false)
	vowel("ɑ", Open, Back, false)
	vowel("ɒ", Open, Back, true)
	vowel("ɔ", OpenMid, Back, true)
	vowel("o", CloseMid, Back, true)
	vowel("ʊ", NearClose, Back, true)
	vowel("u", Close, Back, true)

	// --- Long vowels ---
	longVowel("iː", Close, Front, false)
	longVowel("eː", CloseMid, Front, false)
	longVowel("ɛː", OpenMid, Front, false)
	longVowel("aː", Open, Central, false)
	longVowel("ɑː", Open, Back, false)
	longVowel("ɔː", OpenMid, Back, true)
	longVowel("oː", CloseMid, Back, true)
	longVowel("uː", Close, Back, true)
	longVowel("ɜː", OpenMid, Central, false)

	// --- Nasalized vowels (Hindi nasalization, French nasal vowels) ---
	nasalVowel("ã", Open, Central, false)
	nasalVowel("ɑ̃", Open, Back, false)
	nasalVowel("ɛ̃", OpenMid, Front, false)
	nasalVowel("ɔ̃", OpenMid, Back, true)
	nasalVowel("œ̃", OpenMid, Front, true)
	nasalVowel("ĩ", Close, Front, false)
	nasalVowel("ẽ", CloseMid, Front, false)
	nasalVowel("õ", CloseMid, Back, true)
	nasalVowel("ũ", Close, Back, true)

	// --- Aliases: alternative spellings found in loose transcriptions ---
	alias("g", "ɡ")    // ASCII g for the voiced velar plosive
	alias("ɪ̈", "ɨ")   // centralized near-close
	alias("t̠ʃ", "tʃ") // retracted affricate notation
	alias("d̠ʒ", "dʒ")
	alias("ʧ", "tʃ") // legacy one-glyph affricates
	alias("ʤ", "dʒ")
	alias("ʦ", "ts")
	alias("ʣ", "dz")
	alias("ǝ", "ə") // reversed-e confusable
	alias("ɚ", "ə") // rhotacized schwa, treated as plain schwa after mark stripping
	alias("ɝ", "ɜ")
}
