package sql

import (
	"fmt"
	"strings"
)

// Stmt is a parsed statement.
type Stmt interface{ stmt() }

// SelectStmt is SELECT items FROM tables [WHERE] [GROUP BY [HAVING]]
// [ORDER BY] [LIMIT].
type SelectStmt struct {
	Items   []SelectItem
	From    []TableRef
	Where   Node
	GroupBy []Node
	Having  Node
	OrderBy []Node
	Desc    bool
	Limit   int // -1 = no limit
}

func (*SelectStmt) stmt() {}

// SelectItem is one output column: an expression with an optional
// alias, or the * wildcard (Star).
type SelectItem struct {
	Star  bool
	Expr  Node
	Alias string
}

// TableRef names a table with an optional alias.
type TableRef struct {
	Name  string
	Alias string
}

// Binding returns the name the table is referenced by.
func (t TableRef) Binding() string {
	if t.Alias != "" {
		return t.Alias
	}
	return t.Name
}

// CreateTableStmt is CREATE TABLE name (col type, ...).
type CreateTableStmt struct {
	Name string
	Cols []ColDef
}

func (*CreateTableStmt) stmt() {}

// ColDef is one column definition.
type ColDef struct {
	Name string
	Type string
}

// CreateIndexStmt is CREATE INDEX name ON table(column).
type CreateIndexStmt struct {
	Name   string
	Table  string
	Column string
}

func (*CreateIndexStmt) stmt() {}

// DropTableStmt is DROP TABLE name.
type DropTableStmt struct {
	Name string
}

func (*DropTableStmt) stmt() {}

// InsertStmt is INSERT INTO table VALUES (...), (...), ....
type InsertStmt struct {
	Table string
	Rows  [][]Node
}

func (*InsertStmt) stmt() {}

// DeleteStmt is DELETE FROM table [WHERE expr].
type DeleteStmt struct {
	Table string
	Where Node
}

func (*DeleteStmt) stmt() {}

// BeginStmt is BEGIN [TRANSACTION]: it opens an explicit write
// transaction that spans statements until COMMIT or ROLLBACK.
type BeginStmt struct{}

func (*BeginStmt) stmt() {}

// CommitStmt is COMMIT: it makes the open transaction durable.
type CommitStmt struct{}

func (*CommitStmt) stmt() {}

// RollbackStmt is ROLLBACK: it abandons the open transaction.
type RollbackStmt struct{}

func (*RollbackStmt) stmt() {}

// CheckpointStmt is CHECKPOINT: it runs an online fuzzy checkpoint —
// flushing committed pages, declaring a redo floor in the WAL and
// garbage-collecting dead log segments. Rejected inside an explicit
// transaction (the checkpoint needs the shared query lock the
// transaction holds exclusively).
type CheckpointStmt struct{}

func (*CheckpointStmt) stmt() {}

// SetStmt is SET name = value (session settings).
type SetStmt struct {
	Name  string
	Value string
}

func (*SetStmt) stmt() {}

// ShowStmt is SHOW TABLES, SHOW INDEXES or SHOW LEXSTATS.
type ShowStmt struct {
	What string // "TABLES", "INDEXES" or "LEXSTATS"
}

func (*ShowStmt) stmt() {}

// ExplainStmt wraps a SELECT and reports its plan.
type ExplainStmt struct {
	Query *SelectStmt
}

func (*ExplainStmt) stmt() {}

// Node is an unresolved expression AST node.
type Node interface {
	fmt.Stringer
	node()
}

// Ident references a column, optionally qualified (B1.Author).
type Ident struct {
	Qualifier string
	Name      string
}

func (*Ident) node() {}

func (i *Ident) String() string {
	if i.Qualifier != "" {
		return i.Qualifier + "." + i.Name
	}
	return i.Name
}

// Lit is a literal value.
type Lit struct {
	Kind LitKind
	S    string
	N    float64
	I    int64
	Lang string // optional LANG tag on a string literal
}

// LitKind classifies literals.
type LitKind uint8

// Literal kinds.
const (
	LitNull LitKind = iota
	LitInt
	LitFloat
	LitString
)

func (*Lit) node() {}

func (l *Lit) String() string {
	switch l.Kind {
	case LitNull:
		return "NULL"
	case LitInt:
		return fmt.Sprintf("%d", l.I)
	case LitFloat:
		return fmt.Sprintf("%g", l.N)
	default:
		if l.Lang != "" {
			return fmt.Sprintf("'%s' LANG %s", l.S, l.Lang)
		}
		return "'" + l.S + "'"
	}
}

// Bin is an infix operation.
type Bin struct {
	Op   string
	L, R Node
}

func (*Bin) node() {}

func (b *Bin) String() string { return fmt.Sprintf("(%s %s %s)", b.L, b.Op, b.R) }

// NotNode negates a predicate.
type NotNode struct {
	E Node
}

func (*NotNode) node() {}

func (n *NotNode) String() string { return fmt.Sprintf("(NOT %s)", n.E) }

// FuncCall invokes a scalar function or aggregate.
type FuncCall struct {
	Name string
	Star bool // COUNT(*)
	Args []Node
}

func (*FuncCall) node() {}

func (f *FuncCall) String() string {
	if f.Star {
		return f.Name + "(*)"
	}
	args := make([]string, len(f.Args))
	for i, a := range f.Args {
		args[i] = a.String()
	}
	return f.Name + "(" + strings.Join(args, ", ") + ")"
}

// LexMatch is the LexEQUAL predicate of Figures 3 and 5:
// L LEXEQUAL R [THRESHOLD e] [INLANGUAGES { l1, l2, ... }]. A nil
// Langs list (or the * wildcard) matches all languages; Threshold < 0
// selects the session default.
type LexMatch struct {
	L, R      Node
	Threshold float64
	Langs     []string
}

func (*LexMatch) node() {}

func (m *LexMatch) String() string {
	s := fmt.Sprintf("(%s LEXEQUAL %s", m.L, m.R)
	if m.Threshold >= 0 {
		s += fmt.Sprintf(" THRESHOLD %g", m.Threshold)
	}
	if len(m.Langs) > 0 {
		s += " INLANGUAGES {" + strings.Join(m.Langs, ", ") + "}"
	}
	return s + ")"
}
