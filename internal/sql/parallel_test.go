package sql

import (
	"reflect"
	"strings"
	"testing"

	"lexequal/internal/core"
	"lexequal/internal/db"
	"lexequal/internal/script"
)

func loadNames(t *testing.T, s *Session) {
	t.Helper()
	texts := []core.Text{
		{Value: "Nehru", Lang: script.English},
		{Value: "नेहरु", Lang: script.Hindi},
		{Value: "நேரு", Lang: script.Tamil},
		{Value: "Nero", Lang: script.English},
		{Value: "Gandhi", Lang: script.English},
		{Value: "गांधी", Lang: script.Hindi},
		{Value: "Kathy", Lang: script.English},
		{Value: "Cathy", Lang: script.English},
	}
	if _, err := db.CreateNameTable(s.DB, "names", s.Op, texts, db.NameTableSpec{WithAux: true, WithIndexes: true}); err != nil {
		t.Fatal(err)
	}
}

func TestSetParallelism(t *testing.T) {
	s := newTestSession(t)
	mustExec(t, s, `SET parallelism = 4`)
	if s.Parallelism != 4 {
		t.Errorf("Parallelism = %d, want 4", s.Parallelism)
	}
	mustExec(t, s, `SET parallelism = 0`) // 0 = GOMAXPROCS
	if s.Parallelism != 0 {
		t.Errorf("Parallelism = %d, want 0", s.Parallelism)
	}
	for _, bad := range []string{`SET parallelism = -1`, `SET parallelism = two`, `SET parallelism = 1.5`} {
		if _, err := s.Exec(bad); err == nil {
			t.Errorf("accepted %q", bad)
		}
	}
}

// TestParallelQueriesIdentical runs the same selection and join at
// several parallelism settings under every strategy; rows must be
// byte-identical to the serial run.
func TestParallelQueriesIdentical(t *testing.T) {
	s := newTestSession(t)
	loadNames(t, s)
	sel := `SELECT id FROM names WHERE name LEXEQUAL 'Nehru' THRESHOLD 0.30`
	join := `select N1.id, N2.id from names N1, names N2
		where N1.name LexEQUAL N2.name Threshold 0.30
		and language(N1.name) <> language(N2.name)`
	for _, strat := range []string{"naive", "qgram", "indexed"} {
		mustExec(t, s, `SET lexequal_strategy = `+strat)
		mustExec(t, s, `SET parallelism = 1`)
		baseSel := mustExec(t, s, sel)
		baseJoin := mustExec(t, s, join)
		for _, w := range []string{"2", "4", "0"} {
			mustExec(t, s, `SET parallelism = `+w)
			if got := mustExec(t, s, sel); !reflect.DeepEqual(got.Rows, baseSel.Rows) {
				t.Errorf("%s select at parallelism %s diverges: %v vs %v", strat, w, got.Rows, baseSel.Rows)
			}
			if got := mustExec(t, s, join); !reflect.DeepEqual(got.Rows, baseJoin.Rows) {
				t.Errorf("%s join at parallelism %s diverges", strat, w)
			}
		}
	}
}

func TestExplainShowsParallelism(t *testing.T) {
	s := newTestSession(t)
	loadNames(t, s)
	q := `EXPLAIN SELECT id FROM names WHERE name LEXEQUAL 'Nehru' THRESHOLD 0.30`
	exp := mustExec(t, s, q)
	if strings.Contains(exp.Rows[0][0].S, "parallelism") {
		t.Errorf("serial EXPLAIN mentions parallelism: %v", exp.Rows[0][0].S)
	}
	mustExec(t, s, `SET parallelism = 4`)
	exp = mustExec(t, s, q)
	if !strings.Contains(exp.Rows[0][0].S, "[parallelism: 4]") {
		t.Errorf("EXPLAIN = %v", exp.Rows[0][0].S)
	}
}

func TestShowLexStats(t *testing.T) {
	s := newTestSession(t)
	loadNames(t, s)
	stats := func() map[string]int64 {
		res := mustExec(t, s, `SHOW LEXSTATS`)
		if !reflect.DeepEqual(res.Cols, []string{"counter", "value"}) {
			t.Fatalf("cols = %v", res.Cols)
		}
		out := map[string]int64{}
		for _, r := range res.Rows {
			out[r[0].S] = r[1].I
		}
		return out
	}
	before := stats()
	if before["queries"] != 0 {
		t.Errorf("fresh session has counters: %v", before)
	}
	mustExec(t, s, `SET lexequal_strategy = qgram`)
	mustExec(t, s, `SELECT id FROM names WHERE name LEXEQUAL 'Nehru' THRESHOLD 0.30`)
	after := stats()
	if after["queries"] != 1 || after["rows_probed"] == 0 || after["dp_cells"] == 0 {
		t.Errorf("counters after a qgram query: %v", after)
	}
	if after["matches"] == 0 {
		t.Errorf("query found matches but matches counter is %d", after["matches"])
	}
	// Counters accumulate across queries.
	mustExec(t, s, `SELECT id FROM names WHERE name LEXEQUAL 'Gandhi' THRESHOLD 0.30`)
	if s2 := stats(); s2["queries"] != 2 || s2["dp_cells"] <= after["dp_cells"] {
		t.Errorf("counters did not accumulate: %v", s2)
	}
}
