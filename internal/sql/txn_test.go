package sql

import (
	"strings"
	"testing"
	"time"

	"lexequal/internal/db"
)

func countRows(t *testing.T, s *Session, table string) int {
	t.Helper()
	res := mustExec(t, s, "SELECT COUNT(*) FROM "+table)
	if len(res.Rows) != 1 || len(res.Rows[0]) != 1 {
		t.Fatalf("COUNT(*) returned %v", res.Rows)
	}
	return int(res.Rows[0][0].I)
}

func TestTxnCommitAndRollback(t *testing.T) {
	s := newTestSession(t)
	mustExec(t, s, `CREATE TABLE kv (k INT, v TEXT)`)

	mustExec(t, s, `BEGIN`)
	mustExec(t, s, `INSERT INTO kv VALUES (1, 'one'), (2, 'two')`)
	if got := countRows(t, s, "kv"); got != 2 {
		t.Fatalf("inside txn: %d rows, want 2 (own writes visible)", got)
	}
	mustExec(t, s, `COMMIT`)
	if got := countRows(t, s, "kv"); got != 2 {
		t.Fatalf("after commit: %d rows, want 2", got)
	}

	mustExec(t, s, `BEGIN TRANSACTION`)
	mustExec(t, s, `INSERT INTO kv VALUES (3, 'three')`)
	mustExec(t, s, `DELETE FROM kv WHERE k = 1`)
	if got := countRows(t, s, "kv"); got != 2 {
		t.Fatalf("inside txn 2: %d rows, want 2", got)
	}
	mustExec(t, s, `ROLLBACK`)
	if got := countRows(t, s, "kv"); got != 2 {
		t.Fatalf("after rollback: %d rows, want 2 (insert and delete undone)", got)
	}
	res := mustExec(t, s, `SELECT v FROM kv WHERE k = 1`)
	if len(res.Rows) != 1 {
		t.Fatalf("row k=1 did not survive the rolled-back DELETE: %v", res.Rows)
	}
}

func TestTxnControlErrors(t *testing.T) {
	s := newTestSession(t)
	if _, err := s.Exec(`COMMIT`); err == nil || !strings.Contains(err.Error(), "no transaction") {
		t.Fatalf("COMMIT without BEGIN: %v", err)
	}
	if _, err := s.Exec(`ROLLBACK`); err == nil || !strings.Contains(err.Error(), "no transaction") {
		t.Fatalf("ROLLBACK without BEGIN: %v", err)
	}
	mustExec(t, s, `BEGIN`)
	if _, err := s.Exec(`BEGIN`); err == nil || !strings.Contains(err.Error(), "already open") {
		t.Fatalf("nested BEGIN: %v", err)
	}
	mustExec(t, s, `ROLLBACK`)
}

// TestTxnAbortedByFailedStatement drives a statement that fails after
// mutating pages (an oversized record, rejected by the heap mid-way
// through a multi-row insert): the database rolls the whole explicit
// transaction back on the spot, the error says so, and the session's
// transaction is gone.
func TestTxnAbortedByFailedStatement(t *testing.T) {
	s := newTestSession(t)
	mustExec(t, s, `CREATE TABLE kv (k INT, v TEXT)`)
	mustExec(t, s, `INSERT INTO kv VALUES (1, 'committed')`)

	mustExec(t, s, `BEGIN`)
	mustExec(t, s, `INSERT INTO kv VALUES (2, 'in-txn')`)
	huge := strings.Repeat("x", 100000)
	_, err := s.Exec(`INSERT INTO kv VALUES (3, 'ok'), (4, '` + huge + `')`)
	if err == nil {
		t.Fatal("oversized insert succeeded")
	}
	if !strings.Contains(err.Error(), "transaction was rolled back") {
		t.Fatalf("error does not report the rollback: %v", err)
	}
	if _, err := s.Exec(`COMMIT`); err == nil || !strings.Contains(err.Error(), "no transaction") {
		t.Fatalf("COMMIT after abort: %v", err)
	}
	if got := countRows(t, s, "kv"); got != 1 {
		t.Fatalf("after aborted txn: %d rows, want 1 (only the pre-txn row)", got)
	}
}

// TestTxnSelectErrorKeepsTxnOpen: a read-only failure must not abort
// the transaction.
func TestTxnSelectErrorKeepsTxnOpen(t *testing.T) {
	s := newTestSession(t)
	mustExec(t, s, `CREATE TABLE kv (k INT, v TEXT)`)
	mustExec(t, s, `BEGIN`)
	mustExec(t, s, `INSERT INTO kv VALUES (1, 'one')`)
	if _, err := s.Exec(`SELECT * FROM nosuch`); err == nil {
		t.Fatal("select from missing table succeeded")
	}
	mustExec(t, s, `COMMIT`)
	if got := countRows(t, s, "kv"); got != 1 {
		t.Fatalf("after commit: %d rows, want 1", got)
	}
}

// TestTxnCommitSurvivesReopen: committed work is durable across a
// close/reopen of the database directory.
func TestTxnCommitSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	d, err := db.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSession(d, nil)
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, s, `CREATE TABLE kv (k INT, v TEXT)`)
	mustExec(t, s, `BEGIN`)
	mustExec(t, s, `INSERT INTO kv VALUES (1, 'one'), (2, 'two')`)
	mustExec(t, s, `COMMIT`)
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	d2, err := db.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	s2, err := NewSession(d2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := countRows(t, s2, "kv"); got != 2 {
		t.Fatalf("after reopen: %d rows, want 2", got)
	}
}

// TestResetRollsBackOpenTxn: the serving layer's disconnect path must
// release the exclusive lock and undo the dangling transaction.
func TestResetRollsBackOpenTxn(t *testing.T) {
	s := newTestSession(t)
	mustExec(t, s, `CREATE TABLE kv (k INT, v TEXT)`)
	mustExec(t, s, `BEGIN`)
	mustExec(t, s, `INSERT INTO kv VALUES (1, 'dangling')`)
	if err := s.Reset(); err != nil {
		t.Fatal(err)
	}
	if err := s.Reset(); err != nil {
		t.Fatalf("second Reset: %v", err)
	}
	// A second session can take the exclusive lock (it was released)
	// and sees none of the rolled-back writes.
	s2, err := NewSession(s.DB, nil)
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, s2, `INSERT INTO kv VALUES (2, 'after')`)
	if got := countRows(t, s2, "kv"); got != 1 {
		t.Fatalf("after reset: %d rows, want 1", got)
	}
}

// TestMultiRowInsertCommitsOnce: a multi-row INSERT outside an explicit
// transaction is one transaction, not one per row.
func TestMultiRowInsertCommitsOnce(t *testing.T) {
	s := newTestSession(t)
	mustExec(t, s, `CREATE TABLE kv (k INT, v TEXT)`)
	before := s.DB.WALStats().Commits
	mustExec(t, s, `INSERT INTO kv VALUES (1,'a'), (2,'b'), (3,'c'), (4,'d')`)
	after := s.DB.WALStats().Commits
	if after-before != 1 {
		t.Fatalf("multi-row INSERT issued %d commits, want 1", after-before)
	}
}

func TestSetWALFlush(t *testing.T) {
	s := newTestSession(t)
	mustExec(t, s, `SET lexequal_wal_flush = 5`)
	if got := s.DB.WALStats().FlushInterval; got != 5*time.Millisecond {
		t.Fatalf("flush interval = %v, want 5ms", got)
	}
	mustExec(t, s, `SET lexequal_wal_flush = 0.5`)
	if got := s.DB.WALStats().FlushInterval; got != 500*time.Microsecond {
		t.Fatalf("flush interval = %v, want 500µs", got)
	}
	for _, bad := range []string{`SET lexequal_wal_flush = -1`, `SET lexequal_wal_flush = nope`} {
		if _, err := s.Exec(bad); err == nil {
			t.Fatalf("%s succeeded", bad)
		}
	}
}
