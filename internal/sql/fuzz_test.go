package sql

import "testing"

// FuzzSQLParse asserts the parser never panics: any byte sequence must
// yield a statement or an error. Corpus seeds cover every statement
// form plus the LexEQUAL extensions and a few malformed shapes.
func FuzzSQLParse(f *testing.F) {
	seeds := []string{
		"",
		";",
		"SELECT * FROM t",
		"SELECT a, b FROM t WHERE a = 1 AND b < 'x' ORDER BY a DESC LIMIT 10",
		"SELECT name FROM names WHERE name LEXEQUAL 'Nehru' THRESHOLD 0.3 INLANGUAGES { English, Hindi }",
		"SELECT COUNT(*) FROM t GROUP BY a HAVING COUNT(*) > 1",
		"SELECT * FROM a JOIN b ON a.id = b.id",
		"CREATE TABLE Books (Author NVARCHAR, Title NVARCHAR, Year INT)",
		"CREATE INDEX i ON t (c)",
		"INSERT INTO Books VALUES ('नेहरु' LANG hindi, 'भारत', 1946)",
		"DROP TABLE t",
		"SET lexequal_strategy = qgram",
		"EXPLAIN SELECT * FROM t",
		"SELECT * FROM t WHERE a LEXEQUAL",
		"SELECT FROM WHERE",
		"SELECT '\xff\xfe unterminated",
		"SELECT * FROM t WHERE a LEXEQUAL 'x' THRESHOLD 99.9",
		"((((((((((",
		"SELECT 1 + * -",
		// Regression seeds: non-finite and out-of-range SET values must
		// parse cleanly (rejection happens at execution, with a range
		// check — see execSet/parseUnitInterval).
		"SET lexequal_icsc = NaN",
		"SET lexequal_icsc = +Inf",
		"SET lexequal_icsc = -1.5",
		"SET lexequal_weakindel = Infinity",
		"SET lexequal_threshold = NaN",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		// Must not panic; errors are expected on garbage.
		_, _ = Parse(src)
	})
}
