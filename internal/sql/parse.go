package sql

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse parses one SQL statement (an optional trailing semicolon is
// allowed).
func Parse(src string) (Stmt, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	stmt, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	p.accept(tokSymbol, ";")
	if !p.at(tokEOF, "") {
		return nil, p.errf("unexpected %s after statement", p.peek())
	}
	return stmt, nil
}

type parser struct {
	toks []token
	pos  int
}

// peek and next treat the trailing EOF token as sticky: consuming it
// (e.g. while reporting an error about it) must not run off the slice.
func (p *parser) peek() token {
	if p.pos >= len(p.toks) {
		return p.toks[len(p.toks)-1]
	}
	return p.toks[p.pos]
}

func (p *parser) next() token {
	t := p.peek()
	if p.pos < len(p.toks) {
		p.pos++
	}
	return t
}

func (p *parser) at(kind tokKind, text string) bool {
	t := p.peek()
	return t.kind == kind && (text == "" || t.text == text)
}

func (p *parser) accept(kind tokKind, text string) bool {
	if p.at(kind, text) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(kind tokKind, text string) (token, error) {
	if p.at(kind, text) {
		return p.next(), nil
	}
	want := text
	if want == "" {
		want = map[tokKind]string{tokIdent: "identifier", tokNumber: "number", tokString: "string"}[kind]
	}
	return token{}, p.errf("expected %s, found %s", want, p.peek())
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("sql: %s (at offset %d)", fmt.Sprintf(format, args...), p.peek().pos)
}

func (p *parser) parseStmt() (Stmt, error) {
	switch {
	case p.at(tokKeyword, "SELECT"):
		return p.parseSelect()
	case p.at(tokKeyword, "EXPLAIN"):
		p.next()
		sel, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		return &ExplainStmt{Query: sel}, nil
	case p.at(tokKeyword, "CREATE"):
		return p.parseCreate()
	case p.at(tokKeyword, "DROP"):
		p.next()
		if _, err := p.expect(tokKeyword, "TABLE"); err != nil {
			return nil, err
		}
		name, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		return &DropTableStmt{Name: name.text}, nil
	case p.at(tokKeyword, "INSERT"):
		return p.parseInsert()
	case p.at(tokKeyword, "DELETE"):
		p.next()
		if _, err := p.expect(tokKeyword, "FROM"); err != nil {
			return nil, err
		}
		name, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		del := &DeleteStmt{Table: name.text}
		if p.accept(tokKeyword, "WHERE") {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			del.Where = e
		}
		return del, nil
	case p.at(tokKeyword, "BEGIN"):
		p.next()
		p.accept(tokKeyword, "TRANSACTION")
		return &BeginStmt{}, nil
	case p.at(tokKeyword, "COMMIT"):
		p.next()
		return &CommitStmt{}, nil
	case p.at(tokKeyword, "ROLLBACK"):
		p.next()
		return &RollbackStmt{}, nil
	case p.at(tokKeyword, "CHECKPOINT"):
		p.next()
		return &CheckpointStmt{}, nil
	case p.at(tokKeyword, "SET"):
		return p.parseSet()
	case p.at(tokKeyword, "SHOW"):
		p.next()
		switch {
		case p.accept(tokKeyword, "TABLES"):
			return &ShowStmt{What: "TABLES"}, nil
		case p.accept(tokKeyword, "INDEXES"):
			return &ShowStmt{What: "INDEXES"}, nil
		case p.accept(tokKeyword, "LEXSTATS"):
			return &ShowStmt{What: "LEXSTATS"}, nil
		default:
			return nil, p.errf("expected TABLES, INDEXES or LEXSTATS after SHOW")
		}
	default:
		return nil, p.errf("expected a statement, found %s", p.peek())
	}
}

func (p *parser) parseSelect() (*SelectStmt, error) {
	if _, err := p.expect(tokKeyword, "SELECT"); err != nil {
		return nil, err
	}
	sel := &SelectStmt{Limit: -1}
	for {
		if p.accept(tokSymbol, "*") {
			sel.Items = append(sel.Items, SelectItem{Star: true})
		} else {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := SelectItem{Expr: e}
			if p.accept(tokKeyword, "AS") {
				a, err := p.expect(tokIdent, "")
				if err != nil {
					return nil, err
				}
				item.Alias = a.text
			} else if p.at(tokIdent, "") {
				item.Alias = p.next().text
			}
			sel.Items = append(sel.Items, item)
		}
		if !p.accept(tokSymbol, ",") {
			break
		}
	}
	if _, err := p.expect(tokKeyword, "FROM"); err != nil {
		return nil, err
	}
	for {
		name, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		ref := TableRef{Name: name.text}
		if p.accept(tokKeyword, "AS") {
			a, err := p.expect(tokIdent, "")
			if err != nil {
				return nil, err
			}
			ref.Alias = a.text
		} else if p.at(tokIdent, "") {
			ref.Alias = p.next().text
		}
		sel.From = append(sel.From, ref)
		if !p.accept(tokSymbol, ",") {
			break
		}
	}
	if p.accept(tokKeyword, "WHERE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Where = e
	}
	if p.accept(tokKeyword, "GROUP") {
		if _, err := p.expect(tokKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			sel.GroupBy = append(sel.GroupBy, e)
			if !p.accept(tokSymbol, ",") {
				break
			}
		}
		if p.accept(tokKeyword, "HAVING") {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			sel.Having = e
		}
	}
	if p.accept(tokKeyword, "ORDER") {
		if _, err := p.expect(tokKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			sel.OrderBy = append(sel.OrderBy, e)
			if !p.accept(tokSymbol, ",") {
				break
			}
		}
		if p.accept(tokKeyword, "DESC") {
			sel.Desc = true
		} else {
			p.accept(tokKeyword, "ASC")
		}
	}
	if p.accept(tokKeyword, "LIMIT") {
		n, err := p.expect(tokNumber, "")
		if err != nil {
			return nil, err
		}
		v, err := strconv.Atoi(n.text)
		if err != nil || v < 0 {
			return nil, p.errf("bad LIMIT %q", n.text)
		}
		sel.Limit = v
	}
	return sel, nil
}

func (p *parser) parseCreate() (Stmt, error) {
	p.next() // CREATE
	switch {
	case p.accept(tokKeyword, "TABLE"):
		name, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokSymbol, "("); err != nil {
			return nil, err
		}
		var cols []ColDef
		for {
			cn, err := p.expect(tokIdent, "")
			if err != nil {
				return nil, err
			}
			ct, err := p.expect(tokIdent, "")
			if err != nil {
				return nil, err
			}
			cols = append(cols, ColDef{Name: cn.text, Type: ct.text})
			if !p.accept(tokSymbol, ",") {
				break
			}
		}
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
		return &CreateTableStmt{Name: name.text, Cols: cols}, nil
	case p.accept(tokKeyword, "INDEX"):
		name, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokKeyword, "ON"); err != nil {
			return nil, err
		}
		tbl, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokSymbol, "("); err != nil {
			return nil, err
		}
		col, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
		return &CreateIndexStmt{Name: name.text, Table: tbl.text, Column: col.text}, nil
	default:
		return nil, p.errf("expected TABLE or INDEX after CREATE")
	}
}

func (p *parser) parseInsert() (Stmt, error) {
	p.next() // INSERT
	if _, err := p.expect(tokKeyword, "INTO"); err != nil {
		return nil, err
	}
	name, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokKeyword, "VALUES"); err != nil {
		return nil, err
	}
	ins := &InsertStmt{Table: name.text}
	for {
		if _, err := p.expect(tokSymbol, "("); err != nil {
			return nil, err
		}
		var row []Node
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if !p.accept(tokSymbol, ",") {
				break
			}
		}
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
		ins.Rows = append(ins.Rows, row)
		if !p.accept(tokSymbol, ",") {
			break
		}
	}
	return ins, nil
}

func (p *parser) parseSet() (Stmt, error) {
	p.next() // SET
	name, err := p.expect(tokIdent, "")
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokSymbol, "="); err != nil {
		return nil, err
	}
	t := p.next()
	switch t.kind {
	case tokIdent, tokString, tokNumber, tokKeyword:
		return &SetStmt{Name: strings.ToLower(name.text), Value: t.text}, nil
	default:
		return nil, p.errf("bad SET value %s", t)
	}
}

// Expression grammar (lowest to highest precedence):
//
//	expr    := and (OR and)*
//	and     := not (AND not)*
//	not     := NOT not | cmp
//	cmp     := add ((=|<>|<|<=|>|>=) add | LEXEQUAL add lexargs)?
//	add     := mul ((+|-) mul)*
//	mul     := prim ((*|/) prim)*
//	prim    := literal | ident[.ident] | func(args) | ( expr )
func (p *parser) parseExpr() (Node, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.accept(tokKeyword, "OR") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &Bin{Op: "OR", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (Node, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.accept(tokKeyword, "AND") {
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = &Bin{Op: "AND", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseNot() (Node, error) {
	if p.accept(tokKeyword, "NOT") {
		e, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &NotNode{E: e}, nil
	}
	return p.parseCmp()
}

func (p *parser) parseCmp() (Node, error) {
	l, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	for _, op := range []string{"=", "<>", "<=", ">=", "<", ">"} {
		if p.accept(tokSymbol, op) {
			r, err := p.parseAdd()
			if err != nil {
				return nil, err
			}
			return &Bin{Op: op, L: l, R: r}, nil
		}
	}
	if p.accept(tokKeyword, "LEXEQUAL") {
		r, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		m := &LexMatch{L: l, R: r, Threshold: -1}
		if p.accept(tokKeyword, "THRESHOLD") {
			n, err := p.expect(tokNumber, "")
			if err != nil {
				return nil, err
			}
			v, err := strconv.ParseFloat(n.text, 64)
			if err != nil || v < 0 || v > 1 {
				return nil, p.errf("THRESHOLD must be in [0,1], got %q", n.text)
			}
			m.Threshold = v
		}
		if p.accept(tokKeyword, "INLANGUAGES") {
			open := "{"
			if !p.accept(tokSymbol, "{") {
				if _, err := p.expect(tokSymbol, "("); err != nil {
					return nil, err
				}
				open = "("
			}
			if p.accept(tokSymbol, "*") {
				// Wildcard: all languages (nil list).
			} else {
				for {
					lang, err := p.expect(tokIdent, "")
					if err != nil {
						return nil, err
					}
					m.Langs = append(m.Langs, lang.text)
					if !p.accept(tokSymbol, ",") {
						break
					}
				}
			}
			closing := "}"
			if open == "(" {
				closing = ")"
			}
			if _, err := p.expect(tokSymbol, closing); err != nil {
				return nil, err
			}
		}
		return m, nil
	}
	return l, nil
}

func (p *parser) parseAdd() (Node, error) {
	l, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.accept(tokSymbol, "+"):
			r, err := p.parseMul()
			if err != nil {
				return nil, err
			}
			l = &Bin{Op: "+", L: l, R: r}
		case p.accept(tokSymbol, "-"):
			r, err := p.parseMul()
			if err != nil {
				return nil, err
			}
			l = &Bin{Op: "-", L: l, R: r}
		default:
			return l, nil
		}
	}
}

func (p *parser) parseMul() (Node, error) {
	l, err := p.parsePrim()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.accept(tokSymbol, "*"):
			r, err := p.parsePrim()
			if err != nil {
				return nil, err
			}
			l = &Bin{Op: "*", L: l, R: r}
		case p.accept(tokSymbol, "/"):
			r, err := p.parsePrim()
			if err != nil {
				return nil, err
			}
			l = &Bin{Op: "/", L: l, R: r}
		default:
			return l, nil
		}
	}
}

func (p *parser) parsePrim() (Node, error) {
	t := p.peek()
	switch {
	case t.kind == tokNumber:
		p.next()
		if strings.Contains(t.text, ".") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, p.errf("bad number %q", t.text)
			}
			return &Lit{Kind: LitFloat, N: f}, nil
		}
		i, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, p.errf("bad number %q", t.text)
		}
		return &Lit{Kind: LitInt, I: i}, nil
	case t.kind == tokString:
		p.next()
		lit := &Lit{Kind: LitString, S: t.text}
		if p.accept(tokKeyword, "LANG") {
			lang, err := p.expect(tokIdent, "")
			if err != nil {
				return nil, err
			}
			lit.Lang = lang.text
		}
		return lit, nil
	case t.kind == tokKeyword && t.text == "NULL":
		p.next()
		return &Lit{Kind: LitNull}, nil
	case t.kind == tokSymbol && t.text == "-":
		p.next()
		e, err := p.parsePrim()
		if err != nil {
			return nil, err
		}
		if l, ok := e.(*Lit); ok {
			switch l.Kind {
			case LitInt:
				return &Lit{Kind: LitInt, I: -l.I}, nil
			case LitFloat:
				return &Lit{Kind: LitFloat, N: -l.N}, nil
			}
		}
		return &Bin{Op: "-", L: &Lit{Kind: LitInt, I: 0}, R: e}, nil
	case t.kind == tokSymbol && t.text == "(":
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
		return e, nil
	case t.kind == tokKeyword && (t.text == "COUNT" || t.text == "MIN" || t.text == "MAX" || t.text == "SUM"):
		p.next()
		if _, err := p.expect(tokSymbol, "("); err != nil {
			return nil, err
		}
		fc := &FuncCall{Name: t.text}
		if p.accept(tokSymbol, "*") {
			fc.Star = true
		} else {
			arg, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			fc.Args = []Node{arg}
		}
		if _, err := p.expect(tokSymbol, ")"); err != nil {
			return nil, err
		}
		return fc, nil
	case t.kind == tokIdent:
		p.next()
		// Function call?
		if p.accept(tokSymbol, "(") {
			fc := &FuncCall{Name: t.text}
			if !p.at(tokSymbol, ")") {
				for {
					arg, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					fc.Args = append(fc.Args, arg)
					if !p.accept(tokSymbol, ",") {
						break
					}
				}
			}
			if _, err := p.expect(tokSymbol, ")"); err != nil {
				return nil, err
			}
			return fc, nil
		}
		// Qualified column?
		if p.accept(tokSymbol, ".") {
			col, err := p.expect(tokIdent, "")
			if err != nil {
				return nil, err
			}
			return &Ident{Qualifier: t.text, Name: col.text}, nil
		}
		return &Ident{Name: t.text}, nil
	default:
		return nil, p.errf("unexpected %s in expression", t)
	}
}
