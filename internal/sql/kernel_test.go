package sql

import (
	"reflect"
	"strings"
	"testing"

	"lexequal/internal/core"
)

func TestSetKernel(t *testing.T) {
	s := newTestSession(t)
	for _, tc := range []struct {
		value string
		want  core.Kernel
	}{
		{"scalar", core.KernelScalar},
		{"bitvec", core.KernelBitvec},
		{"auto", core.KernelAuto},
		{"MYERS", core.KernelBitvec}, // settings are case-insensitive
	} {
		mustExec(t, s, `SET lexequal_kernel = `+tc.value)
		if s.Kernel != tc.want {
			t.Errorf("SET lexequal_kernel = %s: Kernel = %v, want %v", tc.value, s.Kernel, tc.want)
		}
	}
	if _, err := s.Exec(`SET lexequal_kernel = turbo`); err == nil {
		t.Error("accepted unknown kernel")
	}
}

// TestKernelQueriesIdentical runs the same selection and join under
// every (strategy, kernel, parallelism) combination; rows must be
// byte-identical to the scalar serial run.
func TestKernelQueriesIdentical(t *testing.T) {
	s := newTestSession(t)
	loadNames(t, s)
	sel := `SELECT id FROM names WHERE name LEXEQUAL 'Nehru' THRESHOLD 0.30`
	join := `select N1.id, N2.id from names N1, names N2
		where N1.name LexEQUAL N2.name Threshold 0.30
		and language(N1.name) <> language(N2.name)`
	for _, strat := range []string{"naive", "qgram", "indexed"} {
		mustExec(t, s, `SET lexequal_strategy = `+strat)
		mustExec(t, s, `SET lexequal_kernel = scalar`)
		mustExec(t, s, `SET parallelism = 1`)
		baseSel := mustExec(t, s, sel)
		baseJoin := mustExec(t, s, join)
		for _, k := range []string{"scalar", "bitvec", "auto"} {
			mustExec(t, s, `SET lexequal_kernel = `+k)
			for _, w := range []string{"1", "2", "4"} {
				mustExec(t, s, `SET parallelism = `+w)
				if got := mustExec(t, s, sel); !reflect.DeepEqual(got.Rows, baseSel.Rows) {
					t.Errorf("%s select kernel=%s parallelism=%s diverges: %v vs %v", strat, k, w, got.Rows, baseSel.Rows)
				}
				if got := mustExec(t, s, join); !reflect.DeepEqual(got.Rows, baseJoin.Rows) {
					t.Errorf("%s join kernel=%s parallelism=%s diverges", strat, k, w)
				}
			}
		}
	}
}

func TestExplainShowsKernel(t *testing.T) {
	s := newTestSession(t)
	loadNames(t, s)
	q := `EXPLAIN SELECT id FROM names WHERE name LEXEQUAL 'Nehru' THRESHOLD 0.30`
	// The default operator's cost model is dyadic: auto resolves to the
	// bit-parallel kernel.
	exp := mustExec(t, s, q)
	if !strings.Contains(exp.Rows[0][0].S, "[kernel: bitvec]") {
		t.Errorf("EXPLAIN = %v", exp.Rows[0][0].S)
	}
	mustExec(t, s, `SET lexequal_kernel = scalar`)
	exp = mustExec(t, s, q)
	if !strings.Contains(exp.Rows[0][0].S, "[kernel: scalar]") {
		t.Errorf("EXPLAIN = %v", exp.Rows[0][0].S)
	}
	// A non-dyadic ICSC makes the model scalar-only even under bitvec.
	mustExec(t, s, `SET lexequal_kernel = bitvec`)
	mustExec(t, s, `SET lexequal_icsc = 0.3`)
	exp = mustExec(t, s, q)
	if !strings.Contains(exp.Rows[0][0].S, "[kernel: scalar]") {
		t.Errorf("EXPLAIN under non-dyadic model = %v", exp.Rows[0][0].S)
	}
}

// TestLexStatsKernelCounters proves the dispatch through SHOW LEXSTATS:
// the bit-parallel kernel reports word ops, the naive plan reports its
// signature prefilter's rejections and the batches it built, and a
// non-dyadic model's fallback verifications are counted.
func TestLexStatsKernelCounters(t *testing.T) {
	s := newTestSession(t)
	loadNames(t, s)
	stats := func() map[string]int64 {
		res := mustExec(t, s, `SHOW LEXSTATS`)
		out := map[string]int64{}
		for _, r := range res.Rows {
			out[r[0].S] = r[1].I
		}
		return out
	}
	mustExec(t, s, `SELECT id FROM names WHERE name LEXEQUAL 'Nehru' THRESHOLD 0.30`)
	st := stats()
	if st["bitvec_ops"] == 0 {
		t.Errorf("bit-parallel kernel did no work under auto: %v", st)
	}
	if st["batches_built"] == 0 {
		t.Errorf("no candidate batch materialized: %v", st)
	}
	if st["pruned_sig"] == 0 {
		t.Errorf("naive signature prefilter pruned nothing: %v", st)
	}
	if st["rows_probed"] != st["pruned_sig"]+st["candidates"] {
		t.Errorf("naive accounting split broken: %v", st)
	}
	// A non-dyadic model must prove its fallback dispatch.
	mustExec(t, s, `SET lexequal_icsc = 0.3`)
	mustExec(t, s, `SET lexequal_kernel = bitvec`)
	before := stats()
	mustExec(t, s, `SELECT id FROM names WHERE name LEXEQUAL 'Nehru' THRESHOLD 0.30`)
	after := stats()
	if after["scalar_fallbacks"] <= before["scalar_fallbacks"] {
		t.Errorf("non-dyadic model recorded no scalar fallbacks: %v -> %v", before, after)
	}
	if after["bitvec_ops"] != before["bitvec_ops"] {
		t.Errorf("non-dyadic model did bit-parallel work: %v -> %v", before, after)
	}
}
