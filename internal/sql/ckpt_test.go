package sql

import (
	"strings"
	"testing"
)

// TestCheckpointStatement covers the CHECKPOINT statement: it runs an
// online checkpoint and reports the declared floor, is rejected inside
// an explicit transaction (where it would deadlock on the query lock
// the transaction holds), and works again once the transaction ends.
func TestCheckpointStatement(t *testing.T) {
	s := newTestSession(t)
	loadBooks(t, s)

	res := mustExec(t, s, "CHECKPOINT")
	if !strings.Contains(res.Message, "checkpoint complete") {
		t.Fatalf("CHECKPOINT message = %q", res.Message)
	}

	mustExec(t, s, "BEGIN")
	if _, err := s.Exec("CHECKPOINT"); err == nil || !strings.Contains(err.Error(), "inside a transaction") {
		t.Fatalf("CHECKPOINT inside a transaction: err = %v, want rejection", err)
	}
	// The rejection must not disturb the open transaction.
	mustExec(t, s, `INSERT INTO Books VALUES ('Tx' LANG english, 'Tx', 1.00, 'English')`)
	mustExec(t, s, "ROLLBACK")

	res = mustExec(t, s, "CHECKPOINT")
	if !strings.Contains(res.Message, "checkpoint complete") {
		t.Fatalf("CHECKPOINT after transaction = %q", res.Message)
	}
}
