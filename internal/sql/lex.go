// Package sql implements the query language layer of the reproduction:
// a lexer and recursive-descent parser for the SQL subset the paper's
// experiments use, extended with the LexEQUAL syntax of Figures 3 and 5
// (LEXEQUAL ... THRESHOLD ... INLANGUAGES), and a planner that lowers
// queries onto the db executors, choosing among the three LexEQUAL
// physical strategies per the session setting.
package sql

import (
	"fmt"
	"strings"
	"unicode"
)

// tokKind classifies tokens.
type tokKind uint8

const (
	tokEOF tokKind = iota
	tokIdent
	tokKeyword
	tokNumber
	tokString
	tokSymbol // punctuation and operators
)

type token struct {
	kind tokKind
	text string // keywords uppercased; idents as written; strings unquoted
	pos  int
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "end of input"
	case tokString:
		return fmt.Sprintf("'%s'", t.text)
	default:
		return t.text
	}
}

// keywords recognized by the parser (uppercase).
var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "AND": true, "OR": true,
	"NOT": true, "GROUP": true, "BY": true, "HAVING": true, "ORDER": true,
	"LIMIT": true, "ASC": true, "DESC": true, "AS": true,
	"CREATE": true, "TABLE": true, "INDEX": true, "ON": true, "DROP": true,
	"INSERT": true, "INTO": true, "VALUES": true, "SET": true, "SHOW": true,
	"DELETE": true,
	"BEGIN": true, "COMMIT": true, "ROLLBACK": true, "TRANSACTION": true, "CHECKPOINT": true,
	"TABLES": true, "INDEXES": true, "LEXSTATS": true, "EXPLAIN": true, "NULL": true,
	"LEXEQUAL": true, "THRESHOLD": true, "INLANGUAGES": true, "LANG": true,
	"COUNT": true, "MIN": true, "MAX": true, "SUM": true, "DISTINCT": true,
}

type lexer struct {
	src  string
	pos  int
	toks []token
}

// lex tokenizes src.
func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		l.skipSpace()
		if l.pos >= len(l.src) {
			l.toks = append(l.toks, token{kind: tokEOF, pos: l.pos})
			return l.toks, nil
		}
		start := l.pos
		c := l.src[l.pos]
		switch {
		case c == '\'':
			s, err := l.lexString()
			if err != nil {
				return nil, err
			}
			l.toks = append(l.toks, token{kind: tokString, text: s, pos: start})
		case c >= '0' && c <= '9', c == '.' && l.pos+1 < len(l.src) && isDigit(l.src[l.pos+1]):
			l.toks = append(l.toks, token{kind: tokNumber, text: l.lexNumber(), pos: start})
		case isIdentStart(rune(c)) || c >= 0x80:
			word := l.lexWord()
			up := strings.ToUpper(word)
			if keywords[up] {
				l.toks = append(l.toks, token{kind: tokKeyword, text: up, pos: start})
			} else {
				l.toks = append(l.toks, token{kind: tokIdent, text: word, pos: start})
			}
		default:
			sym, err := l.lexSymbol()
			if err != nil {
				return nil, err
			}
			l.toks = append(l.toks, token{kind: tokSymbol, text: sym, pos: start})
		}
	}
}

func (l *lexer) skipSpace() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			l.pos++
			continue
		}
		// Line comments.
		if c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-' {
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
			continue
		}
		return
	}
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func (l *lexer) lexString() (string, error) {
	l.pos++ // opening quote
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\'' {
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
				b.WriteByte('\'') // escaped quote
				l.pos += 2
				continue
			}
			l.pos++
			return b.String(), nil
		}
		b.WriteByte(c)
		l.pos++
	}
	return "", fmt.Errorf("sql: unterminated string at %d", l.pos)
}

func (l *lexer) lexNumber() string {
	start := l.pos
	seenDot := false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if isDigit(c) {
			l.pos++
			continue
		}
		if c == '.' && !seenDot {
			seenDot = true
			l.pos++
			continue
		}
		break
	}
	return l.src[start:l.pos]
}

func (l *lexer) lexWord() string {
	start := l.pos
	for l.pos < len(l.src) {
		c := rune(l.src[l.pos])
		if c < 0x80 && (isIdentStart(c) || isDigit(byte(c))) {
			l.pos++
			continue
		}
		if l.src[l.pos] >= 0x80 {
			// Multi-byte rune: part of a (multilingual) identifier.
			l.pos++
			continue
		}
		break
	}
	return l.src[start:l.pos]
}

func (l *lexer) lexSymbol() (string, error) {
	two := ""
	if l.pos+1 < len(l.src) {
		two = l.src[l.pos : l.pos+2]
	}
	switch two {
	case "<>", "<=", ">=", "!=":
		l.pos += 2
		if two == "!=" {
			return "<>", nil
		}
		return two, nil
	}
	c := l.src[l.pos]
	switch c {
	case '(', ')', ',', '*', '=', '<', '>', '+', '-', '/', ';', '.', '{', '}':
		l.pos++
		return string(c), nil
	}
	return "", fmt.Errorf("sql: unexpected character %q at %d", c, l.pos)
}
