package sql

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"lexequal/internal/db"
)

// TestSelectNeverBlocksBehindWriter is the MVCC contract in one
// statement: while one session holds an open transaction with
// uncommitted writes, another session's SELECT completes immediately
// and sees the pre-transaction state. Under the old exclusive-lock
// transactions the SELECT blocked until COMMIT, so this test hung.
func TestSelectNeverBlocksBehindWriter(t *testing.T) {
	writer := newTestSession(t)
	mustExec(t, writer, `CREATE TABLE kv (k INT, v TEXT)`)
	mustExec(t, writer, `INSERT INTO kv VALUES (1, 'committed')`)

	reader, err := NewSession(writer.DB, nil)
	if err != nil {
		t.Fatal(err)
	}

	mustExec(t, writer, `BEGIN`)
	mustExec(t, writer, `INSERT INTO kv VALUES (2, 'uncommitted')`)

	done := make(chan int, 1)
	go func() { done <- countRows(t, reader, "kv") }()
	select {
	case got := <-done:
		if got != 1 {
			t.Errorf("reader saw %d rows, want 1 (uncommitted insert leaked)", got)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("SELECT blocked behind an open write transaction")
	}
	mustExec(t, writer, `COMMIT`)
	if got := countRows(t, reader, "kv"); got != 2 {
		t.Errorf("after commit the reader sees %d rows, want 2", got)
	}
}

// TestWriteWriteConflictAbortsAndRetries drives the first-writer-wins
// protocol through SQL: the losing session's DELETE fails with the
// serialization-failure retry hint, its transaction is rolled back, and
// the conventional retry then succeeds as a no-op.
func TestWriteWriteConflictAbortsAndRetries(t *testing.T) {
	a := newTestSession(t)
	mustExec(t, a, `CREATE TABLE kv (k INT, v TEXT)`)
	mustExec(t, a, `INSERT INTO kv VALUES (1, 'one'), (2, 'two')`)

	b, err := NewSession(a.DB, nil)
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, a, `BEGIN`)
	mustExec(t, a, `DELETE FROM kv WHERE k = 2`)

	mustExec(t, b, `BEGIN`)
	_, err = b.Exec(`DELETE FROM kv WHERE k = 2`)
	if !errors.Is(err, db.ErrSerializationFailure) {
		t.Fatalf("losing delete: got %v, want ErrSerializationFailure", err)
	}
	if !strings.Contains(err.Error(), "retry the transaction") {
		t.Errorf("conflict error lacks the retry hint: %v", err)
	}
	if !strings.Contains(err.Error(), "the open transaction was rolled back") {
		t.Errorf("conflict error does not report the rollback: %v", err)
	}
	mustExec(t, a, `COMMIT`)

	// Retry: the row is gone now, so the delete matches nothing.
	mustExec(t, b, `BEGIN`)
	res := mustExec(t, b, `DELETE FROM kv WHERE k = 2`)
	if res.Affected != 0 {
		t.Errorf("retried delete affected %d rows, want 0", res.Affected)
	}
	mustExec(t, b, `COMMIT`)
	if got := countRows(t, a, "kv"); got != 1 {
		t.Errorf("final state has %d rows, want 1", got)
	}
}

// TestMVCCSmoke is the 8-client soak `make mvcc-smoke` runs under
// -race: every client interleaves explicit transactions (insert own
// keys, delete from a contested pool, commit or roll back) with
// autocommit statements and SELECTs. Serialization failures are
// expected and retried; anything else fails the soak. The final state
// must reconcile exactly with the per-client commit bookkeeping.
func TestMVCCSmoke(t *testing.T) {
	setup := newTestSession(t)
	mustExec(t, setup, `CREATE TABLE kv (k INT, v TEXT)`)
	const contested = 32
	for i := 0; i < contested; i++ {
		mustExec(t, setup, fmt.Sprintf(`INSERT INTO kv VALUES (%d, 'pool')`, i))
	}

	const clients, rounds = 8, 12
	var mu sync.Mutex
	alive := make(map[int]bool) // committed own keys still live
	deleted := make(map[int]bool)

	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			sess, err := NewSession(setup.DB, nil)
			if err != nil {
				t.Error(err)
				return
			}
			defer sess.Reset()
			rng := rand.New(rand.NewSource(int64(c)*104729 + 1))
			for r := 0; r < rounds; r++ {
				own := 1000 + c*1000 + r
				pool := rng.Intn(contested)
				if _, err := sess.Exec(`BEGIN`); err != nil {
					t.Errorf("client %d: BEGIN: %v", c, err)
					return
				}
				if _, err := sess.Exec(fmt.Sprintf(`INSERT INTO kv VALUES (%d, 'c%d')`, own, c)); err != nil {
					t.Errorf("client %d: insert own key: %v", c, err)
					return
				}
				poolDeleted := false
				if rng.Intn(2) == 0 {
					res, err := sess.Exec(fmt.Sprintf(`DELETE FROM kv WHERE k = %d`, pool))
					if err != nil {
						if !errors.Is(err, db.ErrSerializationFailure) {
							t.Errorf("client %d: contested delete: %v", c, err)
							return
						}
						continue // whole transaction rolled back; next round
					}
					poolDeleted = res.Affected > 0
				}
				if rng.Intn(6) == 0 {
					if _, err := sess.Exec(`ROLLBACK`); err != nil {
						t.Errorf("client %d: ROLLBACK: %v", c, err)
						return
					}
					continue
				}
				if _, err := sess.Exec(`COMMIT`); err != nil {
					t.Errorf("client %d: COMMIT: %v", c, err)
					return
				}
				mu.Lock()
				alive[own] = true
				if poolDeleted {
					deleted[pool] = true
				}
				mu.Unlock()
				// Autocommit read between transactions.
				if _, err := sess.Exec(`SELECT COUNT(*) FROM kv`); err != nil {
					t.Errorf("client %d: interleaved select: %v", c, err)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	res := mustExec(t, setup, `SELECT k FROM kv`)
	got := make(map[int]bool)
	for _, row := range res.Rows {
		got[int(row[0].I)] = true
	}
	want := make(map[int]bool)
	for i := 0; i < contested; i++ {
		if !deleted[i] {
			want[i] = true
		}
	}
	for k := range alive {
		want[k] = true
	}
	for k := range want {
		if !got[k] {
			t.Errorf("committed key %d missing from final state", k)
		}
	}
	for k := range got {
		if !want[k] {
			t.Errorf("key %d visible but never committed (or committed deleted)", k)
		}
	}
	if issues := setup.DB.Check(); len(issues) != 0 {
		t.Errorf("consistency check after soak: %v", issues)
	}
}
