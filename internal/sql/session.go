package sql

import (
	"errors"
	"fmt"
	"math"
	"strconv"
	"strings"
	"sync"
	"time"

	"lexequal/internal/core"
	"lexequal/internal/db"
	"lexequal/internal/metrics"
	"lexequal/internal/phoneme"
	"lexequal/internal/script"
	"lexequal/internal/store"
)

// Session executes SQL against a database with a configured LexEQUAL
// operator. Session settings (strategy, default threshold, cost
// parameters) are adjusted with SET statements:
//
//	SET lexequal_strategy  = naive | qgram | indexed
//	SET lexequal_threshold = 0.30
//	SET lexequal_icsc      = 0.25
//	SET lexequal_clusters  = default | coarse | fine
//	SET lexequal_weakindel = 0.5
//	SET parallelism        = 1 | n | 0 (0 = GOMAXPROCS)
//	SET lexequal_wal_flush = milliseconds (group-commit window)
//
// Explicit transactions span statements: BEGIN takes the query lock
// shared and opens a concurrent write transaction, every following
// statement runs in it, and COMMIT/ROLLBACK finishes it (durability is
// awaited after the locks drop, so concurrent committers share one
// fsync). Under MVCC snapshot isolation the shared lock is enough:
// readers never block behind writers, independent writers never block
// behind each other, and a write-write conflict surfaces as
// db.ErrSerializationFailure — the statement (or transaction) should
// be retried.
//
// A Session is safe for concurrent use: Exec serializes on a
// per-session mutex (statements from one session never interleave),
// and takes the database-level query lock — shared for reads and row
// DML, exclusive only for DDL — so many sessions can run against one
// DB.
type Session struct {
	// mu serializes Exec: session state (Strategy, Threshold, operator
	// rebuilds on SET) is mutated with no finer-grained synchronization,
	// so two goroutines sharing a session must not execute concurrently.
	mu        sync.Mutex
	DB        *db.DB
	Op        *core.Operator
	Funcs     *db.FuncRegistry
	Strategy  core.Strategy
	Threshold float64
	// Parallelism is the morsel-pool width of the LexEQUAL verification
	// stage (SET PARALLELISM = n). 1 is serial; 0 selects GOMAXPROCS.
	// Results are identical at any width.
	Parallelism int
	// Kernel selects the verification kernel (SET lexequal_kernel =
	// auto|scalar|bitvec). Auto engages the bit-parallel kernel whenever
	// the operator's cost model compiles; results are identical under
	// every setting.
	Kernel core.Kernel
	// Pipeline accumulates per-stage execution counters across the
	// session's LexEQUAL queries (SHOW LEXSTATS).
	Pipeline metrics.PipelineCounters

	// tx and txUnlock track an explicit transaction (BEGIN..COMMIT):
	// the concurrent database write transaction and the release of the
	// shared query lock, which the session holds across statements
	// until COMMIT/ROLLBACK so DDL and checkpoints serialize against
	// it. Isolation comes from MVCC, not the lock: other sessions read
	// and write concurrently and never observe its uncommitted writes.
	tx       *db.Tx
	txUnlock func()
	// snap is the snapshot the current statement reads under: the
	// explicit transaction's when one is open, else a fresh one at the
	// latest commit horizon (snapOwned — released after the statement).
	// The planner threads it into every scan and fetch.
	snap      *db.Snap
	snapOwned bool
	// stmtLSN is the commit LSN of the last statement-scoped
	// transaction, stashed by endStmtTxn for Exec to await after the
	// locks drop.
	stmtLSN uint64
}

// NewSession builds a session over an open database. A nil op selects
// the default operator configuration.
func NewSession(d *db.DB, op *core.Operator) (*Session, error) {
	if op == nil {
		var err error
		op, err = core.New(core.Options{})
		if err != nil {
			return nil, err
		}
	}
	s := &Session{
		DB:          d,
		Op:          op,
		Strategy:    core.Naive,
		Threshold:   op.Threshold(),
		Parallelism: 1,
	}
	s.installFuncs()
	return s, nil
}

func (s *Session) installFuncs() {
	s.Funcs = db.NewFuncRegistry()
	db.RegisterLexEqualUDF(s.Funcs, s.Op)
	// language(nstring) -> the row's language tag, enabling the paper's
	// Figure 5 predicate B1.Language <> B2.Language on tables that keep
	// the tag inside the NString rather than as a separate column.
	s.Funcs.Register("language", func(args []db.Value) (db.Value, error) {
		if len(args) != 1 || args[0].T != db.TNString {
			return db.Null(), fmt.Errorf("sql: language() expects one NSTRING argument")
		}
		return db.Str(string(args[0].Lang)), nil
	})
	// fold(text) strips Latin accents: the cheap lexicographic
	// normalization (§2.1 / the paper's multilexical companion report)
	// that complements the phonetic operator for same-script variants.
	s.Funcs.Register("fold", func(args []db.Value) (db.Value, error) {
		if len(args) != 1 {
			return db.Null(), fmt.Errorf("sql: fold() expects one argument")
		}
		v := args[0]
		v.S = script.FoldAccents(v.S)
		return v, nil
	})
}

// Result is the outcome of one statement.
type Result struct {
	Cols     []string
	Rows     []db.Row
	Affected int    // rows inserted
	Message  string // DDL/SET acknowledgement
}

// Exec parses, plans and runs one statement. It is safe to call from
// multiple goroutines: statements serialize per session, and the
// database query lock is taken shared or exclusive per statement class.
func (s *Session) Exec(sqlText string) (*Result, error) {
	s.mu.Lock()
	res, waitLSN, err := s.execLocked(sqlText)
	s.mu.Unlock()
	if err == nil && waitLSN != 0 {
		// COMMIT durability is awaited here, after every lock (session
		// and database) is released: concurrent committers then pile
		// into the log's collection window and share one group-commit
		// fsync instead of serializing on their own.
		if derr := s.DB.WaitDurable(waitLSN); derr != nil {
			return nil, derr
		}
	}
	return res, err
}

// execLocked runs one statement under the session mutex and returns a
// commit LSN to await after the locks drop (0 when there is nothing to
// await).
func (s *Session) execLocked(sqlText string) (*Result, uint64, error) {
	stmt, err := Parse(sqlText)
	if err != nil {
		return nil, 0, err
	}
	if s.DB.IsReplica() {
		// A read replica applies the primary's WAL stream and nothing
		// else: every mutating statement class is rejected up front with
		// a clear error, before any lock or transaction state is touched.
		// SELECT/EXPLAIN/SHOW/SET stay available, and CHECKPOINT maps to
		// the replica's flush-and-persist-floor variant.
		switch stmt.(type) {
		case *InsertStmt, *DeleteStmt, *CreateTableStmt, *CreateIndexStmt,
			*DropTableStmt, *BeginStmt, *CommitStmt, *RollbackStmt:
			return nil, 0, fmt.Errorf("sql: %w: this server is a read-only replica; send writes to the primary", db.ErrReplica)
		}
	}
	switch stmt.(type) {
	case *BeginStmt:
		res, err := s.execBegin()
		return res, 0, err
	case *CommitStmt:
		return s.execCommit()
	case *RollbackStmt:
		res, err := s.execRollback()
		return res, 0, err
	case *CheckpointStmt:
		res, err := s.execCheckpoint()
		return res, 0, err
	case *CreateTableStmt, *CreateIndexStmt, *DropTableStmt:
		if s.tx != nil {
			// DDL needs the exclusive query lock; the open transaction
			// holds it shared across statements, so the upgrade would
			// deadlock — and a failed DDL rollback escalates to in-place
			// recovery, which tolerates no concurrent transaction.
			return nil, 0, fmt.Errorf("sql: DDL inside a transaction is not supported")
		}
	}
	unlock := s.acquireDB(stmt)
	s.beginStmtSnap()
	res, err := s.exec(stmt)
	s.endStmtSnap()
	waitLSN := s.stmtLSN
	s.stmtLSN = 0
	if unlock != nil {
		unlock()
	}
	if err != nil && s.tx != nil {
		abort := false
		switch stmt.(type) {
		case *InsertStmt, *DeleteStmt:
			// A failed mutation poisons the whole explicit transaction
			// (its earlier writes may be what made the statement fail,
			// and partial statements must not commit).
			abort = true
		}
		if abort || s.tx.Done() {
			if rbErr := s.rollbackTxn(); rbErr != nil {
				err = errors.Join(err, rbErr)
			}
			err = fmt.Errorf("%w (the open transaction was rolled back)", err)
		}
	}
	if err != nil {
		waitLSN = 0
		if errors.Is(err, db.ErrSerializationFailure) {
			err = fmt.Errorf("%w; retry the transaction", err)
		}
	}
	return res, waitLSN, err
}

// beginStmtSnap points the planner at the snapshot the next statement
// reads under: the explicit transaction's (repeatable reads plus its
// own writes) or a fresh one at the latest commit horizon.
func (s *Session) beginStmtSnap() {
	if s.tx != nil {
		s.snap, s.snapOwned = s.tx.Snapshot(), false
		return
	}
	s.snap, s.snapOwned = s.DB.AcquireSnap(), true
}

// endStmtSnap releases a statement-scoped snapshot so version GC can
// advance past its horizon; a transaction's snapshot lives on until
// COMMIT/ROLLBACK.
func (s *Session) endStmtSnap() {
	if s.snapOwned {
		s.DB.ReleaseSnap(s.snap)
	}
	s.snap, s.snapOwned = nil, false
}

// execBegin opens an explicit transaction: it takes the shared query
// lock — held until COMMIT/ROLLBACK, so DDL and checkpoints wait but
// readers and other writers do not — and begins a concurrent write
// transaction that every following statement runs in.
func (s *Session) execBegin() (*Result, error) {
	if s.tx != nil {
		return nil, fmt.Errorf("sql: a transaction is already open")
	}
	unlock := s.lockShared()
	tx, err := s.DB.BeginTx()
	if err != nil {
		unlock()
		return nil, err
	}
	s.tx = tx
	s.txUnlock = unlock
	return &Result{Message: "transaction started"}, nil
}

// execCommit appends the commit record and hands the commit LSN to
// Exec, which awaits durability only after releasing the locks.
func (s *Session) execCommit() (*Result, uint64, error) {
	if s.tx == nil {
		return nil, 0, fmt.Errorf("sql: no transaction is open")
	}
	tx := s.tx
	defer s.endTxn()
	lsn, err := tx.CommitNoWait()
	if err != nil {
		return nil, 0, err
	}
	return &Result{Message: "transaction committed"}, lsn, nil
}

// execRollback abandons the open transaction via rollbackTxn.
func (s *Session) execRollback() (*Result, error) {
	if s.tx == nil {
		return nil, fmt.Errorf("sql: no transaction is open")
	}
	if err := s.rollbackTxn(); err != nil {
		return nil, err
	}
	return &Result{Message: "transaction rolled back"}, nil
}

// rollbackTxn aborts the open explicit transaction and clears the
// session's side of it. The rollback runs under the shared query lock
// held since BEGIN — compensation is plain latched page traffic, safe
// beside concurrent readers and writers. The catastrophic path (a
// rollback that cannot be compensated) is the db layer's problem: it
// escalates to in-place recovery only when no other transaction or
// snapshot is live, and marks the database unusable otherwise.
func (s *Session) rollbackTxn() error {
	tx := s.tx
	defer s.endTxn()
	if tx == nil || tx.Done() {
		return nil
	}
	return tx.Rollback()
}

// execCheckpoint runs an online fuzzy checkpoint. It takes no
// session-level query lock — the checkpoint acquires the lock shared
// in short rounds itself, so serving continues around it — but is
// rejected inside an explicit transaction, whose exclusive hold of
// that lock would deadlock the checkpoint.
func (s *Session) execCheckpoint() (*Result, error) {
	if s.tx != nil {
		return nil, fmt.Errorf("sql: CHECKPOINT inside a transaction is not supported")
	}
	st, err := s.DB.Checkpoint()
	if err != nil {
		return nil, err
	}
	return &Result{Message: fmt.Sprintf("checkpoint complete (lsn %d, redo floor %d, %d wal segments reclaimed)",
		st.LSN, st.Floor, st.SegmentsRemoved)}, nil
}

// endTxn drops the session's explicit-transaction state and releases
// the shared query lock.
func (s *Session) endTxn() {
	if s.txUnlock != nil {
		s.txUnlock()
		s.txUnlock = nil
	}
	s.tx = nil
}

// Reset rolls back any explicit transaction left open — the serving
// layer calls it when a client disconnects mid-transaction, so the
// exclusive query lock is never orphaned. The rollback error (if any)
// is returned for logging; Reset on a clean session is a no-op.
func (s *Session) Reset() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.tx == nil {
		return nil
	}
	return s.rollbackTxn()
}

// acquireDB takes the database-level query lock for one statement:
// shared for reads and row DML (MVCC snapshots isolate them), exclusive
// only for DDL, none for session-local SET/SHOW-LEXSTATS. It returns
// the release func.
func (s *Session) acquireDB(stmt Stmt) func() {
	if s.tx != nil {
		// An explicit transaction already holds the shared lock across
		// statements; re-acquiring would deadlock against a pending DDL.
		return nil
	}
	switch st := stmt.(type) {
	case *SelectStmt, *ExplainStmt, *InsertStmt, *DeleteStmt:
		// Readers and row writers all share: SELECTs never block behind
		// writers and independent writers never block each other —
		// write-write conflicts surface as ErrSerializationFailure from
		// the row that loses the claim race, not as lock waits.
		return s.lockShared()
	case *ShowStmt:
		if st.What == "LEXSTATS" {
			return nil // session counters only; no storage access
		}
		return s.lockShared()
	case *SetStmt:
		return nil // session state only
	default: // CREATE/DROP: DDL rewrites shared structures in place
		return s.lockExclusive()
	}
}

// lockShared and lockExclusive live in separate functions so the
// lockcheck analyzer's straight-line upgrade detection does not see an
// RLock-then-Lock sequence in one body.
func (s *Session) lockShared() func() {
	l := s.DB.QueryLock()
	l.RLock()
	return l.RUnlock
}

func (s *Session) lockExclusive() func() {
	l := s.DB.QueryLock()
	l.Lock()
	return l.Unlock
}

func (s *Session) exec(stmt Stmt) (*Result, error) {
	switch st := stmt.(type) {
	case *SelectStmt:
		node, names, _, err := s.planSelect(st)
		if err != nil {
			return nil, err
		}
		rows, err := db.Collect(node)
		if err != nil {
			return nil, err
		}
		return &Result{Cols: names, Rows: rows}, nil

	case *ExplainStmt:
		_, _, info, err := s.planSelect(st.Query)
		if err != nil {
			return nil, err
		}
		plan := fmt.Sprintf("%s [lexequal strategy: %s]", info.shape, info.strategy)
		if info.parallelism > 1 || info.parallelism == 0 {
			plan += fmt.Sprintf(" [parallelism: %d]", info.parallelism)
		}
		if info.kernel != "" {
			plan += fmt.Sprintf(" [kernel: %s]", info.kernel)
		}
		return &Result{
			Cols: []string{"plan"},
			Rows: []db.Row{{db.Str(plan)}},
		}, nil

	case *CreateTableStmt:
		cols := make(db.Schema, len(st.Cols))
		for i, c := range st.Cols {
			t, err := db.ParseType(c.Type)
			if err != nil {
				return nil, err
			}
			cols[i] = db.Column{Name: c.Name, Type: t}
		}
		if _, err := s.DB.CreateTable(st.Name, cols); err != nil {
			return nil, err
		}
		return &Result{Message: fmt.Sprintf("table %s created", st.Name)}, nil

	case *CreateIndexStmt:
		if _, err := s.DB.CreateIndex(st.Name, st.Table, st.Column); err != nil {
			return nil, err
		}
		return &Result{Message: fmt.Sprintf("index %s created", st.Name)}, nil

	case *DropTableStmt:
		if err := s.DB.DropTable(st.Name); err != nil {
			return nil, err
		}
		return &Result{Message: fmt.Sprintf("table %s dropped", st.Name)}, nil

	case *InsertStmt:
		return s.execInsert(st)

	case *DeleteStmt:
		return s.execDelete(st)

	case *SetStmt:
		return s.execSet(st)

	case *ShowStmt:
		var rows []db.Row
		var col string
		switch st.What {
		case "LEXSTATS":
			snap := s.Pipeline.Snapshot()
			rows = []db.Row{
				{db.Str("queries"), db.Int(snap.Queries)},
				{db.Str("rows_probed"), db.Int(snap.Rows)},
				{db.Str("pruned_length"), db.Int(snap.PrunedLength)},
				{db.Str("pruned_count"), db.Int(snap.PrunedCount)},
				{db.Str("pruned_sig"), db.Int(snap.PrunedSig)},
				{db.Str("candidates"), db.Int(snap.Candidates)},
				{db.Str("dp_cells"), db.Int(snap.DPCells)},
				{db.Str("bitvec_ops"), db.Int(snap.BitvecOps)},
				{db.Str("scalar_fallbacks"), db.Int(snap.ScalarFallbacks)},
				{db.Str("batches_built"), db.Int(snap.BatchesBuilt)},
				{db.Str("matches"), db.Int(snap.Matches)},
				{db.Str("sig_cache_hits"), db.Int(snap.SigCacheHits)},
			}
			return &Result{Cols: []string{"counter", "value"}, Rows: rows}, nil
		case "TABLES":
			col = "table"
			for _, name := range s.DB.Tables() {
				rows = append(rows, db.Row{db.Str(name)})
			}
		default:
			col = "index"
			for _, name := range s.DB.Indexes() {
				rows = append(rows, db.Row{db.Str(name)})
			}
		}
		return &Result{Cols: []string{col}, Rows: rows}, nil

	default:
		return nil, fmt.Errorf("sql: unhandled statement %T", stmt)
	}
}

// beginStmtTxn opens a statement-scoped transaction for a statement
// about to mutate n rows: the whole statement commits — and fsyncs —
// once, and the durability wait is deferred until the statement's
// locks drop (see endStmtTxn), so concurrent sessions' commits batch
// into one group-commit fsync. It returns nil (no wrapper needed) for
// statements mutating nothing, inside an explicit transaction, or with
// the WAL disabled.
func (s *Session) beginStmtTxn(n int) (*db.Tx, error) {
	if n < 1 || s.tx != nil || !s.DB.WALStats().Enabled {
		return nil, nil
	}
	return s.DB.BeginTx()
}

// endStmtTxn finishes a statement-scoped transaction. On success it
// appends the commit record without waiting for durability and stashes
// the commit LSN for Exec to await once the query lock is released. On
// failure it rolls the transaction back under the statement's shared
// lock — compensation is ordinary latched page traffic, and a
// transaction CommitNoWait itself could not finish is already done.
func (s *Session) endStmtTxn(tx *db.Tx, err error) error {
	if tx == nil {
		return err
	}
	if err != nil {
		if !tx.Done() {
			if rbErr := tx.Rollback(); rbErr != nil {
				err = errors.Join(err, rbErr)
			}
		}
		return err
	}
	lsn, err := tx.CommitNoWait()
	if err != nil {
		return err
	}
	s.stmtLSN = lsn
	return nil
}

// execInsert inserts the statement's rows, wrapped in one
// statement-scoped transaction when there are several.
func (s *Session) execInsert(st *InsertStmt) (*Result, error) {
	t, ok := s.DB.Table(st.Table)
	if !ok {
		return nil, fmt.Errorf("sql: no table %q", st.Table)
	}
	stmtTx, err := s.beginStmtTxn(len(st.Rows))
	if err != nil {
		return nil, err
	}
	tx := s.tx
	if stmtTx != nil {
		tx = stmtTx
	}
	n, err := s.insertRows(tx, t, st)
	if err = s.endStmtTxn(stmtTx, err); err != nil {
		return nil, err
	}
	return &Result{Affected: n, Message: fmt.Sprintf("%d row(s) inserted", n)}, nil
}

// insertRows writes the statement's rows under tx — the explicit
// transaction, a statement-scoped one, or nil on a WAL-less database
// (single-writer bulk mode, frozen versions).
func (s *Session) insertRows(tx *db.Tx, t *db.Table, st *InsertStmt) (int, error) {
	n := 0
	for _, astRow := range st.Rows {
		row := make(db.Row, len(astRow))
		for i, cell := range astRow {
			lit, ok := cell.(*Lit)
			if !ok {
				return n, fmt.Errorf("sql: INSERT values must be literals")
			}
			v := s.litValue(lit)
			// Coerce string literals to the column's declared type.
			if i < len(t.Columns) {
				v = coerce(v, t.Columns[i].Type)
			}
			row[i] = v
		}
		if _, err := t.InsertTx(tx, row); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}

// execDelete scans the table under the statement's snapshot, collects
// matching RIDs, then claims them for deletion (two phases so the scan
// never observes its own deletions). A row another transaction claimed
// or replaced since the snapshot fails the statement with
// ErrSerializationFailure — first writer wins.
func (s *Session) execDelete(st *DeleteStmt) (*Result, error) {
	t, ok := s.DB.Table(st.Table)
	if !ok {
		return nil, fmt.Errorf("sql: no table %q", st.Table)
	}
	sc, err := newScope(s, []TableRef{{Name: st.Table}})
	if err != nil {
		return nil, err
	}
	var pred db.Expr
	if st.Where != nil {
		pred, err = s.resolve(sc, st.Where)
		if err != nil {
			return nil, err
		}
	}
	var rids []store.RID
	err = t.ScanSnap(s.snap, func(rid store.RID, row db.Row) error {
		if pred != nil {
			v, err := pred.Eval(row)
			if err != nil {
				return err
			}
			if !v.Bool() {
				return nil
			}
		}
		rids = append(rids, rid)
		return nil
	})
	if err != nil {
		return nil, err
	}
	stmtTx, err := s.beginStmtTxn(len(rids))
	if err != nil {
		return nil, err
	}
	tx := s.tx
	if stmtTx != nil {
		tx = stmtTx
	}
	for _, rid := range rids {
		if err = t.DeleteTx(tx, rid); err != nil {
			break
		}
	}
	if err = s.endStmtTxn(stmtTx, err); err != nil {
		return nil, err
	}
	return &Result{Affected: len(rids), Message: fmt.Sprintf("%d row(s) deleted", len(rids))}, nil
}

// coerce adapts literal values to a column type where lossless:
// NString -> String (drop tag) and Int -> Float.
func coerce(v db.Value, want db.Type) db.Value {
	switch {
	case v.T == db.TNString && want == db.TString:
		return db.Str(v.S)
	case v.T == db.TString && want == db.TNString:
		return db.NStr(v.S, script.GuessLanguage(v.S))
	case v.T == db.TInt && want == db.TFloat:
		return db.Float(float64(v.I))
	}
	return v
}

// parseUnitInterval parses a SET value that must be a finite number in
// [0,1]. NaN slips through a plain `v < 0 || v > 1` guard (every NaN
// comparison is false) and Inf/negatives slipped through the old
// error-only checks on the cost parameters; all of them would otherwise
// reach the cost model and poison every subsequent distance.
func parseUnitInterval(name, value string) (float64, error) {
	v, err := strconv.ParseFloat(value, 64)
	if err != nil || math.IsNaN(v) || math.IsInf(v, 0) || v < 0 || v > 1 {
		return 0, fmt.Errorf("sql: %s must be a finite number in [0,1] (got %q)", name, value)
	}
	return v, nil
}

func (s *Session) execSet(st *SetStmt) (*Result, error) {
	ack := func() (*Result, error) {
		return &Result{Message: fmt.Sprintf("%s = %s", st.Name, st.Value)}, nil
	}
	switch st.Name {
	case "lexequal_strategy":
		strat, err := core.ParseStrategy(strings.ToLower(st.Value))
		if err != nil {
			return nil, err
		}
		s.Strategy = strat
		return ack()
	case "lexequal_threshold":
		v, err := parseUnitInterval(st.Name, st.Value)
		if err != nil {
			return nil, err
		}
		s.Threshold = v
		return ack()
	case "lexequal_icsc":
		v, err := parseUnitInterval(st.Name, st.Value)
		if err != nil {
			return nil, err
		}
		return s.rebuildOperator(core.Options{
			Registry: s.Op.Registry(), Clusters: s.Op.Clusters(),
			ICSC: v, ICSCSet: true,
			WeakIndel: s.Op.WeakIndel(), WeakIndelSet: true,
			DefaultThreshold: s.Threshold,
		}, ack)
	case "lexequal_clusters":
		cl, err := phoneme.ByName(st.Value)
		if err != nil {
			return nil, err
		}
		return s.rebuildOperator(core.Options{
			Registry: s.Op.Registry(), Clusters: cl,
			ICSC: s.Op.ICSC(), ICSCSet: true,
			WeakIndel: s.Op.WeakIndel(), WeakIndelSet: true,
			DefaultThreshold: s.Threshold,
		}, ack)
	case "lexequal_wal_flush":
		// The group-commit collection window, in milliseconds
		// (fractional allowed; 0 fsyncs immediately per commit).
		v, err := strconv.ParseFloat(st.Value, 64)
		if err != nil || math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			return nil, fmt.Errorf("sql: lexequal_wal_flush must be a non-negative number of milliseconds (got %q)", st.Value)
		}
		s.DB.SetWALFlushInterval(time.Duration(v * float64(time.Millisecond)))
		return ack()
	case "parallelism", "lexequal_parallelism":
		v, err := strconv.Atoi(st.Value)
		if err != nil || v < 0 {
			return nil, fmt.Errorf("sql: parallelism must be a non-negative integer (0 = GOMAXPROCS)")
		}
		s.Parallelism = v
		return ack()
	case "lexequal_kernel":
		k, err := core.ParseKernel(strings.ToLower(st.Value))
		if err != nil {
			return nil, err
		}
		s.Kernel = k
		return ack()
	case "lexequal_weakindel":
		v, err := parseUnitInterval(st.Name, st.Value)
		if err != nil {
			return nil, err
		}
		return s.rebuildOperator(core.Options{
			Registry: s.Op.Registry(), Clusters: s.Op.Clusters(),
			ICSC: s.Op.ICSC(), ICSCSet: true,
			WeakIndel: v, WeakIndelSet: true,
			DefaultThreshold: s.Threshold,
		}, ack)
	default:
		return nil, fmt.Errorf("sql: unknown setting %q", st.Name)
	}
}

func (s *Session) rebuildOperator(opts core.Options, ack func() (*Result, error)) (*Result, error) {
	op, err := core.New(opts)
	if err != nil {
		return nil, err
	}
	s.Op = op
	s.installFuncs()
	return ack()
}
