package sql

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"sync"

	"lexequal/internal/core"
	"lexequal/internal/db"
	"lexequal/internal/metrics"
	"lexequal/internal/phoneme"
	"lexequal/internal/script"
	"lexequal/internal/store"
)

// Session executes SQL against a database with a configured LexEQUAL
// operator. Session settings (strategy, default threshold, cost
// parameters) are adjusted with SET statements:
//
//	SET lexequal_strategy  = naive | qgram | indexed
//	SET lexequal_threshold = 0.30
//	SET lexequal_icsc      = 0.25
//	SET lexequal_clusters  = default | coarse | fine
//	SET lexequal_weakindel = 0.5
//	SET parallelism        = 1 | n | 0 (0 = GOMAXPROCS)
//
// A Session is safe for concurrent use: Exec serializes on a
// per-session mutex (statements from one session never interleave),
// and takes the database-level query lock — shared for reads,
// exclusive for DML/DDL — so many sessions can run against one DB.
type Session struct {
	// mu serializes Exec: session state (Strategy, Threshold, operator
	// rebuilds on SET) is mutated with no finer-grained synchronization,
	// so two goroutines sharing a session must not execute concurrently.
	mu        sync.Mutex
	DB        *db.DB
	Op        *core.Operator
	Funcs     *db.FuncRegistry
	Strategy  core.Strategy
	Threshold float64
	// Parallelism is the morsel-pool width of the LexEQUAL verification
	// stage (SET PARALLELISM = n). 1 is serial; 0 selects GOMAXPROCS.
	// Results are identical at any width.
	Parallelism int
	// Pipeline accumulates per-stage execution counters across the
	// session's LexEQUAL queries (SHOW LEXSTATS).
	Pipeline metrics.PipelineCounters
}

// NewSession builds a session over an open database. A nil op selects
// the default operator configuration.
func NewSession(d *db.DB, op *core.Operator) (*Session, error) {
	if op == nil {
		var err error
		op, err = core.New(core.Options{})
		if err != nil {
			return nil, err
		}
	}
	s := &Session{
		DB:          d,
		Op:          op,
		Strategy:    core.Naive,
		Threshold:   op.Threshold(),
		Parallelism: 1,
	}
	s.installFuncs()
	return s, nil
}

func (s *Session) installFuncs() {
	s.Funcs = db.NewFuncRegistry()
	db.RegisterLexEqualUDF(s.Funcs, s.Op)
	// language(nstring) -> the row's language tag, enabling the paper's
	// Figure 5 predicate B1.Language <> B2.Language on tables that keep
	// the tag inside the NString rather than as a separate column.
	s.Funcs.Register("language", func(args []db.Value) (db.Value, error) {
		if len(args) != 1 || args[0].T != db.TNString {
			return db.Null(), fmt.Errorf("sql: language() expects one NSTRING argument")
		}
		return db.Str(string(args[0].Lang)), nil
	})
	// fold(text) strips Latin accents: the cheap lexicographic
	// normalization (§2.1 / the paper's multilexical companion report)
	// that complements the phonetic operator for same-script variants.
	s.Funcs.Register("fold", func(args []db.Value) (db.Value, error) {
		if len(args) != 1 {
			return db.Null(), fmt.Errorf("sql: fold() expects one argument")
		}
		v := args[0]
		v.S = script.FoldAccents(v.S)
		return v, nil
	})
}

// Result is the outcome of one statement.
type Result struct {
	Cols     []string
	Rows     []db.Row
	Affected int    // rows inserted
	Message  string // DDL/SET acknowledgement
}

// Exec parses, plans and runs one statement. It is safe to call from
// multiple goroutines: statements serialize per session, and the
// database query lock is taken shared or exclusive per statement class.
func (s *Session) Exec(sqlText string) (*Result, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	stmt, err := Parse(sqlText)
	if err != nil {
		return nil, err
	}
	if unlock := s.acquireDB(stmt); unlock != nil {
		defer unlock()
	}
	return s.exec(stmt)
}

// acquireDB takes the database-level query lock for one statement:
// shared for read-only statements, exclusive for DML/DDL, none for
// session-local SET/SHOW-LEXSTATS. It returns the release func.
func (s *Session) acquireDB(stmt Stmt) func() {
	switch st := stmt.(type) {
	case *SelectStmt, *ExplainStmt:
		return s.lockShared()
	case *ShowStmt:
		if st.What == "LEXSTATS" {
			return nil // session counters only; no storage access
		}
		return s.lockShared()
	case *SetStmt:
		return nil // session state only
	default: // CREATE/DROP/INSERT/DELETE: writers serialize
		return s.lockExclusive()
	}
}

// lockShared and lockExclusive live in separate functions so the
// lockcheck analyzer's straight-line upgrade detection does not see an
// RLock-then-Lock sequence in one body.
func (s *Session) lockShared() func() {
	l := s.DB.QueryLock()
	l.RLock()
	return l.RUnlock
}

func (s *Session) lockExclusive() func() {
	l := s.DB.QueryLock()
	l.Lock()
	return l.Unlock
}

func (s *Session) exec(stmt Stmt) (*Result, error) {
	switch st := stmt.(type) {
	case *SelectStmt:
		node, names, _, err := s.planSelect(st)
		if err != nil {
			return nil, err
		}
		rows, err := db.Collect(node)
		if err != nil {
			return nil, err
		}
		return &Result{Cols: names, Rows: rows}, nil

	case *ExplainStmt:
		_, _, info, err := s.planSelect(st.Query)
		if err != nil {
			return nil, err
		}
		plan := fmt.Sprintf("%s [lexequal strategy: %s]", info.shape, info.strategy)
		if info.parallelism > 1 || info.parallelism == 0 {
			plan += fmt.Sprintf(" [parallelism: %d]", info.parallelism)
		}
		return &Result{
			Cols: []string{"plan"},
			Rows: []db.Row{{db.Str(plan)}},
		}, nil

	case *CreateTableStmt:
		cols := make(db.Schema, len(st.Cols))
		for i, c := range st.Cols {
			t, err := db.ParseType(c.Type)
			if err != nil {
				return nil, err
			}
			cols[i] = db.Column{Name: c.Name, Type: t}
		}
		if _, err := s.DB.CreateTable(st.Name, cols); err != nil {
			return nil, err
		}
		return &Result{Message: fmt.Sprintf("table %s created", st.Name)}, nil

	case *CreateIndexStmt:
		if _, err := s.DB.CreateIndex(st.Name, st.Table, st.Column); err != nil {
			return nil, err
		}
		return &Result{Message: fmt.Sprintf("index %s created", st.Name)}, nil

	case *DropTableStmt:
		if err := s.DB.DropTable(st.Name); err != nil {
			return nil, err
		}
		return &Result{Message: fmt.Sprintf("table %s dropped", st.Name)}, nil

	case *InsertStmt:
		t, ok := s.DB.Table(st.Table)
		if !ok {
			return nil, fmt.Errorf("sql: no table %q", st.Table)
		}
		n := 0
		for _, astRow := range st.Rows {
			row := make(db.Row, len(astRow))
			for i, cell := range astRow {
				lit, ok := cell.(*Lit)
				if !ok {
					return nil, fmt.Errorf("sql: INSERT values must be literals")
				}
				v := s.litValue(lit)
				// Coerce string literals to the column's declared type.
				if i < len(t.Columns) {
					v = coerce(v, t.Columns[i].Type)
				}
				row[i] = v
			}
			if _, err := t.Insert(row); err != nil {
				return nil, err
			}
			n++
		}
		return &Result{Affected: n, Message: fmt.Sprintf("%d row(s) inserted", n)}, nil

	case *DeleteStmt:
		return s.execDelete(st)

	case *SetStmt:
		return s.execSet(st)

	case *ShowStmt:
		var rows []db.Row
		var col string
		switch st.What {
		case "LEXSTATS":
			snap := s.Pipeline.Snapshot()
			rows = []db.Row{
				{db.Str("queries"), db.Int(snap.Queries)},
				{db.Str("rows_probed"), db.Int(snap.Rows)},
				{db.Str("pruned_length"), db.Int(snap.PrunedLength)},
				{db.Str("pruned_count"), db.Int(snap.PrunedCount)},
				{db.Str("candidates"), db.Int(snap.Candidates)},
				{db.Str("dp_cells"), db.Int(snap.DPCells)},
				{db.Str("matches"), db.Int(snap.Matches)},
				{db.Str("sig_cache_hits"), db.Int(snap.SigCacheHits)},
			}
			return &Result{Cols: []string{"counter", "value"}, Rows: rows}, nil
		case "TABLES":
			col = "table"
			for _, name := range s.DB.Tables() {
				rows = append(rows, db.Row{db.Str(name)})
			}
		default:
			col = "index"
			for _, name := range s.DB.Indexes() {
				rows = append(rows, db.Row{db.Str(name)})
			}
		}
		return &Result{Cols: []string{col}, Rows: rows}, nil

	default:
		return nil, fmt.Errorf("sql: unhandled statement %T", stmt)
	}
}

// execDelete scans the table, collects matching RIDs, then tombstones
// them (two phases so the scan never observes its own deletions).
func (s *Session) execDelete(st *DeleteStmt) (*Result, error) {
	t, ok := s.DB.Table(st.Table)
	if !ok {
		return nil, fmt.Errorf("sql: no table %q", st.Table)
	}
	sc, err := newScope(s, []TableRef{{Name: st.Table}})
	if err != nil {
		return nil, err
	}
	var pred db.Expr
	if st.Where != nil {
		pred, err = s.resolve(sc, st.Where)
		if err != nil {
			return nil, err
		}
	}
	var rids []store.RID
	err = t.Scan(func(rid store.RID, row db.Row) error {
		if pred != nil {
			v, err := pred.Eval(row)
			if err != nil {
				return err
			}
			if !v.Bool() {
				return nil
			}
		}
		rids = append(rids, rid)
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, rid := range rids {
		if err := t.Delete(rid); err != nil {
			return nil, err
		}
	}
	return &Result{Affected: len(rids), Message: fmt.Sprintf("%d row(s) deleted", len(rids))}, nil
}

// coerce adapts literal values to a column type where lossless:
// NString -> String (drop tag) and Int -> Float.
func coerce(v db.Value, want db.Type) db.Value {
	switch {
	case v.T == db.TNString && want == db.TString:
		return db.Str(v.S)
	case v.T == db.TString && want == db.TNString:
		return db.NStr(v.S, script.GuessLanguage(v.S))
	case v.T == db.TInt && want == db.TFloat:
		return db.Float(float64(v.I))
	}
	return v
}

// parseUnitInterval parses a SET value that must be a finite number in
// [0,1]. NaN slips through a plain `v < 0 || v > 1` guard (every NaN
// comparison is false) and Inf/negatives slipped through the old
// error-only checks on the cost parameters; all of them would otherwise
// reach the cost model and poison every subsequent distance.
func parseUnitInterval(name, value string) (float64, error) {
	v, err := strconv.ParseFloat(value, 64)
	if err != nil || math.IsNaN(v) || math.IsInf(v, 0) || v < 0 || v > 1 {
		return 0, fmt.Errorf("sql: %s must be a finite number in [0,1] (got %q)", name, value)
	}
	return v, nil
}

func (s *Session) execSet(st *SetStmt) (*Result, error) {
	ack := func() (*Result, error) {
		return &Result{Message: fmt.Sprintf("%s = %s", st.Name, st.Value)}, nil
	}
	switch st.Name {
	case "lexequal_strategy":
		strat, err := core.ParseStrategy(strings.ToLower(st.Value))
		if err != nil {
			return nil, err
		}
		s.Strategy = strat
		return ack()
	case "lexequal_threshold":
		v, err := parseUnitInterval(st.Name, st.Value)
		if err != nil {
			return nil, err
		}
		s.Threshold = v
		return ack()
	case "lexequal_icsc":
		v, err := parseUnitInterval(st.Name, st.Value)
		if err != nil {
			return nil, err
		}
		return s.rebuildOperator(core.Options{
			Registry: s.Op.Registry(), Clusters: s.Op.Clusters(),
			ICSC: v, ICSCSet: true,
			WeakIndel: s.Op.WeakIndel(), WeakIndelSet: true,
			DefaultThreshold: s.Threshold,
		}, ack)
	case "lexequal_clusters":
		cl, err := phoneme.ByName(st.Value)
		if err != nil {
			return nil, err
		}
		return s.rebuildOperator(core.Options{
			Registry: s.Op.Registry(), Clusters: cl,
			ICSC: s.Op.ICSC(), ICSCSet: true,
			WeakIndel: s.Op.WeakIndel(), WeakIndelSet: true,
			DefaultThreshold: s.Threshold,
		}, ack)
	case "parallelism", "lexequal_parallelism":
		v, err := strconv.Atoi(st.Value)
		if err != nil || v < 0 {
			return nil, fmt.Errorf("sql: parallelism must be a non-negative integer (0 = GOMAXPROCS)")
		}
		s.Parallelism = v
		return ack()
	case "lexequal_weakindel":
		v, err := parseUnitInterval(st.Name, st.Value)
		if err != nil {
			return nil, err
		}
		return s.rebuildOperator(core.Options{
			Registry: s.Op.Registry(), Clusters: s.Op.Clusters(),
			ICSC: s.Op.ICSC(), ICSCSet: true,
			WeakIndel: v, WeakIndelSet: true,
			DefaultThreshold: s.Threshold,
		}, ack)
	default:
		return nil, fmt.Errorf("sql: unknown setting %q", st.Name)
	}
}

func (s *Session) rebuildOperator(opts core.Options, ack func() (*Result, error)) (*Result, error) {
	op, err := core.New(opts)
	if err != nil {
		return nil, err
	}
	s.Op = op
	s.installFuncs()
	return ack()
}
