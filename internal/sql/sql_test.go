package sql

import (
	"strings"
	"testing"

	"lexequal/internal/core"
	"lexequal/internal/db"
	"lexequal/internal/script"
)

func newTestSession(t *testing.T) *Session {
	t.Helper()
	d, err := db.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	s, err := NewSession(d, nil)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func mustExec(t *testing.T, s *Session, sql string) *Result {
	t.Helper()
	res, err := s.Exec(sql)
	if err != nil {
		t.Fatalf("%s\n-> %v", sql, err)
	}
	return res
}

// loadBooks builds the Books.com catalog of Figure 1 (the languages
// with converters) through SQL.
func loadBooks(t *testing.T, s *Session) {
	t.Helper()
	mustExec(t, s, `CREATE TABLE Books (Author NVARCHAR, Title NVARCHAR, Price FLOAT, Language TEXT)`)
	mustExec(t, s, `INSERT INTO Books VALUES
		('Descartes' LANG french, 'Les Méditations Metaphysiques', 49.00, 'French'),
		('நேரு' LANG tamil, 'ஆசிய ஜோதி', 250, 'Tamil'),
		('Σαρρη' LANG greek, 'Παιχνίδια στο Πιάνο', 15.50, 'Greek'),
		('Nero' LANG english, 'The Coronation of the Virgin', 99.00, 'English'),
		('Nehru' LANG english, 'Discovery of India', 9.95, 'English'),
		('नेहरु' LANG hindi, 'भारत एक खोज', 175, 'Hindi')`)
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELEC x FROM t",
		"SELECT FROM t",
		"SELECT * FROM",
		"SELECT * FROM t WHERE",
		"SELECT * FROM t LIMIT -1",
		"SELECT * FROM t WHERE a LEXEQUAL 'x' THRESHOLD 2.0",
		"INSERT INTO t VALUES",
		"CREATE TABLE t",
		"SET x",
		"SELECT * FROM t; SELECT * FROM t",
		"SELECT * FROM t WHERE a = 'unterminated",
	}
	for _, q := range bad {
		if _, err := Parse(q); err == nil {
			t.Errorf("accepted %q", q)
		}
	}
}

func TestParseLexEqualForms(t *testing.T) {
	// Figure 3's syntax, both brace styles, wildcard, and join form.
	ok := []string{
		`select Author, Title from Books where Author LexEQUAL 'Nehru' Threshold 0.25 inlanguages { English, Hindi, Tamil, Greek }`,
		`SELECT * FROM Books WHERE Author LEXEQUAL 'Nehru' THRESHOLD 0.25 INLANGUAGES (English)`,
		`SELECT * FROM Books WHERE Author LEXEQUAL 'Nehru' INLANGUAGES { * }`,
		`SELECT * FROM Books WHERE Author LEXEQUAL 'Nehru'`,
		`select Author from Books B1, Books B2 where B1.Author LexEQUAL B2.Author Threshold 0.25 and B1.Language <> B2.Language`,
	}
	for _, q := range ok {
		if _, err := Parse(q); err != nil {
			t.Errorf("rejected %q: %v", q, err)
		}
	}
	stmt, err := Parse(`SELECT * FROM B WHERE a LEXEQUAL 'x' THRESHOLD 0.25 INLANGUAGES {english, hindi}`)
	if err != nil {
		t.Fatal(err)
	}
	sel := stmt.(*SelectStmt)
	m := sel.Where.(*LexMatch)
	if m.Threshold != 0.25 || len(m.Langs) != 2 {
		t.Errorf("LexMatch parsed wrong: %+v", m)
	}
}

func TestDDLInsertSelect(t *testing.T) {
	s := newTestSession(t)
	loadBooks(t, s)
	res := mustExec(t, s, `SELECT Author, Price FROM Books WHERE Price < 100 ORDER BY Price`)
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(res.Rows))
	}
	if res.Rows[0][1].F != 9.95 {
		t.Errorf("order by price wrong: %v", res.Rows)
	}
	if res.Cols[0] != "Author" {
		t.Errorf("cols = %v", res.Cols)
	}
}

func TestFigure2Sql1999Query(t *testing.T) {
	// The paper's Figure 2: the SQL:1999 way, an OR of exact constants.
	// Only exact (binary) matches are returned — which is the point.
	s := newTestSession(t)
	loadBooks(t, s)
	res := mustExec(t, s, `select Author, Title from Books where Author = 'Nehru' or Author = 'नेहरु' or Author = 'நேரு'`)
	if len(res.Rows) != 3 {
		t.Fatalf("Figure 2 query returned %d rows, want 3", len(res.Rows))
	}
}

func TestFigure3LexEqualQuery(t *testing.T) {
	// The paper's Figure 3, expected to return Figure 4's rows: the
	// English, Tamil and Hindi Nehru entries.
	s := newTestSession(t)
	loadBooks(t, s)
	res := mustExec(t, s, `select Author, Title, Price from Books
		where Author LexEQUAL 'Nehru' Threshold 0.30
		inlanguages { English, Hindi, Tamil, Greek }`)
	authors := map[string]bool{}
	for _, r := range res.Rows {
		authors[r[0].S] = true
	}
	for _, want := range []string{"Nehru", "नेहरु", "நேரு"} {
		if !authors[want] {
			t.Errorf("Figure 3 result missing %q (got %v)", want, authors)
		}
	}
	if authors["Descartes"] || authors["Σαρρη"] {
		t.Errorf("Figure 3 matched unrelated authors: %v", authors)
	}
}

func TestInLanguagesRestriction(t *testing.T) {
	s := newTestSession(t)
	loadBooks(t, s)
	res := mustExec(t, s, `SELECT Author FROM Books WHERE Author LEXEQUAL 'Nehru' THRESHOLD 0.30 INLANGUAGES { Hindi }`)
	if len(res.Rows) != 1 || res.Rows[0][0].S != "नेहरु" {
		t.Errorf("INLANGUAGES{Hindi} = %v", res.Rows)
	}
}

func TestQueryConstantLanguageGuessing(t *testing.T) {
	// A Devanagari constant without a LANG tag is detected as Hindi.
	s := newTestSession(t)
	loadBooks(t, s)
	res := mustExec(t, s, `SELECT Author FROM Books WHERE Author LEXEQUAL 'नेहरु' THRESHOLD 0.30`)
	found := false
	for _, r := range res.Rows {
		if r[0].S == "Nehru" {
			found = true
		}
	}
	if !found {
		t.Errorf("Devanagari query constant did not match English Nehru: %v", res.Rows)
	}
}

func TestFigure5JoinQuery(t *testing.T) {
	s := newTestSession(t)
	loadBooks(t, s)
	res := mustExec(t, s, `select B1.Author, B2.Author from Books B1, Books B2
		where B1.Author LexEQUAL B2.Author Threshold 0.30
		and B1.Language <> B2.Language`)
	// Nehru appears in 3 languages: 3*2 = 6 ordered cross-language
	// pairs... plus Nero matches at 0.30 against some Nehru variants.
	pairs := map[string]bool{}
	for _, r := range res.Rows {
		pairs[r[0].S+"|"+r[1].S] = true
	}
	for _, want := range []string{"Nehru|नेहरु", "नेहरु|Nehru", "Nehru|நேரு", "நேரு|नेहरु"} {
		if !pairs[want] {
			t.Errorf("join missing pair %s (got %v)", want, pairs)
		}
	}
	// Same-language pairs must be excluded by the Language predicate
	// (including the self-pairs).
	for p := range pairs {
		halves := strings.SplitN(p, "|", 2)
		if halves[0] == halves[1] {
			t.Errorf("self pair leaked: %s", p)
		}
	}
}

func TestJoinStrategiesAgreeViaSQL(t *testing.T) {
	// Build a conventional name table so the planner can use the
	// specialized join; results must not depend on the strategy (modulo
	// indexed false dismissals being a subset).
	s := newTestSession(t)
	op := s.Op
	texts := []core.Text{
		{Value: "Nehru", Lang: script.English},
		{Value: "नेहरु", Lang: script.Hindi},
		{Value: "நேரு", Lang: script.Tamil},
		{Value: "Gandhi", Lang: script.English},
		{Value: "गांधी", Lang: script.Hindi},
	}
	if _, err := db.CreateNameTable(s.DB, "names", op, texts, db.NameTableSpec{WithAux: true, WithIndexes: true}); err != nil {
		t.Fatal(err)
	}
	q := `select N1.id, N2.id from names N1, names N2
		where N1.name LexEQUAL N2.name Threshold 0.30
		and language(N1.name) <> language(N2.name)`
	baseline := mustExec(t, s, q)
	mustExec(t, s, `SET lexequal_strategy = qgram`)
	qg := mustExec(t, s, q)
	if len(qg.Rows) != len(baseline.Rows) {
		t.Errorf("qgram join %d rows, naive %d", len(qg.Rows), len(baseline.Rows))
	}
	mustExec(t, s, `SET lexequal_strategy = indexed`)
	idx := mustExec(t, s, q)
	if len(idx.Rows) > len(baseline.Rows) {
		t.Errorf("indexed join %d rows exceeds naive %d", len(idx.Rows), len(baseline.Rows))
	}
}

func TestSelectionStrategiesViaSQL(t *testing.T) {
	s := newTestSession(t)
	texts := []core.Text{
		{Value: "Nehru", Lang: script.English},
		{Value: "नेहरु", Lang: script.Hindi},
		{Value: "நேரு", Lang: script.Tamil},
		{Value: "Nero", Lang: script.English},
		{Value: "Gandhi", Lang: script.English},
	}
	if _, err := db.CreateNameTable(s.DB, "names", s.Op, texts, db.NameTableSpec{WithAux: true, WithIndexes: true}); err != nil {
		t.Fatal(err)
	}
	q := `SELECT id FROM names WHERE name LEXEQUAL 'Nehru' THRESHOLD 0.30 ORDER BY id`
	naive := mustExec(t, s, q)
	mustExec(t, s, `SET lexequal_strategy = qgram`)
	qg := mustExec(t, s, q)
	if len(naive.Rows) != len(qg.Rows) {
		t.Errorf("strategy results differ: naive %v qgram %v", naive.Rows, qg.Rows)
	}
	// EXPLAIN reflects the session strategy.
	exp := mustExec(t, s, `EXPLAIN `+q)
	if !strings.Contains(exp.Rows[0][0].S, "qgram") {
		t.Errorf("EXPLAIN = %v", exp.Rows[0][0].S)
	}
	mustExec(t, s, `SET lexequal_strategy = indexed`)
	exp = mustExec(t, s, `EXPLAIN `+q)
	if !strings.Contains(exp.Rows[0][0].S, "indexed") {
		t.Errorf("EXPLAIN = %v", exp.Rows[0][0].S)
	}
}

func TestGroupByHavingSQL(t *testing.T) {
	s := newTestSession(t)
	loadBooks(t, s)
	res := mustExec(t, s, `SELECT Language, COUNT(*) AS n, SUM(Price) FROM Books GROUP BY Language HAVING COUNT(*) >= 1 ORDER BY Language`)
	if len(res.Rows) != 5 {
		t.Fatalf("groups = %d, want 5: %v", len(res.Rows), res.Rows)
	}
	if res.Cols[1] != "n" {
		t.Errorf("alias lost: %v", res.Cols)
	}
	// English group has 2 books summing 108.95.
	for _, r := range res.Rows {
		if r[0].S == "English" {
			if r[1].I != 2 || r[2].F != 108.95 {
				t.Errorf("English group = %v", r)
			}
		}
	}
	// HAVING filters.
	res = mustExec(t, s, `SELECT Language, COUNT(*) FROM Books GROUP BY Language HAVING COUNT(*) > 1`)
	if len(res.Rows) != 1 || res.Rows[0][0].S != "English" {
		t.Errorf("having result = %v", res.Rows)
	}
}

func TestAggregateWithoutGroupBy(t *testing.T) {
	s := newTestSession(t)
	loadBooks(t, s)
	res := mustExec(t, s, `SELECT COUNT(*), MIN(Price), MAX(Price) FROM Books`)
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	r := res.Rows[0]
	if r[0].I != 6 || r[1].F != 9.95 || r[2].F != 250 {
		t.Errorf("aggregates = %v", r)
	}
}

func TestScalarFunctionsInSQL(t *testing.T) {
	s := newTestSession(t)
	loadBooks(t, s)
	res := mustExec(t, s, `SELECT soundex(Author), phonemes(Author), language(Author) FROM Books WHERE Author = 'Nehru'`)
	r := res.Rows[0]
	if r[0].S != "N600" || r[1].S != "neːru" || r[2].S != "english" {
		t.Errorf("functions = %v", r)
	}
}

func TestShowAndDrop(t *testing.T) {
	s := newTestSession(t)
	loadBooks(t, s)
	res := mustExec(t, s, `SHOW TABLES`)
	if len(res.Rows) != 1 || res.Rows[0][0].S != "Books" {
		t.Errorf("SHOW TABLES = %v", res.Rows)
	}
	mustExec(t, s, `DROP TABLE Books`)
	res = mustExec(t, s, `SHOW TABLES`)
	if len(res.Rows) != 0 {
		t.Errorf("tables after drop = %v", res.Rows)
	}
}

func TestSetValidation(t *testing.T) {
	s := newTestSession(t)
	for _, bad := range []string{
		`SET lexequal_strategy = warp`,
		`SET lexequal_threshold = 2`,
		`SET lexequal_clusters = imaginary`,
		`SET unknown_setting = 1`,
	} {
		if _, err := s.Exec(bad); err == nil {
			t.Errorf("accepted %q", bad)
		}
	}
	mustExec(t, s, `SET lexequal_threshold = 0.4`)
	if s.Threshold != 0.4 {
		t.Errorf("threshold = %v", s.Threshold)
	}
	mustExec(t, s, `SET lexequal_icsc = 0.5`)
	if s.Op.ICSC() != 0.5 {
		t.Errorf("icsc = %v", s.Op.ICSC())
	}
	mustExec(t, s, `SET lexequal_clusters = coarse`)
	if s.Op.Clusters().Name() != "coarse" {
		t.Errorf("clusters = %v", s.Op.Clusters().Name())
	}
	if s.Op.ICSC() != 0.5 {
		t.Error("icsc lost across cluster change")
	}
	mustExec(t, s, `SET lexequal_weakindel = 0`)
	if s.Op.WeakIndel() != 0 {
		t.Errorf("weakindel = %v", s.Op.WeakIndel())
	}
}

func TestPlannerErrors(t *testing.T) {
	s := newTestSession(t)
	loadBooks(t, s)
	bad := []string{
		`SELECT nosuch FROM Books`,
		`SELECT * FROM NoTable`,
		`SELECT B.x FROM Books B`,
		`SELECT * FROM Books B, Books B`,
		`SELECT Author FROM Books GROUP BY Language`,
		`SELECT nosuchfunc(Author) FROM Books`,
		`SELECT * FROM Books B1, Books B2, Books B3`,
		`INSERT INTO Books VALUES ('x')`,
		`INSERT INTO NoTable VALUES (1)`,
	}
	for _, q := range bad {
		if _, err := s.Exec(q); err == nil {
			t.Errorf("accepted %q", q)
		}
	}
}

func TestLimitAndArith(t *testing.T) {
	s := newTestSession(t)
	loadBooks(t, s)
	res := mustExec(t, s, `SELECT Price * 2 AS double FROM Books ORDER BY Price LIMIT 2`)
	if len(res.Rows) != 2 || res.Rows[0][0].F != 19.9 {
		t.Errorf("limit/arith = %v", res.Rows)
	}
}

func TestHashJoinPlanViaSQL(t *testing.T) {
	s := newTestSession(t)
	loadBooks(t, s)
	mustExec(t, s, `CREATE TABLE Prices (Language TEXT, Tax FLOAT)`)
	mustExec(t, s, `INSERT INTO Prices VALUES ('English', 0.1), ('Hindi', 0.2)`)
	res := mustExec(t, s, `SELECT B.Author, P.Tax FROM Books B, Prices P WHERE B.Language = P.Language ORDER BY B.Author`)
	if len(res.Rows) != 3 {
		t.Errorf("hash join rows = %d: %v", len(res.Rows), res.Rows)
	}
}

func TestNoResourceRowsInSQL(t *testing.T) {
	s := newTestSession(t)
	mustExec(t, s, `CREATE TABLE t (name NVARCHAR)`)
	mustExec(t, s, `INSERT INTO t VALUES ('بهنسي' LANG arabic), ('Nehru' LANG english)`)
	res := mustExec(t, s, `SELECT name FROM t WHERE name LEXEQUAL 'Nehru' THRESHOLD 0.3`)
	if len(res.Rows) != 1 || res.Rows[0][0].S != "Nehru" {
		t.Errorf("NORESOURCE handling = %v", res.Rows)
	}
}

func TestDeleteStatement(t *testing.T) {
	s := newTestSession(t)
	loadBooks(t, s)
	res := mustExec(t, s, `DELETE FROM Books WHERE Price > 100`)
	if res.Affected != 2 { // Tamil (250) and Hindi (175) rows
		t.Fatalf("deleted %d rows, want 2", res.Affected)
	}
	remaining := mustExec(t, s, `SELECT COUNT(*) FROM Books`)
	if remaining.Rows[0][0].I != 4 {
		t.Errorf("remaining = %v", remaining.Rows)
	}
	// Deleted rows no longer match LexEQUAL queries.
	found := mustExec(t, s, `SELECT Author FROM Books WHERE Author LEXEQUAL 'Nehru' THRESHOLD 0.2`)
	for _, r := range found.Rows {
		if r[0].S == "नेहरु" {
			t.Error("deleted Hindi row still matches")
		}
	}
	// Unconditional delete empties the table.
	mustExec(t, s, `DELETE FROM Books`)
	if n := mustExec(t, s, `SELECT COUNT(*) FROM Books`); n.Rows[0][0].I != 0 {
		t.Errorf("count after full delete = %v", n.Rows)
	}
	// Errors.
	if _, err := s.Exec(`DELETE FROM NoTable`); err == nil {
		t.Error("delete from missing table accepted")
	}
	if _, err := s.Exec(`DELETE FROM Books WHERE nosuch = 1`); err == nil {
		t.Error("delete with bad predicate accepted")
	}
}

func TestDeleteWithStaleIndexEntries(t *testing.T) {
	// Index readers must skip tombstoned rows: delete from an indexed
	// name table, then query through every strategy.
	s := newTestSession(t)
	texts := []core.Text{
		{Value: "Nehru", Lang: script.English},
		{Value: "नेहरु", Lang: script.Hindi},
		{Value: "நேரு", Lang: script.Tamil},
	}
	if _, err := db.CreateNameTable(s.DB, "names", s.Op, texts, db.NameTableSpec{WithAux: true, WithIndexes: true}); err != nil {
		t.Fatal(err)
	}
	mustExec(t, s, `DELETE FROM names WHERE id = 1`)
	for _, strat := range []string{"naive", "qgram", "indexed"} {
		mustExec(t, s, `SET lexequal_strategy = `+strat)
		res := mustExec(t, s, `SELECT id FROM names WHERE name LEXEQUAL 'Nehru' THRESHOLD 0.3`)
		for _, r := range res.Rows {
			if r[0].I == 1 {
				t.Errorf("strategy %s returned the deleted row", strat)
			}
		}
		if len(res.Rows) == 0 {
			t.Errorf("strategy %s returned nothing", strat)
		}
	}
}

func TestFoldUDF(t *testing.T) {
	s := newTestSession(t)
	mustExec(t, s, `CREATE TABLE t (name NVARCHAR)`)
	mustExec(t, s, `INSERT INTO t VALUES ('René' LANG french), ('Rene' LANG english)`)
	// Accent-insensitive equality via fold(): the cheap lexicographic
	// normalization complementing the phonetic operator.
	res := mustExec(t, s, `SELECT COUNT(*) FROM t WHERE fold(name) = 'Rene'`)
	if res.Rows[0][0].I != 2 {
		t.Errorf("fold equality matched %v rows", res.Rows[0][0])
	}
}

func TestExplainNaiveAndOrderByAggregate(t *testing.T) {
	s := newTestSession(t)
	loadBooks(t, s)
	// Books lacks the conventional pname/id layout, so the planner uses
	// the generic per-row predicate.
	exp := mustExec(t, s, `EXPLAIN SELECT Author FROM Books WHERE Author LEXEQUAL 'Nehru'`)
	if !strings.Contains(exp.Rows[0][0].S, "generic") {
		t.Errorf("EXPLAIN = %v", exp.Rows[0][0].S)
	}
	// ORDER BY an aggregate output.
	res := mustExec(t, s, `SELECT Language, COUNT(*) FROM Books GROUP BY Language ORDER BY COUNT(*) DESC LIMIT 1`)
	if len(res.Rows) != 1 || res.Rows[0][0].S != "English" {
		t.Errorf("order-by-aggregate = %v", res.Rows)
	}
}
