package sql

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"lexequal/internal/db"
)

// TestSetRejectsNonFiniteAndOutOfRange pins the fixed SET validation:
// NaN, ±Inf and out-of-range values must be rejected for every cost
// parameter before they reach the cost model, and valid values still
// take effect.
func TestSetRejectsNonFiniteAndOutOfRange(t *testing.T) {
	s := newTestSession(t)
	for _, name := range []string{"lexequal_icsc", "lexequal_weakindel", "lexequal_threshold"} {
		for _, bad := range []string{"NaN", "nan", "Inf", "+Inf", "-Inf", "Infinity", "-0.001", "1.001", "1e300", "x"} {
			stmt := fmt.Sprintf("SET %s = %s", name, bad)
			// Some forms die in the parser (negative literals, exponent
			// syntax); the rest must die in the execSet range check. Either
			// way the statement must be rejected.
			if _, err := s.Exec(stmt); err == nil {
				t.Errorf("%s: accepted", stmt)
			}
		}
		for _, good := range []string{"0", "1", "0.25"} {
			if _, err := s.Exec(fmt.Sprintf("SET %s = %s", name, good)); err != nil {
				t.Errorf("SET %s = %s rejected: %v", name, good, err)
			}
		}
	}
	// A rejected SET must not have disturbed the operator: boundary
	// values applied above are in effect, and matching still works.
	if _, err := s.Exec("SET lexequal_icsc = NaN"); err == nil {
		t.Fatal("NaN accepted")
	}
	if got := s.Op.ICSC(); math.IsNaN(got) || got != 0.25 {
		t.Errorf("ICSC after rejected SET = %v, want 0.25", got)
	}
}

// TestSessionExecSerialized shares one session between many goroutines
// issuing a racy mix of SET (operator rebuilds) and SELECT statements.
// Before Session.mu this was a data race on Strategy/Threshold/Op; now
// Exec serializes per session. Run under -race.
func TestSessionExecSerialized(t *testing.T) {
	s := newTestSession(t)
	loadBooks(t, s)
	var wg sync.WaitGroup
	errCh := make(chan error, 8)
	report := func(err error) {
		select {
		case errCh <- err:
		default:
		}
	}
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				var err error
				switch (g + i) % 4 {
				case 0:
					_, err = s.Exec("SET lexequal_icsc = 0.25")
				case 1:
					_, err = s.Exec("SET lexequal_threshold = 0.3")
				case 2:
					_, err = s.Exec("SELECT Author FROM Books WHERE Author LEXEQUAL 'Nehru' THRESHOLD 0.30")
				default:
					_, err = s.Exec("SHOW LEXSTATS")
				}
				if err != nil {
					report(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}

// TestConcurrentSessionsOneDB runs several sessions against one DB:
// readers in parallel with a writer session doing INSERT/DELETE. The
// db-level query lock must keep every SELECT internally consistent
// (a scan never observes a half-applied DML statement). Run under -race.
func TestConcurrentSessionsOneDB(t *testing.T) {
	d, err := db.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	setup, err := NewSession(d, nil)
	if err != nil {
		t.Fatal(err)
	}
	mustExec(t, setup, `CREATE TABLE kv (k INT, v INT)`)
	// The writer inserts rows in pairs inside one statement; readers
	// must always observe an even row count.
	mustExec(t, setup, `INSERT INTO kv VALUES (0, 0), (0, 1)`)

	var wg sync.WaitGroup
	errCh := make(chan error, 8)
	report := func(err error) {
		select {
		case errCh <- err:
		default:
		}
	}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sess, err := NewSession(d, nil)
			if err != nil {
				report(err)
				return
			}
			for i := 0; i < 40; i++ {
				res, err := sess.Exec(`SELECT COUNT(*) FROM kv`)
				if err != nil {
					report(err)
					return
				}
				if n := res.Rows[0][0].I; n%2 != 0 {
					report(fmt.Errorf("reader saw odd row count %d (torn DML)", n))
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		sess, err := NewSession(d, nil)
		if err != nil {
			report(err)
			return
		}
		for i := 1; i <= 30; i++ {
			if _, err := sess.Exec(fmt.Sprintf(`INSERT INTO kv VALUES (%d, 0), (%d, 1)`, i, i)); err != nil {
				report(err)
				return
			}
		}
	}()
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	res := mustExec(t, setup, `SELECT COUNT(*) FROM kv`)
	if n := res.Rows[0][0].I; n != 62 {
		t.Fatalf("final row count %d, want 62", n)
	}
}
