package sql

import (
	"fmt"
	"strings"

	"lexequal/internal/core"
	"lexequal/internal/db"
	"lexequal/internal/script"
)

// binding maps a FROM-clause table into the combined row.
type binding struct {
	name   string // binding name (alias or table name), lowercase
	table  *db.Table
	offset int // column offset in the combined row
}

// scope resolves identifiers against a set of bindings.
type scope struct {
	bindings []binding
	width    int
}

func newScope(s *Session, from []TableRef) (*scope, error) {
	sc := &scope{}
	seen := map[string]bool{}
	for _, ref := range from {
		t, ok := s.DB.Table(ref.Name)
		if !ok {
			return nil, fmt.Errorf("sql: no table %q", ref.Name)
		}
		b := strings.ToLower(ref.Binding())
		if seen[b] {
			return nil, fmt.Errorf("sql: duplicate table binding %q", ref.Binding())
		}
		seen[b] = true
		sc.bindings = append(sc.bindings, binding{name: b, table: t, offset: sc.width})
		sc.width += len(t.Columns)
	}
	return sc, nil
}

// lookup resolves qualifier.name to a combined-row index and its column.
func (sc *scope) lookup(qualifier, name string) (int, db.Column, error) {
	q := strings.ToLower(qualifier)
	found := -1
	var col db.Column
	for _, b := range sc.bindings {
		if q != "" && b.name != q {
			continue
		}
		ci := b.table.Columns.ColIndex(name)
		if ci < 0 {
			continue
		}
		if found >= 0 {
			return 0, col, fmt.Errorf("sql: ambiguous column %q", name)
		}
		found = b.offset + ci
		col = b.table.Columns[ci]
	}
	if found < 0 {
		if q != "" {
			return 0, col, fmt.Errorf("sql: no column %s.%s", qualifier, name)
		}
		return 0, col, fmt.Errorf("sql: no column %q", name)
	}
	return found, col, nil
}

// columns returns the combined schema, qualifying names when more than
// one table is bound.
func (sc *scope) columns() db.Schema {
	var out db.Schema
	for _, b := range sc.bindings {
		for _, c := range b.table.Columns {
			name := c.Name
			if len(sc.bindings) > 1 {
				name = b.name + "." + c.Name
			}
			out = append(out, db.Column{Name: name, Type: c.Type})
		}
	}
	return out
}

// resolve lowers an AST expression to an executable db.Expr.
func (s *Session) resolve(sc *scope, n Node) (db.Expr, error) {
	switch e := n.(type) {
	case *Ident:
		idx, _, err := sc.lookup(e.Qualifier, e.Name)
		if err != nil {
			return nil, err
		}
		return &db.ColRef{Idx: idx, Name: e.String()}, nil
	case *Lit:
		return &db.Const{V: s.litValue(e)}, nil
	case *Bin:
		l, err := s.resolve(sc, e.L)
		if err != nil {
			return nil, err
		}
		r, err := s.resolve(sc, e.R)
		if err != nil {
			return nil, err
		}
		return &db.Binary{Op: e.Op, L: l, R: r}, nil
	case *NotNode:
		inner, err := s.resolve(sc, e.E)
		if err != nil {
			return nil, err
		}
		return &db.Not{E: inner}, nil
	case *FuncCall:
		if isAggregate(e.Name) {
			return nil, fmt.Errorf("sql: aggregate %s not allowed here", e.Name)
		}
		fn, ok := s.Funcs.Lookup(e.Name)
		if !ok {
			return nil, fmt.Errorf("sql: unknown function %q", e.Name)
		}
		args := make([]db.Expr, len(e.Args))
		for i, a := range e.Args {
			arg, err := s.resolve(sc, a)
			if err != nil {
				return nil, err
			}
			args[i] = arg
		}
		return &db.Call{Name: e.Name, Fn: fn, Args: args}, nil
	case *LexMatch:
		// Generic (predicate) form: evaluated per row via the operator.
		l, err := s.resolve(sc, e.L)
		if err != nil {
			return nil, err
		}
		r, err := s.resolve(sc, e.R)
		if err != nil {
			return nil, err
		}
		langs, err := s.langSet(e.Langs)
		if err != nil {
			return nil, err
		}
		thr := e.Threshold
		if thr < 0 {
			thr = s.Threshold
		}
		// INLANGUAGES restricts the target (data) side, never a query
		// constant: the Figure 3 query names the search string in one
		// language and the match languages separately.
		_, lIsLit := e.L.(*Lit)
		_, rIsLit := e.R.(*Lit)
		op := s.Op
		desc := e.String()
		return &db.FuncExpr{Desc: desc, F: func(row db.Row) (db.Value, error) {
			lv, err := l.Eval(row)
			if err != nil {
				return db.Null(), err
			}
			rv, err := r.Eval(row)
			if err != nil {
				return db.Null(), err
			}
			lt, err := asText(lv)
			if err != nil {
				return db.Null(), err
			}
			rt, err := asText(rv)
			if err != nil {
				return db.Null(), err
			}
			if (!lIsLit && !langs.Contains(lt.Lang)) || (!rIsLit && !langs.Contains(rt.Lang)) {
				return db.Int(0), nil
			}
			res, err := op.Match(lt, rt, thr)
			if err != nil {
				return db.Null(), err
			}
			if res == core.True {
				return db.Int(1), nil
			}
			return db.Int(0), nil
		}}, nil
	default:
		return nil, fmt.Errorf("sql: cannot resolve %T", n)
	}
}

// litValue converts a literal AST node to a db.Value. String literals
// become language-tagged NStrings: the LANG tag wins, otherwise the
// script detector assigns the default language of the dominant script
// (the paper's footnote-1 model of tagged text, with §2.1's block-based
// guessing for untagged query constants).
func (s *Session) litValue(l *Lit) db.Value {
	switch l.Kind {
	case LitNull:
		return db.Null()
	case LitInt:
		return db.Int(l.I)
	case LitFloat:
		return db.Float(l.N)
	default:
		if l.Lang != "" {
			if lang, err := script.ParseLanguage(l.Lang); err == nil {
				return db.NStr(l.S, lang)
			}
		}
		return db.NStr(l.S, script.GuessLanguage(l.S))
	}
}

// asText coerces an NString value into a core.Text.
func asText(v db.Value) (core.Text, error) {
	if v.T != db.TNString {
		return core.Text{}, fmt.Errorf("sql: LEXEQUAL operand is %v, want a language-tagged string", v.T)
	}
	return core.Text{Value: v.S, Lang: v.Lang}, nil
}

// langSet parses an INLANGUAGES list.
func (s *Session) langSet(names []string) (core.LangSet, error) {
	if len(names) == 0 {
		return nil, nil
	}
	langs := make([]script.Language, 0, len(names))
	for _, n := range names {
		l, err := script.ParseLanguage(n)
		if err != nil {
			return nil, err
		}
		langs = append(langs, l)
	}
	return core.NewLangSet(langs...), nil
}

// conjuncts flattens a WHERE tree into AND-ed terms.
func conjuncts(n Node) []Node {
	if b, ok := n.(*Bin); ok && b.Op == "AND" {
		return append(conjuncts(b.L), conjuncts(b.R)...)
	}
	if n == nil {
		return nil
	}
	return []Node{n}
}

func isAggregate(name string) bool {
	switch strings.ToUpper(name) {
	case "COUNT", "MIN", "MAX", "SUM":
		return true
	}
	return false
}

// planInfo carries EXPLAIN information.
type planInfo struct {
	strategy    string
	shape       string
	parallelism int
	kernel      string
}

// configureLex applies the session execution knobs to a resolved
// LexConfig and notes them for EXPLAIN. The kernel shown is the
// model-level resolution (a pattern longer than one machine word still
// falls back to scalar per query at runtime).
func (s *Session) configureLex(cfg *db.LexConfig, info *planInfo) {
	cfg.Workers = s.Parallelism
	cfg.Counters = &s.Pipeline
	cfg.Kernel = s.Kernel
	cfg.Snap = s.snap
	info.parallelism = s.Parallelism
	info.kernel = s.Op.ResolveKernel(s.Kernel).String()
}

// planSelect lowers a SELECT into an executor tree.
func (s *Session) planSelect(sel *SelectStmt) (db.Node, []string, *planInfo, error) {
	sc, err := newScope(s, sel.From)
	if err != nil {
		return nil, nil, nil, err
	}
	info := &planInfo{strategy: "generic", parallelism: 1}

	// Build the base relation (scans + joins + where), recognizing the
	// LexEQUAL plan patterns.
	base, residual, err := s.planBase(sc, sel, info)
	if err != nil {
		return nil, nil, nil, err
	}
	if residual != nil {
		pred, err := s.resolve(sc, residual)
		if err != nil {
			return nil, nil, nil, err
		}
		base = &db.Filter{Child: base, Pred: pred}
	}

	if len(sel.GroupBy) > 0 || hasAggregates(sel) {
		return s.planAggregate(sc, sel, base, info)
	}

	// Non-aggregate: ORDER BY resolves against the base relation, then
	// projection, then LIMIT.
	if len(sel.OrderBy) > 0 {
		by := make([]db.Expr, len(sel.OrderBy))
		for i, o := range sel.OrderBy {
			e, err := s.resolve(sc, o)
			if err != nil {
				return nil, nil, nil, err
			}
			by[i] = e
		}
		base = &db.Sort{Child: base, By: by, Desc: sel.Desc}
	}
	node, names, err := s.planProjection(sc, sel, base)
	if err != nil {
		return nil, nil, nil, err
	}
	if sel.Limit >= 0 {
		node = &db.Limit{Child: node, N: sel.Limit}
	}
	return node, names, info, nil
}

// planBase plans FROM+WHERE, extracting a LexEQUAL pattern when
// possible; it returns the remaining (unconsumed) WHERE conjuncts as a
// single AST node (or nil).
func (s *Session) planBase(sc *scope, sel *SelectStmt, info *planInfo) (db.Node, Node, error) {
	terms := conjuncts(sel.Where)

	// Find a LexMatch conjunct.
	lexIdx := -1
	var lex *LexMatch
	for i, t := range terms {
		if m, ok := t.(*LexMatch); ok {
			lexIdx = i
			lex = m
			break
		}
	}

	rest := func(exclude ...int) Node {
		skip := map[int]bool{}
		for _, i := range exclude {
			skip[i] = true
		}
		var out Node
		for i, t := range terms {
			if skip[i] {
				continue
			}
			if out == nil {
				out = t
			} else {
				out = &Bin{Op: "AND", L: out, R: t}
			}
		}
		return out
	}

	switch len(sc.bindings) {
	case 1:
		b := sc.bindings[0]
		if lex != nil {
			// Selection pattern: column LEXEQUAL literal (either side).
			col, lit := lexSelArgs(lex)
			if col != nil && lit != nil {
				cfg, cfgErr := db.ResolveLexConfig(s.DB, b.table.Name, s.Op)
				if cfgErr == nil && s.matchesNameCol(sc, col, cfg) {
					langs, err := s.langSet(lex.Langs)
					if err != nil {
						return nil, nil, err
					}
					thr := lex.Threshold
					if thr < 0 {
						thr = s.Threshold
					}
					query := s.litValue(lit)
					qt, err := asText(query)
					if err != nil {
						return nil, nil, err
					}
					s.configureLex(cfg, info)
					node, strat := s.lexScan(cfg, qt, thr, langs)
					info.strategy = strat
					info.shape = fmt.Sprintf("lexequal-scan(%s) on %s", strat, b.table.Name)
					return node, rest(lexIdx), nil
				}
			}
			// Fall through: generic predicate filter handles it.
		}
		info.shape = "seqscan " + b.table.Name
		return db.NewSeqScanSnap(b.table, s.snap), rest(), nil

	case 2:
		if lex != nil {
			lcol, lok := lex.L.(*Ident)
			rcol, rok := lex.R.(*Ident)
			if lok && rok {
				li, _, lerr := sc.lookup(lcol.Qualifier, lcol.Name)
				ri, _, rerr := sc.lookup(rcol.Qualifier, rcol.Name)
				if lerr == nil && rerr == nil {
					lb := sc.bindingOf(li)
					rb := sc.bindingOf(ri)
					if lb != rb {
						leftCfg, err1 := db.ResolveLexConfig(s.DB, sc.bindings[lb].table.Name, s.Op)
						rightCfg, err2 := db.ResolveLexConfig(s.DB, sc.bindings[rb].table.Name, s.Op)
						if err1 == nil && err2 == nil &&
							s.matchesNameColAt(sc, li, leftCfg, lb) && s.matchesNameColAt(sc, ri, rightCfg, rb) {
							thr := lex.Threshold
							if thr < 0 {
								thr = s.Threshold
							}
							s.configureLex(leftCfg, info)
							s.configureLex(rightCfg, info)
							// EXPLAIN must report the kernel the join
							// actually verifies with: a cross-model join is
							// forced onto the scalar kernel whatever the
							// session knob says.
							if k, reason := db.JoinKernel(leftCfg, rightCfg); reason != "" {
								info.kernel = k.String() + " (" + reason + ")"
							}
							node := db.NewLexJoin(leftCfg, rightCfg, thr, false, s.Strategy)
							if lb > rb {
								// Output layout is left++right in FROM
								// order; NewLexJoin emits (leftCfg,
								// rightCfg). Swap to FROM order via a
								// projection-free reorder node.
								node = reorderNode(node, len(rightCfg.Table.Columns), len(leftCfg.Table.Columns))
							}
							info.strategy = s.Strategy.String()
							info.shape = fmt.Sprintf("lexequal-join(%s) %s x %s", s.Strategy, sc.bindings[0].table.Name, sc.bindings[1].table.Name)
							return node, rest(lexIdx), nil
						}
					}
				}
			}
		}
		// Generic: try a hash join on an equality conjunct.
		for i, t := range terms {
			b, ok := t.(*Bin)
			if !ok || b.Op != "=" {
				continue
			}
			le, lok := b.L.(*Ident)
			re, rok := b.R.(*Ident)
			if !lok || !rok {
				continue
			}
			li, _, lerr := sc.lookup(le.Qualifier, le.Name)
			ri, _, rerr := sc.lookup(re.Qualifier, re.Name)
			if lerr != nil || rerr != nil || sc.bindingOf(li) == sc.bindingOf(ri) {
				continue
			}
			if sc.bindingOf(li) == 1 {
				li, ri = ri, li
			}
			info.shape = "hashjoin"
			node := &db.HashJoin{
				Left:     db.NewSeqScanSnap(sc.bindings[0].table, s.snap),
				Right:    db.NewSeqScanSnap(sc.bindings[1].table, s.snap),
				LeftCol:  li,
				RightCol: ri - sc.bindings[1].offset,
			}
			return node, rest(i), nil
		}
		info.shape = "nestedloop"
		node := &db.NestedLoopJoin{
			Left:  db.NewSeqScanSnap(sc.bindings[0].table, s.snap),
			Right: db.NewSeqScanSnap(sc.bindings[1].table, s.snap),
		}
		return node, rest(), nil

	default:
		return nil, nil, fmt.Errorf("sql: FROM supports at most 2 tables (got %d)", len(sc.bindings))
	}
}

// lexScan picks the physical scan per the session strategy, falling
// back to naive when structures are missing.
func (s *Session) lexScan(cfg *db.LexConfig, query core.Text, thr float64, langs core.LangSet) (db.Node, string) {
	switch s.Strategy {
	case core.QGram:
		if cfg.Aux != nil {
			return db.NewLexScanQGram(cfg, query, thr, langs), "qgram"
		}
	case core.Indexed:
		if cfg.GroupIndex != nil {
			return db.NewLexScanIndexed(cfg, query, thr, langs), "indexed"
		}
	}
	return db.NewLexScanNaive(cfg, query, thr, langs), "naive"
}

// lexSelArgs decomposes a selection-form LexMatch into (column,
// literal) regardless of operand order.
func lexSelArgs(m *LexMatch) (*Ident, *Lit) {
	if c, ok := m.L.(*Ident); ok {
		if l, ok := m.R.(*Lit); ok && l.Kind == LitString {
			return c, l
		}
	}
	if c, ok := m.R.(*Ident); ok {
		if l, ok := m.L.(*Lit); ok && l.Kind == LitString {
			return c, l
		}
	}
	return nil, nil
}

// matchesNameCol reports whether ident resolves to cfg's name column.
func (s *Session) matchesNameCol(sc *scope, ident *Ident, cfg *db.LexConfig) bool {
	idx, _, err := sc.lookup(ident.Qualifier, ident.Name)
	return err == nil && idx == cfg.NameCol
}

// matchesNameColAt is matchesNameCol for multi-table scopes.
func (s *Session) matchesNameColAt(sc *scope, idx int, cfg *db.LexConfig, b int) bool {
	return idx-sc.bindings[b].offset == cfg.NameCol
}

// bindingOf returns which binding a combined-row index belongs to.
func (sc *scope) bindingOf(idx int) int {
	for i := len(sc.bindings) - 1; i >= 0; i-- {
		if idx >= sc.bindings[i].offset {
			return i
		}
	}
	return 0
}

// reorderNode swaps a (B ++ A) row into (A ++ B) order.
func reorderNode(child db.Node, widthB, widthA int) db.Node {
	exprs := make([]db.Expr, 0, widthA+widthB)
	for i := 0; i < widthA; i++ {
		exprs = append(exprs, &db.ColRef{Idx: widthB + i})
	}
	for i := 0; i < widthB; i++ {
		exprs = append(exprs, &db.ColRef{Idx: i})
	}
	return &db.Project{Child: child, Exprs: exprs}
}

// planProjection lowers the select list over the base relation.
func (s *Session) planProjection(sc *scope, sel *SelectStmt, base db.Node) (db.Node, []string, error) {
	var exprs []db.Expr
	var names []string
	for _, item := range sel.Items {
		if item.Star {
			for i, c := range sc.columns() {
				exprs = append(exprs, &db.ColRef{Idx: i, Name: c.Name})
				names = append(names, c.Name)
			}
			continue
		}
		e, err := s.resolve(sc, item.Expr)
		if err != nil {
			return nil, nil, err
		}
		exprs = append(exprs, e)
		if item.Alias != "" {
			names = append(names, item.Alias)
		} else {
			names = append(names, item.Expr.String())
		}
	}
	return &db.Project{Child: base, Exprs: exprs, Names: names}, names, nil
}

// hasAggregates reports whether any select item or HAVING uses an
// aggregate function.
func hasAggregates(sel *SelectStmt) bool {
	check := func(n Node) bool { return containsAggregate(n) }
	for _, item := range sel.Items {
		if !item.Star && check(item.Expr) {
			return true
		}
	}
	return sel.Having != nil && check(sel.Having)
}

func containsAggregate(n Node) bool {
	switch e := n.(type) {
	case *FuncCall:
		if isAggregate(e.Name) {
			return true
		}
		for _, a := range e.Args {
			if containsAggregate(a) {
				return true
			}
		}
	case *Bin:
		return containsAggregate(e.L) || containsAggregate(e.R)
	case *NotNode:
		return containsAggregate(e.E)
	case *LexMatch:
		return containsAggregate(e.L) || containsAggregate(e.R)
	}
	return false
}

// planAggregate plans GROUP BY / HAVING / aggregate select lists.
//
// The GroupBy output row is [keys..., aggs...]; select items and HAVING
// are rewritten against that layout: group-key expressions match by
// their printed form, aggregate calls match by normalized name+arg.
func (s *Session) planAggregate(sc *scope, sel *SelectStmt, base db.Node, info *planInfo) (db.Node, []string, *planInfo, error) {
	keys := make([]db.Expr, len(sel.GroupBy))
	keyRepr := make([]string, len(sel.GroupBy))
	for i, k := range sel.GroupBy {
		e, err := s.resolve(sc, k)
		if err != nil {
			return nil, nil, nil, err
		}
		keys[i] = e
		keyRepr[i] = k.String()
	}

	// Collect aggregates from the select list and HAVING.
	var aggs []db.Aggregate
	var aggRepr []string
	addAgg := func(f *FuncCall) (int, error) {
		repr := f.String()
		for i, r := range aggRepr {
			if r == repr {
				return i, nil
			}
		}
		var agg db.Aggregate
		switch strings.ToUpper(f.Name) {
		case "COUNT":
			agg = db.Aggregate{Kind: db.AggCount}
		case "MIN", "MAX", "SUM":
			if len(f.Args) != 1 {
				return 0, fmt.Errorf("sql: %s expects one argument", f.Name)
			}
			arg, err := s.resolve(sc, f.Args[0])
			if err != nil {
				return 0, err
			}
			kind := map[string]db.AggKind{"MIN": db.AggMin, "MAX": db.AggMax, "SUM": db.AggSum}[strings.ToUpper(f.Name)]
			agg = db.Aggregate{Kind: kind, Arg: arg}
		default:
			return 0, fmt.Errorf("sql: unknown aggregate %q", f.Name)
		}
		aggs = append(aggs, agg)
		aggRepr = append(aggRepr, repr)
		return len(aggs) - 1, nil
	}

	// rewrite maps a post-aggregation AST node onto the GroupBy output.
	var rewrite func(n Node) (db.Expr, error)
	rewrite = func(n Node) (db.Expr, error) {
		repr := n.String()
		for i, r := range keyRepr {
			if r == repr {
				return &db.ColRef{Idx: i, Name: repr}, nil
			}
		}
		switch e := n.(type) {
		case *FuncCall:
			if isAggregate(e.Name) {
				i, err := addAgg(e)
				if err != nil {
					return nil, err
				}
				return &db.ColRef{Idx: len(keys) + i, Name: e.String()}, nil
			}
			fn, ok := s.Funcs.Lookup(e.Name)
			if !ok {
				return nil, fmt.Errorf("sql: unknown function %q", e.Name)
			}
			args := make([]db.Expr, len(e.Args))
			for i, a := range e.Args {
				arg, err := rewrite(a)
				if err != nil {
					return nil, err
				}
				args[i] = arg
			}
			return &db.Call{Name: e.Name, Fn: fn, Args: args}, nil
		case *Bin:
			l, err := rewrite(e.L)
			if err != nil {
				return nil, err
			}
			r, err := rewrite(e.R)
			if err != nil {
				return nil, err
			}
			return &db.Binary{Op: e.Op, L: l, R: r}, nil
		case *NotNode:
			inner, err := rewrite(e.E)
			if err != nil {
				return nil, err
			}
			return &db.Not{E: inner}, nil
		case *Lit:
			return &db.Const{V: s.litValue(e)}, nil
		case *Ident:
			return nil, fmt.Errorf("sql: column %s must appear in GROUP BY or inside an aggregate", e)
		default:
			return nil, fmt.Errorf("sql: cannot use %T after aggregation", n)
		}
	}

	var outExprs []db.Expr
	var names []string
	for _, item := range sel.Items {
		if item.Star {
			return nil, nil, nil, fmt.Errorf("sql: SELECT * is not valid with GROUP BY")
		}
		e, err := rewrite(item.Expr)
		if err != nil {
			return nil, nil, nil, err
		}
		outExprs = append(outExprs, e)
		if item.Alias != "" {
			names = append(names, item.Alias)
		} else {
			names = append(names, item.Expr.String())
		}
	}
	var having db.Expr
	if sel.Having != nil {
		h, err := rewrite(sel.Having)
		if err != nil {
			return nil, nil, nil, err
		}
		having = h
	}
	var node db.Node = &db.GroupBy{Child: base, Keys: keys, Aggs: aggs, Having: having}
	if len(sel.OrderBy) > 0 {
		by := make([]db.Expr, len(sel.OrderBy))
		for i, o := range sel.OrderBy {
			e, err := rewrite(o)
			if err != nil {
				return nil, nil, nil, err
			}
			by[i] = e
		}
		node = &db.Sort{Child: node, By: by, Desc: sel.Desc}
	}
	node = &db.Project{Child: node, Exprs: outExprs, Names: names}
	if sel.Limit >= 0 {
		node = &db.Limit{Child: node, N: sel.Limit}
	}
	info.shape += "+aggregate"
	return node, names, info, nil
}
