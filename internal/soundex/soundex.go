// Package soundex implements the pseudo-phonetic matching codes the
// paper builds on: the classical Soundex algorithm (Knuth) that database
// systems ship for Latin scripts, its extension to the phoneme domain,
// and the Grouped Phoneme String Identifier that keys the phonetic
// B-tree index of §5.3.
package soundex

import (
	"strings"

	"lexequal/internal/phoneme"
)

// Classic computes the classical 4-character Soundex code of a Latin
// name (first letter + three digits, zero padded), as defined by Knuth
// and shipped by most database systems' SOUNDEX function. Non-Latin and
// non-letter characters are ignored; an empty input yields "0000".
func Classic(name string) string {
	const codes = "01230120022455012623010202" // a..z
	var first byte
	var digits []byte
	prev := byte('0')
scan:
	for _, r := range strings.ToLower(name) {
		if r < 'a' || r > 'z' {
			prev = '0'
			continue
		}
		c := codes[r-'a']
		if first == 0 {
			first = byte(r - 'a' + 'A')
			prev = c
			continue
		}
		switch c {
		case '0': // vowels and h/w/y: reset the run but emit nothing
			if r != 'h' && r != 'w' {
				prev = '0'
			}
		default:
			if c != prev {
				digits = append(digits, c)
				if len(digits) == 3 {
					break scan
				}
			}
			prev = c
		}
	}
	if first == 0 {
		return "0000"
	}
	for len(digits) < 3 {
		digits = append(digits, '0')
	}
	return string(first) + string(digits)
}

// GroupedID is the Grouped Phoneme String Identifier: the phoneme
// string projected onto its cluster IDs and packed into one integer, so
// that a standard database B-tree over integers indexes phonetic
// neighborhoods. Two strings collide exactly when they have the same
// cluster signature (up to the capacity cap), which is the paper's
// design: intra-cluster substitutions keep recall high, while any
// cross-cluster difference changes the key (the source of the method's
// false dismissals).
type GroupedID uint64

// maxGroupedLen bounds how many phonemes fit in the 64-bit key. Cluster
// IDs are packed in base (clusterCount+1); with the default 10-cluster
// partition that is 16 phonemes — longer strings share the key of their
// 16-phoneme prefix, a further (rare, documented) source of collisions
// rather than dismissals.
func maxGroupedLen(base uint64) int {
	n := 0
	acc := uint64(1)
	// Bound by int64 range: database INT columns store the key signed.
	for acc <= (1<<63-1)/base {
		acc *= base
		n++
	}
	return n
}

// Encoder computes GroupedIDs under a fixed cluster partition.
//
// By default the encoder skips glottal phonemes (h, ɦ, ʔ) before
// projecting to cluster digits: glottals are the segments scripts gain
// and lose outright in transliteration (Hindi writes the h of Nehru,
// Tamil does not), so keying the index on them would dismiss exactly
// the matches the cost model was tuned to keep. Schwa is NOT skipped:
// a schwa usually corresponds to a full vowel on the other side (an
// intra-cluster substitution), which the cluster projection already
// absorbs — dropping it one-sidedly would misalign the signatures.
// This is the "more robust design of phoneme clusters" the paper's
// §5.3 anticipates; NewEncoderKeepWeak provides the strict variant for
// the ablation.
type Encoder struct {
	clusters *phoneme.Clusters
	base     uint64
	maxLen   int
	keepWeak bool
}

// NewEncoder builds an encoder over the given partition (weak phonemes
// skipped).
func NewEncoder(c *phoneme.Clusters) *Encoder {
	base := uint64(c.Count()) + 1 // 0 is reserved so shorter ≠ padded
	return &Encoder{clusters: c, base: base, maxLen: maxGroupedLen(base)}
}

// NewEncoderKeepWeak builds an encoder that keys on every phoneme.
func NewEncoderKeepWeak(c *phoneme.Clusters) *Encoder {
	e := NewEncoder(c)
	e.keepWeak = true
	return e
}

// weakPhoneme is the encoder's skip set: glottal consonants only (see
// the Encoder doc for why schwa stays).
func weakPhoneme(p phoneme.Phoneme) bool {
	f := p.Features()
	return f.Class == phoneme.Consonant && f.Place == phoneme.Glottal
}

// Clusters returns the partition the encoder uses.
func (e *Encoder) Clusters() *phoneme.Clusters { return e.clusters }

// MaxLen returns how many leading phonemes contribute to the key.
func (e *Encoder) MaxLen() int { return e.maxLen }

// Encode returns the GroupedID of s: the base-(k+1) number whose digits
// are the cluster IDs of the first MaxLen (non-weak, unless
// keepWeak) phonemes.
func (e *Encoder) Encode(s phoneme.String) GroupedID {
	var id uint64
	n := 0
	for _, p := range s {
		if n >= e.maxLen {
			break
		}
		if !e.keepWeak && weakPhoneme(p) {
			continue
		}
		id = id*e.base + uint64(e.clusters.Of(p))
		n++
	}
	return GroupedID(id)
}

// Project returns the signature form of s: weak (glottal) phonemes
// removed, every remaining phoneme replaced by its cluster
// representative. Two strings have equal projections exactly when they
// have equal GroupedIDs (up to the length cap); positional q-grams are
// extracted from this form so that signature-invariant edits cannot
// perturb the gram table.
func (e *Encoder) Project(s phoneme.String) phoneme.String {
	out := make(phoneme.String, 0, len(s))
	for _, p := range s {
		if !e.keepWeak && weakPhoneme(p) {
			continue
		}
		out = append(out, e.clusters.Representative(p))
	}
	return out
}

// PhoneticCode renders the cluster-digit string of s (a Soundex-style
// code over the phoneme alphabet, unbounded length), mainly for
// diagnostics and tests.
func (e *Encoder) PhoneticCode(s phoneme.String) string {
	var b strings.Builder
	for _, p := range s {
		if !e.keepWeak && weakPhoneme(p) {
			continue
		}
		b.WriteByte(byte('A' + e.clusters.Of(p) - 1))
	}
	return b.String()
}
