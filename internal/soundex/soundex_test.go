package soundex

import (
	"testing"
	"testing/quick"

	"lexequal/internal/phoneme"
)

func TestClassicKnuthExamples(t *testing.T) {
	// The canonical examples from Knuth Vol. 3.
	cases := map[string]string{
		"Robert":      "R163",
		"Rupert":      "R163",
		"Euler":       "E460",
		"Gauss":       "G200",
		"Hilbert":     "H416",
		"Knuth":       "K530",
		"Lloyd":       "L300",
		"Lukasiewicz": "L222",
		"Ellery":      "E460",
		"Ghosh":       "G200",
		"Heilbronn":   "H416",
		"Kant":        "K530",
		"Ladd":        "L300",
		"Lissajous":   "L222",
	}
	for name, want := range cases {
		if got := Classic(name); got != want {
			t.Errorf("Classic(%q) = %q, want %q", name, got, want)
		}
	}
}

func TestClassicVariantsCollide(t *testing.T) {
	pairs := [][2]string{
		{"Cathy", "Kathy"}, // actually C/K differ in first letter!
	}
	// Soundex keeps the first letter, so Cathy/Kathy do NOT collide —
	// one of its classic weaknesses, and part of why the paper moves to
	// the phoneme domain.
	for _, p := range pairs {
		if Classic(p[0]) == Classic(p[1]) {
			t.Errorf("expected %q and %q to differ under Soundex (first-letter rule)", p[0], p[1])
		}
	}
	same := [][2]string{
		{"Smith", "Smyth"},
		{"Nehru", "Neru"},
		{"Catherine", "Cathryn"},
	}
	for _, p := range same {
		if Classic(p[0]) != Classic(p[1]) {
			t.Errorf("Classic(%q)=%q != Classic(%q)=%q", p[0], Classic(p[0]), p[1], Classic(p[1]))
		}
	}
}

func TestClassicEdgeCases(t *testing.T) {
	if got := Classic(""); got != "0000" {
		t.Errorf("Classic of empty = %q", got)
	}
	if got := Classic("123 !!"); got != "0000" {
		t.Errorf("Classic of non-letters = %q", got)
	}
	if got := Classic("A"); got != "A000" {
		t.Errorf("Classic(A) = %q", got)
	}
	// Case-insensitive.
	if Classic("NEHRU") != Classic("nehru") {
		t.Error("Classic is case sensitive")
	}
	// Non-Latin characters are ignored.
	if got := Classic("नेहरुNehru"); got != Classic("Nehru") {
		t.Errorf("Classic with Devanagari prefix = %q", got)
	}
}

func TestClassicHWTransparent(t *testing.T) {
	// h/w do not separate a run of same-coded consonants: Ashcraft is
	// A261 (s and c merge across the h), not A226.
	if got := Classic("Ashcraft"); got != "A261" {
		t.Errorf("Classic(Ashcraft) = %q, want A261", got)
	}
	if got := Classic("Tymczak"); got != "T522" {
		t.Errorf("Classic(Tymczak) = %q, want T522", got)
	}
	if got := Classic("Pfister"); got != "P236" {
		t.Errorf("Classic(Pfister) = %q, want P236", got)
	}
}

func TestEncoderBasics(t *testing.T) {
	e := NewEncoder(phoneme.DefaultClusters())
	if e.Clusters() != phoneme.DefaultClusters() {
		t.Error("Clusters() mismatch")
	}
	if e.MaxLen() < 10 {
		t.Errorf("MaxLen = %d, suspiciously small", e.MaxLen())
	}
	// Same cluster signature -> same ID.
	a := phoneme.MustParse("neru")
	b := phoneme.MustParse("neːrʊ") // length/quality variants within clusters
	if e.Encode(a) != e.Encode(b) {
		t.Errorf("cluster variants got different IDs: %s=%d %s=%d (%s vs %s)",
			a, e.Encode(a), b, e.Encode(b), e.PhoneticCode(a), e.PhoneticCode(b))
	}
	// Cross-cluster change -> different ID.
	c := phoneme.MustParse("neku")
	if e.Encode(a) == e.Encode(c) {
		t.Error("cross-cluster substitution kept the same ID")
	}
	// Length-sensitive.
	d := phoneme.MustParse("nerus")
	if e.Encode(a) == e.Encode(d) {
		t.Error("appended phoneme kept the same ID")
	}
}

func TestEncoderEmptyAndPrefixCap(t *testing.T) {
	e := NewEncoder(phoneme.DefaultClusters())
	if e.Encode(nil) != 0 {
		t.Error("empty string should encode to 0")
	}
	// Strings longer than MaxLen share their prefix's key.
	long := make(phoneme.String, e.MaxLen()+5)
	for i := range long {
		long[i] = phoneme.MustLookup("a")
	}
	prefix := long[:e.MaxLen()]
	if e.Encode(long) != e.Encode(prefix) {
		t.Error("over-length string does not collide with its prefix")
	}
}

func TestEncoderLeadingZeroDistinct(t *testing.T) {
	// Base has a reserved 0 digit, so "x" and "xx" (same cluster) must
	// differ: padding ambiguity would merge different-length strings.
	e := NewEncoder(phoneme.DefaultClusters())
	one := phoneme.MustParse("a")
	two := phoneme.MustParse("aa")
	if e.Encode(one) == e.Encode(two) {
		t.Error("strings of different length collide")
	}
}

func TestEncoderAgreesAcrossClusterSets(t *testing.T) {
	// Coarse clusters must merge at least everything default merges.
	def := NewEncoder(phoneme.DefaultClusters())
	coarse := NewEncoder(phoneme.CoarseClusters())
	pairs := [][2]string{{"pat", "bat"}, {"neru", "neːrʊ"}, {"sita", "ɡita"}}
	for _, p := range pairs {
		a, b := phoneme.MustParse(p[0]), phoneme.MustParse(p[1])
		if def.Encode(a) == def.Encode(b) && coarse.Encode(a) != coarse.Encode(b) {
			t.Errorf("coarse splits %s/%s which default merges", p[0], p[1])
		}
	}
}

// Property: Encode is a function of the signature projection — two
// strings get equal IDs iff their (capped) projections have equal
// cluster signatures. (The projection drops glottals, so the oracle
// must too.)
func TestQuickEncodeSignatureConsistency(t *testing.T) {
	e := NewEncoder(phoneme.DefaultClusters())
	all := phoneme.All()
	mk := func(bs []byte) phoneme.String {
		if len(bs) > e.MaxLen() {
			bs = bs[:e.MaxLen()]
		}
		s := make(phoneme.String, 0, len(bs))
		for _, b := range bs {
			s = append(s, all[int(b)%len(all)])
		}
		return s
	}
	f := func(ba, bb []byte) bool {
		a, b := mk(ba), mk(bb)
		sigEq := e.Clusters().Signature(e.Project(a)) == e.Clusters().Signature(e.Project(b))
		return sigEq == (e.Encode(a) == e.Encode(b))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestPhoneticCode(t *testing.T) {
	e := NewEncoder(phoneme.DefaultClusters())
	code := e.PhoneticCode(phoneme.MustParse("neru"))
	if len(code) != 4 {
		t.Errorf("PhoneticCode length = %d, want 4 (%q)", len(code), code)
	}
	if e.PhoneticCode(phoneme.MustParse("neːrʊ")) != code {
		t.Error("cluster variants have different phonetic codes")
	}
}

func TestEncoderSkipsGlottals(t *testing.T) {
	e := NewEncoder(phoneme.DefaultClusters())
	// Hindi neːɦrʊ and Tamil neːɾu share a grouped id despite the ɦ.
	hi := phoneme.MustParse("neːɦrʊ")
	ta := phoneme.MustParse("neːɾu")
	if e.Encode(hi) != e.Encode(ta) {
		t.Errorf("glottal indel changed the key: %s vs %s", e.PhoneticCode(hi), e.PhoneticCode(ta))
	}
	// The strict encoder separates them.
	strict := NewEncoderKeepWeak(phoneme.DefaultClusters())
	if strict.Encode(hi) == strict.Encode(ta) {
		t.Error("keep-weak encoder merged glottal variants")
	}
	// Schwa is retained by both.
	a := phoneme.MustParse("nerə")
	b := phoneme.MustParse("ner")
	if e.Encode(a) == e.Encode(b) {
		t.Error("schwa was skipped from the key")
	}
}

func TestEncoderProject(t *testing.T) {
	e := NewEncoder(phoneme.DefaultClusters())
	p := e.Project(phoneme.MustParse("neːɦrʊ"))
	q := e.Project(phoneme.MustParse("neru"))
	if !p.Equal(q) {
		t.Errorf("projections differ: %v vs %v", p, q)
	}
	// Projection is idempotent.
	if !e.Project(p).Equal(p) {
		t.Error("projection not idempotent")
	}
	// Cross-cluster content is preserved.
	r := e.Project(phoneme.MustParse("neku"))
	if r.Equal(q) {
		t.Error("projection erased a cross-cluster difference")
	}
}
