// Package script provides the writing-system layer of the reproduction:
// language identifiers, Unicode script detection (the paper's §2.1 notes
// that language identification from character blocks is approximate —
// GuessLanguage implements exactly that heuristic), and the
// phoneme-to-orthography renderers used to synthesize the Hindi and
// Tamil sides of the tagged multiscript lexicon.
package script

import (
	"fmt"
	"strings"
	"unicode"
)

// Language identifies a natural language. Values are lowercase English
// names, matching the paper's INLANGUAGES syntax.
type Language string

// Languages known to the system.
const (
	Unknown  Language = ""
	English  Language = "english"
	Hindi    Language = "hindi"
	Tamil    Language = "tamil"
	Greek    Language = "greek"
	Spanish  Language = "spanish"
	French   Language = "french"
	Arabic   Language = "arabic" // appears in the paper's motivating catalog
	Japanese Language = "japanese"
)

// ParseLanguage normalizes a user-supplied language name.
func ParseLanguage(s string) (Language, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "english", "en":
		return English, nil
	case "hindi", "hi":
		return Hindi, nil
	case "tamil", "ta":
		return Tamil, nil
	case "greek", "el":
		return Greek, nil
	case "spanish", "es":
		return Spanish, nil
	case "french", "fr":
		return French, nil
	case "arabic", "ar":
		return Arabic, nil
	case "japanese", "ja":
		return Japanese, nil
	default:
		return Unknown, fmt.Errorf("script: unknown language %q", s)
	}
}

func (l Language) String() string {
	if l == Unknown {
		return "unknown"
	}
	return string(l)
}

// Script identifies a writing system.
type Script uint8

// Writing systems distinguished by the detector.
const (
	ScriptUnknown Script = iota
	Latin
	Devanagari
	TamilScript
	GreekScript
	ArabicScript
	Han
	Kana
)

func (s Script) String() string {
	names := [...]string{"unknown", "latin", "devanagari", "tamil", "greek", "arabic", "han", "kana"}
	if int(s) < len(names) {
		return names[s]
	}
	return fmt.Sprintf("Script(%d)", uint8(s))
}

// runeScript classifies one rune by Unicode block.
func runeScript(r rune) Script {
	switch {
	case unicode.Is(unicode.Latin, r):
		return Latin
	case r >= 0x0900 && r <= 0x097F:
		return Devanagari
	case r >= 0x0B80 && r <= 0x0BFF:
		return TamilScript
	case unicode.Is(unicode.Greek, r):
		return GreekScript
	case unicode.Is(unicode.Arabic, r):
		return ArabicScript
	case unicode.Is(unicode.Han, r):
		return Han
	case unicode.Is(unicode.Hiragana, r) || unicode.Is(unicode.Katakana, r):
		return Kana
	default:
		return ScriptUnknown
	}
}

// DetectScript returns the dominant script of text by rune count;
// non-letter runes are ignored. Ties resolve to the script seen first.
func DetectScript(text string) Script {
	counts := map[Script]int{}
	order := map[Script]int{}
	seq := 0
	for _, r := range text {
		s := runeScript(r)
		if s == ScriptUnknown {
			continue
		}
		if _, seen := order[s]; !seen {
			order[s] = seq
			seq++
		}
		counts[s]++
	}
	best, bestN, bestOrd := ScriptUnknown, 0, 1<<30
	for s, n := range counts {
		if n > bestN || (n == bestN && order[s] < bestOrd) {
			best, bestN, bestOrd = s, n, order[s]
		}
	}
	return best
}

// GuessLanguage maps the dominant script of text to a default language,
// implementing the paper's observation that Unicode blocks identify
// languages only approximately (Latin text defaults to English; a
// catalog would carry explicit language tags, as ours does).
func GuessLanguage(text string) Language {
	switch DetectScript(text) {
	case Latin:
		return English
	case Devanagari:
		return Hindi
	case TamilScript:
		return Tamil
	case GreekScript:
		return Greek
	case ArabicScript:
		return Arabic
	case Han, Kana:
		return Japanese
	default:
		return Unknown
	}
}

// DefaultScript returns the script a language is conventionally written
// in.
func DefaultScript(l Language) Script {
	switch l {
	case English, Spanish, French:
		return Latin
	case Hindi:
		return Devanagari
	case Tamil:
		return TamilScript
	case Greek:
		return GreekScript
	case Arabic:
		return ArabicScript
	case Japanese:
		return Kana
	default:
		return ScriptUnknown
	}
}

// FoldAccents strips Latin diacritics (é -> e, ñ -> n), implementing
// the "simple lexicographic and accent variations" matching the paper's
// §2.1 delegates to its companion multilexical-matching report. It
// leaves non-Latin text untouched.
func FoldAccents(s string) string {
	var b strings.Builder
	b.Grow(len(s))
	for _, r := range s {
		if f, ok := latinAccentFold[r]; ok {
			b.WriteRune(f)
		} else {
			b.WriteRune(r)
		}
	}
	return b.String()
}

var latinAccentFold = map[rune]rune{
	'á': 'a', 'à': 'a', 'â': 'a', 'ä': 'a', 'ã': 'a', 'å': 'a', 'ā': 'a',
	'Á': 'A', 'À': 'A', 'Â': 'A', 'Ä': 'A', 'Ã': 'A', 'Å': 'A',
	'é': 'e', 'è': 'e', 'ê': 'e', 'ë': 'e', 'ē': 'e',
	'É': 'E', 'È': 'E', 'Ê': 'E', 'Ë': 'E',
	'í': 'i', 'ì': 'i', 'î': 'i', 'ï': 'i', 'ī': 'i',
	'Í': 'I', 'Ì': 'I', 'Î': 'I', 'Ï': 'I',
	'ó': 'o', 'ò': 'o', 'ô': 'o', 'ö': 'o', 'õ': 'o', 'ō': 'o', 'ő': 'o',
	'Ó': 'O', 'Ò': 'O', 'Ô': 'O', 'Ö': 'O', 'Õ': 'O',
	'ú': 'u', 'ù': 'u', 'û': 'u', 'ü': 'u', 'ū': 'u',
	'Ú': 'U', 'Ù': 'U', 'Û': 'U', 'Ü': 'U',
	'ñ': 'n', 'Ñ': 'N', 'ç': 'c', 'Ç': 'C',
	'ý': 'y', 'ÿ': 'y', 'ø': 'o', 'Ø': 'O',
}
