package script

import (
	"testing"

	"lexequal/internal/phoneme"
)

func TestParseLanguage(t *testing.T) {
	cases := map[string]Language{
		"english": English, "EN": English, " Hindi ": Hindi, "ta": Tamil,
		"greek": Greek, "es": Spanish, "french": French, "ar": Arabic, "ja": Japanese,
	}
	for in, want := range cases {
		got, err := ParseLanguage(in)
		if err != nil || got != want {
			t.Errorf("ParseLanguage(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseLanguage("klingon"); err == nil {
		t.Error("unknown language accepted")
	}
}

func TestDetectScript(t *testing.T) {
	cases := []struct {
		text string
		want Script
	}{
		{"Nehru", Latin},
		{"नेहरु", Devanagari},
		{"நேரு", TamilScript},
		{"Νερου", GreekScript},
		{"بهنسي", ArabicScript},
		{"寺井正博", Han},
		{"ひらがな", Kana},
		{"12345 --", ScriptUnknown},
		{"", ScriptUnknown},
	}
	for _, c := range cases {
		if got := DetectScript(c.text); got != c.want {
			t.Errorf("DetectScript(%q) = %v, want %v", c.text, got, c.want)
		}
	}
}

func TestDetectScriptMajority(t *testing.T) {
	// Mixed text: majority wins.
	if got := DetectScript("Nehru नेहरूजी महोदय"); got != Devanagari {
		t.Errorf("majority detection = %v, want devanagari", got)
	}
}

func TestGuessLanguage(t *testing.T) {
	cases := map[string]Language{
		"Nehru": English,
		"नेहरु": Hindi,
		"நேரு":  Tamil,
		"Νερου": Greek,
		"بهنسي": Arabic,
		"寺井正博":  Japanese,
		"::123": Unknown,
	}
	for text, want := range cases {
		if got := GuessLanguage(text); got != want {
			t.Errorf("GuessLanguage(%q) = %v, want %v", text, got, want)
		}
	}
}

func TestDefaultScriptRoundTrip(t *testing.T) {
	for _, l := range []Language{English, Hindi, Tamil, Greek, Spanish, French, Arabic} {
		if DefaultScript(l) == ScriptUnknown {
			t.Errorf("no default script for %v", l)
		}
	}
	if DefaultScript(Unknown) != ScriptUnknown {
		t.Error("unknown language has a script")
	}
}

func TestToDevanagariBasics(t *testing.T) {
	cases := []struct {
		ipa, want string
	}{
		{"neːru", "नेरु"},              // Nehru's Tamil-side phonemes render cleanly
		{"raːm", "राम"},                // final consonant bare (no virama) in Hindi
		{"dʒəʋaːɦərəlaːl", "जवाहरलाल"}, // schwas inherent (orthographic schwa, deleted in speech)
		{"iːʃaː", "ईशा"},               // initial independent vowel
		{"indu", "इन्दु"},              // consonant cluster takes virama
	}
	for _, c := range cases {
		if got := ToDevanagari(phoneme.MustParse(c.ipa)); got != c.want {
			t.Errorf("ToDevanagari(%s) = %q, want %q", c.ipa, got, c.want)
		}
	}
}

func TestToDevanagariScriptIsDevanagari(t *testing.T) {
	out := ToDevanagari(phoneme.MustParse("kriʃnə"))
	if DetectScript(out) != Devanagari {
		t.Errorf("rendered %q is not devanagari", out)
	}
}

func TestToTamilBasics(t *testing.T) {
	cases := []struct {
		ipa, want string
	}{
		{"neːru", "நேரு"},      // the paper's canonical example (Fig. 1/9)
		{"raːm", "ராம்"},       // final consonant takes pulli in Tamil
		{"kamalaː", "கமலா"},    // inherent vowels
		{"indiraː", "இன்திரா"}, // medial n uses ன
	}
	for _, c := range cases {
		if got := ToTamil(phoneme.MustParse(c.ipa)); got != c.want {
			t.Errorf("ToTamil(%s) = %q, want %q", c.ipa, got, c.want)
		}
	}
}

func TestToTamilLosesVoicing(t *testing.T) {
	// Tamil orthography cannot distinguish k from ɡ: Gita and Kita
	// render identically — the core phoneme-set mismatch of the paper.
	g := ToTamil(phoneme.MustParse("ɡiːtaː"))
	k := ToTamil(phoneme.MustParse("kiːtaː"))
	if g != k {
		t.Errorf("Tamil renders voicing distinctly: %q vs %q", g, k)
	}
	if DetectScript(g) != TamilScript {
		t.Errorf("rendered %q is not tamil", g)
	}
}

func TestRenderersSkipUnmappable(t *testing.T) {
	// A glottal stop has no letter in either script; it must be dropped,
	// not crash or emit garbage.
	s := phoneme.MustParse("ʔa")
	if got := ToDevanagari(s); got != "आ" {
		t.Errorf("ToDevanagari(ʔa) = %q, want आ", got)
	}
	if got := ToTamil(s); got != "அ" {
		t.Errorf("ToTamil(ʔa) = %q, want அ", got)
	}
}

func TestRenderEmpty(t *testing.T) {
	if ToDevanagari(nil) != "" || ToTamil(nil) != "" {
		t.Error("empty phoneme string renders non-empty text")
	}
}

func TestEveryVowelHasMatraAndIndependent(t *testing.T) {
	for _, r := range []*indicRenderer{devanagariRenderer, tamilRenderer} {
		for _, p := range phoneme.All() {
			if !p.IsVowel() {
				continue
			}
			if _, ok := r.independent[p]; !ok {
				t.Errorf("renderer missing independent form for %s", p.IPA())
			}
			if _, ok := r.matra[p]; !ok {
				t.Errorf("renderer missing matra for %s", p.IPA())
			}
		}
	}
}

func TestFoldAccents(t *testing.T) {
	cases := map[string]string{
		"René":      "Rene",
		"François":  "Francois",
		"Señor":     "Senor",
		"ÉCOLE":     "ECOLE",
		"Nehru":     "Nehru", // unaccented Latin unchanged
		"नेहरु":     "नेहरु", // non-Latin untouched
		"Gödel Øre": "Godel Ore",
	}
	for in, want := range cases {
		if got := FoldAccents(in); got != want {
			t.Errorf("FoldAccents(%q) = %q, want %q", in, got, want)
		}
	}
}
