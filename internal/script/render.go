package script

import (
	"strings"

	"lexequal/internal/phoneme"
)

// This file renders phoneme strings into Devanagari and Tamil
// orthography. The paper's tagged lexicon was produced by hand-
// transliterating 800 English names into Hindi and Tamil ("conversion is
// fairly straight forward, barring variations due to the mismatch of
// phoneme sets", §4.1); these renderers model that process, including
// the information loss a human transliterator cannot avoid: Tamil script
// does not distinguish stop voicing or aspiration, Devanagari folds
// f→फ, w/v→व, θ/ð→त/द, and so on. Reading the rendered strings back
// through the respective TTP converters therefore yields phoneme strings
// that differ from the English source in exactly the cluster-internal
// ways the LexEQUAL cost model is designed to absorb.

// indicRenderer captures the shared abugida logic: consonants carry an
// inherent vowel, other vowels attach as dependent signs (matras) after
// a consonant or stand as independent letters elsewhere, and bare
// consonants in clusters take a virama.
type indicRenderer struct {
	consonant      map[phoneme.Phoneme]string // phoneme -> base letter
	independent    map[phoneme.Phoneme]string // vowel -> independent letter
	matra          map[phoneme.Phoneme]string // vowel -> dependent sign ("" = inherent)
	virama         string
	finalVirama    bool   // Tamil writes final consonants with pulli; Hindi leaves them bare
	nasalVowelTail string // consonant emitted after a nasalized vowel ("" = use anusvara)
	anusvara       string
	// finalSchwaMatra, when non-empty, is written for a word-final schwa
	// after a consonant. Hindi transliterators write the final reduced
	// vowel of a name with the long-ā matra (Gita -> गीता, Rama ->
	// रामा); leaving it inherent would be silently deleted on readback.
	finalSchwaMatra string
	medialN         string // Tamil-specific: ந initially, ன elsewhere
	nPhoneme        phoneme.Phoneme
}

// render converts a phoneme string to orthography. Phonemes without a
// mapping are skipped (mirroring a transliterator dropping an alien
// sound).
func (ir *indicRenderer) render(s phoneme.String) string {
	var b strings.Builder
	pendingConsonant := false // a consonant letter awaiting its vowel
	wrote := false
	for i, p := range s {
		if c, ok := ir.consonant[p]; ok {
			if pendingConsonant {
				b.WriteString(ir.virama)
			}
			if ir.medialN != "" && p == ir.nPhoneme && wrote {
				c = ir.medialN
			}
			b.WriteString(c)
			pendingConsonant = true
			wrote = true
			continue
		}
		f := p.Features()
		if f.Class != phoneme.Vowel {
			continue // unmappable consonant: dropped
		}
		if pendingConsonant {
			m, ok := ir.matra[p]
			if !ok {
				continue
			}
			if m == "" && p == phoneme.Schwa && i == len(s)-1 && ir.finalSchwaMatra != "" {
				m = ir.finalSchwaMatra
			}
			b.WriteString(m)
		} else {
			iv, ok := ir.independent[p]
			if !ok {
				continue
			}
			b.WriteString(iv)
		}
		pendingConsonant = false
		wrote = true
		if f.Nasalized {
			if ir.nasalVowelTail != "" {
				b.WriteString(ir.nasalVowelTail)
				pendingConsonant = true
			} else {
				b.WriteString(ir.anusvara)
			}
		}
	}
	if pendingConsonant && ir.finalVirama {
		b.WriteString(ir.virama)
	}
	return b.String()
}

var devanagariRenderer, tamilRenderer *indicRenderer

// ToDevanagari renders a phoneme string in Hindi (Devanagari)
// orthography.
func ToDevanagari(s phoneme.String) string { return devanagariRenderer.render(s) }

// ToTamil renders a phoneme string in Tamil orthography.
func ToTamil(s phoneme.String) string { return tamilRenderer.render(s) }

// pm builds a phoneme-keyed map from IPA-spelling keys.
func pm(m map[string]string) map[phoneme.Phoneme]string {
	out := make(map[phoneme.Phoneme]string, len(m))
	for ipa, g := range m {
		out[phoneme.MustLookup(ipa)] = g
	}
	return out
}

func init() {
	devanagariRenderer = &indicRenderer{
		virama:          "्",
		anusvara:        "ं",
		finalSchwaMatra: "ा",
		consonant: pm(map[string]string{
			"k": "क", "kʰ": "ख", "ɡ": "ग", "ɡʱ": "घ", "ŋ": "ङ",
			"tʃ": "च", "tʃʰ": "छ", "dʒ": "ज", "dʒʱ": "झ", "ɲ": "ञ",
			"ʈ": "ट", "ʈʰ": "ठ", "ɖ": "ड", "ɖʱ": "ढ", "ɳ": "ण", "ɽ": "ड़",
			"t": "त", "t̪": "त", "θ": "त", "tʰ": "थ",
			"d": "द", "d̪": "द", "ð": "द", "dʱ": "ध", "n": "न",
			"p": "प", "pʰ": "फ", "f": "फ़", "b": "ब", "bʱ": "भ", "m": "म",
			"j": "य", "r": "र", "ɾ": "र", "ɹ": "र", "ɻ": "र", "ʀ": "र", "ʁ": "र",
			"l": "ल", "ɭ": "ळ", "ʎ": "ल",
			"ʋ": "व", "v": "व", "w": "व", "β": "व",
			"ʃ": "श", "ʒ": "श", "ʂ": "ष", "ç": "श",
			"s": "स", "ts": "च", "z": "ज़", "dz": "ज",
			"h": "ह", "ɦ": "ह", "x": "ख़", "ɣ": "ग़", "q": "क़",
		}),
		independent: pm(map[string]string{
			"ə": "अ", "ʌ": "अ", "ɜ": "अ", "ɜː": "अ", "ɐ": "अ", "ɨ": "इ",
			// The full open vowel is written with the long letter: only
			// the reduced schwa is left inherent (a transliterator
			// writes Karachi as कराची, not करची).
			"a": "आ", "aː": "आ", "ɑ": "आ", "ɑː": "आ", "ɒ": "आ", "ã": "अ", "ɑ̃": "आ",
			"æ": "ऐ", "ɛ": "ऐ", "ɛː": "ऐ", "ɛ̃": "ऐ",
			"i": "इ", "ɪ": "इ", "iː": "ई", "ĩ": "इ",
			"u": "उ", "ʊ": "उ", "uː": "ऊ", "ũ": "उ", "y": "उ", "ʏ": "उ",
			"e": "ए", "eː": "ए", "ẽ": "ए",
			"o": "ओ", "oː": "ओ", "õ": "ओ", "ø": "ओ", "œ": "ओ", "œ̃": "ओ",
			"ɔ": "औ", "ɔː": "औ", "ɔ̃": "औ",
		}),
		matra: pm(map[string]string{
			"ə": "", "ʌ": "", "ɜ": "", "ɜː": "", "ɐ": "", "ɨ": "ि",
			"a": "ा", "aː": "ा", "ɑ": "ा", "ɑː": "ा", "ɒ": "ा", "ã": "", "ɑ̃": "ा",
			"æ": "ै", "ɛ": "ै", "ɛː": "ै", "ɛ̃": "ै",
			"i": "ि", "ɪ": "ि", "iː": "ी", "ĩ": "ि",
			"u": "ु", "ʊ": "ु", "uː": "ू", "ũ": "ु", "y": "ु", "ʏ": "ु",
			"e": "े", "eː": "े", "ẽ": "े",
			"o": "ो", "oː": "ो", "õ": "ो", "ø": "ो", "œ": "ो", "œ̃": "ो",
			"ɔ": "ौ", "ɔː": "ौ", "ɔ̃": "ौ",
		}),
	}

	tamilRenderer = &indicRenderer{
		virama:         "்",
		finalVirama:    true,
		nasalVowelTail: "ன",
		nPhoneme:       phoneme.MustLookup("n"),
		medialN:        "ன",
		consonant: pm(map[string]string{
			"k": "க", "kʰ": "க", "ɡ": "க", "ɡʱ": "க", "x": "க", "ɣ": "க", "q": "க", "ŋ": "ங",
			"tʃ": "ச", "tʃʰ": "ச", "ç": "ச", "ts": "ச",
			"dʒ": "ஜ", "dʒʱ": "ஜ", "z": "ஜ", "dz": "ஜ", "ʒ": "ஜ",
			"ʈ": "ட", "ʈʰ": "ட", "ɖ": "ட", "ɖʱ": "ட", "ɳ": "ண",
			"t": "த", "t̪": "த", "tʰ": "த", "θ": "த",
			"d": "த", "d̪": "த", "dʱ": "த", "ð": "த", "n": "ந", "ɲ": "ஞ",
			"p": "ப", "pʰ": "ப", "b": "ப", "bʱ": "ப", "f": "ப", "β": "ப", "m": "ம",
			"j": "ய", "ɾ": "ர", "ɹ": "ர", "r": "ர", "ɽ": "ற", "ʀ": "ர", "ʁ": "ர",
			"l": "ல", "ʎ": "ல", "ɭ": "ள", "ɻ": "ழ",
			"ʋ": "வ", "v": "வ", "w": "வ",
			"s": "ஸ", "ʃ": "ஷ", "ʂ": "ஷ",
			"h": "ஹ", "ɦ": "ஹ",
		}),
		independent: pm(map[string]string{
			"ə": "அ", "ʌ": "அ", "ɜ": "அ", "ɜː": "அ", "ɐ": "அ", "a": "அ", "ã": "அ",
			"aː": "ஆ", "ɑ": "ஆ", "ɑː": "ஆ", "ɒ": "ஆ", "æ": "ஆ", "ɑ̃": "ஆ",
			"i": "இ", "ɪ": "இ", "ɨ": "இ", "ĩ": "இ", "iː": "ஈ",
			"u": "உ", "ʊ": "உ", "y": "உ", "ʏ": "உ", "ũ": "உ", "uː": "ஊ",
			"e": "எ", "ɛ": "எ", "ɛː": "எ", "ɛ̃": "எ", "eː": "ஏ", "ẽ": "ஏ",
			"o": "ஒ", "ɔ": "ஒ", "ɔ̃": "ஒ", "ø": "ஒ", "œ": "ஒ", "œ̃": "ஒ",
			"oː": "ஓ", "õ": "ஓ", "ɔː": "ஓ",
		}),
		matra: pm(map[string]string{
			"ə": "", "ʌ": "", "ɜ": "", "ɜː": "", "ɐ": "", "a": "", "ã": "",
			"aː": "ா", "ɑ": "ா", "ɑː": "ா", "ɒ": "ா", "æ": "ா", "ɑ̃": "ா",
			"i": "ி", "ɪ": "ி", "ɨ": "ி", "ĩ": "ி", "iː": "ீ",
			"u": "ு", "ʊ": "ு", "y": "ு", "ʏ": "ு", "ũ": "ு", "uː": "ூ",
			"e": "ெ", "ɛ": "ெ", "ɛː": "ெ", "ɛ̃": "ெ", "eː": "ே", "ẽ": "ே",
			"o": "ொ", "ɔ": "ொ", "ɔ̃": "ொ", "ø": "ொ", "œ": "ொ", "œ̃": "ொ",
			"oː": "ோ", "õ": "ோ", "ɔː": "ோ",
		}),
	}
}
