package editdist

import (
	"testing"

	"lexequal/internal/phoneme"
)

// bitvecBounds mirrors the bound spread of TestScratchAgreesWithLegacy:
// negative, zero, sub-unit, the operator's threshold shape, the exact
// distance and its neighbourhood, and effectively-unbounded.
func bitvecBounds(a, b phoneme.String, full float64) []float64 {
	return []float64{-1, 0, 0.25, 0.3 * float64(min(len(a), len(b))), full, full - 0.01, full + 0.5, 100}
}

func TestNewBitvecDispatch(t *testing.T) {
	if bv, ok := NewBitvec(Unit{}); !ok || bv.TwoTier() {
		t.Errorf("NewBitvec(Unit) = (%v, %v), want exact-mode kernel", bv, ok)
	}
	q, _ := NewClusteredWeak(phoneme.DefaultClusters(), 0.25, 0.5)
	if bv, ok := NewBitvec(q); !ok || !bv.TwoTier() {
		t.Errorf("NewBitvec(clustered 0.25/0.5) = (%v, %v), want two-tier kernel", bv, ok)
	}
	nq, _ := NewClustered(phoneme.DefaultClusters(), 0.3)
	if _, ok := NewBitvec(nq); ok {
		t.Error("NewBitvec accepted non-dyadic ICSC 0.3")
	}
	if _, ok := NewBitvec(Feature{}); ok {
		t.Error("NewBitvec accepted the feature model")
	}
	if _, ok := NewBitvec(opaque{Unit{}}); ok {
		t.Error("NewBitvec accepted an opaque model it cannot inspect")
	}
}

// TestBitvecNeverContradictsScalar is the kernel's core contract: on
// every model × pair × bound, a decided comparison must agree with
// DistanceBoundedScratch, and the Unit kernel must decide everything.
func TestBitvecNeverContradictsScalar(t *testing.T) {
	corpus := scratchCorpus()
	s := NewScratch()
	for _, cm := range scratchModels(t) {
		bv, ok := NewBitvec(cm)
		if !ok {
			continue
		}
		for _, a := range corpus {
			if !bv.Prepare(a) {
				t.Fatalf("%s: Prepare(%v) failed for a %d-phoneme pattern", cm.Name(), a, len(a))
			}
			for _, b := range corpus {
				full := DistanceScratch(a, b, cm, s)
				for _, bound := range bitvecBounds(a, b, full) {
					_, want := DistanceBoundedScratch(a, b, cm, bound, s)
					matched, decided, ops := bv.Decide(b, WeakCount(b), bv.CandSig(b), bound)
					if decided && matched != want {
						t.Fatalf("%s: Decide(%v, %v, %g) = %v, scalar says %v",
							cm.Name(), a, b, bound, matched, want)
					}
					if !bv.TwoTier() && !decided {
						t.Fatalf("%s: exact kernel left (%v, %v, %g) undecided", cm.Name(), a, b, bound)
					}
					if ops < 0 || ops > 2*int64(len(b)) {
						t.Fatalf("ops = %d for a %d-phoneme candidate", ops, len(b))
					}
				}
			}
		}
	}
}

// TestBitvecDecidesFarPairs pins the perf-critical property: clearly
// non-matching pairs must be decided (rejected) without the scalar
// fallback, under both kernels, at the operator's bound shape.
func TestBitvecDecidesFarPairs(t *testing.T) {
	far := [][2]string{
		{"nehru", "pɒtæsiəm"},
		{"kristəfər", "sita"},
		{"dʒəʋaːɦərlaːl", "neru"},
	}
	for _, cm := range scratchModels(t) {
		bv, ok := NewBitvec(cm)
		if !ok {
			continue
		}
		for _, pair := range far {
			a, b := phoneme.MustParse(pair[0]), phoneme.MustParse(pair[1])
			bound := 0.3 * float64(min(len(a), len(b)))
			bv.Prepare(a)
			matched, decided, _ := bv.Decide(b, WeakCount(b), bv.CandSig(b), bound)
			if !decided || matched {
				t.Errorf("%s: (%s, %s) at bound %g: matched=%v decided=%v, want decided reject",
					cm.Name(), pair[0], pair[1], bound, matched, decided)
			}
		}
	}
}

// TestBitvecLongPattern: patterns beyond one machine word decline every
// comparison instead of deciding wrongly.
func TestBitvecLongPattern(t *testing.T) {
	long := make(phoneme.String, 65)
	for i := range long {
		long[i] = phoneme.Phoneme(i%phoneme.Count() + 1)
	}
	bv, _ := NewBitvec(Unit{})
	if bv.Prepare(long) {
		t.Fatal("Prepare accepted a 65-phoneme pattern")
	}
	if _, decided, _ := bv.Decide(long[:10], 0, bv.CandSig(long[:10]), 100); decided {
		t.Error("unprepared kernel decided a comparison")
	}
}

// TestBitvecPrepareReuse: the sparse Peq reset must leave no residue
// from a previous pattern — a reused kernel must agree with a fresh one.
func TestBitvecPrepareReuse(t *testing.T) {
	cm, _ := NewClusteredWeak(phoneme.DefaultClusters(), 0.25, 0.5)
	reused, _ := NewBitvec(cm)
	corpus := scratchCorpus()
	for _, a := range corpus {
		reused.Prepare(a)
		for _, b := range corpus {
			fresh, _ := NewBitvec(cm)
			fresh.Prepare(a)
			bound := 0.3 * float64(min(len(a), len(b)))
			m1, d1, o1 := reused.Decide(b, WeakCount(b), reused.CandSig(b), bound)
			m2, d2, o2 := fresh.Decide(b, WeakCount(b), fresh.CandSig(b), bound)
			if m1 != m2 || d1 != d2 || o1 != o2 {
				t.Fatalf("reused kernel diverges on (%v, %v): (%v,%v,%d) vs fresh (%v,%v,%d)",
					a, b, m1, d1, o1, m2, d2, o2)
			}
		}
	}
}

// TestBitvecDecideZeroAllocs: Decide is on the per-candidate hot path
// and must not allocate.
func TestBitvecDecideZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not stable under the race detector")
	}
	cm, _ := NewClusteredWeak(phoneme.DefaultClusters(), 0.25, 0.5)
	bv, _ := NewBitvec(cm)
	a := phoneme.MustParse("dʒəʋaːɦərlaːl")
	b := phoneme.MustParse("pɒtæsiəm")
	bv.Prepare(a)
	wk, sig := WeakCount(b), bv.CandSig(b)
	if n := testing.AllocsPerRun(200, func() {
		bv.Decide(b, wk, sig, 2.0)
	}); n != 0 {
		t.Errorf("Decide: %v allocs/op, want 0", n)
	}
}

// fuzzPhonemes maps arbitrary bytes onto the valid phoneme inventory.
func fuzzPhonemes(raw []byte) phoneme.String {
	if len(raw) > 24 {
		raw = raw[:24]
	}
	s := make(phoneme.String, len(raw))
	for i, b := range raw {
		s[i] = phoneme.Phoneme(int(b)%phoneme.Count() + 1)
	}
	return s
}

// FuzzKernelEquivalence is the differential fuzz target of ISSUE 8:
// random phoneme pairs and random dyadic cost parameters, asserting the
// bit-parallel kernel, the scalar quantized DP, and the float reference
// (forced via the opaque wrapper) agree on every accept/reject decision.
func FuzzKernelEquivalence(f *testing.F) {
	// Seed with the empty-string and band-edge shapes from scratch_test.
	f.Add([]byte(""), []byte(""), uint8(1), uint8(2), float64(0))
	f.Add([]byte("n"), []byte(""), uint8(1), uint8(2), float64(1))
	f.Add([]byte{10, 20, 30, 40}, []byte{10, 20, 31, 40}, uint8(1), uint8(2), 0.25)
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, []byte{8, 7, 6, 5, 4, 3, 2, 1}, uint8(0), uint8(0), 2.4)
	f.Add([]byte("nehru"), []byte("neru"), uint8(2), uint8(2), 1.5)
	f.Fuzz(func(t *testing.T, araw, braw []byte, icscQ, weakQ uint8, bound float64) {
		a, b := fuzzPhonemes(araw), fuzzPhonemes(braw)
		// Dyadic grid: quarters in [0, 1].
		cm, err := NewClusteredWeak(phoneme.DefaultClusters(), float64(icscQ%5)/4, float64(weakQ%5)/4)
		if err != nil {
			t.Fatal(err)
		}
		if bound > 1e6 || bound < -1e6 || bound != bound {
			return // keep the scalar band finite; NaN has no contract
		}
		s := NewScratch()
		di, oki := DistanceBoundedScratch(a, b, cm, bound, s)
		df, okf := DistanceBoundedScratch(a, b, opaque{cm}, bound, s)
		if oki != okf || (oki && di != df) {
			t.Fatalf("scalar int (%v,%v) and float (%v,%v) kernels disagree on (%v, %v, %g)",
				di, oki, df, okf, a, b, bound)
		}
		for _, m := range []CostModel{cm, Unit{}} {
			bv, ok := NewBitvec(m)
			if !ok {
				t.Fatalf("%s did not compile", m.Name())
			}
			if !bv.Prepare(a) {
				continue
			}
			_, want := DistanceBoundedScratch(a, b, m, bound, s)
			matched, decided, _ := bv.Decide(b, WeakCount(b), bv.CandSig(b), bound)
			if decided && matched != want {
				t.Fatalf("%s: bitvec says %v, scalar says %v on (%v, %v, %g)",
					m.Name(), matched, want, a, b, bound)
			}
		}
	})
}
