package editdist

import (
	"testing"

	"lexequal/internal/phoneme"
)

// opaque hides the concrete model type so quantize never fires and the
// float kernel runs — the reference the integer fast path must match.
type opaque struct{ CostModel }

// scratchModels covers both kernel dispatches: Unit and the default
// clustered operating point quantize exactly (integer kernel); ICSC 0.3
// and the feature model do not (float kernel).
func scratchModels(t *testing.T) []CostModel {
	t.Helper()
	q, err := NewClusteredWeak(phoneme.DefaultClusters(), 0.25, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	nq, err := NewClustered(phoneme.DefaultClusters(), 0.3)
	if err != nil {
		t.Fatal(err)
	}
	return []CostModel{Unit{}, q, nq, Feature{}}
}

// scratchCorpus is a deterministic spread of lengths and distances,
// including empty and wildly different strings.
func scratchCorpus() []phoneme.String {
	raw := []string{
		"", "n", "neru", "nero", "nehru", "neːru",
		"dʒəʋaːɦərlaːl", "dʒawɑhɑrlɑl", "pɒtæsiəm",
		"sita", "ɡita", "kristəfər", "xristos",
	}
	out := make([]phoneme.String, len(raw))
	for i, s := range raw {
		out[i] = phoneme.MustParse(s)
	}
	return out
}

func TestQuantizeDispatch(t *testing.T) {
	if _, ok := quantize(Unit{}); !ok {
		t.Error("Unit should quantize")
	}
	q, _ := NewClusteredWeak(phoneme.DefaultClusters(), 0.25, 0.5)
	m, ok := quantize(q)
	if !ok || m.scale != 4 || m.icsc != 1 || m.weak != 2 {
		t.Errorf("quantize(icsc=0.25,weak=0.5) = %+v, %v; want scale 4, icsc 1, weak 2", m, ok)
	}
	nq, _ := NewClustered(phoneme.DefaultClusters(), 0.3)
	if _, ok := quantize(nq); ok {
		t.Error("ICSC=0.3 should not quantize (not dyadic)")
	}
	if _, ok := quantize(Feature{}); ok {
		t.Error("Feature should not quantize")
	}
}

// TestScratchAgreesWithLegacy pins the scratch kernels — including the
// integer fast path — to the full DP and to the float banded kernel
// (forced via an opaque model wrapper) on every model × pair × bound.
func TestScratchAgreesWithLegacy(t *testing.T) {
	corpus := scratchCorpus()
	s := NewScratch()
	fs := NewScratch()
	for _, cm := range scratchModels(t) {
		for _, a := range corpus {
			for _, b := range corpus {
				full := DistanceScratch(a, b, cm, s)
				for _, bound := range []float64{-1, 0, 0.25, 0.3 * float64(min(len(a), len(b))), full, full - 0.01, full + 0.5, 100} {
					d, ok := DistanceBoundedScratch(a, b, cm, bound, s)
					fd, fok := DistanceBoundedScratch(a, b, opaque{cm}, bound, fs)
					if ok != fok || (ok && d != fd) {
						t.Fatalf("%s: int/float kernels disagree on (%s, %s, %g): (%v,%v) vs (%v,%v)",
							cm.Name(), a, b, bound, d, ok, fd, fok)
					}
					wantOK := bound >= 0 && full <= bound
					if ok != wantOK {
						t.Fatalf("%s: DistanceBoundedScratch(%s, %s, %g) ok=%v, full distance %g",
							cm.Name(), a, b, bound, ok, full)
					}
					if ok && d != full {
						t.Fatalf("%s: bounded distance %g != full %g for (%s, %s)", cm.Name(), d, full, a, b)
					}
				}
			}
		}
	}
}

// TestLegacyWrappersStillWork exercises the pooled entry points.
func TestLegacyWrappersStillWork(t *testing.T) {
	u := Unit{}
	if got := Distance(phoneme.MustParse("neru"), phoneme.MustParse("nero"), u); got != 1 {
		t.Errorf("Distance = %v, want 1", got)
	}
	if d, ok := DistanceBounded(phoneme.MustParse("neru"), phoneme.MustParse("nero"), u, 1); !ok || d != 1 {
		t.Errorf("DistanceBounded = %v, %v; want 1, true", d, ok)
	}
	if _, ok := DistanceBounded(phoneme.MustParse("neru"), phoneme.MustParse("pɒtæsiəm"), u, 1); ok {
		t.Error("DistanceBounded accepted a far pair at bound 1")
	}
}

func TestScratchCellCounter(t *testing.T) {
	s := NewScratch()
	cm, _ := NewClusteredWeak(phoneme.DefaultClusters(), 0.25, 0.5)
	a, b := phoneme.MustParse("dʒəʋaːɦərlaːl"), phoneme.MustParse("dʒawɑhɑrlɑl")
	if _, ok := DistanceBoundedScratch(a, b, cm, 0.3*float64(len(b)), s); !ok {
		t.Fatal("expected a match")
	}
	if s.Cells() <= 0 {
		t.Fatalf("Cells = %d, want > 0", s.Cells())
	}
	first := s.TakeCells()
	if first <= 0 || s.Cells() != 0 {
		t.Fatalf("TakeCells = %d, residual %d; want positive and zero", first, s.Cells())
	}
	// The banded kernel evaluates no more cells than the full DP.
	DistanceScratch(a, b, cm, s)
	fullCells := s.TakeCells()
	if first > fullCells {
		t.Errorf("banded cells %d > full DP cells %d", first, fullCells)
	}
}

// TestDistanceBoundedScratchZeroAllocs is the allocation contract of
// the hot kernel: once the scratch has grown, a comparison allocates
// nothing, on both the integer and the float kernel.
func TestDistanceBoundedScratchZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not stable under the race detector")
	}
	// Box the models once: callers hold the cost model in a CostModel
	// field, so per-call interface conversion is not part of the contract.
	cw, _ := NewClusteredWeak(phoneme.DefaultClusters(), 0.25, 0.5)
	cn, _ := NewClustered(phoneme.DefaultClusters(), 0.3)
	var cm, nq CostModel = cw, cn
	a, b := phoneme.MustParse("dʒəʋaːɦərlaːl"), phoneme.MustParse("dʒawɑhɑrlɑl")
	bound := 0.3 * float64(len(b))
	s := NewScratch()
	DistanceBoundedScratch(a, b, cm, bound, s) // warm the buffers
	DistanceBoundedScratch(a, b, nq, bound, s)
	if n := testing.AllocsPerRun(200, func() {
		DistanceBoundedScratch(a, b, cm, bound, s)
	}); n != 0 {
		t.Errorf("integer kernel: %v allocs/op, want 0", n)
	}
	if n := testing.AllocsPerRun(200, func() {
		DistanceBoundedScratch(a, b, nq, bound, s)
	}); n != 0 {
		t.Errorf("float kernel: %v allocs/op, want 0", n)
	}
	// The pooled wrapper is also allocation-free in steady state.
	if n := testing.AllocsPerRun(200, func() {
		DistanceBounded(a, b, cm, bound)
	}); n != 0 {
		t.Errorf("pooled DistanceBounded: %v allocs/op, want 0", n)
	}
}
