package editdist

import (
	"fmt"
	"strings"

	"lexequal/internal/phoneme"
)

// Distance computes the edit distance between phoneme strings a and b
// under the given cost model, with the classical O(|a|·|b|) dynamic
// program of Figure 8 (two-row formulation, O(min) extra space). It is
// a convenience wrapper over DistanceScratch that borrows DP rows from
// the shared pool; scans that run millions of comparisons should thread
// their own Scratch instead.
func Distance(a, b phoneme.String, cm CostModel) float64 {
	s := GetScratch()
	d := DistanceScratch(a, b, cm, s)
	PutScratch(s)
	return d
}

// DistanceBounded computes the edit distance if it is at most bound and
// returns (distance, true); otherwise it returns (_, false) having
// short-circuited. It restricts the dynamic program to a diagonal band
// of half-width ⌊bound/IndelFloor⌋ — cells outside the band provably
// exceed the bound because reaching them requires that many net
// insertions or deletions — and exits early when an entire row exceeds
// the bound. This is the kernel the LexEQUAL operator actually runs:
// the match threshold always supplies a bound. Like Distance it borrows
// pooled scratch; see DistanceBoundedScratch for the allocation-free
// form.
func DistanceBounded(a, b phoneme.String, cm CostModel, bound float64) (float64, bool) {
	s := GetScratch()
	d, ok := DistanceBoundedScratch(a, b, cm, bound, s)
	PutScratch(s)
	return d, ok
}

// OpKind labels one step of an alignment.
type OpKind uint8

// Alignment operation kinds.
const (
	OpMatch OpKind = iota // identical phonemes
	OpSub                 // substitution
	OpIns                 // insertion (present in b, absent in a)
	OpDel                 // deletion (present in a, absent in b)
)

func (k OpKind) String() string {
	switch k {
	case OpMatch:
		return "match"
	case OpSub:
		return "sub"
	case OpIns:
		return "ins"
	case OpDel:
		return "del"
	default:
		return fmt.Sprintf("OpKind(%d)", uint8(k))
	}
}

// Op is one step of an optimal alignment between two phoneme strings.
type Op struct {
	Kind OpKind
	A, B phoneme.Phoneme // phoneme.Invalid on the absent side of ins/del
	Cost float64
}

// Alignment is an optimal edit script with its total cost.
type Alignment struct {
	Ops  []Op
	Cost float64
}

// String renders the alignment in a compact three-line-ish form, e.g.
// "n=n e~eː h- r=r u=u" where '=' is match, '~' substitution, '-'
// deletion and '+' insertion.
func (al Alignment) String() string {
	parts := make([]string, len(al.Ops))
	for i, op := range al.Ops {
		switch op.Kind {
		case OpMatch:
			parts[i] = op.A.IPA() + "=" + op.B.IPA()
		case OpSub:
			parts[i] = op.A.IPA() + "~" + op.B.IPA()
		case OpIns:
			parts[i] = "+" + op.B.IPA()
		case OpDel:
			parts[i] = op.A.IPA() + "-"
		}
	}
	return strings.Join(parts, " ")
}

// Align computes an optimal alignment (with full backtrace) between a
// and b under the cost model. It keeps the complete DP matrix and is
// therefore intended for explanation and debugging, not the hot path.
func Align(a, b phoneme.String, cm CostModel) Alignment {
	la, lb := len(a), len(b)
	d := make([][]float64, la+1)
	for i := range d {
		d[i] = make([]float64, lb+1)
	}
	for i := 1; i <= la; i++ {
		d[i][0] = d[i-1][0] + cm.Del(a[i-1])
	}
	for j := 1; j <= lb; j++ {
		d[0][j] = d[0][j-1] + cm.Ins(b[j-1])
	}
	for i := 1; i <= la; i++ {
		for j := 1; j <= lb; j++ {
			del := d[i-1][j] + cm.Del(a[i-1])
			ins := d[i][j-1] + cm.Ins(b[j-1])
			sub := d[i-1][j-1] + cm.Sub(a[i-1], b[j-1])
			m := sub
			if del < m {
				m = del
			}
			if ins < m {
				m = ins
			}
			d[i][j] = m
		}
	}
	// Backtrace, preferring diagonal moves for stable scripts.
	var rev []Op
	i, j := la, lb
	for i > 0 || j > 0 {
		switch {
		case i > 0 && j > 0 && d[i][j] == d[i-1][j-1]+cm.Sub(a[i-1], b[j-1]):
			kind := OpSub
			if a[i-1] == b[j-1] {
				kind = OpMatch
			}
			rev = append(rev, Op{Kind: kind, A: a[i-1], B: b[j-1], Cost: cm.Sub(a[i-1], b[j-1])})
			i--
			j--
		case i > 0 && d[i][j] == d[i-1][j]+cm.Del(a[i-1]):
			rev = append(rev, Op{Kind: OpDel, A: a[i-1], B: phoneme.Invalid, Cost: cm.Del(a[i-1])})
			i--
		default:
			rev = append(rev, Op{Kind: OpIns, A: phoneme.Invalid, B: b[j-1], Cost: cm.Ins(b[j-1])})
			j--
		}
	}
	ops := make([]Op, len(rev))
	for k := range rev {
		ops[k] = rev[len(rev)-1-k]
	}
	return Alignment{Ops: ops, Cost: d[la][lb]}
}
