package editdist

import (
	"fmt"
	"strings"

	"lexequal/internal/phoneme"
)

// Distance computes the edit distance between phoneme strings a and b
// under the given cost model, with the classical O(|a|·|b|) dynamic
// program of Figure 8 (two-row formulation, O(min) extra space after the
// swap below).
func Distance(a, b phoneme.String, cm CostModel) float64 {
	// Keep the shorter string as the column dimension.
	if len(b) > len(a) {
		a, b = b, a
	}
	n := len(b)
	prev := make([]float64, n+1)
	curr := make([]float64, n+1)
	prev[0] = 0
	for j := 1; j <= n; j++ {
		prev[j] = prev[j-1] + cm.Ins(b[j-1])
	}
	for i := 1; i <= len(a); i++ {
		curr[0] = prev[0] + cm.Del(a[i-1])
		ai := a[i-1]
		for j := 1; j <= n; j++ {
			del := prev[j] + cm.Del(ai)
			ins := curr[j-1] + cm.Ins(b[j-1])
			sub := prev[j-1] + cm.Sub(ai, b[j-1])
			m := del
			if ins < m {
				m = ins
			}
			if sub < m {
				m = sub
			}
			curr[j] = m
		}
		prev, curr = curr, prev
	}
	return prev[n]
}

// DistanceBounded computes the edit distance if it is at most bound and
// returns (distance, true); otherwise it returns (_, false) having
// short-circuited. It restricts the dynamic program to a diagonal band
// of half-width ⌊bound/IndelFloor⌋ — cells outside the band provably
// exceed the bound because reaching them requires that many net
// insertions or deletions — and exits early when an entire row exceeds
// the bound. This is the kernel the LexEQUAL operator actually runs:
// the match threshold always supplies a bound.
func DistanceBounded(a, b phoneme.String, cm CostModel, bound float64) (float64, bool) {
	if bound < 0 {
		return 0, false
	}
	if len(b) > len(a) {
		a, b = b, a
	}
	floor := cm.IndelFloor()
	if floor <= 0 {
		// Degenerate model: fall back to the full DP.
		d := Distance(a, b, cm)
		return d, d <= bound
	}
	k := int(bound / floor) // band half-width
	if len(a)-len(b) > k {
		// Length filter: |len(a)-len(b)|·floor already exceeds bound.
		return 0, false
	}
	n := len(b)
	const inf = 1e18
	prev := make([]float64, n+1)
	curr := make([]float64, n+1)
	prev[0] = 0
	for j := 1; j <= n; j++ {
		if j <= k {
			prev[j] = prev[j-1] + cm.Ins(b[j-1])
		} else {
			prev[j] = inf
		}
	}
	for i := 1; i <= len(a); i++ {
		lo := i - k
		if lo < 1 {
			lo = 1
		}
		hi := i + k
		if hi > n {
			hi = n
		}
		if lo > 1 {
			curr[lo-1] = inf
		} else {
			curr[0] = prev[0] + cm.Del(a[i-1])
		}
		ai := a[i-1]
		rowMin := inf
		if lo == 1 && curr[0] < rowMin {
			rowMin = curr[0]
		}
		for j := lo; j <= hi; j++ {
			del := prev[j] + cm.Del(ai)
			ins := curr[j-1] + cm.Ins(b[j-1])
			sub := prev[j-1] + cm.Sub(ai, b[j-1])
			m := del
			if ins < m {
				m = ins
			}
			if sub < m {
				m = sub
			}
			curr[j] = m
			if m < rowMin {
				rowMin = m
			}
		}
		if hi < n {
			curr[hi+1] = inf
		}
		if rowMin > bound {
			return 0, false
		}
		prev, curr = curr, prev
	}
	if prev[n] > bound {
		return 0, false
	}
	return prev[n], true
}

// OpKind labels one step of an alignment.
type OpKind uint8

// Alignment operation kinds.
const (
	OpMatch OpKind = iota // identical phonemes
	OpSub                 // substitution
	OpIns                 // insertion (present in b, absent in a)
	OpDel                 // deletion (present in a, absent in b)
)

func (k OpKind) String() string {
	switch k {
	case OpMatch:
		return "match"
	case OpSub:
		return "sub"
	case OpIns:
		return "ins"
	case OpDel:
		return "del"
	default:
		return fmt.Sprintf("OpKind(%d)", uint8(k))
	}
}

// Op is one step of an optimal alignment between two phoneme strings.
type Op struct {
	Kind OpKind
	A, B phoneme.Phoneme // phoneme.Invalid on the absent side of ins/del
	Cost float64
}

// Alignment is an optimal edit script with its total cost.
type Alignment struct {
	Ops  []Op
	Cost float64
}

// String renders the alignment in a compact three-line-ish form, e.g.
// "n=n e~eː h- r=r u=u" where '=' is match, '~' substitution, '-'
// deletion and '+' insertion.
func (al Alignment) String() string {
	parts := make([]string, len(al.Ops))
	for i, op := range al.Ops {
		switch op.Kind {
		case OpMatch:
			parts[i] = op.A.IPA() + "=" + op.B.IPA()
		case OpSub:
			parts[i] = op.A.IPA() + "~" + op.B.IPA()
		case OpIns:
			parts[i] = "+" + op.B.IPA()
		case OpDel:
			parts[i] = op.A.IPA() + "-"
		}
	}
	return strings.Join(parts, " ")
}

// Align computes an optimal alignment (with full backtrace) between a
// and b under the cost model. It keeps the complete DP matrix and is
// therefore intended for explanation and debugging, not the hot path.
func Align(a, b phoneme.String, cm CostModel) Alignment {
	la, lb := len(a), len(b)
	d := make([][]float64, la+1)
	for i := range d {
		d[i] = make([]float64, lb+1)
	}
	for i := 1; i <= la; i++ {
		d[i][0] = d[i-1][0] + cm.Del(a[i-1])
	}
	for j := 1; j <= lb; j++ {
		d[0][j] = d[0][j-1] + cm.Ins(b[j-1])
	}
	for i := 1; i <= la; i++ {
		for j := 1; j <= lb; j++ {
			del := d[i-1][j] + cm.Del(a[i-1])
			ins := d[i][j-1] + cm.Ins(b[j-1])
			sub := d[i-1][j-1] + cm.Sub(a[i-1], b[j-1])
			m := sub
			if del < m {
				m = del
			}
			if ins < m {
				m = ins
			}
			d[i][j] = m
		}
	}
	// Backtrace, preferring diagonal moves for stable scripts.
	var rev []Op
	i, j := la, lb
	for i > 0 || j > 0 {
		switch {
		case i > 0 && j > 0 && d[i][j] == d[i-1][j-1]+cm.Sub(a[i-1], b[j-1]):
			kind := OpSub
			if a[i-1] == b[j-1] {
				kind = OpMatch
			}
			rev = append(rev, Op{Kind: kind, A: a[i-1], B: b[j-1], Cost: cm.Sub(a[i-1], b[j-1])})
			i--
			j--
		case i > 0 && d[i][j] == d[i-1][j]+cm.Del(a[i-1]):
			rev = append(rev, Op{Kind: OpDel, A: a[i-1], B: phoneme.Invalid, Cost: cm.Del(a[i-1])})
			i--
		default:
			rev = append(rev, Op{Kind: OpIns, A: phoneme.Invalid, B: b[j-1], Cost: cm.Ins(b[j-1])})
			j--
		}
	}
	ops := make([]Op, len(rev))
	for k := range rev {
		ops[k] = rev[len(rev)-1-k]
	}
	return Alignment{Ops: ops, Cost: d[la][lb]}
}
