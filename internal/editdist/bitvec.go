package editdist

import (
	"math/bits"

	"lexequal/internal/phoneme"
)

// This file implements the bit-parallel bounded edit-distance kernel:
// Myers/Hyyrö bit-vector DP (64 DP cells per word operation) specialized
// to the cost models whose costs sit on the int32 quantized grid (see
// quantize). The kernel never contradicts DistanceBoundedScratch — it
// either *decides* a comparison (with the same accept/reject outcome the
// scalar kernel would produce) or declines, in which case the caller
// runs the scalar kernel. Three dispatch modes:
//
//   - Unit: one Myers run over exact-match masks computes the
//     Levenshtein distance outright; every comparison is decided.
//   - Clustered (dyadic ICSC/WeakIndel): a two-tier sandwich. The
//     reject tier runs the recurrence over cluster-match masks
//     (pattern position i matches text phoneme c when they are equal or
//     share a cluster), which makes intra-cluster substitutions free;
//     the resulting distance D_cm lower-bounds the clustered distance
//     up to a weak-indel slack, so D_cm above the inflated budget
//     proves a reject. The accept tier runs exact-match masks: the
//     unit distance upper-bounds the clustered distance, so a unit
//     distance within ⌊bound⌋ proves an accept. Pairs between the
//     tiers (typically near-matches whose cost is dominated by ICSC
//     arithmetic) fall back to the scalar kernel.
//   - Everything else (Feature, non-dyadic parameters): not
//     bit-parallelizable; NewBitvec reports false and callers stay on
//     the scalar path.
//
// Soundness of the reject tier. Map each operation of an optimal
// clustered alignment to a cluster-mask operation: matches and
// intra-cluster substitutions cost 0 under the masks (≤ their clustered
// cost), cross-cluster substitutions and non-weak indels cost 1 (= their
// clustered cost), and weak (glottal) indels cost 1 against a clustered
// cost of WeakIndel. An alignment deletes at most every glottal of one
// string and inserts at most every glottal of the other, so
//
//	D_cm ≤ clustered + (weak(a)+weak(b))·(1−WeakIndel).
//
// All budget arithmetic happens on the same int32 grid the scalar
// kernel quantizes to (ibound = ⌊bound·scale⌋), so flooring decisions
// are bit-for-bit the scalar kernel's: d ≤ bound ⟺ d·scale ≤ ibound for
// grid distances d. Note the masks are built over the *original*
// phoneme strings — a projection-based lower bound would be unsound
// here because the default cluster set places glottals (h, ɦ, ʔ) in the
// same cluster as velar/uvular obstruents, making some
// projection-changing substitutions cost only ICSC.

// maxBitvecPattern is the longest pattern a single machine word can
// carry: one bit per pattern position.
const maxBitvecPattern = 64

// WeakCount returns the number of weak (glottal) phonemes in s — the
// per-string term of the reject tier's slack. Callers that batch
// candidates precompute this once per row.
func WeakCount(s phoneme.String) int {
	n := 0
	for _, p := range s {
		if weak(p) {
			n++
		}
	}
	return n
}

// Bitvec is a compiled bit-parallel kernel: the per-cost-model dispatch
// decision plus the 256-entry Peq match-mask tables for one prepared
// pattern. Prepare is not safe for concurrent use; Decide only reads,
// so a prepared Bitvec may be shared by concurrent workers as long as
// none of them calls Prepare (the scan path prepares once up front; the
// join path keeps one Bitvec per lane).
type Bitvec struct {
	// Model-level state, fixed at NewBitvec.
	clusters *phoneme.Clusters // nil in exact (Unit) mode
	twoTier  bool
	scale    int32      // quantization grid, from quantize()
	shift    uint8      // log2(scale): quantize grids are powers of two
	wkExcess int32      // scale − weak indel cost (scaled); 0 = no slack
	of       [256]uint8 // flattened Clusters.Of, so the inner loop needs no call

	// Pattern-level state, rebuilt by Prepare.
	m        int
	patWeak  int
	patSig   uint64
	prepared bool
	hibit    uint64
	peq      [256]uint64 // exact-match masks, indexed by Phoneme
	peqCl    [256]uint64 // cluster-match masks, indexed by ClusterID
	touched  []phoneme.Phoneme
	touchCl  []phoneme.ClusterID
}

// NewBitvec compiles cm into a bit-parallel kernel, or reports ok=false
// when the model is not bit-parallelizable (its costs do not quantize
// to the dyadic int32 grid, or its substitution structure is not the
// exact/cluster two-level shape). Callers must keep the scalar path for
// ok=false — that is the "scalar fallback for non-dyadic models".
func NewBitvec(cm CostModel) (*Bitvec, bool) {
	im, ok := quantize(cm)
	if !ok {
		return nil, false
	}
	bv := &Bitvec{scale: im.scale}
	for s := im.scale; s > 1; s >>= 1 {
		bv.shift++
	}
	switch cm.(type) {
	case Unit:
		// Exact mode: sub costs are {0, 1}, indels 1 — one run decides.
	case Clustered:
		bv.twoTier = true
		bv.clusters = im.clusters
		for c := 0; c < 256; c++ {
			bv.of[c] = uint8(im.clusters.Of(phoneme.Phoneme(c)))
		}
		if im.weak > 0 {
			bv.wkExcess = im.scale - im.weak
		}
	default:
		return nil, false
	}
	return bv, true
}

// TwoTier reports whether the kernel runs the clustered two-tier
// sandwich (as opposed to the single exact run of the Unit model).
func (bv *Bitvec) TwoTier() bool { return bv.twoTier }

// Prepare builds the Peq tables for pattern. It reports false when the
// pattern does not fit a machine word (> 64 phonemes); the Bitvec is
// then unprepared and Decide declines every comparison.
func (bv *Bitvec) Prepare(pattern phoneme.String) bool {
	// Sparse reset: only entries the previous pattern touched.
	for _, p := range bv.touched {
		bv.peq[p] = 0
	}
	bv.touched = bv.touched[:0]
	for _, id := range bv.touchCl {
		bv.peqCl[id] = 0
	}
	bv.touchCl = bv.touchCl[:0]

	bv.m = len(pattern)
	bv.patWeak = 0
	bv.patSig = bv.CandSig(pattern)
	bv.prepared = false
	if bv.m > maxBitvecPattern {
		return false
	}
	for i, p := range pattern {
		if bv.peq[p] == 0 {
			bv.touched = append(bv.touched, p)
		}
		bv.peq[p] |= 1 << uint(i)
		if bv.twoTier {
			if id := phoneme.ClusterID(bv.of[p]); id != 0 {
				if bv.peqCl[id] == 0 {
					bv.touchCl = append(bv.touchCl, id)
				}
				bv.peqCl[id] |= 1 << uint(i)
			}
			if weak(p) {
				bv.patWeak++
			}
		}
	}
	if bv.m > 0 {
		bv.hibit = 1 << uint(bv.m-1)
	}
	bv.prepared = true
	return true
}

// CandSig computes the candidate-side histogram signature the kernel's
// prefilter compares against the pattern's. Exact mode packs a presence
// bit per phoneme identity (hashed into 64 buckets): every unit edit
// flips at most two presence bits, so half the XOR popcount
// lower-bounds the unit distance. Two-tier mode packs eight saturating
// byte counters of cluster occupancy: cluster-matches leave the
// histogram untouched while every cost-1 operation of the reject
// tier's mask distance moves at most two counters by one, so half the
// L1 distance lower-bounds D_cm (saturation only weakens the bound).
// Batch builders call this once per row and hand the stored value to
// Decide.
func (bv *Bitvec) CandSig(s phoneme.String) uint64 {
	var sig uint64
	if bv.twoTier {
		for _, p := range s {
			off := uint(bv.of[p]&7) * 8
			if sig>>off&0xff != 0xff {
				sig += 1 << off
			}
		}
	} else {
		for _, p := range s {
			sig |= 1 << (p & 63)
		}
	}
	return sig
}

// l1Bytes is the L1 distance between two packed 8-lane byte histograms.
func l1Bytes(a, b uint64) int {
	sum := 0
	for i := 0; i < 8; i++ {
		d := int(a&0xff) - int(b&0xff)
		if d < 0 {
			d = -d
		}
		sum += d
		a >>= 8
		b >>= 8
	}
	return sum
}

// Decide compares the prepared pattern against cand under the same
// bound contract as DistanceBoundedScratch: matched means distance ≤
// bound. decided=false means the kernel could not prove the outcome
// either way (gray zone, unprepared pattern, or a bound off the int32
// grid) and the caller must verify on the scalar path. candWeak is
// cand's WeakCount and candSig its CandSig — both computed once per
// batch row by callers (candWeak is ignored in exact mode, and both
// must come from this kernel's cost model or rejects become unsound).
// ops counts 64-cell word operations for the BitvecOps counter. Decide
// does not mutate bv.
func (bv *Bitvec) Decide(cand phoneme.String, candWeak int, candSig uint64, bound float64) (matched, decided bool, ops int64) {
	if !bv.prepared {
		return false, false, 0
	}
	if bound < 0 {
		// Scalar contract: a negative bound rejects everything.
		return false, true, 0
	}
	bs := bound * float64(bv.scale)
	if bs >= float64(intInf) {
		return false, false, 0
	}
	ibound := int32(bs)
	kU := int(ibound >> bv.shift) // ⌊bound⌋ on the grid
	n := len(cand)
	diff := bv.m - n
	if diff < 0 {
		diff = -diff
	}

	if !bv.twoTier {
		// Exact mode: the length and presence-histogram filters are
		// exact-distance lower bounds; past them the run computes the
		// unit distance outright.
		if diff > kU || bits.OnesCount64(bv.patSig^candSig) > 2*kU {
			return false, true, 0
		}
		if bv.m == 0 {
			return n <= kU, true, 0
		}
		_, within, o := bv.runExact(cand, kU)
		return within, true, o
	}

	// Reject tier: budget inflated by the weak-indel slack, all on the
	// scaled grid (kL = ⌊(ibound + slack·scale)/scale⌋).
	w := int32(bv.patWeak+candWeak) * bv.wkExcess
	kL := int((ibound + w) >> bv.shift)
	if diff > kL || l1Bytes(bv.patSig, candSig) > 2*kL {
		// The length gap and half the cluster-histogram L1 distance both
		// lower-bound D_cm, so exceeding the budget proves a reject.
		return false, true, 0
	}
	if bv.m == 0 {
		// Distances degenerate to n indels: D_cm = D_exact = n.
		if n > kL {
			return false, true, 0
		}
		if n <= kU {
			return true, true, 0
		}
		return false, false, 0
	}
	dcl, within, ops := bv.runCluster(cand, kL)
	if !within {
		return false, true, ops // clustered distance provably > bound
	}
	// Accept tier: the exact unit distance upper-bounds the clustered
	// distance. D_exact ≥ D_cm, so skip the run when even the lower
	// bound (or the length gap) rules an accept out.
	if dcl > kU || diff > kU {
		return false, false, ops
	}
	_, withinU, o2 := bv.runExact(cand, kU)
	ops += o2
	if withinU {
		return true, true, ops
	}
	return false, false, ops
}

// runExact is the Hyyrö global-distance bit-vector recurrence over the
// exact-match masks: one word operation per text phoneme, Score tracks
// D[m][j], early exit once even n−j free matches cannot bring the
// distance back under k. Requires 1 ≤ m ≤ 64.
func (bv *Bitvec) runExact(text phoneme.String, k int) (dist int, within bool, ops int64) {
	pv, mv := ^uint64(0), uint64(0)
	score := bv.m
	n := len(text)
	hibit := bv.hibit
	for j, c := range text {
		eq := bv.peq[c]
		xv := eq | mv
		xh := (((eq & pv) + pv) ^ pv) | eq
		ph := mv | ^(xh | pv)
		mh := pv & xh
		if ph&hibit != 0 {
			score++
		} else if mh&hibit != 0 {
			score--
		}
		ph = ph<<1 | 1 // D[0][j] − D[0][j−1] = +1: global distance
		pv = mh<<1 | ^(xv | ph)
		mv = ph & xv
		if score-(n-j-1) > k {
			return score, false, int64(j + 1)
		}
	}
	return score, score <= k, int64(n)
}

// runCluster is runExact over the cluster-match masks: pattern position
// i matches text phoneme c when pattern[i] == c or they share a
// non-zero cluster, so intra-cluster substitutions ride the zero-cost
// diagonal.
func (bv *Bitvec) runCluster(text phoneme.String, k int) (dist int, within bool, ops int64) {
	pv, mv := ^uint64(0), uint64(0)
	score := bv.m
	n := len(text)
	hibit := bv.hibit
	for j, c := range text {
		// peqCl[0] is always zero, so unclustered phonemes OR in nothing.
		eq := bv.peq[c] | bv.peqCl[bv.of[c]]
		xv := eq | mv
		xh := (((eq & pv) + pv) ^ pv) | eq
		ph := mv | ^(xh | pv)
		mh := pv & xh
		if ph&hibit != 0 {
			score++
		} else if mh&hibit != 0 {
			score--
		}
		ph = ph<<1 | 1
		pv = mh<<1 | ^(xv | ph)
		mv = ph & xv
		if score-(n-j-1) > k {
			return score, false, int64(j + 1)
		}
	}
	return score, score <= k, int64(n)
}
