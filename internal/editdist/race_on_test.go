//go:build race

package editdist

// raceEnabled gates allocation-count assertions, which the race
// detector's instrumentation would otherwise make flaky.
const raceEnabled = true
