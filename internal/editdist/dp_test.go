package editdist

import (
	"math"
	"testing"
	"testing/quick"

	"lexequal/internal/phoneme"
)

func ps(ipa string) phoneme.String { return phoneme.MustParse(ipa) }

func TestDistanceLevenshteinBasics(t *testing.T) {
	u := Unit{}
	cases := []struct {
		a, b string
		want float64
	}{
		{"", "", 0},
		{"neru", "", 4},
		{"", "neru", 4},
		{"neru", "neru", 0},
		{"neru", "nero", 1},  // one substitution
		{"neru", "nehru", 1}, // one insertion
		{"nehru", "neru", 1}, // one deletion
		{"neru", "uren", 4},
		{"sita", "ɡita", 1},
	}
	for _, c := range cases {
		if got := Distance(ps(c.a), ps(c.b), u); got != c.want {
			t.Errorf("Distance(%q,%q) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestDistanceClustered(t *testing.T) {
	cm, err := NewClustered(phoneme.DefaultClusters(), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	// p and b share the labial cluster: substitution costs 0.5.
	if got := Distance(ps("pat"), ps("bat"), cm); got != 0.5 {
		t.Errorf("intra-cluster sub = %v, want 0.5", got)
	}
	// p and k are in different clusters: full unit cost.
	if got := Distance(ps("pat"), ps("kat"), cm); got != 1 {
		t.Errorf("cross-cluster sub = %v, want 1", got)
	}
	// Identical strings remain 0.
	if got := Distance(ps("pat"), ps("pat"), cm); got != 0 {
		t.Errorf("identity = %v, want 0", got)
	}
	// ICSC=1 degenerates to Levenshtein.
	lev, _ := NewClustered(phoneme.DefaultClusters(), 1)
	for _, pair := range [][2]string{{"neru", "nero"}, {"pat", "bat"}, {"sita", "ɡita"}} {
		if Distance(ps(pair[0]), ps(pair[1]), lev) != Distance(ps(pair[0]), ps(pair[1]), Unit{}) {
			t.Errorf("ICSC=1 differs from Levenshtein on %v", pair)
		}
	}
	// ICSC=0 makes intra-cluster substitutions free (phonetic Soundex).
	sdx, _ := NewClustered(phoneme.DefaultClusters(), 0)
	if got := Distance(ps("pat"), ps("bad"), sdx); got != 0 {
		t.Errorf("soundex-mode distance = %v, want 0", got)
	}
}

func TestNewClusteredValidation(t *testing.T) {
	if _, err := NewClustered(nil, 0.5); err == nil {
		t.Error("nil clusters accepted")
	}
	if _, err := NewClustered(phoneme.DefaultClusters(), -0.1); err == nil {
		t.Error("negative ICSC accepted")
	}
	if _, err := NewClustered(phoneme.DefaultClusters(), 1.5); err == nil {
		t.Error("ICSC > 1 accepted")
	}
}

func TestDistanceBoundedAgreesWithFull(t *testing.T) {
	models := []CostModel{Unit{}, mustClustered(0.5), mustClustered(0), Feature{}}
	pairs := [][2]string{
		{"neru", "nehru"}, {"dʒəvaːɦərlaːl", "dʒavaharlal"}, {"sita", "ɡita"},
		{"", "abu"}, {"ram", ""}, {"ram", "ram"},
		{"junəvɜrsɪti", "junivarsiti"}, {"pat", "tap"},
	}
	for _, cm := range models {
		for _, p := range pairs {
			a, b := ps(p[0]), ps(p[1])
			full := Distance(a, b, cm)
			for _, bound := range []float64{0, 0.5, 1, 1.5, 2, 3, 10} {
				got, ok := DistanceBounded(a, b, cm, bound)
				if full <= bound {
					if !ok {
						t.Errorf("%s: DistanceBounded(%q,%q,%v) rejected, full=%v", cm.Name(), p[0], p[1], bound, full)
					} else if math.Abs(got-full) > 1e-9 {
						t.Errorf("%s: DistanceBounded(%q,%q,%v)=%v, full=%v", cm.Name(), p[0], p[1], bound, got, full)
					}
				} else if ok {
					t.Errorf("%s: DistanceBounded(%q,%q,%v) accepted with %v, full=%v", cm.Name(), p[0], p[1], bound, got, full)
				}
			}
		}
	}
}

func TestDistanceBoundedNegativeBound(t *testing.T) {
	if _, ok := DistanceBounded(ps("a"), ps("a"), Unit{}, -1); ok {
		t.Error("negative bound accepted")
	}
}

func mustClustered(icsc float64) Clustered {
	cm, err := NewClustered(phoneme.DefaultClusters(), icsc)
	if err != nil {
		panic(err)
	}
	return cm
}

// randomString derives a phoneme string from fuzz bytes.
func randomString(bs []byte) phoneme.String {
	all := phoneme.All()
	s := make(phoneme.String, 0, len(bs))
	for _, b := range bs {
		s = append(s, all[int(b)%len(all)])
	}
	return s
}

// Property: Levenshtein distance is a metric.
func TestQuickUnitMetric(t *testing.T) {
	u := Unit{}
	f := func(ba, bb, bc []byte) bool {
		if len(ba) > 12 {
			ba = ba[:12]
		}
		if len(bb) > 12 {
			bb = bb[:12]
		}
		if len(bc) > 12 {
			bc = bc[:12]
		}
		a, b, c := randomString(ba), randomString(bb), randomString(bc)
		dab := Distance(a, b, u)
		dba := Distance(b, a, u)
		if dab != dba {
			return false
		}
		if a.Equal(b) != (dab == 0) {
			return false
		}
		// Triangle inequality.
		dac := Distance(a, c, u)
		dcb := Distance(c, b, u)
		return dab <= dac+dcb+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: clustered distance is symmetric, bounded by Levenshtein,
// and satisfies the triangle inequality (substitution costs within an
// equivalence-class structure are metric for ICSC in [0,1]).
func TestQuickClusteredProperties(t *testing.T) {
	cm := mustClustered(0.25)
	u := Unit{}
	f := func(ba, bb, bc []byte) bool {
		if len(ba) > 10 {
			ba = ba[:10]
		}
		if len(bb) > 10 {
			bb = bb[:10]
		}
		if len(bc) > 10 {
			bc = bc[:10]
		}
		a, b, c := randomString(ba), randomString(bb), randomString(bc)
		dab := Distance(a, b, cm)
		if dab != Distance(b, a, cm) {
			return false
		}
		if dab > Distance(a, b, u)+1e-9 {
			return false // clustered can only be cheaper than unit
		}
		if dab < 0 {
			return false
		}
		dac := Distance(a, c, cm)
		dcb := Distance(c, b, cm)
		return dab <= dac+dcb+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: the bounded distance agrees with the full DP on random
// inputs and never accepts above the bound.
func TestQuickBoundedConsistency(t *testing.T) {
	cm := mustClustered(0.5)
	f := func(ba, bb []byte, boundRaw uint8) bool {
		if len(ba) > 14 {
			ba = ba[:14]
		}
		if len(bb) > 14 {
			bb = bb[:14]
		}
		a, b := randomString(ba), randomString(bb)
		bound := float64(boundRaw%12) / 2
		full := Distance(a, b, cm)
		got, ok := DistanceBounded(a, b, cm, bound)
		if full <= bound {
			return ok && math.Abs(got-full) < 1e-9
		}
		return !ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestAlignBasics(t *testing.T) {
	u := Unit{}
	al := Align(ps("nehru"), ps("neru"), u)
	if al.Cost != 1 {
		t.Fatalf("alignment cost = %v, want 1", al.Cost)
	}
	var dels, inss, subs, matches int
	for _, op := range al.Ops {
		switch op.Kind {
		case OpDel:
			dels++
			if op.B != phoneme.Invalid {
				t.Error("deletion carries a B phoneme")
			}
		case OpIns:
			inss++
		case OpSub:
			subs++
		case OpMatch:
			matches++
			if op.Cost != 0 {
				t.Error("match has nonzero cost")
			}
		}
	}
	if dels != 1 || inss != 0 || subs != 0 || matches != 4 {
		t.Errorf("ops = %d del, %d ins, %d sub, %d match; want 1/0/0/4 (%s)", dels, inss, subs, matches, al)
	}
}

// Property: the alignment's op costs sum to the DP distance, and
// replaying the script transforms a into b.
func TestQuickAlignReplay(t *testing.T) {
	cm := mustClustered(0.5)
	f := func(ba, bb []byte) bool {
		if len(ba) > 10 {
			ba = ba[:10]
		}
		if len(bb) > 10 {
			bb = bb[:10]
		}
		a, b := randomString(ba), randomString(bb)
		al := Align(a, b, cm)
		if math.Abs(al.Cost-Distance(a, b, cm)) > 1e-9 {
			return false
		}
		var sum float64
		var rebuilt phoneme.String
		ai := 0
		for _, op := range al.Ops {
			sum += op.Cost
			switch op.Kind {
			case OpMatch, OpSub:
				if ai >= len(a) || a[ai] != op.A {
					return false
				}
				rebuilt = append(rebuilt, op.B)
				ai++
			case OpDel:
				if ai >= len(a) || a[ai] != op.A {
					return false
				}
				ai++
			case OpIns:
				rebuilt = append(rebuilt, op.B)
			}
		}
		return ai == len(a) && rebuilt.Equal(b) && math.Abs(sum-al.Cost) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestAlignmentString(t *testing.T) {
	al := Align(ps("neru"), ps("nero"), Unit{})
	s := al.String()
	if s == "" {
		t.Error("empty alignment rendering")
	}
}

func TestFeatureModelBounds(t *testing.T) {
	fm := Feature{}
	all := phoneme.All()
	for _, a := range all {
		if fm.Sub(a, a) != 0 {
			t.Fatalf("Feature.Sub(%s,%s) != 0", a, a)
		}
		for _, b := range all {
			c := fm.Sub(a, b)
			if c < 0 || c > 1 {
				t.Fatalf("Feature.Sub(%s,%s) = %v out of range", a, b, c)
			}
		}
	}
}

func TestCostModelNames(t *testing.T) {
	if (Unit{}).Name() == "" || (Feature{}).Name() == "" || mustClustered(0.5).Name() == "" {
		t.Error("cost model with empty name")
	}
}

func TestWeakIndelDiscount(t *testing.T) {
	plain := mustClustered(0.25) // no weak discount
	weak, err := NewClusteredWeak(phoneme.DefaultClusters(), 0.25, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	// Deleting the glottal ɦ costs 1 under plain, 0.5 under weak.
	a, b := ps("neɦru"), ps("neru")
	if got := Distance(a, b, plain); got != 1 {
		t.Errorf("plain glottal deletion = %v, want 1", got)
	}
	if got := Distance(a, b, weak); got != 0.5 {
		t.Errorf("weak glottal deletion = %v, want 0.5", got)
	}
	// Schwa deletion is NOT discounted (it pairs with full vowels as a
	// cheap substitution instead).
	c, d := ps("nerəu"), ps("neru")
	if Distance(c, d, weak) != Distance(c, d, plain) {
		t.Error("schwa indel was discounted")
	}
	// Non-weak consonants keep full indel cost.
	e, f := ps("nekru"), ps("neru")
	if got := Distance(e, f, weak); got != 1 {
		t.Errorf("velar deletion = %v, want 1", got)
	}
	// IndelFloor reflects the discount.
	if weak.IndelFloor() != 0.5 || plain.IndelFloor() != 1 {
		t.Errorf("IndelFloor: weak=%v plain=%v", weak.IndelFloor(), plain.IndelFloor())
	}
	if weak.Name() == plain.Name() {
		t.Error("weak model name indistinct")
	}
}

func TestNewClusteredWeakValidation(t *testing.T) {
	if _, err := NewClusteredWeak(phoneme.DefaultClusters(), 0.25, -0.5); err == nil {
		t.Error("negative weak indel accepted")
	}
	if _, err := NewClusteredWeak(phoneme.DefaultClusters(), 0.25, 1.5); err == nil {
		t.Error("weak indel > 1 accepted")
	}
}

// Property: the weak model is still a metric (symmetric, triangle).
func TestQuickWeakModelMetric(t *testing.T) {
	cm, _ := NewClusteredWeak(phoneme.DefaultClusters(), 0.25, 0.5)
	f := func(ba, bb, bc []byte) bool {
		if len(ba) > 8 {
			ba = ba[:8]
		}
		if len(bb) > 8 {
			bb = bb[:8]
		}
		if len(bc) > 8 {
			bc = bc[:8]
		}
		a, b, c := randomString(ba), randomString(bb), randomString(bc)
		dab := Distance(a, b, cm)
		if math.Abs(dab-Distance(b, a, cm)) > 1e-9 {
			return false
		}
		return dab <= Distance(a, c, cm)+Distance(c, b, cm)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
