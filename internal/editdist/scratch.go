package editdist

import (
	"math"
	"sync"

	"lexequal/internal/phoneme"
)

// Scratch holds the reusable working state of the DP kernels: the two
// row buffers (float and quantized-integer variants) and the running
// count of DP cells evaluated. Buffers grow on demand and are never
// shrunk, so a Scratch threaded through a scan amortizes to zero
// allocations per comparison. A Scratch is not safe for concurrent use;
// give each worker its own (the morsel scheduler in internal/core does
// exactly that).
type Scratch struct {
	fprev, fcurr []float64
	iprev, icurr []int32
	cells        int64
}

// NewScratch returns an empty scratch. The zero value is also valid.
func NewScratch() *Scratch { return new(Scratch) }

// Cells returns the number of DP cells evaluated through this scratch
// since the last TakeCells.
func (s *Scratch) Cells() int64 { return s.cells }

// TakeCells returns the DP-cell count and resets it, so per-stage
// counters can harvest work done between checkpoints.
func (s *Scratch) TakeCells() int64 {
	c := s.cells
	s.cells = 0
	return c
}

// floatRows returns two zeroed-length-irrelevant float rows of length
// at least n, reusing the scratch buffers.
func (s *Scratch) floatRows(n int) (prev, curr []float64) {
	if cap(s.fprev) < n {
		s.fprev = make([]float64, n)
		s.fcurr = make([]float64, n)
	}
	return s.fprev[:n], s.fcurr[:n]
}

// intRows is floatRows for the quantized kernel.
func (s *Scratch) intRows(n int) (prev, curr []int32) {
	if cap(s.iprev) < n {
		s.iprev = make([]int32, n)
		s.icurr = make([]int32, n)
	}
	return s.iprev[:n], s.icurr[:n]
}

// scratchPool backs the legacy Distance/DistanceBounded entry points so
// existing callers get the allocation-free kernels without an API
// change.
var scratchPool = sync.Pool{New: func() any { return new(Scratch) }}

// GetScratch borrows a scratch from the shared pool.
func GetScratch() *Scratch { return scratchPool.Get().(*Scratch) }

// PutScratch returns a scratch to the shared pool.
func PutScratch(s *Scratch) { scratchPool.Put(s) }

// intModel is a cost model quantized to small non-negative integers:
// every cost times 1/scale. It exists for the built-in models (Unit,
// Clustered) whose costs are exact multiples of a small power of two,
// which is the common operating point (ICSC 0.25, weak indel 0.5). The
// integer kernel makes identical accept/reject decisions to the float
// kernel — dyadic costs sum exactly in both domains — while avoiding
// float traffic and interface dispatch in the inner loop.
type intModel struct {
	clusters *phoneme.Clusters // nil disables clustering (Unit model)
	scale    int32             // cost unit: true cost = int cost / scale
	icsc     int32             // intra-cluster substitution cost (scaled)
	weak     int32             // weak-phoneme indel cost (scaled); 0 = no discount
}

// intInf is the quantized kernel's +infinity. Small enough that adding
// any per-edit cost (≤ maxQuantScale) cannot overflow int32.
const intInf = math.MaxInt32 / 4

// maxQuantScale caps the quantization search. 1<<12 covers every cost
// expressible in twelfths-of-a-bit granularity; models finer than that
// take the float kernel.
const maxQuantScale = 1 << 12

func (m intModel) indel(p phoneme.Phoneme) int32 {
	if m.weak > 0 && weak(p) {
		return m.weak
	}
	return m.scale
}

func (m intModel) sub(a, b phoneme.Phoneme) int32 {
	if a == b {
		return 0
	}
	if m.clusters != nil && m.clusters.Same(a, b) {
		return m.icsc
	}
	return m.scale
}

// indelFloor is the quantized IndelFloor: the cheapest possible indel.
func (m intModel) indelFloor() int32 {
	if m.weak > 0 {
		return m.weak
	}
	return m.scale
}

// quantize maps a cost model onto an exact small-integer grid, or
// reports that no such grid exists (ok=false → float kernel).
func quantize(cm CostModel) (intModel, bool) {
	switch m := cm.(type) {
	case Unit:
		return intModel{scale: 1, icsc: 1}, true
	case Clustered:
		for scale := int32(1); scale <= maxQuantScale; scale <<= 1 {
			ic := m.ICSC * float64(scale)
			wk := m.WeakIndel * float64(scale)
			if ic == math.Trunc(ic) && wk == math.Trunc(wk) {
				return intModel{clusters: m.Clusters, scale: scale, icsc: int32(ic), weak: int32(wk)}, true
			}
		}
	}
	return intModel{}, false
}

// DistanceScratch is Distance with caller-provided scratch (zero
// allocations once the scratch has grown to the workload's row length).
func DistanceScratch(a, b phoneme.String, cm CostModel, s *Scratch) float64 {
	if len(b) > len(a) {
		a, b = b, a
	}
	n := len(b)
	prev, curr := s.floatRows(n + 1)
	prev[0] = 0
	for j := 1; j <= n; j++ {
		prev[j] = prev[j-1] + cm.Ins(b[j-1])
	}
	for i := 1; i <= len(a); i++ {
		curr[0] = prev[0] + cm.Del(a[i-1])
		ai := a[i-1]
		for j := 1; j <= n; j++ {
			del := prev[j] + cm.Del(ai)
			ins := curr[j-1] + cm.Ins(b[j-1])
			sub := prev[j-1] + cm.Sub(ai, b[j-1])
			m := del
			if ins < m {
				m = ins
			}
			if sub < m {
				m = sub
			}
			curr[j] = m
		}
		prev, curr = curr, prev
	}
	s.cells += int64(len(a)) * int64(n)
	return prev[n]
}

// DistanceBoundedScratch is DistanceBounded with caller-provided
// scratch. It dispatches to the quantized integer kernel when the cost
// model sits exactly on a small-integer grid, and to the float kernel
// otherwise; both make identical accept/reject decisions.
func DistanceBoundedScratch(a, b phoneme.String, cm CostModel, bound float64, s *Scratch) (float64, bool) {
	if bound < 0 {
		return 0, false
	}
	if len(b) > len(a) {
		a, b = b, a
	}
	if m, ok := quantize(cm); ok {
		if bs := bound * float64(m.scale); bs < float64(intInf) {
			return m.distanceBounded(a, b, int32(bs), s)
		}
	}
	return distanceBoundedFloat(a, b, cm, bound, s)
}

// distanceBounded is the quantized banded DP: all arithmetic in int32,
// the bound pre-scaled and floored (d ≤ bound ⟺ scaled d ≤ ⌊bound·scale⌋
// because scaled distances are integers).
func (m intModel) distanceBounded(a, b phoneme.String, ibound int32, s *Scratch) (float64, bool) {
	floor := m.indelFloor()
	k := int(ibound / floor) // band half-width
	if len(a)-len(b) > k {
		return 0, false
	}
	n := len(b)
	prev, curr := s.intRows(n + 1)
	prev[0] = 0
	for j := 1; j <= n; j++ {
		if j <= k {
			prev[j] = prev[j-1] + m.indel(b[j-1])
		} else {
			prev[j] = intInf
		}
	}
	cells := int64(0)
	for i := 1; i <= len(a); i++ {
		lo := i - k
		if lo < 1 {
			lo = 1
		}
		hi := i + k
		if hi > n {
			hi = n
		}
		if lo > 1 {
			curr[lo-1] = intInf
		} else {
			curr[0] = prev[0] + m.indel(a[i-1])
		}
		ai := a[i-1]
		rowMin := int32(intInf)
		if lo == 1 && curr[0] < rowMin {
			rowMin = curr[0]
		}
		for j := lo; j <= hi; j++ {
			del := prev[j] + m.indel(ai)
			ins := curr[j-1] + m.indel(b[j-1])
			sub := prev[j-1] + m.sub(ai, b[j-1])
			v := del
			if ins < v {
				v = ins
			}
			if sub < v {
				v = sub
			}
			curr[j] = v
			if v < rowMin {
				rowMin = v
			}
		}
		cells += int64(hi - lo + 1)
		if hi < n {
			curr[hi+1] = intInf
		}
		if rowMin > ibound {
			s.cells += cells
			return 0, false
		}
		prev, curr = curr, prev
	}
	s.cells += cells
	if prev[n] > ibound {
		return 0, false
	}
	return float64(prev[n]) / float64(m.scale), true
}

// distanceBoundedFloat is the original float banded DP over scratch
// rows, kept for cost models that do not quantize exactly.
func distanceBoundedFloat(a, b phoneme.String, cm CostModel, bound float64, s *Scratch) (float64, bool) {
	floor := cm.IndelFloor()
	if floor <= 0 {
		// Degenerate model: fall back to the full DP.
		d := DistanceScratch(a, b, cm, s)
		return d, d <= bound
	}
	k := int(bound / floor) // band half-width
	if len(a)-len(b) > k {
		// Length filter: |len(a)-len(b)|·floor already exceeds bound.
		return 0, false
	}
	n := len(b)
	const inf = 1e18
	prev, curr := s.floatRows(n + 1)
	prev[0] = 0
	for j := 1; j <= n; j++ {
		if j <= k {
			prev[j] = prev[j-1] + cm.Ins(b[j-1])
		} else {
			prev[j] = inf
		}
	}
	cells := int64(0)
	for i := 1; i <= len(a); i++ {
		lo := i - k
		if lo < 1 {
			lo = 1
		}
		hi := i + k
		if hi > n {
			hi = n
		}
		if lo > 1 {
			curr[lo-1] = inf
		} else {
			curr[0] = prev[0] + cm.Del(a[i-1])
		}
		ai := a[i-1]
		rowMin := inf
		if lo == 1 && curr[0] < rowMin {
			rowMin = curr[0]
		}
		for j := lo; j <= hi; j++ {
			del := prev[j] + cm.Del(ai)
			ins := curr[j-1] + cm.Ins(b[j-1])
			sub := prev[j-1] + cm.Sub(ai, b[j-1])
			m := del
			if ins < m {
				m = ins
			}
			if sub < m {
				m = sub
			}
			curr[j] = m
			if m < rowMin {
				rowMin = m
			}
		}
		cells += int64(hi - lo + 1)
		if hi < n {
			curr[hi+1] = inf
		}
		if rowMin > bound {
			s.cells += cells
			return 0, false
		}
		prev, curr = curr, prev
	}
	s.cells += cells
	if prev[n] > bound {
		return 0, false
	}
	return prev[n], true
}
