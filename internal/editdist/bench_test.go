package editdist

import (
	"testing"

	"lexequal/internal/phoneme"
)

var benchPairs = []struct {
	name string
	a, b phoneme.String
}{
	{"close", phoneme.MustParse("dʒəʋaːɦərlaːl"), phoneme.MustParse("dʒawɑhɑrlɑl")},
	{"far", phoneme.MustParse("dʒəʋaːɦərlaːl"), phoneme.MustParse("pɒtæsiəm")},
	{"short", phoneme.MustParse("neru"), phoneme.MustParse("nero")},
}

func benchModel() CostModel {
	cm, err := NewClusteredWeak(phoneme.DefaultClusters(), 0.25, 0.5)
	if err != nil {
		panic(err)
	}
	return cm
}

func BenchmarkDistanceFull(b *testing.B) {
	cm := benchModel()
	for _, p := range benchPairs {
		b.Run(p.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				Distance(p.a, p.b, cm)
			}
		})
	}
}

func BenchmarkDistanceBounded(b *testing.B) {
	cm := benchModel()
	for _, p := range benchPairs {
		b.Run(p.name, func(b *testing.B) {
			bound := 0.25 * float64(len(p.b))
			for i := 0; i < b.N; i++ {
				DistanceBounded(p.a, p.b, cm, bound)
			}
		})
	}
}

// BenchmarkDistanceBoundedScratch is the hot-path contract benchmark:
// per-worker scratch, 0 allocs/op.
func BenchmarkDistanceBoundedScratch(b *testing.B) {
	cm := benchModel()
	for _, p := range benchPairs {
		b.Run(p.name, func(b *testing.B) {
			s := NewScratch()
			bound := 0.25 * float64(len(p.b))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				DistanceBoundedScratch(p.a, p.b, cm, bound, s)
			}
		})
	}
}

func BenchmarkAlign(b *testing.B) {
	cm := benchModel()
	for i := 0; i < b.N; i++ {
		Align(benchPairs[0].a, benchPairs[0].b, cm)
	}
}
