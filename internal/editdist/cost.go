// Package editdist implements the approximate-matching kernel of the
// LexEQUAL operator: a dynamic-programming edit distance over phoneme
// strings with pluggable insertion/deletion/substitution cost functions
// (Figure 8 of the paper), including the clustered cost model whose
// intra-cluster substitution cost (ICSC) parameter the paper sweeps.
package editdist

import (
	"fmt"

	"lexequal/internal/phoneme"
)

// CostModel supplies the InsCost, DelCost and SubCost functions of the
// paper's editdistance algorithm. Implementations must be safe for
// concurrent use.
//
// IndelFloor must return a positive lower bound on every insertion and
// deletion cost; the banded distance uses it to size the band. All
// built-in models charge exactly 1 per indel.
type CostModel interface {
	Ins(p phoneme.Phoneme) float64
	Del(p phoneme.Phoneme) float64
	Sub(a, b phoneme.Phoneme) float64
	IndelFloor() float64
	// Name identifies the model in plans, EXPLAIN output and benchmarks.
	Name() string
}

// Unit is the standard Levenshtein cost model: every edit costs 1.
type Unit struct{}

// Ins implements CostModel.
func (Unit) Ins(phoneme.Phoneme) float64 { return 1 }

// Del implements CostModel.
func (Unit) Del(phoneme.Phoneme) float64 { return 1 }

// Sub implements CostModel.
func (Unit) Sub(a, b phoneme.Phoneme) float64 {
	if a == b {
		return 0
	}
	return 1
}

// IndelFloor implements CostModel.
func (Unit) IndelFloor() float64 { return 1 }

// Name implements CostModel.
func (Unit) Name() string { return "levenshtein" }

// Clustered is the paper's Clustered Edit Distance: substituting within
// a phoneme cluster costs ICSC ∈ [0,1], across clusters costs 1, and
// identical phonemes cost 0. ICSC = 1 degenerates to Levenshtein;
// ICSC = 0 extends Soundex to the phoneme domain.
//
// WeakIndel, when in (0,1], discounts insertion/deletion of glottal
// phonemes (h, ɦ, ʔ), which scripts routinely gain and lose in
// transliteration (Hindi writes the h of Nehru, Tamil does not). The
// paper highlights exactly this kind of cost-function parameterization
// as the reason for choosing the DP formulation. A zero WeakIndel means
// no discount (uniform unit indels). The set is deliberately the same
// as the phonemes the signature projection drops (soundex.Encoder), so
// every signature-changing edit costs at least one full unit — the
// invariant the q-gram filter budget relies on.
type Clustered struct {
	Clusters  *phoneme.Clusters
	ICSC      float64
	WeakIndel float64
}

// NewClustered validates the parameters and builds a clustered model
// with uniform indel costs.
func NewClustered(c *phoneme.Clusters, icsc float64) (Clustered, error) {
	return NewClusteredWeak(c, icsc, 0)
}

// NewClusteredWeak builds a clustered model with a weak-phoneme indel
// discount (see Clustered).
func NewClusteredWeak(c *phoneme.Clusters, icsc, weakIndel float64) (Clustered, error) {
	if c == nil {
		return Clustered{}, fmt.Errorf("editdist: nil cluster set")
	}
	if icsc < 0 || icsc > 1 {
		return Clustered{}, fmt.Errorf("editdist: intra-cluster substitution cost %v outside [0,1]", icsc)
	}
	if weakIndel < 0 || weakIndel > 1 {
		return Clustered{}, fmt.Errorf("editdist: weak indel cost %v outside [0,1]", weakIndel)
	}
	return Clustered{Clusters: c, ICSC: icsc, WeakIndel: weakIndel}, nil
}

// weak reports whether p is a weak phoneme for indel discounting
// (glottal consonants).
func weak(p phoneme.Phoneme) bool {
	f := p.Features()
	return f.Class == phoneme.Consonant && f.Place == phoneme.Glottal
}

func (c Clustered) indel(p phoneme.Phoneme) float64 {
	if c.WeakIndel > 0 && weak(p) {
		return c.WeakIndel
	}
	return 1
}

// Ins implements CostModel.
func (c Clustered) Ins(p phoneme.Phoneme) float64 { return c.indel(p) }

// Del implements CostModel.
func (c Clustered) Del(p phoneme.Phoneme) float64 { return c.indel(p) }

// Sub implements CostModel.
func (c Clustered) Sub(a, b phoneme.Phoneme) float64 {
	if a == b {
		return 0
	}
	if c.Clusters.Same(a, b) {
		return c.ICSC
	}
	return 1
}

// IndelFloor implements CostModel.
func (c Clustered) IndelFloor() float64 {
	if c.WeakIndel > 0 {
		return c.WeakIndel
	}
	return 1
}

// Name implements CostModel.
func (c Clustered) Name() string {
	if c.WeakIndel > 0 {
		return fmt.Sprintf("clustered(%s,icsc=%g,weak=%g)", c.Clusters.Name(), c.ICSC, c.WeakIndel)
	}
	return fmt.Sprintf("clustered(%s,icsc=%g)", c.Clusters.Name(), c.ICSC)
}

// Feature is a soft cost model that charges 1−Similarity(a,b) per
// substitution, using the articulatory-feature similarity. It is not
// part of the paper's evaluation; it backs the feature-cost ablation
// (DESIGN.md §5) and the "more robust cost functions" the paper's §5.3
// alludes to.
type Feature struct{}

// Ins implements CostModel.
func (Feature) Ins(phoneme.Phoneme) float64 { return 1 }

// Del implements CostModel.
func (Feature) Del(phoneme.Phoneme) float64 { return 1 }

// Sub implements CostModel.
func (Feature) Sub(a, b phoneme.Phoneme) float64 { return 1 - phoneme.Similarity(a, b) }

// IndelFloor implements CostModel.
func (Feature) IndelFloor() float64 { return 1 }

// Name implements CostModel.
func (Feature) Name() string { return "feature" }
