package editdist

import (
	"testing"

	"lexequal/internal/phoneme"
)

// TestBoundedEmptyStrings pins the banded kernels' behavior on
// zero-length phoneme strings (TTP can emit empty output for degenerate
// names). With the paper's bound e·min(|Tl|,|Tr|), an empty operand
// forces bound 0 and band half-width k = 0:
//
//   - empty vs empty: distance 0 ≤ 0 — a match (both names map to the
//     same, empty, sound), with no slice-index panic;
//   - empty vs non-empty: the length filter |len(a)-len(b)| > k rejects
//     immediately — an empty string must NOT be a universal match.
//
// All three kernel paths are pinned: the quantized integer kernel
// (Unit, dyadic Clustered), the float banded kernel (non-dyadic costs),
// and the degenerate full-DP fallback (IndelFloor == 0).
func TestBoundedEmptyStrings(t *testing.T) {
	dyadic, err := NewClusteredWeak(phoneme.DefaultClusters(), 0.25, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	nonDyadic, err := NewClusteredWeak(phoneme.DefaultClusters(), 0.3, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	models := []struct {
		name string
		cm   CostModel
	}{
		{"unit(int kernel)", Unit{}},
		{"clustered-dyadic(int kernel)", dyadic},
		{"clustered-nondyadic(float kernel)", nonDyadic},
	}
	empty := phoneme.String{}
	neru := ps("neru")
	for _, m := range models {
		cases := []struct {
			name      string
			a, b      phoneme.String
			bound     float64
			wantOK    bool
			wantDist  float64
			checkDist bool
		}{
			{"empty-empty bound0", empty, empty, 0, true, 0, true},
			{"empty-empty bound1", empty, empty, 1, true, 0, true},
			{"empty-vs-neru bound0", empty, neru, 0, false, 0, false},
			{"neru-vs-empty bound0", neru, empty, 0, false, 0, false},
			{"empty-vs-neru bound1", empty, neru, 1, false, 0, false},
			{"negative bound", empty, empty, -1, false, 0, false},
		}
		for _, c := range cases {
			s := NewScratch()
			d, ok := DistanceBoundedScratch(c.a, c.b, m.cm, c.bound, s)
			if ok != c.wantOK {
				t.Errorf("%s/%s: ok = %v, want %v", m.name, c.name, ok, c.wantOK)
			}
			if c.checkDist && ok && d != c.wantDist {
				t.Errorf("%s/%s: distance = %v, want %v", m.name, c.name, d, c.wantDist)
			}
		}
		// The pooled entry point takes the same path.
		if _, ok := DistanceBounded(empty, neru, m.cm, 0); ok {
			t.Errorf("%s: empty string matched a non-empty one at bound 0", m.name)
		}
		// Full DP on empties: no panic, distance 0 / |b|·indel.
		s := NewScratch()
		if d := DistanceScratch(empty, empty, m.cm, s); d != 0 {
			t.Errorf("%s: DistanceScratch(∅,∅) = %v", m.name, d)
		}
		if d := DistanceScratch(empty, neru, m.cm, s); d <= 0 {
			t.Errorf("%s: DistanceScratch(∅,neru) = %v, want > 0", m.name, d)
		}
	}
}

// degenerateModel has IndelFloor 0, driving the full-DP fallback inside
// distanceBoundedFloat; empty inputs must not panic there either.
type degenerateModel struct{ Unit }

func (degenerateModel) IndelFloor() float64 { return 0 }

func TestBoundedEmptyDegenerateFloor(t *testing.T) {
	empty := phoneme.String{}
	s := NewScratch()
	d, ok := DistanceBoundedScratch(empty, empty, degenerateModel{}, 0, s)
	if !ok || d != 0 {
		t.Errorf("degenerate floor: (∅,∅) = (%v,%v), want (0,true)", d, ok)
	}
	// Unit costs with floor 0 take the full DP: the real distance (4
	// indels) exceeds bound 0, so this must reject, not match.
	if _, ok := DistanceBoundedScratch(empty, ps("neru"), degenerateModel{}, 0, s); ok {
		t.Error("degenerate floor: empty matched non-empty at bound 0")
	}
}
