// Package qgram implements positional q-grams over phoneme strings and
// the three filters of the paper's §5.2 (after Gravano et al., VLDB
// 2001): the Length filter, the Count filter and the Position filter.
// Together they cheaply discard most non-matches, so the expensive
// edit-distance UDF runs only on a small candidate set.
package qgram

import (
	"fmt"
	"strings"

	"lexequal/internal/phoneme"
)

// Gram is one positional q-gram: the 1-based position and the q-length
// substring of the padded string. Pad symbols (the paper's ◁ and ▷) are
// phoneme.Invalid, which cannot occur inside a real phoneme string.
type Gram struct {
	Pos  int
	Gram []phoneme.Phoneme
}

// Key renders the gram's phonemes as a comparable string (pads render
// as '#'), usable as a database key.
func (g Gram) Key() string {
	var b strings.Builder
	for _, p := range g.Gram {
		if p == phoneme.Invalid {
			b.WriteByte('#')
		} else {
			b.WriteString(p.IPA())
		}
	}
	return b.String()
}

func (g Gram) String() string { return fmt.Sprintf("(%d,%s)", g.Pos, g.Key()) }

// Extract returns the positional q-grams of s: the padded string
// ◁^(q-1) s ▷^(q-1) yields len(s)+q-1 grams, numbered from 1, exactly
// as in the paper's footnote 4. q must be at least 2 (a 1-gram carries
// no positional structure worth padding).
func Extract(s phoneme.String, q int) []Gram {
	if q < 2 {
		panic(fmt.Sprintf("qgram: q must be >= 2, got %d", q))
	}
	padded := make([]phoneme.Phoneme, 0, len(s)+2*(q-1))
	for i := 0; i < q-1; i++ {
		padded = append(padded, phoneme.Invalid)
	}
	padded = append(padded, s...)
	for i := 0; i < q-1; i++ {
		padded = append(padded, phoneme.Invalid)
	}
	n := len(s) + q - 1
	grams := make([]Gram, 0, n)
	for i := 0; i < n; i++ {
		grams = append(grams, Gram{Pos: i + 1, Gram: padded[i : i+q]})
	}
	return grams
}

// LengthOK is the Length filter: strings within edit distance k cannot
// differ in length by more than k.
func LengthOK(len1, len2 int, k float64) bool {
	d := len1 - len2
	if d < 0 {
		d = -d
	}
	return float64(d) <= k
}

// CountThreshold returns the minimum number of matching positional
// q-grams two strings of the given lengths must share to be within edit
// distance k: max(|σ1|,|σ2|) − 1 − (k−1)·q. A result ≤ 0 means the
// Count filter cannot prune the pair.
func CountThreshold(len1, len2, q int, k float64) int {
	m := len1
	if len2 > m {
		m = len2
	}
	return m - 1 - int((k-1)*float64(q))
}

// PositionOK is the Position filter: a positional q-gram of one string
// can only correspond to a positional q-gram of the other if their
// positions differ by at most k.
func PositionOK(pos1, pos2 int, k float64) bool {
	d := pos1 - pos2
	if d < 0 {
		d = -d
	}
	return float64(d) <= k
}

// matchCount counts pairs of positional grams (one from each side) with
// equal content and positions within k, matching each gram at most once
// — the COUNT(*) of the paper's Figure 14 after its position predicate.
func matchCount(a, b []Gram, k float64) int {
	used := make([]bool, len(b))
	count := 0
	for _, ga := range a {
		for j, gb := range b {
			if used[j] || !PositionOK(ga.Pos, gb.Pos, k) {
				continue
			}
			if gramEqual(ga.Gram, gb.Gram) {
				used[j] = true
				count++
				break
			}
		}
	}
	return count
}

func gramEqual(a, b []phoneme.Phoneme) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Filter is a reusable q-gram filter pipeline for one query string: it
// answers, per candidate, whether the candidate survives all three
// filters for the given edit-distance budget k. It never produces false
// dismissals with respect to the classical (unit-cost) edit distance;
// clustered costs only shrink true distances further, so candidates the
// filter keeps remain a superset of true matches there too only when
// the caller derives k from the unit-cost bound (the LexEQUAL threshold
// times the shorter length, as in Figure 14).
type Filter struct {
	q     int
	query phoneme.String
	grams []Gram
}

// NewFilter builds a filter for the query string with the given q.
func NewFilter(query phoneme.String, q int) *Filter {
	return &Filter{q: q, query: query, grams: Extract(query, q)}
}

// Q returns the gram length.
func (f *Filter) Q() int { return f.q }

// Survives reports whether cand passes the Length, Count and Position
// filters against the query for edit-distance budget k.
func (f *Filter) Survives(cand phoneme.String, k float64) bool {
	if !LengthOK(len(f.query), len(cand), k) {
		return false
	}
	need := CountThreshold(len(f.query), len(cand), f.q, k)
	if need <= 0 {
		return true // count filter has no power here
	}
	return matchCount(f.grams, Extract(cand, f.q), k) >= need
}
