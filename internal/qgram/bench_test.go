package qgram

import (
	"testing"

	"lexequal/internal/phoneme"
)

func BenchmarkExtract(b *testing.B) {
	s := phoneme.MustParse("dʒəʋaːɦərlaːlneːru")
	for i := 0; i < b.N; i++ {
		Extract(s, 3)
	}
}

func BenchmarkSurvives(b *testing.B) {
	f := NewFilter(phoneme.MustParse("dʒəʋaːɦərlaːl"), 3)
	cand := phoneme.MustParse("dʒawɑhɑrlɑl")
	for i := 0; i < b.N; i++ {
		f.Survives(cand, 3)
	}
}
