package qgram

import (
	"testing"
	"testing/quick"

	"lexequal/internal/editdist"
	"lexequal/internal/phoneme"
)

func ps(ipa string) phoneme.String { return phoneme.MustParse(ipa) }

func TestExtractCountAndPositions(t *testing.T) {
	s := ps("neru")
	for _, q := range []int{2, 3, 4} {
		grams := Extract(s, q)
		want := len(s) + q - 1
		if len(grams) != want {
			t.Errorf("q=%d: %d grams, want %d", q, len(grams), want)
		}
		for i, g := range grams {
			if g.Pos != i+1 {
				t.Errorf("q=%d gram %d has pos %d", q, i, g.Pos)
			}
			if len(g.Gram) != q {
				t.Errorf("q=%d gram %d has len %d", q, i, len(g.Gram))
			}
		}
		// First gram is all-pad except the last phoneme; final gram is
		// the last phoneme followed by pads.
		first, last := grams[0], grams[len(grams)-1]
		for i := 0; i < q-1; i++ {
			if first.Gram[i] != phoneme.Invalid {
				t.Errorf("q=%d first gram lacks pad at %d", q, i)
			}
			if last.Gram[len(last.Gram)-1-i] != phoneme.Invalid {
				t.Errorf("q=%d last gram lacks pad at tail %d", q, i)
			}
		}
		if first.Gram[q-1] != s[0] || last.Gram[0] != s[len(s)-1] {
			t.Errorf("q=%d boundary grams wrong: %v %v", q, first, last)
		}
	}
}

func TestExtractPaperExampleShape(t *testing.T) {
	// The paper's footnote: "LexEQUAL" (8 symbols) with q=3 yields 10
	// positional q-grams.
	s := make(phoneme.String, 8)
	for i := range s {
		s[i] = phoneme.MustLookup("a")
	}
	if got := len(Extract(s, 3)); got != 10 {
		t.Errorf("8-symbol string with q=3 has %d grams, want 10", got)
	}
}

func TestExtractEmptyString(t *testing.T) {
	grams := Extract(nil, 3)
	if len(grams) != 2 {
		t.Errorf("empty string q=3: %d grams, want 2 (pure padding)", len(grams))
	}
}

func TestExtractPanicsOnBadQ(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Extract(q=1) did not panic")
		}
	}()
	Extract(ps("a"), 1)
}

func TestGramKeyDistinguishesPads(t *testing.T) {
	grams := Extract(ps("ab"), 2)
	seen := map[string]bool{}
	for _, g := range grams {
		if seen[g.Key()] {
			t.Errorf("duplicate gram key %q", g.Key())
		}
		seen[g.Key()] = true
	}
}

func TestLengthFilter(t *testing.T) {
	if !LengthOK(5, 5, 0) || !LengthOK(5, 6, 1) || LengthOK(5, 7, 1) {
		t.Error("LengthOK wrong")
	}
	if !LengthOK(7, 5, 2.5) {
		t.Error("LengthOK should accept within fractional k")
	}
}

func TestPositionFilter(t *testing.T) {
	if !PositionOK(3, 3, 0) || !PositionOK(3, 4, 1) || PositionOK(3, 5, 1) {
		t.Error("PositionOK wrong")
	}
}

func TestCountThreshold(t *testing.T) {
	// Identical strings of length n with k=1, q=3: need >= n-1 matches.
	if got := CountThreshold(5, 5, 3, 1); got != 4 {
		t.Errorf("CountThreshold(5,5,3,1) = %d, want 4", got)
	}
	// Large k drives the threshold to useless (<= 0).
	if got := CountThreshold(4, 4, 3, 3); got > 0 {
		t.Errorf("CountThreshold(4,4,3,3) = %d, want <= 0", got)
	}
}

// The fundamental guarantee: the filter never dismisses a true match
// (no false dismissals w.r.t. unit-cost edit distance).
func TestQuickNoFalseDismissals(t *testing.T) {
	all := phoneme.All()
	mk := func(bs []byte) phoneme.String {
		if len(bs) > 10 {
			bs = bs[:10]
		}
		s := make(phoneme.String, 0, len(bs))
		for _, b := range bs {
			s = append(s, all[int(b)%6]) // small alphabet to force collisions
		}
		return s
	}
	for _, q := range []int{2, 3} {
		f := func(ba, bb []byte, kRaw uint8) bool {
			a, b := mk(ba), mk(bb)
			k := float64(kRaw % 4)
			d := editdist.Distance(a, b, editdist.Unit{})
			if d > k {
				return true // only true matches constrain the filter
			}
			return NewFilter(a, q).Survives(b, k)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
			t.Errorf("q=%d: %v", q, err)
		}
	}
}

func TestFilterPrunesObviousNonMatches(t *testing.T) {
	f := NewFilter(ps("neru"), 3)
	// Completely different string at tight k must be pruned.
	if f.Survives(ps("mohandas"), 1) {
		t.Error("filter kept a wildly different string")
	}
	// Identical string always survives.
	if !f.Survives(ps("neru"), 0) {
		t.Error("filter dismissed an exact match")
	}
	// One substitution at k=1 survives.
	if !f.Survives(ps("nero"), 1) {
		t.Error("filter dismissed a distance-1 string at k=1")
	}
}

func TestFilterSelectivity(t *testing.T) {
	// Over a small universe, the filter should prune a decent fraction
	// of non-matches while keeping all matches (sanity of usefulness).
	universe := []phoneme.String{
		ps("neru"), ps("nero"), ps("neɪru"), ps("ɡita"), ps("sita"),
		ps("kamala"), ps("kumar"), ps("raːm"), ps("mohan"), ps("dʒɔn"),
		ps("dʒonsən"), ps("katrin"), ps("kætrin"), ps("ʃɑː"), ps("xan"),
	}
	q := ps("neru")
	f := NewFilter(q, 3)
	k := 1.0
	kept, total := 0, 0
	for _, cand := range universe {
		total++
		surv := f.Survives(cand, k)
		d := editdist.Distance(q, cand, editdist.Unit{})
		if d <= k && !surv {
			t.Errorf("false dismissal of %s", cand)
		}
		if surv {
			kept++
		}
	}
	if kept == total {
		t.Error("filter kept everything; no pruning power")
	}
}

func TestMatchCountUsesEachGramOnce(t *testing.T) {
	// "aaa" vs "aa": repeated grams must not be double counted.
	a := Extract(ps("aaa"), 2)
	b := Extract(ps("aa"), 2)
	if got := matchCount(a, b, 10); got > len(b) {
		t.Errorf("matchCount = %d exceeds gram count %d", got, len(b))
	}
}
