package qgram

import (
	"math/bits"

	"lexequal/internal/phoneme"
)

// This file adds the batched form of the Count filter: a 64-bit Bloom
// signature of a string's q-gram contents, precomputed once per corpus
// row, so a scan can reject most candidates with an XOR/AND/POPCNT
// instead of extracting and intersecting gram lists per pair. The
// signature discards positions, so the bound it yields (MaxShared) is
// an upper bound on the positional match count the exact Count filter
// computes — pruning on it never produces a false dismissal relative to
// the exact filter.

// sigHash folds one q-gram's content into a bucket index. FNV-1a over
// the padded phonemes: cheap, deterministic, and spread well enough for
// the 64-bucket Bloom domain.
func sigHash(gram []phoneme.Phoneme) uint {
	h := uint64(14695981039346656037)
	for _, p := range gram {
		h ^= uint64(p)
		h *= 1099511628211
	}
	return uint(h & 63)
}

// Signature returns the 64-bit Bloom signature of s's positional
// q-grams (content only, positions discarded): bit sigHash(g) is set
// for every gram g of the padded string. Equal-content grams always map
// to the same bit, so a gram of one string whose bit is absent from
// another string's signature cannot content-match any gram there.
func Signature(s phoneme.String, q int) uint64 {
	if q < 2 {
		panic("qgram: q must be >= 2")
	}
	// Mirror Extract's padding without materializing the gram structs.
	padded := make([]phoneme.Phoneme, 0, len(s)+2*(q-1))
	for i := 0; i < q-1; i++ {
		padded = append(padded, phoneme.Invalid)
	}
	padded = append(padded, s...)
	for i := 0; i < q-1; i++ {
		padded = append(padded, phoneme.Invalid)
	}
	var sig uint64
	for i := 0; i+q <= len(padded); i++ {
		sig |= 1 << sigHash(padded[i:i+q])
	}
	return sig
}

// MaxShared upper-bounds how many of the query's nQueryGrams positional
// q-grams can content-match a gram of the candidate, given only the two
// signatures: every distinct bit set in the query signature but absent
// from the candidate's accounts for at least one unmatchable query
// gram. Compare the result against CountThreshold — a candidate with
// MaxShared below the threshold cannot survive the exact Count filter.
func MaxShared(querySig, candSig uint64, nQueryGrams int) int {
	return nQueryGrams - bits.OnesCount64(querySig&^candSig)
}
