package qgram

import (
	"testing"

	"lexequal/internal/phoneme"
)

// TestSignatureSubsumesExtract: every gram's hash bit must be present
// in the string's signature, so MaxShared never undercounts the true
// content-match potential.
func TestSignatureSubsumesExtract(t *testing.T) {
	for _, raw := range []string{"", "n", "neru", "nehru", "dʒəʋaːɦərlaːl", "pɒtæsiəm"} {
		s := phoneme.MustParse(raw)
		for q := 2; q <= 4; q++ {
			sig := Signature(s, q)
			for _, g := range Extract(s, q) {
				if sig&(1<<sigHash(g.Gram)) == 0 {
					t.Fatalf("q=%d %q: gram %v's bit missing from signature", q, raw, g)
				}
			}
		}
	}
}

// TestMaxSharedBoundsMatchCount: MaxShared from the signatures must
// always dominate the exact positional match count, for any position
// budget — the soundness property the batched prefilter relies on.
func TestMaxSharedBoundsMatchCount(t *testing.T) {
	corpus := []string{"", "n", "neru", "nero", "nehru", "neːru", "dʒəʋaːɦərlaːl", "dʒawɑhɑrlɑl", "sita", "ɡita"}
	const q = 3
	for _, ra := range corpus {
		a := phoneme.MustParse(ra)
		ga := Extract(a, q)
		sa := Signature(a, q)
		for _, rb := range corpus {
			b := phoneme.MustParse(rb)
			gb := Extract(b, q)
			sb := Signature(b, q)
			for _, k := range []float64{0, 1, 2.5, 100} {
				exact := matchCount(ga, gb, k)
				if got := MaxShared(sa, sb, len(ga)); got < exact {
					t.Fatalf("MaxShared(%q,%q) = %d < exact count %d (k=%g)", ra, rb, got, exact, k)
				}
			}
		}
	}
}

// TestSignatureIdenticalStrings: a string shares all its grams with
// itself, so MaxShared must equal the full gram count.
func TestSignatureIdenticalStrings(t *testing.T) {
	s := phoneme.MustParse("nehru")
	const q = 3
	n := len(s) + q - 1
	if got := MaxShared(Signature(s, q), Signature(s, q), n); got != n {
		t.Errorf("MaxShared(self) = %d, want %d", got, n)
	}
}

// TestSignatureDiscriminates: wildly different strings must lose most
// shared-gram budget — the property that makes the prefilter useful.
func TestSignatureDiscriminates(t *testing.T) {
	a := phoneme.MustParse("dʒəʋaːɦərlaːl")
	b := phoneme.MustParse("pɒtæsiəm")
	const q = 3
	na := len(a) + q - 1
	if got := MaxShared(Signature(a, q), Signature(b, q), na); got > na/2 {
		t.Errorf("MaxShared(far pair) = %d of %d grams; signature has no discriminating power", got, na)
	}
}
