package wal

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

// streamAll reads records from the reader until want is reached,
// returning the raw record bytes in order.
func streamAll(t *testing.T, sr *StreamReader, upto uint64) [][]byte {
	t.Helper()
	var out [][]byte
	for {
		raw, rec, err := sr.Next()
		if err != nil {
			t.Fatalf("stream next: %v", err)
		}
		out = append(out, raw)
		if rec.LSN >= upto {
			return out
		}
	}
}

// TestStreamReaderFollowsLiveAppends proves the stream reader delivers
// every durable record in LSN order, across segment rolls, and wakes
// up for records appended after it caught up to the tail.
func TestStreamReaderFollowsLiveAppends(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	l.SetSegmentBytes(32 << 10) // force several rolls

	for txid := uint64(1); txid <= 8; txid++ {
		commitTxn(t, l, txid, "a.heap", 1, byte(txid))
	}
	last := l.LastLSN()

	sr, err := l.NewStreamReader(1)
	if err != nil {
		t.Fatal(err)
	}
	defer sr.Close()
	got := streamAll(t, sr, last)
	if len(got) != int(last) {
		t.Fatalf("streamed %d records, want %d", len(got), last)
	}
	// Verify the raw bytes parse and run contiguously from LSN 1.
	for i, raw := range got {
		lsn, _, _, _, err := ParseRawHeader(raw)
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if lsn != uint64(i+1) {
			t.Fatalf("record %d has lsn %d", i, lsn)
		}
	}

	// The reader is at the tail now; a live append must wake it.
	done := make(chan uint64, 1)
	go func() {
		_, rec, err := sr.Next()
		if err != nil {
			done <- 0
			return
		}
		done <- rec.LSN
	}()
	commitTxn(t, l, 99, "a.heap", 2, 0xEE)
	select {
	case lsn := <-done:
		if lsn != last+1 {
			t.Fatalf("tail read returned lsn %d, want %d", lsn, last+1)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("stream reader never woke for the live append")
	}
}

// TestStreamReaderStops proves Stop unblocks a reader waiting at the
// durable tail.
func TestStreamReaderStops(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	commitTxn(t, l, 1, "a.heap", 1, 0x11)

	sr, err := l.NewStreamReader(1)
	if err != nil {
		t.Fatal(err)
	}
	defer sr.Close()
	streamAll(t, sr, l.LastLSN())

	done := make(chan error, 1)
	go func() {
		_, _, err := sr.Next()
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	sr.Stop()
	select {
	case err := <-done:
		if !errors.Is(err, ErrStreamStopped) {
			t.Fatalf("stopped reader returned %v, want ErrStreamStopped", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Stop did not unblock the reader")
	}
}

// TestWaitDurableAboveStopFlag proves an armed stop flag aborts the
// durability wait.
func TestWaitDurableAboveStopFlag(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	var stop atomic.Bool
	done := make(chan error, 1)
	go func() { _, err := l.WaitDurableAbove(100, &stop); done <- err }()
	time.Sleep(10 * time.Millisecond)
	stop.Store(true)
	l.WakeDurableWaiters()
	select {
	case err := <-done:
		if !errors.Is(err, ErrStreamStopped) {
			t.Fatalf("wait returned %v, want ErrStreamStopped", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("WakeDurableWaiters did not unblock the wait")
	}
}

// fillSegments commits transactions until the log holds at least n
// live segments, returning the last LSN.
func fillSegments(t *testing.T, l *Log, n int) uint64 {
	t.Helper()
	txid := uint64(1000)
	for {
		_, count := l.Segments()
		if count >= n {
			return l.LastLSN()
		}
		txid++
		commitTxn(t, l, txid, "a.heap", 1, byte(txid))
	}
}

// TestRetentionPinHoldsGC proves a follower pin keeps segments alive
// past the checkpoint floor, and that releasing (or advancing) the pin
// lets the next GC reclaim them.
func TestRetentionPinHoldsGC(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	l.SetSegmentBytes(16 << 10)

	l.PinRetention("f1", 1) // follower acked nothing yet
	last := fillSegments(t, l, 5)

	// Checkpoint at the tail: without the pin every old segment dies.
	begin, err := l.CheckpointBegin()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.CompleteCheckpoint(begin, last); err != nil {
		t.Fatal(err)
	}
	removed, err := l.GC()
	if err != nil {
		t.Fatal(err)
	}
	if removed != 0 {
		t.Fatalf("GC removed %d segments despite the follower pin", removed)
	}
	if first, _ := l.Segments(); first != 1 {
		t.Fatalf("first live segment %d, want 1 (pinned)", first)
	}

	// The follower acks the tail: everything below becomes reclaimable.
	l.AdvanceRetention("f1", last)
	removed, err = l.GC()
	if err != nil {
		t.Fatal(err)
	}
	if removed == 0 {
		t.Fatal("GC reclaimed nothing after the pin advanced")
	}
	if broken := l.RetentionBroken("f1"); broken {
		t.Fatal("advancing pin must not break it")
	}
}

// TestRetentionCapBreaksSlowFollower proves the retention cap
// sacrifices a too-slow follower's pin (flagging it for resync)
// instead of letting the log grow without bound — while never
// unlinking segments the checkpoint floor still needs.
func TestRetentionCapBreaksSlowFollower(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	l.SetSegmentBytes(16 << 10)
	l.SetRetentionSegments(2)

	l.PinRetention("slow", 1)
	last := fillSegments(t, l, 6)

	begin, err := l.CheckpointBegin()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.CompleteCheckpoint(begin, last); err != nil {
		t.Fatal(err)
	}
	removed, err := l.GC()
	if err != nil {
		t.Fatal(err)
	}
	if removed == 0 {
		t.Fatal("GC reclaimed nothing: the cap never broke the slow pin")
	}
	if !l.RetentionBroken("slow") {
		t.Fatal("slow follower's pin survived past the retention cap")
	}
	seq, count := l.Segments()
	if count > 2 {
		t.Fatalf("%d live segments survive a cap of 2 (first %d)", count, seq)
	}

	// A pin at the tail still works after the cap fired for another.
	l.PinRetention("fresh", last)
	if l.RetentionBroken("fresh") {
		t.Fatal("fresh pin at the tail must not be broken")
	}
}

// TestRetentionCapSparesCheckpointSegments proves the cap never breaks
// pins when doing so could not reclaim anything anyway because the
// checkpoint floor itself holds the segments live: recovery's needs
// outrank the cap.
func TestRetentionCapSparesCheckpointSegments(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	l.SetSegmentBytes(16 << 10)
	l.SetRetentionSegments(2)

	l.PinRetention("f1", 1)
	fillSegments(t, l, 6)
	// No checkpoint: the redo floor is still 0, every segment is needed
	// for recovery regardless of pins.
	removed, err := l.GC()
	if err != nil {
		t.Fatal(err)
	}
	if removed != 0 {
		t.Fatalf("GC removed %d recovery-needed segments", removed)
	}
	if l.RetentionBroken("f1") {
		t.Fatal("pin broken although breaking it could reclaim nothing")
	}
}

// TestAppendReplicaRoundTrip proves raw records streamed from one log
// reproduce byte-identical segments in another, and that the replica
// log rejects non-contiguous appends (a diverged stream).
func TestAppendReplicaRoundTrip(t *testing.T) {
	srcDir, dstDir := t.TempDir(), t.TempDir()
	src, err := Open(srcDir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	for txid := uint64(1); txid <= 3; txid++ {
		commitTxn(t, src, txid, "a.heap", 1, byte(txid))
	}
	last := src.LastLSN()

	dst, err := Open(dstDir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer dst.Close()

	sr, err := src.NewStreamReader(1)
	if err != nil {
		t.Fatal(err)
	}
	defer sr.Close()
	var raws [][]byte
	for _, raw := range streamAll(t, sr, last) {
		raws = append(raws, raw)
		if _, err := dst.AppendReplica(raw); err != nil {
			t.Fatalf("append replica: %v", err)
		}
	}
	if err := dst.EnsureDurable(last); err != nil {
		t.Fatal(err)
	}
	if dst.LastLSN() != last {
		t.Fatalf("replica last lsn %d, want %d", dst.LastLSN(), last)
	}

	// Replaying an old record (gap or duplicate) must be refused.
	if _, err := dst.AppendReplica(raws[0]); err == nil {
		t.Fatal("replica accepted a non-contiguous record")
	}

	// The replica's scan must agree record-for-record with the source.
	var srcRecs, dstRecs []Record
	if err := src.Records(func(r Record) error { srcRecs = append(srcRecs, r); return nil }); err != nil {
		t.Fatal(err)
	}
	if err := dst.Records(func(r Record) error { dstRecs = append(dstRecs, r); return nil }); err != nil {
		t.Fatal(err)
	}
	if len(srcRecs) != len(dstRecs) {
		t.Fatalf("replica scanned %d records, source %d", len(dstRecs), len(srcRecs))
	}
	for i := range srcRecs {
		if srcRecs[i].LSN != dstRecs[i].LSN || srcRecs[i].Type != dstRecs[i].Type || srcRecs[i].TxID != dstRecs[i].TxID {
			t.Fatalf("record %d diverges: %+v vs %+v", i, srcRecs[i], dstRecs[i])
		}
	}
}

// TestStreamReaderResyncBelowChain proves asking for records below the
// first live segment reports the deterministic resync error.
func TestStreamReaderResyncBelowChain(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	l.SetSegmentBytes(16 << 10)
	last := fillSegments(t, l, 4)
	begin, err := l.CheckpointBegin()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.CompleteCheckpoint(begin, last); err != nil {
		t.Fatal(err)
	}
	if removed, err := l.GC(); err != nil || removed == 0 {
		t.Fatalf("GC removed %d segments (err %v); the test needs a truncated chain", removed, err)
	}
	if _, err := l.NewStreamReader(1); !errors.Is(err, ErrResyncRequired) {
		t.Fatalf("stream from lsn 1 after GC returned %v, want ErrResyncRequired", err)
	}
	first, err := l.FirstLiveLSN()
	if err != nil {
		t.Fatal(err)
	}
	sr, err := l.NewStreamReader(first)
	if err != nil {
		t.Fatalf("stream from first live lsn %d: %v", first, err)
	}
	sr.Close()
}
