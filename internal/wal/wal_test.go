package wal

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"lexequal/internal/store"
)

func pagePayload(b byte) []byte {
	p := make([]byte, store.UsableSize)
	for i := range p {
		p[i] = b
	}
	return p
}

// commitTxn logs one page image for txid and commits it.
func commitTxn(t *testing.T, l *Log, txid uint64, file string, id store.PageID, fill byte) {
	t.Helper()
	if _, err := l.Begin(txid); err != nil {
		t.Fatalf("begin: %v", err)
	}
	if _, err := l.LogPage(txid, file, id, pagePayload(fill)); err != nil {
		t.Fatalf("log page: %v", err)
	}
	if _, err := l.Commit(txid); err != nil {
		t.Fatalf("commit: %v", err)
	}
}

func TestAppendScanRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	commitTxn(t, l, 1, "a.heap", 3, 0xAA)
	if _, err := l.Begin(2); err != nil {
		t.Fatal(err)
	}
	if _, err := l.LogCatalog(2, "catalog.json", []byte(`{"x":1}`)); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Abort(2); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	var types []byte
	var lsns []uint64
	err = l2.Records(func(r Record) error {
		types = append(types, r.Type)
		lsns = append(lsns, r.LSN)
		if r.Type == RecPage {
			if r.File != "a.heap" || r.Page != 3 || !bytes.Equal(r.Payload, pagePayload(0xAA)) {
				t.Errorf("page record mismatch: %q page %d", r.File, r.Page)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []byte{RecBegin, RecPage, RecCommit, RecBegin, RecCatalog, RecAbort}
	if !bytes.Equal(types, want) {
		t.Fatalf("types = %v, want %v", types, want)
	}
	for i := 1; i < len(lsns); i++ {
		if lsns[i] <= lsns[i-1] {
			t.Fatalf("LSNs not monotonic: %v", lsns)
		}
	}
	if got := l2.LastLSN(); got != lsns[len(lsns)-1] {
		t.Fatalf("LastLSN = %d, want %d", got, lsns[len(lsns)-1])
	}
	if !l2.HasRecords() {
		t.Fatal("HasRecords = false after reopen with records")
	}
}

func TestTornTailIgnoredAndOverwritten(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	commitTxn(t, l, 1, "a.heap", 0, 1)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Append garbage: a torn record from a crashed writer.
	seg := filepath.Join(dir, "wal", "000001.wal")
	f, err := os.OpenFile(seg, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("torn garbage bytes that are not a record")); err != nil {
		t.Fatal(err)
	}
	f.Close()

	l2, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	if err := l2.Records(func(r Record) error { count++; return nil }); err != nil {
		t.Fatal(err)
	}
	if count != 3 {
		t.Fatalf("records after torn tail = %d, want 3", count)
	}
	// New appends land where the garbage was and scan cleanly.
	commitTxn(t, l2, 2, "a.heap", 1, 2)
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	l3, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer l3.Close()
	count = 0
	if err := l3.Records(func(r Record) error { count++; return nil }); err != nil {
		t.Fatal(err)
	}
	if count != 6 {
		t.Fatalf("records after overwrite = %d, want 6", count)
	}
	if issues := Check(l3, false); len(issues) != 0 {
		t.Fatalf("Check: %v", issues)
	}
}

func TestBitFlipStopsScan(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	commitTxn(t, l, 1, "a.heap", 0, 1)
	commitTxn(t, l, 2, "a.heap", 1, 2)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	seg := filepath.Join(dir, "wal", "000001.wal")
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a bit inside the 4th record (txn 2's begin): the scan must
	// deliver exactly the first three records.
	off := segHdrSize
	for i := 0; i < 3; i++ {
		off += int(binary.LittleEndian.Uint32(data[off+4:]))
	}
	data[off+recHdrSize-1] ^= 0x40
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	count := 0
	if err := l2.Records(func(r Record) error { count++; return nil }); err != nil {
		t.Fatal(err)
	}
	if count != 3 {
		t.Fatalf("records after bit flip = %d, want 3", count)
	}
}

func TestResetKeepsLSNsAndDropsRecords(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	commitTxn(t, l, 1, "a.heap", 0, 1)
	high := l.LastLSN()
	if err := l.Reset(); err != nil {
		t.Fatal(err)
	}
	if l.HasRecords() {
		t.Fatal("HasRecords = true after Reset")
	}
	// LSNs keep counting: a page stamped before the reset must stay
	// provably durable in the log's next life.
	if got := l.DurableLSN(); got < high {
		t.Fatalf("DurableLSN after Reset = %d, want >= %d", got, high)
	}
	commitTxn(t, l, 2, "a.heap", 1, 2)
	if l.LastLSN() <= high {
		t.Fatalf("LSN did not advance past pre-reset high water: %d <= %d", l.LastLSN(), high)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	count := 0
	if err := l2.Records(func(r Record) error {
		count++
		if r.LSN <= high {
			t.Errorf("pre-reset LSN %d surfaced after reopen", r.LSN)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if count != 3 {
		t.Fatalf("records after reset+commit = %d, want 3", count)
	}
	if got := l2.DurableLSN(); got < high {
		t.Fatalf("reopened DurableLSN = %d, want >= %d", got, high)
	}
}

func TestRedoAppliesCommittedDiscardsLosers(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	commitTxn(t, l, 1, "t.heap", 0, 0x11)
	// Loser: logged a page but never committed.
	if _, err := l.Begin(2); err != nil {
		t.Fatal(err)
	}
	if _, err := l.LogPage(2, "t.heap", 1, pagePayload(0x22)); err != nil {
		t.Fatal(err)
	}
	// Committed catalog change.
	if _, err := l.Begin(3); err != nil {
		t.Fatal(err)
	}
	if _, err := l.LogCatalog(3, "catalog.json", []byte(`{"v":2}`)); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Commit(3); err != nil {
		t.Fatal(err)
	}

	stats, err := Redo(l, dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Applied != 1 {
		t.Fatalf("applied = %d, want 1", stats.Applied)
	}
	heap, err := os.ReadFile(filepath.Join(dir, "t.heap"))
	if err != nil {
		t.Fatal(err)
	}
	if len(heap) != store.PageSize {
		t.Fatalf("heap size = %d, want one page (loser page must not exist)", len(heap))
	}
	lsn, ok := store.PageImageLSN(0, heap[:store.PageSize])
	if !ok {
		t.Fatal("redone page fails verification")
	}
	if lsn == 0 || lsn > l.LastLSN() {
		t.Fatalf("redone pageLSN %d out of range", lsn)
	}
	cat, err := os.ReadFile(filepath.Join(dir, "catalog.json"))
	if err != nil {
		t.Fatal(err)
	}
	if string(cat) != `{"v":2}` {
		t.Fatalf("catalog = %q", cat)
	}

	// Idempotency: a second redo applies nothing and changes nothing.
	stats, err = Redo(l, dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Applied != 0 {
		t.Fatalf("second redo applied %d images, want 0", stats.Applied)
	}
	l.Close()
}

func TestRedoRepairsTornPage(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	commitTxn(t, l, 1, "t.heap", 0, 0x33)
	if _, err := Redo(l, dir, nil); err != nil {
		t.Fatal(err)
	}
	// Tear the page on disk: first half garbage, and truncate the file
	// to a non-aligned size as a torn extension would leave it.
	path := filepath.Join(dir, "t.heap")
	garbage := bytes.Repeat([]byte{0xFF}, store.PageSize/2)
	f, err := os.OpenFile(path, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt(garbage, 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Truncate(store.PageSize/2 + 100); err != nil {
		t.Fatal(err)
	}
	f.Close()

	stats, err := Redo(l, dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Applied != 1 {
		t.Fatalf("applied = %d, want 1 (torn page must be rewritten)", stats.Applied)
	}
	heap, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(heap)%store.PageSize != 0 {
		t.Fatalf("heap size %d not page aligned after redo", len(heap))
	}
	if _, ok := store.PageImageLSN(0, heap[:store.PageSize]); !ok {
		t.Fatal("page still fails verification after redo")
	}
	if !bytes.Equal(heap[:store.UsableSize], pagePayload(0x33)) {
		t.Fatal("page content not restored")
	}
}

func TestRedoRejectsUnsafeNames(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := l.Begin(1); err != nil {
		t.Fatal(err)
	}
	if _, err := l.LogPage(1, "../escape.heap", 0, pagePayload(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Commit(1); err != nil {
		t.Fatal(err)
	}
	// LogPage stores only the basename, so this one is actually safe;
	// forge a record with a hostile name the way a fuzzer would.
	if _, err := l.Begin(2); err != nil {
		t.Fatal(err)
	}
	name := "../../etc/passwd"
	buf := make([]byte, 2+len(name)+4+store.UsableSize)
	binary.LittleEndian.PutUint16(buf, uint16(len(name)))
	copy(buf[2:], name)
	if _, err := l.append(RecPage, 2, buf); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Commit(2); err != nil {
		t.Fatal(err)
	}
	if _, err := Redo(l, dir, nil); err == nil {
		t.Fatal("Redo accepted a path-traversing file name")
	}
}

func TestSegmentRoll(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Page records are ~4KB; push well past one segmentLimit.
	n := segmentLimit/store.PageSize + 16
	for i := 0; i < n; i++ {
		txid := uint64(i + 1)
		if _, err := l.Begin(txid); err != nil {
			t.Fatal(err)
		}
		if _, err := l.LogPage(txid, "t.heap", store.PageID(i%7), pagePayload(byte(i))); err != nil {
			t.Fatal(err)
		}
		if _, err := l.CommitNoWait(txid); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "wal", "000002.wal")); err != nil {
		t.Fatalf("no second segment after %d records: %v", 3*n, err)
	}
	l2, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	if err := l2.Records(func(r Record) error { count++; return nil }); err != nil {
		t.Fatal(err)
	}
	if count != 3*n {
		t.Fatalf("records across segments = %d, want %d", count, 3*n)
	}
	if issues := Check(l2, false); len(issues) != 0 {
		t.Fatalf("Check: %v", issues)
	}
	// Reset must remove the extra segments.
	if err := l2.Reset(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "wal", "000002.wal")); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("second segment survived Reset: %v", err)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestRollMakesOutgoingSegmentDurable pins the scan-floor invariant: a
// segment header's baseLSN promises that every lower LSN is durable, so
// the roll itself must fsync the outgoing segment — even when no commit
// ever waited for durability. Without that sync, a power failure after
// the roll could drop the old segment's tail while recovery's floor
// silently skips over the gap.
func TestRollMakesOutgoingSegmentDurable(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	// Fill past one segment using only CommitNoWait: nothing in this
	// workload requests a sync explicitly.
	n := segmentLimit/store.PageSize + 4
	for i := 0; i < n; i++ {
		txid := uint64(i + 1)
		if _, err := l.Begin(txid); err != nil {
			t.Fatal(err)
		}
		if _, err := l.LogPage(txid, "t.heap", store.PageID(i%5), pagePayload(byte(i))); err != nil {
			t.Fatal(err)
		}
		if _, err := l.CommitNoWait(txid); err != nil {
			t.Fatal(err)
		}
	}
	hdr := make([]byte, segHdrSize)
	f, err := os.Open(filepath.Join(dir, "wal", "000002.wal"))
	if err != nil {
		t.Fatalf("no second segment after %d page records: %v", n, err)
	}
	if _, err := f.ReadAt(hdr, 0); err != nil {
		t.Fatal(err)
	}
	f.Close()
	base := binary.LittleEndian.Uint64(hdr[12:20])
	if durable := l.DurableLSN(); durable < base-1 {
		t.Fatalf("segment 2 baseLSN %d promises durability below it, but DurableLSN = %d", base, durable)
	}
}

func TestGroupCommitBatchesFsyncs(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	const committers = 8
	const rounds = 20
	var wg sync.WaitGroup
	for c := 0; c < committers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				txid := uint64(c*rounds + r + 1)
				if _, err := l.Begin(txid); err != nil {
					t.Errorf("begin: %v", err)
					return
				}
				if _, err := l.Commit(txid); err != nil {
					t.Errorf("commit: %v", err)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	commits := uint64(committers * rounds)
	if s := l.Syncs(); s > commits/2 {
		t.Fatalf("group commit ineffective: %d fsyncs for %d commits", s, commits)
	}
	if issues := Check(l, false); len(issues) != 0 {
		t.Fatalf("Check: %v", issues)
	}
}

func TestSyncFailureIsSticky(t *testing.T) {
	dir := t.TempDir()
	ffs := &store.FaultFS{FailSync: 3} // syncs 1-2 create the segment (header, dir)
	l, err := Open(dir, ffs)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Begin(1); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Commit(1); err == nil {
		t.Fatal("commit succeeded through a failed fsync")
	}
	if _, err := l.Begin(2); err != nil {
		// Append may fail too (FS is down); either way commit must not
		// report durability.
		return
	}
	if _, err := l.Commit(2); err == nil {
		t.Fatal("second commit succeeded after wedged sync")
	}
}

func TestCheckFlagsInFlightTxn(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	commitTxn(t, l, 1, "a.heap", 0, 1)
	if _, err := l.Begin(2); err != nil {
		t.Fatal(err)
	}
	if issues := Check(l, false); len(issues) != 0 {
		t.Fatalf("non-strict Check flagged in-flight txn: %v", issues)
	}
	issues := Check(l, true)
	if len(issues) != 1 {
		t.Fatalf("strict Check issues = %v, want exactly the in-flight txn", issues)
	}
}

func TestOpenAfterCrashedSegmentCreation(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	commitTxn(t, l, 1, "a.heap", 0, 1)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// A crash mid-roll leaves the next segment with a partial header.
	if err := os.WriteFile(filepath.Join(dir, "wal", "000002.wal"), []byte("LXQL"), 0o644); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(dir, nil)
	if err != nil {
		t.Fatalf("open after crashed roll: %v", err)
	}
	defer l2.Close()
	count := 0
	if err := l2.Records(func(r Record) error { count++; return nil }); err != nil {
		t.Fatal(err)
	}
	if count != 3 {
		t.Fatalf("records = %d, want 3", count)
	}
	if _, err := os.Stat(filepath.Join(dir, "wal", "000002.wal")); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("crashed segment not cleaned up")
	}
}

func TestRecordsErrorPropagates(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	commitTxn(t, l, 1, "a.heap", 0, 1)
	sentinel := fmt.Errorf("stop here")
	if err := l.Records(func(r Record) error { return sentinel }); !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want sentinel", err)
	}
}
