package wal

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"lexequal/internal/store"
)

// flushPageImage simulates the checkpoint flush the pager performs in
// the real protocol: the committed after-image lands in the data file,
// stamped with its record LSN, before the floor is declared.
func flushPageImage(t *testing.T, dir, name string, id store.PageID, fill byte, lsn uint64) {
	t.Helper()
	img := make([]byte, store.PageSize)
	copy(img, pagePayload(fill))
	store.StampPageImage(id, img, lsn)
	f, err := os.OpenFile(filepath.Join(dir, name), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.WriteAt(img, int64(id)*store.PageSize); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
}

func TestCheckpointRecordRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	commitTxn(t, l, 1, "t.heap", 0, 0x11)
	beginLSN, err := l.CheckpointBegin()
	if err != nil {
		t.Fatal(err)
	}
	floor := l.LastLSN()
	endLSN, err := l.CompleteCheckpoint(beginLSN, floor)
	if err != nil {
		t.Fatal(err)
	}
	if got := l.DurableLSN(); got < endLSN {
		t.Fatalf("DurableLSN = %d, want >= %d (end record must be durable)", got, endLSN)
	}
	if got := l.RedoFloor(); got != floor {
		t.Fatalf("RedoFloor = %d, want %d", got, floor)
	}
	if got := l.SinceCheckpoint(); got != 0 {
		t.Fatalf("SinceCheckpoint = %d, want 0 after checkpoint", got)
	}
	var end *Record
	if err := l.Records(func(r Record) error {
		if r.Type == RecCheckpointEnd {
			rc := r
			end = &rc
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if end == nil {
		t.Fatal("no checkpoint end record in scan")
	}
	if end.CkptBegin != beginLSN || end.CkptFloor != floor {
		t.Fatalf("end record carries begin %d floor %d, want %d %d",
			end.CkptBegin, end.CkptFloor, beginLSN, floor)
	}
	if issues := Check(l, true); len(issues) != 0 {
		t.Fatalf("Check(strict) on completed checkpoint: %v", issues)
	}
}

func TestCompleteCheckpointValidates(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	commitTxn(t, l, 1, "t.heap", 0, 0x11)
	b1, err := l.CheckpointBegin()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.CompleteCheckpoint(b1, l.LastLSN()+1); err == nil {
		t.Fatal("floor above last LSN accepted")
	}
	floor := l.LastLSN()
	if _, err := l.CompleteCheckpoint(b1, floor); err != nil {
		t.Fatal(err)
	}
	commitTxn(t, l, 2, "t.heap", 1, 0x22)
	b2, err := l.CheckpointBegin()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.CompleteCheckpoint(b2, floor-1); err == nil {
		t.Fatal("regressing floor accepted")
	}
}

func TestCheckReportsAbandonedCheckpointStrictOnly(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	commitTxn(t, l, 1, "t.heap", 0, 0x11)
	if _, err := l.CheckpointBegin(); err != nil {
		t.Fatal(err)
	}
	if issues := Check(l, false); len(issues) != 0 {
		t.Fatalf("lenient Check flags abandoned checkpoint: %v", issues)
	}
	issues := Check(l, true)
	found := false
	for _, is := range issues {
		if strings.Contains(is, "never completed") {
			found = true
		}
	}
	if !found {
		t.Fatalf("strict Check missing abandoned-checkpoint report: %v", issues)
	}
}

// TestGCUnlinksSegmentsBelowFloor is the end-to-end WAL-layer story:
// a multi-segment log is checkpointed with a floor that strands a
// transaction's begin record below it, GC unlinks the dead segment,
// and the survivor log still reopens, scans, checks clean, and redoes
// correctly from the floor.
func TestGCUnlinksSegmentsBelowFloor(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	l.SetSegmentBytes(store.PageSize) // roll after every page record
	// txn 1: begin and page 0 land in segment 1; the commit record
	// rolls into segment 2, so GC of segment 1 strands the begin.
	if _, err := l.Begin(1); err != nil {
		t.Fatal(err)
	}
	pageLSN, err := l.LogPage(1, "t.heap", 0, pagePayload(0x11))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Commit(1); err != nil {
		t.Fatal(err)
	}
	commitTxn(t, l, 2, "t.heap", 1, 0x22)
	firstBefore, countBefore := l.Segments()
	if firstBefore != 1 || countBefore < 3 {
		t.Fatalf("segments before GC = (%d, %d), want run from 1 with >= 3", firstBefore, countBefore)
	}
	// Checkpoint with floor = page 0's LSN: its image is durably in the
	// data file, so everything at or below it may be dropped.
	beginLSN, err := l.CheckpointBegin()
	if err != nil {
		t.Fatal(err)
	}
	flushPageImage(t, dir, "t.heap", 0, 0x11, pageLSN)
	if _, err := l.CompleteCheckpoint(beginLSN, pageLSN); err != nil {
		t.Fatal(err)
	}
	removed, err := l.GC()
	if err != nil {
		t.Fatal(err)
	}
	if removed < 1 {
		t.Fatalf("GC removed %d segments, want >= 1", removed)
	}
	firstAfter, _ := l.Segments()
	if firstAfter <= 1 {
		t.Fatalf("first segment after GC = %d, want > 1", firstAfter)
	}
	if _, err := os.Stat(filepath.Join(dir, "wal", "000001.wal")); !os.IsNotExist(err) {
		t.Fatalf("segment 1 still present after GC (err=%v)", err)
	}
	// Satellite regression: check accepts a log whose first segment
	// sequence is non-zero after GC, including the stranded-begin head.
	if issues := Check(l, false); len(issues) != 0 {
		t.Fatalf("Check on GC'd log: %v", issues)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen discovers the run via the gcfloor pointer.
	l2, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	first2, _ := l2.Segments()
	if first2 != firstAfter {
		t.Fatalf("reopened first segment = %d, want %d", first2, firstAfter)
	}
	if !l2.StartsAboveOrigin() {
		t.Fatal("reopened GC'd log claims to start at origin")
	}
	if issues := Check(l2, false); len(issues) != 0 {
		t.Fatalf("Check on reopened GC'd log: %v", issues)
	}
	stats, err := Redo(l2, dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Floor != pageLSN {
		t.Fatalf("redo floor = %d, want %d", stats.Floor, pageLSN)
	}
	for _, id := range []store.PageID{0, 1} {
		img := make([]byte, store.PageSize)
		f, err := os.Open(filepath.Join(dir, "t.heap"))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.ReadAt(img, int64(id)*store.PageSize); err != nil {
			t.Fatalf("read page %d: %v", id, err)
		}
		f.Close()
		if _, ok := store.PageImageLSN(id, img); !ok {
			t.Fatalf("page %d fails verification after redo over GC'd log", id)
		}
	}
	// Appends continue with strictly increasing LSNs.
	commitTxn(t, l2, 3, "t.heap", 2, 0x33)
	if issues := Check(l2, false); len(issues) != 0 {
		t.Fatalf("Check after post-GC appends: %v", issues)
	}
}

// TestGCCrashOrphanSweep simulates a crash between the gcfloor pointer
// rename and the segment unlinks: the pointer names segment 3, segment
// 1 was removed, segment 2 survives as an orphan. Reopen must start at
// 3 and sweep the orphan.
func TestGCCrashOrphanSweep(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	l.SetSegmentBytes(store.PageSize)
	for i := uint64(1); i <= 4; i++ {
		commitTxn(t, l, i, "t.heap", store.PageID(i-1), byte(i))
	}
	_, count := l.Segments()
	if count < 4 {
		t.Fatalf("need >= 4 segments, have %d", count)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	wdir := filepath.Join(dir, "wal")
	lw := &Log{dir: wdir, fs: store.OSFS{}}
	if err := lw.writeGCFloor(3); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(wdir, "000001.wal")); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	first, _ := l2.Segments()
	if first != 3 {
		t.Fatalf("first segment = %d, want 3", first)
	}
	if _, err := os.Stat(filepath.Join(wdir, "000002.wal")); !os.IsNotExist(err) {
		t.Fatalf("orphan segment 2 not swept (err=%v)", err)
	}
	if issues := Check(l2, false); len(issues) != 0 {
		t.Fatalf("Check after orphan sweep: %v", issues)
	}
}

// TestResetOverridesStaleGCFloor: Reset rebuilds segment 1; a gcfloor
// pointer left behind by an earlier GC must be ignored (segment 1 wins
// discovery) and removed.
func TestResetOverridesStaleGCFloor(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	l.SetSegmentBytes(store.PageSize)
	var lastPageLSN uint64
	for i := uint64(1); i <= 3; i++ {
		commitTxn(t, l, i, "t.heap", store.PageID(i-1), byte(i))
	}
	beginLSN, err := l.CheckpointBegin()
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Records(func(r Record) error {
		if r.Type == RecPage {
			lastPageLSN = r.LSN
			flushPageImage(t, dir, "t.heap", r.Page, r.Payload[0], r.LSN)
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := l.CompleteCheckpoint(beginLSN, lastPageLSN); err != nil {
		t.Fatal(err)
	}
	if _, err := l.GC(); err != nil {
		t.Fatal(err)
	}
	preReset := l.LastLSN()
	if err := l.Reset(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "wal", gcFloorName)); !os.IsNotExist(err) {
		t.Fatalf("gcfloor pointer survives Reset (err=%v)", err)
	}
	first, count := l.Segments()
	if first != 1 || count != 1 {
		t.Fatalf("segments after Reset = (%d, %d), want (1, 1)", first, count)
	}
	commitTxn(t, l, 9, "t.heap", 0, 0x99)
	if l.LastLSN() <= preReset {
		t.Fatalf("LSNs restarted: last %d not above pre-reset %d", l.LastLSN(), preReset)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if first, _ := l2.Segments(); first != 1 {
		t.Fatalf("reopened first segment = %d, want 1", first)
	}
}

// TestRedoSkipsRecordsAtOrBelowFloor drives the bounded-recovery
// counters directly: records the checkpoint covered are Skipped, not
// Replayed, and their pre-flushed images are left untouched.
func TestRedoSkipsRecordsAtOrBelowFloor(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	commitTxn(t, l, 1, "t.heap", 0, 0x11)
	var page0LSN uint64
	if err := l.Records(func(r Record) error {
		if r.Type == RecPage {
			page0LSN = r.LSN
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	beginLSN, err := l.CheckpointBegin()
	if err != nil {
		t.Fatal(err)
	}
	flushPageImage(t, dir, "t.heap", 0, 0x11, page0LSN)
	if _, err := l.CompleteCheckpoint(beginLSN, page0LSN); err != nil {
		t.Fatal(err)
	}
	commitTxn(t, l, 2, "t.heap", 1, 0x22)

	stats, err := Redo(l, dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Floor != page0LSN {
		t.Fatalf("floor = %d, want %d", stats.Floor, page0LSN)
	}
	if stats.Skipped != 1 {
		t.Fatalf("skipped = %d, want 1 (page 0 covered by checkpoint)", stats.Skipped)
	}
	if stats.Replayed != 1 {
		t.Fatalf("replayed = %d, want 1 (page 1 above floor)", stats.Replayed)
	}
	if stats.Applied != 1 {
		t.Fatalf("applied = %d, want 1", stats.Applied)
	}
}
