package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"lexequal/internal/store"
)

// RedoStats describes one recovery pass: where redo started and how
// much work it actually did, so operators (and the bounded-recovery
// tests) can see whether checkpoints are holding replay down.
type RedoStats struct {
	// Floor is the redo floor of the last complete checkpoint found in
	// the log (0 = no checkpoint; redo starts at the log's origin).
	Floor uint64
	// CheckpointLSN is the LSN of that checkpoint's end record.
	CheckpointLSN uint64
	// Scanned counts every record the recovery scan visited.
	Scanned int
	// Skipped counts finished page/catalog records at or below the
	// floor — work the checkpoint already made durable.
	Skipped int
	// Replayed counts finished page/catalog records above the floor.
	Replayed int
	// Applied counts page images physically rewritten (Replayed minus
	// pages whose on-disk image was already current).
	Applied int
	// Losers holds the IDs of transactions the log shows records for
	// but no terminator (neither commit nor abort) — in flight at the
	// crash, or abandoned by an escalated in-process rollback that
	// could not finish compensating. Redo skipped their page images,
	// but a finished image logged AFTER a loser's write to the same
	// page embeds the loser's rows; the db layer purges those by
	// version header before reopening for service.
	Losers map[uint64]bool
}

// Redo replays the log over the database directory: every page image
// belonging to a finished transaction — one the log terminates with a
// commit OR an abort record — is re-applied (newest wins). An abort
// trail is replayed because it is self-contained: the forward images
// followed by the compensation images that undid them, so replaying
// it in LSN order lands on the undone state; the abort record is only
// appended once compensation has been fully logged, which is what
// makes the trail safe to flush under no-steal and safe to replay
// here. Records of loser transactions — begun but never terminated —
// are discarded, which under the no-steal buffer policy is all the
// undo there is.
//
// Replay starts at the last complete checkpoint's redo floor: records
// at or below it were durably flushed to the data files before the
// checkpoint-end record was written, so they are skipped (and their
// segments may already have been garbage-collected).
//
// Redo uses raw file I/O, not pagers: crashed data files may be torn
// or non-page-aligned and would fail a pager's open-time validation;
// the images in the log are exactly what repairs them. Application is
// idempotent — each image is skipped when the on-disk page already
// verifies with an LSN at or above the record's — so a crash during
// recovery is cured by recovering again.
//
// fs nil means the OS filesystem.
func Redo(l *Log, dbDir string, fs store.VFS) (RedoStats, error) {
	var stats RedoStats
	if fs == nil {
		fs = store.OSFS{}
	}
	// Pass 1: which transactions finished with a terminator (commit or
	// abort), and where the last complete checkpoint put the redo
	// floor. Any checkpoint-end the scan reaches is complete by
	// construction (it was appended and synced before anything relied
	// on it); the newest one wins.
	finished := make(map[uint64]bool)
	seen := make(map[uint64]bool)
	if err := l.Records(func(r Record) error {
		stats.Scanned++
		if r.TxID != 0 {
			seen[r.TxID] = true
		}
		switch r.Type {
		case RecCommit, RecAbort:
			finished[r.TxID] = true
		case RecCheckpointEnd:
			stats.Floor = r.CkptFloor
			stats.CheckpointLSN = r.LSN
		}
		return nil
	}); err != nil {
		return stats, err
	}
	// Loser identification needs no begin record: every record a
	// transaction writes carries its ID, and the checkpoint floor is
	// pinned below the oldest live begin, so no loser's trail is ever
	// wholly garbage-collected out from under this scan.
	stats.Losers = make(map[uint64]bool)
	for id := range seen {
		if !finished[id] {
			stats.Losers[id] = true
		}
	}
	// Pass 2: apply page images of finished transactions in LSN order
	// through the shared Applier (which remembers the last finished
	// catalog image and publishes it atomically in Finish).
	a := NewApplier(dbDir, fs)
	defer a.Close()
	err := l.Records(func(r Record) error {
		if !finished[r.TxID] {
			return nil
		}
		if r.Type != RecPage && r.Type != RecCatalog {
			return nil
		}
		if r.LSN <= stats.Floor {
			// The checkpoint flushed and fsynced this image's effects
			// before declaring the floor; replaying it would be
			// harmless but is exactly the work checkpoints exist to
			// bound.
			stats.Skipped++
			return nil
		}
		stats.Replayed++
		_, err := a.Apply(r)
		return err
	})
	if err != nil {
		return stats, err
	}
	if err := a.Finish(); err != nil {
		return stats, err
	}
	stats.Applied = a.Applied
	return stats, nil
}

// safeName validates a file name taken from a log record before it is
// joined to the database directory. Records are CRC-protected, but the
// log is an external input (fuzzed, copied between machines), so a name
// must be a bare basename — no separators, no "..", not empty.
func safeName(name string) (string, error) {
	if name == "" || name == "." || name == ".." ||
		strings.ContainsAny(name, "/\\") || strings.ContainsRune(name, 0) {
		return "", fmt.Errorf("wal: unsafe file name %q in log record", name)
	}
	return name, nil
}

// writeFileAtomic publishes contents at dir/name via tmp + fsync +
// rename, the same protocol the live engine uses for the catalog.
func writeFileAtomic(fs store.VFS, dir, name string, contents []byte) error {
	tmp := filepath.Join(dir, name+".redo.tmp")
	f, err := fs.OpenFile(tmp, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("wal: redo catalog create: %w", err)
	}
	if _, err := f.WriteAt(contents, 0); err != nil {
		return errors.Join(fmt.Errorf("wal: redo catalog write: %w", err), f.Close())
	}
	if err := f.Sync(); err != nil {
		return errors.Join(fmt.Errorf("wal: redo catalog sync: %w", err), f.Close())
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := fs.Rename(tmp, filepath.Join(dir, name)); err != nil {
		return fmt.Errorf("wal: redo catalog rename: %w", err)
	}
	return nil
}
