package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"lexequal/internal/store"
)

// Applier applies page and catalog images from log records to a
// database directory with raw file I/O — the shared engine under
// crash recovery (Redo), replica restart replay (Replay), and any
// future offline log tooling. Raw I/O rather than pagers because the
// target files may be torn, missing, or non-page-aligned; the images
// in the log are exactly what repairs them.
//
// Page application is idempotent: an image is skipped when the on-disk
// page already verifies with an LSN at or above the record's, so a
// crash mid-apply is cured by applying again. The catalog image is
// buffered and published last, atomically, in Finish — data pages must
// be on disk before a catalog that names them becomes visible.
//
// Not safe for concurrent use.
type Applier struct {
	fs    store.VFS
	dbDir string
	files map[string]store.File

	catName  string
	catImage []byte

	// Applied counts page images physically rewritten (records minus
	// pages whose on-disk image was already current).
	Applied int
}

// NewApplier returns an applier over dbDir. fs nil means the OS
// filesystem.
func NewApplier(dbDir string, fs store.VFS) *Applier {
	if fs == nil {
		fs = store.OSFS{}
	}
	return &Applier{fs: fs, dbDir: dbDir, files: make(map[string]store.File)}
}

func (a *Applier) openData(name string) (store.File, error) {
	if f, ok := a.files[name]; ok {
		return f, nil
	}
	f, err := a.fs.OpenFile(filepath.Join(a.dbDir, name), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: apply open %s: %w", name, err)
	}
	a.files[name] = f
	return f, nil
}

// Apply applies one RecPage or RecCatalog record. Other record types
// are ignored (returning false) so callers can feed an unfiltered
// stream. Returns whether a page image was physically written.
func (a *Applier) Apply(r Record) (bool, error) {
	switch r.Type {
	case RecPage:
		name, err := safeName(r.File)
		if err != nil {
			return false, err
		}
		f, err := a.openData(name)
		if err != nil {
			return false, err
		}
		off := int64(r.Page) * store.PageSize
		cur := make([]byte, store.PageSize)
		if n, rerr := f.ReadAt(cur, off); n == store.PageSize && rerr == nil {
			if lsn, ok := store.PageImageLSN(r.Page, cur); ok && lsn >= r.LSN {
				return false, nil // already at or past this image
			}
		}
		img := make([]byte, store.PageSize)
		copy(img, r.Payload)
		store.StampPageImage(r.Page, img, r.LSN)
		if _, err := f.WriteAt(img, off); err != nil {
			return false, fmt.Errorf("wal: apply write %s page %d: %w", name, r.Page, err)
		}
		a.Applied++
		return true, nil
	case RecCatalog:
		name, err := safeName(r.File)
		if err != nil {
			return false, err
		}
		a.catName = name
		a.catImage = append(a.catImage[:0], r.Payload...)
		return false, nil
	}
	return false, nil
}

// Finish fixes file tails, makes every applied image durable, and
// publishes the buffered catalog image atomically. Non-page-aligned
// files are rounded down: the partial tail page is crash debris — any
// committed content for it was just rewritten at full size, which
// realigns the file first. Closes all handles; the applier must not be
// used afterwards.
func (a *Applier) Finish() error {
	names := make([]string, 0, len(a.files))
	for name := range a.files {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		f := a.files[name]
		st, err := f.Stat()
		if err != nil {
			return err
		}
		if rem := st.Size() % store.PageSize; rem != 0 {
			if err := f.Truncate(st.Size() - rem); err != nil {
				return fmt.Errorf("wal: apply truncate %s: %w", name, err)
			}
		}
		if err := f.Sync(); err != nil {
			return fmt.Errorf("wal: apply sync %s: %w", name, err)
		}
		if err := f.Close(); err != nil {
			return err
		}
		delete(a.files, name)
	}
	if a.catName != "" {
		if err := writeFileAtomic(a.fs, a.dbDir, a.catName, a.catImage); err != nil {
			return err
		}
		a.catName, a.catImage = "", nil
	}
	if err := store.SyncDir(a.fs, a.dbDir); err != nil {
		return fmt.Errorf("wal: apply sync dir: %w", err)
	}
	return nil
}

// Close releases file handles without syncing — the error-path
// counterpart of Finish. Safe after Finish (a no-op then).
func (a *Applier) Close() error {
	var first error
	for name, f := range a.files {
		if err := f.Close(); err != nil && first == nil {
			first = err
		}
		delete(a.files, name)
	}
	return first
}

// ReplayStats describes one replica restart replay.
type ReplayStats struct {
	// Scanned counts every record the replay visited above the floor.
	Scanned int
	// Applied counts page images physically rewritten.
	Applied int
	// Live maps each transaction with records but no terminator in the
	// local log to the LSN of its first record — in flight on the
	// primary at the moment of the replica's crash. Their page images
	// WERE applied (the live apply loop applies images as they arrive;
	// MVCC version headers keep their rows invisible), so they must be
	// re-registered as in-flight both in the log (SeedLiveTxs) and in
	// the database's MVCC registry before serving reads.
	Live map[uint64]uint64
	// MaxCommit is the LSN of the newest commit record seen (0 if
	// none).
	MaxCommit uint64
	// LiveCatalogs maps each live transaction to its buffered catalog
	// image, if it logged one. The live apply loop defers catalog
	// publication to the commit record; restart must re-buffer these so
	// the commit still to arrive from the stream publishes them — and
	// must NOT publish them itself (the transaction may yet abort).
	LiveCatalogs map[uint64][]byte
}

// Replay is replica restart recovery: it re-applies every page and
// catalog record above floor from the replica's local log, regardless
// of transaction state. Unlike Redo there is no winner/loser pass —
// a replica never undoes anything. Its live apply loop writes every
// incoming image into the pager as it arrives, relying on MVCC version
// headers for visibility, so restart must reconstruct exactly that
// state: all images applied, in-flight transactions re-registered
// (returned in Live).
//
// floor is the replica's persisted checkpoint floor: images at or
// below it were flushed and fsynced by a replica checkpoint. The first
// record of every live transaction is above the floor (DeclareFloor
// clamps below live begins), so Live's first-seen LSNs are true begin
// LSNs.
//
// fs nil means the OS filesystem.
func Replay(l *Log, dbDir string, fs store.VFS, floor uint64) (ReplayStats, error) {
	stats := ReplayStats{Live: make(map[uint64]uint64), LiveCatalogs: make(map[uint64][]byte)}
	a := NewApplier(dbDir, fs)
	defer a.Close()
	// Catalog images follow the live apply loop's commit rule: buffered
	// per transaction, handed to the applier only when the commit record
	// is in the log, dropped on abort, and returned in LiveCatalogs when
	// the terminator has not arrived yet.
	pendingCat := make(map[uint64]Record)
	err := l.Records(func(r Record) error {
		if r.LSN <= floor {
			return nil
		}
		stats.Scanned++
		switch r.Type {
		case RecCommit:
			delete(stats.Live, r.TxID)
			if rec, ok := pendingCat[r.TxID]; ok {
				delete(pendingCat, r.TxID)
				if _, err := a.Apply(rec); err != nil {
					return err
				}
			}
			if r.LSN > stats.MaxCommit {
				stats.MaxCommit = r.LSN
			}
			return nil
		case RecAbort:
			delete(stats.Live, r.TxID)
			delete(pendingCat, r.TxID)
			return nil
		case RecCheckpointBegin, RecCheckpointEnd:
			// The primary streams its checkpoint records verbatim (they
			// keep the LSN run contiguous); they carry nothing a replica
			// applies.
			return nil
		}
		if r.TxID != 0 {
			if _, ok := stats.Live[r.TxID]; !ok {
				stats.Live[r.TxID] = r.LSN
			}
		}
		if r.Type == RecCatalog {
			rc := r
			rc.Payload = append([]byte(nil), r.Payload...) // fn must not retain
			pendingCat[r.TxID] = rc
			return nil
		}
		_, err := a.Apply(r)
		return err
	})
	if err != nil {
		return stats, err
	}
	if err := a.Finish(); err != nil {
		return stats, err
	}
	for txid, rec := range pendingCat {
		stats.LiveCatalogs[txid] = rec.Payload
	}
	stats.Applied = a.Applied
	return stats, nil
}
