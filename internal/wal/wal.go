// Package wal implements the write-ahead log and crash recovery for
// the engine.
//
// The log is physiological in spirit but physical in payload: every
// record carries either transaction bookkeeping (begin/commit/abort) or
// the full after-image of one page (or of the catalog file). Recovery
// is redo-only ARIES-lite under a no-steal buffer policy — the pager
// never flushes a page dirtied by an uncommitted transaction, so undo
// is unnecessary: records of loser transactions are simply skipped.
//
// Two durability rules connect the log to the store layer:
//
//  1. WAL rule: a dirty page may reach its data file only after the log
//     record carrying its after-image is durable. store.Pager enforces
//     this by calling EnsureDurable(pageLSN) before every write-back.
//  2. Commit rule: a transaction is committed the instant its commit
//     record is durable; data files are written back lazily.
//
// On disk the log lives in <dbdir>/wal/ as numbered segment files
// (000001.wal, 000002.wal, ...). Each segment starts with a 24-byte
// header and holds a run of records:
//
//	header: magic "LXQLWAL\x01" (8) | seq uint32 | baseLSN uint64 |
//	        crc32c over the first 20 bytes (4)
//	record: crc32c over bytes [4:N) (4) | totalLen uint32 |
//	        lsn uint64 | txid uint64 | type byte | payload
//
// All integers are little-endian. LSNs are strictly monotonic across
// segments; a scan stops at the first record whose CRC fails, whose
// length is impossible, or whose LSN does not increase — that is the
// torn tail of a crash, and everything after it is garbage by rule 1.
//
// Group commit: Commit appends the commit record and then waits for a
// flusher to make it durable. The first waiter becomes the leader,
// sleeps FlushInterval to collect followers, syncs once, and wakes
// everyone whose LSN the sync covered. One fsync thereby retires many
// commits.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
	"time"

	"lexequal/internal/store"
)

// Record types.
const (
	// RecBegin opens a transaction.
	RecBegin byte = 1
	// RecCommit commits a transaction; durable RecCommit == committed.
	RecCommit byte = 2
	// RecAbort ends a transaction without committing. Redo skips its
	// records; the pager never flushed them (no-steal).
	RecAbort byte = 3
	// RecPage carries the full after-image of one data page:
	// nameLen uint16 | file basename | pageID uint32 | UsableSize bytes.
	RecPage byte = 4
	// RecCatalog carries a whole-file after-image applied by atomic
	// tmp+rename: nameLen uint16 | file basename | contents.
	RecCatalog byte = 5
)

const (
	segHdrSize = 24
	recHdrSize = 4 + 4 + 8 + 8 + 1 // crc, totalLen, lsn, txid, type
	walMagic   = "LXQLWAL\x01"

	// MaxRecordSize bounds a single record; anything larger in a scan
	// is treated as a torn tail rather than allocated.
	MaxRecordSize = 1 << 24

	// segmentLimit is the append size at which the log rolls to a new
	// segment file.
	segmentLimit = 16 << 20

	// DefaultFlushInterval is how long a group-commit leader waits for
	// followers before syncing.
	DefaultFlushInterval = 200 * time.Microsecond
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrClosed is returned by operations on a closed log.
var ErrClosed = errors.New("wal: log closed")

// Record is one decoded log record.
type Record struct {
	LSN  uint64
	TxID uint64
	Type byte
	// File is the basename of the file a RecPage/RecCatalog targets.
	File string
	// Page is the page ID for RecPage.
	Page store.PageID
	// Payload is the page image (RecPage, len == store.UsableSize) or
	// file contents (RecCatalog).
	Payload []byte
}

// Log is the write-ahead log manager for one database directory. All
// methods are safe for concurrent use.
type Log struct {
	dir string
	fs  store.VFS

	mu      sync.Mutex // guards append state
	f       store.File // current segment
	seq     uint32     // current segment number
	size    int64      // append offset in current segment
	nextLSN uint64
	lastLSN uint64
	closed  bool

	// hasRecords is whether any record exists in the log (as opposed
	// to bare segment headers).
	hasRecords bool

	// finishedLSN is the LSN of the most recent commit or abort
	// record. Because write transactions serialize above this layer, a
	// page LSN at or below it belongs to a finished transaction — the
	// basis of the pager's no-steal check.
	finishedLSN uint64

	fmu        sync.Mutex // guards durability state
	fcond      *sync.Cond
	durableLSN uint64
	flushing   bool
	syncErr    error // sticky: after a sync failure the log is wedged
	syncs      uint64
	flushEvery time.Duration
}

// Open opens (creating if needed) the log under dir/wal and scans it to
// find the durable tail. fs nil means the OS filesystem.
func Open(dir string, fs store.VFS) (*Log, error) {
	if fs == nil {
		fs = store.OSFS{}
	}
	wdir := filepath.Join(dir, "wal")
	if err := fs.MkdirAll(wdir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: mkdir: %w", err)
	}
	l := &Log{dir: wdir, fs: fs, nextLSN: 1, flushEvery: DefaultFlushInterval}
	l.fcond = sync.NewCond(&l.fmu)
	if err := l.openTail(); err != nil {
		return nil, err
	}
	return l, nil
}

// segPath returns the path of segment seq.
func (l *Log) segPath(seq uint32) string {
	return filepath.Join(l.dir, fmt.Sprintf("%06d.wal", seq))
}

// segments probes the directory for the contiguous run of segment
// files starting at 1. The VFS has no ReadDir, so existence is probed
// with Stat.
func (l *Log) segments() []uint32 {
	var segs []uint32
	for seq := uint32(1); ; seq++ {
		if _, err := l.fs.Stat(l.segPath(seq)); err != nil {
			return segs
		}
		segs = append(segs, seq)
	}
}

// openTail scans existing segments to find nextLSN and the append
// position, then opens (or creates) the tail segment.
//
// The scan carries an LSN floor forward: each segment header's baseLSN
// raises it, so records left over from a pre-Reset life of the log
// (lower LSNs than the fresh segment-1 header announces) are rejected
// as stale, and an empty post-Reset log still resumes LSNs above every
// pageLSN already stamped on data pages — restarting at 1 would leave
// on-disk pageLSNs the pager could never prove durable.
func (l *Log) openTail() error {
	for {
		segs := l.segments()
		if len(segs) == 0 {
			return l.createSegment(1, 1)
		}
		floor := uint64(0)
		var tailEnd int64
		var scanErr error
		sawRecords := false
		for _, seq := range segs {
			end, newFloor, err := scanSegment(l.fs, l.segPath(seq), floor, nil)
			if err != nil {
				scanErr = err
				break
			}
			if end > segHdrSize {
				sawRecords = true
			}
			floor = newFloor
			tailEnd = end
		}
		if scanErr != nil {
			// A structurally broken header on the LAST segment is a
			// crash during segment creation: the header syncs before
			// any record is appended, so nothing durable lived there.
			// Discard it and retry. Anywhere else it is corruption.
			tail := segs[len(segs)-1]
			var cfe *store.CorruptFileError
			if errors.As(scanErr, &cfe) && cfe.Path == l.segPath(tail) && tail > 1 {
				if err := l.fs.Remove(l.segPath(tail)); err != nil {
					return errors.Join(scanErr, err)
				}
				continue
			}
			if errors.As(scanErr, &cfe) && cfe.Path == l.segPath(1) && len(segs) == 1 {
				// Crash while creating the very first segment of a new
				// log: no records ever existed. Recreate it.
				return l.createSegment(1, 1)
			}
			return scanErr
		}
		tail := segs[len(segs)-1]
		f, err := l.fs.OpenFile(l.segPath(tail), os.O_RDWR, 0o644)
		if err != nil {
			return fmt.Errorf("wal: open segment: %w", err)
		}
		// Drop the torn tail so new records append over garbage cleanly.
		if err := f.Truncate(tailEnd); err != nil {
			return errors.Join(fmt.Errorf("wal: truncate tail: %w", err), f.Close())
		}
		l.f = f
		l.seq = tail
		l.size = tailEnd
		l.nextLSN = floor + 1
		l.lastLSN = floor
		l.hasRecords = sawRecords
		l.finishedLSN = floor // everything on disk predates this process
		l.durableLSN = floor
		return nil
	}
}

// createSegment writes a fresh segment file with the given sequence
// number and base LSN and makes it the append target.
//
// Rolling preserves the durability invariant behind the scan floor:
// recovery trusts that every LSN below a segment's baseLSN is durable,
// so the outgoing segment is fsynced before the swap — otherwise a
// later sync() of the new segment could report coverage of LSNs whose
// bytes still sit only in the old segment's page cache, and a power
// failure would silently drop them while the floor hides the gap. The
// directory is fsynced too, so the new segment's entry cannot vanish
// out from under records already reported durable.
func (l *Log) createSegment(seq uint32, baseLSN uint64) error {
	if l.f != nil {
		if err := l.f.Sync(); err != nil {
			return fmt.Errorf("wal: sync outgoing segment: %w", err)
		}
		l.fmu.Lock()
		l.syncs++
		if l.lastLSN > l.durableLSN {
			l.durableLSN = l.lastLSN
		}
		l.fmu.Unlock()
	}
	f, err := l.fs.OpenFile(l.segPath(seq), os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("wal: create segment: %w", err)
	}
	hdr := make([]byte, segHdrSize)
	copy(hdr, walMagic)
	binary.LittleEndian.PutUint32(hdr[8:], seq)
	binary.LittleEndian.PutUint64(hdr[12:], baseLSN)
	binary.LittleEndian.PutUint32(hdr[20:], crc32.Checksum(hdr[:20], castagnoli))
	if _, err := f.WriteAt(hdr, 0); err != nil {
		return errors.Join(fmt.Errorf("wal: write segment header: %w", err), f.Close())
	}
	if err := f.Sync(); err != nil {
		return errors.Join(fmt.Errorf("wal: sync segment header: %w", err), f.Close())
	}
	if err := store.SyncDir(l.fs, l.dir); err != nil {
		return errors.Join(fmt.Errorf("wal: sync wal dir: %w", err), f.Close())
	}
	if l.f != nil {
		if err := l.f.Close(); err != nil {
			return errors.Join(err, f.Close())
		}
	}
	l.f = f
	l.seq = seq
	l.size = segHdrSize
	return nil
}

// append encodes and writes one record, returning its LSN. The bytes
// are in the OS page cache but NOT durable until a sync covers them.
func (l *Log) append(typ byte, txid uint64, payload []byte) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	if l.size >= segmentLimit {
		if err := l.createSegment(l.seq+1, l.nextLSN); err != nil {
			return 0, err
		}
	}
	lsn := l.nextLSN
	total := recHdrSize + len(payload)
	buf := make([]byte, total)
	binary.LittleEndian.PutUint32(buf[4:], uint32(total))
	binary.LittleEndian.PutUint64(buf[8:], lsn)
	binary.LittleEndian.PutUint64(buf[16:], txid)
	buf[24] = typ
	copy(buf[recHdrSize:], payload)
	binary.LittleEndian.PutUint32(buf[0:], crc32.Checksum(buf[4:], castagnoli))
	if _, err := l.f.WriteAt(buf, l.size); err != nil {
		return 0, fmt.Errorf("wal: append: %w", err)
	}
	l.size += int64(total)
	l.nextLSN = lsn + 1
	l.lastLSN = lsn
	l.hasRecords = true
	if typ == RecCommit || typ == RecAbort {
		l.finishedLSN = lsn
	}
	return lsn, nil
}

// Begin appends a begin record for txid.
func (l *Log) Begin(txid uint64) (uint64, error) {
	return l.append(RecBegin, txid, nil)
}

// LogPage appends the after-image of one page. path is the data file's
// path; only its basename is recorded (the log and data files share a
// directory). payload must be exactly store.UsableSize bytes.
func (l *Log) LogPage(txid uint64, path string, id store.PageID, payload []byte) (uint64, error) {
	if len(payload) != store.UsableSize {
		return 0, fmt.Errorf("wal: page payload is %d bytes, want %d", len(payload), store.UsableSize)
	}
	name := filepath.Base(path)
	buf := make([]byte, 2+len(name)+4+len(payload))
	binary.LittleEndian.PutUint16(buf, uint16(len(name)))
	copy(buf[2:], name)
	binary.LittleEndian.PutUint32(buf[2+len(name):], uint32(id))
	copy(buf[2+len(name)+4:], payload)
	return l.append(RecPage, txid, buf)
}

// LogCatalog appends a whole-file after-image of the catalog, applied
// by recovery via atomic tmp+rename.
func (l *Log) LogCatalog(txid uint64, name string, contents []byte) (uint64, error) {
	buf := make([]byte, 2+len(name)+len(contents))
	binary.LittleEndian.PutUint16(buf, uint16(len(name)))
	copy(buf[2:], name)
	copy(buf[2+len(name):], contents)
	return l.append(RecCatalog, txid, buf)
}

// Abort appends an abort record for txid. It does not wait for
// durability: an abort that never becomes durable is indistinguishable
// from a crash mid-transaction, and both discard the loser.
func (l *Log) Abort(txid uint64) (uint64, error) {
	return l.append(RecAbort, txid, nil)
}

// CommitNoWait appends the commit record and returns its LSN without
// waiting for durability. Pair with WaitDurable; Commit does both.
func (l *Log) CommitNoWait(txid uint64) (uint64, error) {
	return l.append(RecCommit, txid, nil)
}

// Commit appends the commit record and blocks until it is durable
// (group commit: the wait batches with concurrent committers).
func (l *Log) Commit(txid uint64) (uint64, error) {
	lsn, err := l.append(RecCommit, txid, nil)
	if err != nil {
		return 0, err
	}
	return lsn, l.WaitDurable(lsn)
}

// WaitDurable blocks until every record at or below lsn is durable,
// joining or leading a group-commit flush as needed.
func (l *Log) WaitDurable(lsn uint64) error {
	return l.waitDurable(lsn, l.flushEvery)
}

// EnsureDurable is WaitDurable without the leader's collection sleep:
// the caller (a page write-back honoring the WAL rule) must not be
// delayed to batch with commits.
func (l *Log) EnsureDurable(lsn uint64) error {
	return l.waitDurable(lsn, 0)
}

func (l *Log) waitDurable(lsn uint64, wait time.Duration) error {
	l.fmu.Lock()
	defer l.fmu.Unlock()
	for {
		if l.syncErr != nil {
			return l.syncErr
		}
		if l.durableLSN >= lsn {
			return nil
		}
		if !l.flushing {
			break
		}
		l.fcond.Wait()
	}
	// Become the leader.
	l.flushing = true
	l.fmu.Unlock()
	if wait > 0 {
		time.Sleep(wait) // collect followers
	}
	covered, err := l.sync()
	l.fmu.Lock()
	l.flushing = false
	if err != nil {
		l.syncErr = err
	} else if covered > l.durableLSN {
		l.durableLSN = covered
	}
	l.fcond.Broadcast()
	if l.syncErr != nil {
		return l.syncErr
	}
	if l.durableLSN >= lsn {
		return nil
	}
	// A segment roll raced our sync; loop will retry.
	return l.waitDurableLocked(lsn)
}

// waitDurableLocked re-enters the wait loop with fmu held (rare path).
func (l *Log) waitDurableLocked(lsn uint64) error {
	for l.syncErr == nil && l.durableLSN < lsn {
		if !l.flushing {
			l.flushing = true
			l.fmu.Unlock()
			covered, err := l.sync()
			l.fmu.Lock()
			l.flushing = false
			if err != nil {
				l.syncErr = err
			} else if covered > l.durableLSN {
				l.durableLSN = covered
			}
			l.fcond.Broadcast()
			continue
		}
		l.fcond.Wait()
	}
	return l.syncErr
}

// sync fsyncs the current segment and returns the highest LSN the sync
// covered. Holding mu prevents a concurrent segment roll from closing
// the file under us.
func (l *Log) sync() (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	covered := l.lastLSN
	if err := l.f.Sync(); err != nil {
		return 0, fmt.Errorf("wal: sync: %w", err)
	}
	l.fmu.Lock()
	l.syncs++
	l.fmu.Unlock()
	return covered, nil
}

// Sync forces everything appended so far to durable storage.
func (l *Log) Sync() error {
	l.mu.Lock()
	last := l.lastLSN
	l.mu.Unlock()
	if last == 0 {
		return nil
	}
	return l.EnsureDurable(last)
}

// Committed reports whether lsn belongs to a finished (committed or
// aborted) transaction. Valid because write transactions serialize:
// every record at or below the last commit/abort record belongs to a
// finished transaction. Implements store.WALHook.
func (l *Log) Committed(lsn uint64) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return lsn <= l.finishedLSN
}

// DurableLSN returns the highest LSN known durable.
func (l *Log) DurableLSN() uint64 {
	l.fmu.Lock()
	defer l.fmu.Unlock()
	return l.durableLSN
}

// LastLSN returns the LSN of the most recently appended record.
func (l *Log) LastLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lastLSN
}

// Syncs returns how many fsyncs the log has issued — the group-commit
// effectiveness metric.
func (l *Log) Syncs() uint64 {
	l.fmu.Lock()
	defer l.fmu.Unlock()
	return l.syncs
}

// SetFlushInterval sets how long a group-commit leader waits to collect
// followers before syncing. Zero means sync immediately per commit.
func (l *Log) SetFlushInterval(d time.Duration) {
	l.fmu.Lock()
	defer l.fmu.Unlock()
	if d < 0 {
		d = 0
	}
	l.flushEvery = d
}

// FlushInterval returns the current group-commit collection window.
func (l *Log) FlushInterval() time.Duration {
	l.fmu.Lock()
	defer l.fmu.Unlock()
	return l.flushEvery
}

// HasRecords reports whether the log holds any records (i.e. recovery
// has work to do or Reset is worthwhile).
func (l *Log) HasRecords() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.hasRecords
}

// Reset discards all log records after a checkpoint: the caller has
// flushed every data page and the catalog, so the history is no longer
// needed. LSNs keep counting from where they were (pageLSNs on disk
// must stay ≤ any future durable LSN — the fresh header's baseLSN
// records the continuation point).
//
// Crash safety: the fresh segment-1 header is built in a temp file and
// renamed into place, so segment 1 is atomically either the old log
// (Reset simply didn't happen) or the empty new one. Higher segments
// are removed afterwards, highest first; any that survive a crash hold
// only records below the new baseLSN, which the scan floor rejects as
// stale.
func (l *Log) Reset() error {
	l.fmu.Lock()
	if l.syncErr != nil {
		defer l.fmu.Unlock()
		return l.syncErr
	}
	l.fmu.Unlock()
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	segs := l.segments()
	if err := l.f.Close(); err != nil {
		return err
	}
	l.f = nil
	hdr := make([]byte, segHdrSize)
	copy(hdr, walMagic)
	binary.LittleEndian.PutUint32(hdr[8:], 1)
	binary.LittleEndian.PutUint64(hdr[12:], l.nextLSN)
	binary.LittleEndian.PutUint32(hdr[20:], crc32.Checksum(hdr[:20], castagnoli))
	tmp := l.segPath(1) + ".tmp"
	tf, err := l.fs.OpenFile(tmp, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("wal: reset create: %w", err)
	}
	if _, err := tf.WriteAt(hdr, 0); err != nil {
		return errors.Join(fmt.Errorf("wal: reset write header: %w", err), tf.Close())
	}
	if err := tf.Sync(); err != nil {
		return errors.Join(fmt.Errorf("wal: reset sync header: %w", err), tf.Close())
	}
	if err := tf.Close(); err != nil {
		return err
	}
	if err := l.fs.Rename(tmp, l.segPath(1)); err != nil {
		return fmt.Errorf("wal: reset rename: %w", err)
	}
	if err := store.SyncDir(l.fs, l.dir); err != nil {
		return fmt.Errorf("wal: reset sync dir: %w", err)
	}
	// Highest first, so the contiguous probe in segments() never
	// orphans a survivor behind a gap.
	for i := len(segs) - 1; i >= 0; i-- {
		if segs[i] == 1 {
			continue
		}
		if err := l.fs.Remove(l.segPath(segs[i])); err != nil {
			return fmt.Errorf("wal: reset remove: %w", err)
		}
	}
	f, err := l.fs.OpenFile(l.segPath(1), os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("wal: reset reopen: %w", err)
	}
	l.f = f
	l.seq = 1
	l.size = segHdrSize
	l.lastLSN = l.nextLSN - 1
	l.hasRecords = false
	l.fmu.Lock()
	l.durableLSN = l.nextLSN - 1
	l.fmu.Unlock()
	return nil
}

// Close syncs and closes the log. Safe to call twice.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	last := l.lastLSN
	l.mu.Unlock()
	var syncErr error
	if last != 0 {
		syncErr = l.EnsureDurable(last)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return syncErr
	}
	l.closed = true
	if l.f != nil {
		if err := l.f.Close(); err != nil && syncErr == nil {
			syncErr = err
		}
		l.f = nil
	}
	l.fmu.Lock()
	if l.syncErr == nil {
		l.syncErr = ErrClosed
	}
	l.fcond.Broadcast()
	l.fmu.Unlock()
	return syncErr
}

// Records scans the whole log and calls fn for every valid record in
// LSN order, stopping at the torn tail. fn must not retain Payload.
// A structurally broken tail segment (crash during creation, before
// its header synced — so provably record-free) is skipped.
func (l *Log) Records(fn func(Record) error) error {
	l.mu.Lock()
	segs := l.segments()
	dir, fs := l.dir, l.fs
	l.mu.Unlock()
	floor := uint64(0)
	for i, seq := range segs {
		path := filepath.Join(dir, fmt.Sprintf("%06d.wal", seq))
		_, newFloor, err := scanSegment(fs, path, floor, fn)
		if err != nil {
			var cfe *store.CorruptFileError
			if errors.As(err, &cfe) && i == len(segs)-1 && seq > 1 {
				return nil
			}
			return err
		}
		floor = newFloor
	}
	return nil
}

// scanSegment reads one segment file, verifying the header and every
// record CRC, and calls fn (if non-nil) per record. floor is the
// highest LSN accounted for by earlier segments; the segment header's
// baseLSN raises it further (baseLSN-1 is by construction the last LSN
// of the log's previous life, so anything at or below it is stale).
// Records must keep LSNs strictly above the floor and strictly
// increasing, or the scan treats the rest as torn tail. It returns the
// byte offset just past the last valid record and the new floor. A
// structurally broken header is an error; a torn record is not.
func scanSegment(fs store.VFS, path string, floor uint64, fn func(Record) error) (int64, uint64, error) {
	data, err := store.ReadFile(fs, path)
	if err != nil {
		return 0, floor, fmt.Errorf("wal: read segment: %w", err)
	}
	if len(data) < segHdrSize {
		// Segment created but header never fully written: a crash
		// during createSegment. Nothing valid inside.
		return 0, floor, &store.CorruptFileError{Path: path, Reason: "wal segment shorter than header"}
	}
	if string(data[:8]) != walMagic {
		return 0, floor, &store.CorruptFileError{Path: path, Reason: "bad wal magic"}
	}
	if crc32.Checksum(data[:20], castagnoli) != binary.LittleEndian.Uint32(data[20:24]) {
		return 0, floor, &store.CorruptFileError{Path: path, Reason: "wal segment header checksum mismatch"}
	}
	if base := binary.LittleEndian.Uint64(data[12:20]); base > 0 && base-1 > floor {
		floor = base - 1
	}
	off := int64(segHdrSize)
	for {
		if int64(len(data))-off < recHdrSize {
			return off, floor, nil // torn tail
		}
		rec := data[off:]
		total := binary.LittleEndian.Uint32(rec[4:])
		if total < recHdrSize || total > MaxRecordSize || int64(total) > int64(len(data))-off {
			return off, floor, nil // torn tail
		}
		if crc32.Checksum(rec[4:total], castagnoli) != binary.LittleEndian.Uint32(rec[0:]) {
			return off, floor, nil // torn tail
		}
		lsn := binary.LittleEndian.Uint64(rec[8:])
		if lsn <= floor {
			// Stale data from a pre-Reset life of this file.
			return off, floor, nil
		}
		if fn != nil {
			r, perr := decodeRecord(rec[:total])
			if perr != nil {
				return off, floor, nil // malformed payload: treat as tail
			}
			if err := fn(r); err != nil {
				return off, floor, err
			}
		}
		floor = lsn
		off += int64(total)
	}
}

// decodeRecord parses the payload of a CRC-valid record.
func decodeRecord(rec []byte) (Record, error) {
	r := Record{
		LSN:  binary.LittleEndian.Uint64(rec[8:]),
		TxID: binary.LittleEndian.Uint64(rec[16:]),
		Type: rec[24],
	}
	payload := rec[recHdrSize:]
	switch r.Type {
	case RecBegin, RecCommit, RecAbort:
		return r, nil
	case RecPage:
		if len(payload) < 2 {
			return r, errors.New("wal: short page record")
		}
		n := int(binary.LittleEndian.Uint16(payload))
		if len(payload) < 2+n+4 {
			return r, errors.New("wal: short page record")
		}
		r.File = string(payload[2 : 2+n])
		r.Page = store.PageID(binary.LittleEndian.Uint32(payload[2+n:]))
		r.Payload = payload[2+n+4:]
		if len(r.Payload) != store.UsableSize {
			return r, errors.New("wal: page record payload size mismatch")
		}
		return r, nil
	case RecCatalog:
		if len(payload) < 2 {
			return r, errors.New("wal: short catalog record")
		}
		n := int(binary.LittleEndian.Uint16(payload))
		if len(payload) < 2+n {
			return r, errors.New("wal: short catalog record")
		}
		r.File = string(payload[2 : 2+n])
		r.Payload = payload[2+n:]
		return r, nil
	default:
		return r, fmt.Errorf("wal: unknown record type %d", r.Type)
	}
}
