// Package wal implements the write-ahead log and crash recovery for
// the engine.
//
// The log is physiological in spirit but physical in payload: every
// record carries either transaction bookkeeping (begin/commit/abort) or
// the full after-image of one page (or of the catalog file). Recovery
// is redo-only ARIES-lite under a no-steal buffer policy — the pager
// never flushes a page dirtied by an uncommitted transaction, so undo
// is unnecessary: records of loser transactions are simply skipped.
//
// Two durability rules connect the log to the store layer:
//
//  1. WAL rule: a dirty page may reach its data file only after the log
//     record carrying its after-image is durable. store.Pager enforces
//     this by calling EnsureDurable(pageLSN) before every write-back.
//  2. Commit rule: a transaction is committed the instant its commit
//     record is durable; data files are written back lazily.
//
// On disk the log lives in <dbdir>/wal/ as numbered segment files
// (000001.wal, 000002.wal, ...). Each segment starts with a 24-byte
// header and holds a run of records:
//
//	header: magic "LXQLWAL\x01" (8) | seq uint32 | baseLSN uint64 |
//	        crc32c over the first 20 bytes (4)
//	record: crc32c over bytes [4:N) (4) | totalLen uint32 |
//	        lsn uint64 | txid uint64 | type byte | payload
//
// All integers are little-endian. LSNs are strictly monotonic across
// segments; a scan stops at the first record whose CRC fails, whose
// length is impossible, or whose LSN does not increase — that is the
// torn tail of a crash, and everything after it is garbage by rule 1.
//
// Group commit: Commit appends the commit record and then waits for a
// flusher to make it durable. The first waiter becomes the leader,
// sleeps FlushInterval to collect followers, syncs once, and wakes
// everyone whose LSN the sync covered. One fsync thereby retires many
// commits.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
	"time"

	"lexequal/internal/store"
)

// Record types.
const (
	// RecBegin opens a transaction.
	RecBegin byte = 1
	// RecCommit commits a transaction; durable RecCommit == committed.
	RecCommit byte = 2
	// RecAbort ends a transaction without committing. Redo skips its
	// records; the pager never flushed them (no-steal).
	RecAbort byte = 3
	// RecPage carries the full after-image of one data page:
	// nameLen uint16 | file basename | pageID uint32 | UsableSize bytes.
	RecPage byte = 4
	// RecCatalog carries a whole-file after-image applied by atomic
	// tmp+rename: nameLen uint16 | file basename | contents.
	RecCatalog byte = 5
	// RecCheckpointBegin marks the start of a fuzzy checkpoint (txid 0,
	// no payload). A begin with no matching end is an abandoned
	// checkpoint — normal crash/ENOSPC debris, carrying no promises.
	RecCheckpointBegin byte = 6
	// RecCheckpointEnd marks a completed checkpoint: beginLSN uint64 |
	// redo floor uint64 (txid 0). Its durable presence proves every
	// committed page image at or below the floor is in the data files,
	// so recovery may skip records at or below it and segment GC may
	// unlink segments wholly below it.
	RecCheckpointEnd byte = 7
)

const (
	segHdrSize = 24
	recHdrSize = 4 + 4 + 8 + 8 + 1 // crc, totalLen, lsn, txid, type
	walMagic   = "LXQLWAL\x01"

	// MaxRecordSize bounds a single record; anything larger in a scan
	// is treated as a torn tail rather than allocated.
	MaxRecordSize = 1 << 24

	// segmentLimit is the default append size at which the log rolls to
	// a new segment file (SetSegmentBytes overrides it, chiefly so tests
	// can force multi-segment logs cheaply).
	segmentLimit = 16 << 20

	// gcFloorName is the pointer file inside the wal directory that
	// records the first live segment after a GC. The VFS has no ReadDir,
	// so after segments below the redo floor are unlinked this is how a
	// reopen finds the start of the run: magic (8) | seq uint32 |
	// crc32c over the first 12 bytes (4).
	gcFloorName  = "gcfloor"
	gcFloorMagic = "LXQLGCP\x01"
	gcFloorSize  = 16

	// DefaultFlushInterval is how long a group-commit leader waits for
	// followers before syncing.
	DefaultFlushInterval = 200 * time.Microsecond
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrClosed is returned by operations on a closed log.
var ErrClosed = errors.New("wal: log closed")

// Record is one decoded log record.
type Record struct {
	LSN  uint64
	TxID uint64
	Type byte
	// File is the basename of the file a RecPage/RecCatalog targets.
	File string
	// Page is the page ID for RecPage.
	Page store.PageID
	// Payload is the page image (RecPage, len == store.UsableSize) or
	// file contents (RecCatalog).
	Payload []byte
	// CkptBegin and CkptFloor are the paired begin-record LSN and the
	// redo floor carried by a RecCheckpointEnd.
	CkptBegin uint64
	CkptFloor uint64
}

// Log is the write-ahead log manager for one database directory. All
// methods are safe for concurrent use.
type Log struct {
	dir string
	fs  store.VFS

	mu       sync.Mutex // guards append state
	f        store.File // current segment
	seq      uint32     // current segment number
	firstSeq uint32     // lowest live segment (advanced by GC)
	size     int64      // append offset in current segment
	segLimit int64      // roll threshold (segmentLimit by default)
	nextLSN  uint64
	lastLSN  uint64
	closed   bool

	// redoFloor/ckptLSN describe the last checkpoint completed in this
	// process life (0 until one completes); ckptBytes counts bytes
	// appended since then — the auto-checkpoint trigger input.
	redoFloor uint64
	ckptLSN   uint64
	ckptBytes int64

	// hasRecords is whether any record exists in the log (as opposed
	// to bare segment headers).
	hasRecords bool

	// finishedLSN is the LSN of the most recent commit or abort
	// record. With no transaction in flight, a page LSN at or below it
	// belongs to a finished transaction — the basis of the pager's
	// no-steal check (see Committed for the concurrent-writer form).
	finishedLSN uint64

	// liveTxs maps each in-flight transaction to the LSN of its begin
	// record. It drives the conservative no-steal floor in Committed
	// (any record below every live begin belongs to a finished
	// transaction) and pins the checkpoint redo floor below the oldest
	// live begin so segment GC never orphans a loser's record trail.
	liveTxs map[uint64]uint64

	// pins holds the per-follower retention pins (see stream.go): GC
	// keeps every segment with records above any unbroken pin, up to
	// retainSegs live segments (0 = unlimited). A pin broken by the cap
	// stays registered, marked, so its follower gets a deterministic
	// resync error instead of silently missing history.
	pins       map[string]*retentionPin
	retainSegs int

	fmu        sync.Mutex // guards durability state
	fcond      *sync.Cond
	durableLSN uint64
	flushing   bool
	syncErr    error // sticky: after a sync failure the log is wedged
	syncs      uint64
	flushEvery time.Duration
}

// Open opens (creating if needed) the log under dir/wal and scans it to
// find the durable tail. fs nil means the OS filesystem.
func Open(dir string, fs store.VFS) (*Log, error) {
	if fs == nil {
		fs = store.OSFS{}
	}
	wdir := filepath.Join(dir, "wal")
	if err := fs.MkdirAll(wdir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: mkdir: %w", err)
	}
	l := &Log{dir: wdir, fs: fs, nextLSN: 1, segLimit: segmentLimit, flushEvery: DefaultFlushInterval,
		liveTxs: make(map[uint64]uint64)}
	l.fcond = sync.NewCond(&l.fmu)
	// Sweep crash debris from interrupted atomic publishes: an
	// un-renamed tmp is by definition an uncommitted write, safe to
	// drop. Both writers here use deterministic names.
	for _, tmp := range []string{l.gcFloorPath() + ".tmp", l.segPath(1) + ".tmp"} {
		if err := fs.Remove(tmp); err != nil && !errors.Is(err, os.ErrNotExist) {
			return nil, fmt.Errorf("wal: sweep debris %s: %w", tmp, err)
		}
	}
	if err := l.openTail(); err != nil {
		return nil, err
	}
	return l, nil
}

// segPath returns the path of segment seq.
func (l *Log) segPath(seq uint32) string {
	return filepath.Join(l.dir, fmt.Sprintf("%06d.wal", seq))
}

func (l *Log) gcFloorPath() string { return filepath.Join(l.dir, gcFloorName) }

// segments probes the directory for the contiguous run of segment
// files starting at firstSeq. The VFS has no ReadDir, so existence is
// probed with Stat.
func (l *Log) segments() []uint32 {
	first := l.firstSeq
	if first == 0 {
		first = 1
	}
	var segs []uint32
	for seq := first; ; seq++ {
		if _, err := l.fs.Stat(l.segPath(seq)); err != nil {
			return segs
		}
		segs = append(segs, seq)
	}
}

// resolveFirstSeq decides where the segment run starts. A present
// segment 1 always wins: GC never leaves one behind (it unlinks
// upward from the old first segment), so its existence means either no
// GC has happened or a Reset rebuilt the log — in both cases the
// gcfloor pointer is stale. Otherwise a valid pointer whose segment
// exists names the start. A pointer at a missing segment with no
// segment 1 either is refused: creating a fresh log there would
// restart LSNs below pageLSNs already stamped on data pages.
func (l *Log) resolveFirstSeq() (uint32, error) {
	if _, err := l.fs.Stat(l.segPath(1)); err == nil {
		return 1, nil
	}
	ptr, ok, err := l.readGCFloor()
	if err != nil {
		return 0, err
	}
	if !ok {
		return 1, nil // no pointer, no segment 1: empty or fresh log
	}
	if _, err := l.fs.Stat(l.segPath(ptr)); err == nil {
		return ptr, nil
	}
	return 0, &store.CorruptFileError{Path: l.gcFloorPath(),
		Reason: fmt.Sprintf("gc floor points at missing wal segment %d", ptr)}
}

// readGCFloor parses the gcfloor pointer file. ok is false when the
// file does not exist; a present-but-invalid pointer is corruption.
func (l *Log) readGCFloor() (uint32, bool, error) {
	data, err := store.ReadFile(l.fs, l.gcFloorPath())
	if errors.Is(err, os.ErrNotExist) {
		return 0, false, nil
	}
	if err != nil {
		return 0, false, fmt.Errorf("wal: read gc floor: %w", err)
	}
	if len(data) != gcFloorSize || string(data[:8]) != gcFloorMagic ||
		crc32.Checksum(data[:12], castagnoli) != binary.LittleEndian.Uint32(data[12:]) {
		return 0, false, &store.CorruptFileError{Path: l.gcFloorPath(), Reason: "gc floor pointer fails verification"}
	}
	seq := binary.LittleEndian.Uint32(data[8:])
	if seq < 2 {
		return 0, false, &store.CorruptFileError{Path: l.gcFloorPath(),
			Reason: fmt.Sprintf("gc floor names impossible segment %d", seq)}
	}
	return seq, true, nil
}

// writeGCFloor durably publishes the pointer via tmp + fsync + rename +
// dir sync, so GC may unlink segments below seq only once a reopen is
// guaranteed to find the run's new start.
func (l *Log) writeGCFloor(seq uint32) error {
	buf := make([]byte, gcFloorSize)
	copy(buf, gcFloorMagic)
	binary.LittleEndian.PutUint32(buf[8:], seq)
	binary.LittleEndian.PutUint32(buf[12:], crc32.Checksum(buf[:12], castagnoli))
	tmp := l.gcFloorPath() + ".tmp"
	f, err := l.fs.OpenFile(tmp, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("wal: gc floor create: %w", err)
	}
	if _, err := f.WriteAt(buf, 0); err != nil {
		return errors.Join(fmt.Errorf("wal: gc floor write: %w", err), f.Close())
	}
	if err := f.Sync(); err != nil {
		return errors.Join(fmt.Errorf("wal: gc floor sync: %w", err), f.Close())
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := l.fs.Rename(tmp, l.gcFloorPath()); err != nil {
		return fmt.Errorf("wal: gc floor rename: %w", err)
	}
	if err := store.SyncDir(l.fs, l.dir); err != nil {
		return fmt.Errorf("wal: gc floor dir sync: %w", err)
	}
	return nil
}

// openTail scans existing segments to find nextLSN and the append
// position, then opens (or creates) the tail segment.
//
// The scan carries an LSN floor forward: each segment header's baseLSN
// raises it, so records left over from a pre-Reset life of the log
// (lower LSNs than the fresh segment-1 header announces) are rejected
// as stale, and an empty post-Reset log still resumes LSNs above every
// pageLSN already stamped on data pages — restarting at 1 would leave
// on-disk pageLSNs the pager could never prove durable.
func (l *Log) openTail() error {
	first, err := l.resolveFirstSeq()
	if err != nil {
		return err
	}
	l.firstSeq = first
	if first == 1 {
		// Segment 1 outranks the gcfloor pointer, so any pointer on disk
		// now is stale: debris of a crash between the floor publish and
		// the unlink loop, or of a pre-Reset life. Drop it — the next GC
		// republishes a fresh one — so a lingering stale pointer can
		// never outlive the open that judged it stale.
		if _, statErr := l.fs.Stat(l.gcFloorPath()); statErr == nil {
			if err := l.fs.Remove(l.gcFloorPath()); err != nil {
				return fmt.Errorf("wal: remove stale gc floor: %w", err)
			}
		}
	}
	// Sweep orphans a crash-interrupted GC left below the pointer. GC
	// unlinks lowest-first, so survivors are contiguous up to first-1;
	// probing downward finds them all and stops at the first gap.
	for seq := first - 1; seq >= 1; seq-- {
		if _, err := l.fs.Stat(l.segPath(seq)); err != nil {
			break
		}
		if err := l.fs.Remove(l.segPath(seq)); err != nil {
			return fmt.Errorf("wal: remove gc orphan: %w", err)
		}
	}
	for {
		segs := l.segments()
		if len(segs) == 0 {
			if l.firstSeq > 1 {
				// The gcfloor pointer promised a segment run here; an
				// empty directory means the log was externally damaged.
				// A fresh log would restart LSNs below on-disk pageLSNs.
				return &store.CorruptFileError{Path: l.gcFloorPath(),
					Reason: fmt.Sprintf("no wal segments at or above gc floor %d", l.firstSeq)}
			}
			return l.createSegment(1, 1)
		}
		floor := uint64(0)
		var tailEnd, liveBytes int64
		var scanErr error
		sawRecords := false
		for _, seq := range segs {
			end, newFloor, err := scanSegment(l.fs, l.segPath(seq), floor, nil)
			if err != nil {
				scanErr = err
				break
			}
			if end > segHdrSize {
				sawRecords = true
			}
			liveBytes += end - segHdrSize
			floor = newFloor
			tailEnd = end
		}
		if scanErr != nil {
			// A structurally broken header on the LAST segment is a
			// crash during segment creation: the header syncs before
			// any record is appended, so nothing durable lived there.
			// Discard it and retry. Anywhere else — including a sole
			// surviving post-GC segment — it is corruption.
			tail := segs[len(segs)-1]
			var cfe *store.CorruptFileError
			if errors.As(scanErr, &cfe) && cfe.Path == l.segPath(tail) && tail > l.firstSeq {
				if err := l.fs.Remove(l.segPath(tail)); err != nil {
					return errors.Join(scanErr, err)
				}
				continue
			}
			if errors.As(scanErr, &cfe) && cfe.Path == l.segPath(1) && l.firstSeq == 1 && len(segs) == 1 {
				// Crash while creating the very first segment of a new
				// log: no records ever existed. Recreate it.
				return l.createSegment(1, 1)
			}
			return scanErr
		}
		tail := segs[len(segs)-1]
		f, err := l.fs.OpenFile(l.segPath(tail), os.O_RDWR, 0o644)
		if err != nil {
			return fmt.Errorf("wal: open segment: %w", err)
		}
		// Drop the torn tail so new records append over garbage cleanly.
		if err := f.Truncate(tailEnd); err != nil {
			return errors.Join(fmt.Errorf("wal: truncate tail: %w", err), f.Close())
		}
		l.f = f
		l.seq = tail
		l.size = tailEnd
		l.nextLSN = floor + 1
		l.lastLSN = floor
		l.hasRecords = sawRecords
		l.ckptBytes = liveBytes // conservative: no checkpoint this life yet
		l.finishedLSN = floor   // everything on disk predates this process
		l.durableLSN = floor
		return nil
	}
}

// createSegment writes a fresh segment file with the given sequence
// number and base LSN and makes it the append target.
//
// Rolling preserves the durability invariant behind the scan floor:
// recovery trusts that every LSN below a segment's baseLSN is durable,
// so the outgoing segment is fsynced before the swap — otherwise a
// later sync() of the new segment could report coverage of LSNs whose
// bytes still sit only in the old segment's page cache, and a power
// failure would silently drop them while the floor hides the gap. The
// directory is fsynced too, so the new segment's entry cannot vanish
// out from under records already reported durable.
func (l *Log) createSegment(seq uint32, baseLSN uint64) error {
	if l.f != nil {
		if err := l.f.Sync(); err != nil {
			return fmt.Errorf("wal: sync outgoing segment: %w", err)
		}
		l.fmu.Lock()
		l.syncs++
		if l.lastLSN > l.durableLSN {
			l.durableLSN = l.lastLSN
			l.fcond.Broadcast() // wake tailing stream readers
		}
		l.fmu.Unlock()
	}
	f, err := l.fs.OpenFile(l.segPath(seq), os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("wal: create segment: %w", err)
	}
	hdr := make([]byte, segHdrSize)
	copy(hdr, walMagic)
	binary.LittleEndian.PutUint32(hdr[8:], seq)
	binary.LittleEndian.PutUint64(hdr[12:], baseLSN)
	binary.LittleEndian.PutUint32(hdr[20:], crc32.Checksum(hdr[:20], castagnoli))
	if _, err := f.WriteAt(hdr, 0); err != nil {
		return errors.Join(fmt.Errorf("wal: write segment header: %w", err), f.Close())
	}
	if err := f.Sync(); err != nil {
		return errors.Join(fmt.Errorf("wal: sync segment header: %w", err), f.Close())
	}
	if err := store.SyncDir(l.fs, l.dir); err != nil {
		return errors.Join(fmt.Errorf("wal: sync wal dir: %w", err), f.Close())
	}
	if l.f != nil {
		if err := l.f.Close(); err != nil {
			return errors.Join(err, f.Close())
		}
	}
	l.f = f
	l.seq = seq
	l.size = segHdrSize
	return nil
}

// append encodes and writes one record, returning its LSN. The bytes
// are in the OS page cache but NOT durable until a sync covers them.
func (l *Log) append(typ byte, txid uint64, payload []byte) (uint64, error) {
	return l.appendRec(typ, txid, payload, false)
}

// appendRec is append with the selfID option: a self-identified record
// stamps its own LSN into the txid field, which is how BeginAuto mints
// log-life-unique transaction IDs in a single append.
func (l *Log) appendRec(typ byte, txid uint64, payload []byte, selfID bool) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	if l.size >= l.segLimit {
		if err := l.createSegment(l.seq+1, l.nextLSN); err != nil {
			return 0, err
		}
	}
	lsn := l.nextLSN
	if selfID {
		txid = lsn
	}
	total := recHdrSize + len(payload)
	buf := make([]byte, total)
	binary.LittleEndian.PutUint32(buf[4:], uint32(total))
	binary.LittleEndian.PutUint64(buf[8:], lsn)
	binary.LittleEndian.PutUint64(buf[16:], txid)
	buf[24] = typ
	copy(buf[recHdrSize:], payload)
	binary.LittleEndian.PutUint32(buf[0:], crc32.Checksum(buf[4:], castagnoli))
	if _, err := l.f.WriteAt(buf, l.size); err != nil {
		return 0, fmt.Errorf("wal: append: %w", err)
	}
	l.size += int64(total)
	l.ckptBytes += int64(total)
	l.nextLSN = lsn + 1
	l.lastLSN = lsn
	l.hasRecords = true
	switch typ {
	case RecBegin:
		if _, ok := l.liveTxs[txid]; !ok {
			l.liveTxs[txid] = lsn
		}
	case RecCommit, RecAbort:
		l.finishedLSN = lsn
		delete(l.liveTxs, txid)
	}
	return lsn, nil
}

// Begin appends a begin record for txid.
func (l *Log) Begin(txid uint64) (uint64, error) {
	return l.append(RecBegin, txid, nil)
}

// BeginAuto appends a begin record whose transaction ID is the
// record's own LSN, allocating a log-life-unique transaction ID and
// opening the transaction in one append. LSNs never restart across
// Reset (the fresh segment header carries the old nextLSN as its
// base), so IDs minted here never collide with IDs from any earlier
// life of the same log — the property the MVCC layer's frozen-row
// convention depends on.
func (l *Log) BeginAuto() (uint64, error) {
	return l.appendRec(RecBegin, 0, nil, true)
}

// LogPage appends the after-image of one page. path is the data file's
// path; only its basename is recorded (the log and data files share a
// directory). payload must be exactly store.UsableSize bytes.
func (l *Log) LogPage(txid uint64, path string, id store.PageID, payload []byte) (uint64, error) {
	if len(payload) != store.UsableSize {
		return 0, fmt.Errorf("wal: page payload is %d bytes, want %d", len(payload), store.UsableSize)
	}
	name := filepath.Base(path)
	buf := make([]byte, 2+len(name)+4+len(payload))
	binary.LittleEndian.PutUint16(buf, uint16(len(name)))
	copy(buf[2:], name)
	binary.LittleEndian.PutUint32(buf[2+len(name):], uint32(id))
	copy(buf[2+len(name)+4:], payload)
	return l.append(RecPage, txid, buf)
}

// LogCatalog appends a whole-file after-image of the catalog, applied
// by recovery via atomic tmp+rename.
func (l *Log) LogCatalog(txid uint64, name string, contents []byte) (uint64, error) {
	buf := make([]byte, 2+len(name)+len(contents))
	binary.LittleEndian.PutUint16(buf, uint16(len(name)))
	copy(buf[2:], name)
	copy(buf[2+len(name):], contents)
	return l.append(RecCatalog, txid, buf)
}

// Abort appends an abort record for txid. It does not wait for
// durability: an abort that never becomes durable is indistinguishable
// from a crash mid-transaction, and both discard the loser.
func (l *Log) Abort(txid uint64) (uint64, error) {
	return l.append(RecAbort, txid, nil)
}

// Forget drops a transaction from the live set without a terminator
// record — the escape hatch for when the abort append itself fails
// (the log would otherwise gate every later page flush on a
// transaction that can never finish). The caller asserts the
// transaction's effects are already undone in the page caches; the
// on-log records remain and recovery treats them as a loser's, exactly
// as if the process had crashed before the abort.
func (l *Log) Forget(txid uint64) {
	l.mu.Lock()
	delete(l.liveTxs, txid)
	l.mu.Unlock()
}

// CommitNoWait appends the commit record and returns its LSN without
// waiting for durability. Pair with WaitDurable; Commit does both.
func (l *Log) CommitNoWait(txid uint64) (uint64, error) {
	return l.append(RecCommit, txid, nil)
}

// Commit appends the commit record and blocks until it is durable
// (group commit: the wait batches with concurrent committers).
func (l *Log) Commit(txid uint64) (uint64, error) {
	lsn, err := l.append(RecCommit, txid, nil)
	if err != nil {
		return 0, err
	}
	return lsn, l.WaitDurable(lsn)
}

// WaitDurable blocks until every record at or below lsn is durable,
// joining or leading a group-commit flush as needed.
func (l *Log) WaitDurable(lsn uint64) error {
	return l.waitDurable(lsn, l.flushEvery)
}

// EnsureDurable is WaitDurable without the leader's collection sleep:
// the caller (a page write-back honoring the WAL rule) must not be
// delayed to batch with commits.
func (l *Log) EnsureDurable(lsn uint64) error {
	return l.waitDurable(lsn, 0)
}

func (l *Log) waitDurable(lsn uint64, wait time.Duration) error {
	l.fmu.Lock()
	defer l.fmu.Unlock()
	for {
		if l.syncErr != nil {
			return l.syncErr
		}
		if l.durableLSN >= lsn {
			return nil
		}
		if !l.flushing {
			break
		}
		l.fcond.Wait()
	}
	// Become the leader.
	l.flushing = true
	l.fmu.Unlock()
	if wait > 0 {
		time.Sleep(wait) // collect followers
	}
	covered, err := l.sync()
	l.fmu.Lock()
	l.flushing = false
	if err != nil {
		l.syncErr = err
	} else if covered > l.durableLSN {
		l.durableLSN = covered
	}
	l.fcond.Broadcast()
	if l.syncErr != nil {
		return l.syncErr
	}
	if l.durableLSN >= lsn {
		return nil
	}
	// A segment roll raced our sync; loop will retry.
	return l.waitDurableLocked(lsn)
}

// waitDurableLocked re-enters the wait loop with fmu held (rare path).
func (l *Log) waitDurableLocked(lsn uint64) error {
	for l.syncErr == nil && l.durableLSN < lsn {
		if !l.flushing {
			l.flushing = true
			l.fmu.Unlock()
			covered, err := l.sync()
			l.fmu.Lock()
			l.flushing = false
			if err != nil {
				l.syncErr = err
			} else if covered > l.durableLSN {
				l.durableLSN = covered
			}
			l.fcond.Broadcast()
			continue
		}
		l.fcond.Wait()
	}
	return l.syncErr
}

// sync fsyncs the current segment and returns the highest LSN the sync
// covered. Holding mu prevents a concurrent segment roll from closing
// the file under us.
func (l *Log) sync() (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	covered := l.lastLSN
	if err := l.f.Sync(); err != nil {
		return 0, fmt.Errorf("wal: sync: %w", err)
	}
	l.fmu.Lock()
	l.syncs++
	l.fmu.Unlock()
	return covered, nil
}

// Sync forces everything appended so far to durable storage.
func (l *Log) Sync() error {
	l.mu.Lock()
	last := l.lastLSN
	l.mu.Unlock()
	if last == 0 {
		return nil
	}
	return l.EnsureDurable(last)
}

// Committed reports whether lsn belongs to a finished (committed or
// aborted) transaction — the pager's no-steal gate. With no
// transaction in flight, every record at or below the last
// commit/abort record belongs to a finished transaction. With writers
// in flight the check is conservative: only records strictly below
// every live transaction's begin LSN are provably finished (a live
// transaction's records all sit at or above its begin). Interleaved
// finished-transaction records above that floor stay pinned until the
// younger transactions finish — strictly a flush delay, never a
// correctness loss. Implements store.WALHook.
func (l *Log) Committed(lsn uint64) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.liveTxs) == 0 {
		return lsn <= l.finishedLSN
	}
	for _, begin := range l.liveTxs {
		if lsn >= begin {
			return false
		}
	}
	return true
}

// DurableLSN returns the highest LSN known durable.
func (l *Log) DurableLSN() uint64 {
	l.fmu.Lock()
	defer l.fmu.Unlock()
	return l.durableLSN
}

// LastLSN returns the LSN of the most recently appended record.
func (l *Log) LastLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lastLSN
}

// Syncs returns how many fsyncs the log has issued — the group-commit
// effectiveness metric.
func (l *Log) Syncs() uint64 {
	l.fmu.Lock()
	defer l.fmu.Unlock()
	return l.syncs
}

// SetFlushInterval sets how long a group-commit leader waits to collect
// followers before syncing. Zero means sync immediately per commit.
func (l *Log) SetFlushInterval(d time.Duration) {
	l.fmu.Lock()
	defer l.fmu.Unlock()
	if d < 0 {
		d = 0
	}
	l.flushEvery = d
}

// FlushInterval returns the current group-commit collection window.
func (l *Log) FlushInterval() time.Duration {
	l.fmu.Lock()
	defer l.fmu.Unlock()
	return l.flushEvery
}

// SetSegmentBytes sets the append size at which the log rolls to a new
// segment (the default is 16 MiB). Values below one page are clamped;
// tests shrink it to force multi-segment logs cheaply.
func (l *Log) SetSegmentBytes(n int64) {
	if n < store.PageSize {
		n = store.PageSize
	}
	l.mu.Lock()
	l.segLimit = n
	l.mu.Unlock()
}

// SinceCheckpoint returns the bytes appended since the last completed
// checkpoint (or since open) — the auto-checkpoint trigger input.
func (l *Log) SinceCheckpoint() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.ckptBytes
}

// RedoFloor returns the redo floor installed by the last checkpoint
// completed in this process life (0 until one completes).
func (l *Log) RedoFloor() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.redoFloor
}

// Segments reports the live segment run: the first segment's sequence
// number (above 1 after GC) and how many segments the run holds.
func (l *Log) Segments() (first uint32, count int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.firstSeq, int(l.seq - l.firstSeq + 1)
}

// StartsAboveOrigin reports whether the log's first live segment is no
// longer segment 1 — i.e. GC has unlinked history below the redo floor,
// so a scan may legally open mid-transaction.
func (l *Log) StartsAboveOrigin() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.firstSeq > 1
}

// CheckpointBegin appends a checkpoint-begin record (txid 0). It marks
// intent only: a begin with no matching end is an abandoned checkpoint
// and promises nothing.
func (l *Log) CheckpointBegin() (uint64, error) {
	return l.append(RecCheckpointBegin, 0, nil)
}

// CompleteCheckpoint appends the checkpoint-end record carrying the
// redo floor, makes it durable, and installs the floor for GC. The
// caller guarantees that every committed page image at or below floor
// is durably in the data files. Floors never regress and sit strictly
// below the end record's own LSN; violating either is a protocol bug
// and is refused before anything is appended.
func (l *Log) CompleteCheckpoint(beginLSN, floor uint64) (uint64, error) {
	l.mu.Lock()
	if floor < l.redoFloor {
		prev := l.redoFloor
		l.mu.Unlock()
		return 0, fmt.Errorf("wal: checkpoint floor %d regresses below %d", floor, prev)
	}
	if floor > l.lastLSN {
		last := l.lastLSN
		l.mu.Unlock()
		return 0, fmt.Errorf("wal: checkpoint floor %d above last lsn %d", floor, last)
	}
	// A live transaction pins the floor below its begin record: segment
	// GC must never unlink part of an in-flight transaction's record
	// trail (recovery identifies losers from it, and the log checker's
	// truncated-start heuristic assumes a scan opens mid-transaction
	// only for transactions older than every surviving begin). If the
	// clamp would drop below the published floor, the published floor
	// wins — it was itself below every then-live begin when published,
	// and begins only move forward.
	for _, begin := range l.liveTxs {
		if begin <= floor {
			floor = begin - 1
		}
	}
	if floor < l.redoFloor {
		floor = l.redoFloor
	}
	l.mu.Unlock()
	payload := make([]byte, 16)
	binary.LittleEndian.PutUint64(payload, beginLSN)
	binary.LittleEndian.PutUint64(payload[8:], floor)
	lsn, err := l.append(RecCheckpointEnd, 0, payload)
	if err != nil {
		return 0, err
	}
	// The end record must be durable before it can excuse anything: a
	// crash that loses it also loses the floor declaration, and the
	// next recovery replays from the previous checkpoint (or origin).
	if err := l.EnsureDurable(lsn); err != nil {
		return 0, err
	}
	l.mu.Lock()
	l.ckptLSN = lsn
	l.redoFloor = floor
	l.ckptBytes = 0
	l.mu.Unlock()
	return lsn, nil
}

// GC unlinks segments that lie wholly below the redo floor AND below
// every connected follower's retention pin: a segment is dead once the
// NEXT segment's baseLSN shows every record in it has LSN at or below
// the floor, and no follower still needs to stream it. The tail
// segment always survives. A configurable retention cap (see
// SetRetentionSegments) bounds how far pins may hold GC back: when the
// checkpoint floor alone would allow staying within the cap, pins
// retaining segments below the cap window are broken (their followers
// must full-resync) and GC proceeds. Before any unlink the gcfloor
// pointer is durably renamed into place, naming the new first segment,
// so a reopen after any crash inside GC finds the run (openTail sweeps
// stragglers below the pointer). Returns the number of segments
// removed.
func (l *Log) GC() (int, error) {
	l.fmu.Lock()
	if l.syncErr != nil {
		defer l.fmu.Unlock()
		return 0, l.syncErr
	}
	l.fmu.Unlock()
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	floor := l.redoFloor
	if floor == 0 || l.firstSeq >= l.seq {
		return 0, nil
	}
	// One pass over the live segment headers; keepSeg answers "which
	// segment holds the first record at or above lsn" from the cache.
	bases := make(map[uint32]uint64, l.seq-l.firstSeq+1)
	for s := l.firstSeq; s <= l.seq; s++ {
		base, err := l.readSegBase(s)
		if err != nil {
			return 0, err
		}
		bases[s] = base
	}
	keepSeg := func(lsn uint64) uint32 {
		keep := l.firstSeq
		for s := l.firstSeq + 1; s <= l.seq; s++ {
			if bases[s] > lsn {
				break
			}
			keep = s
		}
		return keep
	}
	// keepF = the highest segment whose baseLSN is at or below floor+1:
	// the segment holding the first record recovery must see.
	keepF := keepSeg(floor + 1)
	pinMin := func() uint32 {
		min := keepF
		for _, p := range l.pins {
			if p.broken {
				continue
			}
			if s := keepSeg(p.lsn + 1); s < min {
				min = s
			}
		}
		return min
	}
	keep := pinMin()
	if l.retainSegs > 0 && l.seq >= uint32(l.retainSegs) {
		// The cap allows at most retainSegs live segments. Break pins
		// only when the checkpoint floor itself fits inside the cap
		// window — segments recovery needs are never sacrificed.
		lowestAllowed := l.seq - uint32(l.retainSegs) + 1
		if keepF >= lowestAllowed && keep < lowestAllowed {
			for _, p := range l.pins {
				if !p.broken && keepSeg(p.lsn+1) < lowestAllowed {
					p.broken = true
				}
			}
			keep = pinMin()
		}
	}
	if keep == l.firstSeq {
		return 0, nil
	}
	if err := l.writeGCFloor(keep); err != nil {
		return 0, err
	}
	removed := 0
	// Lowest first: survivors of a crash mid-loop stay contiguous up to
	// keep-1, which is exactly what openTail's downward sweep expects.
	for s := l.firstSeq; s < keep; s++ {
		if err := l.fs.Remove(l.segPath(s)); err != nil {
			return removed, fmt.Errorf("wal: gc remove segment %d: %w", s, err)
		}
		removed++
	}
	l.firstSeq = keep
	if err := store.SyncDir(l.fs, l.dir); err != nil {
		return removed, fmt.Errorf("wal: gc dir sync: %w", err)
	}
	return removed, nil
}

// readSegBase reads and verifies one segment header, returning its
// baseLSN.
func (l *Log) readSegBase(seq uint32) (uint64, error) {
	f, err := l.fs.OpenFile(l.segPath(seq), os.O_RDONLY, 0)
	if err != nil {
		return 0, fmt.Errorf("wal: open segment %d header: %w", seq, err)
	}
	defer f.Close()
	hdr := make([]byte, segHdrSize)
	if _, err := f.ReadAt(hdr, 0); err != nil {
		return 0, fmt.Errorf("wal: read segment %d header: %w", seq, err)
	}
	if string(hdr[:8]) != walMagic ||
		crc32.Checksum(hdr[:20], castagnoli) != binary.LittleEndian.Uint32(hdr[20:]) {
		return 0, &store.CorruptFileError{Path: l.segPath(seq), Reason: "wal segment header fails verification"}
	}
	return binary.LittleEndian.Uint64(hdr[12:]), nil
}

// HasRecords reports whether the log holds any records (i.e. recovery
// has work to do or Reset is worthwhile).
func (l *Log) HasRecords() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.hasRecords
}

// Reset discards all log records after a checkpoint: the caller has
// flushed every data page and the catalog, so the history is no longer
// needed. LSNs keep counting from where they were (pageLSNs on disk
// must stay ≤ any future durable LSN — the fresh header's baseLSN
// records the continuation point).
//
// Crash safety: the fresh segment-1 header is built in a temp file and
// renamed into place, so segment 1 is atomically either the old log
// (Reset simply didn't happen) or the empty new one — and the moment it
// exists, reopen discovery prefers it over any gcfloor pointer. Higher
// segments are removed afterwards, highest first; survivors of a crash
// either stay contiguous with segment 1 (their stale records are
// rejected by the scan floor) or sit beyond a gap, where they are never
// scanned and are overwritten as the log grows back. The stale gcfloor
// pointer is removed last; left behind by a crash it is simply ignored.
func (l *Log) Reset() error {
	l.fmu.Lock()
	if l.syncErr != nil {
		defer l.fmu.Unlock()
		return l.syncErr
	}
	l.fmu.Unlock()
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	segs := l.segments()
	if err := l.f.Close(); err != nil {
		return err
	}
	l.f = nil
	// The db layer resets only after rolling back every open
	// transaction, so liveTxs is empty here in correct use; clear it
	// anyway so a protocol slip cannot pin Committed forever.
	l.liveTxs = make(map[uint64]uint64)
	hdr := make([]byte, segHdrSize)
	copy(hdr, walMagic)
	binary.LittleEndian.PutUint32(hdr[8:], 1)
	binary.LittleEndian.PutUint64(hdr[12:], l.nextLSN)
	binary.LittleEndian.PutUint32(hdr[20:], crc32.Checksum(hdr[:20], castagnoli))
	tmp := l.segPath(1) + ".tmp"
	tf, err := l.fs.OpenFile(tmp, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("wal: reset create: %w", err)
	}
	if _, err := tf.WriteAt(hdr, 0); err != nil {
		return errors.Join(fmt.Errorf("wal: reset write header: %w", err), tf.Close())
	}
	if err := tf.Sync(); err != nil {
		return errors.Join(fmt.Errorf("wal: reset sync header: %w", err), tf.Close())
	}
	if err := tf.Close(); err != nil {
		return err
	}
	if err := l.fs.Rename(tmp, l.segPath(1)); err != nil {
		return fmt.Errorf("wal: reset rename: %w", err)
	}
	if err := store.SyncDir(l.fs, l.dir); err != nil {
		return fmt.Errorf("wal: reset sync dir: %w", err)
	}
	// Highest first, so the contiguous probe in segments() never
	// orphans a survivor behind a gap.
	for i := len(segs) - 1; i >= 0; i-- {
		if segs[i] == 1 {
			continue
		}
		if err := l.fs.Remove(l.segPath(segs[i])); err != nil {
			return fmt.Errorf("wal: reset remove: %w", err)
		}
	}
	// The gcfloor pointer (if a GC wrote one) now lies about the run's
	// start; segment 1 exists again, which overrides it on reopen, so
	// removing it is tidiness, not correctness.
	if err := l.fs.Remove(l.gcFloorPath()); err != nil && !errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("wal: reset remove gc floor: %w", err)
	}
	f, err := l.fs.OpenFile(l.segPath(1), os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("wal: reset reopen: %w", err)
	}
	l.f = f
	l.seq = 1
	l.firstSeq = 1
	l.size = segHdrSize
	l.lastLSN = l.nextLSN - 1
	l.hasRecords = false
	l.redoFloor = 0
	l.ckptLSN = 0
	l.ckptBytes = 0
	l.fmu.Lock()
	l.durableLSN = l.nextLSN - 1
	l.fcond.Broadcast() // wake tailing stream readers
	l.fmu.Unlock()
	return nil
}

// Close syncs and closes the log. Safe to call twice.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	last := l.lastLSN
	l.mu.Unlock()
	var syncErr error
	if last != 0 {
		syncErr = l.EnsureDurable(last)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return syncErr
	}
	l.closed = true
	if l.f != nil {
		if err := l.f.Close(); err != nil && syncErr == nil {
			syncErr = err
		}
		l.f = nil
	}
	l.fmu.Lock()
	if l.syncErr == nil {
		l.syncErr = ErrClosed
	}
	l.fcond.Broadcast()
	l.fmu.Unlock()
	return syncErr
}

// Records scans the whole log and calls fn for every valid record in
// LSN order, stopping at the torn tail. fn must not retain Payload.
// A structurally broken tail segment (crash during creation, before
// its header synced — so provably record-free) is skipped.
func (l *Log) Records(fn func(Record) error) error {
	l.mu.Lock()
	segs := l.segments()
	dir, fs := l.dir, l.fs
	l.mu.Unlock()
	floor := uint64(0)
	for i, seq := range segs {
		path := filepath.Join(dir, fmt.Sprintf("%06d.wal", seq))
		_, newFloor, err := scanSegment(fs, path, floor, fn)
		if err != nil {
			var cfe *store.CorruptFileError
			if errors.As(err, &cfe) && i == len(segs)-1 && seq > segs[0] {
				return nil
			}
			return err
		}
		floor = newFloor
	}
	return nil
}

// scanSegment reads one segment file, verifying the header and every
// record CRC, and calls fn (if non-nil) per record. floor is the
// highest LSN accounted for by earlier segments; the segment header's
// baseLSN raises it further (baseLSN-1 is by construction the last LSN
// of the log's previous life, so anything at or below it is stale).
// Records must keep LSNs strictly above the floor and strictly
// increasing, or the scan treats the rest as torn tail. It returns the
// byte offset just past the last valid record and the new floor. A
// structurally broken header is an error; a torn record is not.
func scanSegment(fs store.VFS, path string, floor uint64, fn func(Record) error) (int64, uint64, error) {
	data, err := store.ReadFile(fs, path)
	if err != nil {
		return 0, floor, fmt.Errorf("wal: read segment: %w", err)
	}
	if len(data) < segHdrSize {
		// Segment created but header never fully written: a crash
		// during createSegment. Nothing valid inside.
		return 0, floor, &store.CorruptFileError{Path: path, Reason: "wal segment shorter than header"}
	}
	if string(data[:8]) != walMagic {
		return 0, floor, &store.CorruptFileError{Path: path, Reason: "bad wal magic"}
	}
	if crc32.Checksum(data[:20], castagnoli) != binary.LittleEndian.Uint32(data[20:24]) {
		return 0, floor, &store.CorruptFileError{Path: path, Reason: "wal segment header checksum mismatch"}
	}
	if base := binary.LittleEndian.Uint64(data[12:20]); base > 0 && base-1 > floor {
		floor = base - 1
	}
	off := int64(segHdrSize)
	for {
		if int64(len(data))-off < recHdrSize {
			return off, floor, nil // torn tail
		}
		rec := data[off:]
		total := binary.LittleEndian.Uint32(rec[4:])
		if total < recHdrSize || total > MaxRecordSize || int64(total) > int64(len(data))-off {
			return off, floor, nil // torn tail
		}
		if crc32.Checksum(rec[4:total], castagnoli) != binary.LittleEndian.Uint32(rec[0:]) {
			return off, floor, nil // torn tail
		}
		lsn := binary.LittleEndian.Uint64(rec[8:])
		if lsn <= floor {
			// Stale data from a pre-Reset life of this file.
			return off, floor, nil
		}
		if fn != nil {
			r, perr := decodeRecord(rec[:total])
			if perr != nil {
				return off, floor, nil // malformed payload: treat as tail
			}
			if err := fn(r); err != nil {
				return off, floor, err
			}
		}
		floor = lsn
		off += int64(total)
	}
}

// decodeRecord parses the payload of a CRC-valid record.
func decodeRecord(rec []byte) (Record, error) {
	r := Record{
		LSN:  binary.LittleEndian.Uint64(rec[8:]),
		TxID: binary.LittleEndian.Uint64(rec[16:]),
		Type: rec[24],
	}
	payload := rec[recHdrSize:]
	switch r.Type {
	case RecBegin, RecCommit, RecAbort, RecCheckpointBegin:
		return r, nil
	case RecCheckpointEnd:
		if len(payload) < 16 {
			return r, errors.New("wal: short checkpoint record")
		}
		r.CkptBegin = binary.LittleEndian.Uint64(payload)
		r.CkptFloor = binary.LittleEndian.Uint64(payload[8:])
		return r, nil
	case RecPage:
		if len(payload) < 2 {
			return r, errors.New("wal: short page record")
		}
		n := int(binary.LittleEndian.Uint16(payload))
		if len(payload) < 2+n+4 {
			return r, errors.New("wal: short page record")
		}
		r.File = string(payload[2 : 2+n])
		r.Page = store.PageID(binary.LittleEndian.Uint32(payload[2+n:]))
		r.Payload = payload[2+n+4:]
		if len(r.Payload) != store.UsableSize {
			return r, errors.New("wal: page record payload size mismatch")
		}
		return r, nil
	case RecCatalog:
		if len(payload) < 2 {
			return r, errors.New("wal: short catalog record")
		}
		n := int(binary.LittleEndian.Uint16(payload))
		if len(payload) < 2+n {
			return r, errors.New("wal: short catalog record")
		}
		r.File = string(payload[2 : 2+n])
		r.Payload = payload[2+n:]
		return r, nil
	default:
		return r, fmt.Errorf("wal: unknown record type %d", r.Type)
	}
}
