package wal

import (
	"fmt"
)

// Check verifies the log's own structural invariants and returns one
// human-readable issue per problem found (empty means clean):
//
//   - every segment header parses and its CRC matches;
//   - every record up to the torn tail passes its CRC;
//   - LSNs are strictly monotonic across the whole log;
//   - transaction records are well-formed (a commit or abort names a
//     transaction that began, and no transaction finishes twice);
//   - page/catalog record payloads decode and carry safe file names.
//
// A torn tail (trailing bytes after the last valid record) is normal
// after a crash and is reported as informational only when strict is
// set. Check never modifies the log.
func Check(l *Log, strict bool) []string {
	var issues []string
	begun := make(map[uint64]bool)
	finished := make(map[uint64]bool)
	prevLSN := uint64(0)
	records := 0
	err := l.Records(func(r Record) error {
		records++
		if r.LSN <= prevLSN {
			issues = append(issues, fmt.Sprintf("wal: record LSN %d not above predecessor %d", r.LSN, prevLSN))
		}
		prevLSN = r.LSN
		switch r.Type {
		case RecBegin:
			if begun[r.TxID] && !finished[r.TxID] {
				issues = append(issues, fmt.Sprintf("wal: txn %d begun twice without finishing (lsn %d)", r.TxID, r.LSN))
			}
			begun[r.TxID] = true
			delete(finished, r.TxID)
		case RecCommit, RecAbort:
			if !begun[r.TxID] {
				issues = append(issues, fmt.Sprintf("wal: txn %d finishes at lsn %d without a begin record", r.TxID, r.LSN))
			}
			if finished[r.TxID] {
				issues = append(issues, fmt.Sprintf("wal: txn %d finishes twice (lsn %d)", r.TxID, r.LSN))
			}
			finished[r.TxID] = true
		case RecPage, RecCatalog:
			if !begun[r.TxID] || finished[r.TxID] {
				issues = append(issues, fmt.Sprintf("wal: txn %d writes at lsn %d outside begin..finish", r.TxID, r.LSN))
			}
			if _, err := safeName(r.File); err != nil {
				issues = append(issues, fmt.Sprintf("wal: lsn %d: %v", r.LSN, err))
			}
		default:
			issues = append(issues, fmt.Sprintf("wal: lsn %d has unknown record type %d", r.LSN, r.Type))
		}
		return nil
	})
	if err != nil {
		issues = append(issues, fmt.Sprintf("wal: scan failed: %v", err))
	}
	if strict {
		for txid := range begun {
			if !finished[txid] {
				issues = append(issues, fmt.Sprintf("wal: txn %d has no commit or abort record (in-flight at crash)", txid))
			}
		}
	}
	return issues
}
