package wal

import (
	"fmt"
)

// CheckDir verifies the log directory's side files against the live
// segment chain: the gcfloor pointer must never name a segment above
// the first live one (a pointer past the chain start would make Open
// fail or silently skip live records), and the atomic-publish temp
// files (gcfloor.tmp from GC, 000001.wal.tmp from Reset) must not
// survive — one left behind is crash debris from an interrupted
// publish and is reported so operators can remove it.
func CheckDir(l *Log) []string {
	var issues []string
	first, _ := l.Segments()
	ptr, ok, err := l.readGCFloor()
	if err != nil {
		issues = append(issues, fmt.Sprintf("wal: gc floor pointer: %v", err))
	} else if ok && ptr > first {
		issues = append(issues, fmt.Sprintf(
			"wal: gcfloor pointer names segment %d but the first live segment is %d (pointer beyond the chain start)", ptr, first))
	}
	for _, tmp := range []string{l.gcFloorPath() + ".tmp", l.segPath(1) + ".tmp"} {
		if _, err := l.fs.Stat(tmp); err == nil {
			issues = append(issues, fmt.Sprintf("wal: orphaned temp file %s (crash debris from an interrupted atomic publish)", tmp))
		}
	}
	// Segments below the pointer that survived a crash mid-GC are
	// ignored by Open (the pointer carries the chain start) but leak
	// disk; report them so they can be reclaimed.
	for seq := first; seq > 1; seq-- {
		if _, err := l.fs.Stat(l.segPath(seq - 1)); err != nil {
			break
		}
		issues = append(issues, fmt.Sprintf("wal: segment %06d.wal below the gc floor pointer survives (crash mid-GC debris)", seq-1))
	}
	return issues
}

// Check verifies the log's own structural invariants and returns one
// human-readable issue per problem found (empty means clean):
//
//   - every segment header parses and its CRC matches;
//   - every record up to the torn tail passes its CRC;
//   - LSNs are strictly monotonic across the whole log;
//   - transaction records are well-formed (a commit or abort names a
//     transaction that began, and no transaction finishes twice);
//   - page/catalog record payloads decode and carry safe file names;
//   - checkpoint records are well-formed: every end pairs with a begin
//     the scan saw, its redo floor sits strictly below the end record's
//     own LSN (hence at or below the durable LSN), and floors never
//     regress across checkpoints.
//
// A log whose first segment sequence is above 1 (segments below the
// redo floor garbage-collected) is normal and scans identically: the
// surviving first segment's baseLSN carries the scan floor.
//
// A torn tail (trailing bytes after the last valid record) is normal
// after a crash and is reported as informational only when strict is
// set, as is a checkpoint begun but never completed (abandoned by a
// crash or a failed flush; it promises nothing). Check never modifies
// the log.
func Check(l *Log, strict bool) []string {
	var issues []string
	begun := make(map[uint64]bool)
	finished := make(map[uint64]bool)
	ckptBegun := make(map[uint64]bool)
	openCkpt := uint64(0) // LSN of the newest begin without an end
	lastFloor := uint64(0)
	prevLSN := uint64(0)
	records := 0
	// After segment GC the log can start mid-transaction: the floor may
	// fall inside a transaction whose begin record sat in an unlinked
	// segment while its tail survives. Write transactions serialize, so
	// only records before the first begin the scan sees can legally
	// continue such a transaction.
	truncatedStart := l.StartsAboveOrigin()
	sawBegin := false
	err := l.Records(func(r Record) error {
		records++
		if r.LSN <= prevLSN {
			issues = append(issues, fmt.Sprintf("wal: record LSN %d not above predecessor %d", r.LSN, prevLSN))
		}
		prevLSN = r.LSN
		if truncatedStart && !sawBegin && !begun[r.TxID] {
			switch r.Type {
			case RecCommit, RecAbort, RecPage, RecCatalog:
				begun[r.TxID] = true // continuation from below the GC floor
			}
		}
		switch r.Type {
		case RecBegin:
			sawBegin = true
			if begun[r.TxID] && !finished[r.TxID] {
				issues = append(issues, fmt.Sprintf("wal: txn %d begun twice without finishing (lsn %d)", r.TxID, r.LSN))
			}
			begun[r.TxID] = true
			delete(finished, r.TxID)
		case RecCommit, RecAbort:
			if !begun[r.TxID] {
				issues = append(issues, fmt.Sprintf("wal: txn %d finishes at lsn %d without a begin record", r.TxID, r.LSN))
			}
			if finished[r.TxID] {
				issues = append(issues, fmt.Sprintf("wal: txn %d finishes twice (lsn %d)", r.TxID, r.LSN))
			}
			finished[r.TxID] = true
		case RecPage, RecCatalog:
			if !begun[r.TxID] || finished[r.TxID] {
				issues = append(issues, fmt.Sprintf("wal: txn %d writes at lsn %d outside begin..finish", r.TxID, r.LSN))
			}
			if _, err := safeName(r.File); err != nil {
				issues = append(issues, fmt.Sprintf("wal: lsn %d: %v", r.LSN, err))
			}
		case RecCheckpointBegin:
			ckptBegun[r.LSN] = true
			openCkpt = r.LSN
		case RecCheckpointEnd:
			if !ckptBegun[r.CkptBegin] {
				issues = append(issues, fmt.Sprintf("wal: checkpoint end at lsn %d names begin lsn %d the log does not hold", r.LSN, r.CkptBegin))
			}
			if r.CkptFloor >= r.LSN {
				issues = append(issues, fmt.Sprintf("wal: checkpoint end at lsn %d carries floor %d at or above itself", r.LSN, r.CkptFloor))
			}
			if r.CkptFloor < lastFloor {
				issues = append(issues, fmt.Sprintf("wal: checkpoint floor regresses from %d to %d at lsn %d", lastFloor, r.CkptFloor, r.LSN))
			}
			lastFloor = r.CkptFloor
			if openCkpt == r.CkptBegin {
				openCkpt = 0
			}
		default:
			issues = append(issues, fmt.Sprintf("wal: lsn %d has unknown record type %d", r.LSN, r.Type))
		}
		return nil
	})
	if err != nil {
		issues = append(issues, fmt.Sprintf("wal: scan failed: %v", err))
	}
	if strict {
		for txid := range begun {
			if !finished[txid] {
				issues = append(issues, fmt.Sprintf("wal: txn %d has no commit or abort record (in-flight at crash)", txid))
			}
		}
		if openCkpt != 0 {
			issues = append(issues, fmt.Sprintf("wal: checkpoint begun at lsn %d never completed (abandoned at crash)", openCkpt))
		}
	}
	return issues
}
