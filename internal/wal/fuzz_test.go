package wal

import (
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"

	"lexequal/internal/store"
)

// buildSeedSegment assembles one valid segment holding a committed
// page transaction and an in-flight loser, for mutation by the fuzzer.
func buildSeedSegment() []byte {
	hdr := make([]byte, segHdrSize)
	copy(hdr, walMagic)
	binary.LittleEndian.PutUint32(hdr[8:], 1)
	binary.LittleEndian.PutUint64(hdr[12:], 1)
	binary.LittleEndian.PutUint32(hdr[20:], crc32.Checksum(hdr[:20], castagnoli))
	seg := hdr
	lsn := uint64(0)
	add := func(typ byte, txid uint64, payload []byte) {
		lsn++
		total := recHdrSize + len(payload)
		buf := make([]byte, total)
		binary.LittleEndian.PutUint32(buf[4:], uint32(total))
		binary.LittleEndian.PutUint64(buf[8:], lsn)
		binary.LittleEndian.PutUint64(buf[16:], txid)
		buf[24] = typ
		copy(buf[recHdrSize:], payload)
		binary.LittleEndian.PutUint32(buf, crc32.Checksum(buf[4:], castagnoli))
		seg = append(seg, buf...)
	}
	pagePayload := func(name string, id uint32, fill byte) []byte {
		p := make([]byte, 2+len(name)+4+store.UsableSize)
		binary.LittleEndian.PutUint16(p, uint16(len(name)))
		copy(p[2:], name)
		binary.LittleEndian.PutUint32(p[2+len(name):], id)
		for i := 2 + len(name) + 4; i < len(p); i++ {
			p[i] = fill
		}
		return p
	}
	add(RecBegin, 1, nil)
	add(RecPage, 1, pagePayload("t.heap", 0, 0x5A))
	catalog := []byte(`{"tables":{}}`)
	cat := make([]byte, 2+len("catalog.json")+len(catalog))
	binary.LittleEndian.PutUint16(cat, uint16(len("catalog.json")))
	copy(cat[2:], "catalog.json")
	copy(cat[2+len("catalog.json"):], catalog)
	add(RecCatalog, 1, cat)
	add(RecCommit, 1, nil)
	add(RecBegin, 2, nil)
	add(RecPage, 2, pagePayload("t.heap", 1, 0xA5))
	return seg
}

// FuzzWALReplay feeds arbitrary bytes to the engine as segment 1 of a
// write-ahead log and runs the full open + check + redo path over it.
// Whatever the bytes are — truncated, bit-flipped, adversarial — the
// engine must neither panic nor write outside the database directory.
func FuzzWALReplay(f *testing.F) {
	seed := buildSeedSegment()
	f.Add(seed)
	f.Add(seed[:len(seed)-7])           // truncated mid-record
	f.Add(seed[:segHdrSize])            // header only
	f.Add(seed[:segHdrSize-3])          // truncated header
	f.Add([]byte{})                     // empty file
	f.Add([]byte("LXQLWAL\x01garbage")) // magic then junk
	flipped := append([]byte(nil), seed...)
	flipped[segHdrSize+recHdrSize/2] ^= 0x10 // bit flip inside record 1
	f.Add(flipped)
	flippedHdr := append([]byte(nil), seed...)
	flippedHdr[10] ^= 0x01 // bit flip inside the header
	f.Add(flippedHdr)

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		wdir := filepath.Join(dir, "wal")
		if err := os.MkdirAll(wdir, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(wdir, "000001.wal"), data, 0o644); err != nil {
			t.Fatal(err)
		}
		l, err := Open(dir, nil)
		if err != nil {
			return // structural corruption is a legitimate refusal
		}
		defer l.Close()
		Check(l, true)
		if _, err := Redo(l, dir, nil); err != nil {
			return
		}
		// Whatever was replayed must have landed inside dir and left
		// page-aligned, verifiable pages.
		ents, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range ents {
			if e.IsDir() || e.Name() == "catalog.json" {
				continue
			}
			st, err := os.Stat(filepath.Join(dir, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			if st.Size()%store.PageSize != 0 {
				t.Fatalf("%s: size %d not page aligned after redo", e.Name(), st.Size())
			}
		}
	})
}
