package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync/atomic"

	"lexequal/internal/store"
)

// This file is the log's replication seam (DESIGN.md §16). A primary
// exposes its durable record run as a byte stream: StreamReader walks
// the segment files record by record, never emitting past the durable
// LSN, and tails live appends through the group-commit notification
// path (WaitDurableAbove). A follower feeds the raw records it
// receives back in through AppendReplica, which preserves the
// primary's LSNs so the whole recovery/checkpoint/no-steal machinery
// works unchanged on the replica. Retention pins let connected
// followers hold segment GC back until they have acked what they need,
// bounded by a configurable cap that breaks too-slow pins instead of
// letting the log grow without limit.

// ErrStreamStopped is returned by a stream reader whose Stop was
// called (typically because the follower connection went away).
var ErrStreamStopped = errors.New("wal: stream stopped")

// ErrResyncRequired marks a follower that can no longer be served from
// the live log: the records it needs were garbage-collected (its
// retention pin broke, or its position predates the first live
// segment). The only way forward is a fresh seed of the data
// directory.
var ErrResyncRequired = errors.New("wal: resync required")

// ParseRawHeader validates the fixed header and CRC of one raw encoded
// record and returns its LSN, transaction ID, type and total encoded
// length. raw must hold the complete record.
func ParseRawHeader(raw []byte) (lsn, txid uint64, typ byte, total int, err error) {
	if len(raw) < recHdrSize {
		return 0, 0, 0, 0, fmt.Errorf("wal: raw record of %d bytes is shorter than the header", len(raw))
	}
	n := binary.LittleEndian.Uint32(raw[4:])
	if n < recHdrSize || n > MaxRecordSize || int(n) > len(raw) {
		return 0, 0, 0, 0, fmt.Errorf("wal: raw record claims impossible length %d", n)
	}
	if crc32.Checksum(raw[4:n], castagnoli) != binary.LittleEndian.Uint32(raw[0:]) {
		return 0, 0, 0, 0, errors.New("wal: raw record checksum mismatch")
	}
	return binary.LittleEndian.Uint64(raw[8:]), binary.LittleEndian.Uint64(raw[16:]), raw[24], int(n), nil
}

// DecodeRaw parses one complete raw record (header-validated or not)
// into a Record. The returned Record's Payload aliases raw.
func DecodeRaw(raw []byte) (Record, error) {
	_, _, _, total, err := ParseRawHeader(raw)
	if err != nil {
		return Record{}, err
	}
	return decodeRecord(raw[:total])
}

// --- durability notification ---

// WaitDurableAbove blocks until some record above lsn is durable and
// returns the new durable LSN. It does not itself trigger a sync — the
// group-commit leaders (and segment rolls) advance durability; this is
// the tailing side. stop, when non-nil, aborts the wait with
// ErrStreamStopped once set (wake it with WakeDurableWaiters).
func (l *Log) WaitDurableAbove(lsn uint64, stop *atomic.Bool) (uint64, error) {
	l.fmu.Lock()
	defer l.fmu.Unlock()
	for {
		if stop != nil && stop.Load() {
			return 0, ErrStreamStopped
		}
		if l.durableLSN > lsn {
			return l.durableLSN, nil
		}
		if l.syncErr != nil {
			return 0, l.syncErr
		}
		l.fcond.Wait()
	}
}

// WakeDurableWaiters broadcasts to everything blocked on durability —
// used to deliver a Stop to a tailing stream reader promptly.
func (l *Log) WakeDurableWaiters() {
	l.fmu.Lock()
	l.fcond.Broadcast()
	l.fmu.Unlock()
}

// FirstLiveLSN returns the base LSN of the first live segment — the
// LSN of the oldest record the log can still stream. A follower whose
// applied LSN is below FirstLiveLSN-1 cannot resume and must be
// re-seeded.
func (l *Log) FirstLiveLSN() (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	return l.readSegBase(l.firstSeq)
}

// --- retention pins ---

// retentionPin records the acked LSN of one connected (or recently
// connected) follower. GC keeps every segment holding records above
// the pin; a pin the retention cap breaks stays registered but marked,
// so the follower's streamer reports a deterministic resync error.
type retentionPin struct {
	lsn    uint64
	broken bool
}

// PinRetention registers (or re-registers, resetting a broken state)
// a retention pin holding segment GC at lsn: every record above lsn
// stays streamable. Call before the first stream read so GC cannot
// race the handshake.
func (l *Log) PinRetention(id string, lsn uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.pins == nil {
		l.pins = make(map[string]*retentionPin)
	}
	l.pins[id] = &retentionPin{lsn: lsn}
}

// AdvanceRetention moves a pin forward to the follower's newly acked
// LSN. Pins never move backward; advancing an unknown or broken pin is
// a no-op.
func (l *Log) AdvanceRetention(id string, lsn uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if p, ok := l.pins[id]; ok && !p.broken && lsn > p.lsn {
		p.lsn = lsn
	}
}

// ReleaseRetention drops a pin (the follower disconnected and owes the
// log nothing, or was handed a resync error).
func (l *Log) ReleaseRetention(id string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	delete(l.pins, id)
}

// RetentionBroken reports whether the named pin was broken by the
// retention cap — the follower behind it must be re-seeded.
func (l *Log) RetentionBroken(id string) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	p, ok := l.pins[id]
	return ok && p.broken
}

// SetRetentionSegments caps how many live segments follower pins may
// retain. Zero (the default) means unlimited: a connected follower can
// hold GC back indefinitely. When the cap would be exceeded, the
// offending pins are broken — their followers get ErrResyncRequired —
// and GC proceeds. Segments the checkpoint redo floor itself still
// needs are never GC'd regardless of the cap.
func (l *Log) SetRetentionSegments(n int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if n < 0 {
		n = 0
	}
	l.retainSegs = n
}

// RetentionPins returns a snapshot of the live pins: id → acked LSN,
// with broken pins reported at LSN 0. For observability (STATUS).
func (l *Log) RetentionPins() map[string]uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make(map[string]uint64, len(l.pins))
	for id, p := range l.pins {
		if p.broken {
			out[id] = 0
			continue
		}
		out[id] = p.lsn
	}
	return out
}

// --- replica append ---

// AppendReplica appends one raw record received from a primary,
// preserving its LSN and transaction bookkeeping. Records must arrive
// in exactly the primary's order: the record's LSN must be the log's
// next LSN, or the stream has diverged and the append is refused (the
// primary streams every record verbatim, checkpoint records included —
// they keep the LSN run contiguous and are ignored by replica replay;
// the replica's own redo floor lives in its state file). Like append,
// the bytes are not durable until a sync covers them.
func (l *Log) AppendReplica(raw []byte) (Record, error) {
	lsn, txid, typ, total, err := ParseRawHeader(raw)
	if err != nil {
		return Record{}, fmt.Errorf("wal: replica append: %w", err)
	}
	rec, err := decodeRecord(raw[:total])
	if err != nil {
		return Record{}, fmt.Errorf("wal: replica append: %w", err)
	}
	if rec.File != "" {
		if _, err := safeName(rec.File); err != nil {
			return Record{}, fmt.Errorf("wal: replica append: %w", err)
		}
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return Record{}, ErrClosed
	}
	if lsn != l.nextLSN {
		return Record{}, fmt.Errorf("wal: replica append: record lsn %d, want %d (stream diverged)", lsn, l.nextLSN)
	}
	if l.size >= l.segLimit {
		if err := l.createSegment(l.seq+1, l.nextLSN); err != nil {
			return Record{}, err
		}
	}
	if _, err := l.f.WriteAt(raw[:total], l.size); err != nil {
		return Record{}, fmt.Errorf("wal: replica append: %w", err)
	}
	l.size += int64(total)
	l.ckptBytes += int64(total)
	l.nextLSN = lsn + 1
	l.lastLSN = lsn
	l.hasRecords = true
	switch typ {
	case RecBegin:
		if _, ok := l.liveTxs[txid]; !ok {
			l.liveTxs[txid] = lsn
		}
	case RecCommit, RecAbort:
		l.finishedLSN = lsn
		delete(l.liveTxs, txid)
	}
	return rec, nil
}

// SeedLiveTxs installs the in-flight transaction set a replica replay
// reconstructed (transactions with records but no terminator in the
// local log). Their begin LSNs drive the no-steal gate and pin the
// replica's checkpoint floor exactly as live writers do on a primary.
func (l *Log) SeedLiveTxs(m map[uint64]uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for txid, begin := range m {
		if _, ok := l.liveTxs[txid]; !ok {
			l.liveTxs[txid] = begin
		}
	}
}

// DeclareFloor installs a redo floor without writing a checkpoint
// record — the replica's checkpoint path. The replica cannot append
// its own checkpoint records (its LSN space belongs to the primary),
// so the floor lives in the replica state file and is re-installed
// here on restart. The same clamps as CompleteCheckpoint apply: the
// floor never regresses, never exceeds the last LSN, and sits below
// every live transaction's begin record. Returns the clamped floor.
func (l *Log) DeclareFloor(floor uint64) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	if floor > l.lastLSN {
		floor = l.lastLSN
	}
	for _, begin := range l.liveTxs {
		if begin <= floor && begin > 0 {
			floor = begin - 1
		}
	}
	if floor < l.redoFloor {
		floor = l.redoFloor
	}
	l.redoFloor = floor
	l.ckptBytes = 0
	return floor, nil
}

// --- stream reader ---

// StreamReader walks the log's records from a starting LSN, in order,
// never emitting a record that is not yet durable (a follower must
// never apply bytes the primary could still lose). At the durable tail
// it blocks on the group-commit notification path until more records
// become durable. Safe for use by one goroutine; Stop may be called
// from another.
type StreamReader struct {
	l    *Log
	f    store.File
	seq  uint32
	off  int64
	want uint64 // next LSN to emit
	stop atomic.Bool
}

// NewStreamReader opens a reader positioned at fromLSN. The caller
// must ensure fromLSN is still live (FirstLiveLSN ≤ fromLSN), normally
// by registering a retention pin at fromLSN-1 first; a reader below
// the first live segment reports ErrResyncRequired.
func (l *Log) NewStreamReader(fromLSN uint64) (*StreamReader, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil, ErrClosed
	}
	if fromLSN == 0 {
		fromLSN = 1
	}
	// Find the segment whose base is the greatest at or below fromLSN.
	seg := uint32(0)
	for s := l.firstSeq; s <= l.seq; s++ {
		base, err := l.readSegBase(s)
		if err != nil {
			return nil, err
		}
		if base > fromLSN {
			break
		}
		seg = s
	}
	if seg == 0 {
		return nil, fmt.Errorf("%w: lsn %d predates first live segment", ErrResyncRequired, fromLSN)
	}
	f, err := l.fs.OpenFile(l.segPath(seg), os.O_RDONLY, 0)
	if err != nil {
		return nil, fmt.Errorf("wal: stream open segment %d: %w", seg, err)
	}
	return &StreamReader{l: l, f: f, seq: seg, off: segHdrSize, want: fromLSN}, nil
}

// Ready reports whether the next record is already durable — a Next
// call would return without blocking. Used by the primary's batcher to
// flush a partial batch instead of stalling it behind the tail.
func (sr *StreamReader) Ready() bool {
	return sr.l.DurableLSN() >= sr.want
}

// Stop aborts a blocked or future Next with ErrStreamStopped.
func (sr *StreamReader) Stop() {
	sr.stop.Store(true)
	sr.l.WakeDurableWaiters()
}

// Close releases the reader's file handle.
func (sr *StreamReader) Close() error {
	if sr.f == nil {
		return nil
	}
	err := sr.f.Close()
	sr.f = nil
	return err
}

// segmentAfter reports whether a segment above seq exists and, if so,
// its sequence number and base LSN.
func (l *Log) segmentAfter(seq uint32) (uint32, uint64, bool, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, 0, false, ErrClosed
	}
	if l.seq <= seq {
		return 0, 0, false, nil
	}
	base, err := l.readSegBase(seq + 1)
	if err != nil {
		return 0, 0, false, err
	}
	return seq + 1, base, true, nil
}

// advance moves the reader to the next segment.
func (sr *StreamReader) advance(seq uint32) error {
	f, err := sr.l.fs.OpenFile(sr.l.segPath(seq), os.O_RDONLY, 0)
	if err != nil {
		return fmt.Errorf("wal: stream advance to segment %d: %w", seq, err)
	}
	if cerr := sr.f.Close(); cerr != nil {
		return errors.Join(cerr, f.Close())
	}
	sr.f = f
	sr.seq = seq
	sr.off = segHdrSize
	return nil
}

// Next returns the next raw encoded record and its decoded header
// fields, blocking at the durable tail until more records arrive.
// The returned buffer is freshly allocated and owned by the caller.
func (sr *StreamReader) Next() (raw []byte, rec Record, err error) {
	for {
		if sr.stop.Load() {
			return nil, Record{}, ErrStreamStopped
		}
		// Never read past durability: the record at sr.want may exist
		// in the file but be lost in a crash; emitting it would let the
		// follower apply history the primary forgets.
		if _, err := sr.l.WaitDurableAbove(sr.want-1, &sr.stop); err != nil {
			return nil, Record{}, err
		}
		var hdr [recHdrSize]byte
		n, rerr := sr.f.ReadAt(hdr[:], sr.off)
		if n < recHdrSize {
			if rerr != nil && !isEOF(rerr) {
				return nil, Record{}, fmt.Errorf("wal: stream read segment %d: %w", sr.seq, rerr)
			}
			// End of this segment: the wanted record must live in the
			// next one (durability said it exists somewhere).
			next, base, ok, serr := sr.l.segmentAfter(sr.seq)
			if serr != nil {
				return nil, Record{}, serr
			}
			if !ok || base > sr.want {
				// Durable-but-invisible should be impossible; treat as
				// corruption rather than spinning.
				return nil, Record{}, &store.CorruptFileError{Path: sr.l.segPath(sr.seq),
					Reason: fmt.Sprintf("stream: durable record %d not found at offset %d", sr.want, sr.off)}
			}
			if err := sr.advance(next); err != nil {
				return nil, Record{}, err
			}
			continue
		}
		total := binary.LittleEndian.Uint32(hdr[4:])
		if total < recHdrSize || total > MaxRecordSize {
			return nil, Record{}, &store.CorruptFileError{Path: sr.l.segPath(sr.seq),
				Reason: fmt.Sprintf("stream: record at offset %d claims length %d", sr.off, total)}
		}
		buf := make([]byte, total)
		if _, err := sr.f.ReadAt(buf, sr.off); err != nil {
			return nil, Record{}, fmt.Errorf("wal: stream read segment %d: %w", sr.seq, err)
		}
		lsn, _, _, _, perr := ParseRawHeader(buf)
		if perr != nil {
			return nil, Record{}, &store.CorruptFileError{Path: sr.l.segPath(sr.seq),
				Reason: fmt.Sprintf("stream: record at offset %d: %v", sr.off, perr)}
		}
		sr.off += int64(total)
		if lsn < sr.want {
			continue // positioning skip inside the first segment
		}
		if lsn != sr.want {
			return nil, Record{}, &store.CorruptFileError{Path: sr.l.segPath(sr.seq),
				Reason: fmt.Sprintf("stream: record lsn %d, want %d", lsn, sr.want)}
		}
		decoded, derr := decodeRecord(buf)
		if derr != nil {
			return nil, Record{}, &store.CorruptFileError{Path: sr.l.segPath(sr.seq),
				Reason: fmt.Sprintf("stream: record %d: %v", lsn, derr)}
		}
		sr.want = lsn + 1
		return buf, decoded, nil
	}
}

// isEOF matches the short-read errors a ReadAt past the written tail
// produces.
func isEOF(err error) bool {
	return errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF)
}
