package db

import (
	"errors"
	"fmt"
	"time"

	"lexequal/internal/store"
)

// This file implements online fuzzy checkpointing (DESIGN.md §12): a
// checkpoint writes every committed dirty page back to the data files,
// fsyncs them, and then declares a redo floor in the log — the LSN at
// or below which recovery has nothing left to do. Old WAL segments
// wholly below the floor are garbage-collected, which is what bounds
// both the log's disk footprint and crash-recovery time for a
// long-lived server.
//
// The checkpoint is "fuzzy" because it never stalls serving: each
// flush round holds the database query lock SHARED, so concurrent
// SELECTs — and, under MVCC, concurrent writers — proceed throughout;
// only the floor snapshot takes the lock exclusively, and only
// briefly. No-steal makes the flush rounds safe: FlushCommitted asks
// the log whether each page's last record belongs to a finished
// transaction, and the log's live-transaction set answers no for
// every in-flight writer's pages, so they stay cached. The floor is
// safe against in-flight writers too — CompleteCheckpoint clamps it
// below the oldest live transaction's begin record, so nothing a live
// transaction logged is ever promised as durable.

// DefaultAutoCheckpointBytes is the WAL-bytes threshold at which
// CheckpointIfNeeded fires (4 MiB: a quarter of one segment, so a
// busy server checkpoints well before segments pile up).
const DefaultAutoCheckpointBytes = 4 << 20

// CheckpointStats describes one completed checkpoint.
type CheckpointStats struct {
	// LSN is the checkpoint-end record's LSN.
	LSN uint64
	// Floor is the redo floor the checkpoint declared: recovery replays
	// only records above it.
	Floor uint64
	// SegmentsRemoved is how many WAL segments the post-checkpoint GC
	// unlinked.
	SegmentsRemoved int
	// VersionsGCed is how many dead row versions (deleted rows below
	// every snapshot's horizon) this checkpoint physically removed.
	VersionsGCed int
	// Duration is the wall-clock time of the whole checkpoint.
	Duration time.Duration
}

// RecoveryStats describes the crash-recovery pass Open ran (zero-value
// with Ran=false when the log was empty and there was nothing to do).
type RecoveryStats struct {
	// Ran is whether a recovery pass executed at all.
	Ran bool
	// Duration is the wall-clock time of the redo pass.
	Duration time.Duration
	// Purged counts rows deleted or unclaimed by the post-redo loser
	// purge (crashed transactions' debris in committed page images).
	Purged int
	// Redo carries the scan/skip/replay counters, including the
	// checkpoint floor recovery started from.
	Redo RedoSummary
}

// RedoSummary mirrors wal.RedoStats for callers that should not
// import internal/wal directly.
type RedoSummary struct {
	Floor    uint64
	Scanned  int
	Skipped  int
	Replayed int
	Applied  int
}

// RecoveryStats returns what the opening recovery pass did.
func (d *DB) RecoveryStats() RecoveryStats {
	d.stmu.Lock()
	defer d.stmu.Unlock()
	return d.recovery
}

// ckptObject is one flushable storage object captured under the query
// lock; the closures stay valid after a drop (they report success on a
// closed object, whose pages no recovery will ever need).
type ckptObject struct {
	flush  func() error
	sync   func() error
	minRec func() (uint64, bool)
}

// snapshotObjects collects the current tables and indexes under a
// shared query lock.
func (d *DB) snapshotObjects() []ckptObject {
	d.qmu.RLock()
	defer d.qmu.RUnlock()
	return d.snapshotObjectsLocked()
}

// SetAutoCheckpointBytes sets the WAL-bytes threshold for
// CheckpointIfNeeded (0 restores the default).
func (d *DB) SetAutoCheckpointBytes(n int64) {
	d.stmu.Lock()
	defer d.stmu.Unlock()
	d.autoCkptBytes = n
}

// CheckpointIfNeeded runs a checkpoint when the WAL has grown past the
// auto-checkpoint threshold since the last one. ok reports whether a
// checkpoint actually ran.
func (d *DB) CheckpointIfNeeded() (CheckpointStats, bool, error) {
	if d.wal == nil {
		return CheckpointStats{}, false, nil
	}
	d.stmu.Lock()
	threshold := d.autoCkptBytes
	d.stmu.Unlock()
	if threshold <= 0 {
		threshold = DefaultAutoCheckpointBytes
	}
	if d.wal.SinceCheckpoint() < threshold {
		return CheckpointStats{}, false, nil
	}
	st, err := d.Checkpoint()
	return st, err == nil, err
}

// Checkpoint runs one full fuzzy checkpoint: flush committed dirty
// pages, publish the deferred catalog if needed, fsync the data files,
// declare the redo floor in the log, and GC dead WAL segments. It is
// safe to call while the database is serving (checkpoints serialize
// among themselves). On any failure the log keeps its previous floor —
// the checkpoint simply did not happen, and a later retry starts over.
//
// Deadlock warning: Checkpoint acquires the database query lock shared,
// so it must NOT be called while holding that lock — in particular not
// from inside an open explicit transaction, which holds it exclusively.
func (d *DB) Checkpoint() (CheckpointStats, error) {
	if d.wal == nil {
		return CheckpointStats{}, errors.New("db: checkpoint requires the write-ahead log")
	}
	if d.replica {
		// A replica cannot append checkpoint records (its LSN space
		// belongs to the primary) or run version GC (a write); its
		// checkpoint persists the floor in the replica state file.
		return CheckpointStats{}, d.ReplicaCheckpoint()
	}
	d.ckptMu.Lock()
	defer d.ckptMu.Unlock()
	start := time.Now()
	st, err := d.checkpointLocked()
	if err != nil {
		d.stmu.Lock()
		d.ckptFailures++
		d.stmu.Unlock()
		return CheckpointStats{}, err
	}
	st.Duration = time.Since(start)
	d.stmu.Lock()
	d.ckptCount++
	d.gcRemoved += uint64(st.SegmentsRemoved)
	d.lastCkpt = st
	d.stmu.Unlock()
	return st, nil
}

func (d *DB) checkpointLocked() (CheckpointStats, error) {
	var st CheckpointStats
	if err := d.usable(); err != nil {
		return st, err
	}
	// Phase 0 — version GC: physically remove deleted rows no open
	// snapshot can still see, as an ordinary logged transaction (so its
	// page images are flushed by the rounds below like anyone else's).
	gced, err := d.gcVersions()
	if err != nil {
		return st, fmt.Errorf("db: checkpoint version gc: %w", err)
	}
	st.VersionsGCed = gced
	// The begin record marks intent only; if anything below fails it is
	// abandoned debris the strict checker can point at.
	beginLSN, err := d.wal.CheckpointBegin()
	if err != nil {
		return st, fmt.Errorf("db: checkpoint begin: %w", err)
	}
	// Phase 1 — flush. One shared-lock round per object, so writers can
	// interleave between objects; anything they re-dirty is accounted
	// for by the floor snapshot below.
	for _, obj := range d.snapshotObjects() {
		d.qmu.RLock()
		err := obj.flush()
		d.qmu.RUnlock()
		if err != nil {
			return st, fmt.Errorf("db: checkpoint flush: %w", err)
		}
	}
	// Phase 2 — snapshot, under ONE EXCLUSIVE hold so no writer can
	// slip between the catalog publish and the floor computation.
	// (Shared is no longer enough: MVCC writers take the query lock
	// shared too, and one logging a page image after its object's
	// minRec scan but before the LastLSN read — then committing before
	// the end record — would put a committed, unflushed change at or
	// below the floor.) The floor is min(recLSN)-1 over the pages still
	// dirty (their first unflushed change bounds what recovery must
	// replay); with nothing dirty every logged change is in the files
	// and the floor is the last LSN itself. The deferred catalog must
	// be published first: committed catalog records at or below the
	// floor will never be replayed again.
	d.qmu.Lock()
	d.stmu.Lock()
	catDirty := d.catDirty
	d.stmu.Unlock()
	if catDirty {
		data, err := d.marshalCatalog()
		if err == nil {
			err = d.writeCatalogNow(data)
		}
		if err == nil {
			err = store.SyncDir(d.fs, d.dir)
		}
		if err != nil {
			d.qmu.Unlock()
			return st, fmt.Errorf("db: checkpoint catalog: %w", err)
		}
		d.stmu.Lock()
		d.catDirty = false
		d.stmu.Unlock()
	}
	objs := d.snapshotObjectsLocked()
	minRec, anyDirty := uint64(0), false
	for _, obj := range objs {
		if m, ok := obj.minRec(); ok && (!anyDirty || m < minRec) {
			minRec, anyDirty = m, true
		}
	}
	lastLSN := d.wal.LastLSN()
	d.qmu.Unlock()
	floor := lastLSN
	if anyDirty {
		floor = minRec - 1
	}
	// Phase 3 — make the flushed images durable, then declare the
	// floor. The order is the WAL rule writ large: the end record may
	// promise "everything at or below floor is in the files" only after
	// the files are fsynced.
	for _, obj := range objs {
		d.qmu.RLock()
		err := obj.sync()
		d.qmu.RUnlock()
		if err != nil {
			return st, fmt.Errorf("db: checkpoint sync: %w", err)
		}
	}
	if err := store.SyncDir(d.fs, d.dir); err != nil {
		return st, fmt.Errorf("db: checkpoint dir sync: %w", err)
	}
	endLSN, err := d.wal.CompleteCheckpoint(beginLSN, floor)
	if err != nil {
		return st, fmt.Errorf("db: checkpoint complete: %w", err)
	}
	st.LSN = endLSN
	st.Floor = floor
	// GC is best-effort bookkeeping: the checkpoint is already complete
	// and durable, so a GC failure (disk trouble mid-unlink) only
	// postpones space reclamation to the next checkpoint.
	removed, err := d.wal.GC()
	st.SegmentsRemoved = removed
	if err != nil {
		return st, fmt.Errorf("db: checkpoint gc: %w", err)
	}
	return st, nil
}

// snapshotObjectsLocked is snapshotObjects for callers already holding
// the query lock (shared or exclusive).
func (d *DB) snapshotObjectsLocked() []ckptObject {
	objs := make([]ckptObject, 0, len(d.tables)+len(d.indexes))
	for _, t := range d.tables {
		h := t.Heap
		objs = append(objs, ckptObject{flush: h.FlushCommitted, sync: h.SyncData, minRec: h.MinRecLSN})
	}
	for _, ix := range d.indexes {
		bt := ix.Tree
		objs = append(objs, ckptObject{flush: bt.FlushCommitted, sync: bt.SyncData, minRec: bt.MinRecLSN})
	}
	return objs
}
