package db

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"lexequal/internal/store"
)

// The crash-torture workload: DDL, autocommit DML, a committed
// transaction, a rolled-back transaction, and a transaction left open
// at Close. Ids tell the stories apart after recovery:
//
//	0..3  autocommit inserts — durable once acknowledged
//	4,5   one committed transaction — atomic, durable once acknowledged
//	6,7   a rolled-back transaction — must never persist
//	8     open at Close — rolled back by Close, must never persist
var neverIDs = []int64{6, 7, 8}

func crashRow(id int64) Row {
	return Row{Int(id), Str("payload")}
}

// runCrashWorkload drives the workload against dir over fs, which may
// fault at any point. It returns the ids whose commit was acknowledged
// before the fault (these must survive recovery) and the atomic groups
// that were in flight when an operation failed (these must recover
// all-or-nothing).
func runCrashWorkload(dir string, fs store.VFS) (acked []int64, inflight [][]int64) {
	d, err := OpenOpts(dir, Options{FS: fs})
	if err != nil {
		return nil, nil
	}
	// Close is part of the faultable surface (WAL sync, catalog write,
	// pager flushes, log truncation); its error means the crash hit
	// there and recovery picks up the pieces.
	defer func() { _ = d.Close() }()

	t, err := d.CreateTable("t", Schema{{Name: "id", Type: TInt}, {Name: "name", Type: TString}})
	if err != nil {
		return nil, nil
	}
	if _, err := d.CreateIndex("t_id_idx", "t", "id"); err != nil {
		return acked, nil
	}
	for id := int64(0); id < 4; id++ {
		if _, err := t.Insert(crashRow(id)); err != nil {
			return acked, [][]int64{{id}}
		}
		acked = append(acked, id)
	}

	// Committed transaction: 4 and 5 appear atomically.
	tx, err := d.Begin()
	if err != nil {
		return acked, nil
	}
	for _, id := range []int64{4, 5} {
		if _, err := t.Insert(crashRow(id)); err != nil {
			return acked, [][]int64{{4, 5}}
		}
	}
	if err := tx.Commit(); err != nil {
		return acked, [][]int64{{4, 5}}
	}
	acked = append(acked, 4, 5)

	// Rolled-back transaction: 6 and 7 must never persist.
	tx, err = d.Begin()
	if err != nil {
		return acked, nil
	}
	for _, id := range []int64{6, 7} {
		if _, err := t.Insert(crashRow(id)); err != nil {
			return acked, nil
		}
	}
	if err := tx.Rollback(); err != nil {
		return acked, nil
	}

	// Transaction left open at Close: 8 must never persist.
	if _, err := d.Begin(); err != nil {
		return acked, nil
	}
	if _, err := t.Insert(crashRow(8)); err != nil {
		return acked, nil
	}
	return acked, nil
}

// dumpIDs opens dir cleanly and returns how often each id occurs in t
// (nil map if the table does not exist), failing the test on any
// integrity issue.
func dumpIDs(t *testing.T, label, dir string) map[int64]int {
	t.Helper()
	d, err := Open(dir)
	if err != nil {
		t.Fatalf("%s: reopen after crash: %v", label, err)
	}
	defer func() {
		if err := d.Close(); err != nil {
			t.Fatalf("%s: close after recovery: %v", label, err)
		}
	}()
	for _, is := range d.Check() {
		t.Errorf("%s: integrity: %s", label, is)
	}
	for _, is := range d.CheckWAL() {
		t.Errorf("%s: wal check: %s", label, is)
	}
	if t.Failed() {
		t.FailNow()
	}
	tab, ok := d.Table("t")
	if !ok {
		return nil
	}
	counts := map[int64]int{}
	err = tab.Scan(func(_ store.RID, row Row) error {
		counts[row[0].I]++
		return nil
	})
	if err != nil {
		t.Fatalf("%s: scan after recovery: %v", label, err)
	}
	return counts
}

// verifyCrashOutcome asserts the recovery contract for one crash point.
func verifyCrashOutcome(t *testing.T, label, dir string, acked []int64, inflight [][]int64) {
	t.Helper()
	counts := dumpIDs(t, label, dir)
	if counts == nil && len(acked) > 0 {
		t.Fatalf("%s: table t vanished with %d acknowledged rows", label, len(acked))
	}
	for _, id := range acked {
		if counts[id] != 1 {
			t.Fatalf("%s: acknowledged id %d occurs %d times, want 1 (counts %v)", label, id, counts[id], counts)
		}
	}
	for _, id := range neverIDs {
		if counts[id] != 0 {
			t.Fatalf("%s: loser id %d persisted %d times", label, id, counts[id])
		}
	}
	for _, group := range inflight {
		present := 0
		for _, id := range group {
			if counts[id] > 0 {
				present++
			}
		}
		if present != 0 && present != len(group) {
			t.Fatalf("%s: in-flight group %v recovered partially (%d of %d present)", label, group, present, len(group))
		}
	}
}

// TestCrashTortureSweep kills the workload at every write point and
// every sync point, reopens cleanly, and asserts recovery: integrity
// checks pass, acknowledged commits survive, losers vanish, in-flight
// work is all-or-nothing. Write faults rotate through the clean-error,
// short-write, and torn-sector modes.
func TestCrashTortureSweep(t *testing.T) {
	// Size the sweep from a clean run.
	counter := &store.FaultFS{}
	baseAcked, _ := runCrashWorkload(t.TempDir(), counter)
	if want := []int{6}; len(baseAcked) != want[0] {
		t.Fatalf("clean workload acknowledged %d commits, want %d", len(baseAcked), want[0])
	}
	writes, syncs := counter.Writes(), counter.Syncs()
	if writes+syncs < 50 {
		t.Fatalf("sweep covers only %d write + %d sync points, want >= 50", writes, syncs)
	}
	stride := 1
	if testing.Short() {
		stride = 7
	}

	modes := []store.FaultMode{store.FaultError, store.FaultShort, store.FaultTorn}
	for n := 1; n <= writes; n += stride {
		mode := modes[n%len(modes)]
		dir := filepath.Join(t.TempDir(), "db")
		acked, inflight := runCrashWorkload(dir, &store.FaultFS{FailWrite: n, Mode: mode})
		label := "write " + mode.String() + " point " + itoa(n)
		verifyCrashOutcome(t, label, dir, acked, inflight)
	}
	for n := 1; n <= syncs; n += stride {
		dir := filepath.Join(t.TempDir(), "db")
		acked, inflight := runCrashWorkload(dir, &store.FaultFS{FailSync: n})
		label := "sync point " + itoa(n)
		verifyCrashOutcome(t, label, dir, acked, inflight)
	}
}

// oneShotFailFS delegates to the OS filesystem but, once armed, fails
// the next WriteAt cleanly and then keeps working — a transient I/O
// error rather than FaultFS's fail-stop crash. It targets the
// in-process aftermath of a failed commit append, where the database
// must roll the transaction back and stay usable.
type oneShotFailFS struct {
	failNext bool
}

func (fs *oneShotFailFS) OpenFile(path string, flag int, perm os.FileMode) (store.File, error) {
	f, err := store.OSFS{}.OpenFile(path, flag, perm)
	if err != nil {
		return nil, err
	}
	return &oneShotFailFile{fs: fs, File: f}, nil
}

func (fs *oneShotFailFS) Rename(o, n string) error        { return store.OSFS{}.Rename(o, n) }
func (fs *oneShotFailFS) Remove(p string) error           { return store.OSFS{}.Remove(p) }
func (fs *oneShotFailFS) RemoveAll(p string) error        { return store.OSFS{}.RemoveAll(p) }
func (fs *oneShotFailFS) Stat(p string) (os.FileInfo, error) { return store.OSFS{}.Stat(p) }
func (fs *oneShotFailFS) MkdirAll(p string, perm os.FileMode) error {
	return store.OSFS{}.MkdirAll(p, perm)
}

type oneShotFailFile struct {
	fs *oneShotFailFS
	store.File
}

func (f *oneShotFailFile) WriteAt(p []byte, off int64) (int, error) {
	if f.fs.failNext {
		f.fs.failNext = false
		return 0, store.ErrInjected
	}
	return f.File.WriteAt(p, off)
}

// TestCommitAppendFailureRollsBack arms a transient write failure for
// exactly the commit record's append and asserts the transaction is
// fully rolled back in place: the failed transaction's rows never
// surface (neither to the live handle nor after reopen), and the
// database stays usable for later transactions.
func TestCommitAppendFailureRollsBack(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "db")
	ffs := &oneShotFailFS{}
	d, err := OpenOpts(dir, Options{FS: ffs})
	if err != nil {
		t.Fatal(err)
	}
	tab, err := d.CreateTable("t", Schema{{Name: "id", Type: TInt}, {Name: "name", Type: TString}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tab.Insert(crashRow(1)); err != nil {
		t.Fatal(err)
	}

	tx, err := d.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tab.Insert(crashRow(2)); err != nil {
		t.Fatal(err)
	}
	// The next WriteAt is the commit record's append.
	ffs.failNext = true
	if err := tx.Commit(); !errors.Is(err, store.ErrInjected) {
		t.Fatalf("commit after injected append failure: %v", err)
	}

	scan := func(label string) map[int64]int {
		t.Helper()
		// The in-place recovery rebuilt the storage objects; stale
		// handles are discarded, so re-fetch the table.
		cur, ok := d.Table("t")
		if !ok {
			t.Fatalf("%s: table t missing", label)
		}
		counts := map[int64]int{}
		err := cur.Scan(func(_ store.RID, row Row) error {
			counts[row[0].I]++
			return nil
		})
		if err != nil {
			t.Fatalf("%s: scan: %v", label, err)
		}
		return counts
	}
	if counts := scan("after failed commit"); counts[1] != 1 || counts[2] != 0 {
		t.Fatalf("after failed commit: counts = %v, want only id 1", counts)
	}

	// The database must remain usable: a later transaction commits.
	tab2, _ := d.Table("t")
	if _, err := tab2.Insert(crashRow(3)); err != nil {
		t.Fatalf("insert after recovered commit failure: %v", err)
	}
	if counts := scan("after later insert"); counts[3] != 1 {
		t.Fatalf("after later insert: counts = %v", counts)
	}
	if err := d.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	counts := dumpIDs(t, "reopen", dir)
	if counts[1] != 1 || counts[2] != 0 || counts[3] != 1 {
		t.Fatalf("reopen: counts = %v, want ids 1 and 3 only", counts)
	}
}

// Concurrent crash torture: several writers run independent MVCC
// transactions when the fault fires, so the log carries interleaved
// trails — begin/page/commit records of different transactions mixed
// together — and some writers die mid-transaction. Recovery must keep
// exactly the committed trails: per transaction all-or-nothing, with
// acknowledged (durably synced) commits guaranteed to survive.
const (
	ccWriters      = 3
	ccTxPerWriter  = 3
	ccRowsPerTx    = 3
	ccGroupsPerRun = ccWriters * ccTxPerWriter
)

// ccGroup returns the ids of one writer transaction's atomic row group.
func ccGroup(w, txi int) []int64 {
	ids := make([]int64, ccRowsPerTx)
	for k := range ids {
		ids[k] = int64(1000 + w*100 + txi*10 + k)
	}
	return ids
}

// runConcurrentCrashWorkload drives ccWriters goroutines of BeginTx /
// InsertTx / CommitNoWait / WaitDurable against dir over fs, which may
// fault at any point. Goroutines that hit an error simply stop, like
// threads of a crashing process: no tidy rollback. It returns the ids
// whose commit was acknowledged durable before the fault (these must
// survive recovery) and every atomic group that was attempted (each
// must recover all-or-nothing).
func runConcurrentCrashWorkload(dir string, fs store.VFS) (acked []int64, groups [][]int64) {
	d, err := OpenOpts(dir, Options{FS: fs})
	if err != nil {
		return nil, nil
	}
	defer func() { _ = d.Close() }()

	tbl, err := d.CreateTable("t", Schema{{Name: "id", Type: TInt}, {Name: "name", Type: TString}})
	if err != nil {
		return nil, nil
	}

	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < ccWriters; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for txi := 0; txi < ccTxPerWriter; txi++ {
				ids := ccGroup(w, txi)
				mu.Lock()
				groups = append(groups, ids)
				mu.Unlock()
				tx, err := d.BeginTx()
				if err != nil {
					return
				}
				for _, id := range ids {
					if _, err := tbl.InsertTx(tx, crashRow(id)); err != nil {
						return
					}
				}
				lsn, err := tx.CommitNoWait()
				if err != nil {
					return
				}
				if err := d.WaitDurable(lsn); err != nil {
					return
				}
				mu.Lock()
				acked = append(acked, ids...)
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	return acked, groups
}

// verifyConcurrentOutcome asserts the recovery contract for one crash
// point of the concurrent workload.
func verifyConcurrentOutcome(t *testing.T, label, dir string, acked []int64, groups [][]int64) {
	t.Helper()
	counts := dumpIDs(t, label, dir)
	if counts == nil {
		if len(acked) > 0 {
			t.Fatalf("%s: table t vanished with %d acknowledged rows", label, len(acked))
		}
		return
	}
	for id, n := range counts {
		if n != 1 {
			t.Fatalf("%s: id %d occurs %d times after recovery", label, id, n)
		}
	}
	for _, id := range acked {
		if counts[id] != 1 {
			t.Fatalf("%s: acknowledged id %d missing after recovery (counts %v)", label, id, counts)
		}
	}
	for _, group := range groups {
		present := 0
		for _, id := range group {
			if counts[id] > 0 {
				present++
			}
		}
		if present != 0 && present != len(group) {
			t.Fatalf("%s: transaction group %v recovered partially (%d of %d rows)", label, group, present, len(group))
		}
	}
}

// TestConcurrentCrashTortureSweep kills the concurrent-writer workload
// at every write and sync point and asserts recovery lands on a
// committed-only state: integrity checks pass, durably acknowledged
// transactions survive, and every transaction — including the ones the
// crash caught mid-flight, their trails interleaved with the
// survivors' — is all-or-nothing. The concurrency makes fault points
// land nondeterministically inside the schedule; the bookkeeping is
// recorded per run, so every interleaving verifies against its own
// ground truth.
func TestConcurrentCrashTortureSweep(t *testing.T) {
	counter := &store.FaultFS{}
	baseAcked, baseGroups := runConcurrentCrashWorkload(t.TempDir(), counter)
	if len(baseGroups) != ccGroupsPerRun || len(baseAcked) != ccGroupsPerRun*ccRowsPerTx {
		t.Fatalf("clean run committed %d rows in %d groups, want %d in %d",
			len(baseAcked), len(baseGroups), ccGroupsPerRun*ccRowsPerTx, ccGroupsPerRun)
	}
	writes, syncs := counter.Writes(), counter.Syncs()
	if writes+syncs < 30 {
		t.Fatalf("sweep covers only %d write + %d sync points, want >= 30", writes, syncs)
	}
	stride := 2
	if testing.Short() {
		stride = 7
	}

	modes := []store.FaultMode{store.FaultError, store.FaultShort, store.FaultTorn}
	for n := 1; n <= writes; n += stride {
		mode := modes[n%len(modes)]
		dir := filepath.Join(t.TempDir(), "db")
		acked, groups := runConcurrentCrashWorkload(dir, &store.FaultFS{FailWrite: n, Mode: mode})
		verifyConcurrentOutcome(t, "concurrent write "+mode.String()+" point "+itoa(n), dir, acked, groups)
	}
	for n := 1; n <= syncs; n += stride {
		dir := filepath.Join(t.TempDir(), "db")
		acked, groups := runConcurrentCrashWorkload(dir, &store.FaultFS{FailSync: n})
		verifyConcurrentOutcome(t, "concurrent sync point "+itoa(n), dir, acked, groups)
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// copyDir clones a database directory with plain os calls (tests sit
// outside the VFS seam on purpose: the clone must not disturb fault
// accounting).
func copyDir(t *testing.T, src, dst string) {
	t.Helper()
	err := filepath.Walk(src, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		target := filepath.Join(dst, rel)
		if info.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		in, err := os.Open(path)
		if err != nil {
			return err
		}
		defer in.Close()
		out, err := os.Create(target)
		if err != nil {
			return err
		}
		if _, err := io.Copy(out, in); err != nil {
			out.Close()
			return err
		}
		return out.Close()
	})
	if err != nil {
		t.Fatalf("copy %s -> %s: %v", src, dst, err)
	}
}

// damagedDir produces one mid-workload crash image to recover from.
func damagedDir(t *testing.T) (string, []int64, [][]int64) {
	t.Helper()
	counter := &store.FaultFS{}
	runCrashWorkload(t.TempDir(), counter)
	dir := filepath.Join(t.TempDir(), "db")
	// Two thirds in: after several commits, before the clean close.
	point := counter.Writes() * 2 / 3
	acked, inflight := runCrashWorkload(dir, &store.FaultFS{FailWrite: point, Mode: store.FaultTorn})
	return dir, acked, inflight
}

// TestRecoveryIdempotent recovers the same crash image twice — once on
// the original, once (twice over) on a byte-for-byte copy — and
// demands identical row state: redo must be stable under repetition.
func TestRecoveryIdempotent(t *testing.T) {
	dir, acked, inflight := damagedDir(t)
	clone := filepath.Join(t.TempDir(), "clone")
	copyDir(t, dir, clone)

	verifyCrashOutcome(t, "original", dir, acked, inflight)
	// First recovery of the clone.
	first := dumpIDs(t, "clone pass 1", clone)
	// Reopening recovers again (the log was truncated at close, so this
	// also proves a checkpointed reopen changes nothing).
	second := dumpIDs(t, "clone pass 2", clone)
	if len(first) != len(second) {
		t.Fatalf("recover twice diverged: %v vs %v", first, second)
	}
	for id, n := range first {
		if second[id] != n {
			t.Fatalf("recover twice diverged at id %d: %d vs %d", id, n, second[id])
		}
	}
	original := dumpIDs(t, "original recheck", dir)
	for id, n := range first {
		if original[id] != n {
			t.Fatalf("clone diverged from original at id %d: %d vs %d", id, n, original[id])
		}
	}
}

// TestCrashDuringRecovery crashes recovery itself at every write and
// sync point of the redo pass, then recovers cleanly and compares
// against a control recovery of the same image: a half-applied redo
// must not change the final state.
func TestCrashDuringRecovery(t *testing.T) {
	dir, acked, inflight := damagedDir(t)
	control := filepath.Join(t.TempDir(), "control")
	copyDir(t, dir, control)
	controlState := dumpIDs(t, "control", control)

	// Size the recovery sweep: count the ops a recovery (open + close)
	// performs on a fresh copy of the image.
	probe := filepath.Join(t.TempDir(), "probe")
	copyDir(t, dir, probe)
	counter := &store.FaultFS{}
	if d, err := OpenOpts(probe, Options{FS: counter}); err == nil {
		d.Close()
	}
	writes, syncs := counter.Writes(), counter.Syncs()
	if writes == 0 {
		t.Fatal("recovery performed no writes; the crash image is not damaged")
	}
	stride := 1
	if testing.Short() {
		stride = 5
	}

	run := func(label string, ffs *store.FaultFS) {
		work := filepath.Join(t.TempDir(), "work")
		copyDir(t, dir, work)
		if d, err := OpenOpts(work, Options{FS: ffs}); err == nil {
			_ = d.Close() // the armed fault may only fire at close time
		}
		verifyCrashOutcome(t, label, work, acked, inflight)
		state := dumpIDs(t, label+" state", work)
		for id, n := range controlState {
			if state[id] != n {
				t.Fatalf("%s: diverged from control at id %d: %d vs %d", label, id, state[id], n)
			}
		}
		for id, n := range state {
			if controlState[id] != n {
				t.Fatalf("%s: extra id %d (%d occurrences) vs control", label, id, n)
			}
		}
	}
	for n := 1; n <= writes; n += stride {
		run("recovery write point "+itoa(n), &store.FaultFS{FailWrite: n, Mode: store.FaultTorn})
	}
	for n := 1; n <= syncs; n += stride {
		run("recovery sync point "+itoa(n), &store.FaultFS{FailSync: n})
	}
}
