package db

import (
	"errors"
	"fmt"
	"path/filepath"
	"strings"

	"lexequal/internal/core"
	"lexequal/internal/qgram"
	"lexequal/internal/soundex"
	"lexequal/internal/store"
)

// BuildAtomic builds a database at dir all-or-nothing: build runs
// against a staging directory (dir + ".building"), the staged files are
// flushed and synced on Close, and only then is the directory renamed
// into place. A crash or injected fault at any point leaves dir either
// absent/previous or fully loaded — never half-written. Any leftover
// staging directory from an earlier crashed build is discarded first.
func BuildAtomic(dir string, opts Options, build func(*DB) error) error {
	fs := opts.FS
	if fs == nil {
		fs = store.OSFS{}
	}
	stage := dir + ".building"
	if err := fs.RemoveAll(stage); err != nil {
		return fmt.Errorf("db: clear stage dir: %w", err)
	}
	// The stage-and-rename protocol is the atomicity mechanism here; a
	// WAL would only slow the bulk load down (and per-row commits
	// would fsync constantly). Crashed stages are simply discarded.
	opts.DisableWAL = true
	d, err := OpenOpts(stage, opts)
	if err != nil {
		return err
	}
	if err := build(d); err != nil {
		return errors.Join(err, d.Close())
	}
	if err := d.Close(); err != nil {
		return err
	}
	if err := store.SyncDir(fs, stage); err != nil {
		return fmt.Errorf("db: sync stage dir: %w", err)
	}

	// Publish. If dir already exists, park it aside so a failed rename
	// can restore it.
	old := dir + ".old"
	replaced := false
	if _, err := fs.Stat(dir); err == nil {
		if err := fs.RemoveAll(old); err != nil {
			return fmt.Errorf("db: clear parking dir: %w", err)
		}
		if err := fs.Rename(dir, old); err != nil {
			return fmt.Errorf("db: park previous db: %w", err)
		}
		replaced = true
	}
	if err := fs.Rename(stage, dir); err != nil {
		if replaced {
			//lint:ignore nopanic best-effort restore of the parked db; the publish error is what matters
			fs.Rename(old, dir)
		}
		return fmt.Errorf("db: publish db: %w", err)
	}
	if replaced {
		if err := fs.RemoveAll(old); err != nil {
			return fmt.Errorf("db: clear parked db: %w", err)
		}
	}
	// The parent-dir sync makes the publish rename itself durable. It
	// runs after the point of no return: on failure the new database is
	// fully readable but the rename may roll back to the previous state
	// after a power loss — report it so the caller can retry. A crash
	// here can never expose a partial load.
	if err := store.SyncDir(fs, filepath.Dir(dir)); err != nil {
		return fmt.Errorf("db: sync parent dir (published db may not survive power loss): %w", err)
	}
	return nil
}

// NameTableSpec controls CreateNameTable.
type NameTableSpec struct {
	// WithAux builds the <table>_qgrams auxiliary table (Figure 14).
	WithAux bool
	// WithIndexes builds the id index and the grouped-phoneme-id B-tree
	// (Figure 15).
	WithIndexes bool
	// Q is the gram length (0 selects core.DefaultQ).
	Q int
}

// CreateNameTable creates and loads the conventional multiscript name
// layout for texts:
//
//	<name>(id INT, name NSTRING, pname STRING, groupid INT)
//	<name>_qgrams(id INT, pos INT, qgram STRING)        [spec.WithAux]
//	<name>_id_idx on id, <name>_gid_idx on groupid      [spec.WithIndexes]
//
// Rows whose language has no TTP converter get NULL pname/groupid and
// never match (the NORESOURCE rows). Row ids are the positions in
// texts.
func CreateNameTable(d *DB, name string, op *core.Operator, texts []core.Text, spec NameTableSpec) (*LexConfig, error) {
	q := spec.Q
	if q == 0 {
		q = core.DefaultQ
	}
	if q < 2 {
		return nil, fmt.Errorf("db: q must be >= 2, got %d", q)
	}
	// One transaction for the whole load: with the WAL enabled the
	// tables, rows, and indexes appear atomically (and commit with a
	// single fsync); joined if the caller already opened one.
	tx, err := d.autoBegin()
	if err != nil {
		return nil, err
	}
	cfg, err := createNameTableTx(d, name, op, texts, spec, q)
	if err := d.autoEnd(tx, err); err != nil {
		return nil, err
	}
	return cfg, nil
}

func createNameTableTx(d *DB, name string, op *core.Operator, texts []core.Text, spec NameTableSpec, q int) (*LexConfig, error) {
	t, err := d.CreateTable(name, Schema{
		{Name: "id", Type: TInt},
		{Name: "name", Type: TNString},
		{Name: "pname", Type: TString},
		{Name: "groupid", Type: TInt},
	})
	if err != nil {
		return nil, err
	}
	var aux *Table
	if spec.WithAux {
		aux, err = d.CreateTable(name+"_qgrams", Schema{
			{Name: "id", Type: TInt},
			{Name: "pos", Type: TInt},
			{Name: "qgram", Type: TString},
			{Name: "gramhash", Type: TInt},
		})
		if err != nil {
			return nil, err
		}
	}
	enc := soundex.NewEncoder(op.Clusters())
	for i, text := range texts {
		row := Row{Int(int64(i)), NStr(text.Value, text.Lang), Null(), Null()}
		if op.Registry().Has(text.Lang) {
			p, err := op.Transform(text.Value, text.Lang)
			if err != nil {
				return nil, fmt.Errorf("db: load row %d (%s): %w", i, text, err)
			}
			row[2] = Str(p.IPA())
			row[3] = Int(int64(enc.Encode(p)))
			if aux != nil {
				for _, g := range qgram.Extract(enc.Project(p), q) {
					key := g.Key()
					if _, err := aux.Insert(Row{Int(int64(i)), Int(int64(g.Pos)), Str(key), Int(GramHash(key))}); err != nil {
						return nil, err
					}
				}
			}
		}
		if _, err := t.Insert(row); err != nil {
			return nil, err
		}
	}
	if spec.WithIndexes {
		if _, err := d.CreateIndex(name+"_id_idx", name, "id"); err != nil {
			return nil, err
		}
		if _, err := d.CreateIndex(name+"_gid_idx", name, "groupid"); err != nil {
			return nil, err
		}
		if spec.WithAux {
			if _, err := d.CreateIndex(name+"_qgrams_hash_idx", name+"_qgrams", "gramhash"); err != nil {
				return nil, err
			}
			// Covering index: gramhash -> (id, pos) packed into the
			// value, so the gram probe never touches the aux heap (the
			// index-only plan a real optimizer would use for Figure 14).
			if err := buildCoverIndex(d, name, aux); err != nil {
				return nil, err
			}
		}
	}
	cfg, err := ResolveLexConfig(d, name, op)
	if err != nil {
		return nil, err
	}
	cfg.Q = q
	return cfg, nil
}

// CoverValue packs an aux-table (id, pos) pair into a B-tree value for
// the covering gram index; positions fit comfortably in 16 bits.
func CoverValue(id int64, pos int) uint64 { return uint64(id)<<16 | uint64(pos&0xFFFF) }

// UnpackCover reverses CoverValue.
func UnpackCover(v uint64) (id int64, pos int) { return int64(v >> 16), int(v & 0xFFFF) }

// CoverIndexName is the naming convention for the covering gram index.
func CoverIndexName(table string) string { return table + "_qgrams_cover" }

// coverColumn marks the covering index in the catalog; it resolves to
// no real column, so ordinary insert-time index maintenance skips it.
const coverColumn = "(gramhash)->(id,pos)"

// buildCoverIndex bulk-loads the covering gram index from the aux
// table.
func buildCoverIndex(d *DB, name string, aux *Table) error {
	idxName := CoverIndexName(name)
	bt, err := store.OpenBTreeFS(d.indexPath(idxName), d.cachePages, d.fs)
	if err != nil {
		return err
	}
	idCol := aux.Columns.ColIndex("id")
	posCol := aux.Columns.ColIndex("pos")
	hashCol := aux.Columns.ColIndex("gramhash")
	err = aux.Scan(func(_ store.RID, row Row) error {
		return bt.Insert(uint64(row[hashCol].I), CoverValue(row[idCol].I, int(row[posCol].I)))
	})
	if err == nil && d.wal != nil {
		// As in CreateIndex: the unlogged bulk build must be durable
		// before the catalog change naming it can commit.
		err = bt.Flush()
	}
	if err != nil {
		return errors.Join(err, bt.Close())
	}
	d.attachTree(bt)
	d.indexes[strings.ToLower(idxName)] = &Index{
		Def:  IndexDef{Name: idxName, Table: aux.Name, Column: coverColumn},
		Tree: bt,
	}
	return d.saveCatalog()
}
