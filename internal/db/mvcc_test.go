package db

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"lexequal/internal/store"
)

// mvccTable opens a WAL-enabled database with one (id INT, val STRING)
// table holding seed committed rows 0..seed-1.
func mvccTable(t *testing.T, seed int) (*DB, *Table) {
	t.Helper()
	d, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	tbl, err := d.CreateTable("t", Schema{{Name: "id", Type: TInt}, {Name: "val", Type: TString}})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < seed; i++ {
		if _, err := tbl.Insert(Row{Int(int64(i)), Str("seed")}); err != nil {
			t.Fatal(err)
		}
	}
	return d, tbl
}

// findRID resolves the RID of the row with the given id as snapshot s
// sees it; ok is false when no visible row carries it.
func findRID(t *testing.T, tbl *Table, s *Snap, id int64) (store.RID, bool) {
	t.Helper()
	var rid store.RID
	found := false
	err := tbl.ScanSnap(s, func(r store.RID, row Row) error {
		if row[0].I == id {
			rid, found = r, true
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return rid, found
}

// TestMVCCWriteWriteConflict exercises first-writer-wins claims: the
// second transaction to claim a row gets ErrSerializationFailure, rolls
// back, and on retry under a fresh snapshot no longer sees the row the
// winner deleted.
func TestMVCCWriteWriteConflict(t *testing.T) {
	d, tbl := mvccTable(t, 4)

	a, err := d.BeginTx()
	if err != nil {
		t.Fatal(err)
	}
	b, err := d.BeginTx()
	if err != nil {
		t.Fatal(err)
	}
	rid, ok := findRID(t, tbl, a.Snapshot(), 2)
	if !ok {
		t.Fatal("seed row 2 missing")
	}
	if err := tbl.DeleteTx(a, rid); err != nil {
		t.Fatalf("winner's claim: %v", err)
	}
	err = tbl.DeleteTx(b, rid)
	if !errors.Is(err, ErrSerializationFailure) {
		t.Fatalf("second claim: got %v, want ErrSerializationFailure", err)
	}
	before := d.MVCCStats()
	if before.Conflicts == 0 {
		t.Error("conflict counter did not move")
	}
	if err := b.Rollback(); err != nil {
		t.Fatalf("loser rollback: %v", err)
	}
	if _, err := a.CommitNoWait(); err != nil {
		t.Fatalf("winner commit: %v", err)
	}

	// Retry: a fresh transaction no longer sees the row, so the retried
	// delete resolves to a no-op instead of a conflict.
	c, err := d.BeginTx()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := findRID(t, tbl, c.Snapshot(), 2); ok {
		t.Error("retry snapshot still sees the deleted row")
	}
	if _, err := c.CommitNoWait(); err != nil {
		t.Fatal(err)
	}
}

// TestMVCCSnapshotIsolation pins down reader visibility: an uncommitted
// insert is invisible to concurrent snapshots, a snapshot taken before
// a commit never sees it (repeatable reads), and one taken after does.
func TestMVCCSnapshotIsolation(t *testing.T) {
	d, tbl := mvccTable(t, 2)

	old := d.AcquireSnap()
	defer d.ReleaseSnap(old)

	w, err := d.BeginTx()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.InsertTx(w, Row{Int(100), Str("new")}); err != nil {
		t.Fatal(err)
	}
	count := func(s *Snap) int {
		n := 0
		if err := tbl.ScanSnap(s, func(store.RID, Row) error { n++; return nil }); err != nil {
			t.Fatal(err)
		}
		return n
	}
	if got := count(d.AcquireSnap()); got != 2 {
		t.Errorf("concurrent snapshot sees %d rows, want 2 (insert uncommitted)", got)
	}
	if got := count(w.Snapshot()); got != 3 {
		t.Errorf("writer sees %d rows, want 3 (own write visible)", got)
	}
	if _, err := w.CommitNoWait(); err != nil {
		t.Fatal(err)
	}
	if got := count(old); got != 2 {
		t.Errorf("pre-commit snapshot sees %d rows, want 2 (repeatable reads)", got)
	}
	if got := count(d.AcquireSnap()); got != 3 {
		t.Errorf("post-commit snapshot sees %d rows, want 3", got)
	}
}

// TestMVCCDisjointWritersBothCommit runs concurrent transactions over
// disjoint rows: none may block or abort, and every write must land.
func TestMVCCDisjointWritersBothCommit(t *testing.T) {
	d, tbl := mvccTable(t, 0)
	const workers, perTx = 8, 5

	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tx, err := d.BeginTx()
			if err != nil {
				errs <- err
				return
			}
			for i := 0; i < perTx; i++ {
				if _, err := tbl.InsertTx(tx, Row{Int(int64(w*perTx + i)), Str("w")}); err != nil {
					errs <- err
					tx.Rollback()
					return
				}
			}
			if _, err := tx.CommitNoWait(); err != nil {
				errs <- err
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("disjoint writer failed: %v", err)
	}
	n := 0
	if err := tbl.ScanSnap(nil, func(store.RID, Row) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != workers*perTx {
		t.Errorf("committed %d rows, want %d", n, workers*perTx)
	}
	if st := d.MVCCStats(); st.Conflicts != 0 {
		t.Errorf("disjoint writers recorded %d conflicts, want 0", st.Conflicts)
	}
}

// mvccOp is one recorded operation of the serial-equivalence schedule:
// an insert of a unique id or a delete of a seed key (resolved by key,
// not RID, so the serial replay can re-resolve it on its own heap).
type mvccOp struct {
	insert bool
	id     int64
}

// TestMVCCSerialEquivalence runs a randomized concurrent schedule and
// replays the transactions that committed — serially, in commit-LSN
// order — on a fresh database. The final visible states must be
// byte-identical. Inserted ids are globally unique and never deleted,
// and deletes target only pre-seeded keys, so first-writer-wins claim
// resolution makes the committed schedule equivalent to its commit
// order. Run under -race this doubles as the data-race probe over the
// whole registry/claim/visibility machinery.
func TestMVCCSerialEquivalence(t *testing.T) {
	const seedRows, workers, txPerWorker = 40, 6, 8
	d, tbl := mvccTable(t, seedRows)

	type committed struct {
		lsn uint64
		ops []mvccOp // the ops that actually applied (noops dropped)
	}
	var mu sync.Mutex
	var log []committed

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)*7919 + 17))
			for txi := 0; txi < txPerWorker; txi++ {
				tx, err := d.BeginTx()
				if err != nil {
					t.Error(err)
					return
				}
				var ops []mvccOp
				aborted := false
				for op := 0; op < 1+rng.Intn(5); op++ {
					if rng.Intn(10) < 6 {
						id := int64(1000 + w*1000 + txi*10 + op)
						if _, err := tbl.InsertTx(tx, Row{Int(id), Str(fmt.Sprintf("w%d", w))}); err != nil {
							t.Error(err)
							aborted = true
							break
						}
						ops = append(ops, mvccOp{insert: true, id: id})
					} else {
						key := int64(rng.Intn(seedRows))
						rid, ok := findRID(t, tbl, tx.Snapshot(), key)
						if !ok {
							continue // already deleted in this snapshot: noop
						}
						if err := tbl.DeleteTx(tx, rid); err != nil {
							if !errors.Is(err, ErrSerializationFailure) {
								t.Errorf("delete key %d: %v", key, err)
							}
							aborted = true
							break
						}
						ops = append(ops, mvccOp{id: key})
					}
				}
				// A random fraction of clean transactions abort too, to
				// keep compensation in the schedule.
				if aborted || rng.Intn(8) == 0 {
					if err := tx.Rollback(); err != nil {
						t.Errorf("rollback: %v", err)
					}
					continue
				}
				lsn, err := tx.CommitNoWait()
				if err != nil {
					t.Errorf("commit: %v", err)
					continue
				}
				mu.Lock()
				log = append(log, committed{lsn: lsn, ops: ops})
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	// Serial replay on a fresh database, in commit order.
	rd, rtbl := mvccTable(t, seedRows)
	sort.Slice(log, func(i, j int) bool { return log[i].lsn < log[j].lsn })
	for _, c := range log {
		tx, err := rd.BeginTx()
		if err != nil {
			t.Fatal(err)
		}
		for _, op := range c.ops {
			if op.insert {
				if _, err := rtbl.InsertTx(tx, Row{Int(op.id), Str("replay")}); err != nil {
					t.Fatal(err)
				}
				continue
			}
			rid, ok := findRID(t, rtbl, tx.Snapshot(), op.id)
			if !ok {
				t.Fatalf("serial replay: key %d deleted twice", op.id)
			}
			if err := rtbl.DeleteTx(tx, rid); err != nil {
				t.Fatalf("serial replay delete %d: %v", op.id, err)
			}
		}
		if _, err := tx.CommitNoWait(); err != nil {
			t.Fatal(err)
		}
	}

	// The val column differs by construction; equivalence is over the
	// visible key sets, which the claim protocol must make identical.
	visible := func(tb *Table) []int64 {
		var ids []int64
		if err := tb.ScanSnap(nil, func(_ store.RID, row Row) error {
			ids = append(ids, row[0].I)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		return ids
	}
	got, want := visible(tbl), visible(rtbl)
	if len(got) != len(want) {
		t.Fatalf("concurrent state has %d rows, serial replay %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("state diverges at row %d: concurrent id %d, serial id %d", i, got[i], want[i])
		}
	}
	if len(d.Check()) != 0 {
		t.Errorf("consistency check after concurrent schedule: %v", d.Check())
	}
}
