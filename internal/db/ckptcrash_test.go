package db

import (
	"errors"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"testing"

	"lexequal/internal/store"
	"lexequal/internal/wal"
)

// ckptSegBytes keeps WAL segments tiny so the checkpoint workloads span
// many of them and segment GC has something to reclaim.
const ckptSegBytes = int64(2 * store.PageSize)

// runCheckpointWorkload is runCrashWorkload with fuzzy checkpoints
// interleaved (three on a clean run) over tiny WAL segments, so a fault
// sweep also kills inside checkpoint page flushes, data fsyncs, the
// checkpoint WAL records, the GC floor pointer write, and the GC
// unlinks themselves. Checkpoint errors are deliberately swallowed: a
// checkpoint that dies must never lose acknowledged data, which is
// exactly what the verifier then checks.
func runCheckpointWorkload(dir string, fs store.VFS) (acked []int64, inflight [][]int64) {
	d, err := OpenOpts(dir, Options{FS: fs, WALSegmentBytes: ckptSegBytes})
	if err != nil {
		return nil, nil
	}
	defer func() { _ = d.Close() }()

	t, err := d.CreateTable("t", Schema{{Name: "id", Type: TInt}, {Name: "name", Type: TString}})
	if err != nil {
		return nil, nil
	}
	if _, err := d.CreateIndex("t_id_idx", "t", "id"); err != nil {
		return acked, nil
	}
	for id := int64(0); id < 4; id++ {
		if _, err := t.Insert(crashRow(id)); err != nil {
			return acked, [][]int64{{id}}
		}
		acked = append(acked, id)
		if id%2 == 1 {
			_, _ = d.Checkpoint()
		}
	}

	// Committed transaction: 4 and 5 appear atomically.
	tx, err := d.Begin()
	if err != nil {
		return acked, nil
	}
	for _, id := range []int64{4, 5} {
		if _, err := t.Insert(crashRow(id)); err != nil {
			return acked, [][]int64{{4, 5}}
		}
	}
	if err := tx.Commit(); err != nil {
		return acked, [][]int64{{4, 5}}
	}
	acked = append(acked, 4, 5)
	_, _ = d.Checkpoint()

	// Rolled-back transaction: 6 and 7 must never persist.
	tx, err = d.Begin()
	if err != nil {
		return acked, nil
	}
	for _, id := range []int64{6, 7} {
		if _, err := t.Insert(crashRow(id)); err != nil {
			return acked, nil
		}
	}
	if err := tx.Rollback(); err != nil {
		return acked, nil
	}

	// Transaction left open at Close: 8 must never persist.
	if _, err := d.Begin(); err != nil {
		return acked, nil
	}
	if _, err := t.Insert(crashRow(8)); err != nil {
		return acked, nil
	}
	return acked, nil
}

// TestCheckpointCrashTortureSweep kills the checkpointing workload at
// every write, sync, and unlink point — covering the checkpoint's page
// write-backs, data fsyncs, its two WAL records, the GC floor pointer,
// and each segment unlink — then reopens cleanly and asserts the same
// recovery contract as the plain torture sweep: acknowledged commits
// survive, losers vanish, integrity and WAL checks pass.
func TestCheckpointCrashTortureSweep(t *testing.T) {
	counter := &store.FaultFS{}
	baseAcked, _ := runCheckpointWorkload(t.TempDir(), counter)
	if len(baseAcked) != 6 {
		t.Fatalf("clean workload acknowledged %d commits, want 6", len(baseAcked))
	}
	writes, syncs, removes := counter.Writes(), counter.Syncs(), counter.Removes()
	if removes == 0 {
		t.Fatal("clean checkpoint workload unlinked no WAL segments; GC has no kill points")
	}
	stride := 1
	if testing.Short() {
		stride = 7
	}

	modes := []store.FaultMode{store.FaultError, store.FaultShort, store.FaultTorn}
	for n := 1; n <= writes; n += stride {
		mode := modes[n%len(modes)]
		dir := filepath.Join(t.TempDir(), "db")
		acked, inflight := runCheckpointWorkload(dir, &store.FaultFS{FailWrite: n, Mode: mode})
		verifyCrashOutcome(t, "ckpt write "+mode.String()+" point "+itoa(n), dir, acked, inflight)
	}
	for n := 1; n <= syncs; n += stride {
		dir := filepath.Join(t.TempDir(), "db")
		acked, inflight := runCheckpointWorkload(dir, &store.FaultFS{FailSync: n})
		verifyCrashOutcome(t, "ckpt sync point "+itoa(n), dir, acked, inflight)
	}
	// GC unlinks are few; sweep every one of them.
	for n := 1; n <= removes; n++ {
		dir := filepath.Join(t.TempDir(), "db")
		acked, inflight := runCheckpointWorkload(dir, &store.FaultFS{FailRemove: n})
		verifyCrashOutcome(t, "gc unlink point "+itoa(n), dir, acked, inflight)
	}
}

// walSegments returns the count and lowest sequence number of the WAL
// segment files under dir.
func walSegments(t *testing.T, dir string) (count int, first uint32) {
	t.Helper()
	entries, err := os.ReadDir(filepath.Join(dir, "wal"))
	if err != nil {
		t.Fatalf("read wal dir: %v", err)
	}
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, ".wal") {
			continue
		}
		seq, err := strconv.ParseUint(strings.TrimSuffix(name, ".wal"), 10, 32)
		if err != nil {
			continue
		}
		count++
		if first == 0 || uint32(seq) < first {
			first = uint32(seq)
		}
	}
	return count, first
}

// TestBoundedRecoveryAfterCheckpoints is the bounded-recovery property
// test: a soak with several checkpoint cycles, crashed by cloning the
// live directory, must recover from the last complete checkpoint's
// floor — skipping everything at or below it and replaying strictly
// less than an identical soak that never checkpointed — and its on-disk
// segment chain must be GC'd down to a bounded suffix of the log.
func TestBoundedRecoveryAfterCheckpoints(t *testing.T) {
	const perCycle, cycles, tail = 3, 4, 2
	total := int64(perCycle*cycles + tail)
	// Segments big enough that the segment holding a checkpoint also
	// holds committed records from just below its floor (so recovery has
	// something to skip), small enough that the soak spans many and GC
	// reclaims some.
	const segBytes = int64(8 * store.PageSize)

	type image struct {
		dir       string
		floor     uint64 // last complete checkpoint's floor (0 = never checkpointed)
		segs      int
		firstSeg  uint32
		reclaimed int
	}
	build := func(name string, checkpoint bool) image {
		dir := filepath.Join(t.TempDir(), name)
		d, err := OpenOpts(dir, Options{WALSegmentBytes: segBytes})
		if err != nil {
			t.Fatal(err)
		}
		tab, err := d.CreateTable("t", Schema{{Name: "id", Type: TInt}, {Name: "name", Type: TString}})
		if err != nil {
			t.Fatal(err)
		}
		img := image{}
		id := int64(0)
		for c := 0; c < cycles; c++ {
			for k := 0; k < perCycle; k++ {
				if _, err := tab.Insert(crashRow(id)); err != nil {
					t.Fatal(err)
				}
				id++
			}
			if !checkpoint {
				continue
			}
			st, err := d.Checkpoint()
			if err != nil {
				t.Fatalf("checkpoint cycle %d: %v", c, err)
			}
			if st.Floor < img.floor {
				t.Fatalf("checkpoint floor regressed: %d after %d", st.Floor, img.floor)
			}
			img.floor = st.Floor
			img.reclaimed += st.SegmentsRemoved
		}
		// Tail work past the last checkpoint: what recovery must replay.
		for k := 0; k < tail; k++ {
			if _, err := tab.Insert(crashRow(id)); err != nil {
				t.Fatal(err)
			}
			id++
		}
		// The crash: clone the live directory, then abandon the original.
		img.dir = filepath.Join(t.TempDir(), name+"-crash")
		copyDir(t, dir, img.dir)
		img.segs, img.firstSeg = walSegments(t, img.dir)
		_ = d.Close()
		return img
	}

	ckpt := build("ckpt", true)
	ctrl := build("ctrl", false)

	if ckpt.floor == 0 {
		t.Fatal("checkpointed soak never declared a redo floor")
	}
	if ckpt.reclaimed == 0 {
		t.Fatal("checkpointed soak never reclaimed a WAL segment")
	}
	if ckpt.firstSeg <= 1 {
		t.Fatalf("checkpointed image still starts at segment %d; GC never advanced the log", ckpt.firstSeg)
	}
	if ckpt.segs >= ctrl.segs {
		t.Fatalf("checkpointed image holds %d segments, control %d; GC did not bound the log", ckpt.segs, ctrl.segs)
	}

	// Partition the surviving log's committed records around the floor
	// now — recovery below truncates the log once it has replayed it.
	expSkipped, expReplayed := countRedoClasses(t, ckpt.dir, ckpt.floor)

	openStats := func(img image) RecoveryStats {
		d, err := Open(img.dir)
		if err != nil {
			t.Fatalf("%s: reopen after crash: %v", img.dir, err)
		}
		rs := d.RecoveryStats()
		for _, is := range d.Check() {
			t.Errorf("%s: integrity: %s", img.dir, is)
		}
		for _, is := range d.CheckWAL() {
			t.Errorf("%s: wal check: %s", img.dir, is)
		}
		tab, ok := d.Table("t")
		if !ok {
			t.Fatalf("%s: table t missing after recovery", img.dir)
		}
		counts := map[int64]int{}
		if err := tab.Scan(func(_ store.RID, row Row) error {
			counts[row[0].I]++
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		for id := int64(0); id < total; id++ {
			if counts[id] != 1 {
				t.Fatalf("%s: id %d occurs %d times after recovery, want 1", img.dir, id, counts[id])
			}
		}
		if err := d.Close(); err != nil {
			t.Fatal(err)
		}
		return rs
	}

	rsCkpt := openStats(ckpt)
	rsCtrl := openStats(ctrl)

	if !rsCkpt.Ran || !rsCtrl.Ran {
		t.Fatalf("recovery did not run: ckpt=%v ctrl=%v", rsCkpt.Ran, rsCtrl.Ran)
	}
	if rsCkpt.Redo.Floor != ckpt.floor {
		t.Fatalf("recovery floor %d, want last complete checkpoint's floor %d", rsCkpt.Redo.Floor, ckpt.floor)
	}
	if rsCtrl.Redo.Floor != 0 || rsCtrl.Redo.Skipped != 0 {
		t.Fatalf("uncheckpointed control recovered with floor %d, skipped %d; want origin",
			rsCtrl.Redo.Floor, rsCtrl.Redo.Skipped)
	}
	if rsCkpt.Redo.Replayed == 0 {
		t.Fatal("recovery replayed nothing; the tail work vanished")
	}
	if rsCkpt.Redo.Replayed >= rsCtrl.Redo.Replayed {
		t.Fatalf("bounded recovery replayed %d records, unbounded control %d",
			rsCkpt.Redo.Replayed, rsCtrl.Redo.Replayed)
	}
	// The partition must be exact: every committed page/catalog record in
	// the surviving log at or below the floor is skipped, every one above
	// it is replayed — nothing more, nothing less.
	if rsCkpt.Redo.Skipped != expSkipped || rsCkpt.Redo.Replayed != expReplayed {
		t.Fatalf("recovery skipped %d and replayed %d; the surviving log holds %d committed records at or below floor %d and %d above it",
			rsCkpt.Redo.Skipped, rsCkpt.Redo.Replayed, expSkipped, ckpt.floor, expReplayed)
	}
}

// countRedoClasses scans the crash image's surviving WAL and partitions
// its committed page/catalog records around floor: those at or below it
// (recovery must skip them) and those above (recovery must replay).
func countRedoClasses(t *testing.T, dir string, floor uint64) (skipped, replayed int) {
	t.Helper()
	l, err := wal.Open(dir, store.OSFS{})
	if err != nil {
		t.Fatalf("open crash image wal: %v", err)
	}
	defer l.Close()
	committed := map[uint64]bool{}
	if err := l.Records(func(r wal.Record) error {
		if r.Type == wal.RecCommit {
			committed[r.TxID] = true
		}
		return nil
	}); err != nil {
		t.Fatalf("scan crash image wal: %v", err)
	}
	err = l.Records(func(r wal.Record) error {
		if (r.Type == wal.RecPage || r.Type == wal.RecCatalog) && committed[r.TxID] {
			if r.LSN <= floor {
				skipped++
			} else {
				replayed++
			}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("scan crash image wal: %v", err)
	}
	return skipped, replayed
}

// damagedCheckpointDir crashes the checkpointing workload late enough
// that at least one checkpoint completed: the resulting image recovers
// from a non-origin redo floor over a GC'd segment chain.
func damagedCheckpointDir(t *testing.T) (string, []int64, [][]int64) {
	t.Helper()
	counter := &store.FaultFS{}
	runCheckpointWorkload(t.TempDir(), counter)
	dir := filepath.Join(t.TempDir(), "db")
	point := counter.Writes() * 5 / 6
	acked, inflight := runCheckpointWorkload(dir, &store.FaultFS{FailWrite: point, Mode: store.FaultTorn})

	// The sweep below is only meaningful if the image really carries a
	// checkpoint: probe a clone and demand a non-origin floor.
	probe := filepath.Join(t.TempDir(), "probe")
	copyDir(t, dir, probe)
	d, err := Open(probe)
	if err != nil {
		t.Fatalf("probe recovery: %v", err)
	}
	rs := d.RecoveryStats()
	_ = d.Close()
	if !rs.Ran || rs.Redo.Floor == 0 {
		t.Fatalf("crash image recovers from origin (ran=%v floor=%d); move the crash point", rs.Ran, rs.Redo.Floor)
	}
	return dir, acked, inflight
}

// TestRecoveryIdempotentAcrossCheckpoints recovers a checkpointed crash
// image twice over and demands identical row state: redo from a
// non-origin floor must be as repeatable as redo from the origin.
func TestRecoveryIdempotentAcrossCheckpoints(t *testing.T) {
	dir, acked, inflight := damagedCheckpointDir(t)
	clone := filepath.Join(t.TempDir(), "clone")
	copyDir(t, dir, clone)

	verifyCrashOutcome(t, "original", dir, acked, inflight)
	first := dumpIDs(t, "clone pass 1", clone)
	second := dumpIDs(t, "clone pass 2", clone)
	if len(first) != len(second) {
		t.Fatalf("recover twice diverged: %v vs %v", first, second)
	}
	for id, n := range first {
		if second[id] != n {
			t.Fatalf("recover twice diverged at id %d: %d vs %d", id, n, second[id])
		}
	}
}

// TestCrashDuringRecoveryAfterCheckpoint crashes recovery itself — at
// every write and sync point of a redo pass that starts from a
// non-origin checkpoint floor — then recovers cleanly and compares
// against a control recovery of the same image.
func TestCrashDuringRecoveryAfterCheckpoint(t *testing.T) {
	dir, acked, inflight := damagedCheckpointDir(t)
	control := filepath.Join(t.TempDir(), "control")
	copyDir(t, dir, control)
	controlState := dumpIDs(t, "control", control)

	probe := filepath.Join(t.TempDir(), "probe2")
	copyDir(t, dir, probe)
	counter := &store.FaultFS{}
	if d, err := OpenOpts(probe, Options{FS: counter}); err == nil {
		d.Close()
	}
	writes, syncs := counter.Writes(), counter.Syncs()
	if writes == 0 {
		t.Fatal("recovery performed no writes; the crash image is not damaged")
	}
	stride := 1
	if testing.Short() {
		stride = 5
	}

	run := func(label string, ffs *store.FaultFS) {
		work := filepath.Join(t.TempDir(), "work")
		copyDir(t, dir, work)
		if d, err := OpenOpts(work, Options{FS: ffs}); err == nil {
			_ = d.Close() // the armed fault may only fire at close time
		}
		verifyCrashOutcome(t, label, work, acked, inflight)
		state := dumpIDs(t, label+" state", work)
		for id, n := range controlState {
			if state[id] != n {
				t.Fatalf("%s: diverged from control at id %d: %d vs %d", label, id, state[id], n)
			}
		}
		for id, n := range state {
			if controlState[id] != n {
				t.Fatalf("%s: extra id %d (%d occurrences) vs control", label, id, n)
			}
		}
	}
	for n := 1; n <= writes; n += stride {
		run("ckpt recovery write point "+itoa(n), &store.FaultFS{FailWrite: n, Mode: store.FaultTorn})
	}
	for n := 1; n <= syncs; n += stride {
		run("ckpt recovery sync point "+itoa(n), &store.FaultFS{FailSync: n})
	}
}

// TestCheckpointENOSPCDegradesGracefully injects a disk-full error at
// every write the checkpoint performs — page write-backs, the deferred
// catalog, the checkpoint WAL records, the GC floor pointer — and
// demands graceful degradation, not a crash: the checkpoint fails with
// an error wrapping ENOSPC, the database keeps serving writes, a
// retried checkpoint succeeds once space is back, and a clean reopen
// sees every acknowledged row. Unless the fault landed in the
// best-effort GC phase (by which point the checkpoint is already
// durable), the log must keep its old redo floor.
func TestCheckpointENOSPCDegradesGracefully(t *testing.T) {
	setup := func(dir string, fs store.VFS) (*DB, *Table) {
		t.Helper()
		d, err := OpenOpts(dir, Options{FS: fs, WALSegmentBytes: ckptSegBytes})
		if err != nil {
			t.Fatal(err)
		}
		tab, err := d.CreateTable("t", Schema{{Name: "id", Type: TInt}, {Name: "name", Type: TString}})
		if err != nil {
			t.Fatal(err)
		}
		for id := int64(0); id < 3; id++ {
			if _, err := tab.Insert(crashRow(id)); err != nil {
				t.Fatal(err)
			}
		}
		return d, tab
	}

	// Probe a clean run for the write-op window the checkpoint spans.
	probeFS := &store.FaultFS{}
	pd, _ := setup(filepath.Join(t.TempDir(), "probe"), probeFS)
	before := probeFS.Writes()
	if _, err := pd.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	after := probeFS.Writes()
	if err := pd.Close(); err != nil {
		t.Fatal(err)
	}
	if after <= before {
		t.Fatal("checkpoint performed no writes; nothing to sweep")
	}

	for n := before + 1; n <= after; n++ {
		label := "enospc at write " + itoa(n)
		dir := filepath.Join(t.TempDir(), "db")
		d, tab := setup(dir, &store.FaultFS{FailWrite: n, Mode: store.FaultDiskFull})

		_, err := d.Checkpoint()
		if err == nil {
			t.Fatalf("%s: checkpoint succeeded with a disk-full fault armed inside it", label)
		}
		if !errors.Is(err, syscall.ENOSPC) {
			t.Fatalf("%s: error %v does not wrap ENOSPC", label, err)
		}
		ws := d.WALStats()
		if ws.CheckpointFailures != 1 {
			t.Fatalf("%s: CheckpointFailures = %d, want 1", label, ws.CheckpointFailures)
		}
		if !strings.Contains(err.Error(), "checkpoint gc") && ws.RedoFloor != 0 {
			t.Fatalf("%s: failed checkpoint moved the redo floor to %d", label, ws.RedoFloor)
		}

		// Disk-full is transient here: serving continues ...
		if _, err := tab.Insert(crashRow(100)); err != nil {
			t.Fatalf("%s: insert after failed checkpoint: %v", label, err)
		}
		// ... and the retried checkpoint succeeds and declares a floor.
		st, err := d.Checkpoint()
		if err != nil {
			t.Fatalf("%s: retried checkpoint: %v", label, err)
		}
		if st.Floor == 0 {
			t.Fatalf("%s: retried checkpoint declared no floor", label)
		}
		if err := d.Close(); err != nil {
			t.Fatalf("%s: close: %v", label, err)
		}

		counts := dumpIDs(t, label, dir)
		for _, id := range []int64{0, 1, 2, 100} {
			if counts[id] != 1 {
				t.Fatalf("%s: id %d occurs %d times after reopen, want 1", label, id, counts[id])
			}
		}
	}
}
