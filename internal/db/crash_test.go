package db

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"lexequal/internal/core"
	"lexequal/internal/script"
	"lexequal/internal/store"
)

// crashTexts is a small multiscript load: big enough to exercise the
// heap, the aux table and every index, small enough that a full
// per-write fault sweep stays fast. The Arabic row is NORESOURCE.
func crashTexts() []core.Text {
	return []core.Text{
		{Value: "Nehru", Lang: script.English},
		{Value: "நேரு", Lang: script.Tamil},
		{Value: "नेहरु", Lang: script.Hindi},
		{Value: "Gandhi", Lang: script.English},
		{Value: "காந்தி", Lang: script.Tamil},
		{Value: "بهنسي", Lang: script.Arabic},
	}
}

func crashLoad(d *DB, op *core.Operator) error {
	_, err := CreateNameTable(d, "names", op, crashTexts(), NameTableSpec{WithAux: true, WithIndexes: true})
	return err
}

// verifyReadable asserts that whatever the reopened database can read
// is RIGHT: rows that decode must match the source texts. Errors are
// fine (detection); wrong data is not.
func verifyReadable(t *testing.T, d *DB, label string) {
	t.Helper()
	texts := crashTexts()
	tbl, ok := d.Table("names")
	if !ok {
		return
	}
	err := tbl.Scan(func(rid store.RID, row Row) error {
		if row[0].T != TInt {
			return fmt.Errorf("row %v has non-int id", rid)
		}
		id := row[0].I
		if id < 0 || int(id) >= len(texts) {
			t.Errorf("%s: row %v has impossible id %d", label, rid, id)
			return nil
		}
		if row[1].T == TNString && row[1].S != texts[id].Value {
			t.Errorf("%s: row %d reads %q, source is %q", label, id, row[1].S, texts[id].Value)
		}
		return nil
	})
	if err != nil && !errors.Is(err, ErrCorrupt) {
		// A scan that fails for a non-corruption reason (e.g. a decode
		// error on a half-written record) is still detection, not silent
		// loss — but it must be an error, never a panic, and is logged
		// for visibility.
		t.Logf("%s: scan stopped: %v", label, err)
	}
}

// verifyComplete asserts the database holds the full load, consistent.
func verifyComplete(t *testing.T, d *DB, label string) {
	t.Helper()
	texts := crashTexts()
	tbl, ok := d.Table("names")
	if !ok {
		t.Errorf("%s: names table missing", label)
		return
	}
	if tbl.Count() != uint64(len(texts)) {
		t.Errorf("%s: %d rows, want %d", label, tbl.Count(), len(texts))
	}
	if issues := d.Check(); len(issues) != 0 {
		t.Errorf("%s: check found %d issues, first: %s", label, len(issues), issues[0])
	}
	verifyReadable(t, d, label)
}

// countCrashOps runs one clean load through a counting FaultFS and
// returns the observed write and sync totals.
func countCrashOps(t *testing.T, op *core.Operator) (writes, syncs int) {
	t.Helper()
	counter := &store.FaultFS{}
	dir := filepath.Join(t.TempDir(), "db")
	d, err := OpenOpts(dir, Options{CachePages: 8, FS: counter})
	if err != nil {
		t.Fatal(err)
	}
	if err := crashLoad(d, op); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if counter.Writes() == 0 || counter.Syncs() == 0 {
		t.Fatalf("counter saw %d writes, %d syncs", counter.Writes(), counter.Syncs())
	}
	return counter.Writes(), counter.Syncs()
}

// TestCrashSweepDirectLoad injects a fault at every write (and every
// sync) of a non-atomic load, then reopens with a clean filesystem.
// The contract: the load fails with the injected error surfaced, the
// reopen either fails with a TYPED corruption error or succeeds, and
// everything readable afterwards matches the source — never a panic,
// never silently wrong data.
func TestCrashSweepDirectLoad(t *testing.T) {
	op := core.MustNew(core.Options{})
	writes, syncs := countCrashOps(t, op)
	t.Logf("clean load: %d writes, %d syncs", writes, syncs)

	stride := 1
	if testing.Short() {
		stride = writes/40 + 1
	}
	for n := 1; n <= writes; n += stride {
		n := n
		t.Run(fmt.Sprintf("write%d_%s", n, store.FaultMode(n%3)), func(t *testing.T) {
			fs := &store.FaultFS{FailWrite: n, Mode: store.FaultMode(n % 3)}
			runCrashCase(t, op, fs)
		})
	}
	for n := 1; n <= syncs; n++ {
		n := n
		t.Run(fmt.Sprintf("sync%d", n), func(t *testing.T) {
			runCrashCase(t, op, &store.FaultFS{FailSync: n})
		})
	}
}

func runCrashCase(t *testing.T, op *core.Operator, fs *store.FaultFS) {
	dir := filepath.Join(t.TempDir(), "db")
	var firstErr error
	d, err := OpenOpts(dir, Options{CachePages: 8, FS: fs})
	if err != nil {
		firstErr = err
	} else {
		if err := crashLoad(d, op); err != nil {
			firstErr = err
		}
		if err := d.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if !fs.Tripped() {
		t.Fatal("fault never fired (sweep bound is stale)")
	}
	if firstErr == nil {
		t.Error("faulted load reported no error")
	} else if !errors.Is(firstErr, store.ErrInjected) {
		t.Errorf("load error does not carry the injected fault: %v", firstErr)
	}

	// Reopen with a healthy filesystem: damage must be detected, not
	// served.
	d2, err := OpenOpts(dir, Options{CachePages: 8})
	if err != nil {
		if !errors.Is(err, ErrCorrupt) {
			t.Errorf("reopen failed with an untyped error: %v", err)
		}
		return
	}
	defer d2.Close()
	// Check may report issues (the load was interrupted); it must not
	// panic, and readable data must be right.
	_ = d2.Check()
	verifyReadable(t, d2, "reopen")
}

// TestCrashSweepAtomicLoad runs the same sweep through BuildAtomic:
// after any fault, the published directory must be either absent (an
// open yields an empty database) or fully loaded — partial loads are
// confined to the staging directory.
func TestCrashSweepAtomicLoad(t *testing.T) {
	op := core.MustNew(core.Options{})

	// Size the sweep against the atomic path (adds a rename + dir ops).
	counter := &store.FaultFS{}
	base := filepath.Join(t.TempDir(), "db")
	if err := BuildAtomic(base, Options{CachePages: 8, FS: counter}, func(d *DB) error {
		return crashLoad(d, op)
	}); err != nil {
		t.Fatal(err)
	}
	d, err := Open(base)
	if err != nil {
		t.Fatal(err)
	}
	verifyComplete(t, d, "clean atomic build")
	d.Close()
	writes, syncs := counter.Writes(), counter.Syncs()

	stride := 1
	if testing.Short() {
		stride = writes/40 + 1
	}
	for n := 1; n <= writes+1; n += stride {
		n := n
		t.Run(fmt.Sprintf("write%d_%s", n, store.FaultMode(n%3)), func(t *testing.T) {
			runAtomicCrashCase(t, op, &store.FaultFS{FailWrite: n, Mode: store.FaultMode(n % 3)})
		})
	}
	for n := 1; n <= syncs+1; n++ {
		n := n
		t.Run(fmt.Sprintf("sync%d", n), func(t *testing.T) {
			runAtomicCrashCase(t, op, &store.FaultFS{FailSync: n})
		})
	}
}

func runAtomicCrashCase(t *testing.T, op *core.Operator, fs *store.FaultFS) {
	dir := filepath.Join(t.TempDir(), "db")
	err := BuildAtomic(dir, Options{CachePages: 8, FS: fs}, func(d *DB) error {
		return crashLoad(d, op)
	})
	if err == nil {
		// Fault index beyond this run's op count: the build completed.
		if fs.Tripped() {
			t.Fatal("fault fired but BuildAtomic reported success")
		}
	} else if !errors.Is(err, store.ErrInjected) {
		t.Errorf("build error does not carry the injected fault: %v", err)
	}

	// The published path is all-or-nothing.
	if _, statErr := os.Stat(dir); os.IsNotExist(statErr) {
		if err == nil {
			t.Error("build succeeded but published nothing")
		}
		return
	}
	d, openErr := Open(dir)
	if openErr != nil {
		t.Fatalf("published db does not open cleanly: %v", openErr)
	}
	defer d.Close()
	if err != nil {
		// Failed build: the published dir may exist in exactly two
		// shapes — an empty database (the fault hit before the load) or
		// a complete one (the fault hit after the publish rename, in the
		// final parent-dir sync). A partial load is never acceptable.
		if got := d.Tables(); len(got) != 0 {
			verifyComplete(t, d, "post-publish crash")
		}
		return
	}
	verifyComplete(t, d, "atomic build")
}

// TestDBCheckReportsFlippedByte builds a database, flips one byte in a
// data page of the names heap, and asserts both the read path and the
// checker call out the damaged page.
func TestDBCheckReportsFlippedByte(t *testing.T) {
	op := core.MustNew(core.Options{})
	dir := filepath.Join(t.TempDir(), "db")
	if err := BuildAtomic(dir, Options{CachePages: 8}, func(d *DB) error {
		return crashLoad(d, op)
	}); err != nil {
		t.Fatal(err)
	}
	heapPath := filepath.Join(dir, "names.heap")
	raw, err := os.ReadFile(heapPath)
	if err != nil {
		t.Fatal(err)
	}
	raw[store.PageSize+10] ^= 0x40 // page 1, payload byte
	if err := os.WriteFile(heapPath, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	d, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	tbl, _ := d.Table("names")
	scanErr := tbl.Scan(func(store.RID, Row) error { return nil })
	if !errors.Is(scanErr, ErrCorrupt) {
		t.Errorf("scan of flipped page = %v, want a corruption error", scanErr)
	}
	var cpe *store.CorruptPageError
	if errors.As(scanErr, &cpe) && cpe.Page != 1 {
		t.Errorf("corruption error names page %d, want 1", cpe.Page)
	}
	issues := d.Check()
	if len(issues) == 0 {
		t.Fatal("Check missed the flipped byte")
	}
	found := false
	for _, is := range issues {
		if is.Object == "table names" {
			found = true
		}
	}
	if !found {
		t.Errorf("Check did not attribute the damage to the names table: %v", issues)
	}
}
