package db

import (
	"reflect"
	"testing"
	"testing/quick"

	"lexequal/internal/script"
)

func openDB(t *testing.T) *DB {
	t.Helper()
	d, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	return d
}

func TestRowCodecRoundTrip(t *testing.T) {
	rows := []Row{
		{},
		{Null()},
		{Int(42), Float(3.25), Str("hello"), NStr("नेहरु", script.Hindi)},
		{Int(-1), Str(""), NStr("", script.Unknown), Null()},
		{Str("embedded\x00nul and ünïcode — नेहरु")},
	}
	for _, r := range rows {
		got, err := DecodeRow(r.Encode(), len(r))
		if err != nil {
			t.Fatalf("decode %v: %v", r, err)
		}
		if !reflect.DeepEqual(got, append(Row{}, r...)) && !(len(got) == 0 && len(r) == 0) {
			t.Errorf("round trip %v -> %v", r, got)
		}
	}
}

func TestRowCodecRejectsGarbage(t *testing.T) {
	if _, err := DecodeRow([]byte{99}, 1); err == nil {
		t.Error("unknown type accepted")
	}
	if _, err := DecodeRow([]byte{byte(TInt), 1, 2}, 1); err == nil {
		t.Error("truncated int accepted")
	}
	r := Row{Int(1)}
	if _, err := DecodeRow(append(r.Encode(), 0xFF), 1); err == nil {
		t.Error("trailing bytes accepted")
	}
	if _, err := DecodeRow(r.Encode(), 2); err == nil {
		t.Error("short row accepted")
	}
}

func TestQuickRowCodec(t *testing.T) {
	f := func(i int64, fl float64, s1, s2 string) bool {
		r := Row{Int(i), Float(fl), Str(s1), NStr(s2, script.Tamil), Null()}
		got, err := DecodeRow(r.Encode(), len(r))
		return err == nil && reflect.DeepEqual(got, r)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestValueCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{Int(1), Int(2), -1},
		{Int(2), Int(2), 0},
		{Float(2.5), Int(2), 1},
		{Int(2), Float(2.0), 0},
		{Str("a"), Str("b"), -1},
		{Null(), Int(0), -1},
		{Null(), Null(), 0},
		{NStr("a", script.Hindi), NStr("a", script.Tamil), 0}, // tag ignored
	}
	for _, c := range cases {
		if got := Compare(c.a, c.b); got != c.want {
			t.Errorf("Compare(%v,%v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
	if Equal(Null(), Null()) {
		t.Error("NULL = NULL should be false")
	}
}

func TestCatalogCreatePersistReopen(t *testing.T) {
	dir := t.TempDir()
	d, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	tbl, err := d.CreateTable("books", Schema{
		{Name: "id", Type: TInt},
		{Name: "author", Type: TNString},
		{Name: "price", Type: TFloat},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		_, err := tbl.Insert(Row{Int(int64(i)), NStr("Nehru", script.English), Float(9.95)})
		if err != nil {
			t.Fatal(err)
		}
	}
	if _, err := d.CreateIndex("books_id", "books", "id"); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	d2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	tbl2, ok := d2.Table("books")
	if !ok {
		t.Fatal("table lost on reopen")
	}
	if tbl2.Count() != 100 {
		t.Errorf("count = %d", tbl2.Count())
	}
	if got := tbl2.Columns.String(); got != "id INT, author NSTRING, price FLOAT" {
		t.Errorf("schema = %q", got)
	}
	ix, ok := d2.IndexOn("books", "id")
	if !ok {
		t.Fatal("index lost on reopen")
	}
	rids, err := ix.Tree.Lookup(42)
	if err != nil || len(rids) != 1 {
		t.Errorf("index lookup = %v, %v", rids, err)
	}
	// Language tags survive.
	rows, err := Collect(NewSeqScan(tbl2))
	if err != nil {
		t.Fatal(err)
	}
	if rows[0][1].Lang != script.English {
		t.Errorf("language tag lost: %v", rows[0][1])
	}
}

func TestCatalogValidation(t *testing.T) {
	d := openDB(t)
	if _, err := d.CreateTable("t", nil); err == nil {
		t.Error("empty schema accepted")
	}
	if _, err := d.CreateTable("t", Schema{{Name: "a", Type: TInt}, {Name: "A", Type: TInt}}); err == nil {
		t.Error("duplicate column accepted")
	}
	if _, err := d.CreateTable("ok", Schema{{Name: "a", Type: TInt}}); err != nil {
		t.Fatal(err)
	}
	if _, err := d.CreateTable("OK", Schema{{Name: "a", Type: TInt}}); err == nil {
		t.Error("case-insensitive duplicate table accepted")
	}
	if _, err := d.CreateIndex("ix", "missing", "a"); err == nil {
		t.Error("index on missing table accepted")
	}
	if _, err := d.CreateIndex("ix", "ok", "missing"); err == nil {
		t.Error("index on missing column accepted")
	}
	tbl, _ := d.Table("ok")
	if _, err := tbl.Insert(Row{Int(1), Int(2)}); err == nil {
		t.Error("arity mismatch accepted")
	}
	if _, err := tbl.Insert(Row{Str("x")}); err == nil {
		t.Error("type mismatch accepted")
	}
	if _, err := tbl.Insert(Row{Null()}); err != nil {
		t.Errorf("NULL insert rejected: %v", err)
	}
}

func TestDropTable(t *testing.T) {
	d := openDB(t)
	d.CreateTable("t", Schema{{Name: "a", Type: TInt}})
	d.CreateIndex("t_a", "t", "a")
	if err := d.DropTable("t"); err != nil {
		t.Fatal(err)
	}
	if _, ok := d.Table("t"); ok {
		t.Error("table survives drop")
	}
	if _, ok := d.Index("t_a"); ok {
		t.Error("index survives table drop")
	}
	if err := d.DropTable("t"); err == nil {
		t.Error("double drop succeeded")
	}
}

func TestIndexMaintainedOnInsert(t *testing.T) {
	d := openDB(t)
	tbl, _ := d.CreateTable("t", Schema{{Name: "a", Type: TInt}})
	d.CreateIndex("t_a", "t", "a")
	tbl.Insert(Row{Int(7)})
	tbl.Insert(Row{Int(7)})
	ix, _ := d.Index("t_a")
	rids, err := ix.Tree.Lookup(7)
	if err != nil || len(rids) != 2 {
		t.Errorf("index after insert = %v, %v", rids, err)
	}
}

func mkTable(t *testing.T, d *DB) *Table {
	t.Helper()
	tbl, err := d.CreateTable("nums", Schema{
		{Name: "id", Type: TInt},
		{Name: "grp", Type: TInt},
		{Name: "label", Type: TString},
	})
	if err != nil {
		t.Fatal(err)
	}
	labels := []string{"alpha", "beta", "gamma", "delta", "epsilon"}
	for i := 0; i < 50; i++ {
		if _, err := tbl.Insert(Row{Int(int64(i)), Int(int64(i % 5)), Str(labels[i%5])}); err != nil {
			t.Fatal(err)
		}
	}
	return tbl
}

func TestSeqScanAndFilter(t *testing.T) {
	d := openDB(t)
	tbl := mkTable(t, d)
	pred := &Binary{Op: "<", L: &ColRef{Idx: 0}, R: &Const{V: Int(10)}}
	rows, err := Collect(&Filter{Child: NewSeqScan(tbl), Pred: pred})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Errorf("filter returned %d rows", len(rows))
	}
	// Reopen semantics: a node can be re-run.
	n := &Filter{Child: NewSeqScan(tbl), Pred: pred}
	r1, _ := Collect(n)
	r2, _ := Collect(n)
	if !reflect.DeepEqual(r1, r2) {
		t.Error("node not re-runnable")
	}
}

func TestProjectAndLimit(t *testing.T) {
	d := openDB(t)
	tbl := mkTable(t, d)
	n := &Limit{
		Child: &Project{
			Child: NewSeqScan(tbl),
			Exprs: []Expr{&ColRef{Idx: 2}, &Binary{Op: "*", L: &ColRef{Idx: 0}, R: &Const{V: Int(2)}}},
			Names: []string{"label", "double"},
		},
		N: 3,
	}
	rows, err := Collect(n)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 || rows[1][1].I != 2 || rows[2][0].S != "gamma" {
		t.Errorf("project/limit rows = %v", rows)
	}
}

func TestIndexScanNode(t *testing.T) {
	d := openDB(t)
	tbl := mkTable(t, d)
	ix, err := d.CreateIndex("nums_grp", "nums", "grp")
	if err != nil {
		t.Fatal(err)
	}
	rows, err := Collect(NewIndexScan(tbl, ix, 3))
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Errorf("index scan returned %d rows", len(rows))
	}
	for _, r := range rows {
		if r[1].I != 3 {
			t.Errorf("index scan leaked row %v", r)
		}
	}
}

func TestNestedLoopJoin(t *testing.T) {
	d := openDB(t)
	tbl := mkTable(t, d)
	pred := &Binary{Op: "AND",
		L: &Binary{Op: "=", L: &ColRef{Idx: 1}, R: &ColRef{Idx: 4}}, // grp = grp
		R: &Binary{Op: "<", L: &ColRef{Idx: 0}, R: &ColRef{Idx: 3}}, // id < id
	}
	rows, err := Collect(&NestedLoopJoin{Left: NewSeqScan(tbl), Right: NewSeqScan(tbl), Pred: pred})
	if err != nil {
		t.Fatal(err)
	}
	// 5 groups of 10 rows: C(10,2) ordered pairs each = 45*5.
	if len(rows) != 225 {
		t.Errorf("NL join rows = %d, want 225", len(rows))
	}
	if len(rows[0]) != 6 {
		t.Errorf("joined row width = %d", len(rows[0]))
	}
}

func TestHashJoinMatchesNestedLoop(t *testing.T) {
	d := openDB(t)
	tbl := mkTable(t, d)
	nl, err := Collect(&NestedLoopJoin{Left: NewSeqScan(tbl), Right: NewSeqScan(tbl),
		Pred: &Binary{Op: "=", L: &ColRef{Idx: 1}, R: &ColRef{Idx: 4}}})
	if err != nil {
		t.Fatal(err)
	}
	hj, err := Collect(&HashJoin{Left: NewSeqScan(tbl), Right: NewSeqScan(tbl), LeftCol: 1, RightCol: 4 - 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(hj) != len(nl) {
		t.Errorf("hash join %d rows, NL join %d", len(hj), len(nl))
	}
}

func TestHashJoinResidual(t *testing.T) {
	d := openDB(t)
	tbl := mkTable(t, d)
	rows, err := Collect(&HashJoin{
		Left: NewSeqScan(tbl), Right: NewSeqScan(tbl), LeftCol: 1, RightCol: 1,
		Residual: &Binary{Op: "<>", L: &ColRef{Idx: 0}, R: &ColRef{Idx: 3}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5*10*9 {
		t.Errorf("residual join rows = %d, want 450", len(rows))
	}
}

func TestGroupByCountHaving(t *testing.T) {
	d := openDB(t)
	tbl := mkTable(t, d)
	g := &GroupBy{
		Child: &Filter{Child: NewSeqScan(tbl), Pred: &Binary{Op: "<", L: &ColRef{Idx: 0}, R: &Const{V: Int(23)}}},
		Keys:  []Expr{&ColRef{Idx: 1}},
		Aggs:  []Aggregate{{Kind: AggCount}, {Kind: AggMax, Arg: &ColRef{Idx: 0}}, {Kind: AggSum, Arg: &ColRef{Idx: 0}}},
	}
	rows, err := Collect(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("groups = %d, want 5", len(rows))
	}
	// Group 0 holds ids 0,5,10,15,20 (5 rows, max 20, sum 50).
	found := false
	for _, r := range rows {
		if r[0].I == 0 {
			found = true
			if r[1].I != 5 || r[2].I != 20 || r[3].I != 50 {
				t.Errorf("group 0 aggregates = %v", r)
			}
		}
	}
	if !found {
		t.Error("group 0 missing")
	}
	// Having.
	g2 := &GroupBy{
		Child:  NewSeqScan(tbl),
		Keys:   []Expr{&ColRef{Idx: 1}},
		Aggs:   []Aggregate{{Kind: AggCount}},
		Having: &Binary{Op: ">", L: &ColRef{Idx: 0}, R: &Const{V: Int(2)}},
	}
	rows2, err := Collect(g2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows2) != 2 {
		t.Errorf("having groups = %d, want 2 (grp 3 and 4)", len(rows2))
	}
}

func TestSortNode(t *testing.T) {
	d := openDB(t)
	tbl := mkTable(t, d)
	rows, err := Collect(&Sort{Child: NewSeqScan(tbl), By: []Expr{&ColRef{Idx: 0}}, Desc: true})
	if err != nil {
		t.Fatal(err)
	}
	if rows[0][0].I != 49 || rows[len(rows)-1][0].I != 0 {
		t.Errorf("sort desc wrong: first %v last %v", rows[0], rows[len(rows)-1])
	}
}

func TestExpressions(t *testing.T) {
	row := Row{Int(10), Str("abc"), Float(2.5)}
	cases := []struct {
		e    Expr
		want Value
	}{
		{&Binary{Op: "+", L: &ColRef{Idx: 0}, R: &Const{V: Int(5)}}, Int(15)},
		{&Binary{Op: "/", L: &ColRef{Idx: 0}, R: &Const{V: Int(4)}}, Float(2.5)},
		{&Binary{Op: "+", L: &ColRef{Idx: 1}, R: &Const{V: Str("d")}}, Str("abcd")},
		{&Binary{Op: "AND", L: &Const{V: Int(1)}, R: &Const{V: Int(0)}}, Int(0)},
		{&Binary{Op: "OR", L: &Const{V: Int(0)}, R: &Const{V: Int(1)}}, Int(1)},
		{&Not{E: &Const{V: Int(0)}}, Int(1)},
		{&Binary{Op: ">=", L: &ColRef{Idx: 2}, R: &Const{V: Float(2.5)}}, Int(1)},
	}
	for _, c := range cases {
		got, err := c.e.Eval(row)
		if err != nil {
			t.Fatalf("%v: %v", c.e, err)
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("%v = %v, want %v", c.e, got, c.want)
		}
	}
	// Errors.
	if _, err := (&Binary{Op: "/", L: &Const{V: Int(1)}, R: &Const{V: Int(0)}}).Eval(row); err == nil {
		t.Error("division by zero accepted")
	}
	if _, err := (&ColRef{Idx: 9}).Eval(row); err == nil {
		t.Error("out-of-range column accepted")
	}
}

func TestFuncRegistryBuiltins(t *testing.T) {
	r := NewFuncRegistry()
	for name, check := range map[string]struct {
		args []Value
		want Value
	}{
		"length": {[]Value{Str("नेहरु")}, Int(5)},
		"lower":  {[]Value{Str("ABC")}, Str("abc")},
		"upper":  {[]Value{Str("abc")}, Str("ABC")},
		"abs":    {[]Value{Int(-3)}, Int(3)},
	} {
		fn, ok := r.Lookup(name)
		if !ok {
			t.Fatalf("builtin %s missing", name)
		}
		got, err := fn(check.args)
		if err != nil || !reflect.DeepEqual(got, check.want) {
			t.Errorf("%s(%v) = %v, %v", name, check.args, got, err)
		}
	}
	if _, ok := r.Lookup("nosuch"); ok {
		t.Error("unknown function found")
	}
}

func TestParseType(t *testing.T) {
	for in, want := range map[string]Type{
		"INT": TInt, "integer": TInt, "FLOAT": TFloat, "text": TString,
		"NVARCHAR": TNString, "nchar": TNString,
	} {
		got, err := ParseType(in)
		if err != nil || got != want {
			t.Errorf("ParseType(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseType("BLOB"); err == nil {
		t.Error("unknown type accepted")
	}
}
