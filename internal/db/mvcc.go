package db

import (
	"encoding/binary"
	"errors"
	"fmt"
	"strings"

	"lexequal/internal/store"
)

// This file implements multi-version concurrency control (DESIGN.md
// §15). Every heap record carries a 16-byte version header — the IDs
// of the transaction that created it (xmin) and, once claimed, the
// transaction that deleted it (xmax). Transaction IDs are the LSNs of
// their begin records, commit timestamps are the LSNs of their commit
// records, and a snapshot is a single number: the highest commit LSN
// at acquisition. A row is in a snapshot when its creator committed at
// or below that horizon and its deleter (if any) did not — so readers
// never block behind writers, and writers conflict only when they
// claim the same row (first writer wins).

// verHdr is the size of the version header prepended to every encoded
// row: xmin then xmax, little-endian uint64 each.
const verHdr = 16

// verXmaxOff is the byte offset of xmax within a heap record — the
// eight bytes a delete claims (and an aborted delete clears) in place.
const verXmaxOff = 8

// ErrSerializationFailure is returned when a write transaction loses a
// first-writer-wins conflict: the row it tried to delete was already
// claimed (or created and not yet committed) by a concurrent
// transaction. The losing transaction should be rolled back and
// retried. Match with errors.Is.
var ErrSerializationFailure = errors.New("db: serialization failure (concurrent write conflict)")

// stampVersion prepends a version header to an encoded row body. An
// xmin of zero is the frozen marker: always visible, used for unlogged
// (DisableWAL) databases and bulk builds. It can never collide with a
// real transaction ID because IDs are begin-record LSNs, which start
// at one and never restart across log resets.
func stampVersion(xmin uint64, body []byte) []byte {
	rec := make([]byte, verHdr+len(body))
	binary.LittleEndian.PutUint64(rec, xmin)
	copy(rec[verHdr:], body)
	return rec
}

// splitVersion splits a heap record into its version header and row
// body. A record too short to carry the header is damage, not a legal
// row: every write path stamps one.
func splitVersion(rec []byte) (xmin, xmax uint64, body []byte, err error) {
	if len(rec) < verHdr {
		return 0, 0, nil, fmt.Errorf("db: record of %d bytes is shorter than the version header: %w",
			len(rec), store.ErrCorrupt)
	}
	return binary.LittleEndian.Uint64(rec),
		binary.LittleEndian.Uint64(rec[verXmaxOff:]),
		rec[verHdr:], nil
}

// Snap is a consistent read snapshot: everything committed at or below
// horizon h is in it, everything later (or still in flight) is not. A
// transaction's snapshot also sees the transaction's own writes (self
// is its ID). Snapshots are registered with the database so version
// garbage collection never removes a row some open snapshot can still
// see; release them promptly.
type Snap struct {
	h    uint64
	self uint64
	reg  bool
}

// AcquireSnap registers a read snapshot at the current commit horizon.
// It returns nil when the database has no WAL (single-writer bulk mode
// has only one state to read); every read helper treats a nil snapshot
// as "latest committed state".
func (d *DB) AcquireSnap() *Snap {
	if d.wal == nil {
		return nil
	}
	d.tmu.Lock()
	s := &Snap{h: d.maxCommit, reg: true}
	d.snaps[s] = struct{}{}
	d.tmu.Unlock()
	return s
}

// ReleaseSnap deregisters a snapshot, letting version GC advance past
// its horizon. Releasing nil or twice is a no-op.
func (d *DB) ReleaseSnap(s *Snap) {
	if s == nil || !s.reg {
		return
	}
	d.tmu.Lock()
	delete(d.snaps, s)
	d.tmu.Unlock()
	s.reg = false
}

// visible reports whether a row version (xmin, xmax) is in snapshot s.
//
// A nil snapshot means the latest committed state — the view every
// pre-MVCC reader had: creation is taken at face value and any claim
// hides the row (claims are cleared in place when their transaction
// aborts, so a standing claim is either committed or in flight and
// about to be).
//
// An ID found in neither the in-flight registry nor the commit
// registry is from before the registry's memory: a transaction that
// committed in an earlier log life, or whose commit record was pruned
// at the GC horizon. Either way it committed below every live
// snapshot's horizon — so an unknown xmin is visible (frozen) and an
// unknown nonzero xmax hides the row.
func (d *DB) visible(s *Snap, xmin, xmax uint64) bool {
	if s == nil {
		return xmax == 0
	}
	d.tmu.RLock()
	defer d.tmu.RUnlock()
	if xmin != 0 && xmin != s.self {
		if _, live := d.inflight[xmin]; live {
			return false
		}
		if at, ok := d.committedAt[xmin]; ok && at > s.h {
			return false
		}
	}
	switch {
	case xmax == 0:
		return true
	case xmax == s.self:
		return false // deleted by this transaction itself
	}
	if _, live := d.inflight[xmax]; live {
		return true // deleter has not committed; the row is still ours
	}
	at, ok := d.committedAt[xmax]
	return ok && at > s.h
}

// oldestHorizonLocked returns the lowest horizon any registered
// snapshot holds (the commit horizon itself when none are open).
// Caller holds tmu.
func (d *DB) oldestHorizonLocked() uint64 {
	h := d.maxCommit
	for s := range d.snaps {
		if s.h < h {
			h = s.h
		}
	}
	return h
}

// commitTx appends the commit record and publishes the commit
// timestamp atomically: no snapshot acquired while the record is in
// flight can observe the commit half-registered. On error nothing is
// published and the transaction is still in flight.
func (d *DB) commitTx(tx *Tx) (uint64, error) {
	d.tmu.Lock()
	defer d.tmu.Unlock()
	lsn, err := d.wal.CommitNoWait(tx.id)
	if err != nil {
		return 0, err
	}
	d.committedAt[tx.id] = lsn
	if lsn > d.maxCommit {
		d.maxCommit = lsn
	}
	delete(d.inflight, tx.id)
	return lsn, nil
}

// deregister removes a transaction from the in-flight registry and
// releases its snapshot (the abort path; commit goes through commitTx).
func (d *DB) deregister(tx *Tx) {
	d.tmu.Lock()
	delete(d.inflight, tx.id)
	d.tmu.Unlock()
	if tx.snap != nil {
		d.ReleaseSnap(tx.snap)
		tx.snap = nil
	}
}

// markUnusable installs the sticky error that fails every later
// operation, if none is installed yet.
func (d *DB) markUnusable(err error) {
	d.stmu.Lock()
	if d.recoveryErr == nil {
		d.recoveryErr = err
	}
	d.stmu.Unlock()
}

// conflictInc counts one lost write-write conflict.
func (d *DB) conflictInc() {
	d.tmu.Lock()
	d.conflicts++
	d.tmu.Unlock()
}

// MVCCStats is a snapshot of the transaction registry.
type MVCCStats struct {
	// Enabled is whether the database runs under MVCC at all (it does
	// whenever the WAL is enabled).
	Enabled bool
	// InFlight and Snapshots count open write transactions and
	// registered read snapshots.
	InFlight  int
	Snapshots int
	// MaxCommit is the commit horizon (the newest commit LSN).
	MaxCommit uint64
	// Conflicts counts write-write conflicts lost (serialization
	// failures returned) this process life.
	Conflicts uint64
	// CommitRegistry is the number of commit timestamps held for
	// visibility checks, pending horizon pruning.
	CommitRegistry int
}

// MVCCStats returns transaction-registry counters.
func (d *DB) MVCCStats() MVCCStats {
	if d.wal == nil {
		return MVCCStats{}
	}
	d.tmu.RLock()
	defer d.tmu.RUnlock()
	return MVCCStats{
		Enabled:        true,
		InFlight:       len(d.inflight),
		Snapshots:      len(d.snaps),
		MaxCommit:      d.maxCommit,
		Conflicts:      d.conflicts,
		CommitRegistry: len(d.committedAt),
	}
}

// txWrite is one tracked heap write of a transaction, in the order
// made. Rolling back replays them in reverse: an insert is tombstoned,
// a claim (delete intent) has its xmax cleared.
type txWrite struct {
	t     *Table
	rid   store.RID
	claim bool
}

// --- versioned table operations ---

// validateRow checks a row against the table schema.
func (t *Table) validateRow(row Row) error {
	if len(row) != len(t.Columns) {
		return fmt.Errorf("db: %s: row has %d values, schema has %d", t.Name, len(row), len(t.Columns))
	}
	for i, v := range row {
		if v.T == TNull {
			continue
		}
		if v.T != t.Columns[i].Type {
			return fmt.Errorf("db: %s.%s: value type %v, column type %v",
				t.Name, t.Columns[i].Name, v.T, t.Columns[i].Type)
		}
	}
	return nil
}

// InsertTx appends a row stamped with tx's ID: invisible to every
// other transaction until tx commits. A nil tx is allowed only without
// a WAL and stamps the frozen marker. Index entries are inserted
// eagerly and never compensated — index readers re-check visibility
// against the heap, so an entry for an aborted row is inert.
func (t *Table) InsertTx(tx *Tx, row Row) (store.RID, error) {
	if err := t.validateRow(row); err != nil {
		return store.RID{}, err
	}
	d := t.db
	var xmin uint64
	var lg store.PageLogger
	if tx != nil {
		if err := tx.usableTx(); err != nil {
			return store.RID{}, err
		}
		xmin = tx.owner.id
		lg = txLogger{d, tx}
	} else if d.wal != nil {
		return store.RID{}, errors.New("db: insert without a transaction on a WAL-enabled database")
	}
	rid, err := t.Heap.InsertTx(stampVersion(xmin, row.Encode()), lg)
	if err != nil {
		tx.noteStoreErr(err)
		return store.RID{}, err
	}
	tx.track(txWrite{t: t, rid: rid})
	for _, ix := range d.indexes {
		if !strings.EqualFold(ix.Def.Table, t.Name) {
			continue
		}
		ci := t.Columns.ColIndex(ix.Def.Column)
		if ci < 0 || row[ci].T != TInt {
			continue
		}
		if err := ix.Tree.InsertTx(uint64(row[ci].I), rid.Pack(), lg); err != nil {
			tx.noteStoreErr(err)
			return store.RID{}, err
		}
	}
	return rid, nil
}

// DeleteTx claims the row at rid for deletion by tx: its xmax is
// stamped in place, hiding the row from tx (immediately) and from
// everyone else once tx commits. First writer wins — if another
// transaction already claimed the row, or created it and has not
// committed, DeleteTx returns ErrSerializationFailure and the caller
// should retry its transaction. The physical record is removed later
// by version GC, once no snapshot can see it.
func (t *Table) DeleteTx(tx *Tx, rid store.RID) error {
	d := t.db
	if tx == nil {
		if d.wal == nil {
			return t.Heap.DeleteTx(rid, nil)
		}
		return errors.New("db: delete without a transaction on a WAL-enabled database")
	}
	if err := tx.usableTx(); err != nil {
		return err
	}
	// The claim itself runs under wmu; bookkeeping on tx — the taint
	// note, the compensation log — takes the db-tier state mutex, which
	// must not nest inside the claim tier, so it happens after the lock
	// is released. The transaction is driven by one goroutine, so no
	// rollback can run between the stamped claim and its track entry.
	if err := t.claimRow(tx, rid); err != nil {
		tx.noteStoreErr(err)
		return err
	}
	tx.track(txWrite{t: t, rid: rid, claim: true})
	return nil
}

// claimRow decides and stamps tx's delete claim on rid. wmu serializes
// the decision against other claims and against abort-time claim
// clearing: between the read and the patch no other transaction can
// stamp or clear this row's xmax.
func (t *Table) claimRow(tx *Tx, rid store.RID) error {
	d := t.db
	self := tx.owner.id
	d.wmu.Lock()
	defer d.wmu.Unlock()
	rec, err := t.Heap.Get(rid)
	if err != nil {
		return err
	}
	xmin, xmax, _, err := splitVersion(rec)
	if err != nil {
		return err
	}
	if xmax == self {
		return fmt.Errorf("db: %s at %v: %w", t.Name, rid, store.ErrDeleted)
	}
	if xmax != 0 {
		// Any standing foreign claim loses us the row: aborted claims
		// are cleared in place while their claimant is still in flight,
		// so a nonzero xmax belongs to a live or committed deleter.
		d.conflictInc()
		return fmt.Errorf("db: delete %s at %v: row claimed by transaction %d: %w",
			t.Name, rid, xmax, ErrSerializationFailure)
	}
	if xmin != 0 && xmin != self {
		d.tmu.RLock()
		_, live := d.inflight[xmin]
		at, known := d.committedAt[xmin]
		d.tmu.RUnlock()
		if live || (known && tx.owner.snap != nil && at > tx.owner.snap.h) {
			// The row's creator is uncommitted or committed after our
			// snapshot: deleting a row we cannot (yet) see is the same
			// write-write race, reported the same way.
			d.conflictInc()
			return fmt.Errorf("db: delete %s at %v: row created by concurrent transaction %d: %w",
				t.Name, rid, xmin, ErrSerializationFailure)
		}
	}
	var selfB [8]byte
	binary.LittleEndian.PutUint64(selfB[:], self)
	return t.Heap.PatchTx(rid, verXmaxOff, selfB[:], txLogger{d, tx})
}

// GetSnap fetches the row at rid as snapshot s sees it; a version
// outside the snapshot reports store.ErrDeleted, same as a tombstone.
func (t *Table) GetSnap(s *Snap, rid store.RID) (Row, error) {
	rec, err := t.Heap.Get(rid)
	if err != nil {
		return nil, err
	}
	xmin, xmax, body, err := splitVersion(rec)
	if err != nil {
		return nil, err
	}
	if !t.db.visible(s, xmin, xmax) {
		return nil, fmt.Errorf("db: %s at %v: %w", t.Name, rid, store.ErrDeleted)
	}
	return DecodeRow(body, len(t.Columns))
}

// ScanSnap invokes fn for each row snapshot s sees, in RID order.
func (t *Table) ScanSnap(s *Snap, fn func(rid store.RID, row Row) error) error {
	n := len(t.Columns)
	return t.Heap.Scan(func(rid store.RID, rec []byte) error {
		xmin, xmax, body, err := splitVersion(rec)
		if err != nil {
			return fmt.Errorf("db: %s at %v: %w", t.Name, rid, err)
		}
		if !t.db.visible(s, xmin, xmax) {
			return nil
		}
		row, err := DecodeRow(body, n)
		if err != nil {
			return fmt.Errorf("db: %s at %v: %w", t.Name, rid, err)
		}
		return fn(rid, row)
	})
}

// scanVersions invokes fn for every physical record — live, claimed,
// or dead — with its version header split off. Bulk index builds use
// it: entries for invisible rows are inert (readers re-check the
// heap), while omitting one would break older snapshots for good.
func (t *Table) scanVersions(fn func(rid store.RID, xmin, xmax uint64, row Row) error) error {
	n := len(t.Columns)
	return t.Heap.Scan(func(rid store.RID, rec []byte) error {
		xmin, xmax, body, err := splitVersion(rec)
		if err != nil {
			return fmt.Errorf("db: %s at %v: %w", t.Name, rid, err)
		}
		row, err := DecodeRow(body, n)
		if err != nil {
			return fmt.Errorf("db: %s at %v: %w", t.Name, rid, err)
		}
		return fn(rid, xmin, xmax, row)
	})
}

// --- loser purge (crash recovery) ---

// purgeLosers removes the on-disk debris of transactions the log shows
// in flight at a crash. Redo skips a loser's own page images, but a
// committed image logged after a loser touched the same page embeds
// the loser's rows; this pass deletes rows a loser created and clears
// claims a loser stamped, by version header. It runs on raw storage
// before the database opens for service (and is idempotent: a crash
// mid-purge reruns redo and purge from the same log).
func (d *DB) purgeLosers(losers map[uint64]bool) (int, error) {
	if len(losers) == 0 {
		return 0, nil
	}
	cat, err := d.loadCatalog()
	if err != nil {
		return 0, err
	}
	purged := 0
	var zero [8]byte
	for _, td := range cat.Tables {
		h, err := store.OpenHeapFS(d.heapPath(td.Name), d.cachePages, d.fs)
		if err != nil {
			return purged, err
		}
		type fix struct {
			rid    store.RID
			remove bool
		}
		var fixes []fix
		err = h.Scan(func(rid store.RID, rec []byte) error {
			if len(rec) < verHdr {
				return nil // not a versioned row; nothing of a loser in it
			}
			xmin, xmax, _, _ := splitVersion(rec)
			switch {
			case losers[xmin]:
				fixes = append(fixes, fix{rid: rid, remove: true})
			case xmax != 0 && losers[xmax]:
				fixes = append(fixes, fix{rid: rid})
			}
			return nil
		})
		// Apply after the scan: Scan holds the heap latch shared for its
		// whole run, so mutating from inside the callback would deadlock.
		if err == nil {
			for _, f := range fixes {
				if f.remove {
					err = h.DeleteTx(f.rid, nil)
				} else {
					err = h.PatchTx(f.rid, verXmaxOff, zero[:], nil)
				}
				if err != nil {
					break
				}
				purged++
			}
		}
		if err == nil {
			err = h.Flush()
		}
		if cErr := h.Close(); err == nil {
			err = cErr
		}
		if err != nil {
			return purged, fmt.Errorf("db: purge crashed-transaction rows of %s: %w", td.Name, err)
		}
	}
	return purged, nil
}

// --- version garbage collection ---

// gcVersions physically removes dead row versions: rows whose deleter
// committed at or below every open snapshot's horizon (or is older
// than the registry remembers). No current or future snapshot can see
// them. The removals run as a regular logged transaction, so a crash
// mid-GC recovers cleanly; afterwards commit-registry entries at or
// below the horizon are pruned — the unknown-ID convention in visible
// gives the same answers without them.
func (d *DB) gcVersions() (int, error) {
	if d.wal == nil {
		return 0, nil
	}
	d.tmu.RLock()
	horizon := d.oldestHorizonLocked()
	d.tmu.RUnlock()
	type victim struct {
		t   *Table
		rid store.RID
	}
	var victims []victim
	d.qmu.RLock()
	tables := make([]*Table, 0, len(d.tables))
	for _, t := range d.tables {
		tables = append(tables, t)
	}
	d.qmu.RUnlock()
	for _, t := range tables {
		err := t.Heap.Scan(func(rid store.RID, rec []byte) error {
			if len(rec) < verHdr {
				return nil
			}
			_, xmax, _, _ := splitVersion(rec)
			if xmax == 0 {
				return nil
			}
			d.tmu.RLock()
			_, live := d.inflight[xmax]
			at, known := d.committedAt[xmax]
			d.tmu.RUnlock()
			if live || (known && at > horizon) {
				return nil // claim still undecided, or some snapshot sees the row
			}
			victims = append(victims, victim{t, rid})
			return nil
		})
		if err != nil {
			return 0, err
		}
	}
	if len(victims) > 0 {
		tx, err := d.BeginTx()
		if err != nil {
			return 0, err
		}
		lg := txLogger{d, tx}
		for _, v := range victims {
			if err := v.t.Heap.DeleteTx(v.rid, lg); err != nil {
				if errors.Is(err, store.ErrDeleted) {
					continue // already physically removed
				}
				tx.noteStoreErr(err)
				return 0, errors.Join(err, tx.Rollback())
			}
		}
		if err := tx.Commit(); err != nil {
			return 0, err
		}
	}
	d.tmu.Lock()
	for id, at := range d.committedAt {
		if at <= horizon {
			delete(d.committedAt, id)
		}
	}
	d.tmu.Unlock()
	return len(victims), nil
}
