package db

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"lexequal/internal/store"
	"lexequal/internal/wal"
)

// Column describes one table column.
type Column struct {
	Name string `json:"name"`
	Type Type   `json:"type"`
}

// Schema is an ordered column list.
type Schema []Column

// ColIndex returns the index of the named column, or -1.
func (s Schema) ColIndex(name string) int {
	for i, c := range s {
		if strings.EqualFold(c.Name, name) {
			return i
		}
	}
	return -1
}

func (s Schema) String() string {
	parts := make([]string, len(s))
	for i, c := range s {
		parts[i] = c.Name + " " + c.Type.String()
	}
	return strings.Join(parts, ", ")
}

// IndexDef describes a secondary B-tree index over one INT column.
type IndexDef struct {
	Name   string `json:"name"`
	Table  string `json:"table"`
	Column string `json:"column"`
}

// tableDef is the persisted form of a table.
type tableDef struct {
	Name    string `json:"name"`
	Columns Schema `json:"columns"`
}

type catalogFile struct {
	Tables  []tableDef `json:"tables"`
	Indexes []IndexDef `json:"indexes"`
}

// Table is an open table: schema plus heap file.
type Table struct {
	Name    string
	Columns Schema
	Heap    *store.HeapFile
	db      *DB
}

// Index is an open secondary index.
type Index struct {
	Def  IndexDef
	Tree *store.BTree
}

// DB is a database: a directory holding a JSON catalog, one heap file
// per table and one B-tree file per index.
//
// Concurrency: the database carries a query-level read/write lock
// (QueryLock) so concurrent SELECT sessions share storage while DML
// and DDL serialize. The SQL session layer acquires it per statement;
// callers driving the db API directly across goroutines must do the
// same. The storage structures underneath carry their own latches, so
// read-only access is safe even without the query lock.
type DB struct {
	dir        string
	cachePages int
	fs         store.VFS
	// qmu is the database-level query lock: read-only statements take
	// it shared, statements that mutate rows or the catalog take it
	// exclusively. It guards the catalog maps and row data alike.
	qmu     sync.RWMutex
	tables  map[string]*Table
	indexes map[string]*Index

	// wal is the write-ahead log; nil when opened with DisableWAL.
	wal *wal.Log
	// txmu serializes ambient write transactions (held from Begin to
	// Commit/Rollback). Concurrent transactions (BeginTx) bypass it.
	txmu sync.Mutex
	// stmu guards the small mutable transaction/lifecycle state below.
	stmu     sync.Mutex
	activeTx *Tx
	commits  uint64

	// tmu guards the MVCC transaction registry: which transactions are
	// in flight, when finished ones committed, and which snapshots are
	// open. Taken briefly per visibility check (shared) and per
	// begin/commit/snapshot transition (exclusive); never held across a
	// storage-latch acquisition (the order is latch, then tmu).
	tmu sync.RWMutex
	// inflight maps open transaction IDs to their Tx.
	inflight map[uint64]*Tx
	// committedAt maps finished transaction IDs to their commit LSNs;
	// entries at or below every open snapshot's horizon are pruned by
	// version GC (visible treats unknown IDs as anciently committed).
	committedAt map[uint64]uint64
	// maxCommit is the commit horizon: the newest commit LSN.
	maxCommit uint64
	// snaps is the registry of open read snapshots, bounding version GC.
	snaps map[*Snap]struct{}
	// conflicts counts first-writer-wins conflicts lost.
	conflicts uint64
	// wmu serializes row-claim decisions (DeleteTx's read-check-stamp)
	// and abort-time claim clearing against each other.
	wmu sync.Mutex
	// catDirty means the catalog has committed changes that are logged
	// but not yet written to catalog.json (the write is deferred to
	// Close; recovery re-creates it from the log after a crash).
	catDirty bool
	closed   bool
	closeErr error
	// recoveryErr is set when an in-place rollback recovery failed;
	// the database is unusable and every operation returns it.
	recoveryErr error

	// replica marks a database opened as a WAL-shipping read replica
	// (Options.Replica): writes are refused, records arriving from the
	// primary are applied via ApplyBatch, and the local log keeps the
	// primary's LSNs (never Reset). Immutable after Open.
	replica bool
	// appliedLSN is the replica's applied horizon (guarded by stmu).
	appliedLSN uint64
	// pmu guards the replica apply loop's side tables below.
	pmu sync.Mutex
	// pending holds bare pagers for replicated page images whose file
	// the catalog does not name yet (a CREATE TABLE's data pages stream
	// before its catalog record commits).
	pending map[string]*store.Pager
	// pendingCat buffers replicated catalog images per transaction
	// until the transaction commits.
	pendingCat map[uint64][]byte
	// replayStats describes the restart replay a replica open ran.
	replayStats wal.ReplayStats

	// ckptMu serializes checkpoints (never held together with qmu or
	// txmu — the checkpoint takes qmu shared in short rounds).
	ckptMu sync.Mutex
	// The remaining checkpoint state is guarded by stmu.
	autoCkptBytes int64
	ckptCount     uint64
	ckptFailures  uint64
	gcRemoved     uint64
	lastCkpt      CheckpointStats
	// recovery describes the crash-recovery pass Open ran.
	recovery RecoveryStats
}

// QueryLock exposes the database-level read/write lock. SELECTs run
// under RLock (sharing storage), DML and DDL under Lock (serialized).
func (d *DB) QueryLock() *sync.RWMutex { return &d.qmu }

// ErrCorrupt re-exports the storage corruption sentinel: every
// detected-damage error (checksum, structure, catalog) matches it with
// errors.Is.
var ErrCorrupt = store.ErrCorrupt

// Options configures Open.
type Options struct {
	// CachePages is the per-file buffer-pool capacity in pages
	// (0 selects the store default).
	CachePages int
	// FS is the virtual filesystem all I/O goes through (nil selects
	// the real one). Tests inject faults here.
	FS store.VFS
	// DisableWAL opens the database without a write-ahead log: no
	// transactions, no crash recovery, mutations reach disk only on
	// Close/flush. Used for one-shot bulk builds that are made atomic
	// by other means (BuildAtomic's stage-and-rename).
	DisableWAL bool
	// WALFlushInterval is the group-commit collection window (0 selects
	// the wal default). Ignored with DisableWAL.
	WALFlushInterval time.Duration
	// WALSegmentBytes overrides the WAL segment roll size (0 selects
	// the wal default of 16 MiB; tests shrink it to exercise
	// multi-segment logs and GC cheaply). Ignored with DisableWAL.
	WALSegmentBytes int64
	// AutoCheckpointBytes is the WAL-growth threshold at which
	// CheckpointIfNeeded fires (0 selects DefaultAutoCheckpointBytes).
	// Ignored with DisableWAL.
	AutoCheckpointBytes int64
	// Replica opens the database as a WAL-shipping read replica: every
	// write is refused, the local log is replayed (not recovered) on
	// open and never reset, and the replication layer feeds primary
	// records in via ApplyBatch. Incompatible with DisableWAL.
	Replica bool
}

// Open opens (creating if necessary) a database directory.
func Open(dir string) (*DB, error) {
	return OpenOpts(dir, Options{})
}

// OpenWithCache opens a database with an explicit per-file buffer-pool
// capacity in pages (0 selects the store default).
func OpenWithCache(dir string, cachePages int) (*DB, error) {
	return OpenOpts(dir, Options{CachePages: cachePages})
}

// OpenOpts opens a database with full options. Unless DisableWAL is
// set, opening runs crash recovery first: committed transactions found
// in the write-ahead log are re-applied to the data files, in-flight
// ones are discarded, and the log is then truncated (a checkpoint —
// everything it proved is now durably in the files).
func OpenOpts(dir string, opts Options) (*DB, error) {
	fs := opts.FS
	if fs == nil {
		fs = store.OSFS{}
	}
	if err := fs.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("db: create dir: %w", err)
	}
	d := &DB{
		dir:         dir,
		cachePages:  opts.CachePages,
		fs:          fs,
		tables:      make(map[string]*Table),
		indexes:     make(map[string]*Index),
		inflight:    make(map[uint64]*Tx),
		committedAt: make(map[uint64]uint64),
		snaps:       make(map[*Snap]struct{}),
		replica:     opts.Replica,
	}
	if opts.Replica && opts.DisableWAL {
		return nil, errors.New("db: a replica requires the WAL")
	}
	if !opts.Replica {
		// A directory carrying a replica state file belongs to a
		// follower: opening it as a primary would run winner/loser
		// recovery and reset a log whose LSNs the primary owns,
		// destroying the follower's ability to resume. Promotion is the
		// explicit step of deleting the state file.
		if _, _, isReplica, err := readReplState(fs, dir); err != nil {
			return nil, err
		} else if isReplica {
			return nil, fmt.Errorf("db: %s is a replica directory; delete its %q file to promote it", dir, replStateName)
		}
	}
	if !opts.DisableWAL {
		l, err := wal.Open(dir, fs)
		if err != nil {
			return nil, fmt.Errorf("db: open wal: %w", err)
		}
		d.wal = l
		if opts.WALFlushInterval > 0 {
			l.SetFlushInterval(opts.WALFlushInterval)
		}
		if opts.WALSegmentBytes > 0 {
			l.SetSegmentBytes(opts.WALSegmentBytes)
		}
		d.autoCkptBytes = opts.AutoCheckpointBytes
		if opts.Replica {
			if err := d.openReplica(); err != nil {
				return nil, errors.Join(err, l.Close())
			}
		} else if l.HasRecords() {
			started := time.Now()
			stats, err := wal.Redo(l, dir, fs)
			if err != nil {
				return nil, errors.Join(fmt.Errorf("db: crash recovery: %w", err), l.Close())
			}
			// Redo skipped the losers' own page images, but committed
			// images can embed loser rows; purge them by version header
			// before the database serves anything. This runs before the
			// log reset so a crash mid-purge reruns redo and purge from
			// the same records.
			purged, err := d.purgeLosers(stats.Losers)
			if err != nil {
				return nil, errors.Join(fmt.Errorf("db: crash recovery: %w", err), l.Close())
			}
			d.recovery = RecoveryStats{
				Ran:      true,
				Duration: time.Since(started),
				Purged:   purged,
				Redo: RedoSummary{
					Floor:    stats.Floor,
					Scanned:  stats.Scanned,
					Skipped:  stats.Skipped,
					Replayed: stats.Replayed,
					Applied:  stats.Applied,
				},
			}
			// Recovery made everything the log proves durable in the
			// data files; drop the history so the log stays small and
			// transaction ids cannot collide with a previous life's.
			if err := l.Reset(); err != nil {
				return nil, errors.Join(fmt.Errorf("db: post-recovery wal reset: %w", err), l.Close())
			}
		}
	}
	// A replica can crash between publishing a replicated catalog and
	// finishing the local index rebuild it triggers; detect index files
	// the catalog names but the directory lacks BEFORE openObjects
	// creates them as empty trees, and rebuild them after.
	var missingIdx []string
	if opts.Replica {
		cat, err := d.loadCatalog()
		if err != nil {
			return nil, errors.Join(err, d.Close())
		}
		for _, id := range cat.Indexes {
			if _, err := fs.Stat(d.indexPath(id.Name)); errors.Is(err, os.ErrNotExist) {
				missingIdx = append(missingIdx, id.Name)
			}
		}
	}
	if err := d.openObjects(); err != nil {
		return nil, errors.Join(err, d.Close())
	}
	if len(missingIdx) > 0 {
		if err := d.rebuildMissingIndexes(missingIdx); err != nil {
			return nil, errors.Join(err, d.Close())
		}
	}
	if err := d.sweepTmpDebris(); err != nil {
		return nil, errors.Join(err, d.Close())
	}
	return d, nil
}

// sweepTmpDebris removes stale temp files left by a crash mid
// atomic-publish (tmp + fsync + rename). An un-renamed tmp is an
// uncommitted write by definition, so deleting it loses nothing. Runs
// after recovery and openObjects so every publisher that could be
// mid-flight has finished and the catalog names every data file.
func (d *DB) sweepTmpDebris() error {
	tmps := []string{
		d.catalogPath() + ".tmp",
		d.catalogPath() + ".redo.tmp",
		filepath.Join(d.dir, replStateName+".tmp"),
	}
	for name := range d.tables {
		tmps = append(tmps, d.heapPath(name)+".redo.tmp")
	}
	for name := range d.indexes {
		tmps = append(tmps, d.indexPath(name)+".redo.tmp")
	}
	for _, tmp := range tmps {
		if err := d.fs.Remove(tmp); err != nil && !errors.Is(err, os.ErrNotExist) {
			return fmt.Errorf("db: sweep debris %s: %w", tmp, err)
		}
	}
	return nil
}

// openObjects loads the catalog and opens (and WAL-attaches) every
// table and index it lists, replacing the current maps.
func (d *DB) openObjects() error {
	cat, err := d.loadCatalog()
	if err != nil {
		return err
	}
	for _, td := range cat.Tables {
		h, err := store.OpenHeapFS(d.heapPath(td.Name), d.cachePages, d.fs)
		if err != nil {
			return err
		}
		d.attachHeap(h)
		d.tables[strings.ToLower(td.Name)] = &Table{Name: td.Name, Columns: td.Columns, Heap: h, db: d}
	}
	for _, id := range cat.Indexes {
		bt, err := store.OpenBTreeFS(d.indexPath(id.Name), d.cachePages, d.fs)
		if err != nil {
			return err
		}
		d.attachTree(bt)
		d.indexes[strings.ToLower(id.Name)] = &Index{Def: id, Tree: bt}
	}
	return nil
}

func (d *DB) catalogPath() string { return filepath.Join(d.dir, "catalog.json") }
func (d *DB) heapPath(table string) string {
	return filepath.Join(d.dir, strings.ToLower(table)+".heap")
}
func (d *DB) indexPath(index string) string {
	return filepath.Join(d.dir, strings.ToLower(index)+".idx")
}

func (d *DB) loadCatalog() (catalogFile, error) {
	var cat catalogFile
	data, err := store.ReadFile(d.fs, d.catalogPath())
	if errors.Is(err, os.ErrNotExist) {
		return cat, nil
	}
	if err != nil {
		return cat, fmt.Errorf("db: read catalog: %w", err)
	}
	if err := json.Unmarshal(data, &cat); err != nil {
		// A half-written catalog is corruption, not a caller mistake.
		return cat, fmt.Errorf("db: parse catalog %s: %v: %w", d.catalogPath(), err, store.ErrCorrupt)
	}
	return cat, nil
}

// marshalCatalog renders the current maps as the persisted catalog.
func (d *DB) marshalCatalog() ([]byte, error) {
	var cat catalogFile
	for _, t := range d.tables {
		cat.Tables = append(cat.Tables, tableDef{Name: t.Name, Columns: t.Columns})
	}
	for _, ix := range d.indexes {
		cat.Indexes = append(cat.Indexes, ix.Def)
	}
	sort.Slice(cat.Tables, func(i, j int) bool { return cat.Tables[i].Name < cat.Tables[j].Name })
	sort.Slice(cat.Indexes, func(i, j int) bool { return cat.Indexes[i].Name < cat.Indexes[j].Name })
	return json.MarshalIndent(cat, "", "  ")
}

// saveCatalog records a catalog change. With the WAL enabled the new
// image is logged under the open transaction and the file write is
// deferred (Close writes it; after a crash, recovery re-creates it from
// the log). Without a WAL it is written through immediately.
func (d *DB) saveCatalog() error {
	data, err := d.marshalCatalog()
	if err != nil {
		return err
	}
	if d.wal != nil {
		d.stmu.Lock()
		tx := d.activeTx
		d.stmu.Unlock()
		if tx == nil {
			return errors.New("db: catalog change outside a transaction")
		}
		// A catalog change cannot be undone by row compensation; mark
		// the transaction so its rollback recovers in place.
		tx.markDDL()
		if _, err := d.wal.LogCatalog(tx.id, filepath.Base(d.catalogPath()), data); err != nil {
			return err
		}
		d.stmu.Lock()
		d.catDirty = true
		d.stmu.Unlock()
		return nil
	}
	return d.writeCatalogNow(data)
}

// writeCatalogNow publishes the catalog bytes via write-temp + fsync +
// rename, so a crash leaves either the old catalog or the new one,
// never a truncated mix.
func (d *DB) writeCatalogNow(data []byte) error {
	tmp := d.catalogPath() + ".tmp"
	f, err := d.fs.OpenFile(tmp, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("db: write catalog: %w", err)
	}
	if _, err := f.WriteAt(data, 0); err != nil {
		return errors.Join(fmt.Errorf("db: write catalog: %w", err), f.Close())
	}
	if err := f.Sync(); err != nil {
		return errors.Join(fmt.Errorf("db: sync catalog: %w", err), f.Close())
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("db: close catalog: %w", err)
	}
	return d.fs.Rename(tmp, d.catalogPath())
}

// Close shuts the database down in WAL order: any open transaction is
// rolled back, the log is synced, the deferred catalog write happens,
// and only then are the page caches flushed (each page write re-checks
// the WAL rule). When every step succeeded the log is truncated — a
// clean checkpoint — so the next open recovers nothing; after any
// error the log is kept so the next open can recover. Close is safe to
// call more than once: later calls return the first outcome, and a
// database whose in-place recovery failed returns that error from
// every Close without touching the files again.
func (d *DB) Close() error {
	d.stmu.Lock()
	if d.closed {
		err := d.closeErr
		if d.recoveryErr != nil {
			err = d.recoveryErr
		}
		d.stmu.Unlock()
		return err
	}
	d.closed = true
	recErr := d.recoveryErr
	d.stmu.Unlock()

	var errs []error
	if recErr == nil && !d.replica {
		// Roll back every transaction still in flight — the ambient one
		// and any concurrent ones. finish() rejects a stale handle, so a
		// racing explicit Commit/Rollback is safe; the rollbacks restore
		// the committed state before anything is flushed. A rollback that
		// had to escalate may set the sticky recovery error, so re-read
		// it afterwards. (A replica's in-flight registry holds the
		// PRIMARY's open transactions — no local Tx exists to roll back;
		// their records stay in the local log above the floor.)
		d.tmu.RLock()
		open := make([]*Tx, 0, len(d.inflight))
		for _, tx := range d.inflight {
			open = append(open, tx)
		}
		d.tmu.RUnlock()
		for _, tx := range open {
			if err := tx.Rollback(); err != nil && !errors.Is(err, errTxDone) {
				errs = append(errs, err)
			}
		}
		d.stmu.Lock()
		recErr = d.recoveryErr
		d.stmu.Unlock()
	}
	if recErr != nil {
		// The database is in an undefined in-memory state: drop the
		// caches without write-back and keep the log for the next
		// open's recovery. Teardown errors cannot outrank the recovery
		// error the caller must see, so they are discarded.
		for _, t := range d.tables {
			_ = t.Heap.Discard()
		}
		for _, ix := range d.indexes {
			_ = ix.Tree.Discard()
		}
		d.tables = map[string]*Table{}
		d.indexes = map[string]*Index{}
		if d.wal != nil {
			_ = d.wal.Close()
		}
		d.stmu.Lock()
		d.closeErr = recErr
		d.stmu.Unlock()
		return recErr
	}
	if d.wal != nil {
		if err := d.wal.Sync(); err != nil {
			errs = append(errs, err)
		}
	}
	d.stmu.Lock()
	catDirty := d.catDirty
	d.stmu.Unlock()
	if catDirty {
		data, err := d.marshalCatalog()
		if err == nil {
			err = d.writeCatalogNow(data)
		}
		if err != nil {
			errs = append(errs, err)
		} else {
			d.stmu.Lock()
			d.catDirty = false
			d.stmu.Unlock()
		}
	}
	for _, t := range d.tables {
		if err := t.Heap.Close(); err != nil {
			errs = append(errs, err)
		}
	}
	for _, ix := range d.indexes {
		if err := ix.Tree.Close(); err != nil {
			errs = append(errs, err)
		}
	}
	d.pmu.Lock()
	for name, pg := range d.pending {
		//lint:ignore walonly pending replica pagers hold pages whose WAL records are already durable; closing them at db close cannot violate the WAL rule
		if err := pg.Close(); err != nil {
			errs = append(errs, err)
		}
		delete(d.pending, name)
	}
	d.pmu.Unlock()
	d.tables = map[string]*Table{}
	d.indexes = map[string]*Index{}
	if d.wal != nil {
		switch {
		case d.replica:
			// A replica must never reset its log (the LSNs belong to the
			// primary). On a clean close everything committed is flushed;
			// advance the persisted floor instead — DeclareFloor clamps
			// it below any of the primary's still-open transactions,
			// whose unflushed images the next replay must reapply.
			if len(errs) == 0 {
				d.stmu.Lock()
				applied := d.appliedLSN
				d.stmu.Unlock()
				floor, err := d.wal.DeclareFloor(applied)
				if err == nil {
					err = writeReplState(d.fs, d.dir, floor, applied)
				}
				if err != nil {
					errs = append(errs, err)
				}
			}
		case len(errs) == 0:
			// Checkpoint only on a fully clean shutdown: with any error
			// above, the log's history is still needed to repair the
			// files on the next open.
			if err := d.wal.Reset(); err != nil {
				errs = append(errs, err)
			}
		}
		if err := d.wal.Close(); err != nil {
			errs = append(errs, err)
		}
	}
	err := errors.Join(errs...)
	d.stmu.Lock()
	d.closeErr = err
	d.stmu.Unlock()
	return err
}

// CreateTable creates a new empty table. The catalog change is
// transactional: standalone it commits durably before returning,
// inside an explicit transaction it becomes part of it.
func (d *DB) CreateTable(name string, cols Schema) (*Table, error) {
	key := strings.ToLower(name)
	if _, exists := d.tables[key]; exists {
		return nil, fmt.Errorf("db: table %q already exists", name)
	}
	if len(cols) == 0 {
		return nil, fmt.Errorf("db: table %q has no columns", name)
	}
	seen := map[string]bool{}
	for _, c := range cols {
		lc := strings.ToLower(c.Name)
		if seen[lc] {
			return nil, fmt.Errorf("db: duplicate column %q in table %q", c.Name, name)
		}
		seen[lc] = true
	}
	tx, err := d.autoBegin()
	if err != nil {
		return nil, err
	}
	// The catalog-map surgery below is invisible to row compensation;
	// only in-place recovery can undo it.
	tx.markDDL()
	t, err := d.createTableTx(key, name, cols)
	if err := d.autoEnd(tx, err); err != nil {
		return nil, err
	}
	return t, nil
}

func (d *DB) createTableTx(key, name string, cols Schema) (*Table, error) {
	h, err := store.OpenHeapFS(d.heapPath(name), d.cachePages, d.fs)
	if err != nil {
		return nil, err
	}
	d.attachHeap(h)
	t := &Table{Name: name, Columns: cols, Heap: h, db: d}
	d.tables[key] = t
	if err := d.saveCatalog(); err != nil {
		return nil, err
	}
	return t, nil
}

// Table returns the named table.
func (d *DB) Table(name string) (*Table, bool) {
	t, ok := d.tables[strings.ToLower(name)]
	return t, ok
}

// Tables lists table names in sorted order.
func (d *DB) Tables() []string {
	out := make([]string, 0, len(d.tables))
	for _, t := range d.tables {
		out = append(out, t.Name)
	}
	sort.Strings(out)
	return out
}

// DropTable removes a table, its heap file and its indexes. The table
// is always dropped from the catalog; close/remove errors on the
// backing files are collected and returned alongside.
//
// With the WAL enabled the drop is its own transaction — file removal
// is not undoable, so the catalog change commits durably first and the
// backing files are removed only afterwards (a crash in between leaves
// harmless orphan files). For the same reason DROP TABLE inside an
// explicit transaction is rejected.
func (d *DB) DropTable(name string) error {
	key := strings.ToLower(name)
	t, ok := d.tables[key]
	if !ok {
		return fmt.Errorf("db: no table %q", name)
	}
	if d.wal == nil {
		errs := []error{t.Heap.Close()}
		delete(d.tables, key)
		errs = append(errs, d.fs.Remove(d.heapPath(name)))
		for ikey, ix := range d.indexes {
			if strings.EqualFold(ix.Def.Table, name) {
				errs = append(errs, ix.Tree.Close(), d.fs.Remove(d.indexPath(ix.Def.Name)))
				delete(d.indexes, ikey)
			}
		}
		errs = append(errs, d.saveCatalog())
		return errors.Join(errs...)
	}
	if d.InTxn() {
		return fmt.Errorf("db: DROP TABLE %s inside an explicit transaction is not supported", name)
	}
	tx, err := d.Begin()
	if err != nil {
		return err
	}
	tx.markDDL()
	var errs []error
	errs = append(errs, t.Heap.Discard())
	delete(d.tables, key)
	doomed := []string{d.heapPath(name)}
	for ikey, ix := range d.indexes {
		if strings.EqualFold(ix.Def.Table, name) {
			errs = append(errs, ix.Tree.Discard())
			doomed = append(doomed, d.indexPath(ix.Def.Name))
			delete(d.indexes, ikey)
		}
	}
	if err := d.saveCatalog(); err != nil {
		// Roll back: recovery reopens the table from the on-disk
		// catalog, undoing the map surgery above.
		errs = append(errs, err, tx.Rollback())
		return errors.Join(errs...)
	}
	if err := tx.Commit(); err != nil {
		errs = append(errs, err)
		return errors.Join(errs...)
	}
	for _, path := range doomed {
		if err := d.fs.Remove(path); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// Insert appends a row after checking it against the schema. The row
// and its index entries are one transaction: standalone, Insert
// returns only after the row is durably committed; inside an explicit
// (ambient) transaction it is covered by that transaction's commit.
// Concurrent sessions use InsertTx with their own transactions.
func (t *Table) Insert(row Row) (store.RID, error) {
	tx, err := t.db.autoBegin()
	if err != nil {
		return store.RID{}, err
	}
	rid, err := t.InsertTx(tx, row)
	if err := t.db.autoEnd(tx, err); err != nil {
		return store.RID{}, err
	}
	return rid, nil
}

// Get fetches the row at rid from the latest committed state; a
// claimed (deleted-but-unpurged) row reports store.ErrDeleted.
func (t *Table) Get(rid store.RID) (Row, error) {
	return t.GetSnap(nil, rid)
}

// Delete removes the row at rid, transactionally like Insert. The
// physical record is only claimed (its version header's xmax stamped);
// version GC removes it once no snapshot can see it. Secondary index
// entries are never removed (B-trees are insert-only here); index
// readers skip entries whose heap fetch reports store.ErrDeleted.
func (t *Table) Delete(rid store.RID) error {
	tx, err := t.db.autoBegin()
	if err != nil {
		return err
	}
	return t.db.autoEnd(tx, t.DeleteTx(tx, rid))
}

// Scan invokes fn for each row of the latest committed state in RID
// order.
func (t *Table) Scan(fn func(rid store.RID, row Row) error) error {
	return t.ScanSnap(nil, fn)
}

// Count returns the number of rows.
func (t *Table) Count() uint64 { return t.Heap.Count() }

// CreateIndex builds a B-tree index over an existing INT column,
// bulk-loading it with a table scan. The bulk build itself is not
// logged — the finished tree is flushed to disk before the catalog
// change that names it commits, so a crash at any point leaves either
// no index or a complete one (possibly as an orphan file).
func (d *DB) CreateIndex(name, table, column string) (*Index, error) {
	key := strings.ToLower(name)
	if _, exists := d.indexes[key]; exists {
		return nil, fmt.Errorf("db: index %q already exists", name)
	}
	t, ok := d.Table(table)
	if !ok {
		return nil, fmt.Errorf("db: no table %q", table)
	}
	ci := t.Columns.ColIndex(column)
	if ci < 0 {
		return nil, fmt.Errorf("db: no column %q in table %q", column, table)
	}
	if t.Columns[ci].Type != TInt {
		return nil, fmt.Errorf("db: index column %s.%s must be INT (got %v)", table, column, t.Columns[ci].Type)
	}
	tx, err := d.autoBegin()
	if err != nil {
		return nil, err
	}
	tx.markDDL()
	ix, err := d.createIndexTx(key, name, t, ci)
	if err := d.autoEnd(tx, err); err != nil {
		return nil, err
	}
	return ix, nil
}

func (d *DB) createIndexTx(key, name string, t *Table, ci int) (*Index, error) {
	bt, err := store.OpenBTreeFS(d.indexPath(name), d.cachePages, d.fs)
	if err != nil {
		return nil, err
	}
	ix := &Index{Def: IndexDef{Name: name, Table: t.Name, Column: t.Columns[ci].Name}, Tree: bt}
	// Index every physical record, even claimed or dead versions: index
	// readers re-check visibility against the heap, so an entry for an
	// invisible row is inert — but omitting one would lose the row for
	// any older snapshot that can still see it.
	err = t.scanVersions(func(rid store.RID, _, _ uint64, row Row) error {
		if row[ci].T != TInt {
			return nil // NULLs are not indexed
		}
		return bt.Insert(uint64(row[ci].I), rid.Pack())
	})
	if err == nil && d.wal != nil {
		// Make the finished build durable before the catalog names it.
		err = bt.Flush()
	}
	if err != nil {
		return nil, errors.Join(err, bt.Close(), d.fs.Remove(d.indexPath(name)))
	}
	// Only incremental maintenance from here on is logged.
	d.attachTree(bt)
	d.indexes[key] = ix
	if err := d.saveCatalog(); err != nil {
		return nil, err
	}
	return ix, nil
}

// Index returns the named index.
func (d *DB) Index(name string) (*Index, bool) {
	ix, ok := d.indexes[strings.ToLower(name)]
	return ix, ok
}

// IndexOn finds an index over table.column, if any.
func (d *DB) IndexOn(table, column string) (*Index, bool) {
	for _, ix := range d.indexes {
		if strings.EqualFold(ix.Def.Table, table) && strings.EqualFold(ix.Def.Column, column) {
			return ix, true
		}
	}
	return nil, false
}

// Indexes lists index names in sorted order.
func (d *DB) Indexes() []string {
	out := make([]string, 0, len(d.indexes))
	for _, ix := range d.indexes {
		out = append(out, ix.Def.Name)
	}
	sort.Strings(out)
	return out
}
