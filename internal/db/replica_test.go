package db

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"lexequal/internal/store"
	"lexequal/internal/wal"
)

// primaryWorkload drives a representative history against a primary:
// DDL, autocommit DML, a committed multi-row transaction, a rolled-back
// transaction, a delete, a second table created and dropped, and one
// transaction left open (in flight on the primary when the stream is
// captured). It returns the open transaction so callers can finish it.
func primaryWorkload(t *testing.T, d *DB) *Tx {
	t.Helper()
	tab, err := d.CreateTable("t", Schema{{Name: "id", Type: TInt}, {Name: "name", Type: TString}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.CreateIndex("t_id_idx", "t", "id"); err != nil {
		t.Fatal(err)
	}
	for id := int64(0); id < 6; id++ {
		if _, err := tab.Insert(Row{Int(id), Str(fmt.Sprintf("row-%d", id))}); err != nil {
			t.Fatal(err)
		}
	}
	tx, err := d.Begin()
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []int64{6, 7} {
		if _, err := tab.Insert(Row{Int(id), Str("txn")}); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	tx, err = d.Begin()
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []int64{8, 9} {
		if _, err := tab.Insert(Row{Int(id), Str("never")}); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}
	// Delete one committed row so tombstones replicate too.
	var victim store.RID
	found := false
	err = tab.Scan(func(rid store.RID, row Row) error {
		if row[0].I == 3 {
			victim, found = rid, true
		}
		return nil
	})
	if err != nil || !found {
		t.Fatalf("victim row not found (err %v)", err)
	}
	if err := tab.Delete(victim); err != nil {
		t.Fatal(err)
	}
	// DDL churn: a table that comes and goes exercises the replica's
	// catalog apply drop path.
	if _, err := d.CreateTable("ephemeral", Schema{{Name: "x", Type: TInt}}); err != nil {
		t.Fatal(err)
	}
	if err := d.DropTable("ephemeral"); err != nil {
		t.Fatal(err)
	}
	// One transaction stays open: in flight on the primary while the
	// stream below is captured.
	open, err := d.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tab.Insert(Row{Int(100), Str("open")}); err != nil {
		t.Fatal(err)
	}
	return open
}

// captureRaws syncs the log and reads every durable record's raw bytes
// from LSN 1.
func captureRaws(t *testing.T, d *DB) [][]byte {
	t.Helper()
	l := d.WAL()
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	last := l.DurableLSN()
	sr, err := l.NewStreamReader(1)
	if err != nil {
		t.Fatal(err)
	}
	defer sr.Close()
	var raws [][]byte
	for {
		raw, rec, err := sr.Next()
		if err != nil {
			t.Fatalf("capture: %v", err)
		}
		raws = append(raws, raw)
		if rec.LSN >= last {
			return raws
		}
	}
}

// applyRaws feeds raw records to the replica in batches of batchSize
// records, skipping records at or below its current log tail (the
// resume rule the follower's handshake implements over the network).
func applyRaws(d *DB, raws [][]byte, batchSize int) error {
	tail := d.WAL().LastLSN()
	var batch []byte
	n := 0
	flush := func() error {
		if n == 0 {
			return nil
		}
		_, err := d.ApplyBatch(batch)
		batch, n = nil, 0
		return err
	}
	for _, raw := range raws {
		lsn, _, _, _, err := wal.ParseRawHeader(raw)
		if err != nil {
			return err
		}
		if lsn <= tail {
			continue
		}
		batch = append(batch, raw...)
		if n++; n >= batchSize {
			if err := flush(); err != nil {
				return err
			}
		}
	}
	return flush()
}

// visibleRows returns table t's committed rows as "id:name" strings in
// sorted order, read through a snapshot — the view a SQL session gets,
// where in-flight transactions' rows are hidden by the MVCC registry.
func visibleRows(t *testing.T, d *DB) []string {
	t.Helper()
	tab, ok := d.Table("t")
	if !ok {
		t.Fatal("table t missing")
	}
	snap := d.AcquireSnap()
	defer d.ReleaseSnap(snap)
	var out []string
	err := tab.ScanSnap(snap, func(_ store.RID, row Row) error {
		out = append(out, fmt.Sprintf("%d:%s", row[0].I, row[1].S))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(out)
	return out
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestReplicaAppliesStream proves a replica fed the primary's raw
// record stream converges to the same visible rows, rejects writes,
// survives restart, and sees a later commit of a transaction that was
// in flight at capture time.
func TestReplicaAppliesStream(t *testing.T) {
	primDir, replDir := t.TempDir(), t.TempDir()
	prim, err := Open(primDir)
	if err != nil {
		t.Fatal(err)
	}
	open := primaryWorkload(t, prim)
	raws := captureRaws(t, prim)
	wantMid := visibleRows(t, prim)

	repl, err := OpenOpts(replDir, Options{Replica: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := applyRaws(repl, raws, 3); err != nil {
		t.Fatalf("apply: %v", err)
	}
	if got, want := repl.AppliedLSN(), prim.WAL().DurableLSN(); got != want {
		t.Fatalf("applied lsn %d, want %d", got, want)
	}
	if got := visibleRows(t, repl); !equalStrings(got, wantMid) {
		t.Fatalf("replica rows %v, primary rows %v", got, wantMid)
	}
	if _, ok := repl.Table("ephemeral"); ok {
		t.Fatal("dropped table survives on the replica")
	}
	// The open transaction's row must be invisible on both sides.
	for _, row := range visibleRows(t, repl) {
		if row == "100:open" {
			t.Fatal("in-flight transaction's row is visible on the replica")
		}
	}

	// Writes are refused.
	if _, err := repl.Begin(); err == nil {
		t.Fatal("replica accepted Begin")
	} else if !errors.Is(err, ErrReplica) {
		t.Fatalf("Begin error %v does not mark ErrReplica", err)
	}
	if _, err := repl.CreateTable("nope", Schema{{Name: "x", Type: TInt}}); err == nil {
		t.Fatal("replica accepted CreateTable")
	}

	// Restart: close and reopen in replica mode; rows persist.
	if err := repl.Close(); err != nil {
		t.Fatalf("replica close: %v", err)
	}
	repl, err = OpenOpts(replDir, Options{Replica: true})
	if err != nil {
		t.Fatalf("replica reopen: %v", err)
	}
	if got := visibleRows(t, repl); !equalStrings(got, wantMid) {
		t.Fatalf("after restart: replica rows %v, want %v", got, wantMid)
	}
	// A plain Open must refuse the replica directory.
	if _, err := Open(replDir); err == nil {
		t.Fatal("non-replica Open accepted a replica directory")
	}

	// The primary commits the open transaction; the replica applies the
	// new records (as a reconnected follower would) and sees the row.
	if err := open.Commit(); err != nil {
		t.Fatal(err)
	}
	raws = captureRaws(t, prim)
	if err := applyRaws(repl, raws, 2); err != nil {
		t.Fatalf("apply after commit: %v", err)
	}
	wantEnd := visibleRows(t, prim)
	if got := visibleRows(t, repl); !equalStrings(got, wantEnd) {
		t.Fatalf("after late commit: replica rows %v, want %v", got, wantEnd)
	}

	for _, is := range repl.Check() {
		t.Errorf("replica integrity: %s", is)
	}
	for _, is := range repl.CheckWAL() {
		t.Errorf("replica wal: %s", is)
	}
	if err := repl.Close(); err != nil {
		t.Fatal(err)
	}
	if err := prim.Close(); err != nil {
		t.Fatal(err)
	}

	// Byte-compare the data files: the stream ships verbatim page
	// images, so with both sides flushed the heaps and indexes must be
	// identical.
	for _, name := range []string{"t.heap", "t_id_idx.idx"} {
		p, err := os.ReadFile(filepath.Join(primDir, name))
		if err != nil {
			t.Fatalf("read primary %s: %v", name, err)
		}
		r, err := os.ReadFile(filepath.Join(replDir, name))
		if err != nil {
			t.Fatalf("read replica %s: %v", name, err)
		}
		if !bytes.Equal(p, r) {
			t.Errorf("%s differs between primary and replica (%d vs %d bytes)", name, len(p), len(r))
		}
	}
}

// TestReplicaCheckpointBoundsRestart proves a replica checkpoint
// persists the floor so restart replays only the tail, and that local
// segment GC never strands the replica.
func TestReplicaCheckpointBoundsRestart(t *testing.T) {
	primDir, replDir := t.TempDir(), t.TempDir()
	prim, err := Open(primDir)
	if err != nil {
		t.Fatal(err)
	}
	defer prim.Close()
	open := primaryWorkload(t, prim)
	defer open.Rollback()
	raws := captureRaws(t, prim)
	want := visibleRows(t, prim)

	repl, err := OpenOpts(replDir, Options{Replica: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := applyRaws(repl, raws, 4); err != nil {
		t.Fatal(err)
	}
	if err := repl.ReplicaCheckpoint(); err != nil {
		t.Fatalf("replica checkpoint: %v", err)
	}
	if err := repl.Close(); err != nil {
		t.Fatal(err)
	}

	repl, err = OpenOpts(replDir, Options{Replica: true})
	if err != nil {
		t.Fatal(err)
	}
	defer repl.Close()
	if got := visibleRows(t, repl); !equalStrings(got, want) {
		t.Fatalf("after checkpointed restart: rows %v, want %v", got, want)
	}
	// The open transaction (no terminator in the log) must be live
	// again after restart: its images were applied but stay invisible.
	if stats := repl.ReplicaReplay(); len(stats.Live) != 1 {
		t.Fatalf("replay found %d live transactions, want 1", len(stats.Live))
	}
}

// TestReplicaCrashTorture kills the replica apply path at every write
// and every sync point, then restarts it and resumes the stream,
// verifying the replica converges to the primary's exact rows with no
// divergence and clean integrity. This is the follower half of the
// crash contract: durability-before-apply plus restart replay must
// cover any torn state.
func TestReplicaCrashTorture(t *testing.T) {
	primDir := t.TempDir()
	prim, err := Open(primDir)
	if err != nil {
		t.Fatal(err)
	}
	defer prim.Close()
	open := primaryWorkload(t, prim)
	defer open.Rollback()
	raws := captureRaws(t, prim)
	want := visibleRows(t, prim)

	// Count run: how many writes and syncs a clean apply performs.
	counter := &store.FaultFS{}
	cleanDir := t.TempDir()
	repl, err := OpenOpts(cleanDir, Options{Replica: true, FS: counter})
	if err != nil {
		t.Fatal(err)
	}
	if err := applyRaws(repl, raws, 3); err != nil {
		t.Fatal(err)
	}
	if err := repl.ReplicaCheckpoint(); err != nil {
		t.Fatal(err)
	}
	if err := repl.Close(); err != nil {
		t.Fatal(err)
	}
	writes, syncs := counter.Writes(), counter.Syncs()
	if writes == 0 || syncs == 0 {
		t.Fatalf("count run saw %d writes, %d syncs", writes, syncs)
	}

	step := 1
	if testing.Short() {
		step = 5
	}
	sweep := func(label string, total int, arm func(n int) *store.FaultFS) {
		for n := 1; n <= total; n += step {
			t.Run(fmt.Sprintf("%s-%d", label, n), func(t *testing.T) {
				dir := t.TempDir()
				crash := arm(n)
				d, err := OpenOpts(dir, Options{Replica: true, FS: crash})
				if err != nil {
					// The open itself hit the fault; restart below covers it.
					if !crash.Tripped() {
						t.Fatalf("open failed without the fault firing: %v", err)
					}
				} else {
					if err := applyRaws(d, raws, 3); err == nil {
						if err := d.ReplicaCheckpoint(); err == nil {
							// The fault may land in Close's flush path.
							_ = d.Close()
						} else {
							_ = d.Close()
						}
					} else {
						_ = d.Close()
					}
				}
				if !crash.Tripped() {
					t.Skip("fault index beyond this run's operations")
				}

				// Restart with a clean filesystem and resume the stream.
				d, err = OpenOpts(dir, Options{Replica: true})
				if err != nil {
					t.Fatalf("reopen after crash: %v", err)
				}
				defer d.Close()
				if err := applyRaws(d, raws, 3); err != nil {
					t.Fatalf("resume after crash: %v", err)
				}
				if got, wantLSN := d.AppliedLSN(), prim.WAL().DurableLSN(); got != wantLSN {
					t.Fatalf("applied lsn %d after resume, want %d", got, wantLSN)
				}
				if got := visibleRows(t, d); !equalStrings(got, want) {
					t.Fatalf("diverged after crash at %s %d: rows %v, want %v", label, n, got, want)
				}
				for _, is := range d.Check() {
					t.Errorf("integrity after crash at %s %d: %s", label, n, is)
				}
				for _, is := range d.CheckWAL() {
					t.Errorf("wal check after crash at %s %d: %s", label, n, is)
				}
			})
		}
	}
	sweep("write", writes, func(n int) *store.FaultFS {
		return &store.FaultFS{FailWrite: n, Mode: store.FaultShort}
	})
	sweep("sync", syncs, func(n int) *store.FaultFS {
		return &store.FaultFS{FailSync: n}
	})
	// Torn writes: the nastiest manifestation, on a subsample.
	tornStep := step * 3
	for n := 1; n <= writes; n += tornStep {
		n := n
		t.Run(fmt.Sprintf("torn-%d", n), func(t *testing.T) {
			dir := t.TempDir()
			crash := &store.FaultFS{FailWrite: n, Mode: store.FaultTorn}
			d, err := OpenOpts(dir, Options{Replica: true, FS: crash})
			if err == nil {
				_ = applyRaws(d, raws, 3)
				_ = d.Close()
			}
			if !crash.Tripped() {
				t.Skip("fault index beyond this run's operations")
			}
			d, err = OpenOpts(dir, Options{Replica: true})
			if err != nil {
				t.Fatalf("reopen after torn write: %v", err)
			}
			defer d.Close()
			if err := applyRaws(d, raws, 3); err != nil {
				t.Fatalf("resume after torn write: %v", err)
			}
			if got := visibleRows(t, d); !equalStrings(got, want) {
				t.Fatalf("diverged after torn write %d: rows %v, want %v", n, got, want)
			}
			for _, is := range d.Check() {
				t.Errorf("integrity after torn write %d: %s", n, is)
			}
		})
	}
}

