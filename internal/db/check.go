package db

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"

	"lexequal/internal/store"
	"lexequal/internal/wal"
)

// CheckIssue is one problem found by DB.Check: the object (table,
// index, or file) it concerns and a human-readable detail.
type CheckIssue struct {
	Object string
	Detail string
}

func (i CheckIssue) String() string { return i.Object + ": " + i.Detail }

// Check verifies the whole database: every heap page and B-tree node
// (storage-level structure plus checksums via the read path), that every
// row decodes against its table's schema, and that the secondary
// indexes agree with the heaps they cover — every index entry points at
// a live matching row (or a tombstone) and every live row is indexed.
// It returns the issues found; an empty slice means the database is
// consistent.
func (d *DB) Check() []CheckIssue {
	var issues []CheckIssue
	add := func(object, format string, args ...interface{}) {
		issues = append(issues, CheckIssue{Object: object, Detail: fmt.Sprintf(format, args...)})
	}

	// Storage-level structure, then row decoding per table.
	for _, name := range d.Tables() {
		t, _ := d.Table(name)
		for _, is := range t.Heap.Check() {
			add("table "+name, "%s", is)
		}
		err := t.Heap.Scan(func(rid store.RID, rec []byte) error {
			_, _, body, err := splitVersion(rec)
			if err != nil {
				add("table "+name, "row %v lacks a version header: %v", rid, err)
				return nil
			}
			row, err := DecodeRow(body, len(t.Columns))
			if err != nil {
				add("table "+name, "row %v does not decode: %v", rid, err)
				return nil
			}
			for i, v := range row {
				if v.T != TNull && v.T != t.Columns[i].Type {
					add("table "+name, "row %v column %s holds %v, schema says %v",
						rid, t.Columns[i].Name, v.T, t.Columns[i].Type)
				}
			}
			return nil
		})
		if err != nil {
			add("table "+name, "scan failed: %v", err)
		}
	}

	for _, name := range d.Indexes() {
		ix, _ := d.Index(name)
		object := "index " + name
		for _, is := range ix.Tree.Check() {
			add(object, "%s", is)
		}
		t, ok := d.Table(ix.Def.Table)
		if !ok {
			add(object, "covers unknown table %q", ix.Def.Table)
			continue
		}
		if ix.Def.Column == coverColumn {
			d.checkCoverIndex(ix, t, add)
			continue
		}
		d.checkColumnIndex(ix, t, add)
	}
	return issues
}

// CheckWAL verifies the write-ahead log and its coupling to the data
// files: every segment header and record checksum, LSN monotonicity
// and transaction well-formedness across the whole log (via wal.Check),
// and the WAL rule's on-disk shadow — no page in any heap or index
// file may carry a pageLSN above the log's durable LSN, because that
// would mean a page reached disk before the record covering it.
//
// Run it on a freshly opened database (as `lexequal check -wal` does):
// recovery has then already replayed the log, so the durable LSN is
// the true high-water mark.
func (d *DB) CheckWAL() []CheckIssue {
	var issues []CheckIssue
	add := func(object, format string, args ...interface{}) {
		issues = append(issues, CheckIssue{Object: object, Detail: fmt.Sprintf(format, args...)})
	}
	if d.wal == nil {
		add("wal", "write-ahead logging is disabled for this database")
		return issues
	}
	for _, detail := range wal.Check(d.wal, false) {
		add("wal", "%s", detail)
	}
	for _, detail := range wal.CheckDir(d.wal) {
		add("wal", "%s", detail)
	}
	// Orphaned temp files in the database directory itself: each of
	// these names is the staging half of a tmp+fsync+rename publish
	// (catalog, replica state, recovery's per-file rebuild); one left
	// behind is crash debris the next publish would silently overwrite,
	// so flag it while the evidence is fresh.
	tmps := []string{
		d.catalogPath() + ".tmp",
		d.catalogPath() + ".redo.tmp",
		filepath.Join(d.dir, replStateName+".tmp"),
	}
	for _, name := range d.Tables() {
		tmps = append(tmps, d.heapPath(name)+".redo.tmp")
	}
	for _, name := range d.Indexes() {
		tmps = append(tmps, d.indexPath(name)+".redo.tmp")
	}
	for _, tmp := range tmps {
		if _, err := d.fs.Stat(tmp); err == nil {
			add("db", "orphaned temp file %s (crash debris from an interrupted atomic publish)", tmp)
		}
	}
	durable := d.wal.DurableLSN()
	checkFile := func(object, path string) {
		f, err := d.fs.OpenFile(path, os.O_RDONLY, 0)
		if err != nil {
			add(object, "open for wal check: %v", err)
			return
		}
		defer f.Close()
		st, err := f.Stat()
		if err != nil {
			add(object, "stat for wal check: %v", err)
			return
		}
		if st.Size()%store.PageSize != 0 {
			add(object, "size %d is not page aligned", st.Size())
		}
		buf := make([]byte, store.PageSize)
		for id := store.PageID(0); int64(id) < st.Size()/store.PageSize; id++ {
			n, err := f.ReadAt(buf, int64(id)*store.PageSize)
			if n != store.PageSize {
				if err == nil || errors.Is(err, io.EOF) {
					err = io.ErrUnexpectedEOF
				}
				add(object, "page %d: read for wal check: %v", id, err)
				return
			}
			// Unverifiable pages are the structural checker's
			// business; here only a verified pageLSN can testify.
			if lsn, ok := store.PageImageLSN(id, buf); ok && lsn > durable {
				add(object, "page %d has pageLSN %d above the durable LSN %d (flushed before its log record)", id, lsn, durable)
			}
		}
	}
	for _, name := range d.Tables() {
		checkFile("table "+name, d.heapPath(name))
	}
	for _, name := range d.Indexes() {
		checkFile("index "+name, d.indexPath(name))
	}
	return issues
}

// checkColumnIndex cross-checks an ordinary column index against its
// table: every entry's RID must fetch a row (or a tombstone — the
// B-trees are insert-only, stale entries are legal) whose column value
// equals the entry key, and every live row with a non-NULL column value
// must have an entry.
func (d *DB) checkColumnIndex(ix *Index, t *Table, add func(object, format string, args ...interface{})) {
	object := "index " + ix.Def.Name
	ci := t.Columns.ColIndex(ix.Def.Column)
	if ci < 0 {
		add(object, "covers unknown column %s.%s", ix.Def.Table, ix.Def.Column)
		return
	}
	indexed := make(map[uint64]bool) // packed RIDs present in the tree
	it := ix.Tree.Seek(0)
	for {
		key, packed, ok := it.Next()
		if !ok {
			break
		}
		indexed[packed] = true
		rid := store.UnpackRID(packed)
		row, err := t.Get(rid)
		if err != nil {
			if errors.Is(err, store.ErrDeleted) {
				continue // tombstoned row; stale entry is legal
			}
			add(object, "entry %d -> %v: heap fetch failed: %v", key, rid, err)
			continue
		}
		if row[ci].T != TInt || uint64(row[ci].I) != key {
			add(object, "entry %d -> %v, but the row's %s is %v", key, rid, ix.Def.Column, row[ci])
		}
	}
	if err := it.Err(); err != nil {
		add(object, "scan failed: %v", err)
		return
	}
	err := t.Scan(func(rid store.RID, row Row) error {
		if row[ci].T != TInt {
			return nil // NULLs are not indexed
		}
		if !indexed[rid.Pack()] {
			add(object, "live row %v (%s = %d) has no entry", rid, ix.Def.Column, row[ci].I)
		}
		return nil
	})
	if err != nil {
		add(object, "table cross-check scan failed: %v", err)
	}
}

// checkCoverIndex cross-checks the covering gram index against the aux
// table: the multiset of (gramhash, id, pos) triples must be identical
// on both sides.
func (d *DB) checkCoverIndex(ix *Index, aux *Table, add func(object, format string, args ...interface{})) {
	object := "index " + ix.Def.Name
	idCol := aux.Columns.ColIndex("id")
	posCol := aux.Columns.ColIndex("pos")
	hashCol := aux.Columns.ColIndex("gramhash")
	if idCol < 0 || posCol < 0 || hashCol < 0 {
		add(object, "aux table %s lacks the id/pos/gramhash columns", aux.Name)
		return
	}
	type triple struct {
		hash uint64
		v    uint64
	}
	var fromTree, fromHeap []triple
	it := ix.Tree.Seek(0)
	for {
		key, v, ok := it.Next()
		if !ok {
			break
		}
		fromTree = append(fromTree, triple{key, v})
	}
	if err := it.Err(); err != nil {
		add(object, "scan failed: %v", err)
		return
	}
	err := aux.Scan(func(_ store.RID, row Row) error {
		fromHeap = append(fromHeap, triple{uint64(row[hashCol].I), CoverValue(row[idCol].I, int(row[posCol].I))})
		return nil
	})
	if err != nil {
		add(object, "aux cross-check scan failed: %v", err)
		return
	}
	less := func(s []triple) func(i, j int) bool {
		return func(i, j int) bool {
			if s[i].hash != s[j].hash {
				return s[i].hash < s[j].hash
			}
			return s[i].v < s[j].v
		}
	}
	sort.Slice(fromTree, less(fromTree))
	sort.Slice(fromHeap, less(fromHeap))
	if len(fromTree) != len(fromHeap) {
		add(object, "holds %d entries, aux table %s holds %d grams", len(fromTree), aux.Name, len(fromHeap))
		return
	}
	for i := range fromTree {
		if fromTree[i] != fromHeap[i] {
			id, pos := UnpackCover(fromTree[i].v)
			add(object, "entry (hash %d, id %d, pos %d) disagrees with the aux table", fromTree[i].hash, id, pos)
			return // one mismatch implies many; report once
		}
	}
}
