package db

import (
	"errors"
	"fmt"
	"sort"

	"lexequal/internal/store"
)

// Node is a volcano-style executor: Open, repeated Next (nil row at
// EOF), Close. Columns describes the output row layout for the planner.
type Node interface {
	Columns() Schema
	Open() error
	Next() (Row, error)
	Close() error
}

// Collect drains a node into a slice (convenience for callers/tests).
func Collect(n Node) ([]Row, error) {
	if err := n.Open(); err != nil {
		return nil, err
	}
	defer n.Close()
	var out []Row
	for {
		row, err := n.Next()
		if err != nil {
			return nil, err
		}
		if row == nil {
			return out, nil
		}
		out = append(out, row)
	}
}

// --- SeqScan ---

// SeqScan reads every row of a table in RID order. It materializes the
// scan lazily via a goroutine-free resumable cursor over heap pages by
// buffering one page's rows at a time. Snap selects which versions the
// scan sees (nil = the latest committed state).
type SeqScan struct {
	Table *Table
	Snap  *Snap

	rows   []Row
	rowIdx int
	done   bool
	err    error
	// cursor state: next heap page to read
	nextPage store.PageID
}

// NewSeqScan returns a sequential scan of t over the latest committed
// state; set Snap for a snapshot view.
func NewSeqScan(t *Table) *SeqScan { return &SeqScan{Table: t} }

// NewSeqScanSnap returns a sequential scan of t as snapshot s sees it.
func NewSeqScanSnap(t *Table, s *Snap) *SeqScan { return &SeqScan{Table: t, Snap: s} }

// Columns implements Node.
func (s *SeqScan) Columns() Schema { return s.Table.Columns }

// Open implements Node.
func (s *SeqScan) Open() error {
	s.rows = nil
	s.rowIdx = 0
	s.done = false
	s.err = nil
	s.nextPage = 1
	return nil
}

// Next implements Node.
func (s *SeqScan) Next() (Row, error) {
	for {
		if s.err != nil {
			return nil, s.err
		}
		if s.rowIdx < len(s.rows) {
			r := s.rows[s.rowIdx]
			s.rowIdx++
			return r, nil
		}
		if s.done {
			return nil, nil
		}
		if err := s.fill(); err != nil {
			s.err = err
			return nil, err
		}
	}
}

// fill buffers the next non-empty heap page.
func (s *SeqScan) fill() error {
	s.rows = s.rows[:0]
	s.rowIdx = 0
	h := s.Table.Heap
	for uint32(s.nextPage) < h.Pager().NumPages() && len(s.rows) == 0 {
		page := s.nextPage
		s.nextPage++
		err := h.ScanPage(page, func(rid store.RID, rec []byte) error {
			xmin, xmax, body, err := splitVersion(rec)
			if err != nil {
				return err
			}
			if !s.Table.db.visible(s.Snap, xmin, xmax) {
				return nil
			}
			row, err := DecodeRow(body, len(s.Table.Columns))
			if err != nil {
				return err
			}
			s.rows = append(s.rows, row)
			return nil
		})
		if err != nil {
			return err
		}
	}
	if len(s.rows) == 0 {
		s.done = true
	}
	return nil
}

// Close implements Node.
func (s *SeqScan) Close() error { return nil }

// --- IndexScan ---

// IndexScan fetches the rows whose indexed column equals Key. Snap
// selects which versions qualify (nil = the latest committed state).
type IndexScan struct {
	Table *Table
	Index *Index
	Key   int64
	Snap  *Snap

	rids []uint64
	idx  int
}

// NewIndexScan returns an equality index scan over the latest
// committed state; set Snap for a snapshot view.
func NewIndexScan(t *Table, ix *Index, key int64) *IndexScan {
	return &IndexScan{Table: t, Index: ix, Key: key}
}

// Columns implements Node.
func (s *IndexScan) Columns() Schema { return s.Table.Columns }

// Open implements Node.
func (s *IndexScan) Open() error {
	rids, err := s.Index.Tree.Lookup(uint64(s.Key))
	if err != nil {
		return err
	}
	s.rids = rids
	s.idx = 0
	return nil
}

// Next implements Node.
func (s *IndexScan) Next() (Row, error) {
	for s.idx < len(s.rids) {
		rid := store.UnpackRID(s.rids[s.idx])
		s.idx++
		row, err := s.Table.GetSnap(s.Snap, rid)
		if errors.Is(err, store.ErrDeleted) {
			continue // stale entry: tombstoned, or invisible to the snapshot
		}
		return row, err
	}
	return nil, nil
}

// Close implements Node.
func (s *IndexScan) Close() error { return nil }

// --- Filter ---

// Filter passes rows for which Pred is true.
type Filter struct {
	Child Node
	Pred  Expr
}

// Columns implements Node.
func (f *Filter) Columns() Schema { return f.Child.Columns() }

// Open implements Node.
func (f *Filter) Open() error { return f.Child.Open() }

// Next implements Node.
func (f *Filter) Next() (Row, error) {
	for {
		row, err := f.Child.Next()
		if err != nil || row == nil {
			return nil, err
		}
		v, err := f.Pred.Eval(row)
		if err != nil {
			return nil, err
		}
		if v.Bool() {
			return row, nil
		}
	}
}

// Close implements Node.
func (f *Filter) Close() error { return f.Child.Close() }

// --- Project ---

// Project evaluates output expressions per row.
type Project struct {
	Child Node
	Exprs []Expr
	Names []string
	types []Type
}

// Columns implements Node.
func (p *Project) Columns() Schema {
	cols := make(Schema, len(p.Exprs))
	for i := range p.Exprs {
		name := ""
		if i < len(p.Names) {
			name = p.Names[i]
		}
		cols[i] = Column{Name: name, Type: TNull} // output types are dynamic
	}
	return cols
}

// Open implements Node.
func (p *Project) Open() error { return p.Child.Open() }

// Next implements Node.
func (p *Project) Next() (Row, error) {
	row, err := p.Child.Next()
	if err != nil || row == nil {
		return nil, err
	}
	out := make(Row, len(p.Exprs))
	for i, e := range p.Exprs {
		v, err := e.Eval(row)
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

// Close implements Node.
func (p *Project) Close() error { return p.Child.Close() }

// --- Limit ---

// Limit stops after N rows.
type Limit struct {
	Child Node
	N     int
	seen  int
}

// Columns implements Node.
func (l *Limit) Columns() Schema { return l.Child.Columns() }

// Open implements Node.
func (l *Limit) Open() error { l.seen = 0; return l.Child.Open() }

// Next implements Node.
func (l *Limit) Next() (Row, error) {
	if l.seen >= l.N {
		return nil, nil
	}
	row, err := l.Child.Next()
	if err != nil || row == nil {
		return nil, err
	}
	l.seen++
	return row, nil
}

// Close implements Node.
func (l *Limit) Close() error { return l.Child.Close() }

// --- NestedLoopJoin ---

// NestedLoopJoin joins two inputs with an arbitrary predicate over the
// concatenated row. The right input is materialized on Open — the plan
// the paper's optimizer chose for the UDF join (§5.1).
type NestedLoopJoin struct {
	Left, Right Node
	Pred        Expr // may be nil for a cross join

	rightRows []Row
	leftRow   Row
	rIdx      int
}

// Columns implements Node.
func (j *NestedLoopJoin) Columns() Schema {
	return append(append(Schema{}, j.Left.Columns()...), j.Right.Columns()...)
}

// Open implements Node.
func (j *NestedLoopJoin) Open() error {
	if err := j.Left.Open(); err != nil {
		return err
	}
	rows, err := Collect(j.Right)
	if err != nil {
		return err
	}
	j.rightRows = rows
	j.leftRow = nil
	j.rIdx = 0
	return nil
}

// Next implements Node.
func (j *NestedLoopJoin) Next() (Row, error) {
	for {
		if j.leftRow == nil {
			row, err := j.Left.Next()
			if err != nil || row == nil {
				return nil, err
			}
			j.leftRow = row
			j.rIdx = 0
		}
		for j.rIdx < len(j.rightRows) {
			r := j.rightRows[j.rIdx]
			j.rIdx++
			combined := append(append(Row{}, j.leftRow...), r...)
			if j.Pred == nil {
				return combined, nil
			}
			v, err := j.Pred.Eval(combined)
			if err != nil {
				return nil, err
			}
			if v.Bool() {
				return combined, nil
			}
		}
		j.leftRow = nil
	}
}

// Close implements Node.
func (j *NestedLoopJoin) Close() error { return j.Left.Close() }

// --- HashJoin ---

// HashJoin equi-joins on one column from each side; the right side is
// the build input.
type HashJoin struct {
	Left, Right Node
	LeftCol     int
	RightCol    int
	Residual    Expr // optional predicate over the concatenated row

	table   map[string][]Row
	leftRow Row
	matches []Row
	mIdx    int
}

// Columns implements Node.
func (j *HashJoin) Columns() Schema {
	return append(append(Schema{}, j.Left.Columns()...), j.Right.Columns()...)
}

// Open implements Node.
func (j *HashJoin) Open() error {
	if err := j.Left.Open(); err != nil {
		return err
	}
	rows, err := Collect(j.Right)
	if err != nil {
		return err
	}
	j.table = make(map[string][]Row)
	for _, r := range rows {
		v := r[j.RightCol]
		if v.IsNull() {
			continue
		}
		k := v.hashKey()
		j.table[k] = append(j.table[k], r)
	}
	j.leftRow = nil
	j.matches = nil
	j.mIdx = 0
	return nil
}

// Next implements Node.
func (j *HashJoin) Next() (Row, error) {
	for {
		for j.mIdx < len(j.matches) {
			r := j.matches[j.mIdx]
			j.mIdx++
			combined := append(append(Row{}, j.leftRow...), r...)
			if j.Residual == nil {
				return combined, nil
			}
			v, err := j.Residual.Eval(combined)
			if err != nil {
				return nil, err
			}
			if v.Bool() {
				return combined, nil
			}
		}
		row, err := j.Left.Next()
		if err != nil || row == nil {
			return nil, err
		}
		j.leftRow = row
		v := row[j.LeftCol]
		if v.IsNull() {
			j.matches = nil
		} else {
			j.matches = j.table[v.hashKey()]
		}
		j.mIdx = 0
	}
}

// Close implements Node.
func (j *HashJoin) Close() error { return j.Left.Close() }

// --- GroupBy ---

// AggKind is an aggregate function.
type AggKind uint8

// Supported aggregates.
const (
	AggCount AggKind = iota // COUNT(*)
	AggMin
	AggMax
	AggSum
)

// Aggregate specifies one aggregate output.
type Aggregate struct {
	Kind AggKind
	Arg  Expr // nil for COUNT(*)
}

// GroupBy hash-aggregates its input. Output rows are the group-by
// values followed by the aggregate values, in specification order;
// Having (evaluated over that output row) filters groups. Output order
// is deterministic (sorted by group key).
type GroupBy struct {
	Child  Node
	Keys   []Expr
	Aggs   []Aggregate
	Having Expr

	out []Row
	idx int
}

// Columns implements Node.
func (g *GroupBy) Columns() Schema {
	cols := make(Schema, len(g.Keys)+len(g.Aggs))
	return cols
}

// Open implements Node.
func (g *GroupBy) Open() error {
	if err := g.Child.Open(); err != nil {
		return err
	}
	defer g.Child.Close()
	type groupState struct {
		keys Row
		aggs []Value
		n    []int64
	}
	groups := map[string]*groupState{}
	var order []string
	for {
		row, err := g.Child.Next()
		if err != nil {
			return err
		}
		if row == nil {
			break
		}
		keyVals := make(Row, len(g.Keys))
		keyStr := ""
		for i, k := range g.Keys {
			v, err := k.Eval(row)
			if err != nil {
				return err
			}
			keyVals[i] = v
			keyStr += v.hashKey() + "\x01"
		}
		gs, ok := groups[keyStr]
		if !ok {
			gs = &groupState{keys: keyVals, aggs: make([]Value, len(g.Aggs)), n: make([]int64, len(g.Aggs))}
			groups[keyStr] = gs
			order = append(order, keyStr)
		}
		for i, agg := range g.Aggs {
			switch agg.Kind {
			case AggCount:
				gs.n[i]++
			case AggMin, AggMax, AggSum:
				v, err := agg.Arg.Eval(row)
				if err != nil {
					return err
				}
				if v.IsNull() {
					continue
				}
				switch {
				case gs.n[i] == 0:
					gs.aggs[i] = v
				case agg.Kind == AggMin && Compare(v, gs.aggs[i]) < 0:
					gs.aggs[i] = v
				case agg.Kind == AggMax && Compare(v, gs.aggs[i]) > 0:
					gs.aggs[i] = v
				case agg.Kind == AggSum:
					a, _ := gs.aggs[i].AsFloat()
					b, _ := v.AsFloat()
					if gs.aggs[i].T == TInt && v.T == TInt {
						gs.aggs[i] = Int(gs.aggs[i].I + v.I)
					} else {
						gs.aggs[i] = Float(a + b)
					}
				}
				gs.n[i]++
			}
		}
	}
	// Grand aggregate over an empty input still yields one row (COUNT(*)
	// of an empty table is 0, not no-rows).
	if len(g.Keys) == 0 && len(groups) == 0 {
		key := ""
		groups[key] = &groupState{aggs: make([]Value, len(g.Aggs)), n: make([]int64, len(g.Aggs))}
		order = append(order, key)
	}
	sort.Strings(order)
	g.out = g.out[:0]
	for _, k := range order {
		gs := groups[k]
		row := append(Row{}, gs.keys...)
		for i, agg := range g.Aggs {
			if agg.Kind == AggCount {
				row = append(row, Int(gs.n[i]))
			} else {
				row = append(row, gs.aggs[i])
			}
		}
		if g.Having != nil {
			v, err := g.Having.Eval(row)
			if err != nil {
				return err
			}
			if !v.Bool() {
				continue
			}
		}
		g.out = append(g.out, row)
	}
	g.idx = 0
	return nil
}

// Next implements Node.
func (g *GroupBy) Next() (Row, error) {
	if g.idx >= len(g.out) {
		return nil, nil
	}
	r := g.out[g.idx]
	g.idx++
	return r, nil
}

// Close implements Node.
func (g *GroupBy) Close() error { return nil }

// --- Sort ---

// Sort orders its input by the given expressions (ascending; Desc flips
// all of them).
type Sort struct {
	Child Node
	By    []Expr
	Desc  bool

	out []Row
	idx int
}

// Columns implements Node.
func (s *Sort) Columns() Schema { return s.Child.Columns() }

// Open implements Node.
func (s *Sort) Open() error {
	rows, err := Collect(s.Child)
	if err != nil {
		return err
	}
	type keyed struct {
		row  Row
		keys Row
	}
	ks := make([]keyed, len(rows))
	for i, r := range rows {
		keys := make(Row, len(s.By))
		for j, e := range s.By {
			v, err := e.Eval(r)
			if err != nil {
				return err
			}
			keys[j] = v
		}
		ks[i] = keyed{row: r, keys: keys}
	}
	sort.SliceStable(ks, func(i, j int) bool {
		for k := range s.By {
			c := Compare(ks[i].keys[k], ks[j].keys[k])
			if c != 0 {
				if s.Desc {
					return c > 0
				}
				return c < 0
			}
		}
		return false
	})
	s.out = make([]Row, len(ks))
	for i := range ks {
		s.out[i] = ks[i].row
	}
	s.idx = 0
	return nil
}

// Next implements Node.
func (s *Sort) Next() (Row, error) {
	if s.idx >= len(s.out) {
		return nil, nil
	}
	r := s.out[s.idx]
	s.idx++
	return r, nil
}

// Close implements Node.
func (s *Sort) Close() error { return nil }

// --- Values (literal rows, used by INSERT ... VALUES and tests) ---

// Values yields a fixed set of rows.
type Values struct {
	Rows []Row
	Cols Schema
	idx  int
}

// Columns implements Node.
func (v *Values) Columns() Schema { return v.Cols }

// Open implements Node.
func (v *Values) Open() error { v.idx = 0; return nil }

// Next implements Node.
func (v *Values) Next() (Row, error) {
	if v.idx >= len(v.Rows) {
		return nil, nil
	}
	r := v.Rows[v.idx]
	v.idx++
	return r, nil
}

// Close implements Node.
func (v *Values) Close() error { return nil }

// errNode is a Node that fails on Open (used by planners to defer
// errors).
type errNode struct{ err error }

func (e *errNode) Columns() Schema    { return nil }
func (e *errNode) Open() error        { return e.err }
func (e *errNode) Next() (Row, error) { return nil, e.err }
func (e *errNode) Close() error       { return nil }

// ErrNode wraps an error as a Node.
func ErrNode(format string, args ...any) Node {
	return &errNode{err: fmt.Errorf(format, args...)}
}
