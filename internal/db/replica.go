package db

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"

	"lexequal/internal/store"
	"lexequal/internal/wal"
)

// This file is the follower half of WAL-shipping replication
// (DESIGN.md §16): a database opened with Options.Replica applies the
// primary's raw log records — appended to its own local log with their
// primary LSNs preserved, made durable, then installed through the
// buffer pool — and serves read-only snapshots at its applied horizon.
// The primary half (streaming, retention) lives in internal/wal and
// internal/repl.

// ErrReplica is returned (wrapped) by every mutating operation on a
// replica database: writes originate on the primary only.
var ErrReplica = errors.New("db: read-only replica")

// replStateName is the replica state file in the database directory:
// its presence marks the directory as a replica (a normal Open refuses
// it; deleting the file is the promotion step), and its floor field is
// the replica's checkpoint redo floor — the local log is replayed from
// there on restart. Layout: 8-byte magic, floor uint64, applied uint64
// (the applied LSN at the last checkpoint, for diagnostics), CRC32-C
// over the first 24 bytes.
const replStateName = "replstate"

// IsReplicaDir reports whether dir carries the replica state marker —
// callers use it to pick Options.Replica before opening (the marker is
// what makes a plain Open refuse the directory).
func IsReplicaDir(dir string) bool {
	_, err := store.OSFS{}.Stat(filepath.Join(dir, replStateName))
	return err == nil
}

const replStateMagic = "LXQLREPL"

// readReplState loads the replica state file. ok reports whether one
// exists; a present-but-damaged file is corruption (losing the floor
// silently would replay from the log origin, which after local GC no
// longer exists).
func readReplState(fs store.VFS, dir string) (floor, applied uint64, ok bool, err error) {
	path := filepath.Join(dir, replStateName)
	data, err := store.ReadFile(fs, path)
	if errors.Is(err, os.ErrNotExist) {
		return 0, 0, false, nil
	}
	if err != nil {
		return 0, 0, false, fmt.Errorf("db: read replica state: %w", err)
	}
	if len(data) != 28 || string(data[:8]) != replStateMagic ||
		crc32.Checksum(data[:24], crc32.MakeTable(crc32.Castagnoli)) != binary.LittleEndian.Uint32(data[24:]) {
		return 0, 0, false, &store.CorruptFileError{Path: path, Reason: "replica state file fails verification"}
	}
	return binary.LittleEndian.Uint64(data[8:]), binary.LittleEndian.Uint64(data[16:]), true, nil
}

// writeReplState durably publishes the replica state file (write-temp +
// fsync + rename + dir sync, like every other pointer file here).
func writeReplState(fs store.VFS, dir string, floor, applied uint64) error {
	buf := make([]byte, 28)
	copy(buf, replStateMagic)
	binary.LittleEndian.PutUint64(buf[8:], floor)
	binary.LittleEndian.PutUint64(buf[16:], applied)
	binary.LittleEndian.PutUint32(buf[24:], crc32.Checksum(buf[:24], crc32.MakeTable(crc32.Castagnoli)))
	path := filepath.Join(dir, replStateName)
	tmp := path + ".tmp"
	f, err := fs.OpenFile(tmp, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("db: write replica state: %w", err)
	}
	if _, err := f.WriteAt(buf, 0); err != nil {
		return errors.Join(fmt.Errorf("db: write replica state: %w", err), f.Close())
	}
	if err := f.Sync(); err != nil {
		return errors.Join(fmt.Errorf("db: sync replica state: %w", err), f.Close())
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := fs.Rename(tmp, path); err != nil {
		return fmt.Errorf("db: publish replica state: %w", err)
	}
	return store.SyncDir(fs, dir)
}

// openReplica is the replica arm of OpenOpts: instead of winner/loser
// crash recovery it replays the local log from the persisted floor —
// applying EVERY page image, because the live apply loop does too,
// leaving visibility to the MVCC version headers — re-registers the
// transactions still in flight on the primary, and leaves the log
// intact (its LSNs belong to the primary; Reset would sever the
// stream).
func (d *DB) openReplica() error {
	l := d.wal
	floor, _, _, err := readReplState(d.fs, d.dir)
	if err != nil {
		return err
	}
	stats, err := wal.Replay(l, d.dir, d.fs, floor)
	if err != nil {
		return fmt.Errorf("db: replica replay: %w", err)
	}
	l.SeedLiveTxs(stats.Live)
	if floor > 0 {
		if _, err := l.DeclareFloor(floor); err != nil {
			return err
		}
	}
	for txid := range stats.Live {
		// Presence in the registry is all visibility needs; there is no
		// local Tx to roll back (the primary owns these transactions),
		// and Close knows not to try.
		d.inflight[txid] = nil
	}
	// Catalog images logged by still-open transactions re-enter the
	// pending buffer: the commit record yet to arrive from the stream
	// publishes them, an abort drops them — exactly as if the crash had
	// not happened.
	if len(stats.LiveCatalogs) > 0 && d.pendingCat == nil {
		d.pendingCat = make(map[uint64][]byte)
	}
	for txid, img := range stats.LiveCatalogs {
		d.pendingCat[txid] = img
	}
	// Horizon seed: every commit in the local log is at or below the
	// last LSN, so a snapshot at LastLSN sees all of them (the registry
	// is empty — unknown xmin reads as anciently committed).
	d.maxCommit = l.LastLSN()
	d.appliedLSN = l.LastLSN()
	d.replayStats = stats
	return nil
}

// rebuildMissingIndexes recreates index files the catalog names but the
// directory lacks — the crash window between a replicated catalog
// publish and the local index rebuild it triggers. Must run with the
// database private (open path) or qmu held exclusively.
func (d *DB) rebuildMissingIndexes(missing []string) error {
	for _, name := range missing {
		ix, ok := d.indexes[strings.ToLower(name)]
		if !ok {
			continue
		}
		// openObjects opened a fresh empty tree at the final path (the
		// pager creates absent files); discard it and rebuild staged.
		if err := ix.Tree.Discard(); err != nil {
			return err
		}
		if err := d.fs.Remove(d.indexPath(name)); err != nil && !errors.Is(err, os.ErrNotExist) {
			return err
		}
		if err := d.rebuildIndex(ix); err != nil {
			return err
		}
	}
	return nil
}

// rebuildIndex bulk-builds one index from its table's current heap
// state, staged at a temporary path and renamed into place, mirroring
// the primary's unlogged CreateIndex build (bulk index builds are not
// in the log, so every replica rebuilds locally; the apply loop is at
// the catalog record's transaction commit when it calls this, which
// under the primary's exclusive DDL lock is exactly the state the
// primary built from). The caller owns exclusivity and the index map
// entry; this fills in ix.Tree.
func (d *DB) rebuildIndex(ix *Index) error {
	t, ok := d.tables[strings.ToLower(ix.Def.Table)]
	if !ok {
		return fmt.Errorf("db: replica index %s references missing table %s", ix.Def.Name, ix.Def.Table)
	}
	ci := t.Columns.ColIndex(ix.Def.Column)
	if ci < 0 {
		return fmt.Errorf("db: replica index %s references missing column %s.%s",
			ix.Def.Name, ix.Def.Table, ix.Def.Column)
	}
	build := d.indexPath(ix.Def.Name) + ".build"
	if err := d.fs.Remove(build); err != nil && !errors.Is(err, os.ErrNotExist) {
		return err
	}
	bt, err := store.OpenBTreeFS(build, d.cachePages, d.fs)
	if err != nil {
		return err
	}
	err = t.scanVersions(func(rid store.RID, _, _ uint64, row Row) error {
		if row[ci].T != TInt {
			return nil // NULLs are not indexed
		}
		return bt.Insert(uint64(row[ci].I), rid.Pack())
	})
	if err == nil {
		err = bt.Flush()
	}
	if cerr := bt.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return errors.Join(err, d.fs.Remove(build))
	}
	if err := d.fs.Rename(build, d.indexPath(ix.Def.Name)); err != nil {
		return err
	}
	if err := store.SyncDir(d.fs, d.dir); err != nil {
		return err
	}
	tree, err := store.OpenBTreeFS(d.indexPath(ix.Def.Name), d.cachePages, d.fs)
	if err != nil {
		return err
	}
	d.attachTree(tree)
	ix.Tree = tree
	return nil
}

// pendingPager returns (opening if needed) the bare pager replicated
// page images land in when their file is not yet named by the catalog —
// a CREATE TABLE's data pages stream before its catalog record. The
// pager has no WAL hook: the apply loop syncs the log before applying a
// batch, so the WAL rule holds by construction, and steal is safe on a
// replica (restart replay reapplies everything above the floor).
func (d *DB) pendingPager(name string) (*store.Pager, error) {
	if pg, ok := d.pending[name]; ok {
		return pg, nil
	}
	pg, err := store.OpenPagerFS(filepath.Join(d.dir, name), d.cachePages, d.fs)
	if err != nil {
		return nil, err
	}
	if d.pending == nil {
		d.pending = make(map[string]*store.Pager)
	}
	d.pending[name] = pg
	return pg, nil
}

// applyPage installs one replicated page image into whichever object
// owns the record's file. Holds qmu shared: the maps stay put, and the
// object's own exclusive latch (inside ApplyImage) excludes readers of
// that structure; other structures keep serving.
func (d *DB) applyPage(r wal.Record) error {
	d.qmu.RLock()
	defer d.qmu.RUnlock()
	for _, t := range d.tables {
		if filepath.Base(d.heapPath(t.Name)) == r.File {
			return t.Heap.ApplyImage(r.Page, r.Payload, r.LSN)
		}
	}
	for _, ix := range d.indexes {
		if filepath.Base(d.indexPath(ix.Def.Name)) == r.File {
			return ix.Tree.ApplyImage(r.Page, r.Payload, r.LSN)
		}
	}
	if r.File == filepath.Base(d.catalogPath()) {
		return fmt.Errorf("db: replica apply: page record targets the catalog file")
	}
	d.pmu.Lock()
	pg, err := d.pendingPager(r.File)
	d.pmu.Unlock()
	if err != nil {
		return err
	}
	return pg.ApplyImage(r.Page, r.Payload, r.LSN)
}

// applyCatalog installs a replicated catalog image at its transaction's
// commit: surviving objects are left open (closing them would drop
// in-flight dirty pages another transaction still needs), dropped ones
// are discarded and their files removed, new tables adopt any pending
// bare pager for their file, and new indexes are rebuilt locally (bulk
// builds are not logged). The new catalog is published to disk last, so
// a crash replays this record's transaction and converges.
func (d *DB) applyCatalog(data []byte) error {
	var cat catalogFile
	if err := json.Unmarshal(data, &cat); err != nil {
		return fmt.Errorf("db: replica parse catalog image: %v: %w", err, store.ErrCorrupt)
	}
	d.qmu.Lock()
	defer d.qmu.Unlock()
	newTables := make(map[string]tableDef, len(cat.Tables))
	for _, td := range cat.Tables {
		newTables[strings.ToLower(td.Name)] = td
	}
	newIndexes := make(map[string]IndexDef, len(cat.Indexes))
	for _, id := range cat.Indexes {
		newIndexes[strings.ToLower(id.Name)] = id
	}
	var errs []error
	for key, ix := range d.indexes {
		if _, keep := newIndexes[key]; keep {
			continue
		}
		errs = append(errs, ix.Tree.Discard())
		if err := d.fs.Remove(d.indexPath(ix.Def.Name)); err != nil && !errors.Is(err, os.ErrNotExist) {
			errs = append(errs, err)
		}
		delete(d.indexes, key)
	}
	for key, t := range d.tables {
		if _, keep := newTables[key]; keep {
			continue
		}
		errs = append(errs, t.Heap.Discard())
		if err := d.fs.Remove(d.heapPath(t.Name)); err != nil && !errors.Is(err, os.ErrNotExist) {
			errs = append(errs, err)
		}
		delete(d.tables, key)
	}
	if err := errors.Join(errs...); err != nil {
		return err
	}
	for key, td := range newTables {
		if t, ok := d.tables[key]; ok {
			t.Name, t.Columns = td.Name, td.Columns
			continue
		}
		base := filepath.Base(d.heapPath(td.Name))
		d.pmu.Lock()
		pg, pend := d.pending[base]
		if pend {
			delete(d.pending, base)
		}
		d.pmu.Unlock()
		if pend {
			// The streamed pages are in this pager's cache; flush them
			// so the heap open below reads a complete file. Their WAL
			// records are already durable (ApplyBatch syncs before it
			// applies), so the direct flush cannot outrun the log.
			//lint:ignore walonly pending pagers hold pre-publish streamed pages whose records are already durable
			if err := errors.Join(pg.Flush(), pg.Close()); err != nil {
				return err
			}
		}
		h, err := store.OpenHeapFS(d.heapPath(td.Name), d.cachePages, d.fs)
		if err != nil {
			return err
		}
		d.attachHeap(h)
		d.tables[key] = &Table{Name: td.Name, Columns: td.Columns, Heap: h, db: d}
	}
	for key, def := range newIndexes {
		if _, ok := d.indexes[key]; ok {
			continue
		}
		ix := &Index{Def: def}
		if err := d.rebuildIndex(ix); err != nil {
			return err
		}
		d.indexes[key] = ix
	}
	raw, err := d.marshalCatalog()
	if err != nil {
		return err
	}
	return d.writeCatalogNow(raw)
}

// applyRecord dispatches one replicated record. Records arrive in LSN
// order; the transaction registry transitions keep concurrent read
// snapshots consistent (a row's images are all applied before its
// commit becomes visible).
func (d *DB) applyRecord(r wal.Record) error {
	switch r.Type {
	case wal.RecBegin:
		d.tmu.Lock()
		if _, ok := d.inflight[r.TxID]; !ok {
			d.inflight[r.TxID] = nil
		}
		d.tmu.Unlock()
	case wal.RecCommit:
		d.pmu.Lock()
		catImage, ok := d.pendingCat[r.TxID]
		if ok {
			delete(d.pendingCat, r.TxID)
		}
		d.pmu.Unlock()
		if ok {
			if err := d.applyCatalog(catImage); err != nil {
				return err
			}
		}
		d.tmu.Lock()
		d.committedAt[r.TxID] = r.LSN
		if r.LSN > d.maxCommit {
			d.maxCommit = r.LSN
		}
		delete(d.inflight, r.TxID)
		d.tmu.Unlock()
		d.stmu.Lock()
		d.commits++
		d.stmu.Unlock()
	case wal.RecAbort:
		// The abort trail's compensation images were applied like any
		// others; dropping the registration makes the undone state the
		// visible one.
		d.pmu.Lock()
		delete(d.pendingCat, r.TxID)
		d.pmu.Unlock()
		d.tmu.Lock()
		delete(d.inflight, r.TxID)
		d.tmu.Unlock()
	case wal.RecPage:
		return d.applyPage(r)
	case wal.RecCatalog:
		// Buffer until the transaction commits: catalog changes are
		// DDL, and only finished DDL may restructure the replica
		// (mirroring Redo's finished-transactions-only rule).
		d.pmu.Lock()
		if d.pendingCat == nil {
			d.pendingCat = make(map[uint64][]byte)
		}
		d.pendingCat[r.TxID] = append([]byte(nil), r.Payload...)
		d.pmu.Unlock()
	}
	return nil
}

// ApplyBatch appends one batch of raw records received from the
// primary to the local log, makes them durable, and applies them. The
// batch is the concatenation of whole encoded records in LSN order (a
// replication 'W' frame). Durability before application is the crash
// invariant: everything applied is re-derivable from the local log, so
// restart replays to at least the served horizon and the follower's
// reads never travel back in time. Returns the new applied LSN.
//
// Not safe for concurrent calls; the single repl apply loop is the one
// caller.
func (d *DB) ApplyBatch(batch []byte) (uint64, error) {
	if err := d.usable(); err != nil {
		return 0, err
	}
	if !d.replica {
		return 0, errors.New("db: ApplyBatch on a non-replica database")
	}
	recs := make([]wal.Record, 0, 16)
	var last uint64
	for off := 0; off < len(batch); {
		_, _, _, total, err := wal.ParseRawHeader(batch[off:])
		if err != nil {
			return 0, fmt.Errorf("db: replica batch: %w", err)
		}
		rec, err := d.wal.AppendReplica(batch[off : off+total])
		if err != nil {
			return 0, err
		}
		recs = append(recs, rec)
		last = rec.LSN
		off += total
	}
	if len(recs) == 0 {
		return d.AppliedLSN(), nil
	}
	if err := d.wal.EnsureDurable(last); err != nil {
		return 0, err
	}
	for _, r := range recs {
		if err := d.applyRecord(r); err != nil {
			// The local log holds the batch; restart replay converges.
			// Until then the in-memory state is suspect — stop serving.
			d.markUnusable(fmt.Errorf("db: replica apply at lsn %d: %w", r.LSN, err))
			return 0, err
		}
	}
	d.stmu.Lock()
	d.appliedLSN = last
	d.stmu.Unlock()
	if err := d.maybeReplicaCheckpoint(); err != nil {
		return 0, err
	}
	return last, nil
}

// maybeReplicaCheckpoint runs a replica checkpoint when the local log
// has grown past the auto-checkpoint threshold since the last one.
func (d *DB) maybeReplicaCheckpoint() error {
	d.stmu.Lock()
	limit := d.autoCkptBytes
	d.stmu.Unlock()
	if limit <= 0 {
		limit = DefaultAutoCheckpointBytes
	}
	if d.wal.SinceCheckpoint() < limit {
		return nil
	}
	return d.ReplicaCheckpoint()
}

// ReplicaCheckpoint is the replica's fuzzy checkpoint: flush committed
// pages, take the dirty-page floor, persist it in the replica state
// file (the replica appends no checkpoint records — its log carries
// only the primary's LSNs), and garbage-collect local segments below
// it. The same no-steal/minRec reasoning as the primary's checkpoint
// applies; there is no version GC (row purges replicate from the
// primary) and no catalog publish (the apply loop publishes eagerly).
func (d *DB) ReplicaCheckpoint() error {
	if err := d.usable(); err != nil {
		return err
	}
	if !d.replica {
		return errors.New("db: ReplicaCheckpoint on a non-replica database")
	}
	d.ckptMu.Lock()
	defer d.ckptMu.Unlock()
	// Phase 1: flush committed pages under the shared lock; readers
	// keep running.
	d.qmu.RLock()
	objs := d.snapshotObjectsLocked()
	d.pmu.Lock()
	for _, pg := range d.pending {
		objs = append(objs, ckptObject{flush: pg.FlushCommitted, sync: pg.SyncFile, minRec: pg.MinRecLSN})
	}
	d.pmu.Unlock()
	d.qmu.RUnlock()
	for _, o := range objs {
		if err := o.flush(); err != nil {
			return err
		}
	}
	// Phase 2: floor snapshot under the exclusive lock (excludes the
	// nothing that could write, but keeps the read of minRec atomic
	// against the apply loop's own flushes).
	d.qmu.Lock()
	var minRec uint64
	anyDirty := false
	for _, o := range objs {
		if rec, ok := o.minRec(); ok {
			if !anyDirty || rec < minRec {
				minRec = rec
			}
			anyDirty = true
		}
	}
	d.stmu.Lock()
	applied := d.appliedLSN
	d.stmu.Unlock()
	d.qmu.Unlock()
	floor := applied
	if anyDirty {
		floor = minRec - 1
	}
	// Phase 3: make the flushed images durable, then move the floor.
	for _, o := range objs {
		if err := o.sync(); err != nil {
			return err
		}
	}
	if err := store.SyncDir(d.fs, d.dir); err != nil {
		return err
	}
	floor, err := d.wal.DeclareFloor(floor)
	if err != nil {
		return err
	}
	if err := writeReplState(d.fs, d.dir, floor, applied); err != nil {
		return err
	}
	removed, err := d.wal.GC()
	d.stmu.Lock()
	d.ckptCount++
	d.gcRemoved += uint64(removed)
	d.stmu.Unlock()
	return err
}

// IsReplica reports whether this database was opened as a read
// replica.
func (d *DB) IsReplica() bool { return d.replica }

// AppliedLSN returns the replica's applied horizon (0 on a primary).
func (d *DB) AppliedLSN() uint64 {
	d.stmu.Lock()
	defer d.stmu.Unlock()
	return d.appliedLSN
}

// ReplicaReplay reports the restart replay the open ran (zero value on
// a primary or a fresh replica).
func (d *DB) ReplicaReplay() wal.ReplayStats {
	return d.replayStats
}

// WAL exposes the underlying log for the replication layer (stream
// readers on the primary, handshake state on the follower). Nil when
// the database runs without a WAL.
func (d *DB) WAL() *wal.Log { return d.wal }
