// Package db implements the embedded relational engine the efficiency
// experiments run on: a catalog over heap files and B-tree indexes, a
// typed row codec, an expression evaluator with a UDF registry (the
// paper implements LexEQUAL as a UDF), and iterator-style executors —
// sequential scan, index scan, filter, projection, nested-loop and hash
// joins, grouping — plus the three LexEQUAL physical plans (naive UDF
// scan, q-gram filtered, phonetic-index assisted).
package db

import (
	"encoding/binary"
	"fmt"
	"math"
	"strconv"
	"strings"

	"lexequal/internal/script"
)

// Type is a column/value type.
type Type uint8

// Column types. TNString is the language-tagged Unicode string of the
// paper's data model (footnote 1: attribute values tagged with their
// language).
const (
	TNull Type = iota
	TInt
	TFloat
	TString
	TNString
)

func (t Type) String() string {
	switch t {
	case TNull:
		return "NULL"
	case TInt:
		return "INT"
	case TFloat:
		return "FLOAT"
	case TString:
		return "STRING"
	case TNString:
		return "NSTRING"
	default:
		return fmt.Sprintf("Type(%d)", uint8(t))
	}
}

// ParseType resolves a SQL type name.
func ParseType(s string) (Type, error) {
	switch strings.ToUpper(s) {
	case "INT", "INTEGER", "BIGINT":
		return TInt, nil
	case "FLOAT", "DOUBLE", "REAL":
		return TFloat, nil
	case "STRING", "TEXT", "VARCHAR", "CHAR":
		return TString, nil
	case "NSTRING", "NVARCHAR", "NCHAR", "NTEXT":
		return TNString, nil
	default:
		return TNull, fmt.Errorf("db: unknown type %q", s)
	}
}

// Value is one typed datum. The zero Value is NULL.
type Value struct {
	T    Type
	I    int64
	F    float64
	S    string
	Lang script.Language // only for TNString
}

// Null, Int, Float, Str and NStr construct values.
func Null() Value           { return Value{} }
func Int(i int64) Value     { return Value{T: TInt, I: i} }
func Float(f float64) Value { return Value{T: TFloat, F: f} }
func Str(s string) Value    { return Value{T: TString, S: s} }
func NStr(s string, lang script.Language) Value {
	return Value{T: TNString, S: s, Lang: lang}
}

// IsNull reports whether v is NULL.
func (v Value) IsNull() bool { return v.T == TNull }

// Bool interprets v as a boolean (NULL and zero are false); the engine
// has no separate boolean type — predicates yield INT 0/1, as in many
// engines' internals.
func (v Value) Bool() bool {
	switch v.T {
	case TInt:
		return v.I != 0
	case TFloat:
		return v.F != 0
	case TString, TNString:
		return v.S != ""
	default:
		return false
	}
}

// AsFloat coerces numeric values to float64.
func (v Value) AsFloat() (float64, bool) {
	switch v.T {
	case TInt:
		return float64(v.I), true
	case TFloat:
		return v.F, true
	default:
		return 0, false
	}
}

func (v Value) String() string {
	switch v.T {
	case TNull:
		return "NULL"
	case TInt:
		return strconv.FormatInt(v.I, 10)
	case TFloat:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case TString:
		return v.S
	case TNString:
		return fmt.Sprintf("%s[%s]", v.S, v.Lang)
	default:
		return "?"
	}
}

// Compare orders two values: NULLs first, then by numeric or string
// value. Cross-type numeric comparison coerces to float; comparing a
// number with a string orders by type tag (stable, if arbitrary).
// NString comparison ignores the language tag — per the paper (§2.2),
// lexicographic comparison across scripts is binary on the code points.
func Compare(a, b Value) int {
	if a.T == TNull || b.T == TNull {
		switch {
		case a.T == TNull && b.T == TNull:
			return 0
		case a.T == TNull:
			return -1
		default:
			return 1
		}
	}
	aNum, aOK := a.AsFloat()
	bNum, bOK := b.AsFloat()
	switch {
	case aOK && bOK:
		switch {
		case aNum < bNum:
			return -1
		case aNum > bNum:
			return 1
		default:
			return 0
		}
	case !aOK && !bOK:
		return strings.Compare(a.S, b.S)
	case aOK:
		return -1
	default:
		return 1
	}
}

// Equal reports value equality under Compare semantics.
func Equal(a, b Value) bool { return a.T != TNull && b.T != TNull && Compare(a, b) == 0 }

// hashKey renders a value as a map key for hash joins/aggregation.
func (v Value) hashKey() string {
	switch v.T {
	case TNull:
		return "\x00"
	case TInt:
		return "i" + strconv.FormatInt(v.I, 10)
	case TFloat:
		if v.F == math.Trunc(v.F) && math.Abs(v.F) < 1e15 {
			return "i" + strconv.FormatInt(int64(v.F), 10) // int-equal floats collide
		}
		return "f" + strconv.FormatFloat(v.F, 'g', -1, 64)
	default:
		return "s" + v.S
	}
}

// Row is one tuple.
type Row []Value

// Clone copies the row.
func (r Row) Clone() Row {
	out := make(Row, len(r))
	copy(out, r)
	return out
}

func (r Row) String() string {
	parts := make([]string, len(r))
	for i, v := range r {
		parts[i] = v.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// Encode serializes the row. Layout per value: 1 type byte, then
// payload (int64/float64 little endian; strings length-prefixed; the
// NString language tag is its own length-prefixed string).
func (r Row) Encode() []byte {
	var buf []byte
	var tmp [8]byte
	for _, v := range r {
		buf = append(buf, byte(v.T))
		switch v.T {
		case TNull:
		case TInt:
			binary.LittleEndian.PutUint64(tmp[:], uint64(v.I))
			buf = append(buf, tmp[:]...)
		case TFloat:
			binary.LittleEndian.PutUint64(tmp[:], math.Float64bits(v.F))
			buf = append(buf, tmp[:]...)
		case TString:
			buf = appendString(buf, v.S)
		case TNString:
			buf = appendString(buf, v.S)
			buf = appendString(buf, string(v.Lang))
		}
	}
	return buf
}

func appendString(buf []byte, s string) []byte {
	var tmp [4]byte
	binary.LittleEndian.PutUint32(tmp[:], uint32(len(s)))
	buf = append(buf, tmp[:]...)
	return append(buf, s...)
}

// DecodeRow deserializes a row of n values.
func DecodeRow(buf []byte, n int) (Row, error) {
	row := make(Row, 0, n)
	off := 0
	readStr := func() (string, error) {
		if off+4 > len(buf) {
			return "", fmt.Errorf("db: truncated string length")
		}
		l := int(binary.LittleEndian.Uint32(buf[off:]))
		off += 4
		if off+l > len(buf) {
			return "", fmt.Errorf("db: truncated string payload")
		}
		s := string(buf[off : off+l])
		off += l
		return s, nil
	}
	for i := 0; i < n; i++ {
		if off >= len(buf) {
			return nil, fmt.Errorf("db: truncated row (value %d of %d)", i, n)
		}
		t := Type(buf[off])
		off++
		switch t {
		case TNull:
			row = append(row, Null())
		case TInt:
			if off+8 > len(buf) {
				return nil, fmt.Errorf("db: truncated int")
			}
			row = append(row, Int(int64(binary.LittleEndian.Uint64(buf[off:]))))
			off += 8
		case TFloat:
			if off+8 > len(buf) {
				return nil, fmt.Errorf("db: truncated float")
			}
			row = append(row, Float(math.Float64frombits(binary.LittleEndian.Uint64(buf[off:]))))
			off += 8
		case TString:
			s, err := readStr()
			if err != nil {
				return nil, err
			}
			row = append(row, Str(s))
		case TNString:
			s, err := readStr()
			if err != nil {
				return nil, err
			}
			lang, err := readStr()
			if err != nil {
				return nil, err
			}
			row = append(row, NStr(s, script.Language(lang)))
		default:
			return nil, fmt.Errorf("db: unknown value type %d", t)
		}
	}
	if off != len(buf) {
		return nil, fmt.Errorf("db: %d trailing bytes after row", len(buf)-off)
	}
	return row, nil
}
