package db

import (
	"fmt"
	"strings"
)

// Expr is an evaluable expression over a row.
type Expr interface {
	Eval(row Row) (Value, error)
	String() string
}

// ColRef references a column by position (resolved by the planner).
type ColRef struct {
	Idx  int
	Name string // for display
}

// Eval implements Expr.
func (c *ColRef) Eval(row Row) (Value, error) {
	if c.Idx < 0 || c.Idx >= len(row) {
		return Null(), fmt.Errorf("db: column index %d out of range (row has %d)", c.Idx, len(row))
	}
	return row[c.Idx], nil
}

func (c *ColRef) String() string {
	if c.Name != "" {
		return c.Name
	}
	return fmt.Sprintf("$%d", c.Idx)
}

// Const is a literal.
type Const struct {
	V Value
}

// Eval implements Expr.
func (c *Const) Eval(Row) (Value, error) { return c.V, nil }

func (c *Const) String() string {
	if c.V.T == TString || c.V.T == TNString {
		return "'" + c.V.S + "'"
	}
	return c.V.String()
}

// Binary applies an infix operator: comparisons (=, <>, <, <=, >, >=),
// logical AND/OR, and arithmetic (+, -, *, /).
type Binary struct {
	Op   string
	L, R Expr
}

// Eval implements Expr.
func (b *Binary) Eval(row Row) (Value, error) {
	l, err := b.L.Eval(row)
	if err != nil {
		return Null(), err
	}
	// Short-circuit logic.
	switch b.Op {
	case "AND":
		if !l.Bool() {
			return Int(0), nil
		}
		r, err := b.R.Eval(row)
		if err != nil {
			return Null(), err
		}
		return boolVal(r.Bool()), nil
	case "OR":
		if l.Bool() {
			return Int(1), nil
		}
		r, err := b.R.Eval(row)
		if err != nil {
			return Null(), err
		}
		return boolVal(r.Bool()), nil
	}
	r, err := b.R.Eval(row)
	if err != nil {
		return Null(), err
	}
	switch b.Op {
	case "=", "<>", "<", "<=", ">", ">=":
		if l.IsNull() || r.IsNull() {
			return Int(0), nil // SQL-ish: comparisons with NULL are not true
		}
		c := Compare(l, r)
		switch b.Op {
		case "=":
			return boolVal(c == 0), nil
		case "<>":
			return boolVal(c != 0), nil
		case "<":
			return boolVal(c < 0), nil
		case "<=":
			return boolVal(c <= 0), nil
		case ">":
			return boolVal(c > 0), nil
		default:
			return boolVal(c >= 0), nil
		}
	case "+", "-", "*", "/":
		lf, lok := l.AsFloat()
		rf, rok := r.AsFloat()
		if !lok || !rok {
			if b.Op == "+" && (l.T == TString || l.T == TNString) && (r.T == TString || r.T == TNString) {
				return Str(l.S + r.S), nil
			}
			return Null(), fmt.Errorf("db: non-numeric operands for %s: %v, %v", b.Op, l, r)
		}
		var out float64
		switch b.Op {
		case "+":
			out = lf + rf
		case "-":
			out = lf - rf
		case "*":
			out = lf * rf
		default:
			if rf == 0 {
				return Null(), fmt.Errorf("db: division by zero")
			}
			out = lf / rf
		}
		if l.T == TInt && r.T == TInt && b.Op != "/" {
			return Int(int64(out)), nil
		}
		return Float(out), nil
	default:
		return Null(), fmt.Errorf("db: unknown operator %q", b.Op)
	}
}

func (b *Binary) String() string {
	return fmt.Sprintf("(%s %s %s)", b.L, b.Op, b.R)
}

func boolVal(b bool) Value {
	if b {
		return Int(1)
	}
	return Int(0)
}

// Not negates a predicate.
type Not struct {
	E Expr
}

// Eval implements Expr.
func (n *Not) Eval(row Row) (Value, error) {
	v, err := n.E.Eval(row)
	if err != nil {
		return Null(), err
	}
	return boolVal(!v.Bool()), nil
}

func (n *Not) String() string { return fmt.Sprintf("(NOT %s)", n.E) }

// UDF is a user-defined function: the extension mechanism the paper
// uses to add LexEQUAL to a database server (§3.2).
type UDF func(args []Value) (Value, error)

// FuncRegistry maps lowercase function names to UDFs.
type FuncRegistry struct {
	fns map[string]UDF
}

// NewFuncRegistry returns a registry with the built-in scalar functions
// (LENGTH, LOWER, UPPER, ABS) registered.
func NewFuncRegistry() *FuncRegistry {
	r := &FuncRegistry{fns: map[string]UDF{}}
	r.Register("length", func(args []Value) (Value, error) {
		if err := arity("length", args, 1); err != nil {
			return Null(), err
		}
		return Int(int64(len([]rune(args[0].S)))), nil
	})
	r.Register("lower", func(args []Value) (Value, error) {
		if err := arity("lower", args, 1); err != nil {
			return Null(), err
		}
		v := args[0]
		v.S = strings.ToLower(v.S)
		return v, nil
	})
	r.Register("upper", func(args []Value) (Value, error) {
		if err := arity("upper", args, 1); err != nil {
			return Null(), err
		}
		v := args[0]
		v.S = strings.ToUpper(v.S)
		return v, nil
	})
	r.Register("abs", func(args []Value) (Value, error) {
		if err := arity("abs", args, 1); err != nil {
			return Null(), err
		}
		switch args[0].T {
		case TInt:
			if args[0].I < 0 {
				return Int(-args[0].I), nil
			}
			return args[0], nil
		case TFloat:
			if args[0].F < 0 {
				return Float(-args[0].F), nil
			}
			return args[0], nil
		default:
			return Null(), fmt.Errorf("db: abs of non-number")
		}
	})
	return r
}

func arity(name string, args []Value, n int) error {
	if len(args) != n {
		return fmt.Errorf("db: %s expects %d arguments, got %d", name, n, len(args))
	}
	return nil
}

// Register installs (or replaces) a UDF.
func (r *FuncRegistry) Register(name string, fn UDF) {
	r.fns[strings.ToLower(name)] = fn
}

// Lookup finds a UDF by name.
func (r *FuncRegistry) Lookup(name string) (UDF, bool) {
	fn, ok := r.fns[strings.ToLower(name)]
	return fn, ok
}

// Call invokes a UDF over argument expressions.
type Call struct {
	Name string
	Fn   UDF
	Args []Expr
}

// Eval implements Expr.
func (c *Call) Eval(row Row) (Value, error) {
	args := make([]Value, len(c.Args))
	for i, a := range c.Args {
		v, err := a.Eval(row)
		if err != nil {
			return Null(), err
		}
		args[i] = v
	}
	return c.Fn(args)
}

func (c *Call) String() string {
	parts := make([]string, len(c.Args))
	for i, a := range c.Args {
		parts[i] = a.String()
	}
	return fmt.Sprintf("%s(%s)", c.Name, strings.Join(parts, ", "))
}
