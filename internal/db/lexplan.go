package db

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"sort"

	"lexequal/internal/core"
	"lexequal/internal/editdist"
	"lexequal/internal/metrics"
	"lexequal/internal/phoneme"
	"lexequal/internal/qgram"
	"lexequal/internal/soundex"
	"lexequal/internal/store"
)

// FuncExpr adapts a closure into an Expr (used for predicates that
// close over prepared state, like a transformed query string).
type FuncExpr struct {
	F    func(Row) (Value, error)
	Desc string
}

// Eval implements Expr.
func (f *FuncExpr) Eval(row Row) (Value, error) { return f.F(row) }

func (f *FuncExpr) String() string { return f.Desc }

// LexConfig binds a multiscript name table to the physical structures
// the LexEQUAL strategies need. The conventional layout (produced by
// the dataset loader) is:
//
//	<table>(id INT, name NSTRING, pname STRING, groupid INT)
//	<table>_qgrams(id INT, pos INT, qgram STRING)
//	index <table>_id_idx  on <table>(id)
//	index <table>_gid_idx on <table>(groupid)
type LexConfig struct {
	Table    *Table
	IDCol    int
	NameCol  int
	PhonCol  int
	GroupCol int

	Aux                    *Table // nil disables the q-gram strategy
	AuxID, AuxPos, AuxGram int
	AuxHash                int // -1 when the aux table has no gramhash column

	IDIndex      *Index // nil disables q-gram candidate fetch by index
	GroupIndex   *Index // nil disables the phonetic-index strategy
	AuxHashIndex *Index // nil makes the q-gram probe scan the aux table
	CoverIndex   *Index // covering gram index: probe without heap fetches

	Op *core.Operator
	Q  int

	// Snap is the read snapshot every scan and fetch in the lex plans
	// runs under (nil = latest committed state). The SQL layer sets it
	// per statement, so a lex query inside a transaction sees the
	// transaction's snapshot like any other read.
	Snap *Snap

	// Workers sets the verification parallelism of the lex nodes:
	// candidates are fetched from storage serially (the storage layer is
	// single-threaded), then the DP verification stage runs on a morsel
	// pool of this width. <= 1 is serial; results are identical at any
	// width. 0 means GOMAXPROCS.
	Workers int
	// Kernel selects the verification kernel (SET lexequal_kernel).
	// Auto engages the bit-parallel kernel whenever the operator's cost
	// model compiles; results are identical under every setting.
	Kernel core.Kernel
	// Counters, when non-nil, accumulates per-stage execution counters
	// across queries (surfaced by SHOW LEXSTATS).
	Counters *metrics.PipelineCounters
}

// workers resolves the configured verification parallelism.
func (cfg *LexConfig) workers() int {
	if cfg.Workers == 0 {
		return 1
	}
	return cfg.Workers
}

// record folds one execution's stats into the session counters.
func (cfg *LexConfig) record(st core.Stats) {
	if cfg.Counters != nil {
		cfg.Counters.Record(st)
	}
}

// lexCand is one fetched candidate awaiting verification: the base row,
// its decoded phonemes, and (q-gram strategy only) the pair's exact
// filter state — shared-gram count, projected length, and the
// weak-slacked budget (core.Operator.SigBudget), all fixed at collect
// time once the candidate's phonemes are in hand.
type lexCand struct {
	row   Row
	phon  phoneme.String
	count int
	plen  int
	kbud  float64
}

// verifyStage materializes the fetched candidates into one flat
// columnar batch and verifies them on the morsel pool through the
// kernel dispatcher: the bit-parallel kernel decides most pairs from
// the batch columns, undecided pairs fall back to the scalar DP. check,
// when non-nil, is the pre-batch filter chain (the q-gram plan's length
// and count filters); sigQ > 0 additionally runs the batched Bloom
// signature prefilter (the naive plan, whose candidates saw no filter
// at fetch time). The candidate slice, the batch, and everything check
// reads must be treated as read-only shared state.
func (cfg *LexConfig) verifyStage(qp phoneme.String, threshold float64, cands []lexCand, sigQ int, check func(c *lexCand, st *core.Stats) bool) ([]Row, core.Stats) {
	phons := make([]phoneme.String, len(cands))
	for i := range cands {
		phons[i] = cands[i].phon
	}
	batch := cfg.Op.BuildBatch(phons, cfg.Kernel, sigQ)
	pm := cfg.Op.NewBatchMatcher(qp, threshold, cfg.Kernel)
	var sf core.SigFilter
	if sigQ > 0 {
		sf = cfg.Op.NewSigFilter(qp, threshold, sigQ)
	}
	chunks, st := core.RunMorsels(len(cands), cfg.workers(), func(ln *core.Lane, lo, hi int) []Row {
		var out []Row
		for i := lo; i < hi; i++ {
			c := &cands[i]
			ln.Stats.Rows++
			if check != nil && !check(c, &ln.Stats) {
				continue
			}
			if sigQ > 0 && !sf.Admit(batch, i, &ln.Stats) {
				continue
			}
			ln.Stats.Candidates++
			if pm.Match(batch, i, ln) {
				out = append(out, c.row)
			}
		}
		return out
	})
	rows := core.MergeChunks(chunks)
	st.BatchesBuilt++
	st.Matches = len(rows)
	return rows, st
}

// ResolveLexConfig locates the conventional structures for table.
func ResolveLexConfig(d *DB, table string, op *core.Operator) (*LexConfig, error) {
	t, ok := d.Table(table)
	if !ok {
		return nil, fmt.Errorf("db: no table %q", table)
	}
	cfg := &LexConfig{Table: t, Op: op, Q: core.DefaultQ}
	cfg.IDCol = t.Columns.ColIndex("id")
	cfg.NameCol = t.Columns.ColIndex("name")
	cfg.PhonCol = t.Columns.ColIndex("pname")
	cfg.GroupCol = t.Columns.ColIndex("groupid")
	if cfg.NameCol < 0 {
		return nil, fmt.Errorf("db: table %q lacks a name column", table)
	}
	if aux, ok := d.Table(table + "_qgrams"); ok {
		cfg.Aux = aux
		cfg.AuxID = aux.Columns.ColIndex("id")
		cfg.AuxPos = aux.Columns.ColIndex("pos")
		cfg.AuxGram = aux.Columns.ColIndex("qgram")
		cfg.AuxHash = aux.Columns.ColIndex("gramhash")
		if cfg.AuxID < 0 || cfg.AuxPos < 0 || cfg.AuxGram < 0 {
			return nil, fmt.Errorf("db: aux table %s_qgrams has wrong schema", table)
		}
		if cfg.AuxHash >= 0 {
			if ix, ok := d.IndexOn(aux.Name, "gramhash"); ok {
				cfg.AuxHashIndex = ix
			}
		}
		if ix, ok := d.Index(CoverIndexName(t.Name)); ok {
			cfg.CoverIndex = ix
		}
	} else {
		cfg.AuxHash = -1
	}
	if ix, ok := d.IndexOn(t.Name, "id"); ok {
		cfg.IDIndex = ix
	}
	if ix, ok := d.IndexOn(t.Name, "groupid"); ok {
		cfg.GroupIndex = ix
	}
	return cfg, nil
}

// GramHash maps a q-gram key to a non-negative int64 for B-tree
// indexing (FNV-1a). Collisions only enlarge the candidate set — the
// gram string is re-checked on fetch — so they cost time, never
// correctness.
func GramHash(key string) int64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	return int64(h.Sum64() & 0x7FFFFFFFFFFFFFFF)
}

// phonemes decodes the stored phonemic string of a row, falling back to
// transforming the name when no pname column exists.
func (cfg *LexConfig) phonemes(row Row) (phoneme.String, bool) {
	if cfg.PhonCol >= 0 && row[cfg.PhonCol].T == TString {
		return phoneme.ParseLenient(row[cfg.PhonCol].S), true
	}
	nv := row[cfg.NameCol]
	if nv.T != TNString {
		return nil, false
	}
	p, err := cfg.Op.Transform(nv.S, nv.Lang)
	if err != nil {
		return nil, false
	}
	return p, true
}

// langOK applies the INLANGUAGES filter to a row.
func (cfg *LexConfig) langOK(row Row, langs core.LangSet) bool {
	nv := row[cfg.NameCol]
	return nv.T == TNString && langs.Contains(nv.Lang)
}

// NewLexScanNaive builds the Table-1 plan: a sequential scan invoking
// the LexEQUAL UDF on every row. The scan fetches and decodes rows
// serially, then verifies them on the morsel pool (cfg.Workers wide);
// output order is table scan order regardless of parallelism.
func NewLexScanNaive(cfg *LexConfig, query core.Text, threshold float64, langs core.LangSet) Node {
	qp, err := cfg.Op.Transform(query.Value, query.Lang)
	if err != nil {
		return ErrNode("lexequal: %v", err)
	}
	return &lexRowsNode{cols: cfg.Table.Columns, run: func() ([]Row, error) {
		var cands []lexCand
		err := cfg.Table.ScanSnap(cfg.Snap, func(_ store.RID, row Row) error {
			if !cfg.langOK(row, langs) {
				return nil
			}
			rp, ok := cfg.phonemes(row)
			if !ok {
				return nil
			}
			cands = append(cands, lexCand{row: row.Clone(), phon: rp})
			return nil
		})
		if err != nil {
			return nil, err
		}
		rows, st := cfg.verifyStage(qp, threshold, cands, cfg.Q, nil)
		cfg.record(st)
		return rows, nil
	}}
}

// lexRowsNode yields precomputed rows (the materializing strategies).
type lexRowsNode struct {
	cols Schema
	run  func() ([]Row, error)
	rows []Row
	idx  int
}

func (n *lexRowsNode) Columns() Schema { return n.cols }

func (n *lexRowsNode) Open() error {
	rows, err := n.run()
	if err != nil {
		return err
	}
	n.rows = rows
	n.idx = 0
	return nil
}

func (n *lexRowsNode) Next() (Row, error) {
	if n.idx >= len(n.rows) {
		return nil, nil
	}
	r := n.rows[n.idx]
	n.idx++
	return r, nil
}

func (n *lexRowsNode) Close() error { return nil }

// NewLexScanQGram builds the Table-2 plan (Figure 14): probe the
// auxiliary positional q-gram table with the query's grams, aggregate
// match counts per row id (position filter inline), apply the length
// and count filters, fetch surviving candidates via the id index, and
// verify them with the UDF.
func NewLexScanQGram(cfg *LexConfig, query core.Text, threshold float64, langs core.LangSet) Node {
	if cfg.Aux == nil {
		return ErrNode("lexequal: table %s has no q-gram auxiliary table", cfg.Table.Name)
	}
	if cfg.IDCol < 0 {
		return ErrNode("lexequal: table %s has no id column", cfg.Table.Name)
	}
	return &lexRowsNode{cols: cfg.Table.Columns, run: func() ([]Row, error) {
		qp, err := cfg.Op.Transform(query.Value, query.Lang)
		if err != nil {
			return nil, err
		}
		enc := soundex.NewEncoder(cfg.Op.Clusters())
		qproj := enc.Project(qp)
		qweak := editdist.WeakCount(qp)
		base := threshold * float64(len(qp))
		kMax := cfg.Op.SigBudgetCap(base)
		// Build the query-gram hash (the tiny build side of the gram
		// join in Figure 14).
		queryGrams := map[string][]int{}
		for _, g := range qgram.Extract(qproj, cfg.Q) {
			queryGrams[g.Key()] = append(queryGrams[g.Key()], g.Pos)
		}
		// Probe: the gram join of Figure 14, with the position predicate
		// deferred. The sound position budget is per pair — it slacks by
		// the candidate's weak count (core.Operator.SigBudget), unknown
		// until the candidate row is fetched — so the probe keeps, per
		// base-row id, each matching gram's best displacement within the
		// candidate-independent budget cap, and the per-row filter counts
		// the displacements within the pair's exact budget. With a
		// gramhash index the probe touches only matching aux rows — the
		// plan a real optimizer picks for the Figure 14 SQL; without one
		// it degrades to an aux-table scan.
		disps := map[int64][]int32{}
		best := func(positions []int, pos int) int {
			d := -1
			for _, qpos := range positions {
				dd := qpos - pos
				if dd < 0 {
					dd = -dd
				}
				if d < 0 || dd < d {
					d = dd
				}
			}
			return d
		}
		note := func(id int64, d int) {
			if float64(d) <= kMax {
				disps[id] = append(disps[id], int32(d))
			}
		}
		tally := func(row Row) {
			positions, ok := queryGrams[row[cfg.AuxGram].S]
			if !ok {
				return
			}
			note(row[cfg.AuxID].I, best(positions, int(row[cfg.AuxPos].I)))
		}
		switch {
		case cfg.CoverIndex != nil:
			// Index-only probe: (id, pos) pairs come straight from the
			// covering index. A hash collision can only inflate a
			// count, which admits an extra candidate for verification —
			// never a dismissal.
			for key, positions := range queryGrams {
				vals, err := cfg.CoverIndex.Tree.Lookup(uint64(GramHash(key)))
				if err != nil {
					return nil, err
				}
				for _, v := range vals {
					id, pos := UnpackCover(v)
					note(id, best(positions, pos))
				}
			}
		case cfg.AuxHashIndex != nil:
			for key := range queryGrams {
				rids, err := cfg.AuxHashIndex.Tree.Lookup(uint64(GramHash(key)))
				if err != nil {
					return nil, err
				}
				for _, packed := range rids {
					row, err := cfg.Aux.GetSnap(cfg.Snap, store.UnpackRID(packed))
					if errors.Is(err, store.ErrDeleted) {
						continue // stale index entry or invisible version
					}
					if err != nil {
						return nil, err
					}
					tally(row)
				}
			}
		default:
			err = cfg.Aux.ScanSnap(cfg.Snap, func(_ store.RID, row Row) error {
				tally(row)
				return nil
			})
			if err != nil {
				return nil, err
			}
		}
		// Fetch candidates serially (storage access), then verify on the
		// morsel pool. With an id index we fetch just the candidates;
		// otherwise one more scan filters by id.
		var cands []lexCand
		collect := func(row Row) {
			if !cfg.langOK(row, langs) {
				return
			}
			rp, ok := cfg.phonemes(row)
			if !ok {
				return
			}
			k := cfg.Op.SigBudget(base, qweak+editdist.WeakCount(rp))
			cnt := 0
			for _, d := range disps[row[cfg.IDCol].I] {
				if float64(d) <= k {
					cnt++
				}
			}
			cands = append(cands, lexCand{row: row.Clone(), phon: rp, count: cnt, plen: len(enc.Project(rp)), kbud: k})
		}
		// The filters compare projected-space lengths against the
		// projected-edit budget — same space as core's strategy filters
		// (raw lengths would over-demand the count threshold by up to the
		// pair's weak slack).
		check := func(c *lexCand, st *core.Stats) bool {
			if !qgram.LengthOK(len(qproj), c.plen, c.kbud) {
				st.PrunedLength++
				return false
			}
			need := qgram.CountThreshold(len(qproj), c.plen, cfg.Q, c.kbud)
			if need > 0 && c.count < need {
				st.PrunedCount++
				return false
			}
			return true
		}
		finish := func() ([]Row, error) {
			// The exact positional gram filter already ran at probe time;
			// the coarser Bloom prefilter (sigQ > 0) would be redundant.
			rows, st := cfg.verifyStage(qp, threshold, cands, 0, check)
			cfg.record(st)
			return rows, nil
		}
		// Candidates sharing no budget-compatible gram can still be true
		// matches when the count filter has no power at the budget cap
		// (very short strings, or weak slack swallowing the whole
		// budget); the per-candidate check re-decides at the pair's
		// exact budget on collect.
		zeroCanMatch := math.IsInf(kMax, 1) || qgram.CountThreshold(len(qproj), 0, cfg.Q, kMax) <= 0
		if cfg.IDIndex != nil {
			// Prefilter on the count threshold before fetching, at the
			// candidate-independent budget cap: the smallest admissible
			// candidate (len(qproj) - kMax projected phonemes) needs at
			// least minNeed shared grams there, and a pair's exact budget
			// only tightens that bound.
			minNeed := 0
			if !math.IsInf(kMax, 1) {
				minNeed = qgram.CountThreshold(len(qproj), len(qproj)-int(kMax), cfg.Q, kMax)
			}
			ids := make([]int64, 0, len(disps))
			for id, ds := range disps {
				if minNeed > 0 && len(ds) < minNeed {
					continue
				}
				ids = append(ids, id)
			}
			sortInt64s(ids)
			for _, id := range ids {
				rids, err := cfg.IDIndex.Tree.Lookup(uint64(id))
				if err != nil {
					return nil, err
				}
				for _, packed := range rids {
					row, err := cfg.Table.GetSnap(cfg.Snap, store.UnpackRID(packed))
					if errors.Is(err, store.ErrDeleted) {
						continue
					}
					if err != nil {
						return nil, err
					}
					collect(row)
				}
			}
			// Residual sweep for the zero-gram candidates, only in the
			// regime where they can survive the count filter.
			if zeroCanMatch {
				err = cfg.Table.ScanSnap(cfg.Snap, func(_ store.RID, row Row) error {
					if _, seen := disps[row[cfg.IDCol].I]; seen {
						return nil
					}
					collect(row)
					return nil
				})
				if err != nil {
					return nil, err
				}
			}
			return finish()
		}
		err = cfg.Table.ScanSnap(cfg.Snap, func(_ store.RID, row Row) error {
			if _, ok := disps[row[cfg.IDCol].I]; !ok && !zeroCanMatch {
				return nil
			}
			collect(row)
			return nil
		})
		if err != nil {
			return nil, err
		}
		return finish()
	}}
}

// NewLexScanIndexed builds the Table-3 plan (Figure 15): compute the
// query's grouped phoneme string identifier, probe the B-tree index,
// and verify the rows sharing the signature with the UDF.
func NewLexScanIndexed(cfg *LexConfig, query core.Text, threshold float64, langs core.LangSet) Node {
	if cfg.GroupIndex == nil {
		return ErrNode("lexequal: table %s has no phonetic index", cfg.Table.Name)
	}
	return &lexRowsNode{cols: cfg.Table.Columns, run: func() ([]Row, error) {
		qp, err := cfg.Op.Transform(query.Value, query.Lang)
		if err != nil {
			return nil, err
		}
		enc := soundex.NewEncoder(cfg.Op.Clusters())
		gid := enc.Encode(qp)
		rids, err := cfg.GroupIndex.Tree.Lookup(uint64(gid))
		if err != nil {
			return nil, err
		}
		var cands []lexCand
		for _, packed := range rids {
			row, err := cfg.Table.GetSnap(cfg.Snap, store.UnpackRID(packed))
			if errors.Is(err, store.ErrDeleted) {
				continue
			}
			if err != nil {
				return nil, err
			}
			if !cfg.langOK(row, langs) {
				continue
			}
			rp, ok := cfg.phonemes(row)
			if !ok {
				continue
			}
			cands = append(cands, lexCand{row: row.Clone(), phon: rp})
		}
		rows, st := cfg.verifyStage(qp, threshold, cands, 0, nil)
		cfg.record(st)
		return rows, nil
	}}
}

// JoinKernel resolves the kernel a lex join actually verifies with.
// Joins verify under the left operator's cost model, but the right
// side's kernel signatures are built under its own model: when the two
// differ, the bit-parallel path would read masks from the wrong model,
// so the join runs on the scalar kernel regardless of the session knob.
// The returned reason is non-empty exactly when that forced downgrade
// happens — EXPLAIN appends it so the plan reports the effective
// kernel, not the model-level resolution.
func JoinKernel(left, right *LexConfig) (core.Kernel, string) {
	if !left.Op.CostEqual(right.Op) {
		return core.KernelScalar, "cross-model join"
	}
	return left.Kernel, ""
}

// NewLexJoin builds the equi-join plans of Figure 5: every pair of rows
// from the two tables matching under LexEQUAL (optionally restricted to
// different languages). Strategy selects the physical shape: Naive is
// the UDF nested loop of Table 1; QGram probes the right table's aux
// grams per left row (Table 2); Indexed probes the right table's
// phonetic index per left row (Table 3). Output rows are the
// concatenation left ++ right.
func NewLexJoin(left, right *LexConfig, threshold float64, diffLang bool, strat core.Strategy) Node {
	cols := append(append(Schema{}, left.Table.Columns...), right.Table.Columns...)
	kern, _ := JoinKernel(left, right)
	return &lexRowsNode{cols: cols, run: func() ([]Row, error) {
		// The probe loop runs on the morsel pool over materialized left
		// rows (Naive, QGram: all probe state is in-memory and
		// read-only) or over prefetched candidate pairs (Indexed: the
		// B-tree probe itself stays on the fetch thread). Morsel-order
		// merging keeps the output identical to the serial join.
		concat := func(l, r Row) Row { return append(append(make(Row, 0, len(l)+len(r)), l...), r...) }
		langClash := func(l, r Row) bool {
			return diffLang && l[left.NameCol].Lang == r[right.NameCol].Lang
		}
		// Materialize the left side once; every strategy probes per left
		// row.
		var leftRows []Row
		var leftPhon []phoneme.String
		err := left.Table.ScanSnap(left.Snap, func(_ store.RID, row Row) error {
			lp, ok := left.phonemes(row)
			if !ok {
				return nil
			}
			leftRows = append(leftRows, row.Clone())
			leftPhon = append(leftPhon, lp)
			return nil
		})
		if err != nil {
			return nil, err
		}
		finish := func(chunks [][]Row, st core.Stats) ([]Row, error) {
			rows := core.MergeChunks(chunks)
			st.BatchesBuilt++ // every join shape materializes one right-side batch
			st.Matches = len(rows)
			left.record(st)
			return rows, nil
		}
		// The right side is always (re)batched under the LEFT operator, so
		// the kernel signatures and projections agree with the model the
		// verification runs under even when the two configs carry
		// different operators.
		switch strat {
		case core.Naive:
			// Materialize the right side once (the optimizer's nested
			// loop of §5.1).
			var rightRows []Row
			var rightPhon []phoneme.String
			err := right.Table.ScanSnap(right.Snap, func(_ store.RID, row Row) error {
				rp, ok := right.phonemes(row)
				if !ok {
					return nil
				}
				rightRows = append(rightRows, row.Clone())
				rightPhon = append(rightPhon, rp)
				return nil
			})
			if err != nil {
				return nil, err
			}
			rbatch := left.Op.BuildBatch(rightPhon, kern, left.Q)
			chunks, st := core.RunMorsels(len(leftRows), left.workers(), func(ln *core.Lane, lo, hi int) []Row {
				pm := left.Op.NewLaneMatcher(ln, kern)
				var out []Row
				for i := lo; i < hi; i++ {
					pm.SetPattern(leftPhon[i], threshold)
					sf := left.Op.NewSigFilter(leftPhon[i], threshold, left.Q)
					for j, r := range rightRows {
						if langClash(leftRows[i], r) {
							continue
						}
						ln.Stats.Rows++
						if !sf.Admit(rbatch, j, &ln.Stats) {
							continue
						}
						ln.Stats.Candidates++
						if pm.Match(rbatch, j, ln) {
							out = append(out, concat(leftRows[i], r))
						}
					}
				}
				return out
			})
			return finish(chunks, st)

		case core.QGram:
			if right.Aux == nil || right.IDCol < 0 {
				return nil, fmt.Errorf("lexequal: join target %s lacks q-gram structures", right.Table.Name)
			}
			// Build an in-memory gram postings map of the right table
			// once (equivalent to the aux-aux join of Figure 14 with
			// the right aux as build side).
			type post struct {
				id  int64
				pos int
			}
			postings := map[string][]post{}
			err := right.Aux.ScanSnap(right.Snap, func(_ store.RID, row Row) error {
				postings[row[right.AuxGram].S] = append(postings[row[right.AuxGram].S],
					post{id: row[right.AuxID].I, pos: int(row[right.AuxPos].I)})
				return nil
			})
			if err != nil {
				return nil, err
			}
			// Materialize right rows into one flat batch (the projected
			// lengths the filter chain needs come from the batch columns,
			// not per-pair re-projection), plus an id -> batch-row map for
			// candidate fetch and the per-row weak counts the pair budgets
			// slack by.
			var rightRows []Row
			rightIdxByID := map[int64][]int{}
			var rightPhon []phoneme.String
			var rightIDs []int64
			var rightWeak []int
			err = right.Table.ScanSnap(right.Snap, func(_ store.RID, row Row) error {
				rp, ok := right.phonemes(row)
				if !ok {
					return nil
				}
				id := row[right.IDCol].I
				rightIdxByID[id] = append(rightIdxByID[id], len(rightRows))
				rightRows = append(rightRows, row.Clone())
				rightPhon = append(rightPhon, rp)
				rightIDs = append(rightIDs, id)
				rightWeak = append(rightWeak, editdist.WeakCount(rp))
				return nil
			})
			if err != nil {
				return nil, err
			}
			rbatch := left.Op.BuildBatch(rightPhon, kern, right.Q)
			enc := soundex.NewEncoder(left.Op.Clusters())
			// Right rows ordered by weak count (descending): the zero-gram
			// sweep below visits rows in this order and stops as soon as
			// the count filter regains power, so glottal-free corpora pay
			// nothing (same scheme as core.Join's QGram probe).
			sweepOrder := make([]int, len(rightRows))
			for j := range sweepOrder {
				sweepOrder[j] = j
			}
			sort.Slice(sweepOrder, func(a, b int) bool {
				wa, wb := rightWeak[sweepOrder[a]], rightWeak[sweepOrder[b]]
				if wa != wb {
					return wa > wb
				}
				return sweepOrder[a] < sweepOrder[b]
			})
			chunks, st := core.RunMorsels(len(leftRows), left.workers(), func(ln *core.Lane, lo, hi int) []Row {
				pm := left.Op.NewLaneMatcher(ln, kern)
				var out []Row
				for i := lo; i < hi; i++ {
					lp := leftPhon[i]
					pm.SetPattern(lp, threshold)
					lproj := enc.Project(lp)
					lweak := editdist.WeakCount(lp)
					base := threshold * float64(len(lp))
					kMax := left.Op.SigBudgetCap(base)
					// Probe the postings with the position predicate
					// deferred: budgets are per pair (SigBudget slacks by
					// both weak counts) under the LEFT operator's model, so
					// the probe keeps each posting's best displacement
					// within the candidate-independent cap and the per-pair
					// filter counts those within the exact budget.
					leftGrams := map[string][]int{}
					for _, g := range qgram.Extract(lproj, right.Q) {
						leftGrams[g.Key()] = append(leftGrams[g.Key()], g.Pos)
					}
					dlist := map[int64][]int32{}
					for key, positions := range leftGrams {
						for _, p := range postings[key] {
							d := -1
							for _, qpos := range positions {
								dd := qpos - p.pos
								if dd < 0 {
									dd = -dd
								}
								if d < 0 || dd < d {
									d = dd
								}
							}
							if float64(d) <= kMax {
								dlist[p.id] = append(dlist[p.id], int32(d))
							}
						}
					}
					tryRow := func(j int, ds []int32) {
						r := rightRows[j]
						if langClash(leftRows[i], r) {
							return
						}
						ln.Stats.Rows++
						k := left.Op.SigBudget(base, lweak+rightWeak[j])
						if !qgram.LengthOK(len(lproj), rbatch.ProjLen(j), k) {
							ln.Stats.PrunedLength++
							return
						}
						need := qgram.CountThreshold(len(lproj), rbatch.ProjLen(j), right.Q, k)
						if need > 0 {
							cnt := 0
							for _, d := range ds {
								if float64(d) <= k {
									cnt++
								}
							}
							if cnt < need {
								ln.Stats.PrunedCount++
								return
							}
						}
						ln.Stats.Candidates++
						if pm.Match(rbatch, j, ln) {
							out = append(out, concat(leftRows[i], r))
						}
					}
					ids := make([]int64, 0, len(dlist))
					for id := range dlist {
						ids = append(ids, id)
					}
					sortInt64s(ids)
					for _, id := range ids {
						for _, j := range rightIdxByID[id] {
							tryRow(j, dlist[id])
						}
					}
					// Zero-gram sweep: rows sharing no budget-compatible
					// gram can still match when the count filter has no
					// power for the pair; visit in descending weak order,
					// stopping once the filter regains power.
					if math.IsInf(kMax, 1) || qgram.CountThreshold(len(lproj), 0, right.Q, kMax) <= 0 {
						for _, j := range sweepOrder {
							if qgram.CountThreshold(len(lproj), 0, right.Q, left.Op.SigBudget(base, lweak+rightWeak[j])) > 0 {
								break
							}
							if _, seen := dlist[rightIDs[j]]; !seen {
								tryRow(j, nil)
							}
						}
					}
				}
				return out
			})
			return finish(chunks, st)

		case core.Indexed:
			if right.GroupIndex == nil {
				return nil, fmt.Errorf("lexequal: join target %s lacks a phonetic index", right.Table.Name)
			}
			enc := soundex.NewEncoder(right.Op.Clusters())
			// Prefetch candidate pairs on this thread (B-tree probe +
			// heap fetch), then verify on the pool.
			type pairCand struct {
				li int
				r  Row
				rp phoneme.String
			}
			var cands []pairCand
			for i, lp := range leftPhon {
				rids, err := right.GroupIndex.Tree.Lookup(uint64(enc.Encode(lp)))
				if err != nil {
					return nil, err
				}
				for _, packed := range rids {
					r, err := right.Table.GetSnap(right.Snap, store.UnpackRID(packed))
					if errors.Is(err, store.ErrDeleted) {
						continue
					}
					if err != nil {
						return nil, err
					}
					rp, ok := right.phonemes(r)
					if !ok {
						continue
					}
					if langClash(leftRows[i], r) {
						continue
					}
					cands = append(cands, pairCand{li: i, r: r.Clone(), rp: rp})
				}
			}
			phons := make([]phoneme.String, len(cands))
			for i := range cands {
				phons[i] = cands[i].rp
			}
			cbatch := left.Op.BuildBatch(phons, kern, 0)
			chunks, st := core.RunMorsels(len(cands), left.workers(), func(ln *core.Lane, lo, hi int) []Row {
				pm := left.Op.NewLaneMatcher(ln, kern)
				lastLi := -1
				var out []Row
				for i := lo; i < hi; i++ {
					c := &cands[i]
					// Candidates were prefetched in left-row order, so the
					// pattern only re-prepares on a left-row change.
					if c.li != lastLi {
						pm.SetPattern(leftPhon[c.li], threshold)
						lastLi = c.li
					}
					ln.Stats.Rows++
					ln.Stats.Candidates++
					if pm.Match(cbatch, i, ln) {
						out = append(out, concat(leftRows[c.li], c.r))
					}
				}
				return out
			})
			return finish(chunks, st)

		default:
			return nil, fmt.Errorf("lexequal: unknown strategy %v", strat)
		}
	}}
}

func sortInt64s(xs []int64) {
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] })
}

// RegisterLexEqualUDF installs the lexequal(name, query, threshold) UDF
// into a function registry — the paper's outside-the-server integration
// path. Both string arguments must be NSTRING (language-tagged); the
// result is 1, 0, or NULL for NORESOURCE.
func RegisterLexEqualUDF(r *FuncRegistry, op *core.Operator) {
	r.Register("lexequal", func(args []Value) (Value, error) {
		if len(args) != 3 {
			return Null(), fmt.Errorf("db: lexequal expects 3 arguments, got %d", len(args))
		}
		a, b, e := args[0], args[1], args[2]
		if a.T != TNString || b.T != TNString {
			return Null(), fmt.Errorf("db: lexequal arguments must be NSTRING")
		}
		thr, ok := e.AsFloat()
		if !ok {
			return Null(), fmt.Errorf("db: lexequal threshold must be numeric")
		}
		res, err := op.Match(
			core.Text{Value: a.S, Lang: a.Lang},
			core.Text{Value: b.S, Lang: b.Lang},
			thr,
		)
		if err != nil {
			return Null(), err
		}
		switch res {
		case core.True:
			return Int(1), nil
		case core.False:
			return Int(0), nil
		default:
			return Null(), nil // NORESOURCE
		}
	})
	r.Register("soundex", func(args []Value) (Value, error) {
		if err := arity("soundex", args, 1); err != nil {
			return Null(), err
		}
		return Str(soundex.Classic(args[0].S)), nil
	})
	r.Register("phonemes", func(args []Value) (Value, error) {
		if err := arity("phonemes", args, 1); err != nil {
			return Null(), err
		}
		if args[0].T != TNString {
			return Null(), fmt.Errorf("db: phonemes argument must be NSTRING")
		}
		p, err := op.Transform(args[0].S, args[0].Lang)
		if err != nil {
			return Null(), nil // NORESOURCE or untranscribable
		}
		return Str(p.IPA()), nil
	})
}
