package db

import (
	"errors"
	"fmt"
	"time"

	"lexequal/internal/store"
	"lexequal/internal/wal"
)

// Tx is a write transaction. At most one write transaction is open per
// database at a time (they serialize on an internal mutex); SELECTs are
// unaffected. A Tx is created by Begin and finished by exactly one of
// Commit or Rollback.
//
// Concurrency contract: the goroutine that begins an explicit
// transaction is the only one that may write until it finishes the
// transaction (the SQL layer guarantees this by holding the query lock
// exclusively for the whole transaction; direct API callers must do the
// same).
type Tx struct {
	d      *DB
	id     uint64
	joined bool // piggy-backed on an already-open transaction
	done   bool
}

// walLogger adapts the database's log to store.PageLogger: page images
// captured by heap/B-tree mutations are stamped with the currently
// open transaction.
type walLogger struct{ d *DB }

func (w walLogger) LogPage(path string, id store.PageID, payload []byte) (uint64, error) {
	d := w.d
	d.stmu.Lock()
	tx := d.activeTx
	d.stmu.Unlock()
	if tx == nil {
		return 0, errors.New("db: page mutation outside a transaction")
	}
	lsn, err := d.wal.LogPage(tx.id, path, id, payload)
	if err != nil {
		return 0, err
	}
	d.stmu.Lock()
	d.txWrites++
	d.stmu.Unlock()
	return lsn, nil
}

// Begin opens a write transaction, blocking until any other write
// transaction finishes. The database must have been opened with the
// WAL enabled (the default).
func (d *DB) Begin() (*Tx, error) {
	if d.wal == nil {
		return nil, errors.New("db: transactions require the write-ahead log (database opened with DisableWAL)")
	}
	if err := d.usable(); err != nil {
		return nil, err
	}
	//lint:ignore errpath txmu is handed off to the returned Tx: held for the transaction's lifetime, released by Commit or Rollback
	d.txmu.Lock()
	if err := d.usable(); err != nil {
		d.txmu.Unlock()
		return nil, err
	}
	d.stmu.Lock()
	d.nextTxID++
	tx := &Tx{d: d, id: d.nextTxID}
	d.activeTx = tx
	d.txWrites = 0
	d.stmu.Unlock()
	if _, err := d.wal.Begin(tx.id); err != nil {
		d.stmu.Lock()
		d.activeTx = nil
		d.stmu.Unlock()
		d.txmu.Unlock()
		return nil, err
	}
	return tx, nil
}

// InTxn reports whether a write transaction is currently open.
func (d *DB) InTxn() bool {
	d.stmu.Lock()
	defer d.stmu.Unlock()
	return d.activeTx != nil
}

// autoBegin wraps a single mutating operation in a transaction: it
// joins the open transaction if there is one (the operation runs as
// part of it and is finished by the caller's Commit/Rollback), begins
// a fresh one otherwise, and returns nil when the WAL is disabled.
func (d *DB) autoBegin() (*Tx, error) {
	if d.wal == nil {
		return nil, nil
	}
	d.stmu.Lock()
	if cur := d.activeTx; cur != nil {
		tx := &Tx{d: d, id: cur.id, joined: true}
		d.stmu.Unlock()
		return tx, nil
	}
	d.stmu.Unlock()
	return d.Begin()
}

// autoEnd finishes an autoBegin transaction: commit on success, roll
// back on failure. A failed statement may have partially mutated pages
// it never logged, so the failure rollback always recovers in place —
// and when the statement ran inside an explicit transaction, that
// whole transaction is aborted on the spot (its owner's later
// Commit/Rollback reports "already finished"; the SQL layer translates
// this to the usual "transaction aborted by an earlier error").
func (d *DB) autoEnd(tx *Tx, err error) error {
	if tx == nil {
		return err
	}
	if tx.joined {
		if err != nil {
			d.stmu.Lock()
			owner := d.activeTx
			d.stmu.Unlock()
			if owner != nil && owner.id == tx.id {
				if rbErr := owner.rollback(true); rbErr != nil {
					err = errors.Join(err, rbErr)
				}
			}
		}
		return err
	}
	if err != nil {
		if rbErr := tx.rollback(true); rbErr != nil {
			return errors.Join(err, rbErr)
		}
		return err
	}
	return tx.Commit()
}

// finish validates that tx is the open transaction and detaches it.
// The caller still holds txmu and must release it.
func (tx *Tx) finish() error {
	d := tx.d
	d.stmu.Lock()
	defer d.stmu.Unlock()
	if tx.done || tx.joined {
		return errors.New("db: transaction already finished")
	}
	if d.activeTx != tx {
		return errors.New("db: not the active transaction")
	}
	tx.done = true
	d.activeTx = nil
	return nil
}

// CommitNoWait appends the commit record and releases the write slot
// without waiting for durability. The returned LSN can be passed to
// WaitDurable later — splitting the two lets a session release its
// locks before blocking on the fsync, so concurrent committers batch
// into one group-commit flush.
func (tx *Tx) CommitNoWait() (uint64, error) {
	d := tx.d
	if err := tx.finish(); err != nil {
		return 0, err
	}
	lsn, err := d.wal.CommitNoWait(tx.id)
	if err != nil {
		// The commit record never reached the log (disk full, I/O
		// error), so the transaction must not look committed — but its
		// writes are still live in the page caches and would otherwise
		// be served to later queries and then silently dropped at
		// Close (no-steal never lets them flush). Take the rollback
		// path while the write slot is still held: best-effort abort
		// record (a missing one is indistinguishable from a crash,
		// which recovery handles identically), then in-place recovery
		// to re-apply only the committed history.
		err = fmt.Errorf("db: commit: %w", err)
		d.stmu.Lock()
		d.txWrites = 0
		d.stmu.Unlock()
		_, _ = d.wal.Abort(tx.id)
		if rErr := d.recoverInPlace(); rErr != nil {
			rErr = fmt.Errorf("db: commit-failure recovery failed, database unusable: %w", rErr)
			d.stmu.Lock()
			if d.recoveryErr == nil {
				d.recoveryErr = rErr
			}
			d.stmu.Unlock()
			err = errors.Join(err, rErr)
		}
		d.txmu.Unlock()
		return 0, err
	}
	d.txmu.Unlock()
	d.stmu.Lock()
	d.commits++
	d.stmu.Unlock()
	return lsn, nil
}

// Commit makes the transaction durable: all of its writes survive any
// crash from here on.
func (tx *Tx) Commit() error {
	lsn, err := tx.CommitNoWait()
	if err != nil {
		return err
	}
	return tx.d.WaitDurable(lsn)
}

// WaitDurable blocks until every log record at or below lsn is on
// durable storage (joining the group-commit batch in progress, if any).
func (d *DB) WaitDurable(lsn uint64) error {
	if d.wal == nil || lsn == 0 {
		return nil
	}
	return d.wal.WaitDurable(lsn)
}

// Rollback abandons the transaction. Its writes — held only in page
// caches, never flushed (no-steal) — are discarded by re-running crash
// recovery in place: caches are dropped and the committed state is
// re-applied from the log. If recovery itself fails the database is
// marked unusable and every later operation (including Close) reports
// the recovery error.
func (tx *Tx) Rollback() error { return tx.rollback(false) }

// rollback implements Rollback. force runs the in-place recovery even
// when no log record was written — the path for failed statements,
// which may have dirtied pages they never got around to logging.
func (tx *Tx) rollback(force bool) error {
	d := tx.d
	if err := tx.finish(); err != nil {
		return err
	}
	defer d.txmu.Unlock()
	d.stmu.Lock()
	writes := d.txWrites
	d.txWrites = 0
	d.stmu.Unlock()
	// Best-effort: the abort record is bookkeeping (it lets the pager
	// prove cached pages of this transaction are finished). A missing
	// abort record is indistinguishable from a crash, which recovery
	// below handles identically.
	abortErr := error(nil)
	if _, err := d.wal.Abort(tx.id); err != nil {
		abortErr = err
	}
	if writes == 0 && !force {
		return abortErr
	}
	if err := d.recoverInPlace(); err != nil {
		err = fmt.Errorf("db: rollback recovery failed, database unusable: %w", err)
		d.stmu.Lock()
		if d.recoveryErr == nil {
			d.recoveryErr = err
		}
		d.stmu.Unlock()
		return err
	}
	return nil
}

// recoverInPlace drops every page cache without write-back and rebuilds
// the on-disk state from the log: redo re-applies committed images,
// loser records are skipped, and the catalog and all storage objects
// are reloaded from the recovered files. Callers must hold txmu and
// exclude concurrent readers.
func (d *DB) recoverInPlace() error {
	for _, t := range d.tables {
		if err := t.Heap.Discard(); err != nil {
			return err
		}
	}
	for _, ix := range d.indexes {
		if err := ix.Tree.Discard(); err != nil {
			return err
		}
	}
	d.tables = make(map[string]*Table)
	d.indexes = make(map[string]*Index)
	if _, err := wal.Redo(d.wal, d.dir, d.fs); err != nil {
		return err
	}
	// Redo published the last committed catalog image (if any), so the
	// deferred catalog write is no longer pending.
	d.stmu.Lock()
	d.catDirty = false
	d.stmu.Unlock()
	return d.openObjects()
}

// usable returns the sticky error that makes the database unusable, if
// any: a failed in-place recovery or a completed Close.
func (d *DB) usable() error {
	d.stmu.Lock()
	defer d.stmu.Unlock()
	if d.recoveryErr != nil {
		return d.recoveryErr
	}
	if d.closed {
		return errors.New("db: database is closed")
	}
	return nil
}

// attachHeap wires a heap file into the WAL: its pager enforces the
// WAL rule and no-steal, and its mutations log page images.
func (d *DB) attachHeap(h *store.HeapFile) {
	if d.wal == nil {
		return
	}
	h.Pager().SetWAL(d.wal)
	h.SetLogger(walLogger{d})
}

// attachTree is attachHeap for B-trees.
func (d *DB) attachTree(bt *store.BTree) {
	if d.wal == nil {
		return
	}
	bt.Pager().SetWAL(d.wal)
	bt.SetLogger(walLogger{d})
}

// WALStats reports write-ahead log activity.
type WALStats struct {
	// Enabled is whether the database has a WAL at all.
	Enabled bool
	// Commits is the number of committed write transactions.
	Commits uint64
	// Syncs is the number of fsyncs the log has issued; with group
	// commit under concurrent load it is much smaller than Commits.
	Syncs uint64
	// DurableLSN and LastLSN are the durable and appended high-water
	// marks.
	DurableLSN, LastLSN uint64
	// FlushInterval is the group-commit collection window.
	FlushInterval time.Duration
	// Checkpoints and CheckpointFailures count completed and failed
	// checkpoint attempts this process life.
	Checkpoints, CheckpointFailures uint64
	// LastCheckpoint describes the most recent completed checkpoint
	// (zero-value until one completes).
	LastCheckpoint CheckpointStats
	// RedoFloor is the redo floor currently installed in the log;
	// SinceCheckpoint is how many WAL bytes have accumulated above it.
	RedoFloor       uint64
	SinceCheckpoint int64
	// FirstSegment and Segments describe the live WAL segment run
	// (FirstSegment > 1 once GC has reclaimed history); SegmentsGCed
	// counts segments unlinked this process life.
	FirstSegment uint32
	Segments     int
	SegmentsGCed uint64
}

// WALStats returns a snapshot of log activity.
func (d *DB) WALStats() WALStats {
	if d.wal == nil {
		return WALStats{}
	}
	d.stmu.Lock()
	commits := d.commits
	ckpts := d.ckptCount
	ckptFails := d.ckptFailures
	lastCkpt := d.lastCkpt
	gcRemoved := d.gcRemoved
	d.stmu.Unlock()
	first, count := d.wal.Segments()
	return WALStats{
		Enabled:            true,
		Commits:            commits,
		Syncs:              d.wal.Syncs(),
		DurableLSN:         d.wal.DurableLSN(),
		LastLSN:            d.wal.LastLSN(),
		FlushInterval:      d.wal.FlushInterval(),
		Checkpoints:        ckpts,
		CheckpointFailures: ckptFails,
		LastCheckpoint:     lastCkpt,
		RedoFloor:          d.wal.RedoFloor(),
		SinceCheckpoint:    d.wal.SinceCheckpoint(),
		FirstSegment:       first,
		Segments:           count,
		SegmentsGCed:       gcRemoved,
	}
}

// SetWALFlushInterval adjusts the group-commit collection window: how
// long the first committer in a batch waits for followers before
// issuing the shared fsync. Zero syncs immediately per commit. No-op
// when the WAL is disabled.
func (d *DB) SetWALFlushInterval(dur time.Duration) {
	if d.wal == nil {
		return
	}
	d.wal.SetFlushInterval(dur)
}
