package db

import (
	"errors"
	"fmt"
	"time"

	"lexequal/internal/store"
	"lexequal/internal/wal"
)

// Tx is a write transaction under snapshot isolation: it reads from
// the snapshot taken at Begin (plus its own writes) and its writes
// become visible to others atomically at Commit. Independent
// transactions run concurrently; two that claim the same row resolve
// by first writer wins, the loser getting ErrSerializationFailure.
// A Tx is finished by exactly one of Commit or Rollback.
//
// Two flavors exist. BeginTx opens a concurrent transaction — any
// number may be in flight, each used by one goroutine at a time. Begin
// opens the *ambient* transaction: it additionally serializes on the
// legacy writer mutex and becomes the transaction that the
// autocommitting Table helpers (Insert, Delete, the DDL statements)
// join — the pre-MVCC single-writer API, preserved for callers that
// drive the db layer directly.
type Tx struct {
	d      *DB
	id     uint64
	joined bool // piggy-backed handle on an already-open transaction
	done   bool
	// owner is the transaction that actually holds the ID, snapshot and
	// write set: the Tx itself, or the ambient transaction a joined
	// handle rides on.
	owner *Tx
	snap  *Snap
	// writes is the compensation log: every heap write in order, undone
	// in reverse on rollback. Guarded by d.stmu.
	writes []txWrite
	// tainted marks a failed mutation that left unlogged dirty pages —
	// compensation cannot undo it; rollback must recover in place.
	// Guarded by d.stmu.
	tainted bool
	// ddl marks a catalog change, which compensation cannot undo
	// either. Guarded by d.stmu.
	ddl bool
	// ambient is whether this transaction holds txmu and is registered
	// as d.activeTx.
	ambient bool
}

// errTxDone is returned by operations on a finished transaction.
var errTxDone = errors.New("db: transaction already finished")

// txLogger adapts the log to store.PageLogger for one transaction:
// captured page images are stamped with its ID. Unlike the pre-MVCC
// ambient logger it carries the transaction explicitly, so any number
// can log concurrently — including a rollback compensating a
// transaction that is already finished.
type txLogger struct {
	d  *DB
	tx *Tx
}

func (w txLogger) LogPage(path string, id store.PageID, payload []byte) (uint64, error) {
	return w.d.wal.LogPage(w.tx.owner.id, path, id, payload)
}

// Begin opens the ambient write transaction, blocking until any other
// ambient transaction finishes. The database must have been opened
// with the WAL enabled (the default).
//
// Concurrency contract: the goroutine that begins an ambient
// transaction is the only one that may use the autocommitting Table
// helpers until it finishes the transaction. For concurrent writers
// use BeginTx.
func (d *DB) Begin() (*Tx, error) {
	if d.wal == nil {
		return nil, errors.New("db: transactions require the write-ahead log (database opened with DisableWAL)")
	}
	if err := d.usable(); err != nil {
		return nil, err
	}
	//lint:ignore errpath txmu is handed off to the returned Tx: held for the transaction's lifetime, released by Commit or Rollback
	d.txmu.Lock()
	if err := d.usable(); err != nil {
		d.txmu.Unlock()
		return nil, err
	}
	tx, err := d.beginTx(true)
	if err != nil {
		d.txmu.Unlock()
		return nil, err
	}
	d.stmu.Lock()
	d.activeTx = tx
	d.stmu.Unlock()
	return tx, nil
}

// BeginTx opens a concurrent write transaction. It never blocks behind
// other transactions; conflicts surface later as
// ErrSerializationFailure from the row that loses a claim race.
func (d *DB) BeginTx() (*Tx, error) {
	if d.wal == nil {
		return nil, errors.New("db: transactions require the write-ahead log (database opened with DisableWAL)")
	}
	if err := d.usable(); err != nil {
		return nil, err
	}
	return d.beginTx(false)
}

// beginTx logs the begin record — whose LSN is the transaction's ID —
// and registers the transaction in flight with its snapshot. The two
// registrations happen before the Tx is returned, so no row can carry
// an ID the registry has not seen.
func (d *DB) beginTx(ambient bool) (*Tx, error) {
	if d.replica {
		return nil, fmt.Errorf("%w: writes must go to the primary", ErrReplica)
	}
	id, err := d.wal.BeginAuto()
	if err != nil {
		return nil, err
	}
	tx := &Tx{d: d, id: id, ambient: ambient}
	tx.owner = tx
	d.tmu.Lock()
	d.inflight[id] = tx
	tx.snap = &Snap{h: d.maxCommit, self: id, reg: true}
	d.snaps[tx.snap] = struct{}{}
	d.tmu.Unlock()
	return tx, nil
}

// Snapshot returns the transaction's read snapshot (taken at Begin:
// repeatable reads, plus the transaction's own writes).
func (tx *Tx) Snapshot() *Snap { return tx.owner.snap }

// InTxn reports whether the ambient write transaction is open.
func (d *DB) InTxn() bool {
	d.stmu.Lock()
	defer d.stmu.Unlock()
	return d.activeTx != nil
}

// Done reports whether the transaction has been finished by Commit or
// Rollback (directly, or by a failed statement aborting it).
func (tx *Tx) Done() bool {
	tx.d.stmu.Lock()
	defer tx.d.stmu.Unlock()
	return tx.owner.done
}

// usableTx fails operations on a finished or tainted transaction.
func (tx *Tx) usableTx() error {
	d := tx.d
	d.stmu.Lock()
	defer d.stmu.Unlock()
	if tx.owner.done {
		return errTxDone
	}
	if tx.owner.tainted {
		return errors.New("db: transaction unusable after a failed mutation; roll it back")
	}
	return nil
}

// noteStoreErr inspects a failed storage mutation: one that left
// unlogged dirty pages behind taints the transaction (compensation can
// no longer prove a clean state; rollback will recover in place). A
// nil receiver (unlogged bulk mode) ignores it.
func (tx *Tx) noteStoreErr(err error) {
	if tx == nil || err == nil || !errors.Is(err, store.ErrUnloggedDirt) {
		return
	}
	d := tx.d
	d.stmu.Lock()
	tx.owner.tainted = true
	d.stmu.Unlock()
}

// track appends one write to the transaction's compensation log. A nil
// receiver (unlogged bulk mode) ignores it.
func (tx *Tx) track(w txWrite) {
	if tx == nil {
		return
	}
	d := tx.d
	d.stmu.Lock()
	tx.owner.writes = append(tx.owner.writes, w)
	d.stmu.Unlock()
}

// markDDL flags the transaction as carrying a catalog change.
func (tx *Tx) markDDL() {
	if tx == nil {
		return
	}
	d := tx.d
	d.stmu.Lock()
	tx.owner.ddl = true
	d.stmu.Unlock()
}

// autoBegin wraps a single mutating operation in a transaction: it
// joins the open ambient transaction if there is one (the operation
// runs as part of it and is finished by the caller's Commit/Rollback),
// begins a fresh ambient one otherwise, and returns nil when the WAL
// is disabled.
func (d *DB) autoBegin() (*Tx, error) {
	if d.wal == nil {
		return nil, nil
	}
	d.stmu.Lock()
	if cur := d.activeTx; cur != nil {
		tx := &Tx{d: d, id: cur.id, joined: true, owner: cur}
		d.stmu.Unlock()
		return tx, nil
	}
	d.stmu.Unlock()
	return d.Begin()
}

// autoEnd finishes an autoBegin transaction: commit on success, roll
// back on failure. When the failed statement ran inside an explicit
// transaction, that whole transaction is rolled back on the spot — its
// owner's later Commit/Rollback reports "already finished", which the
// SQL layer translates to the usual "transaction aborted by an earlier
// error".
func (d *DB) autoEnd(tx *Tx, err error) error {
	if tx == nil {
		return err
	}
	if tx.joined {
		if err != nil {
			if rbErr := tx.owner.Rollback(); rbErr != nil && !errors.Is(rbErr, errTxDone) {
				err = errors.Join(err, rbErr)
			}
		}
		return err
	}
	if err != nil {
		if rbErr := tx.Rollback(); rbErr != nil {
			return errors.Join(err, rbErr)
		}
		return err
	}
	return tx.Commit()
}

// finish marks tx finished exactly once; the ambient transaction is
// also detached from the database. The ambient caller still holds txmu
// and must release it.
func (tx *Tx) finish() error {
	d := tx.d
	d.stmu.Lock()
	defer d.stmu.Unlock()
	if tx.done || tx.joined {
		return errTxDone
	}
	if tx.ambient && d.activeTx != tx {
		return errors.New("db: not the active transaction")
	}
	tx.done = true
	if tx.ambient {
		d.activeTx = nil
	}
	return nil
}

// CommitNoWait appends the commit record and returns without waiting
// for durability. The returned LSN can be passed to WaitDurable later —
// splitting the two lets a session release its locks before blocking
// on the fsync, so concurrent committers batch into one group-commit
// flush.
func (tx *Tx) CommitNoWait() (uint64, error) {
	d := tx.d
	d.stmu.Lock()
	tainted := tx.owner.tainted
	d.stmu.Unlock()
	if tainted {
		// The cache holds changes no log record describes; committing
		// would publish them as durable. Refuse, and take the rollback
		// path the taint demands.
		err := errors.New("db: cannot commit after a failed mutation")
		if rbErr := tx.Rollback(); rbErr != nil && !errors.Is(rbErr, errTxDone) {
			err = errors.Join(err, rbErr)
		}
		return 0, err
	}
	if err := tx.finish(); err != nil {
		return 0, err
	}
	lsn, err := d.commitTx(tx)
	if err != nil {
		// The commit record never reached the log (disk full, I/O
		// error), so the transaction must not look committed — but its
		// writes are live in the page caches and would be served to
		// later snapshots once this ID fell out of the in-flight
		// registry. Undo them by logged compensation while the
		// transaction is still registered, then abort.
		err = fmt.Errorf("db: commit: %w", err)
		if cErr := tx.compensate(); cErr != nil {
			d.wal.Forget(tx.id)
			err = errors.Join(err, d.escalate(tx, cErr))
		} else if aErr := d.abortTx(tx); aErr != nil {
			err = errors.Join(err, d.escalate(tx, aErr))
		} else {
			d.deregister(tx)
		}
		if tx.ambient {
			d.txmu.Unlock()
		}
		return 0, err
	}
	d.ReleaseSnap(tx.snap)
	tx.snap = nil
	if tx.ambient {
		d.txmu.Unlock()
	}
	d.stmu.Lock()
	d.commits++
	d.stmu.Unlock()
	return lsn, nil
}

// Commit makes the transaction durable: all of its writes survive any
// crash from here on.
func (tx *Tx) Commit() error {
	lsn, err := tx.CommitNoWait()
	if err != nil {
		return err
	}
	return tx.d.WaitDurable(lsn)
}

// WaitDurable blocks until every log record at or below lsn is on
// durable storage (joining the group-commit batch in progress, if any).
func (d *DB) WaitDurable(lsn uint64) error {
	if d.wal == nil || lsn == 0 {
		return nil
	}
	return d.wal.WaitDurable(lsn)
}

// Rollback abandons the transaction. Ordinary row writes are undone in
// place by logged compensation — inserts tombstoned, delete claims
// cleared — so concurrent transactions are untouched. A transaction
// that changed the catalog, or whose failed mutation left unlogged
// dirty pages, cannot be compensated; its rollback falls back to
// in-place recovery (drop every cache, replay the log), which requires
// it to be the only transaction in flight — the DDL paths guarantee
// that. If recovery is impossible or fails, the database is marked
// unusable and every later operation reports the error.
func (tx *Tx) Rollback() error {
	d := tx.d
	if err := tx.finish(); err != nil {
		return err
	}
	if tx.ambient {
		defer d.txmu.Unlock()
	}
	d.stmu.Lock()
	tainted, ddl := tx.tainted, tx.ddl
	d.stmu.Unlock()
	if tainted || ddl {
		// No abort record: compensation never ran, so the trail must not
		// be replayed as finished. Forget it instead — redo discards
		// terminator-less trails wholesale and the loser purge removes
		// whatever they left embedded in finished page images.
		d.wal.Forget(tx.id)
		return d.escalate(tx, nil)
	}
	if err := tx.compensate(); err != nil {
		d.wal.Forget(tx.id)
		return d.escalate(tx, err)
	}
	if err := d.abortTx(tx); err != nil {
		return d.escalate(tx, err)
	}
	d.deregister(tx)
	return nil
}

// compensate undoes the transaction's tracked writes in reverse order
// with fresh logged mutations under the same ID. The transaction must
// still be in flight: clearing a claim while its claimant is
// registered is what lets DeleteTx treat any standing claim as
// serious.
func (tx *Tx) compensate() error {
	d := tx.d
	d.stmu.Lock()
	writes := tx.writes
	tx.writes = nil
	d.stmu.Unlock()
	lg := txLogger{d, tx}
	var zero [8]byte
	for i := len(writes) - 1; i >= 0; i-- {
		w := writes[i]
		var err error
		if w.claim {
			d.wmu.Lock()
			err = w.t.Heap.PatchTx(w.rid, verXmaxOff, zero[:], lg)
			d.wmu.Unlock()
		} else {
			err = w.t.Heap.DeleteTx(w.rid, lg)
			if errors.Is(err, store.ErrDeleted) {
				err = nil // already tombstoned by an earlier partial pass
			}
		}
		if err != nil {
			return fmt.Errorf("db: rollback compensation of %s at %v: %w", w.t.Name, w.rid, err)
		}
	}
	return nil
}

// abortTx appends the abort record, which terminates the trail and
// makes it replayable: the forward images followed by the compensation
// images land redo on the undone state, so pages carrying the trail's
// LSNs are safe to flush under no-steal. On append failure the
// transaction is forgotten instead — the trail has no terminator and
// redo will discard it wholesale, which no longer matches the
// compensated state the caches hold — so the caller must escalate to
// in-place recovery.
func (d *DB) abortTx(tx *Tx) error {
	_, err := d.wal.Abort(tx.id)
	if err != nil {
		d.wal.Forget(tx.id)
	}
	return err
}

// escalate is the rollback path of last resort: the transaction's
// effects cannot be (or failed to be) compensated, so the caches are
// dropped and the committed state replayed from the log. That is only
// sound when the database is idle — no other transaction in flight
// (their cached writes would be lost) and no reader mid-plan (the
// catalog maps and storage caches are swapped out wholesale) — and the
// database is otherwise marked unusable. cause, if non-nil, is the
// compensation failure that forced this.
func (d *DB) escalate(tx *Tx, cause error) error {
	d.tmu.RLock()
	_, still := d.inflight[tx.id]
	sole := still && len(d.inflight) == 1
	d.tmu.RUnlock()
	d.deregister(tx)
	if !sole {
		err := fmt.Errorf("db: rollback requires in-place recovery with other transactions in flight; database unusable (cause: %w)", firstErr(cause, errors.New("uncompensatable transaction")))
		d.markUnusable(err)
		return err
	}
	// Readers are fenced by the query lock, so claim it exclusively for
	// the rebuild — TryLock, not Lock, because the rolling-back session
	// may itself still hold it (shared for MVCC statements, exclusive
	// for DDL) and a blocking acquire would self-deadlock. Contention
	// means the database is in use; recovery cannot run safely.
	if !d.qmu.TryLock() {
		err := fmt.Errorf("db: rollback requires in-place recovery while the database is in use; database unusable (cause: %w)", firstErr(cause, errors.New("uncompensatable transaction")))
		d.markUnusable(err)
		return err
	}
	defer d.qmu.Unlock()
	if err := d.recoverInPlace(); err != nil {
		err = fmt.Errorf("db: rollback recovery failed, database unusable: %w", errors.Join(cause, err))
		d.markUnusable(err)
		return err
	}
	return nil
}

// firstErr returns the first non-nil error.
func firstErr(errs ...error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// recoverInPlace drops every page cache without write-back and rebuilds
// the on-disk state from the log: redo re-applies committed images,
// loser records are skipped, rows the losers left embedded in committed
// images are purged by version header, and the catalog and all storage
// objects are reloaded from the recovered files. Callers must ensure no
// other transaction is in flight and no reader is mid-scan (the DDL
// paths hold the query lock exclusively).
func (d *DB) recoverInPlace() error {
	for _, t := range d.tables {
		if err := t.Heap.Discard(); err != nil {
			return err
		}
	}
	for _, ix := range d.indexes {
		if err := ix.Tree.Discard(); err != nil {
			return err
		}
	}
	d.tables = make(map[string]*Table)
	d.indexes = make(map[string]*Index)
	stats, err := wal.Redo(d.wal, d.dir, d.fs)
	if err != nil {
		return err
	}
	if _, err := d.purgeLosers(stats.Losers); err != nil {
		return err
	}
	// Redo published the last committed catalog image (if any), so the
	// deferred catalog write is no longer pending.
	d.stmu.Lock()
	d.catDirty = false
	d.stmu.Unlock()
	return d.openObjects()
}

// usable returns the sticky error that makes the database unusable, if
// any: a failed in-place recovery or a completed Close.
func (d *DB) usable() error {
	d.stmu.Lock()
	defer d.stmu.Unlock()
	if d.recoveryErr != nil {
		return d.recoveryErr
	}
	if d.closed {
		return errors.New("db: database is closed")
	}
	return nil
}

// attachHeap wires a heap file into the WAL: its pager enforces the
// WAL rule and no-steal. Mutations log through per-transaction loggers
// (txLogger), not an ambient per-file one.
func (d *DB) attachHeap(h *store.HeapFile) {
	if d.wal == nil {
		return
	}
	h.Pager().SetWAL(d.wal)
}

// attachTree is attachHeap for B-trees.
func (d *DB) attachTree(bt *store.BTree) {
	if d.wal == nil {
		return
	}
	bt.Pager().SetWAL(d.wal)
}

// WALStats reports write-ahead log activity.
type WALStats struct {
	// Enabled is whether the database has a WAL at all.
	Enabled bool
	// Commits is the number of committed write transactions.
	Commits uint64
	// Syncs is the number of fsyncs the log has issued; with group
	// commit under concurrent load it is much smaller than Commits.
	Syncs uint64
	// DurableLSN and LastLSN are the durable and appended high-water
	// marks.
	DurableLSN, LastLSN uint64
	// FlushInterval is the group-commit collection window.
	FlushInterval time.Duration
	// Checkpoints and CheckpointFailures count completed and failed
	// checkpoint attempts this process life.
	Checkpoints, CheckpointFailures uint64
	// LastCheckpoint describes the most recent completed checkpoint
	// (zero-value until one completes).
	LastCheckpoint CheckpointStats
	// RedoFloor is the redo floor currently installed in the log;
	// SinceCheckpoint is how many WAL bytes have accumulated above it.
	RedoFloor       uint64
	SinceCheckpoint int64
	// FirstSegment and Segments describe the live WAL segment run
	// (FirstSegment > 1 once GC has reclaimed history); SegmentsGCed
	// counts segments unlinked this process life.
	FirstSegment uint32
	Segments     int
	SegmentsGCed uint64
}

// WALStats returns a snapshot of log activity.
func (d *DB) WALStats() WALStats {
	if d.wal == nil {
		return WALStats{}
	}
	d.stmu.Lock()
	commits := d.commits
	ckpts := d.ckptCount
	ckptFails := d.ckptFailures
	lastCkpt := d.lastCkpt
	gcRemoved := d.gcRemoved
	d.stmu.Unlock()
	first, count := d.wal.Segments()
	return WALStats{
		Enabled:            true,
		Commits:            commits,
		Syncs:              d.wal.Syncs(),
		DurableLSN:         d.wal.DurableLSN(),
		LastLSN:            d.wal.LastLSN(),
		FlushInterval:      d.wal.FlushInterval(),
		Checkpoints:        ckpts,
		CheckpointFailures: ckptFails,
		LastCheckpoint:     lastCkpt,
		RedoFloor:          d.wal.RedoFloor(),
		SinceCheckpoint:    d.wal.SinceCheckpoint(),
		FirstSegment:       first,
		Segments:           count,
		SegmentsGCed:       gcRemoved,
	}
}

// SetWALFlushInterval adjusts the group-commit collection window: how
// long the first committer in a batch waits for followers before
// issuing the shared fsync. Zero syncs immediately per commit. No-op
// when the WAL is disabled.
func (d *DB) SetWALFlushInterval(dur time.Duration) {
	if d.wal == nil {
		return
	}
	d.wal.SetFlushInterval(dur)
}
