package db

import (
	"reflect"
	"sort"
	"testing"

	"lexequal/internal/core"
	"lexequal/internal/script"
)

func lexFixture(t *testing.T) (*DB, *LexConfig, *core.Operator) {
	t.Helper()
	d := openDB(t)
	op := core.MustNew(core.Options{})
	texts := []core.Text{
		{Value: "Descartes", Lang: script.English}, // 0
		{Value: "நேரு", Lang: script.Tamil},        // 1
		{Value: "Σαρρη", Lang: script.Greek},       // 2
		{Value: "Nero", Lang: script.English},      // 3
		{Value: "Nehru", Lang: script.English},     // 4
		{Value: "नेहरु", Lang: script.Hindi},       // 5
		{Value: "Gandhi", Lang: script.English},    // 6
		{Value: "गांधी", Lang: script.Hindi},       // 7
		{Value: "காந்தி", Lang: script.Tamil},      // 8
		{Value: "Kathy", Lang: script.English},     // 9
		{Value: "Cathy", Lang: script.English},     // 10
		{Value: "بهنسي", Lang: script.Arabic},      // 11: NORESOURCE
	}
	cfg, err := CreateNameTable(d, "names", op, texts, NameTableSpec{WithAux: true, WithIndexes: true})
	if err != nil {
		t.Fatal(err)
	}
	return d, cfg, op
}

func ids(rows []Row, idCol int) []int64 {
	out := make([]int64, 0, len(rows))
	for _, r := range rows {
		out = append(out, r[idCol].I)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func TestLoaderLayout(t *testing.T) {
	d, cfg, _ := lexFixture(t)
	if cfg.Aux == nil || cfg.IDIndex == nil || cfg.GroupIndex == nil {
		t.Fatal("loader did not build auxiliary structures")
	}
	tbl, _ := d.Table("names")
	if tbl.Count() != 12 {
		t.Errorf("row count = %d", tbl.Count())
	}
	aux, _ := d.Table("names_qgrams")
	if aux.Count() == 0 {
		t.Error("aux table empty")
	}
	// NORESOURCE row has NULL pname and groupid.
	rows, _ := Collect(NewSeqScan(tbl))
	last := rows[11]
	if !last[cfg.PhonCol].IsNull() || !last[cfg.GroupCol].IsNull() {
		t.Errorf("NORESOURCE row has phonemes: %v", last)
	}
	// Other rows carry IPA that parses.
	if rows[4][cfg.PhonCol].S == "" {
		t.Error("English row lacks pname")
	}
}

func TestLexScanNaive(t *testing.T) {
	_, cfg, _ := lexFixture(t)
	q := core.Text{Value: "Nehru", Lang: script.English}
	rows, err := Collect(NewLexScanNaive(cfg, q, 0.30, nil))
	if err != nil {
		t.Fatal(err)
	}
	got := ids(rows, cfg.IDCol)
	for _, want := range []int64{1, 4, 5} {
		if !containsID(got, want) {
			t.Errorf("naive scan missing id %d (got %v)", want, got)
		}
	}
}

func containsID(xs []int64, x int64) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

func TestLexScanStrategiesAgree(t *testing.T) {
	_, cfg, _ := lexFixture(t)
	queries := []core.Text{
		{Value: "Nehru", Lang: script.English},
		{Value: "Gandhi", Lang: script.English},
		{Value: "Cathy", Lang: script.English},
		{Value: "Σαρρη", Lang: script.Greek},
	}
	for _, q := range queries {
		for _, thr := range []float64{0.1, 0.25, 0.3, 0.4} {
			naive, err := Collect(NewLexScanNaive(cfg, q, thr, nil))
			if err != nil {
				t.Fatal(err)
			}
			qg, err := Collect(NewLexScanQGram(cfg, q, thr, nil))
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(ids(naive, cfg.IDCol), ids(qg, cfg.IDCol)) {
				t.Errorf("%v @%v: naive %v != qgram %v", q, thr, ids(naive, cfg.IDCol), ids(qg, cfg.IDCol))
			}
			idx, err := Collect(NewLexScanIndexed(cfg, q, thr, nil))
			if err != nil {
				t.Fatal(err)
			}
			naiveIDs := ids(naive, cfg.IDCol)
			for _, id := range ids(idx, cfg.IDCol) {
				if !containsID(naiveIDs, id) {
					t.Errorf("%v @%v: indexed invented id %d", q, thr, id)
				}
			}
		}
	}
}

func TestLexScanLanguageFilter(t *testing.T) {
	_, cfg, _ := lexFixture(t)
	q := core.Text{Value: "Nehru", Lang: script.English}
	langs := core.NewLangSet(script.Hindi, script.Tamil)
	for name, node := range map[string]Node{
		"naive": NewLexScanNaive(cfg, q, 0.3, langs),
		"qgram": NewLexScanQGram(cfg, q, 0.3, langs),
		"index": NewLexScanIndexed(cfg, q, 0.3, langs),
	} {
		rows, err := Collect(node)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, r := range rows {
			if l := r[cfg.NameCol].Lang; l != script.Hindi && l != script.Tamil {
				t.Errorf("%s leaked language %v", name, l)
			}
		}
	}
}

func TestLexScanErrsWithoutStructures(t *testing.T) {
	d := openDB(t)
	op := core.MustNew(core.Options{})
	cfg, err := CreateNameTable(d, "bare", op, []core.Text{
		{Value: "Nehru", Lang: script.English},
	}, NameTableSpec{}) // no aux, no indexes
	if err != nil {
		t.Fatal(err)
	}
	q := core.Text{Value: "Nehru", Lang: script.English}
	if _, err := Collect(NewLexScanQGram(cfg, q, 0.3, nil)); err == nil {
		t.Error("qgram scan without aux table succeeded")
	}
	if _, err := Collect(NewLexScanIndexed(cfg, q, 0.3, nil)); err == nil {
		t.Error("indexed scan without index succeeded")
	}
	// Naive still works.
	rows, err := Collect(NewLexScanNaive(cfg, q, 0.3, nil))
	if err != nil || len(rows) != 1 {
		t.Errorf("naive scan on bare table = %v, %v", rows, err)
	}
}

func TestLexJoinStrategies(t *testing.T) {
	_, cfg, _ := lexFixture(t)
	type pair struct{ l, r int64 }
	collect := func(strat core.Strategy) map[pair]bool {
		rows, err := Collect(NewLexJoin(cfg, cfg, 0.30, true, strat))
		if err != nil {
			t.Fatal(err)
		}
		w := len(cfg.Table.Columns)
		out := map[pair]bool{}
		for _, r := range rows {
			out[pair{r[cfg.IDCol].I, r[w+cfg.IDCol].I}] = true
		}
		return out
	}
	naive := collect(core.Naive)
	// Cross-language Nehru and Gandhi pairs must be present.
	for _, want := range []pair{{1, 4}, {4, 1}, {1, 5}, {4, 5}, {6, 7}, {7, 8}} {
		if !naive[want] {
			t.Errorf("naive join missing %v", want)
		}
	}
	// Same-language pairs excluded.
	if naive[pair{9, 10}] {
		t.Error("join kept same-language Kathy/Cathy despite diffLang")
	}
	qg := collect(core.QGram)
	if !reflect.DeepEqual(naive, qg) {
		t.Errorf("qgram join differs from naive:\nnaive %v\nqgram %v", naive, qg)
	}
	idx := collect(core.Indexed)
	for p := range idx {
		if !naive[p] {
			t.Errorf("indexed join invented %v", p)
		}
	}
	if len(idx) == 0 {
		t.Error("indexed join found nothing")
	}
}

func TestLexJoinWithoutDiffLang(t *testing.T) {
	_, cfg, _ := lexFixture(t)
	rows, err := Collect(NewLexJoin(cfg, cfg, 0.0, false, core.Indexed))
	if err != nil {
		t.Fatal(err)
	}
	w := len(cfg.Table.Columns)
	found := false
	for _, r := range rows {
		if r[cfg.IDCol].I == 9 && r[w+cfg.IDCol].I == 10 {
			found = true
		}
	}
	if !found {
		t.Error("indexed join missed identical-phoneme Kathy/Cathy")
	}
}

func TestLexEqualUDF(t *testing.T) {
	_, cfg, op := lexFixture(t)
	r := NewFuncRegistry()
	RegisterLexEqualUDF(r, op)
	fn, ok := r.Lookup("LEXEQUAL")
	if !ok {
		t.Fatal("lexequal UDF not registered")
	}
	v, err := fn([]Value{NStr("Nehru", script.English), NStr("नेहरु", script.Hindi), Float(0.3)})
	if err != nil || v.I != 1 {
		t.Errorf("lexequal UDF = %v, %v", v, err)
	}
	v, err = fn([]Value{NStr("Nehru", script.English), NStr("Gandhi", script.English), Float(0.3)})
	if err != nil || v.I != 0 {
		t.Errorf("lexequal non-match = %v, %v", v, err)
	}
	// NORESOURCE yields NULL.
	v, err = fn([]Value{NStr("Nehru", script.English), NStr("بهنسي", script.Arabic), Float(0.3)})
	if err != nil || !v.IsNull() {
		t.Errorf("lexequal NORESOURCE = %v, %v", v, err)
	}
	// Bad arguments.
	if _, err := fn([]Value{Str("x"), Str("y"), Float(0.3)}); err == nil {
		t.Error("non-NSTRING arguments accepted")
	}
	if _, err := fn([]Value{NStr("x", script.English)}); err == nil {
		t.Error("wrong arity accepted")
	}
	// soundex and phonemes UDFs.
	sdx, _ := r.Lookup("soundex")
	v, err = sdx([]Value{Str("Nehru")})
	if err != nil || v.S != "N600" {
		t.Errorf("soundex UDF = %v, %v", v, err)
	}
	ph, _ := r.Lookup("phonemes")
	v, err = ph([]Value{NStr("Nehru", script.English)})
	if err != nil || v.S != "neːru" {
		t.Errorf("phonemes UDF = %v, %v", v, err)
	}
	// UDF in a query plan: count matches via Filter.
	call := &Call{Name: "lexequal", Fn: fn, Args: []Expr{
		&ColRef{Idx: cfg.NameCol},
		&Const{V: NStr("Nehru", script.English)},
		&Const{V: Float(0.3)},
	}}
	rows, err := Collect(&Filter{Child: NewSeqScan(cfg.Table), Pred: call})
	if err != nil {
		t.Fatal(err)
	}
	got := ids(rows, cfg.IDCol)
	for _, want := range []int64{1, 4, 5} {
		if !containsID(got, want) {
			t.Errorf("UDF filter missing id %d (got %v)", want, got)
		}
	}
}

// weakLexFixture loads the glottal-heavy lexicon whose cheap
// projection-shifting edits (/ha/~/ka/) regressed the unslacked q-gram
// strategy budget; see core's weakCatalog twin.
func weakLexFixture(t *testing.T) (*DB, *LexConfig) {
	t.Helper()
	d := openDB(t)
	op := core.MustNew(core.Options{})
	var texts []core.Text
	for _, w := range []string{
		"Ha", "Ka", "Hahn", "Kahn", "Khan", "Han", "Aha",
		"Hoho", "Koko", "Oh", "Nehru", "Neru", "Kathy", "Cathy",
	} {
		texts = append(texts, core.Text{Value: w, Lang: script.English})
	}
	cfg, err := CreateNameTable(d, "weak", op, texts, NameTableSpec{WithAux: true, WithIndexes: true})
	if err != nil {
		t.Fatal(err)
	}
	return d, cfg
}

// TestLexScanQGramWeakLexicon is the db-plan half of the budget-slack
// regression: the q-gram scan and join must agree exactly with naive on
// the weak-phoneme lexicon (the scan plan budgets per pair at collect
// time, the join plan per probe posting).
func TestLexScanQGramWeakLexicon(t *testing.T) {
	_, cfg := weakLexFixture(t)
	for _, w := range []string{"Ha", "Ka", "Hahn", "Khan", "Aha", "Oh", "Koko"} {
		q := core.Text{Value: w, Lang: script.English}
		for _, thr := range []float64{0.1, 0.3, 0.5} {
			naive, err := Collect(NewLexScanNaive(cfg, q, thr, nil))
			if err != nil {
				t.Fatal(err)
			}
			qg, err := Collect(NewLexScanQGram(cfg, q, thr, nil))
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(ids(naive, cfg.IDCol), ids(qg, cfg.IDCol)) {
				t.Errorf("%v @%v: naive %v != qgram %v", q, thr, ids(naive, cfg.IDCol), ids(qg, cfg.IDCol))
			}
		}
	}
	// /ka/ must find /ha/ (id 0): one intra-cluster substitution.
	q := core.Text{Value: "Ka", Lang: script.English}
	rows, err := Collect(NewLexScanQGram(cfg, q, 0.30, nil))
	if err != nil {
		t.Fatal(err)
	}
	if !containsID(ids(rows, cfg.IDCol), 0) {
		t.Error("qgram scan falsely dismissed /ha/ for query /ka/")
	}
	// Join agreement on the same lexicon.
	type pair struct{ l, r int64 }
	collect := func(strat core.Strategy) map[pair]bool {
		rows, err := Collect(NewLexJoin(cfg, cfg, 0.30, false, strat))
		if err != nil {
			t.Fatal(err)
		}
		w := len(cfg.Table.Columns)
		out := map[pair]bool{}
		for _, r := range rows {
			out[pair{r[cfg.IDCol].I, r[w+cfg.IDCol].I}] = true
		}
		return out
	}
	naive := collect(core.Naive)
	qg := collect(core.QGram)
	if !reflect.DeepEqual(naive, qg) {
		t.Errorf("weak-lexicon join: naive %v != qgram %v", naive, qg)
	}
	if !naive[pair{0, 1}] {
		t.Error("naive join missing the /ha/~/ka/ pair itself")
	}
}

// TestJoinKernelCrossModel asserts the EXPLAIN-facing contract: a join
// whose sides carry different cost models is forced onto the scalar
// kernel with a reason EXPLAIN appends, and still returns the same rows
// (verification always runs under the left model).
func TestJoinKernelCrossModel(t *testing.T) {
	_, cfg, _ := lexFixture(t)
	cfg.Kernel = core.KernelAuto
	if k, reason := JoinKernel(cfg, cfg); k != cfg.Kernel || reason != "" {
		t.Errorf("same-model JoinKernel = %v %q", k, reason)
	}
	other := *cfg
	other.Op = core.MustNew(core.Options{ICSC: 0.5, ICSCSet: true})
	k, reason := JoinKernel(cfg, &other)
	if k != core.KernelScalar {
		t.Errorf("cross-model JoinKernel = %v, want scalar", k)
	}
	if reason != "cross-model join" {
		t.Errorf("cross-model reason = %q", reason)
	}
	// The downgrade changes the execution path, never the rows: the
	// cross-model join verifies under the left model either way.
	same, err := Collect(NewLexJoin(cfg, cfg, 0.30, true, core.QGram))
	if err != nil {
		t.Fatal(err)
	}
	cross, err := Collect(NewLexJoin(cfg, &other, 0.30, true, core.QGram))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(same, cross) {
		t.Errorf("cross-model join rows differ from same-model join")
	}
}
