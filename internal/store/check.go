package store

import (
	"encoding/binary"
	"fmt"
	"math"
	"sort"
)

// Issue is one problem found by an integrity check: the file, the page
// (InvalidPage for file-level issues) and a human-readable detail.
type Issue struct {
	Path   string
	Page   PageID
	Detail string
}

func (i Issue) String() string {
	if i.Page == InvalidPage {
		return fmt.Sprintf("%s: %s", i.Path, i.Detail)
	}
	return fmt.Sprintf("%s page %d: %s", i.Path, i.Page, i.Detail)
}

// Check verifies every page of the heap: checksums (implicitly, via the
// read path), slot-directory sanity, record extents, and that the meta
// counters agree with what the pages actually hold. It returns the
// issues found; an empty slice means the heap is sound.
func (h *HeapFile) Check() []Issue {
	var issues []Issue
	path := h.pg.Path()
	add := func(page PageID, format string, args ...interface{}) {
		issues = append(issues, Issue{Path: path, Page: page, Detail: fmt.Sprintf(format, args...)})
	}

	numPages := h.pg.NumPages()
	if numPages == 0 {
		add(InvalidPage, "heap has no meta page")
		return issues
	}
	if h.lastPage != InvalidPage && (h.lastPage == 0 || uint32(h.lastPage) >= numPages) {
		add(InvalidPage, "meta last-page %d is out of range (file has %d pages)", h.lastPage, numPages)
	}

	var live uint64
	for id := PageID(1); uint32(id) < numPages; id++ {
		p, err := h.pg.Get(id)
		if err != nil {
			add(id, "unreadable: %v", err)
			continue
		}
		n, freeOff, err := h.pageSlots(p)
		if err != nil {
			add(id, "%v", err)
			h.pg.Unpin(p)
			continue
		}
		// Collect live record extents and verify each lies in the record
		// area; then check they do not overlap.
		type extent struct {
			slot     int
			off, end int
		}
		var exts []extent
		for s := 0; s < n; s++ {
			rec, err := h.slotRecord(p, s, freeOff)
			if err != nil {
				add(id, "%v", err)
				continue
			}
			if rec == nil {
				continue // tombstone
			}
			live++
			slot := heapSlotBase + s*heapSlotSize
			off := int(binary.LittleEndian.Uint16(p.Data[slot:]))
			exts = append(exts, extent{slot: s, off: off, end: off + len(rec)})
		}
		sort.Slice(exts, func(a, b int) bool { return exts[a].off < exts[b].off })
		for i := 1; i < len(exts); i++ {
			if exts[i].off < exts[i-1].end {
				add(id, "records of slots %d and %d overlap", exts[i-1].slot, exts[i].slot)
			}
		}
		h.pg.Unpin(p)
	}
	if live != h.count {
		add(InvalidPage, "meta records %d live rows but pages hold %d", h.count, live)
	}
	return issues
}

// Check verifies the B+tree's structural invariants: node headers, key
// bounds per subtree, uniform leaf depth, an acyclic leaf chain that
// matches the tree order, global (key, value) ordering, and the entry
// count against the meta page. It returns the issues found; an empty
// slice means the tree is sound.
func (t *BTree) Check() []Issue {
	c := &btreeChecker{t: t, visited: make(map[PageID]bool), leafDepth: -1}
	c.walk(t.root, 0, 0, math.MaxUint64)

	path := t.pg.Path()
	// The leaf chain must enumerate exactly the DFS leaf order.
	for i, id := range c.leaves {
		want := InvalidPage
		if i+1 < len(c.leaves) {
			want = c.leaves[i+1]
		}
		if got := c.leafNext[id]; got != want {
			c.add(id, "leaf chain points to page %d, tree order expects %d", got, want)
		}
	}
	if c.entries != t.count {
		c.issues = append(c.issues, Issue{Path: path, Page: InvalidPage,
			Detail: fmt.Sprintf("meta records %d entries but leaves hold %d", t.count, c.entries)})
	}
	return c.issues
}

type btreeChecker struct {
	t         *BTree
	visited   map[PageID]bool
	issues    []Issue
	leaves    []PageID
	leafNext  map[PageID]PageID
	leafDepth int
	entries   uint64
	// lastKey/lastVal track global (key, value) order across leaves.
	lastKey, lastVal uint64
	haveLast         bool
}

func (c *btreeChecker) add(page PageID, format string, args ...interface{}) {
	c.issues = append(c.issues, Issue{Path: c.t.pg.Path(), Page: page,
		Detail: fmt.Sprintf(format, args...)})
}

// walk validates the subtree rooted at id; every key in it must lie in
// [lo, hi]. Both bounds are inclusive because duplicates equal to a
// separator key may legally live in the subtree to the separator's left.
func (c *btreeChecker) walk(id PageID, depth int, lo, hi uint64) {
	if depth > maxDepth {
		c.add(id, "subtree deeper than %d levels (pointer cycle?)", maxDepth)
		return
	}
	if c.visited[id] {
		c.add(id, "page reachable twice (cycle or shared child)")
		return
	}
	c.visited[id] = true

	p, err := c.t.node(id)
	if err != nil {
		c.add(id, "unreadable: %v", err)
		return
	}
	defer c.t.pg.Unpin(p)
	n := nodeCount(p)

	if nodeKind(p) == nodeLeaf {
		if c.leafDepth == -1 {
			c.leafDepth = depth
		} else if depth != c.leafDepth {
			c.add(id, "leaf at depth %d, expected %d (unbalanced tree)", depth, c.leafDepth)
		}
		if c.leafNext == nil {
			c.leafNext = make(map[PageID]PageID)
		}
		c.leaves = append(c.leaves, id)
		c.leafNext[id] = leafNext(p)
		for i := 0; i < n; i++ {
			k, v := leafKey(p, i), leafVal(p, i)
			if k < lo || k > hi {
				c.add(id, "key %d at slot %d escapes its subtree bounds [%d, %d]", k, i, lo, hi)
			}
			if c.haveLast && (k < c.lastKey || (k == c.lastKey && v < c.lastVal)) {
				c.add(id, "entry (%d, %d) at slot %d breaks (key, value) order after (%d, %d)",
					k, v, i, c.lastKey, c.lastVal)
			}
			c.lastKey, c.lastVal, c.haveLast = k, v, true
			c.entries++
		}
		return
	}

	// Internal node: separator keys must be non-decreasing and inside
	// the inherited bounds; each child recurses with narrowed bounds.
	if n == 0 {
		c.add(id, "internal node with no separator keys")
		return
	}
	for i := 0; i < n; i++ {
		k := innerKey(p, i)
		if k < lo || k > hi {
			c.add(id, "separator %d at slot %d escapes bounds [%d, %d]", k, i, lo, hi)
		}
		if i > 0 && k < innerKey(p, i-1) {
			c.add(id, "separator order broken at slot %d (%d after %d)", i, k, innerKey(p, i-1))
		}
	}
	c.walk(innerLeft(p), depth+1, lo, innerKey(p, 0))
	for i := 0; i < n; i++ {
		childHi := hi
		if i+1 < n {
			childHi = innerKey(p, i+1)
		}
		c.walk(innerChild(p, i), depth+1, innerKey(p, i), childHi)
	}
}
