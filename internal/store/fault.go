package store

import (
	"errors"
	"fmt"
	"os"
	"sync"
	"syscall"
)

// ErrInjected marks errors produced by FaultFS, so tests can tell an
// injected fault from a real one.
var ErrInjected = errors.New("store: injected fault")

// FaultMode selects how an injected write fault manifests on disk.
type FaultMode int

// Fault modes.
const (
	// FaultError fails the operation cleanly: no bytes reach the file.
	FaultError FaultMode = iota
	// FaultShort persists only the first half of the buffer, then
	// fails — a short write at process death.
	FaultShort
	// FaultTorn persists alternating 512-byte sectors of the buffer,
	// then fails — a torn page, where the drive committed some sectors
	// of a page write but not others.
	FaultTorn
	// FaultDiskFull persists the first half of the buffer, then fails
	// with ENOSPC — and, uniquely, the filesystem STAYS UP: the fault
	// models a full disk, not a dead process, so the engine is expected
	// to degrade gracefully (fail the operation, keep serving) and the
	// next attempt finds space again. A FailSync armed with this mode
	// likewise fails once with ENOSPC without taking the filesystem
	// down.
	FaultDiskFull
)

func (m FaultMode) String() string {
	switch m {
	case FaultError:
		return "error"
	case FaultShort:
		return "short"
	case FaultTorn:
		return "torn"
	case FaultDiskFull:
		return "diskfull"
	default:
		return fmt.Sprintf("FaultMode(%d)", int(m))
	}
}

// FaultFS wraps a VFS and injects one deterministic fault: the Nth
// write (counted across every file opened through it), the Nth sync,
// or the Nth remove fails in the configured mode. After the fault
// fires the filesystem goes down — every subsequent read, write, sync,
// open, rename and remove fails — modeling a crashed process or dead
// disk: nothing after the fault point reaches storage. The damaged
// files remain on disk for a later reopen with a clean VFS. The one
// exception is FaultDiskFull, which fails the armed operation with
// ENOSPC and leaves the filesystem up.
//
// The zero value (no fault armed) counts operations without ever
// failing, which is how sweeps size themselves:
//
//	counter := &store.FaultFS{}
//	load(counter)                       // run once, cleanly
//	for n := 1; n <= counter.Writes(); n++ {
//	    load(&store.FaultFS{FailWrite: n, Mode: store.FaultTorn})
//	    // reopen and verify detection
//	}
//
// FaultFS is safe for concurrent use (checkpoints run alongside
// serving traffic in the torture tests); the armed fault still fires
// exactly once.
type FaultFS struct {
	// Base is the wrapped VFS; nil means OSFS.
	Base VFS
	// FailWrite is the 1-based index of the WriteAt call to fault;
	// 0 never faults a write.
	FailWrite int
	// FailSync is the 1-based index of the Sync call to fault;
	// 0 never faults a sync.
	FailSync int
	// FailRemove is the 1-based index of the Remove call to fault —
	// the GC-unlink crash point; 0 never faults a remove. Remove
	// faults are always fail-stop (a crash mid-unlink), regardless of
	// Mode.
	FailRemove int
	// Mode is how the faulted write manifests (sync faults behave like
	// FaultError — the data simply never becomes durable — except
	// under FaultDiskFull, which is transient).
	Mode FaultMode

	mu      sync.Mutex
	writes  int
	syncs   int
	removes int
	tripped bool
}

// Writes returns the number of WriteAt calls observed.
func (fs *FaultFS) Writes() int {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.writes
}

// Syncs returns the number of Sync calls observed.
func (fs *FaultFS) Syncs() int {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.syncs
}

// Removes returns the number of Remove calls observed.
func (fs *FaultFS) Removes() int {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.removes
}

// ArmWrite arms (or re-arms) the write fault at the 1-based index n in
// the given mode; pass fs.Writes()+1 to fault the very next write. The
// fields are guarded by the same lock the write path reads them under,
// so a live filesystem can be armed between operations.
func (fs *FaultFS) ArmWrite(n int, mode FaultMode) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.FailWrite = n
	fs.Mode = mode
}

// Tripped reports whether the armed fault has fired.
func (fs *FaultFS) Tripped() bool {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.tripped
}

func (fs *FaultFS) base() VFS {
	if fs.Base == nil {
		return OSFS{}
	}
	return fs.Base
}

func (fs *FaultFS) down(op string) error {
	return fmt.Errorf("store: %s after crash point: %w", op, ErrInjected)
}

// isDown reports (under mu) whether the filesystem has failed stop.
func (fs *FaultFS) isDown() bool {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.tripped
}

// OpenFile implements VFS.
func (fs *FaultFS) OpenFile(path string, flag int, perm os.FileMode) (File, error) {
	if fs.isDown() {
		return nil, fs.down("open " + path)
	}
	f, err := fs.base().OpenFile(path, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: fs, f: f, path: path}, nil
}

// Rename implements VFS.
func (fs *FaultFS) Rename(oldPath, newPath string) error {
	if fs.isDown() {
		return fs.down("rename " + oldPath)
	}
	return fs.base().Rename(oldPath, newPath)
}

// Remove implements VFS.
func (fs *FaultFS) Remove(path string) error {
	fs.mu.Lock()
	if fs.tripped {
		fs.mu.Unlock()
		return fs.down("remove " + path)
	}
	fs.removes++
	if fs.FailRemove != 0 && fs.removes == fs.FailRemove {
		fs.tripped = true
		n := fs.removes
		fs.mu.Unlock()
		return fmt.Errorf("store: remove %d of %s: %w", n, path, ErrInjected)
	}
	fs.mu.Unlock()
	return fs.base().Remove(path)
}

// RemoveAll implements VFS.
func (fs *FaultFS) RemoveAll(path string) error {
	if fs.isDown() {
		return fs.down("remove all " + path)
	}
	return fs.base().RemoveAll(path)
}

// Stat implements VFS.
func (fs *FaultFS) Stat(path string) (os.FileInfo, error) {
	if fs.isDown() {
		return nil, fs.down("stat " + path)
	}
	return fs.base().Stat(path)
}

// MkdirAll implements VFS.
func (fs *FaultFS) MkdirAll(path string, perm os.FileMode) error {
	if fs.isDown() {
		return fs.down("mkdir " + path)
	}
	return fs.base().MkdirAll(path, perm)
}

type faultFile struct {
	fs   *FaultFS
	f    File
	path string
}

func (ff *faultFile) ReadAt(p []byte, off int64) (int, error) {
	if ff.fs.isDown() {
		return 0, ff.fs.down("read " + ff.path)
	}
	return ff.f.ReadAt(p, off)
}

func (ff *faultFile) WriteAt(p []byte, off int64) (int, error) {
	fs := ff.fs
	fs.mu.Lock()
	if fs.tripped {
		fs.mu.Unlock()
		return 0, fs.down("write " + ff.path)
	}
	fs.writes++
	fire := fs.FailWrite != 0 && fs.writes == fs.FailWrite
	if fire && fs.Mode != FaultDiskFull {
		fs.tripped = true
	}
	n := fs.writes
	mode := fs.Mode
	fs.mu.Unlock()
	if !fire {
		return ff.f.WriteAt(p, off)
	}
	err := fmt.Errorf("store: write %d of %s (%s): %w", n, ff.path, mode, ErrInjected)
	switch mode {
	case FaultShort:
		half := len(p) / 2
		if _, werr := ff.f.WriteAt(p[:half], off); werr != nil {
			return 0, werr
		}
		return half, err
	case FaultDiskFull:
		half := len(p) / 2
		if _, werr := ff.f.WriteAt(p[:half], off); werr != nil {
			return 0, werr
		}
		return half, fmt.Errorf("store: write %d of %s: %w: %w", n, ff.path, syscall.ENOSPC, ErrInjected)
	case FaultTorn:
		const sector = 512
		written := 0
		for s := 0; s < len(p); s += 2 * sector {
			end := s + sector
			if end > len(p) {
				end = len(p)
			}
			if _, werr := ff.f.WriteAt(p[s:end], off+int64(s)); werr != nil {
				return written, werr
			}
			written += end - s
		}
		return written, err
	default:
		return 0, err
	}
}

// Truncate counts as a write for fault accounting: it mutates on-disk
// state just like WriteAt, so crash sweeps must cover it.
func (ff *faultFile) Truncate(size int64) error {
	fs := ff.fs
	fs.mu.Lock()
	if fs.tripped {
		fs.mu.Unlock()
		return fs.down("truncate " + ff.path)
	}
	fs.writes++
	fire := fs.FailWrite != 0 && fs.writes == fs.FailWrite
	if fire && fs.Mode != FaultDiskFull {
		fs.tripped = true
	}
	n := fs.writes
	mode := fs.Mode
	fs.mu.Unlock()
	if !fire {
		return ff.f.Truncate(size)
	}
	if mode == FaultDiskFull {
		return fmt.Errorf("store: write %d (truncate) of %s: %w: %w", n, ff.path, syscall.ENOSPC, ErrInjected)
	}
	return fmt.Errorf("store: write %d (truncate) of %s: %w", n, ff.path, ErrInjected)
}

func (ff *faultFile) Sync() error {
	fs := ff.fs
	fs.mu.Lock()
	if fs.tripped {
		fs.mu.Unlock()
		return fs.down("sync " + ff.path)
	}
	fs.syncs++
	fire := fs.FailSync != 0 && fs.syncs == fs.FailSync
	if fire && fs.Mode != FaultDiskFull {
		fs.tripped = true
	}
	n := fs.syncs
	mode := fs.Mode
	fs.mu.Unlock()
	if !fire {
		return ff.f.Sync()
	}
	if mode == FaultDiskFull {
		return fmt.Errorf("store: sync %d of %s: %w: %w", n, ff.path, syscall.ENOSPC, ErrInjected)
	}
	return fmt.Errorf("store: sync %d of %s: %w", n, ff.path, ErrInjected)
}

// Close always reaches the real file, even after the fault fired, so
// descriptors are not leaked by crashed loads.
func (ff *faultFile) Close() error { return ff.f.Close() }

func (ff *faultFile) Stat() (os.FileInfo, error) { return ff.f.Stat() }
