package store

import (
	"errors"
	"fmt"
	"os"
)

// ErrInjected marks errors produced by FaultFS, so tests can tell an
// injected fault from a real one.
var ErrInjected = errors.New("store: injected fault")

// FaultMode selects how an injected write fault manifests on disk.
type FaultMode int

// Fault modes.
const (
	// FaultError fails the operation cleanly: no bytes reach the file.
	FaultError FaultMode = iota
	// FaultShort persists only the first half of the buffer, then
	// fails — a short write at process death.
	FaultShort
	// FaultTorn persists alternating 512-byte sectors of the buffer,
	// then fails — a torn page, where the drive committed some sectors
	// of a page write but not others.
	FaultTorn
)

func (m FaultMode) String() string {
	switch m {
	case FaultError:
		return "error"
	case FaultShort:
		return "short"
	case FaultTorn:
		return "torn"
	default:
		return fmt.Sprintf("FaultMode(%d)", int(m))
	}
}

// FaultFS wraps a VFS and injects one deterministic fault: the Nth
// write (counted across every file opened through it) or the Nth sync
// fails in the configured mode. After the fault fires the filesystem
// goes down — every subsequent read, write, sync, open and rename
// fails — modeling a crashed process or dead disk: nothing after the
// fault point reaches storage. The damaged files remain on disk for a
// later reopen with a clean VFS.
//
// The zero value (no fault armed) counts operations without ever
// failing, which is how sweeps size themselves:
//
//	counter := &store.FaultFS{}
//	load(counter)                       // run once, cleanly
//	for n := 1; n <= counter.Writes(); n++ {
//	    load(&store.FaultFS{FailWrite: n, Mode: store.FaultTorn})
//	    // reopen and verify detection
//	}
//
// FaultFS is not safe for concurrent use (the engine serializes I/O).
type FaultFS struct {
	// Base is the wrapped VFS; nil means OSFS.
	Base VFS
	// FailWrite is the 1-based index of the WriteAt call to fault;
	// 0 never faults a write.
	FailWrite int
	// FailSync is the 1-based index of the Sync call to fault;
	// 0 never faults a sync.
	FailSync int
	// Mode is how the faulted write manifests (sync faults always
	// behave like FaultError: the data simply never becomes durable).
	Mode FaultMode

	writes  int
	syncs   int
	tripped bool
}

// Writes returns the number of WriteAt calls observed.
func (fs *FaultFS) Writes() int { return fs.writes }

// Syncs returns the number of Sync calls observed.
func (fs *FaultFS) Syncs() int { return fs.syncs }

// Tripped reports whether the armed fault has fired.
func (fs *FaultFS) Tripped() bool { return fs.tripped }

func (fs *FaultFS) base() VFS {
	if fs.Base == nil {
		return OSFS{}
	}
	return fs.Base
}

func (fs *FaultFS) down(op string) error {
	return fmt.Errorf("store: %s after crash point: %w", op, ErrInjected)
}

// OpenFile implements VFS.
func (fs *FaultFS) OpenFile(path string, flag int, perm os.FileMode) (File, error) {
	if fs.tripped {
		return nil, fs.down("open " + path)
	}
	f, err := fs.base().OpenFile(path, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: fs, f: f, path: path}, nil
}

// Rename implements VFS.
func (fs *FaultFS) Rename(oldPath, newPath string) error {
	if fs.tripped {
		return fs.down("rename " + oldPath)
	}
	return fs.base().Rename(oldPath, newPath)
}

// Remove implements VFS.
func (fs *FaultFS) Remove(path string) error {
	if fs.tripped {
		return fs.down("remove " + path)
	}
	return fs.base().Remove(path)
}

// RemoveAll implements VFS.
func (fs *FaultFS) RemoveAll(path string) error {
	if fs.tripped {
		return fs.down("remove all " + path)
	}
	return fs.base().RemoveAll(path)
}

// Stat implements VFS.
func (fs *FaultFS) Stat(path string) (os.FileInfo, error) {
	if fs.tripped {
		return nil, fs.down("stat " + path)
	}
	return fs.base().Stat(path)
}

// MkdirAll implements VFS.
func (fs *FaultFS) MkdirAll(path string, perm os.FileMode) error {
	if fs.tripped {
		return fs.down("mkdir " + path)
	}
	return fs.base().MkdirAll(path, perm)
}

type faultFile struct {
	fs   *FaultFS
	f    File
	path string
}

func (ff *faultFile) ReadAt(p []byte, off int64) (int, error) {
	if ff.fs.tripped {
		return 0, ff.fs.down("read " + ff.path)
	}
	return ff.f.ReadAt(p, off)
}

func (ff *faultFile) WriteAt(p []byte, off int64) (int, error) {
	fs := ff.fs
	if fs.tripped {
		return 0, fs.down("write " + ff.path)
	}
	fs.writes++
	if fs.FailWrite == 0 || fs.writes != fs.FailWrite {
		return ff.f.WriteAt(p, off)
	}
	fs.tripped = true
	err := fmt.Errorf("store: write %d of %s (%s): %w", fs.writes, ff.path, fs.Mode, ErrInjected)
	switch fs.Mode {
	case FaultShort:
		n := len(p) / 2
		if _, werr := ff.f.WriteAt(p[:n], off); werr != nil {
			return 0, werr
		}
		return n, err
	case FaultTorn:
		const sector = 512
		written := 0
		for s := 0; s < len(p); s += 2 * sector {
			end := s + sector
			if end > len(p) {
				end = len(p)
			}
			if _, werr := ff.f.WriteAt(p[s:end], off+int64(s)); werr != nil {
				return written, werr
			}
			written += end - s
		}
		return written, err
	default:
		return 0, err
	}
}

// Truncate counts as a write for fault accounting: it mutates on-disk
// state just like WriteAt, so crash sweeps must cover it.
func (ff *faultFile) Truncate(size int64) error {
	fs := ff.fs
	if fs.tripped {
		return fs.down("truncate " + ff.path)
	}
	fs.writes++
	if fs.FailWrite != 0 && fs.writes == fs.FailWrite {
		fs.tripped = true
		return fmt.Errorf("store: write %d (truncate) of %s: %w", fs.writes, ff.path, ErrInjected)
	}
	return ff.f.Truncate(size)
}

func (ff *faultFile) Sync() error {
	fs := ff.fs
	if fs.tripped {
		return fs.down("sync " + ff.path)
	}
	fs.syncs++
	if fs.FailSync != 0 && fs.syncs == fs.FailSync {
		fs.tripped = true
		return fmt.Errorf("store: sync %d of %s: %w", fs.syncs, ff.path, ErrInjected)
	}
	return ff.f.Sync()
}

// Close always reaches the real file, even after the fault fired, so
// descriptors are not leaked by crashed loads.
func (ff *faultFile) Close() error { return ff.f.Close() }

func (ff *faultFile) Stat() (os.FileInfo, error) { return ff.f.Stat() }
