// Package store implements the on-disk storage substrate the efficiency
// experiments run on: a page cache (buffer pool) over a single file,
// slotted-page heap files for table rows, and a persistent B+tree used
// as the database index for the grouped phoneme string identifiers of
// §5.3. The paper ran on a commercial DBMS; this package supplies the
// equivalent access paths (full scans and B-tree probes against disk
// pages) so the relative costs of the three LexEQUAL strategies have the
// same shape.
//
// Durability model (format version 3): every page carries a 16-byte
// trailer holding the pageLSN of its last logged change and a CRC32-C
// checksum over payload+pageID+pageLSN, stamped on write-back and
// verified on every read from disk, so torn writes, bit flips and
// misdirected writes surface as a typed CorruptPageError instead of
// garbage data. In-place updates are crash-atomic when a write-ahead
// log is attached (SetWAL; see internal/wal and DESIGN.md §11): the
// pager enforces the WAL rule on write-back and the no-steal policy on
// eviction, and recovery replays committed page images, gated on the
// pageLSN, over whatever state the crash left. Bulk loads keep their
// rename-based atomicity (internal/db.BuildAtomic) and run without a
// WAL.
package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
	"sync/atomic"
)

// PageSize is the unit of I/O. 4 KiB matches common DBMS defaults.
const PageSize = 4096

// FormatVersion is the on-disk page format. Version 2 introduced the
// per-page checksum trailer; version 3 widened it with the pageLSN the
// recovery pass gates redo on. Older versions are rejected.
const FormatVersion = 3

// pageTrailerSize bytes at the end of every page hold the integrity
// trailer: the pageLSN at [UsableSize:UsableSize+8), CRC32-C over
// payload+pageID+pageLSN at [UsableSize+8:UsableSize+12), the format
// version at [UsableSize+12:UsableSize+14), 2 reserved bytes.
const pageTrailerSize = 16

// UsableSize is the payload area of a page available to the heap and
// B-tree layouts; the trailer occupies the rest.
const UsableSize = PageSize - pageTrailerSize

// PageID identifies a page within one file; page 0 is the file's meta
// page, owned by the structure (heap/btree) living in the file.
type PageID uint32

// InvalidPage is the nil page reference.
const InvalidPage PageID = 0xFFFFFFFF

// Page is one cached page. Callers must hold a pin (via Pager.Get or
// Pager.Allocate) while reading or writing Data, call MarkDirty after
// modifying it, and Unpin it when done. Only Data[:UsableSize] is
// payload; the trailer is owned by the pager.
type Page struct {
	ID   PageID
	Data [PageSize]byte

	pins  int
	dirty bool
	// lsn is the LSN of the page's latest log record (0 when the page
	// was never logged). Guarded by the pager latch on every access
	// that can race (LogCaptured vs. write-back).
	lsn uint64
	// recLSN is the LSN of the page's FIRST log record since it was
	// last clean on disk (the ARIES dirty-page-table recovery LSN):
	// every logged change the on-disk image is missing has LSN >=
	// recLSN, so min(recLSN)-1 over dirty pages is a safe redo floor.
	// Set by LogCaptured when zero, cleared by write-back. Guarded by
	// the pager latch like lsn.
	recLSN uint64
	pg  *Pager
	// LRU bookkeeping.
	prev, next *Page
}

// MarkDirty records that the page must be written back before eviction.
func (p *Page) MarkDirty() {
	p.dirty = true
	if p.pg != nil && p.pg.captureOn.Load() {
		p.pg.noteDirty(p.ID)
	}
}

// ErrPoolExhausted is returned (wrapped) when every cached page is
// pinned and a new page is needed: the buffer pool cannot evict.
var ErrPoolExhausted = errors.New("buffer pool exhausted")

// Pager provides pinned, cached access to the pages of one file. The
// pager's own bookkeeping (page map, pin counts, LRU, statistics) is
// goroutine-safe: concurrent readers may Get/Unpin pages freely. The
// *payload* of a page is not latched here — callers that modify
// Data must hold an exclusive latch above the pager (the heap/B-tree
// structure latches, and the db-level RW lock above those), and Flush
// must not run concurrently with writers.
type Pager struct {
	// mu is the pager latch: it protects the page map, the LRU list,
	// pin counts, the page count and the I/O statistics. I/O on fault
	// and eviction happens while holding it — a coarse latch, chosen
	// because the workloads are cache-resident and correctness under
	// many sessions matters more than read-miss overlap.
	mu       sync.Mutex
	f        File
	path     string
	numPages uint32
	capacity int
	cache    map[PageID]*Page
	// lru is a doubly-linked list of unpinned cached pages; lruHead is
	// the most recently used.
	lruHead, lruTail *Page
	closed           bool
	// wal, when attached, gates write-back (WAL rule) and eviction
	// (no-steal). capturing/captured implement the dirty-page capture
	// window of one structure mutation; captureOn is the lock-free
	// fast-path check MarkDirty takes before locking mu.
	wal       WALHook
	capturing bool
	captured  map[PageID]struct{}
	captureOn atomic.Bool
	// Statistics for the benchmark harness.
	reads, writes, hits, misses uint64
}

// DefaultCacheSize is the default buffer-pool capacity in pages
// (4 MiB), small enough that the 200k-row experiments actually touch
// the disk path.
const DefaultCacheSize = 1024

// OpenPager opens (or creates) the file at path with the given cache
// capacity in pages (0 selects DefaultCacheSize) on the real
// filesystem.
func OpenPager(path string, capacity int) (*Pager, error) {
	return OpenPagerFS(path, capacity, nil)
}

// OpenPagerFS is OpenPager through an explicit VFS (nil selects OSFS).
func OpenPagerFS(path string, capacity int, fs VFS) (*Pager, error) {
	if capacity <= 0 {
		capacity = DefaultCacheSize
	}
	if fs == nil {
		fs = OSFS{}
	}
	f, err := fs.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: open %s: %w", path, err)
	}
	st, err := f.Stat()
	if err != nil {
		return nil, errors.Join(fmt.Errorf("store: stat %s: %w", path, err), f.Close())
	}
	if st.Size()%PageSize != 0 {
		corrupt := &CorruptFileError{Path: path,
			Reason: fmt.Sprintf("size %d is not page aligned (truncated write?)", st.Size())}
		return nil, errors.Join(corrupt, f.Close())
	}
	return &Pager{
		f:        f,
		path:     path,
		numPages: uint32(st.Size() / PageSize),
		capacity: capacity,
		cache:    make(map[PageID]*Page),
	}, nil
}

// NumPages returns the current number of pages in the file.
func (pg *Pager) NumPages() uint32 {
	pg.mu.Lock()
	defer pg.mu.Unlock()
	return pg.numPages
}

// Path returns the backing file path.
func (pg *Pager) Path() string { return pg.path }

// Stats reports I/O counters: physical reads/writes and cache
// hits/misses since open.
func (pg *Pager) Stats() (reads, writes, hits, misses uint64) {
	pg.mu.Lock()
	defer pg.mu.Unlock()
	return pg.reads, pg.writes, pg.hits, pg.misses
}

// castagnoli is the CRC32-C polynomial table (hardware accelerated on
// amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// pageCRC covers the payload, the page number and the pageLSN, so a
// structurally valid page written to the wrong offset (a misdirected
// write) or carrying a forged LSN still fails verification. data must
// be a full page; the pageLSN bytes at [UsableSize:UsableSize+8) are
// included, so they must be stamped first.
func pageCRC(id PageID, data []byte) uint32 {
	var idb [4]byte
	binary.LittleEndian.PutUint32(idb[:], uint32(id))
	crc := crc32.Update(0, castagnoli, data[:UsableSize])
	crc = crc32.Update(crc, castagnoli, idb[:])
	return crc32.Update(crc, castagnoli, data[UsableSize:UsableSize+8])
}

// stampTrailer writes the integrity trailer prior to write-back.
func stampTrailer(p *Page) {
	StampPageImage(p.ID, p.Data[:], p.lsn)
}

// verifyPage checks the trailer of a page freshly read from disk.
func (pg *Pager) verifyPage(p *Page) error {
	stored := binary.LittleEndian.Uint32(p.Data[UsableSize+8:])
	version := binary.LittleEndian.Uint16(p.Data[UsableSize+12:])
	if lsn, ok := PageImageLSN(p.ID, p.Data[:]); ok {
		p.lsn = lsn
		return nil
	}
	zero := true
	for _, b := range p.Data {
		if b != 0 {
			zero = false
			break
		}
	}
	switch {
	case zero:
		return &CorruptPageError{Path: pg.path, Page: p.ID,
			Reason: "page is all zeros (torn or never-completed write)"}
	case version != FormatVersion:
		return &CorruptPageError{Path: pg.path, Page: p.ID,
			Reason: fmt.Sprintf("format version %d (this build reads version %d)", version, FormatVersion)}
	default:
		return &CorruptPageError{Path: pg.path, Page: p.ID,
			Reason: fmt.Sprintf("checksum mismatch (stored %08x, computed %08x)", stored, pageCRC(p.ID, p.Data[:]))}
	}
}

// Get returns page id pinned. The caller must Unpin it. Pages read
// from disk are checksum-verified; damage returns a CorruptPageError.
func (pg *Pager) Get(id PageID) (*Page, error) {
	pg.mu.Lock()
	defer pg.mu.Unlock()
	if pg.closed {
		return nil, fmt.Errorf("store: get page %d of %s: %w", id, pg.path, os.ErrClosed)
	}
	if uint32(id) >= pg.numPages {
		return nil, fmt.Errorf("store: page %d out of range (file has %d)", id, pg.numPages)
	}
	if p, ok := pg.cache[id]; ok {
		pg.hits++
		if p.pins == 0 {
			pg.lruRemove(p)
		}
		p.pins++
		return p, nil
	}
	pg.misses++
	p, err := pg.fault(id)
	if err != nil {
		return nil, err
	}
	if _, err := pg.f.ReadAt(p.Data[:], int64(id)*PageSize); err != nil {
		delete(pg.cache, id)
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			return nil, &CorruptPageError{Path: pg.path, Page: id, Reason: "page lies beyond end of file (truncated)"}
		}
		return nil, fmt.Errorf("store: read page %d of %s: %w", id, pg.path, err)
	}
	pg.reads++
	if err := pg.verifyPage(p); err != nil {
		delete(pg.cache, id)
		return nil, err
	}
	return p, nil
}

// Allocate appends a zeroed page to the file and returns it pinned and
// dirty.
func (pg *Pager) Allocate() (*Page, error) {
	pg.mu.Lock()
	defer pg.mu.Unlock()
	if pg.closed {
		return nil, fmt.Errorf("store: allocate in %s: %w", pg.path, os.ErrClosed)
	}
	id := PageID(pg.numPages)
	if id == InvalidPage {
		return nil, errors.New("store: file full")
	}
	pg.numPages++
	p, err := pg.fault(id)
	if err != nil {
		pg.numPages--
		return nil, err
	}
	p.dirty = true
	if pg.capturing {
		pg.captured[id] = struct{}{}
	}
	return p, nil
}

// fault makes room and installs a fresh pinned cache entry for id.
func (pg *Pager) fault(id PageID) (*Page, error) {
	for len(pg.cache) >= pg.capacity {
		// Walk from the LRU tail past pages the WAL policy pins in
		// memory: no-steal means a page dirtied by a live transaction
		// (or sitting in an open capture window, its log record not yet
		// written) must not reach disk.
		victim := pg.lruTail
		for victim != nil && !pg.evictable(victim) {
			victim = victim.prev
		}
		if victim == nil {
			return nil, fmt.Errorf("store: %s: %w (%d pages cached, all pinned or unflushable)", pg.path, ErrPoolExhausted, len(pg.cache))
		}
		if err := pg.evict(victim); err != nil {
			return nil, err
		}
	}
	p := &Page{ID: id, pins: 1, pg: pg}
	pg.cache[id] = p
	return p, nil
}

// evictable reports whether write-back of p is permitted by the
// no-steal policy (pg.mu held).
func (pg *Pager) evictable(p *Page) bool {
	if !p.dirty {
		return true
	}
	if pg.capturing {
		if _, held := pg.captured[p.ID]; held {
			return false
		}
	}
	if pg.wal != nil && p.lsn != 0 && !pg.wal.Committed(p.lsn) {
		return false
	}
	return true
}

// Unpin releases one pin. Unpinned pages become evictable.
func (pg *Pager) Unpin(p *Page) {
	pg.mu.Lock()
	defer pg.mu.Unlock()
	if p.pins <= 0 {
		// An unbalanced Unpin is a caller bug (the pinbalance analyzer
		// guards the callers), never data-dependent; failing loudly here
		// is the same contract as sync.Mutex.Unlock of an unlocked mutex.
		//lint:ignore nopanic pin-protocol violation is a programming error, not a runtime condition
		panic("store: unpin of unpinned page")
	}
	p.pins--
	if p.pins == 0 {
		pg.lruPush(p)
	}
}

func (pg *Pager) evict(p *Page) error {
	if err := pg.writeBack(p); err != nil {
		return err
	}
	pg.lruRemove(p)
	delete(pg.cache, p.ID)
	return nil
}

func (pg *Pager) writeBack(p *Page) error {
	if !p.dirty {
		return nil
	}
	// WAL rule: the log record covering this image must be durable
	// before the image may overwrite the page on disk.
	if pg.wal != nil && p.lsn != 0 {
		if err := pg.wal.EnsureDurable(p.lsn); err != nil {
			return fmt.Errorf("store: wal sync before page %d of %s: %w", p.ID, pg.path, err)
		}
	}
	stampTrailer(p)
	if _, err := pg.f.WriteAt(p.Data[:], int64(p.ID)*PageSize); err != nil {
		return fmt.Errorf("store: write page %d of %s: %w", p.ID, pg.path, err)
	}
	pg.writes++
	p.dirty = false
	p.recLSN = 0
	return nil
}

// Flush writes every dirty cached page to disk and syncs the file.
// Callers must ensure no writer is concurrently modifying page
// payloads (the server drains in-flight queries before flushing).
// Pages belonging to a live transaction are skipped (no-steal); they
// stay dirty in the cache until the transaction finishes.
func (pg *Pager) Flush() error {
	pg.mu.Lock()
	defer pg.mu.Unlock()
	if pg.closed {
		return fmt.Errorf("store: flush %s: %w", pg.path, os.ErrClosed)
	}
	for _, p := range pg.cache {
		if !pg.evictable(p) {
			continue
		}
		if err := pg.writeBack(p); err != nil {
			return err
		}
	}
	return pg.f.Sync()
}

// FlushCommitted is the fuzzy-checkpoint flush: it writes back every
// dirty page the no-steal policy allows (committed changes only) and
// returns without syncing — the checkpoint fsyncs via SyncFile after
// taking its floor snapshot. Unlike Flush it is safe alongside
// concurrent readers (write-back touches only the trailer bytes and
// pager bookkeeping); writers are excluded by the database-level lock
// the checkpoint holds shared.
func (pg *Pager) FlushCommitted() error {
	pg.mu.Lock()
	defer pg.mu.Unlock()
	if pg.closed {
		return fmt.Errorf("store: checkpoint flush %s: %w", pg.path, os.ErrClosed)
	}
	for _, p := range pg.cache {
		if !pg.evictable(p) {
			continue
		}
		if err := pg.writeBack(p); err != nil {
			return err
		}
	}
	return nil
}

// SyncFile fsyncs the backing file — the durability half of a
// FlushCommitted round.
func (pg *Pager) SyncFile() error {
	pg.mu.Lock()
	defer pg.mu.Unlock()
	if pg.closed {
		return fmt.Errorf("store: checkpoint sync %s: %w", pg.path, os.ErrClosed)
	}
	return pg.f.Sync()
}

// MinRecLSN returns the smallest recovery LSN over the dirty pages
// still in cache, and ok=false when no page is dirty. A dirty page
// that was never logged reports recLSN 1 — it forces the caller's
// floor to 0, the maximally conservative answer, rather than letting
// an unlogged change hide above the floor.
func (pg *Pager) MinRecLSN() (min uint64, ok bool) {
	pg.mu.Lock()
	defer pg.mu.Unlock()
	for _, p := range pg.cache {
		if !p.dirty {
			continue
		}
		rec := p.recLSN
		if rec == 0 {
			rec = 1
		}
		if !ok || rec < min {
			min, ok = rec, true
		}
	}
	return min, ok
}

// Close writes back every remaining dirty page, syncs, and closes the
// file, returning the first error encountered while still attempting
// the rest. It is safe to call more than once; later calls are no-ops.
// Pages must not be used afterwards. Pages belonging to a transaction
// that is still live (no-steal) are dropped, not written: uncommitted
// data must never reach disk, and the WAL holds nothing to redo it
// with — exactly the crash semantics an unfinished transaction gets.
func (pg *Pager) Close() error {
	pg.mu.Lock()
	defer pg.mu.Unlock()
	if pg.closed {
		return nil
	}
	pg.closed = true
	var first error
	for _, p := range pg.cache {
		if !pg.evictable(p) {
			continue
		}
		if err := pg.writeBack(p); err != nil && first == nil {
			first = err
		}
	}
	if err := pg.f.Sync(); err != nil && first == nil {
		first = err
	}
	if err := pg.f.Close(); err != nil && first == nil {
		first = err
	}
	pg.cache = make(map[PageID]*Page)
	pg.lruHead, pg.lruTail = nil, nil
	return first
}

// lruPush inserts p at the head (most recently used).
func (pg *Pager) lruPush(p *Page) {
	p.prev = nil
	p.next = pg.lruHead
	if pg.lruHead != nil {
		pg.lruHead.prev = p
	}
	pg.lruHead = p
	if pg.lruTail == nil {
		pg.lruTail = p
	}
}

func (pg *Pager) lruRemove(p *Page) {
	if p.prev != nil {
		p.prev.next = p.next
	} else if pg.lruHead == p {
		pg.lruHead = p.next
	}
	if p.next != nil {
		p.next.prev = p.prev
	} else if pg.lruTail == p {
		pg.lruTail = p.prev
	}
	p.prev, p.next = nil, nil
}
