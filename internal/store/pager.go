// Package store implements the on-disk storage substrate the efficiency
// experiments run on: a page cache (buffer pool) over a single file,
// slotted-page heap files for table rows, and a persistent B+tree used
// as the database index for the grouped phoneme string identifiers of
// §5.3. The paper ran on a commercial DBMS; this package supplies the
// equivalent access paths (full scans and B-tree probes against disk
// pages) so the relative costs of the three LexEQUAL strategies have the
// same shape.
package store

import (
	"errors"
	"fmt"
	"os"
)

// PageSize is the unit of I/O. 4 KiB matches common DBMS defaults.
const PageSize = 4096

// PageID identifies a page within one file; page 0 is the file's meta
// page, owned by the structure (heap/btree) living in the file.
type PageID uint32

// InvalidPage is the nil page reference.
const InvalidPage PageID = 0xFFFFFFFF

// Page is one cached page. Callers must hold a pin (via Pager.Get or
// Pager.Allocate) while reading or writing Data, call MarkDirty after
// modifying it, and Unpin it when done.
type Page struct {
	ID   PageID
	Data [PageSize]byte

	pins  int
	dirty bool
	// LRU bookkeeping.
	prev, next *Page
}

// MarkDirty records that the page must be written back before eviction.
func (p *Page) MarkDirty() { p.dirty = true }

// Pager provides pinned, cached access to the pages of one file.
// It is not safe for concurrent use; the database serializes access
// (the paper's workload is single-stream queries).
type Pager struct {
	f        *os.File
	path     string
	numPages uint32
	capacity int
	cache    map[PageID]*Page
	// lru is a doubly-linked list of unpinned cached pages; lruHead is
	// the most recently used.
	lruHead, lruTail *Page
	// Statistics for the benchmark harness.
	reads, writes, hits, misses uint64
}

// DefaultCacheSize is the default buffer-pool capacity in pages
// (4 MiB), small enough that the 200k-row experiments actually touch
// the disk path.
const DefaultCacheSize = 1024

// OpenPager opens (or creates) the file at path with the given cache
// capacity in pages (0 selects DefaultCacheSize).
func OpenPager(path string, capacity int) (*Pager, error) {
	if capacity <= 0 {
		capacity = DefaultCacheSize
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("store: open %s: %w", path, err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("store: stat %s: %w", path, err)
	}
	if st.Size()%PageSize != 0 {
		f.Close()
		return nil, fmt.Errorf("store: %s size %d is not page aligned", path, st.Size())
	}
	return &Pager{
		f:        f,
		path:     path,
		numPages: uint32(st.Size() / PageSize),
		capacity: capacity,
		cache:    make(map[PageID]*Page),
	}, nil
}

// NumPages returns the current number of pages in the file.
func (pg *Pager) NumPages() uint32 { return pg.numPages }

// Path returns the backing file path.
func (pg *Pager) Path() string { return pg.path }

// Stats reports I/O counters: physical reads/writes and cache
// hits/misses since open.
func (pg *Pager) Stats() (reads, writes, hits, misses uint64) {
	return pg.reads, pg.writes, pg.hits, pg.misses
}

// Get returns page id pinned. The caller must Unpin it.
func (pg *Pager) Get(id PageID) (*Page, error) {
	if uint32(id) >= pg.numPages {
		return nil, fmt.Errorf("store: page %d out of range (file has %d)", id, pg.numPages)
	}
	if p, ok := pg.cache[id]; ok {
		pg.hits++
		if p.pins == 0 {
			pg.lruRemove(p)
		}
		p.pins++
		return p, nil
	}
	pg.misses++
	p, err := pg.fault(id)
	if err != nil {
		return nil, err
	}
	if _, err := pg.f.ReadAt(p.Data[:], int64(id)*PageSize); err != nil {
		delete(pg.cache, id)
		return nil, fmt.Errorf("store: read page %d of %s: %w", id, pg.path, err)
	}
	pg.reads++
	return p, nil
}

// Allocate appends a zeroed page to the file and returns it pinned and
// dirty.
func (pg *Pager) Allocate() (*Page, error) {
	id := PageID(pg.numPages)
	if id == InvalidPage {
		return nil, errors.New("store: file full")
	}
	pg.numPages++
	p, err := pg.fault(id)
	if err != nil {
		pg.numPages--
		return nil, err
	}
	p.dirty = true
	return p, nil
}

// fault makes room and installs a fresh pinned cache entry for id.
func (pg *Pager) fault(id PageID) (*Page, error) {
	for len(pg.cache) >= pg.capacity {
		victim := pg.lruTail
		if victim == nil {
			return nil, fmt.Errorf("store: buffer pool exhausted (%d pages all pinned)", len(pg.cache))
		}
		if err := pg.evict(victim); err != nil {
			return nil, err
		}
	}
	p := &Page{ID: id, pins: 1}
	pg.cache[id] = p
	return p, nil
}

// Unpin releases one pin. Unpinned pages become evictable.
func (pg *Pager) Unpin(p *Page) {
	if p.pins <= 0 {
		panic("store: unpin of unpinned page")
	}
	p.pins--
	if p.pins == 0 {
		pg.lruPush(p)
	}
}

func (pg *Pager) evict(p *Page) error {
	if err := pg.writeBack(p); err != nil {
		return err
	}
	pg.lruRemove(p)
	delete(pg.cache, p.ID)
	return nil
}

func (pg *Pager) writeBack(p *Page) error {
	if !p.dirty {
		return nil
	}
	if _, err := pg.f.WriteAt(p.Data[:], int64(p.ID)*PageSize); err != nil {
		return fmt.Errorf("store: write page %d of %s: %w", p.ID, pg.path, err)
	}
	pg.writes++
	p.dirty = false
	return nil
}

// Flush writes every dirty cached page to disk and syncs the file.
func (pg *Pager) Flush() error {
	for _, p := range pg.cache {
		if err := pg.writeBack(p); err != nil {
			return err
		}
	}
	return pg.f.Sync()
}

// Close flushes and closes the file. Pages must not be used afterwards.
func (pg *Pager) Close() error {
	if err := pg.Flush(); err != nil {
		pg.f.Close()
		return err
	}
	return pg.f.Close()
}

// lruPush inserts p at the head (most recently used).
func (pg *Pager) lruPush(p *Page) {
	p.prev = nil
	p.next = pg.lruHead
	if pg.lruHead != nil {
		pg.lruHead.prev = p
	}
	pg.lruHead = p
	if pg.lruTail == nil {
		pg.lruTail = p
	}
}

func (pg *Pager) lruRemove(p *Page) {
	if p.prev != nil {
		p.prev.next = p.next
	} else if pg.lruHead == p {
		pg.lruHead = p.next
	}
	if p.next != nil {
		p.next.prev = p.prev
	} else if pg.lruTail == p {
		pg.lruTail = p.prev
	}
	p.prev, p.next = nil, nil
}
