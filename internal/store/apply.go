package store

import (
	"encoding/binary"
	"fmt"
	"os"
)

// This file is the replication apply seam: a read replica receives
// full page after-images from the primary's WAL stream and installs
// them THROUGH the buffer pool, not around it, so cached pages, the
// structures' cached metadata, and the checkpoint machinery (dirty
// flags, recLSNs) all stay coherent while read sessions run against
// the same cache. Restart replay, by contrast, goes around the pool
// with raw file I/O (internal/wal.Applier) — no cache exists yet.

// ApplyImage installs a full usable-size payload image for page id,
// stamped with the given log LSN, replacing whatever the cache or disk
// holds. The page is left dirty with its recLSN set, exactly as if a
// local mutation had been logged at lsn: the fuzzy-checkpoint floor
// and the WAL rule on write-back then work unchanged on a replica.
// Pages beyond the current end of file extend it (replicated
// allocations). No disk read is performed — the image is total.
//
// Callers must hold the owning structure's latch exclusively; the
// pager latch alone does not keep readers of the same structure from
// seeing a half-applied multi-page change.
func (pg *Pager) ApplyImage(id PageID, payload []byte, lsn uint64) error {
	if len(payload) != UsableSize {
		return fmt.Errorf("store: apply image of %d bytes to page %d of %s (want %d)",
			len(payload), id, pg.path, UsableSize)
	}
	pg.mu.Lock()
	defer pg.mu.Unlock()
	if pg.closed {
		return fmt.Errorf("store: apply image to page %d of %s: %w", id, pg.path, os.ErrClosed)
	}
	p, ok := pg.cache[id]
	if ok {
		if p.pins == 0 {
			pg.lruRemove(p)
		}
		p.pins++
	} else {
		var err error
		p, err = pg.fault(id)
		if err != nil {
			return err
		}
	}
	if uint32(id) >= pg.numPages {
		pg.numPages = uint32(id) + 1
	}
	copy(p.Data[:UsableSize], payload)
	p.lsn = lsn
	if p.recLSN == 0 {
		p.recLSN = lsn
	}
	p.dirty = true
	p.pins--
	if p.pins == 0 {
		pg.lruPush(p)
	}
	return nil
}

// ApplyImage installs one replicated page image under the heap's
// exclusive latch. An image of the meta page refreshes the heap's
// cached allocation state (last data page, live record count) so
// subsequent reads see the replicated values.
func (h *HeapFile) ApplyImage(id PageID, payload []byte, lsn uint64) error {
	h.latch.Lock()
	defer h.latch.Unlock()
	if h.closed {
		return fmt.Errorf("store: apply image to closed heap %s", h.pg.path)
	}
	if err := h.pg.ApplyImage(id, payload, lsn); err != nil {
		return err
	}
	if id == 0 {
		if binary.LittleEndian.Uint32(payload[0:]) != heapMagic {
			return &CorruptPageError{Path: h.pg.path, Page: 0,
				Reason: "replicated meta image is not a heap meta page"}
		}
		h.lastPage = PageID(binary.LittleEndian.Uint32(payload[4:]))
		h.count = binary.LittleEndian.Uint64(payload[8:])
	}
	return nil
}

// ApplyImage installs one replicated page image under the tree's
// exclusive latch. An image of the meta page refreshes the tree's
// cached root pointer and entry count.
func (t *BTree) ApplyImage(id PageID, payload []byte, lsn uint64) error {
	t.latch.Lock()
	defer t.latch.Unlock()
	if t.closed {
		return fmt.Errorf("store: apply image to closed btree %s", t.pg.path)
	}
	if err := t.pg.ApplyImage(id, payload, lsn); err != nil {
		return err
	}
	if id == 0 {
		if binary.LittleEndian.Uint32(payload[0:]) != btreeMagic {
			return &CorruptPageError{Path: t.pg.path, Page: 0,
				Reason: "replicated meta image is not a btree meta page"}
		}
		t.root = PageID(binary.LittleEndian.Uint32(payload[4:]))
		t.count = binary.LittleEndian.Uint64(payload[8:])
	}
	return nil
}
