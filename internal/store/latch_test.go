package store

import (
	"path/filepath"
	"sync"
	"testing"
)

// TestHeapConcurrentReaders hammers a heap with parallel scans and
// point fetches while a writer inserts; meaningful under -race. The
// structure latch must keep every reader's view internally consistent
// (no torn slot directories, no panics).
func TestHeapConcurrentReaders(t *testing.T) {
	path := filepath.Join(t.TempDir(), "latch.heap")
	h, err := OpenHeap(path, 32)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()

	var rids []RID
	rec := make([]byte, 64)
	for i := 0; i < 500; i++ {
		rec[0] = byte(i)
		rid, err := h.Insert(rec)
		if err != nil {
			t.Fatal(err)
		}
		rids = append(rids, rid)
	}

	var wg sync.WaitGroup
	errCh := make(chan error, 16)
	report := func(err error) {
		select {
		case errCh <- err:
		default:
		}
	}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				n := 0
				if err := h.Scan(func(RID, []byte) error { n++; return nil }); err != nil {
					report(err)
					return
				}
				if n < 500 {
					continue
				}
				if _, err := h.Get(rids[(seed*31+i)%len(rids)]); err != nil {
					report(err)
					return
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			if _, err := h.Insert(rec); err != nil {
				report(err)
				return
			}
		}
	}()
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	if got, want := h.Count(), uint64(700); got != want {
		t.Fatalf("Count = %d, want %d", got, want)
	}
}

// TestBTreeConcurrentReaders runs parallel lookups and range scans
// against a tree while a writer inserts new keys; under -race this
// exercises the tree latch and the iterator's per-leaf latching.
func TestBTreeConcurrentReaders(t *testing.T) {
	path := filepath.Join(t.TempDir(), "latch.idx")
	bt, err := OpenBTree(path, 32)
	if err != nil {
		t.Fatal(err)
	}
	defer bt.Close()

	const base = 2000
	for i := 0; i < base; i++ {
		if err := bt.Insert(uint64(i), uint64(i)*10); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	errCh := make(chan error, 16)
	report := func(err error) {
		select {
		case errCh <- err:
		default:
		}
	}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				k := uint64((seed*37 + i) % base)
				vals, err := bt.Lookup(k)
				if err != nil {
					report(err)
					return
				}
				found := false
				for _, v := range vals {
					if v == k*10 {
						found = true
					}
				}
				if !found {
					report(errLookupLost(k))
					return
				}
				if err := bt.Range(k, k+50, func(uint64, uint64) error { return nil }); err != nil {
					report(err)
					return
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 500; i++ {
			if err := bt.Insert(uint64(base+i), uint64(base+i)*10); err != nil {
				report(err)
				return
			}
		}
	}()
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	if got, want := bt.Count(), uint64(base+500); got != want {
		t.Fatalf("Count = %d, want %d", got, want)
	}
}

type errLookupLost uint64

func (e errLookupLost) Error() string { return "lookup lost a pre-inserted key" }
