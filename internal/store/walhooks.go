package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"sort"
)

// This file is the pager's side of the write-ahead-log contract
// (DESIGN.md §11). The pager itself knows nothing about log records;
// it exposes three seams the WAL layer in internal/db plugs into:
//
//   - WALHook gates write-back (the WAL rule: a dirty page may reach
//     disk only once its last log record is durable) and eviction
//     (no-steal: pages dirtied by a live transaction stay in cache).
//   - PageLogger receives the after-image of every page a structure
//     mutation dirtied, via the CaptureStart/LogCaptured window.
//   - StampPageImage/PageImageLSN let recovery read and rewrite raw
//     page images without a pager (the file may be torn or unaligned,
//     which OpenPagerFS rightly refuses).

// WALHook is implemented by the write-ahead log. EnsureDurable blocks
// until every log record up to lsn is on stable storage; Committed
// reports whether lsn belongs to a finished (committed or aborted)
// transaction, i.e. whether a page stamped with it may leave the cache.
type WALHook interface {
	EnsureDurable(lsn uint64) error
	Committed(lsn uint64) bool
}

// PageLogger receives physiological log records: the full after-image
// of one page of one file. It returns the LSN assigned to the record,
// which the pager stamps into the page trailer.
type PageLogger interface {
	LogPage(path string, id PageID, payload []byte) (uint64, error)
}

// SetWAL installs the WAL hook. Passing nil detaches it (pages flush
// freely, as before PR 5).
func (pg *Pager) SetWAL(w WALHook) {
	pg.mu.Lock()
	pg.wal = w
	pg.mu.Unlock()
}

// CaptureStart begins recording the set of pages dirtied by the
// current structure mutation. The window must be closed by LogCaptured
// or DropCapture before the structure latch is released; captured
// pages are pinned-in-spirit (never evicted) while the window is open,
// so a single mutation must dirty fewer pages than the pool holds.
func (pg *Pager) CaptureStart() {
	pg.mu.Lock()
	pg.capturing = true
	pg.captured = make(map[PageID]struct{})
	pg.captureOn.Store(true)
	pg.mu.Unlock()
}

// noteDirty records a page in the open capture window. The atomic
// fast-path check keeps MarkDirty cheap when no WAL is attached.
func (pg *Pager) noteDirty(id PageID) {
	pg.mu.Lock()
	if pg.capturing {
		pg.captured[id] = struct{}{}
	}
	pg.mu.Unlock()
}

// DropCapture closes the capture window without logging (the mutation
// failed) and returns how many pages the window had captured. Zero
// means the mutation failed before dirtying anything — the caller's
// transaction can roll back by compensation; nonzero means the cache
// now holds changes no log record describes, which only cache-discard
// recovery can undo (see ErrUnloggedDirt).
func (pg *Pager) DropCapture() int {
	pg.mu.Lock()
	n := len(pg.captured)
	pg.capturing = false
	pg.captured = nil
	pg.captureOn.Store(false)
	pg.mu.Unlock()
	return n
}

// ErrUnloggedDirt marks a failed mutation that left modified pages in
// the cache with no (or incomplete) log coverage: the failure struck
// after the first MarkDirty but before LogCaptured finished. A
// transaction that sees it cannot roll back by logged compensation —
// only discarding the caches and redoing the log restores a provable
// state. Match with errors.Is; the original failure is preserved
// (message and wrapped sentinels are unchanged).
var ErrUnloggedDirt = errors.New("store: failed mutation left unlogged dirty pages")

// dirtyFailError decorates a mutation failure with ErrUnloggedDirt
// without disturbing its message or its own wrapped sentinels.
type dirtyFailError struct{ err error }

func (e *dirtyFailError) Error() string { return e.err.Error() }

func (e *dirtyFailError) Unwrap() []error { return []error{e.err, ErrUnloggedDirt} }

// taintDirty classifies a failed capture-window mutation: failures
// that dirtied nothing pass through untouched, failures that left
// captured pages behind are marked with ErrUnloggedDirt.
func taintDirty(err error, captured int) error {
	if err == nil || captured == 0 {
		return err
	}
	return &dirtyFailError{err}
}

// LogCaptured closes the capture window, sends the after-image of
// every captured page to the logger in page order, and stamps the
// returned LSNs so write-back can enforce the WAL rule. On error the
// remaining images are not logged; the caller must abort the
// transaction (the cache now holds changes the log does not).
func (pg *Pager) LogCaptured(lg PageLogger) error {
	pg.mu.Lock()
	ids := make([]PageID, 0, len(pg.captured))
	for id := range pg.captured {
		ids = append(ids, id)
	}
	pg.capturing = false
	pg.captured = nil
	pg.captureOn.Store(false)
	pg.mu.Unlock()
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		p, err := pg.Get(id)
		if err != nil {
			return err
		}
		lsn, err := lg.LogPage(pg.path, id, p.Data[:UsableSize])
		if err != nil {
			pg.Unpin(p)
			return err
		}
		pg.mu.Lock()
		p.lsn = lsn
		if p.recLSN == 0 {
			p.recLSN = lsn // first change since the page was last clean
		}
		pg.mu.Unlock()
		pg.Unpin(p)
	}
	return nil
}

// Discard drops every cached page without write-back and closes the
// file. It is the rollback/recovery counterpart of Close: the WAL, not
// the cache, holds the authoritative committed state, so flushing the
// cache here would leak loser pages to disk.
func (pg *Pager) Discard() error {
	pg.mu.Lock()
	defer pg.mu.Unlock()
	if pg.closed {
		return nil
	}
	pg.closed = true
	err := pg.f.Close()
	pg.cache = make(map[PageID]*Page)
	pg.lruHead, pg.lruTail = nil, nil
	return err
}

// DiskPageLSN reads the pageLSN the on-disk image of page id carries,
// bypassing the cache (the checker compares disk state against the
// durable LSN). A page that fails verification reports lsn 0 with the
// corruption error.
func (pg *Pager) DiskPageLSN(id PageID) (uint64, error) {
	pg.mu.Lock()
	defer pg.mu.Unlock()
	if pg.closed {
		return 0, fmt.Errorf("store: page lsn of %s: %w", pg.path, os.ErrClosed)
	}
	if uint32(id) >= pg.numPages {
		return 0, fmt.Errorf("store: page %d out of range (file has %d)", id, pg.numPages)
	}
	var buf [PageSize]byte
	if _, err := pg.f.ReadAt(buf[:], int64(id)*PageSize); err != nil {
		return 0, &CorruptPageError{Path: pg.path, Page: id, Reason: fmt.Sprintf("unreadable: %v", err)}
	}
	lsn, ok := PageImageLSN(id, buf[:])
	if !ok {
		return 0, &CorruptPageError{Path: pg.path, Page: id, Reason: "trailer fails verification"}
	}
	return lsn, nil
}

// StampPageImage fills the integrity trailer of a full-page buffer:
// pageLSN, CRC32-C over payload+pageID+pageLSN, format version. It is
// how recovery rewrites pages from log records; nothing outside
// internal/wal may call it (the walonly analyzer enforces this).
func StampPageImage(id PageID, buf []byte, lsn uint64) {
	binary.LittleEndian.PutUint64(buf[UsableSize:], lsn)
	binary.LittleEndian.PutUint32(buf[UsableSize+8:], pageCRC(id, buf))
	binary.LittleEndian.PutUint16(buf[UsableSize+12:], FormatVersion)
	buf[UsableSize+14] = 0
	buf[UsableSize+15] = 0
}

// PageImageLSN verifies the trailer of a full-page buffer read raw
// from disk and returns its pageLSN. ok is false when the image fails
// verification (torn, zeroed, or from a different format version) —
// recovery then treats the slot as empty and rewrites it.
func PageImageLSN(id PageID, buf []byte) (lsn uint64, ok bool) {
	if len(buf) != PageSize {
		return 0, false
	}
	lsn = binary.LittleEndian.Uint64(buf[UsableSize:])
	stored := binary.LittleEndian.Uint32(buf[UsableSize+8:])
	version := binary.LittleEndian.Uint16(buf[UsableSize+12:])
	if version != FormatVersion || stored != pageCRC(id, buf) {
		return 0, false
	}
	return lsn, true
}
