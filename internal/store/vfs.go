package store

import (
	"errors"
	"fmt"
	"os"
)

// File is the narrow slice of *os.File the storage layer needs. The
// indirection exists so tests can interpose deterministic fault
// injection (see FaultFS) between the pager and the operating system.
type File interface {
	ReadAt(p []byte, off int64) (int, error)
	WriteAt(p []byte, off int64) (int, error)
	Sync() error
	Close() error
	Stat() (os.FileInfo, error)
}

// VFS opens files and performs the two directory operations the engine
// relies on for atomic publication. Implementations must be usable for
// many files at once (a database directory holds one file per table and
// index plus the catalog).
type VFS interface {
	OpenFile(path string, flag int, perm os.FileMode) (File, error)
	Rename(oldPath, newPath string) error
	Remove(path string) error
}

// OSFS is the production VFS: plain os calls.
type OSFS struct{}

// OpenFile implements VFS.
func (OSFS) OpenFile(path string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(path, flag, perm)
}

// Rename implements VFS.
func (OSFS) Rename(oldPath, newPath string) error { return os.Rename(oldPath, newPath) }

// Remove implements VFS.
func (OSFS) Remove(path string) error { return os.Remove(path) }

// ErrCorrupt is the sentinel all corruption errors match with
// errors.Is: page checksum mismatches, format-version mismatches,
// impossible slot directories or node headers, truncated files. Callers
// distinguish "the data is damaged" (fail the query, run the checker)
// from transient I/O errors.
var ErrCorrupt = errors.New("corrupt data")

// CorruptPageError reports that one page failed verification: its
// checksum did not match, its format version is unsupported, or its
// internal structure (slot directory, node header) is impossible.
type CorruptPageError struct {
	Path   string
	Page   PageID
	Reason string
}

func (e *CorruptPageError) Error() string {
	return fmt.Sprintf("store: %s page %d: %s", e.Path, e.Page, e.Reason)
}

// Is makes errors.Is(err, ErrCorrupt) true.
func (e *CorruptPageError) Is(target error) bool { return target == ErrCorrupt }

// CorruptFileError reports file-level damage that is not attributable
// to one page: a size that is not page aligned, or a wrong magic
// number.
type CorruptFileError struct {
	Path   string
	Reason string
}

func (e *CorruptFileError) Error() string {
	return fmt.Sprintf("store: %s: %s", e.Path, e.Reason)
}

// Is makes errors.Is(err, ErrCorrupt) true.
func (e *CorruptFileError) Is(target error) bool { return target == ErrCorrupt }
