package store

import (
	"errors"
	"fmt"
	"io"
	"os"
)

// File is the narrow slice of *os.File the storage layer needs. The
// indirection exists so tests can interpose deterministic fault
// injection (see FaultFS) between the pager and the operating system.
type File interface {
	ReadAt(p []byte, off int64) (int, error)
	WriteAt(p []byte, off int64) (int, error)
	Truncate(size int64) error
	Sync() error
	Close() error
	Stat() (os.FileInfo, error)
}

// VFS opens files and performs the directory operations the engine
// relies on for atomic publication. Implementations must be usable for
// many files at once (a database directory holds one file per table and
// index plus the catalog). Every byte the engine reads or writes goes
// through a VFS — nothing in internal/store or internal/db may call the
// os package directly (the vfsonly analyzer enforces this) — so fault
// injection (FaultFS) observes the complete I/O sequence.
type VFS interface {
	OpenFile(path string, flag int, perm os.FileMode) (File, error)
	Rename(oldPath, newPath string) error
	Remove(path string) error
	RemoveAll(path string) error
	Stat(path string) (os.FileInfo, error)
	MkdirAll(path string, perm os.FileMode) error
}

// OSFS is the production VFS: plain os calls.
type OSFS struct{}

// OpenFile implements VFS.
func (OSFS) OpenFile(path string, flag int, perm os.FileMode) (File, error) {
	return os.OpenFile(path, flag, perm)
}

// Rename implements VFS.
func (OSFS) Rename(oldPath, newPath string) error { return os.Rename(oldPath, newPath) }

// Remove implements VFS.
func (OSFS) Remove(path string) error { return os.Remove(path) }

// RemoveAll implements VFS.
func (OSFS) RemoveAll(path string) error { return os.RemoveAll(path) }

// Stat implements VFS.
func (OSFS) Stat(path string) (os.FileInfo, error) { return os.Stat(path) }

// MkdirAll implements VFS.
func (OSFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }

// ReadFile reads the whole file at path through fs, the VFS analogue of
// os.ReadFile.
func ReadFile(fs VFS, path string) ([]byte, error) {
	f, err := fs.OpenFile(path, os.O_RDONLY, 0)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		return nil, errors.Join(err, f.Close())
	}
	data := make([]byte, st.Size())
	if _, err := f.ReadAt(data, 0); err != nil && !errors.Is(err, io.EOF) {
		return nil, errors.Join(err, f.Close())
	}
	return data, f.Close()
}

// SyncDir fsyncs the directory at path through fs, making renames
// inside it durable. Opening a directory read-only and calling Sync is
// supported on the platforms the engine targets; callers on exotic
// filesystems may treat the error as advisory.
func SyncDir(fs VFS, path string) error {
	d, err := fs.OpenFile(path, os.O_RDONLY, 0)
	if err != nil {
		return err
	}
	if err := d.Sync(); err != nil {
		return errors.Join(err, d.Close())
	}
	return d.Close()
}

// ErrCorrupt is the sentinel all corruption errors match with
// errors.Is: page checksum mismatches, format-version mismatches,
// impossible slot directories or node headers, truncated files. Callers
// distinguish "the data is damaged" (fail the query, run the checker)
// from transient I/O errors.
var ErrCorrupt = errors.New("corrupt data")

// CorruptPageError reports that one page failed verification: its
// checksum did not match, its format version is unsupported, or its
// internal structure (slot directory, node header) is impossible.
type CorruptPageError struct {
	Path   string
	Page   PageID
	Reason string
}

func (e *CorruptPageError) Error() string {
	return fmt.Sprintf("store: %s page %d: %s", e.Path, e.Page, e.Reason)
}

// Is makes errors.Is(err, ErrCorrupt) true.
func (e *CorruptPageError) Is(target error) bool { return target == ErrCorrupt }

// CorruptFileError reports file-level damage that is not attributable
// to one page: a size that is not page aligned, or a wrong magic
// number.
type CorruptFileError struct {
	Path   string
	Reason string
}

func (e *CorruptFileError) Error() string {
	return fmt.Sprintf("store: %s: %s", e.Path, e.Reason)
}

// Is makes errors.Is(err, ErrCorrupt) true.
func (e *CorruptFileError) Is(target error) bool { return target == ErrCorrupt }
