package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
)

// BTree is a persistent B+tree mapping uint64 keys to uint64 values
// (packed RIDs), with duplicate keys allowed. It supports insertion and
// ordered range scans — the operations the phonetic-index experiments
// need; deletion is out of scope for the read-mostly workloads (see
// DESIGN.md non-goals).
//
// Node layout:
//
//	byte 0      node kind (1 = leaf, 2 = internal)
//	[2:4)       entry count n
//	leaf:       [4:8) next-leaf page id; entries at 8+16i = {key u64, val u64}
//	internal:   [4:8) leftmost child;  entries at 8+12i = {key u64, child u32}
//	            child i covers keys >= key i (leftmost covers keys < key 0)
type BTree struct {
	pg *Pager
	// latch is the structure latch: descents (Seek, and the Iterator's
	// per-leaf loads) take it shared, Insert and Close take it
	// exclusively. Root pointer and entry count are guarded by it.
	latch  sync.RWMutex
	root   PageID
	count  uint64
	closed bool
	// logger, when attached (SetLogger), receives the after-image of
	// every page an Insert dirties, inside the exclusive latch.
	logger PageLogger
}

const (
	btreeMagic   = 0x4C455842 // "LEXB"
	nodeLeaf     = 1
	nodeInternal = 2

	leafHdr      = 8
	leafEntry    = 16
	maxLeafKeys  = (UsableSize - leafHdr) / leafEntry // 255
	innerHdr     = 8
	innerEntry   = 12
	maxInnerKeys = (UsableSize - innerHdr) / innerEntry // 340

	// maxDepth bounds root-to-leaf descents: a healthy tree over 2^32
	// pages is far shallower, so exceeding it means a pointer cycle.
	maxDepth = 64
)

// OpenBTree opens (or creates) a B+tree at path.
func OpenBTree(path string, cachePages int) (*BTree, error) {
	return OpenBTreeFS(path, cachePages, nil)
}

// OpenBTreeFS is OpenBTree through an explicit VFS (nil selects OSFS).
func OpenBTreeFS(path string, cachePages int, fs VFS) (*BTree, error) {
	pg, err := OpenPagerFS(path, cachePages, fs)
	if err != nil {
		return nil, err
	}
	t := &BTree{pg: pg}
	if pg.NumPages() == 0 {
		meta, err := pg.Allocate()
		if err != nil {
			return nil, errors.Join(err, pg.Close())
		}
		root, err := pg.Allocate()
		if err != nil {
			pg.Unpin(meta)
			return nil, errors.Join(err, pg.Close())
		}
		initLeaf(root, InvalidPage)
		t.root = root.ID
		binary.LittleEndian.PutUint32(meta.Data[0:], btreeMagic)
		t.writeMeta(meta)
		pg.Unpin(root)
		pg.Unpin(meta)
		return t, nil
	}
	meta, err := pg.Get(0)
	if err != nil {
		return nil, errors.Join(err, pg.Close())
	}
	defer pg.Unpin(meta)
	if binary.LittleEndian.Uint32(meta.Data[0:]) != btreeMagic {
		corrupt := &CorruptFileError{Path: path, Reason: "not a btree file (bad magic)"}
		return nil, errors.Join(corrupt, pg.Close())
	}
	t.root = PageID(binary.LittleEndian.Uint32(meta.Data[4:]))
	t.count = binary.LittleEndian.Uint64(meta.Data[8:])
	return t, nil
}

func (t *BTree) writeMeta(meta *Page) {
	binary.LittleEndian.PutUint32(meta.Data[4:], uint32(t.root))
	binary.LittleEndian.PutUint64(meta.Data[8:], t.count)
	meta.MarkDirty()
}

func (t *BTree) syncMeta() error {
	meta, err := t.pg.Get(0)
	if err != nil {
		return err
	}
	t.writeMeta(meta)
	t.pg.Unpin(meta)
	return nil
}

// SetLogger attaches the WAL page logger: every Insert then emits the
// after-images of the pages it dirtied (leaf, any split chain, and the
// meta page) before its latch is released. Attach before concurrent use.
func (t *BTree) SetLogger(lg PageLogger) {
	t.latch.Lock()
	t.logger = lg
	t.latch.Unlock()
}

// Discard drops the page cache without write-back and closes the file
// (the rollback/recovery path; see Pager.Discard).
func (t *BTree) Discard() error {
	t.latch.Lock()
	defer t.latch.Unlock()
	if t.closed {
		return nil
	}
	t.closed = true
	return t.pg.Discard()
}

// Count returns the number of stored entries.
func (t *BTree) Count() uint64 {
	t.latch.RLock()
	defer t.latch.RUnlock()
	return t.count
}

// Pager exposes the underlying pager (for I/O statistics).
func (t *BTree) Pager() *Pager { return t.pg }

// Flush writes metadata and every flushable dirty page to disk and
// syncs the file, without closing it (the checkpoint path).
func (t *BTree) Flush() error {
	t.latch.Lock()
	defer t.latch.Unlock()
	if t.closed {
		return nil
	}
	if err := t.syncMeta(); err != nil {
		return err
	}
	return t.pg.Flush()
}

// FlushCommitted writes back the committed dirty pages of the tree
// without syncing, for a fuzzy checkpoint. It takes the latch shared:
// concurrent probes proceed, and the meta page needs no separate sync
// because every logged mutation already rewrites it inside its capture
// window. A closed tree reports success — its Close already flushed.
func (t *BTree) FlushCommitted() error {
	t.latch.RLock()
	defer t.latch.RUnlock()
	if t.closed {
		return nil
	}
	return t.pg.FlushCommitted()
}

// SyncData fsyncs the tree's backing file (the durability half of a
// checkpoint round).
func (t *BTree) SyncData() error {
	t.latch.RLock()
	defer t.latch.RUnlock()
	if t.closed {
		return nil
	}
	return t.pg.SyncFile()
}

// MinRecLSN reports the smallest recovery LSN over the tree's dirty
// pages (ok=false when clean — or closed, which flushed everything).
func (t *BTree) MinRecLSN() (uint64, bool) {
	t.latch.RLock()
	defer t.latch.RUnlock()
	if t.closed {
		return 0, false
	}
	return t.pg.MinRecLSN()
}

// Close flushes metadata and the page cache. It is safe to call more
// than once; the first error wins and later calls are no-ops.
func (t *BTree) Close() error {
	t.latch.Lock()
	defer t.latch.Unlock()
	if t.closed {
		return nil
	}
	t.closed = true
	err := t.syncMeta()
	if cerr := t.pg.Close(); err == nil {
		err = cerr
	}
	return err
}

// node fetches page id pinned and validates its node header, so corrupt
// bytes yield a CorruptPageError rather than out-of-range reads.
func (t *BTree) node(id PageID) (*Page, error) {
	p, err := t.pg.Get(id)
	if err != nil {
		return nil, err
	}
	var bad string
	switch nodeKind(p) {
	case nodeLeaf:
		if nodeCount(p) > maxLeafKeys {
			bad = fmt.Sprintf("leaf claims %d entries (max %d)", nodeCount(p), maxLeafKeys)
		}
	case nodeInternal:
		if nodeCount(p) > maxInnerKeys {
			bad = fmt.Sprintf("internal node claims %d entries (max %d)", nodeCount(p), maxInnerKeys)
		}
	default:
		bad = fmt.Sprintf("unknown node kind %d", nodeKind(p))
	}
	if bad != "" {
		t.pg.Unpin(p)
		return nil, &CorruptPageError{Path: t.pg.Path(), Page: id, Reason: bad}
	}
	return p, nil
}

func initLeaf(p *Page, next PageID) {
	for i := range p.Data[:leafHdr] {
		p.Data[i] = 0
	}
	p.Data[0] = nodeLeaf
	binary.LittleEndian.PutUint16(p.Data[2:], 0)
	binary.LittleEndian.PutUint32(p.Data[4:], uint32(next))
	p.MarkDirty()
}

func nodeKind(p *Page) byte   { return p.Data[0] }
func nodeCount(p *Page) int   { return int(binary.LittleEndian.Uint16(p.Data[2:])) }
func setCount(p *Page, n int) { binary.LittleEndian.PutUint16(p.Data[2:], uint16(n)) }

func leafNext(p *Page) PageID { return PageID(binary.LittleEndian.Uint32(p.Data[4:])) }
func leafKey(p *Page, i int) uint64 {
	return binary.LittleEndian.Uint64(p.Data[leafHdr+i*leafEntry:])
}
func leafVal(p *Page, i int) uint64 {
	return binary.LittleEndian.Uint64(p.Data[leafHdr+i*leafEntry+8:])
}
func setLeafEntry(p *Page, i int, k, v uint64) {
	binary.LittleEndian.PutUint64(p.Data[leafHdr+i*leafEntry:], k)
	binary.LittleEndian.PutUint64(p.Data[leafHdr+i*leafEntry+8:], v)
}

func innerLeft(p *Page) PageID { return PageID(binary.LittleEndian.Uint32(p.Data[4:])) }
func innerKey(p *Page, i int) uint64 {
	return binary.LittleEndian.Uint64(p.Data[innerHdr+i*innerEntry:])
}
func innerChild(p *Page, i int) PageID {
	return PageID(binary.LittleEndian.Uint32(p.Data[innerHdr+i*innerEntry+8:]))
}
func setInnerEntry(p *Page, i int, k uint64, child PageID) {
	binary.LittleEndian.PutUint64(p.Data[innerHdr+i*innerEntry:], k)
	binary.LittleEndian.PutUint32(p.Data[innerHdr+i*innerEntry+8:], uint32(child))
}

// childFor returns the rightmost child page whose range covers key —
// the insert path (new duplicates go to the right of existing ones).
func childFor(p *Page, key uint64) PageID {
	n := nodeCount(p)
	lo, hi := 0, n // first i with innerKey(i) > key
	for lo < hi {
		mid := (lo + hi) / 2
		if innerKey(p, mid) > key {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	if lo == 0 {
		return innerLeft(p)
	}
	return innerChild(p, lo-1)
}

// seekChild returns the leftmost child page that can contain the first
// occurrence of key. This differs from childFor when duplicates
// straddle a split boundary: entries equal to a separator key may live
// in the subtree to its left, so a search for the first occurrence must
// descend there and rely on the leaf chain to walk right.
func seekChild(p *Page, key uint64) PageID {
	n := nodeCount(p)
	lo, hi := 0, n // first i with innerKey(i) >= key
	for lo < hi {
		mid := (lo + hi) / 2
		if innerKey(p, mid) >= key {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	if lo == 0 {
		return innerLeft(p)
	}
	return innerChild(p, lo-1)
}

// leafLowerBound returns the first index i with key(i) >= key (or, when
// withVal, with (key,val)(i) >= (key,val)).
func leafLowerBound(p *Page, key uint64) int {
	n := nodeCount(p)
	lo, hi := 0, n
	for lo < hi {
		mid := (lo + hi) / 2
		if leafKey(p, mid) < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Insert adds (key, value). Duplicate keys (and duplicate pairs) are
// allowed; entries with equal keys are stored in insertion-independent
// (value) order.
func (t *BTree) Insert(key, value uint64) error {
	t.latch.Lock()
	defer t.latch.Unlock()
	return t.insertCaptured(key, value, t.logger)
}

// InsertTx is Insert against an explicit per-call page logger, for
// concurrent transactions that each carry their own WAL identity; nil
// inserts unlogged.
func (t *BTree) InsertTx(key, value uint64, lg PageLogger) error {
	t.latch.Lock()
	defer t.latch.Unlock()
	return t.insertCaptured(key, value, lg)
}

func (t *BTree) insertCaptured(key, value uint64, lg PageLogger) error {
	if lg != nil {
		t.pg.CaptureStart()
	}
	err := t.insertLocked(key, value)
	if err == nil {
		// The meta page (root pointer + count) travels with every
		// logged mutation so recovery replays a consistent tree.
		err = t.syncMeta()
	}
	if lg != nil {
		if err != nil {
			// A mutation that dirtied pages before failing cannot be
			// undone by logged compensation; mark it so the db layer
			// escalates to cache-discard recovery.
			err = taintDirty(err, t.pg.DropCapture())
		} else if lerr := t.pg.LogCaptured(lg); lerr != nil {
			// Partial logging always leaves captured dirt behind.
			err = &dirtyFailError{lerr}
		}
	}
	return err
}

func (t *BTree) insertLocked(key, value uint64) error {
	promo, right, changed, err := t.insertAt(t.root, key, value)
	if err != nil {
		return err
	}
	if changed {
		// Root split: build a new root.
		newRoot, err := t.pg.Allocate()
		if err != nil {
			return err
		}
		for i := range newRoot.Data[:innerHdr] {
			newRoot.Data[i] = 0
		}
		newRoot.Data[0] = nodeInternal
		setCount(newRoot, 1)
		binary.LittleEndian.PutUint32(newRoot.Data[4:], uint32(t.root))
		setInnerEntry(newRoot, 0, promo, right)
		newRoot.MarkDirty()
		t.root = newRoot.ID
		t.pg.Unpin(newRoot)
	}
	t.count++
	return nil
}

// insertAt inserts into the subtree rooted at id. When the node splits
// it returns (promotedKey, newRightPage, true).
func (t *BTree) insertAt(id PageID, key, value uint64) (uint64, PageID, bool, error) {
	return t.insertAtDepth(id, key, value, 0)
}

func (t *BTree) insertAtDepth(id PageID, key, value uint64, depth int) (uint64, PageID, bool, error) {
	if depth > maxDepth {
		return 0, 0, false, &CorruptPageError{Path: t.pg.Path(), Page: id,
			Reason: fmt.Sprintf("descent deeper than %d levels (pointer cycle?)", maxDepth)}
	}
	p, err := t.node(id)
	if err != nil {
		return 0, 0, false, err
	}
	if nodeKind(p) == nodeLeaf {
		defer t.pg.Unpin(p)
		return t.insertLeaf(p, key, value)
	}
	child := childFor(p, key)
	t.pg.Unpin(p) // release during recursion; re-fetch if child split
	promo, right, split, err := t.insertAtDepth(child, key, value, depth+1)
	if err != nil || !split {
		return 0, 0, false, err
	}
	p, err = t.node(id)
	if err != nil {
		return 0, 0, false, err
	}
	defer t.pg.Unpin(p)
	return t.insertInner(p, promo, right)
}

func (t *BTree) insertLeaf(p *Page, key, value uint64) (uint64, PageID, bool, error) {
	n := nodeCount(p)
	// Position by (key, value) for deterministic duplicate order.
	i := leafLowerBound(p, key)
	for i < n && leafKey(p, i) == key && leafVal(p, i) < value {
		i++
	}
	if n < maxLeafKeys {
		// Shift right and insert.
		copy(p.Data[leafHdr+(i+1)*leafEntry:leafHdr+(n+1)*leafEntry], p.Data[leafHdr+i*leafEntry:leafHdr+n*leafEntry])
		setLeafEntry(p, i, key, value)
		setCount(p, n+1)
		p.MarkDirty()
		return 0, 0, false, nil
	}
	// Split: left keeps half, right takes the rest.
	right, err := t.pg.Allocate()
	if err != nil {
		return 0, 0, false, err
	}
	defer t.pg.Unpin(right)
	initLeaf(right, leafNext(p))
	half := n / 2
	// Build the merged order conceptually: entries [0,n) plus the new
	// one at i. Distribute without materializing: copy uppers first.
	// Simpler and still O(n): materialize into a scratch array.
	type kv struct{ k, v uint64 }
	scratch := make([]kv, 0, n+1)
	for j := 0; j < n; j++ {
		if j == i {
			scratch = append(scratch, kv{key, value})
		}
		scratch = append(scratch, kv{leafKey(p, j), leafVal(p, j)})
	}
	if i == n {
		scratch = append(scratch, kv{key, value})
	}
	left := scratch[:half+1]
	rest := scratch[half+1:]
	for j, e := range left {
		setLeafEntry(p, j, e.k, e.v)
	}
	setCount(p, len(left))
	binary.LittleEndian.PutUint32(p.Data[4:], uint32(right.ID))
	p.MarkDirty()
	for j, e := range rest {
		setLeafEntry(right, j, e.k, e.v)
	}
	setCount(right, len(rest))
	right.MarkDirty()
	return rest[0].k, right.ID, true, nil
}

func (t *BTree) insertInner(p *Page, key uint64, child PageID) (uint64, PageID, bool, error) {
	n := nodeCount(p)
	// Find insert position: first i with key(i) > key.
	lo, hi := 0, n
	for lo < hi {
		mid := (lo + hi) / 2
		if innerKey(p, mid) > key {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	i := lo
	if n < maxInnerKeys {
		copy(p.Data[innerHdr+(i+1)*innerEntry:innerHdr+(n+1)*innerEntry], p.Data[innerHdr+i*innerEntry:innerHdr+n*innerEntry])
		setInnerEntry(p, i, key, child)
		setCount(p, n+1)
		p.MarkDirty()
		return 0, 0, false, nil
	}
	// Split internal node.
	type kc struct {
		k uint64
		c PageID
	}
	scratch := make([]kc, 0, n+1)
	for j := 0; j < n; j++ {
		if j == i {
			scratch = append(scratch, kc{key, child})
		}
		scratch = append(scratch, kc{innerKey(p, j), innerChild(p, j)})
	}
	if i == n {
		scratch = append(scratch, kc{key, child})
	}
	mid := len(scratch) / 2
	promo := scratch[mid]
	right, err := t.pg.Allocate()
	if err != nil {
		return 0, 0, false, err
	}
	defer t.pg.Unpin(right)
	for j := range right.Data[:innerHdr] {
		right.Data[j] = 0
	}
	right.Data[0] = nodeInternal
	binary.LittleEndian.PutUint32(right.Data[4:], uint32(promo.c))
	rest := scratch[mid+1:]
	for j, e := range rest {
		setInnerEntry(right, j, e.k, e.c)
	}
	setCount(right, len(rest))
	right.MarkDirty()
	left := scratch[:mid]
	for j, e := range left {
		setInnerEntry(p, j, e.k, e.c)
	}
	setCount(p, len(left))
	p.MarkDirty()
	return promo.k, right.ID, true, nil
}

// Iterator walks entries in (key, value) order from a Seek position.
// It buffers one leaf at a time, so concurrent inserts during iteration
// are not supported.
type Iterator struct {
	t       *BTree
	keys    []uint64
	vals    []uint64
	idx     int
	next    PageID
	walked  uint32 // leaves visited, bounds the chain against cycles
	stopped bool
	err     error
}

// Seek positions an iterator at the first entry with key >= key. The
// descent runs under the tree's read latch; the returned iterator
// re-acquires it per leaf load, so concurrent inserts between Next
// calls are safe (the leaf chain stays intact across splits).
func (t *BTree) Seek(key uint64) *Iterator {
	t.latch.RLock()
	defer t.latch.RUnlock()
	it := &Iterator{t: t}
	id := t.root
	for depth := 0; ; depth++ {
		if depth > maxDepth {
			it.err = &CorruptPageError{Path: t.pg.Path(), Page: id,
				Reason: fmt.Sprintf("descent deeper than %d levels (pointer cycle?)", maxDepth)}
			it.stopped = true
			return it
		}
		p, err := t.node(id)
		if err != nil {
			it.err = err
			it.stopped = true
			return it
		}
		if nodeKind(p) == nodeInternal {
			id = seekChild(p, key)
			t.pg.Unpin(p)
			continue
		}
		i := leafLowerBound(p, key)
		it.loadLeaf(p, i)
		t.pg.Unpin(p)
		return it
	}
}

func (it *Iterator) loadLeaf(p *Page, from int) {
	n := nodeCount(p)
	it.keys = it.keys[:0]
	it.vals = it.vals[:0]
	for i := from; i < n; i++ {
		it.keys = append(it.keys, leafKey(p, i))
		it.vals = append(it.vals, leafVal(p, i))
	}
	it.idx = 0
	it.next = leafNext(p)
}

// Next returns the next entry. ok is false at the end of the tree or on
// error (check Err).
func (it *Iterator) Next() (key, value uint64, ok bool) {
	for {
		if it.stopped {
			return 0, 0, false
		}
		if it.idx < len(it.keys) {
			k, v := it.keys[it.idx], it.vals[it.idx]
			it.idx++
			return k, v, true
		}
		if it.next == InvalidPage {
			it.stopped = true
			return 0, 0, false
		}
		if it.walked++; it.walked > it.t.pg.NumPages() {
			it.err = &CorruptPageError{Path: it.t.pg.Path(), Page: it.next,
				Reason: "leaf chain longer than the file (next-pointer cycle)"}
			it.stopped = true
			return 0, 0, false
		}
		if !it.stepLeaf() {
			return 0, 0, false
		}
	}
}

// stepLeaf loads the next leaf in the chain under the tree read latch.
func (it *Iterator) stepLeaf() bool {
	it.t.latch.RLock()
	defer it.t.latch.RUnlock()
	p, err := it.t.node(it.next)
	if err != nil {
		it.err = err
		it.stopped = true
		return false
	}
	if nodeKind(p) != nodeLeaf {
		it.t.pg.Unpin(p)
		it.err = &CorruptPageError{Path: it.t.pg.Path(), Page: it.next,
			Reason: "leaf chain points at an internal node"}
		it.stopped = true
		return false
	}
	it.loadLeaf(p, 0)
	it.t.pg.Unpin(p)
	return true
}

// Err reports an I/O error encountered during iteration.
func (it *Iterator) Err() error { return it.err }

// Lookup collects every value stored under exactly key.
func (t *BTree) Lookup(key uint64) ([]uint64, error) {
	it := t.Seek(key)
	var out []uint64
	for {
		k, v, ok := it.Next()
		if !ok || k != key {
			break
		}
		out = append(out, v)
	}
	return out, it.Err()
}

// Range invokes fn for each entry with lo <= key <= hi, in order.
func (t *BTree) Range(lo, hi uint64, fn func(key, value uint64) error) error {
	it := t.Seek(lo)
	for {
		k, v, ok := it.Next()
		if !ok || k > hi {
			break
		}
		if err := fn(k, v); err != nil {
			if errors.Is(err, ErrStopScan) {
				return nil
			}
			return err
		}
	}
	return it.Err()
}
