package store

import (
	"errors"
	"fmt"
	"os"
	"testing"
)

// TestPagerCloseFlushesDirty is a regression test: Close must write back
// pages that are dirty in the cache, not just close the descriptor.
func TestPagerCloseFlushesDirty(t *testing.T) {
	path := tempPath(t, "p.db")
	pg, err := OpenPager(path, 8)
	if err != nil {
		t.Fatal(err)
	}
	p, err := pg.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	copy(p.Data[:], "must survive close")
	p.MarkDirty()
	pg.Unpin(p)
	if err := pg.Close(); err != nil {
		t.Fatal(err)
	}
	pg2, err := OpenPager(path, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer pg2.Close()
	q, err := pg2.Get(0)
	if err != nil {
		t.Fatal(err)
	}
	if string(q.Data[:18]) != "must survive close" {
		t.Errorf("dirty page lost at close: %q", q.Data[:18])
	}
	pg2.Unpin(q)
}

func TestPagerCloseIdempotentAndSurfacesError(t *testing.T) {
	// A sync fault during Close must surface; the second Close is a no-op.
	fs := &FaultFS{FailSync: 1}
	pg, err := OpenPagerFS(tempPath(t, "p.db"), 8, fs)
	if err != nil {
		t.Fatal(err)
	}
	p, err := pg.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	p.MarkDirty()
	pg.Unpin(p)
	if err := pg.Close(); !errors.Is(err, ErrInjected) {
		t.Errorf("Close did not surface the sync error: %v", err)
	}
	if err := pg.Close(); err != nil {
		t.Errorf("second Close returned %v", err)
	}
	if _, err := pg.Get(0); !errors.Is(err, os.ErrClosed) {
		t.Errorf("Get after Close = %v, want ErrClosed", err)
	}
}

func TestPagerCloseSurfacesWriteError(t *testing.T) {
	fs := &FaultFS{FailWrite: 1}
	pg, err := OpenPagerFS(tempPath(t, "p.db"), 8, fs)
	if err != nil {
		t.Fatal(err)
	}
	p, err := pg.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	p.MarkDirty()
	pg.Unpin(p)
	if err := pg.Close(); !errors.Is(err, ErrInjected) {
		t.Errorf("Close swallowed the write-back error: %v", err)
	}
}

func TestPagerPoolExhaustionTypedError(t *testing.T) {
	pg, err := OpenPager(tempPath(t, "p.db"), 2)
	if err != nil {
		t.Fatal(err)
	}
	defer pg.Close()
	a, err := pg.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	b, err := pg.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	// All pages pinned: the pool must refuse with a typed error rather
	// than evicting a pinned page or spinning.
	if _, err := pg.Allocate(); !errors.Is(err, ErrPoolExhausted) {
		t.Errorf("Allocate with all pinned = %v, want ErrPoolExhausted", err)
	}
	// The pinned pages are untouched and usable.
	a.Data[0], b.Data[0] = 1, 2
	a.MarkDirty()
	b.MarkDirty()
	pg.Unpin(a)
	if c, err := pg.Allocate(); err != nil {
		t.Errorf("Allocate after unpin: %v", err)
	} else {
		pg.Unpin(c)
	}
	pg.Unpin(b)
}

func TestPagerDetectsByteFlip(t *testing.T) {
	path := tempPath(t, "p.db")
	pg, err := OpenPager(path, 8)
	if err != nil {
		t.Fatal(err)
	}
	const pages = 4
	for i := 0; i < pages; i++ {
		p, err := pg.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		copy(p.Data[:], fmt.Sprintf("page %d content", i))
		p.MarkDirty()
		pg.Unpin(p)
	}
	if err := pg.Close(); err != nil {
		t.Fatal(err)
	}

	// Flip one byte in each page in turn (payload, trailer CRC, and
	// version field offsets) and verify the damaged page — and only a
	// damaged page — is reported, with its page number.
	for i := 0; i < pages; i++ {
		for _, off := range []int{100, UsableSize, UsableSize + 4} {
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			raw[i*PageSize+off] ^= 0x01
			if err := os.WriteFile(path, raw, 0o644); err != nil {
				t.Fatal(err)
			}
			pg, err := OpenPager(path, 8)
			if err != nil {
				t.Fatal(err)
			}
			_, gerr := pg.Get(PageID(i))
			var cpe *CorruptPageError
			if !errors.As(gerr, &cpe) {
				t.Fatalf("flip page %d offset %d: Get = %v, want CorruptPageError", i, off, gerr)
			}
			if cpe.Page != PageID(i) {
				t.Errorf("flip page %d: error names page %d", i, cpe.Page)
			}
			if !errors.Is(gerr, ErrCorrupt) {
				t.Errorf("corruption error does not match ErrCorrupt: %v", gerr)
			}
			// Undamaged pages still read fine.
			for j := 0; j < pages; j++ {
				if j == i {
					continue
				}
				q, err := pg.Get(PageID(j))
				if err != nil {
					t.Errorf("undamaged page %d unreadable after flipping page %d: %v", j, i, err)
					continue
				}
				pg.Unpin(q)
			}
			pg.Close()
			// Restore for the next iteration.
			raw[i*PageSize+off] ^= 0x01
			if err := os.WriteFile(path, raw, 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func TestPagerRejectsUnalignedFile(t *testing.T) {
	path := tempPath(t, "p.db")
	if err := os.WriteFile(path, make([]byte, PageSize+100), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := OpenPager(path, 8)
	if !errors.Is(err, ErrCorrupt) {
		t.Errorf("unaligned file opened: %v", err)
	}
}

func TestPagerRejectsTruncatedRead(t *testing.T) {
	path := tempPath(t, "h.db")
	h, err := OpenHeap(path, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		if _, err := h.Insert([]byte(fmt.Sprintf("row %d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
	// Chop the file to a page boundary: the meta still promises more.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:PageSize], 0o644); err != nil {
		t.Fatal(err)
	}
	h2, err := OpenHeap(path, 8)
	if err != nil {
		// Acceptable: open itself may notice. It must be typed.
		if !errors.Is(err, ErrCorrupt) {
			t.Errorf("truncated heap open error untyped: %v", err)
		}
		return
	}
	defer h2.Close()
	if issues := h2.Check(); len(issues) == 0 {
		t.Error("Check found nothing wrong with a truncated heap")
	}
}

func TestFaultFSCountsAndTrips(t *testing.T) {
	counter := &FaultFS{}
	path := tempPath(t, "h.db")
	h, err := OpenHeapFS(path, 8, counter)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		if _, err := h.Insert([]byte(fmt.Sprintf("record %d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
	if counter.Writes() == 0 || counter.Syncs() == 0 {
		t.Fatalf("counter saw %d writes, %d syncs", counter.Writes(), counter.Syncs())
	}
	if counter.Tripped() {
		t.Error("zero-value FaultFS tripped")
	}

	// Arm a fault at the first write: the load must fail with the
	// injected error, and the FS must be down afterwards.
	fs := &FaultFS{FailWrite: 1}
	h2, err := OpenHeapFS(tempPath(t, "h2.db"), 8, fs)
	if err != nil {
		t.Fatal(err)
	}
	var ferr error
	for i := 0; i < 2000 && ferr == nil; i++ {
		_, ferr = h2.Insert([]byte(fmt.Sprintf("record %d", i)))
	}
	if cerr := h2.Close(); ferr == nil {
		ferr = cerr
	}
	if !errors.Is(ferr, ErrInjected) {
		t.Errorf("armed fault never surfaced: %v", ferr)
	}
	if !fs.Tripped() {
		t.Error("fault did not trip")
	}
	if _, err := fs.OpenFile(tempPath(t, "x"), os.O_RDWR|os.O_CREATE, 0o644); !errors.Is(err, ErrInjected) {
		t.Errorf("filesystem still up after crash point: %v", err)
	}
}

func TestHeapCheckCleanAndDamaged(t *testing.T) {
	path := tempPath(t, "h.db")
	h, err := OpenHeap(path, 16)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1500; i++ {
		if _, err := h.Insert([]byte(fmt.Sprintf("row %04d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if issues := h.Check(); len(issues) != 0 {
		t.Fatalf("clean heap reported issues: %v", issues)
	}
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}

	// Damage one data page; Check must name it.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[2*PageSize+50] ^= 0xFF
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	h2, err := OpenHeap(path, 16)
	if err != nil {
		t.Fatal(err)
	}
	defer h2.Close()
	issues := h2.Check()
	if len(issues) == 0 {
		t.Fatal("Check missed a damaged page")
	}
	found := false
	for _, is := range issues {
		if is.Page == 2 {
			found = true
		}
	}
	if !found {
		t.Errorf("Check did not name page 2: %v", issues)
	}
}

func TestBTreeCheckCleanAndDamaged(t *testing.T) {
	path := tempPath(t, "b.db")
	bt, err := OpenBTree(path, 64)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 20000; i++ {
		if err := bt.Insert(i%500, i); err != nil {
			t.Fatal(err)
		}
	}
	if issues := bt.Check(); len(issues) != 0 {
		t.Fatalf("clean btree reported issues: %v", issues)
	}
	if err := bt.Close(); err != nil {
		t.Fatal(err)
	}

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Damage a mid-file page (some node, not the meta).
	target := len(raw) / PageSize / 2
	raw[target*PageSize+16] ^= 0xFF
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	bt2, err := OpenBTree(path, 64)
	if err != nil {
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("damaged btree open error untyped: %v", err)
		}
		return
	}
	defer bt2.Close()
	issues := bt2.Check()
	if len(issues) == 0 {
		t.Fatal("Check missed a damaged btree page")
	}
	found := false
	for _, is := range issues {
		if is.Page == PageID(target) {
			found = true
		}
	}
	if !found {
		t.Errorf("Check did not name page %d: %v", target, issues)
	}
}

func TestBTreeCheckDetectsLogicalDamage(t *testing.T) {
	// Corrupt the tree in a checksum-consistent way (flip bytes, then
	// re-stamp the trailer): only the structural validator can catch it.
	path := tempPath(t, "b.db")
	bt, err := OpenBTree(path, 64)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 5000; i++ {
		if err := bt.Insert(i, i); err != nil {
			t.Fatal(err)
		}
	}
	if err := bt.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Find a leaf page and scramble a key, then restamp its checksum.
	for id := 1; id < len(raw)/PageSize; id++ {
		page := raw[id*PageSize : (id+1)*PageSize]
		if page[0] != nodeLeaf {
			continue
		}
		// Overwrite the first key with max-uint64: breaks ordering.
		for i := 0; i < 8; i++ {
			page[leafHdr+i] = 0xFF
		}
		var p Page
		p.ID = PageID(id)
		copy(p.Data[:], page)
		stampTrailer(&p)
		copy(page, p.Data[:])
		break
	}
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	bt2, err := OpenBTree(path, 64)
	if err != nil {
		t.Fatal(err)
	}
	defer bt2.Close()
	if issues := bt2.Check(); len(issues) == 0 {
		t.Error("Check missed checksum-consistent logical damage")
	}
}
