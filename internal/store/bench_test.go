package store

import (
	"fmt"
	"testing"
)

func BenchmarkHeapInsert(b *testing.B) {
	h, err := OpenHeap(b.TempDir()+"/h.db", 256)
	if err != nil {
		b.Fatal(err)
	}
	defer h.Close()
	rec := []byte("a modest record of some tens of bytes, like a name row")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := h.Insert(rec); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHeapScan(b *testing.B) {
	h, err := OpenHeap(b.TempDir()+"/h.db", 256)
	if err != nil {
		b.Fatal(err)
	}
	defer h.Close()
	for i := 0; i < 10000; i++ {
		h.Insert([]byte(fmt.Sprintf("record %d with a realistic payload size", i)))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		h.Scan(func(RID, []byte) error { n++; return nil })
		if n != 10000 {
			b.Fatal("scan lost records")
		}
	}
}

func BenchmarkBTreeInsert(b *testing.B) {
	bt, err := OpenBTree(b.TempDir()+"/b.db", 256)
	if err != nil {
		b.Fatal(err)
	}
	defer bt.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := bt.Insert(uint64(i*2654435761), uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBTreeLookup(b *testing.B) {
	bt, err := OpenBTree(b.TempDir()+"/b.db", 256)
	if err != nil {
		b.Fatal(err)
	}
	defer bt.Close()
	const n = 100000
	for i := 0; i < n; i++ {
		bt.Insert(uint64(i), uint64(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vals, err := bt.Lookup(uint64(i % n))
		if err != nil || len(vals) != 1 {
			b.Fatal("lookup failed")
		}
	}
}
