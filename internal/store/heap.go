package store

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// HeapFile stores variable-length records in slotted pages. Records are
// addressed by RID and never move; deletion leaves a tombstone. The
// meta page (page 0) records the page/record counts so a heap reopens
// cheaply.
//
// Page layout (pages >= 1):
//
//	[0:2)  slot count n
//	[2:4)  free-space offset (start of the record area, grows down)
//	[4:..) slot array: n entries of {offset uint16, length uint16}
//	 ...   free space
//	[freeOff:PageSize) record bytes (allocated from the end)
//
// A slot with offset 0 is a tombstone (valid records never start at
// offset 0, which lies inside the header).
type HeapFile struct {
	pg *Pager
	// meta
	lastPage PageID // page currently receiving inserts
	count    uint64 // live record count
}

// RID addresses one record: page and slot.
type RID struct {
	Page PageID
	Slot uint16
}

// Pack encodes the RID as a uint64 (for storing RIDs in B-tree values).
func (r RID) Pack() uint64 { return uint64(r.Page)<<16 | uint64(r.Slot) }

// UnpackRID reverses Pack.
func UnpackRID(v uint64) RID {
	return RID{Page: PageID(v >> 16), Slot: uint16(v & 0xFFFF)}
}

func (r RID) String() string { return fmt.Sprintf("(%d,%d)", r.Page, r.Slot) }

const (
	heapMagic     = 0x4C455848 // "LEXH"
	heapHdrSlotsN = 0
	heapHdrFree   = 2
	heapSlotBase  = 4
	heapSlotSize  = 4
)

// maxHeapRecord is the largest record a heap accepts: it must fit in a
// fresh page alongside the header and one slot.
const maxHeapRecord = PageSize - heapSlotBase - heapSlotSize

// OpenHeap opens (or creates) a heap file at path.
func OpenHeap(path string, cachePages int) (*HeapFile, error) {
	pg, err := OpenPager(path, cachePages)
	if err != nil {
		return nil, err
	}
	h := &HeapFile{pg: pg}
	if pg.NumPages() == 0 {
		meta, err := pg.Allocate()
		if err != nil {
			pg.Close()
			return nil, err
		}
		binary.LittleEndian.PutUint32(meta.Data[0:], heapMagic)
		h.lastPage = InvalidPage
		h.writeMeta(meta)
		pg.Unpin(meta)
		return h, nil
	}
	meta, err := pg.Get(0)
	if err != nil {
		pg.Close()
		return nil, err
	}
	defer pg.Unpin(meta)
	if binary.LittleEndian.Uint32(meta.Data[0:]) != heapMagic {
		pg.Close()
		return nil, fmt.Errorf("store: %s is not a heap file", path)
	}
	h.lastPage = PageID(binary.LittleEndian.Uint32(meta.Data[4:]))
	h.count = binary.LittleEndian.Uint64(meta.Data[8:])
	return h, nil
}

func (h *HeapFile) writeMeta(meta *Page) {
	binary.LittleEndian.PutUint32(meta.Data[4:], uint32(h.lastPage))
	binary.LittleEndian.PutUint64(meta.Data[8:], h.count)
	meta.MarkDirty()
}

func (h *HeapFile) syncMeta() error {
	meta, err := h.pg.Get(0)
	if err != nil {
		return err
	}
	h.writeMeta(meta)
	h.pg.Unpin(meta)
	return nil
}

// Count returns the number of live records.
func (h *HeapFile) Count() uint64 { return h.count }

// Pager exposes the underlying pager (for I/O statistics).
func (h *HeapFile) Pager() *Pager { return h.pg }

// Close flushes metadata and the page cache.
func (h *HeapFile) Close() error {
	if err := h.syncMeta(); err != nil {
		h.pg.Close()
		return err
	}
	return h.pg.Close()
}

func pageFree(p *Page) int {
	n := int(binary.LittleEndian.Uint16(p.Data[heapHdrSlotsN:]))
	freeOff := int(binary.LittleEndian.Uint16(p.Data[heapHdrFree:]))
	slotEnd := heapSlotBase + n*heapSlotSize
	return freeOff - slotEnd
}

// Insert appends a record and returns its RID.
func (h *HeapFile) Insert(rec []byte) (RID, error) {
	if len(rec) > maxHeapRecord {
		return RID{}, fmt.Errorf("store: record of %d bytes exceeds max %d", len(rec), maxHeapRecord)
	}
	var p *Page
	var err error
	if h.lastPage != InvalidPage {
		p, err = h.pg.Get(h.lastPage)
		if err != nil {
			return RID{}, err
		}
		if pageFree(p) < len(rec)+heapSlotSize {
			h.pg.Unpin(p)
			p = nil
		}
	}
	if p == nil {
		p, err = h.pg.Allocate()
		if err != nil {
			return RID{}, err
		}
		binary.LittleEndian.PutUint16(p.Data[heapHdrSlotsN:], 0)
		binary.LittleEndian.PutUint16(p.Data[heapHdrFree:], PageSize)
		h.lastPage = p.ID
	}
	defer h.pg.Unpin(p)

	n := binary.LittleEndian.Uint16(p.Data[heapHdrSlotsN:])
	freeOff := binary.LittleEndian.Uint16(p.Data[heapHdrFree:])
	newOff := freeOff - uint16(len(rec))
	copy(p.Data[newOff:freeOff], rec)
	slot := heapSlotBase + int(n)*heapSlotSize
	binary.LittleEndian.PutUint16(p.Data[slot:], newOff)
	binary.LittleEndian.PutUint16(p.Data[slot+2:], uint16(len(rec)))
	binary.LittleEndian.PutUint16(p.Data[heapHdrSlotsN:], n+1)
	binary.LittleEndian.PutUint16(p.Data[heapHdrFree:], newOff)
	p.MarkDirty()
	h.count++
	return RID{Page: p.ID, Slot: n}, nil
}

// Get returns a copy of the record at rid.
func (h *HeapFile) Get(rid RID) ([]byte, error) {
	if rid.Page == 0 {
		return nil, fmt.Errorf("store: rid %v addresses the meta page", rid)
	}
	p, err := h.pg.Get(rid.Page)
	if err != nil {
		return nil, err
	}
	defer h.pg.Unpin(p)
	n := binary.LittleEndian.Uint16(p.Data[heapHdrSlotsN:])
	if rid.Slot >= n {
		return nil, fmt.Errorf("store: rid %v slot out of range (%d slots)", rid, n)
	}
	slot := heapSlotBase + int(rid.Slot)*heapSlotSize
	off := binary.LittleEndian.Uint16(p.Data[slot:])
	length := binary.LittleEndian.Uint16(p.Data[slot+2:])
	if off == 0 {
		return nil, fmt.Errorf("store: rid %v: %w", rid, ErrDeleted)
	}
	rec := make([]byte, length)
	copy(rec, p.Data[off:off+length])
	return rec, nil
}

// Delete tombstones the record at rid. The space is not reclaimed
// (adequate for the read-mostly experimental workloads).
func (h *HeapFile) Delete(rid RID) error {
	if rid.Page == 0 {
		return fmt.Errorf("store: rid %v addresses the meta page", rid)
	}
	p, err := h.pg.Get(rid.Page)
	if err != nil {
		return err
	}
	defer h.pg.Unpin(p)
	n := binary.LittleEndian.Uint16(p.Data[heapHdrSlotsN:])
	if rid.Slot >= n {
		return fmt.Errorf("store: rid %v slot out of range", rid)
	}
	slot := heapSlotBase + int(rid.Slot)*heapSlotSize
	if binary.LittleEndian.Uint16(p.Data[slot:]) == 0 {
		return fmt.Errorf("store: rid %v already deleted", rid)
	}
	binary.LittleEndian.PutUint16(p.Data[slot:], 0)
	binary.LittleEndian.PutUint16(p.Data[slot+2:], 0)
	p.MarkDirty()
	h.count--
	return nil
}

// Scan invokes fn for every live record in RID order. The record slice
// is only valid during the call. Returning a non-nil error stops the
// scan and propagates the error; the sentinel ErrStopScan stops cleanly.
func (h *HeapFile) Scan(fn func(rid RID, rec []byte) error) error {
	for id := PageID(1); uint32(id) < h.pg.NumPages(); id++ {
		p, err := h.pg.Get(id)
		if err != nil {
			return err
		}
		n := binary.LittleEndian.Uint16(p.Data[heapHdrSlotsN:])
		for s := uint16(0); s < n; s++ {
			slot := heapSlotBase + int(s)*heapSlotSize
			off := binary.LittleEndian.Uint16(p.Data[slot:])
			if off == 0 {
				continue
			}
			length := binary.LittleEndian.Uint16(p.Data[slot+2:])
			if err := fn(RID{Page: id, Slot: s}, p.Data[off:off+length]); err != nil {
				h.pg.Unpin(p)
				if err == ErrStopScan {
					return nil
				}
				return err
			}
		}
		h.pg.Unpin(p)
	}
	return nil
}

// ScanPage invokes fn for every live record on one page, enabling
// resumable page-at-a-time cursors (the executor's SeqScan).
func (h *HeapFile) ScanPage(id PageID, fn func(rid RID, rec []byte) error) error {
	if id == 0 || uint32(id) >= h.pg.NumPages() {
		return fmt.Errorf("store: ScanPage %d out of range", id)
	}
	p, err := h.pg.Get(id)
	if err != nil {
		return err
	}
	defer h.pg.Unpin(p)
	n := binary.LittleEndian.Uint16(p.Data[heapHdrSlotsN:])
	for s := uint16(0); s < n; s++ {
		slot := heapSlotBase + int(s)*heapSlotSize
		off := binary.LittleEndian.Uint16(p.Data[slot:])
		if off == 0 {
			continue
		}
		length := binary.LittleEndian.Uint16(p.Data[slot+2:])
		if err := fn(RID{Page: id, Slot: s}, p.Data[off:off+length]); err != nil {
			return err
		}
	}
	return nil
}

// ErrStopScan stops a Scan early without error.
var ErrStopScan = fmt.Errorf("store: stop scan")

// ErrDeleted marks a fetch of a tombstoned record. Index readers treat
// it as "skip": secondary B-trees have no delete operation (DESIGN.md
// non-goals), so stale index entries are filtered at fetch time.
var ErrDeleted = errors.New("record deleted")
