package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
)

// HeapFile stores variable-length records in slotted pages. Records are
// addressed by RID and never move; deletion leaves a tombstone. The
// meta page (page 0) records the page/record counts so a heap reopens
// cheaply.
//
// Page layout (pages >= 1, payload area [0:UsableSize)):
//
//	[0:2)  slot count n
//	[2:4)  free-space offset (start of the record area, grows down)
//	[4:..) slot array: n entries of {offset uint16, length uint16}
//	 ...   free space
//	[freeOff:UsableSize) record bytes (allocated from the end)
//
// A slot with offset 0 is a tombstone (valid records never start at
// offset 0, which lies inside the header). Every structural field read
// from a page is validated before use, so a corrupt page that slips
// past the checksum (or is corrupted in memory) yields a
// CorruptPageError instead of an out-of-range panic.
type HeapFile struct {
	pg *Pager
	// latch is the structure latch: scans and fetches share it, Insert
	// and Delete take it exclusively. Together with the goroutine-safe
	// pager underneath, this makes a HeapFile safe for concurrent use
	// (concurrent readers proceed in parallel; writers serialize).
	latch sync.RWMutex
	// meta (guarded by latch)
	lastPage PageID // page currently receiving inserts
	count    uint64 // live record count
	closed   bool
	// logger, when attached (SetLogger), receives the after-image of
	// every page a mutation dirties, inside the mutation's latch.
	logger PageLogger
}

// RID addresses one record: page and slot.
type RID struct {
	Page PageID
	Slot uint16
}

// Pack encodes the RID as a uint64 (for storing RIDs in B-tree values).
func (r RID) Pack() uint64 { return uint64(r.Page)<<16 | uint64(r.Slot) }

// UnpackRID reverses Pack.
func UnpackRID(v uint64) RID {
	return RID{Page: PageID(v >> 16), Slot: uint16(v & 0xFFFF)}
}

func (r RID) String() string { return fmt.Sprintf("(%d,%d)", r.Page, r.Slot) }

const (
	heapMagic     = 0x4C455848 // "LEXH"
	heapHdrSlotsN = 0
	heapHdrFree   = 2
	heapSlotBase  = 4
	heapSlotSize  = 4
)

// maxHeapRecord is the largest record a heap accepts: it must fit in a
// fresh page alongside the header and one slot.
const maxHeapRecord = UsableSize - heapSlotBase - heapSlotSize

// OpenHeap opens (or creates) a heap file at path.
func OpenHeap(path string, cachePages int) (*HeapFile, error) {
	return OpenHeapFS(path, cachePages, nil)
}

// OpenHeapFS is OpenHeap through an explicit VFS (nil selects OSFS).
func OpenHeapFS(path string, cachePages int, fs VFS) (*HeapFile, error) {
	pg, err := OpenPagerFS(path, cachePages, fs)
	if err != nil {
		return nil, err
	}
	h := &HeapFile{pg: pg}
	if pg.NumPages() == 0 {
		meta, err := pg.Allocate()
		if err != nil {
			return nil, errors.Join(err, pg.Close())
		}
		binary.LittleEndian.PutUint32(meta.Data[0:], heapMagic)
		h.lastPage = InvalidPage
		h.writeMeta(meta)
		pg.Unpin(meta)
		return h, nil
	}
	meta, err := pg.Get(0)
	if err != nil {
		return nil, errors.Join(err, pg.Close())
	}
	defer pg.Unpin(meta)
	if binary.LittleEndian.Uint32(meta.Data[0:]) != heapMagic {
		corrupt := &CorruptFileError{Path: path, Reason: "not a heap file (bad magic)"}
		return nil, errors.Join(corrupt, pg.Close())
	}
	h.lastPage = PageID(binary.LittleEndian.Uint32(meta.Data[4:]))
	h.count = binary.LittleEndian.Uint64(meta.Data[8:])
	return h, nil
}

func (h *HeapFile) writeMeta(meta *Page) {
	binary.LittleEndian.PutUint32(meta.Data[4:], uint32(h.lastPage))
	binary.LittleEndian.PutUint64(meta.Data[8:], h.count)
	meta.MarkDirty()
}

func (h *HeapFile) syncMeta() error {
	meta, err := h.pg.Get(0)
	if err != nil {
		return err
	}
	h.writeMeta(meta)
	h.pg.Unpin(meta)
	return nil
}

// SetLogger attaches the WAL page logger: every Insert and Delete then
// emits the after-images of the pages it dirtied (data page and meta
// page) before its latch is released. Attach before concurrent use.
func (h *HeapFile) SetLogger(lg PageLogger) {
	h.latch.Lock()
	h.logger = lg
	h.latch.Unlock()
}

// Discard drops the page cache without write-back and closes the file:
// the rollback/recovery path, where the WAL holds the authoritative
// state and flushing the cache would leak loser pages.
func (h *HeapFile) Discard() error {
	h.latch.Lock()
	defer h.latch.Unlock()
	if h.closed {
		return nil
	}
	h.closed = true
	return h.pg.Discard()
}

// Count returns the number of live records.
func (h *HeapFile) Count() uint64 {
	h.latch.RLock()
	defer h.latch.RUnlock()
	return h.count
}

// Pager exposes the underlying pager (for I/O statistics).
func (h *HeapFile) Pager() *Pager { return h.pg }

// Flush writes metadata and every flushable dirty page to disk and
// syncs the file, without closing it (the checkpoint path).
func (h *HeapFile) Flush() error {
	h.latch.Lock()
	defer h.latch.Unlock()
	if h.closed {
		return nil
	}
	if err := h.syncMeta(); err != nil {
		return err
	}
	return h.pg.Flush()
}

// FlushCommitted writes back the committed dirty pages of the heap
// without syncing, for a fuzzy checkpoint. It takes the latch shared:
// concurrent scans proceed, and the meta page needs no separate sync
// because every logged mutation already rewrites it inside its capture
// window. A closed heap reports success — its Close already flushed.
func (h *HeapFile) FlushCommitted() error {
	h.latch.RLock()
	defer h.latch.RUnlock()
	if h.closed {
		return nil
	}
	return h.pg.FlushCommitted()
}

// SyncData fsyncs the heap's backing file (the durability half of a
// checkpoint round).
func (h *HeapFile) SyncData() error {
	h.latch.RLock()
	defer h.latch.RUnlock()
	if h.closed {
		return nil
	}
	return h.pg.SyncFile()
}

// MinRecLSN reports the smallest recovery LSN over the heap's dirty
// pages (ok=false when clean — or closed, which flushed everything).
func (h *HeapFile) MinRecLSN() (uint64, bool) {
	h.latch.RLock()
	defer h.latch.RUnlock()
	if h.closed {
		return 0, false
	}
	return h.pg.MinRecLSN()
}

// Close flushes metadata and the page cache. It is safe to call more
// than once; the first error wins and later calls are no-ops.
func (h *HeapFile) Close() error {
	h.latch.Lock()
	defer h.latch.Unlock()
	if h.closed {
		return nil
	}
	h.closed = true
	err := h.syncMeta()
	if cerr := h.pg.Close(); err == nil {
		err = cerr
	}
	return err
}

// pageSlots validates the slot-directory header of p and returns the
// slot count and free offset.
func (h *HeapFile) pageSlots(p *Page) (n, freeOff int, err error) {
	n = int(binary.LittleEndian.Uint16(p.Data[heapHdrSlotsN:]))
	freeOff = int(binary.LittleEndian.Uint16(p.Data[heapHdrFree:]))
	slotEnd := heapSlotBase + n*heapSlotSize
	if slotEnd > UsableSize || freeOff < slotEnd || freeOff > UsableSize {
		return 0, 0, &CorruptPageError{Path: h.pg.Path(), Page: p.ID,
			Reason: fmt.Sprintf("impossible slot directory (%d slots, free offset %d)", n, freeOff)}
	}
	return n, freeOff, nil
}

// slotRecord returns the record bytes of slot s (aliasing the page
// buffer), or nil for a tombstone. Slot bounds must already be checked
// against the page's slot count.
func (h *HeapFile) slotRecord(p *Page, s int, freeOff int) ([]byte, error) {
	slot := heapSlotBase + s*heapSlotSize
	off := int(binary.LittleEndian.Uint16(p.Data[slot:]))
	if off == 0 {
		return nil, nil // tombstone
	}
	length := int(binary.LittleEndian.Uint16(p.Data[slot+2:]))
	if off < freeOff || off+length > UsableSize {
		return nil, &CorruptPageError{Path: h.pg.Path(), Page: p.ID,
			Reason: fmt.Sprintf("slot %d points outside the record area (offset %d, length %d)", s, off, length)}
	}
	return p.Data[off : off+length], nil
}

// Insert appends a record and returns its RID, logging against the
// attached logger (the ambient-transaction path).
func (h *HeapFile) Insert(rec []byte) (RID, error) {
	h.latch.Lock()
	defer h.latch.Unlock()
	return h.insertCaptured(rec, h.logger)
}

// InsertTx is Insert against an explicit per-call page logger, for
// concurrent transactions that each carry their own WAL identity. A
// nil logger inserts unlogged (bulk builds, recovery repair).
func (h *HeapFile) InsertTx(rec []byte, lg PageLogger) (RID, error) {
	h.latch.Lock()
	defer h.latch.Unlock()
	return h.insertCaptured(rec, lg)
}

func (h *HeapFile) insertCaptured(rec []byte, lg PageLogger) (RID, error) {
	if lg != nil {
		h.pg.CaptureStart()
	}
	rid, err := h.insertLocked(rec)
	if err == nil {
		// The meta page travels with every mutation: under a WAL the
		// counts must be part of the transaction's page images, not
		// wait for Close.
		err = h.syncMeta()
	}
	if lg != nil {
		if err != nil {
			// A mutation that dirtied pages before failing cannot be
			// undone by logged compensation; mark it so the db layer
			// escalates to cache-discard recovery.
			err = taintDirty(err, h.pg.DropCapture())
		} else if lerr := h.pg.LogCaptured(lg); lerr != nil {
			// Partial logging always leaves captured dirt behind.
			err = &dirtyFailError{lerr}
		}
	}
	if err != nil {
		return RID{}, err
	}
	return rid, nil
}

func (h *HeapFile) insertLocked(rec []byte) (RID, error) {
	if len(rec) > maxHeapRecord {
		return RID{}, fmt.Errorf("store: record of %d bytes exceeds max %d", len(rec), maxHeapRecord)
	}
	var p *Page
	var err error
	if h.lastPage != InvalidPage {
		p, err = h.pg.Get(h.lastPage)
		if err != nil {
			return RID{}, err
		}
		n, freeOff, err := h.pageSlots(p)
		if err != nil {
			h.pg.Unpin(p)
			return RID{}, err
		}
		if freeOff-(heapSlotBase+n*heapSlotSize) < len(rec)+heapSlotSize {
			h.pg.Unpin(p)
			p = nil
		}
	}
	if p == nil {
		p, err = h.pg.Allocate()
		if err != nil {
			return RID{}, err
		}
		binary.LittleEndian.PutUint16(p.Data[heapHdrSlotsN:], 0)
		binary.LittleEndian.PutUint16(p.Data[heapHdrFree:], UsableSize)
		h.lastPage = p.ID
	}
	defer h.pg.Unpin(p)

	n := binary.LittleEndian.Uint16(p.Data[heapHdrSlotsN:])
	freeOff := binary.LittleEndian.Uint16(p.Data[heapHdrFree:])
	newOff := freeOff - uint16(len(rec))
	copy(p.Data[newOff:freeOff], rec)
	slot := heapSlotBase + int(n)*heapSlotSize
	binary.LittleEndian.PutUint16(p.Data[slot:], newOff)
	binary.LittleEndian.PutUint16(p.Data[slot+2:], uint16(len(rec)))
	binary.LittleEndian.PutUint16(p.Data[heapHdrSlotsN:], n+1)
	binary.LittleEndian.PutUint16(p.Data[heapHdrFree:], newOff)
	p.MarkDirty()
	h.count++
	return RID{Page: p.ID, Slot: n}, nil
}

// Get returns a copy of the record at rid.
func (h *HeapFile) Get(rid RID) ([]byte, error) {
	h.latch.RLock()
	defer h.latch.RUnlock()
	if rid.Page == 0 {
		return nil, fmt.Errorf("store: rid %v addresses the meta page", rid)
	}
	p, err := h.pg.Get(rid.Page)
	if err != nil {
		return nil, err
	}
	defer h.pg.Unpin(p)
	n, freeOff, err := h.pageSlots(p)
	if err != nil {
		return nil, err
	}
	if int(rid.Slot) >= n {
		return nil, fmt.Errorf("store: rid %v slot out of range (%d slots)", rid, n)
	}
	raw, err := h.slotRecord(p, int(rid.Slot), freeOff)
	if err != nil {
		return nil, err
	}
	if raw == nil {
		return nil, fmt.Errorf("store: rid %v: %w", rid, ErrDeleted)
	}
	rec := make([]byte, len(raw))
	copy(rec, raw)
	return rec, nil
}

// Delete tombstones the record at rid, logging against the attached
// logger. The space is not reclaimed (adequate for the read-mostly
// experimental workloads).
func (h *HeapFile) Delete(rid RID) error {
	h.latch.Lock()
	defer h.latch.Unlock()
	return h.deleteCaptured(rid, h.logger)
}

// DeleteTx is Delete against an explicit per-call page logger; nil
// deletes unlogged.
func (h *HeapFile) DeleteTx(rid RID, lg PageLogger) error {
	h.latch.Lock()
	defer h.latch.Unlock()
	return h.deleteCaptured(rid, lg)
}

func (h *HeapFile) deleteCaptured(rid RID, lg PageLogger) error {
	if lg != nil {
		h.pg.CaptureStart()
	}
	err := h.deleteLocked(rid)
	if err == nil {
		err = h.syncMeta()
	}
	if lg != nil {
		if err != nil {
			// A mutation that dirtied pages before failing cannot be
			// undone by logged compensation; mark it so the db layer
			// escalates to cache-discard recovery.
			err = taintDirty(err, h.pg.DropCapture())
		} else if lerr := h.pg.LogCaptured(lg); lerr != nil {
			// Partial logging always leaves captured dirt behind.
			err = &dirtyFailError{lerr}
		}
	}
	return err
}

func (h *HeapFile) deleteLocked(rid RID) error {
	if rid.Page == 0 {
		return fmt.Errorf("store: rid %v addresses the meta page", rid)
	}
	p, err := h.pg.Get(rid.Page)
	if err != nil {
		return err
	}
	defer h.pg.Unpin(p)
	n, _, err := h.pageSlots(p)
	if err != nil {
		return err
	}
	if int(rid.Slot) >= n {
		return fmt.Errorf("store: rid %v slot out of range", rid)
	}
	slot := heapSlotBase + int(rid.Slot)*heapSlotSize
	if binary.LittleEndian.Uint16(p.Data[slot:]) == 0 {
		return fmt.Errorf("store: rid %v already deleted", rid)
	}
	binary.LittleEndian.PutUint16(p.Data[slot:], 0)
	binary.LittleEndian.PutUint16(p.Data[slot+2:], 0)
	p.MarkDirty()
	h.count--
	return nil
}

// Patch overwrites len(data) bytes of the record at rid starting at
// byte offset off, in place (the record's length never changes),
// logging against the attached logger. It exists for the MVCC version
// header: claiming or clearing a row's deleter stamp rewrites eight
// bytes of a live record without moving it.
func (h *HeapFile) Patch(rid RID, off int, data []byte) error {
	h.latch.Lock()
	defer h.latch.Unlock()
	return h.patchCaptured(rid, off, data, h.logger)
}

// PatchTx is Patch against an explicit per-call page logger; nil
// patches unlogged (recovery repair).
func (h *HeapFile) PatchTx(rid RID, off int, data []byte, lg PageLogger) error {
	h.latch.Lock()
	defer h.latch.Unlock()
	return h.patchCaptured(rid, off, data, lg)
}

func (h *HeapFile) patchCaptured(rid RID, off int, data []byte, lg PageLogger) error {
	if lg != nil {
		h.pg.CaptureStart()
	}
	err := h.patchLocked(rid, off, data)
	if err == nil {
		err = h.syncMeta()
	}
	if lg != nil {
		if err != nil {
			// A mutation that dirtied pages before failing cannot be
			// undone by logged compensation; mark it so the db layer
			// escalates to cache-discard recovery.
			err = taintDirty(err, h.pg.DropCapture())
		} else if lerr := h.pg.LogCaptured(lg); lerr != nil {
			// Partial logging always leaves captured dirt behind.
			err = &dirtyFailError{lerr}
		}
	}
	return err
}

func (h *HeapFile) patchLocked(rid RID, off int, data []byte) error {
	if rid.Page == 0 {
		return fmt.Errorf("store: rid %v addresses the meta page", rid)
	}
	p, err := h.pg.Get(rid.Page)
	if err != nil {
		return err
	}
	defer h.pg.Unpin(p)
	n, freeOff, err := h.pageSlots(p)
	if err != nil {
		return err
	}
	if int(rid.Slot) >= n {
		return fmt.Errorf("store: rid %v slot out of range", rid)
	}
	raw, err := h.slotRecord(p, int(rid.Slot), freeOff)
	if err != nil {
		return err
	}
	if raw == nil {
		return fmt.Errorf("store: rid %v: %w", rid, ErrDeleted)
	}
	if off < 0 || off+len(data) > len(raw) {
		return fmt.Errorf("store: patch [%d:%d) outside record of %d bytes at rid %v",
			off, off+len(data), len(raw), rid)
	}
	copy(raw[off:], data)
	p.MarkDirty()
	return nil
}

// Scan invokes fn for every live record in RID order. The record slice
// is only valid during the call. Returning a non-nil error stops the
// scan and propagates the error; the sentinel ErrStopScan stops cleanly.
// The structure read latch is held for the whole scan, so a full Scan
// observes a consistent heap even with concurrent writers.
func (h *HeapFile) Scan(fn func(rid RID, rec []byte) error) error {
	h.latch.RLock()
	defer h.latch.RUnlock()
	for id := PageID(1); uint32(id) < h.pg.NumPages(); id++ {
		if err := h.scanPage(id, fn); err != nil {
			if errors.Is(err, ErrStopScan) {
				return nil
			}
			return err
		}
	}
	return nil
}

// ScanPage invokes fn for every live record on one page, enabling
// resumable page-at-a-time cursors (the executor's SeqScan). Unlike
// Scan, ErrStopScan propagates so callers can distinguish a clean stop.
// The read latch covers one page visit; a paused cursor does not block
// writers between pages.
func (h *HeapFile) ScanPage(id PageID, fn func(rid RID, rec []byte) error) error {
	h.latch.RLock()
	defer h.latch.RUnlock()
	return h.scanPage(id, fn)
}

// scanPage is ScanPage with the latch already held (shared).
func (h *HeapFile) scanPage(id PageID, fn func(rid RID, rec []byte) error) error {
	if id == 0 || uint32(id) >= h.pg.NumPages() {
		return fmt.Errorf("store: ScanPage %d out of range", id)
	}
	p, err := h.pg.Get(id)
	if err != nil {
		return err
	}
	defer h.pg.Unpin(p)
	n, freeOff, err := h.pageSlots(p)
	if err != nil {
		return err
	}
	for s := 0; s < n; s++ {
		rec, err := h.slotRecord(p, s, freeOff)
		if err != nil {
			return err
		}
		if rec == nil {
			continue
		}
		if err := fn(RID{Page: id, Slot: uint16(s)}, rec); err != nil {
			return err
		}
	}
	return nil
}

// ErrStopScan stops a Scan early without error.
var ErrStopScan = fmt.Errorf("store: stop scan")

// ErrDeleted marks a fetch of a tombstoned record. Index readers treat
// it as "skip": secondary B-trees have no delete operation (DESIGN.md
// non-goals), so stale index entries are filtered at fetch time.
var ErrDeleted = errors.New("record deleted")
