package store

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"sort"
	"testing"
)

func tempPath(t *testing.T, name string) string {
	t.Helper()
	return filepath.Join(t.TempDir(), name)
}

func TestPagerAllocateGetPersist(t *testing.T) {
	path := tempPath(t, "p.db")
	pg, err := OpenPager(path, 8)
	if err != nil {
		t.Fatal(err)
	}
	p, err := pg.Allocate()
	if err != nil {
		t.Fatal(err)
	}
	copy(p.Data[:], "hello page zero")
	p.MarkDirty()
	pg.Unpin(p)
	if pg.NumPages() != 1 {
		t.Errorf("NumPages = %d", pg.NumPages())
	}
	if err := pg.Close(); err != nil {
		t.Fatal(err)
	}
	pg2, err := OpenPager(path, 8)
	if err != nil {
		t.Fatal(err)
	}
	defer pg2.Close()
	q, err := pg2.Get(0)
	if err != nil {
		t.Fatal(err)
	}
	if string(q.Data[:15]) != "hello page zero" {
		t.Errorf("persisted data = %q", q.Data[:15])
	}
	pg2.Unpin(q)
}

func TestPagerOutOfRange(t *testing.T) {
	pg, err := OpenPager(tempPath(t, "p.db"), 8)
	if err != nil {
		t.Fatal(err)
	}
	defer pg.Close()
	if _, err := pg.Get(0); err == nil {
		t.Error("Get on empty file succeeded")
	}
}

func TestPagerEvictionWritesBack(t *testing.T) {
	pg, err := OpenPager(tempPath(t, "p.db"), 4)
	if err != nil {
		t.Fatal(err)
	}
	defer pg.Close()
	// Write 16 pages through a 4-page cache.
	for i := 0; i < 16; i++ {
		p, err := pg.Allocate()
		if err != nil {
			t.Fatal(err)
		}
		p.Data[0] = byte(i)
		p.MarkDirty()
		pg.Unpin(p)
	}
	for i := 0; i < 16; i++ {
		p, err := pg.Get(PageID(i))
		if err != nil {
			t.Fatal(err)
		}
		if p.Data[0] != byte(i) {
			t.Errorf("page %d data = %d", i, p.Data[0])
		}
		pg.Unpin(p)
	}
	reads, writes, hits, misses := pg.Stats()
	if writes == 0 || reads == 0 {
		t.Errorf("expected physical I/O through small cache: r=%d w=%d h=%d m=%d", reads, writes, hits, misses)
	}
}

func TestPagerPoolExhaustion(t *testing.T) {
	pg, err := OpenPager(tempPath(t, "p.db"), 2)
	if err != nil {
		t.Fatal(err)
	}
	defer pg.Close()
	a, _ := pg.Allocate()
	b, _ := pg.Allocate()
	if _, err := pg.Allocate(); err == nil {
		t.Error("allocation with all pages pinned succeeded")
	}
	pg.Unpin(a)
	if _, err := pg.Allocate(); err != nil {
		t.Errorf("allocation after unpin failed: %v", err)
	}
	pg.Unpin(b)
}

func TestPagerUnpinPanicsWhenNotPinned(t *testing.T) {
	pg, err := OpenPager(tempPath(t, "p.db"), 4)
	if err != nil {
		t.Fatal(err)
	}
	defer pg.Close()
	p, _ := pg.Allocate()
	pg.Unpin(p)
	defer func() {
		if recover() == nil {
			t.Error("double unpin did not panic")
		}
	}()
	pg.Unpin(p)
}

func TestHeapInsertGetScan(t *testing.T) {
	h, err := OpenHeap(tempPath(t, "h.db"), 16)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	var rids []RID
	for i := 0; i < 1000; i++ {
		rid, err := h.Insert([]byte(fmt.Sprintf("record-%04d", i)))
		if err != nil {
			t.Fatal(err)
		}
		rids = append(rids, rid)
	}
	if h.Count() != 1000 {
		t.Errorf("Count = %d", h.Count())
	}
	for i, rid := range rids {
		rec, err := h.Get(rid)
		if err != nil {
			t.Fatal(err)
		}
		if string(rec) != fmt.Sprintf("record-%04d", i) {
			t.Errorf("Get(%v) = %q", rid, rec)
		}
	}
	seen := 0
	err = h.Scan(func(rid RID, rec []byte) error {
		seen++
		return nil
	})
	if err != nil || seen != 1000 {
		t.Errorf("Scan saw %d records, err %v", seen, err)
	}
}

func TestHeapPersistence(t *testing.T) {
	path := tempPath(t, "h.db")
	h, err := OpenHeap(path, 16)
	if err != nil {
		t.Fatal(err)
	}
	rid, err := h.Insert([]byte("durable"))
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Close(); err != nil {
		t.Fatal(err)
	}
	h2, err := OpenHeap(path, 16)
	if err != nil {
		t.Fatal(err)
	}
	defer h2.Close()
	if h2.Count() != 1 {
		t.Errorf("reopened count = %d", h2.Count())
	}
	rec, err := h2.Get(rid)
	if err != nil || string(rec) != "durable" {
		t.Errorf("reopened Get = %q, %v", rec, err)
	}
	// Inserts continue after reopen.
	if _, err := h2.Insert([]byte("more")); err != nil {
		t.Fatal(err)
	}
	if h2.Count() != 2 {
		t.Errorf("count after reopen insert = %d", h2.Count())
	}
}

func TestHeapDelete(t *testing.T) {
	h, err := OpenHeap(tempPath(t, "h.db"), 16)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	a, _ := h.Insert([]byte("aaa"))
	b, _ := h.Insert([]byte("bbb"))
	if err := h.Delete(a); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Get(a); err == nil {
		t.Error("Get of deleted record succeeded")
	}
	if err := h.Delete(a); err == nil {
		t.Error("double delete succeeded")
	}
	if h.Count() != 1 {
		t.Errorf("count after delete = %d", h.Count())
	}
	seen := 0
	h.Scan(func(RID, []byte) error { seen++; return nil })
	if seen != 1 {
		t.Errorf("scan after delete saw %d", seen)
	}
	if rec, err := h.Get(b); err != nil || string(rec) != "bbb" {
		t.Errorf("survivor damaged: %q %v", rec, err)
	}
}

func TestHeapRecordTooLarge(t *testing.T) {
	h, err := OpenHeap(tempPath(t, "h.db"), 16)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	if _, err := h.Insert(make([]byte, PageSize)); err == nil {
		t.Error("oversized record accepted")
	}
	// Max-size record fits.
	if _, err := h.Insert(make([]byte, maxHeapRecord)); err != nil {
		t.Errorf("max record rejected: %v", err)
	}
}

func TestHeapScanEarlyStop(t *testing.T) {
	h, err := OpenHeap(tempPath(t, "h.db"), 16)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	for i := 0; i < 10; i++ {
		h.Insert([]byte("x"))
	}
	seen := 0
	err = h.Scan(func(RID, []byte) error {
		seen++
		if seen == 3 {
			return ErrStopScan
		}
		return nil
	})
	if err != nil || seen != 3 {
		t.Errorf("early stop: seen=%d err=%v", seen, err)
	}
}

func TestHeapRejectsWrongMagic(t *testing.T) {
	path := tempPath(t, "b.db")
	bt, err := OpenBTree(path, 16)
	if err != nil {
		t.Fatal(err)
	}
	bt.Close()
	if _, err := OpenHeap(path, 16); err == nil {
		t.Error("heap opened a btree file")
	}
}

func TestRIDPackUnpack(t *testing.T) {
	for _, r := range []RID{{0, 0}, {1, 2}, {123456, 65535}, {0xFFFFFFF0, 7}} {
		if got := UnpackRID(r.Pack()); got != r {
			t.Errorf("pack/unpack %v -> %v", r, got)
		}
	}
}

func TestBTreeInsertLookupSmall(t *testing.T) {
	bt, err := OpenBTree(tempPath(t, "b.db"), 64)
	if err != nil {
		t.Fatal(err)
	}
	defer bt.Close()
	for i := uint64(0); i < 100; i++ {
		if err := bt.Insert(i*10, i); err != nil {
			t.Fatal(err)
		}
	}
	if bt.Count() != 100 {
		t.Errorf("Count = %d", bt.Count())
	}
	vals, err := bt.Lookup(50)
	if err != nil || len(vals) != 1 || vals[0] != 5 {
		t.Errorf("Lookup(50) = %v, %v", vals, err)
	}
	if vals, _ := bt.Lookup(55); len(vals) != 0 {
		t.Errorf("Lookup(miss) = %v", vals)
	}
}

func TestBTreeDuplicateKeys(t *testing.T) {
	bt, err := OpenBTree(tempPath(t, "b.db"), 64)
	if err != nil {
		t.Fatal(err)
	}
	defer bt.Close()
	for v := uint64(0); v < 50; v++ {
		if err := bt.Insert(42, v); err != nil {
			t.Fatal(err)
		}
	}
	bt.Insert(41, 1)
	bt.Insert(43, 1)
	vals, err := bt.Lookup(42)
	if err != nil || len(vals) != 50 {
		t.Fatalf("Lookup dup = %d vals, %v", len(vals), err)
	}
	if !sort.SliceIsSorted(vals, func(i, j int) bool { return vals[i] < vals[j] }) {
		t.Error("duplicate values not in order")
	}
}

func TestBTreeLargeRandomAgainstOracle(t *testing.T) {
	bt, err := OpenBTree(tempPath(t, "b.db"), 64)
	if err != nil {
		t.Fatal(err)
	}
	defer bt.Close()
	rng := rand.New(rand.NewSource(7))
	oracle := map[uint64][]uint64{}
	const n = 20000
	for i := 0; i < n; i++ {
		k := uint64(rng.Intn(2000)) // force many splits and duplicates
		v := uint64(i)
		oracle[k] = append(oracle[k], v)
		if err := bt.Insert(k, v); err != nil {
			t.Fatal(err)
		}
	}
	if bt.Count() != n {
		t.Errorf("Count = %d, want %d", bt.Count(), n)
	}
	for _, k := range []uint64{0, 1, 7, 999, 1999, 2000} {
		want := append([]uint64(nil), oracle[k]...)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		got, err := bt.Lookup(k)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("Lookup(%d): %d vals, want %d", k, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("Lookup(%d)[%d] = %d, want %d", k, i, got[i], want[i])
			}
		}
	}
	// Full ordered iteration matches the oracle.
	it := bt.Seek(0)
	var prevK, prevV uint64
	first := true
	total := 0
	for {
		k, v, ok := it.Next()
		if !ok {
			break
		}
		if !first && (k < prevK || (k == prevK && v < prevV)) {
			t.Fatalf("iteration out of order: (%d,%d) after (%d,%d)", k, v, prevK, prevV)
		}
		prevK, prevV, first = k, v, false
		total++
	}
	if it.Err() != nil {
		t.Fatal(it.Err())
	}
	if total != n {
		t.Errorf("iterated %d entries, want %d", total, n)
	}
}

func TestBTreePersistence(t *testing.T) {
	path := tempPath(t, "b.db")
	bt, err := OpenBTree(path, 64)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 5000; i++ {
		if err := bt.Insert(i, i*2); err != nil {
			t.Fatal(err)
		}
	}
	if err := bt.Close(); err != nil {
		t.Fatal(err)
	}
	bt2, err := OpenBTree(path, 64)
	if err != nil {
		t.Fatal(err)
	}
	defer bt2.Close()
	if bt2.Count() != 5000 {
		t.Errorf("reopened count = %d", bt2.Count())
	}
	vals, err := bt2.Lookup(4321)
	if err != nil || len(vals) != 1 || vals[0] != 8642 {
		t.Errorf("reopened lookup = %v, %v", vals, err)
	}
}

func TestBTreeRange(t *testing.T) {
	bt, err := OpenBTree(tempPath(t, "b.db"), 64)
	if err != nil {
		t.Fatal(err)
	}
	defer bt.Close()
	for i := uint64(0); i < 1000; i++ {
		bt.Insert(i, i)
	}
	var got []uint64
	err = bt.Range(100, 110, func(k, v uint64) error {
		got = append(got, k)
		return nil
	})
	if err != nil || len(got) != 11 || got[0] != 100 || got[10] != 110 {
		t.Errorf("Range = %v, %v", got, err)
	}
	// Early stop.
	count := 0
	bt.Range(0, 999, func(k, v uint64) error {
		count++
		if count == 5 {
			return ErrStopScan
		}
		return nil
	})
	if count != 5 {
		t.Errorf("range early stop count = %d", count)
	}
}

func TestBTreeSeekMidLeaf(t *testing.T) {
	bt, err := OpenBTree(tempPath(t, "b.db"), 64)
	if err != nil {
		t.Fatal(err)
	}
	defer bt.Close()
	for i := uint64(0); i < 100; i += 2 {
		bt.Insert(i, i)
	}
	// Seek to an absent odd key lands on the next even key.
	it := bt.Seek(51)
	k, _, ok := it.Next()
	if !ok || k != 52 {
		t.Errorf("Seek(51) -> %d, %v", k, ok)
	}
}

func TestBTreeRejectsWrongMagic(t *testing.T) {
	path := tempPath(t, "h.db")
	h, err := OpenHeap(path, 16)
	if err != nil {
		t.Fatal(err)
	}
	h.Close()
	if _, err := OpenBTree(path, 16); err == nil {
		t.Error("btree opened a heap file")
	}
}

func TestBTreeDuplicateRunsStraddlingSplits(t *testing.T) {
	// Regression: with hundreds of duplicates per key, runs of equal
	// keys straddle leaf splits; Seek must descend to the LEFT of a
	// separator equal to the key or Lookup silently loses entries.
	bt, err := OpenBTree(tempPath(t, "b.db"), 64)
	if err != nil {
		t.Fatal(err)
	}
	defer bt.Close()
	const keys = 40
	const dups = 300 // > leaf capacity to force straddling
	for v := uint64(0); v < dups; v++ {
		for k := uint64(0); k < keys; k++ {
			if err := bt.Insert(k*7, k*1000+v); err != nil {
				t.Fatal(err)
			}
		}
	}
	for k := uint64(0); k < keys; k++ {
		vals, err := bt.Lookup(k * 7)
		if err != nil {
			t.Fatal(err)
		}
		if len(vals) != dups {
			t.Fatalf("Lookup(%d) returned %d of %d duplicates", k*7, len(vals), dups)
		}
		for i, v := range vals {
			if v != k*1000+uint64(i) {
				t.Fatalf("Lookup(%d)[%d] = %d, want %d", k*7, i, v, k*1000+uint64(i))
			}
		}
	}
}

func TestQuickHeapOracle(t *testing.T) {
	// Randomized insert/delete/get against a map oracle.
	h, err := OpenHeap(tempPath(t, "h.db"), 32)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	rng := rand.New(rand.NewSource(11))
	oracle := map[RID]string{}
	var live []RID
	for op := 0; op < 5000; op++ {
		switch {
		case len(live) == 0 || rng.Intn(3) > 0:
			payload := fmt.Sprintf("payload-%d-%d", op, rng.Intn(1000))
			rid, err := h.Insert([]byte(payload))
			if err != nil {
				t.Fatal(err)
			}
			oracle[rid] = payload
			live = append(live, rid)
		case rng.Intn(2) == 0:
			i := rng.Intn(len(live))
			rid := live[i]
			if err := h.Delete(rid); err != nil {
				t.Fatal(err)
			}
			delete(oracle, rid)
			live = append(live[:i], live[i+1:]...)
		default:
			i := rng.Intn(len(live))
			rid := live[i]
			rec, err := h.Get(rid)
			if err != nil || string(rec) != oracle[rid] {
				t.Fatalf("Get(%v) = %q, %v; oracle %q", rid, rec, err, oracle[rid])
			}
		}
	}
	if int(h.Count()) != len(oracle) {
		t.Errorf("Count = %d, oracle has %d", h.Count(), len(oracle))
	}
	seen := map[RID]bool{}
	err = h.Scan(func(rid RID, rec []byte) error {
		want, ok := oracle[rid]
		if !ok {
			return fmt.Errorf("scan surfaced deleted rid %v", rid)
		}
		if string(rec) != want {
			return fmt.Errorf("scan payload mismatch at %v", rid)
		}
		seen[rid] = true
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != len(oracle) {
		t.Errorf("scan saw %d records, oracle has %d", len(seen), len(oracle))
	}
}
