package ttp

import (
	"errors"
	"testing"

	"lexequal/internal/phoneme"
	"lexequal/internal/script"
)

func convert(t *testing.T, lang script.Language, text string) phoneme.String {
	t.Helper()
	out, err := Default().Convert(text, lang)
	if err != nil {
		t.Fatalf("Convert(%q, %v): %v", text, lang, err)
	}
	return out
}

func expectIPA(t *testing.T, lang script.Language, cases map[string]string) {
	t.Helper()
	for text, want := range cases {
		if got := convert(t, lang, text).IPA(); got != want {
			t.Errorf("%v %q -> %q, want %q", lang, text, got, want)
		}
	}
}

func TestRegistryBasics(t *testing.T) {
	r := Default()
	langs := r.Languages()
	if len(langs) != 6 {
		t.Fatalf("Default registry has %d languages, want 6: %v", len(langs), langs)
	}
	for _, l := range []script.Language{script.English, script.Hindi, script.Tamil, script.Greek, script.Spanish, script.French} {
		if !r.Has(l) {
			t.Errorf("registry missing %v", l)
		}
		c, ok := r.Get(l)
		if !ok || c.Language() != l {
			t.Errorf("Get(%v) = %v, %v", l, c, ok)
		}
	}
}

func TestRegistryNoResource(t *testing.T) {
	r := Default()
	_, err := r.Convert("بهنسي", script.Arabic)
	var nre *NoResourceError
	if !errors.As(err, &nre) {
		t.Fatalf("expected NoResourceError, got %v", err)
	}
	if nre.Lang != script.Arabic {
		t.Errorf("NoResourceError.Lang = %v", nre.Lang)
	}
	if nre.Error() == "" {
		t.Error("empty error message")
	}
}

func TestNilRegistry(t *testing.T) {
	var r *Registry
	if r.Has(script.English) {
		t.Error("nil registry claims a language")
	}
	if langs := r.Languages(); langs != nil {
		t.Errorf("nil registry languages = %v", langs)
	}
}

func TestRegistryReplace(t *testing.T) {
	r := NewRegistry()
	r.Register(NewEnglish())
	r.Register(NewEnglish()) // replace is fine
	if got := len(r.Languages()); got != 1 {
		t.Errorf("replace produced %d entries", got)
	}
}

func TestEnglishNames(t *testing.T) {
	expectIPA(t, script.English, map[string]string{
		"Nehru":      "neːru",
		"Nero":       "nɛroː",
		"Gita":       "ɡɪtə",
		"Smith":      "smɪθ",
		"Khan":       "kʰɑn",
		"Singh":      "sɪŋ",
		"Kathy":      "kaθi",
		"Cathy":      "kaθi", // the paper's q-gram motivation pair
		"Mike":       "maɪk",
		"Rose":       "roːz",
		"University": "junɪvərsɪti",
		"Johnson":    "dʒɒnsən",
	})
}

func TestEnglishSpellingVariantsConverge(t *testing.T) {
	// Phonetic matching's raison d'être: distinct spellings, same sound.
	pairs := [][2]string{
		{"Kathy", "Cathy"},
		{"Philip", "Filip"},
		{"Kristina", "Christina"},
	}
	for _, p := range pairs {
		a, b := convert(t, script.English, p[0]), convert(t, script.English, p[1])
		if !a.Equal(b) {
			t.Errorf("%s=%s but %s=%s", p[0], a, p[1], b)
		}
	}
}

func TestEnglishIndicRomanizations(t *testing.T) {
	// kh/gh/bh/dh and doubled vowels are live phonemes in romanized
	// Indic names; the converter must not mangle them.
	cases := map[string][]string{
		"Khan":   {"kʰ"},
		"Bharat": {"bʱ"},
		"Dhoni":  {"dʱ"},
		"Saad":   {"ɑː"},
		"Meena":  {"iː"},
	}
	for name, want := range cases {
		got := convert(t, script.English, name).IPA()
		for _, w := range want {
			if !containsIPA(got, w) {
				t.Errorf("%s -> %s lacks %s", name, got, w)
			}
		}
	}
}

func containsIPA(haystack, needle string) bool {
	return len(needle) > 0 && len(haystack) >= len(needle) && (haystack == needle || indexOf(haystack, needle) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

func TestEnglishCaseAndDiacriticsFolded(t *testing.T) {
	a := convert(t, script.English, "RENE")
	b := convert(t, script.English, "René")
	c := convert(t, script.English, "rene")
	if !a.Equal(b) || !b.Equal(c) {
		t.Errorf("case/diacritic folding broken: %s %s %s", a, b, c)
	}
}

func TestEnglishMultiWord(t *testing.T) {
	got := convert(t, script.English, "New Delhi")
	a := convert(t, script.English, "New")
	b := convert(t, script.English, "Delhi")
	if !got.Equal(append(a.Clone(), b...)) {
		t.Errorf("multi-word conversion %s != %s + %s", got, a, b)
	}
}

func TestEnglishRejectsNonLatin(t *testing.T) {
	if _, err := Default().Convert("नेहरु", script.English); err == nil {
		t.Error("English converter transcribed Devanagari")
	}
	if _, err := Default().Convert("", script.English); err != nil {
		t.Errorf("empty input should be empty output, got error %v", err)
	}
}

func TestHindiWords(t *testing.T) {
	expectIPA(t, script.Hindi, map[string]string{
		"राम":      "raːm",          // final schwa deleted
		"नेहरु":    "neːɦrʊ",        // medial schwa deleted (VCəCV)
		"जवाहरलाल": "dʒəʋaːɦərlaːl", // alternating schwas kept/deleted
		"सीता":     "siːt̪aː",
		"कमल":      "kəməl", // final schwa deleted, medial retained
		"भारत":     "bʱaːrət̪",
		"कृष्ण":    "krɪʂɳ", // viramas form clusters
	})
}

func TestHindiNukta(t *testing.T) {
	// Precomposed (U+095B) and combining-nukta (U+091C U+093C) forms
	// must agree; built from escapes so source encoding cannot lie.
	pre := convert(t, script.Hindi, "\u095B\u093E\u0915\u093F\u0930")
	comb := convert(t, script.Hindi, "\u091C\u093C\u093E\u0915\u093F\u0930")
	if !pre.Equal(comb) {
		t.Errorf("nukta normalization: %s vs %s", pre, comb)
	}
	if pre[0] != phoneme.MustLookup("z") {
		t.Errorf("precomposed za -> %s, want z first", pre)
	}
}

func TestHindiAnusvara(t *testing.T) {
	cases := map[string]string{
		"गंगा": "ɡəŋɡaː",   // velar context -> ŋ
		"चंपा": "tʃəmpaː",  // labial context -> m
		"चंदन": "tʃənd̪ən", // dental/alveolar -> n
	}
	expectIPA(t, script.Hindi, cases)
}

func TestHindiVisarga(t *testing.T) {
	got := convert(t, script.Hindi, "दुःख")
	if got.IPA() != "d̪ʊɦkʰ" {
		t.Errorf("दुःख -> %s, want d̪ʊɦkʰ", got)
	}
}

func TestHindiRejectsLatin(t *testing.T) {
	if _, err := Default().Convert("Nehru", script.Hindi); err == nil {
		t.Error("Hindi converter transcribed Latin text")
	}
}

func TestTamilWords(t *testing.T) {
	expectIPA(t, script.Tamil, map[string]string{
		"நேரு":   "neːɾu",
		"ராம்":   "ɾaːm",
		"கமலா":   "kamalaː",
		"குமார்": "kumaːɾ",
	})
}

func TestTamilStopVoicing(t *testing.T) {
	// Word-initial: voiceless.
	if got := convert(t, script.Tamil, "கால்"); got[0] != phoneme.MustLookup("k") {
		t.Errorf("initial க -> %s, want k", got[0])
	}
	// Intervocalic: voiced.
	got := convert(t, script.Tamil, "மகன்") // makan -> maɡan
	if got.IPA() != "maɡan" {
		t.Errorf("மகன் -> %s, want maɡan", got)
	}
	// Post-nasal: voiced.
	got = convert(t, script.Tamil, "தங்கம்") // thangam
	if got.IPA() != "t̪aŋɡam" {
		t.Errorf("தங்கம் -> %s, want t̪aŋɡam", got)
	}
	// Geminate: single voiceless.
	got = convert(t, script.Tamil, "பக்கம்") // pakkam
	if got.IPA() != "pakam" {
		t.Errorf("பக்கம் -> %s, want pakam (degeminated)", got)
	}
	// Intervocalic ச is [s].
	got = convert(t, script.Tamil, "பசு") // pasu
	if got.IPA() != "pasu" {
		t.Errorf("பசு -> %s, want pasu", got)
	}
}

func TestTamilVoicingAmbiguityIsSystematic(t *testing.T) {
	// Gita and Kita collapse in Tamil orthography; reading back yields
	// the same phonemes for both — the paper's central fuzziness source.
	a := convert(t, script.Tamil, "கீதா")
	if a.IPA() != "kiːd̪aː" && a.IPA() != "kiːt̪aː" {
		t.Errorf("கீதா -> %s", a)
	}
}

func TestGreekNames(t *testing.T) {
	expectIPA(t, script.Greek, map[string]string{
		"Νερου":        "nɛru",
		"Κατερινα":     "katɛrina",
		"Παπαδοπουλος": "papaðopulos",
		"Γιαννης":      "jannis",
		"Μπανανα":      "banana", // initial μπ = b
		"Σαμπας":       "sambas", // medial μπ = mb
		"Ευαγγελος":    "ɛvaŋɡɛlos",
		"Τζορτζ":       "dzordz", // George, via τζ
	})
}

func TestGreekSigmaFolding(t *testing.T) {
	a := convert(t, script.Greek, "Παππασ") // medial-form sigma
	b := convert(t, script.Greek, "Παππας") // final-form sigma
	if !a.Equal(b) {
		t.Errorf("final sigma folding: %s vs %s", a, b)
	}
	// Accented vowels fold to their base.
	c := convert(t, script.Greek, "Κατερίνα")
	d := convert(t, script.Greek, "Κατερινα")
	if !c.Equal(d) {
		t.Errorf("tonos folding: %s vs %s", c, d)
	}
}

func TestSpanishNames(t *testing.T) {
	expectIPA(t, script.Spanish, map[string]string{
		"Jesus":     "xesus", // the paper's language-dependent vocalization example
		"José":      "xose",
		"Guillermo": "ɡiʎeɾmo",
		"Niño":      "niɲo",
		"Cervantes": "seɾbantes",
		"Zapata":    "sapata",
		"Hernandez": "eɾnandes", // silent h, seseo z
		"Roberto":   "robeɾto",  // initial trill, medial tap
	})
}

func TestFrenchNames(t *testing.T) {
	expectIPA(t, script.French, map[string]string{
		"René":     "ʁəne",
		"Jean":     "ʒɑ̃",
		"François": "fʁɑ̃swa",
		"Bordeaux": "bɔʁdo",
		"École":    "ekɔl",
		"Camille":  "kamij",
		"Dupont":   "dypɔ̃", // nasal on, silent final t
		"Moreau":   "mɔʁo",
	})
}

func TestFrenchSilentFinals(t *testing.T) {
	for _, name := range []string{"Dupont", "Bernard", "Thomas"} {
		got := convert(t, script.French, name)
		last := got[len(got)-1]
		if last == phoneme.MustLookup("t") || last == phoneme.MustLookup("d") || last == phoneme.MustLookup("s") {
			t.Errorf("%s -> %s retains silent final consonant", name, got)
		}
	}
}

func TestLanguageDependentVocalization(t *testing.T) {
	// §2.1 of the paper: "Jesus" vocalizes differently per language.
	en := convert(t, script.English, "Jesus")
	es := convert(t, script.Spanish, "Jesus")
	if en.Equal(es) {
		t.Error("English and Spanish vocalizations of Jesus should differ")
	}
	if es[0] != phoneme.MustLookup("x") {
		t.Errorf("Spanish Jesus starts with %s, want x", es[0])
	}
	if en[0] != phoneme.MustLookup("dʒ") {
		t.Errorf("English Jesus starts with %s, want dʒ", en[0])
	}
}

func TestConvertersDeterministic(t *testing.T) {
	r := Default()
	for _, c := range []struct {
		lang script.Language
		text string
	}{
		{script.English, "Alexander"},
		{script.Hindi, "जवाहरलाल"},
		{script.Tamil, "ஜவஹர்லால்"},
		{script.Greek, "Αλεξανδρος"},
	} {
		a, err1 := r.Convert(c.text, c.lang)
		b, err2 := r.Convert(c.text, c.lang)
		if err1 != nil || err2 != nil || !a.Equal(b) {
			t.Errorf("nondeterministic conversion for %q", c.text)
		}
	}
}

func TestOutputsContainNoSuprasegmentals(t *testing.T) {
	// Converter output must re-parse cleanly: pure phonemes, no marks.
	r := Default()
	inputs := map[script.Language][]string{
		script.English: {"Elizabeth", "Worcester", "Nkrumah"},
		script.Hindi:   {"श्रीनिवास", "पंडित"},
		script.Tamil:   {"சுப்ரமணியம்"},
		script.Greek:   {"Χαραλαμπος"},
		script.Spanish: {"Velázquez"},
		script.French:  {"Beaumont"},
	}
	for lang, texts := range inputs {
		for _, text := range texts {
			out, err := r.Convert(text, lang)
			if err != nil {
				t.Errorf("%v %q: %v", lang, text, err)
				continue
			}
			if _, err := phoneme.Parse(out.IPA()); err != nil {
				t.Errorf("%v %q output %s does not re-parse: %v", lang, text, out, err)
			}
		}
	}
}
