package ttp

import (
	"testing"

	"lexequal/internal/script"
)

// FuzzTTPConvert asserts the text-to-phoneme converters never panic:
// any input — invalid UTF-8, mixed scripts, symbols, the wrong script
// for the language — must produce a phoneme string, an ordinary error,
// or the NORESOURCE error. langIdx selects which converter (including
// an unregistered language) handles the text.
func FuzzTTPConvert(f *testing.F) {
	langs := []script.Language{
		script.English, script.Hindi, script.Tamil,
		script.Greek, script.Spanish, script.French,
		script.Arabic, // NORESOURCE in the default registry
	}
	seeds := []struct {
		text string
		idx  byte
	}{
		{"Nehru", 0},
		{"नेहरु", 1},
		{"நேரு", 2},
		{"Σαρρη", 3},
		{"Muñoz", 4},
		{"Descartes", 5},
		{"بهنسي", 6},
		{"", 0},
		{"नेहरुNehruநேரு", 1},        // mixed scripts
		{"\xff\xfe\xfd", 2},         // invalid UTF-8
		{"\xe0\xa4", 1},             // truncated Devanagari rune
		{"123 !@#\x00\t", 0},        // symbols, NUL, control chars
		{"्््", 1},   // bare Devanagari viramas
		{"்", 2},               // bare Tamil virama
		{"ψ́ͅ", 3},   // stacked Greek diacritics
		{"ñññññ", 4},
		{"eaux", 5},
	}
	for _, s := range seeds {
		f.Add(s.text, s.idx)
	}
	reg := Default()
	f.Fuzz(func(t *testing.T, text string, langIdx byte) {
		lang := langs[int(langIdx)%len(langs)]
		p, err := reg.Convert(text, lang)
		if err != nil {
			return // NORESOURCE or a conversion error: fine
		}
		// A successful conversion must yield a well-formed phoneme
		// string (rendering it must not panic either).
		_ = p.IPA()
	})
}
