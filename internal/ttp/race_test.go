package ttp

import (
	"sync"
	"testing"

	"lexequal/internal/script"
)

// TestRegistryConcurrent exercises the registry's reader/writer paths
// from concurrent goroutines: Register replaces a converter while other
// goroutines convert, probe, and list. The test is meaningful under
// `make race`; it guards the RWMutex discipline in Registry.
func TestRegistryConcurrent(t *testing.T) {
	r := Default()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				r.Register(NewEnglish())
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if !r.Has(script.English) {
					t.Error("english converter missing mid-run")
					return
				}
				if _, err := r.Convert("sample", script.English); err != nil {
					t.Errorf("Convert: %v", err)
					return
				}
				if langs := r.Languages(); len(langs) == 0 {
					t.Error("Languages() returned none")
					return
				}
			}
		}()
	}
	wg.Wait()
}
