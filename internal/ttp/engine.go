package ttp

import (
	"fmt"
	"strings"

	"lexequal/internal/phoneme"
	"lexequal/internal/script"
)

// This file implements a contextual letter-to-sound rule engine in the
// tradition of the NRL text-to-speech rules (Elovitz et al., 1976): each
// rule rewrites a grapheme sequence to phonemes when its left and right
// contexts match. The English, Spanish, French and Greek converters are
// rule tables for this engine.

// classes defines the character classes a rule table may reference.
// Each engine instance (language) supplies its own sets.
type classes struct {
	vowel     map[rune]bool // '#' one-or-more, and the letter class for word splitting
	consonant map[rune]bool // ':' zero-or-more, '^' exactly-one
	voiced    map[rune]bool // '.' one voiced consonant
	sibilant  map[rune]bool // '&' one sibilant
	coronal   map[rune]bool // '@' one coronal-ish consonant
	front     map[rune]bool // '+' one front vowel
}

func (c *classes) isLetter(r rune) bool { return c.vowel[r] || c.consonant[r] }

// rule is one contextual rewrite: when match occurs with left/right
// contexts satisfied, emit out and consume match.
//
// Context pattern syntax (classic NRL notation):
//
//	_  word boundary
//	#  one or more vowels
//	:  zero or more consonants
//	^  exactly one consonant
//	.  one voiced consonant
//	&  one sibilant
//	@  one coronal consonant
//	+  one front vowel (e, i, y)
//	%  one of the suffixes er, e, es, ed, ing, ely
//
// Any other rune matches itself.
type rule struct {
	left  string
	match string
	right string
	out   string
}

type compiledRule struct {
	left  []rune
	match []rune
	right []rune
	out   phoneme.String
}

// ruleEngine applies an ordered rule table to words.
type ruleEngine struct {
	lang  script.Language
	cls   *classes
	rules map[rune][]compiledRule // keyed by first rune of match
	// prep normalizes the input (case folding, final-sigma, etc.).
	prep func(string) string
}

func newRuleEngine(lang script.Language, cls *classes, prep func(string) string, table []rule) *ruleEngine {
	e := &ruleEngine{
		lang:  lang,
		cls:   cls,
		rules: make(map[rune][]compiledRule),
		prep:  prep,
	}
	for _, r := range table {
		if r.match == "" {
			panic(fmt.Sprintf("ttp: %s rule with empty match", lang))
		}
		cr := compiledRule{
			left:  []rune(r.left),
			match: []rune(r.match),
			right: []rune(r.right),
			out:   phoneme.MustParse(r.out),
		}
		k := cr.match[0]
		e.rules[k] = append(e.rules[k], cr)
	}
	return e
}

// Language implements Converter.
func (e *ruleEngine) Language() script.Language { return e.lang }

// Convert implements Converter: it splits text into words of the
// engine's alphabet and transcribes each by first-matching-rule rewrite.
func (e *ruleEngine) Convert(text string) (phoneme.String, error) {
	norm := e.prep(text)
	var out phoneme.String
	word := make([]rune, 0, 32)
	sawLetter := false
	flush := func() {
		if len(word) > 0 {
			out = append(out, e.convertWord(word)...)
			word = word[:0]
		}
	}
	for _, r := range norm {
		if e.cls.isLetter(r) {
			word = append(word, r)
			sawLetter = true
		} else {
			flush()
		}
	}
	flush()
	if !sawLetter && strings.TrimSpace(text) != "" {
		return nil, fmt.Errorf("ttp: %s converter: no transcribable characters in %q", e.lang, text)
	}
	return out, nil
}

func (e *ruleEngine) convertWord(w []rune) phoneme.String {
	var out phoneme.String
	pos := 0
	for pos < len(w) {
		advanced := false
		for _, r := range e.rules[w[pos]] {
			if !literalAt(w, pos, r.match) {
				continue
			}
			if !e.matchLeft(w[:pos], r.left) {
				continue
			}
			if !e.matchRight(w[pos+len(r.match):], r.right) {
				continue
			}
			out = append(out, r.out...)
			pos += len(r.match)
			advanced = true
			break
		}
		if !advanced {
			pos++ // no rule: letter is silent/unknown
		}
	}
	return out
}

func literalAt(w []rune, pos int, lit []rune) bool {
	if pos+len(lit) > len(w) {
		return false
	}
	for i, r := range lit {
		if w[pos+i] != r {
			return false
		}
	}
	return true
}

// matchRight matches pat against the text following the consumed
// graphemes, left to right, with backtracking for the */+-style classes.
func (e *ruleEngine) matchRight(text []rune, pat []rune) bool {
	if len(pat) == 0 {
		return true
	}
	switch pat[0] {
	case '_':
		return len(text) == 0 && e.matchRight(text, pat[1:])
	case '#':
		n := 0
		for n < len(text) && e.cls.vowel[text[n]] {
			n++
		}
		for j := n; j >= 1; j-- {
			if e.matchRight(text[j:], pat[1:]) {
				return true
			}
		}
		return false
	case ':':
		n := 0
		for n < len(text) && e.cls.consonant[text[n]] {
			n++
		}
		for j := n; j >= 0; j-- {
			if e.matchRight(text[j:], pat[1:]) {
				return true
			}
		}
		return false
	case '^':
		return len(text) > 0 && e.cls.consonant[text[0]] && e.matchRight(text[1:], pat[1:])
	case '.':
		return len(text) > 0 && e.cls.voiced[text[0]] && e.matchRight(text[1:], pat[1:])
	case '&':
		return len(text) > 0 && e.cls.sibilant[text[0]] && e.matchRight(text[1:], pat[1:])
	case '@':
		return len(text) > 0 && e.cls.coronal[text[0]] && e.matchRight(text[1:], pat[1:])
	case '+':
		return len(text) > 0 && e.cls.front[text[0]] && e.matchRight(text[1:], pat[1:])
	case '%':
		for _, suf := range suffixes {
			if hasPrefix(text, suf) && e.matchRight(text[len(suf):], pat[1:]) {
				return true
			}
		}
		return false
	default:
		return len(text) > 0 && text[0] == pat[0] && e.matchRight(text[1:], pat[1:])
	}
}

// matchLeft matches pat against the text preceding the consumed
// graphemes; both are processed right to left.
func (e *ruleEngine) matchLeft(text []rune, pat []rune) bool {
	if len(pat) == 0 {
		return true
	}
	last := pat[len(pat)-1]
	rest := pat[:len(pat)-1]
	switch last {
	case '_':
		return len(text) == 0 && e.matchLeft(text, rest)
	case '#':
		n := 0
		for n < len(text) && e.cls.vowel[text[len(text)-1-n]] {
			n++
		}
		for j := n; j >= 1; j-- {
			if e.matchLeft(text[:len(text)-j], rest) {
				return true
			}
		}
		return false
	case ':':
		n := 0
		for n < len(text) && e.cls.consonant[text[len(text)-1-n]] {
			n++
		}
		for j := n; j >= 0; j-- {
			if e.matchLeft(text[:len(text)-j], rest) {
				return true
			}
		}
		return false
	case '^':
		return len(text) > 0 && e.cls.consonant[text[len(text)-1]] && e.matchLeft(text[:len(text)-1], rest)
	case '.':
		return len(text) > 0 && e.cls.voiced[text[len(text)-1]] && e.matchLeft(text[:len(text)-1], rest)
	case '&':
		return len(text) > 0 && e.cls.sibilant[text[len(text)-1]] && e.matchLeft(text[:len(text)-1], rest)
	case '@':
		return len(text) > 0 && e.cls.coronal[text[len(text)-1]] && e.matchLeft(text[:len(text)-1], rest)
	case '+':
		return len(text) > 0 && e.cls.front[text[len(text)-1]] && e.matchLeft(text[:len(text)-1], rest)
	case '%':
		for _, suf := range suffixes {
			if hasSuffix(text, suf) && e.matchLeft(text[:len(text)-len(suf)], rest) {
				return true
			}
		}
		return false
	default:
		return len(text) > 0 && text[len(text)-1] == last && e.matchLeft(text[:len(text)-1], rest)
	}
}

// suffixes recognized by the '%' class, longest first.
var suffixes = [][]rune{
	[]rune("ing"), []rune("ely"), []rune("ed"), []rune("es"), []rune("er"), []rune("e"),
}

func hasPrefix(text, pre []rune) bool {
	if len(text) < len(pre) {
		return false
	}
	for i := range pre {
		if text[i] != pre[i] {
			return false
		}
	}
	return true
}

func hasSuffix(text, suf []rune) bool {
	if len(text) < len(suf) {
		return false
	}
	off := len(text) - len(suf)
	for i := range suf {
		if text[off+i] != suf[i] {
			return false
		}
	}
	return true
}

// set builds a rune set from a string.
func set(s string) map[rune]bool {
	m := make(map[rune]bool, len(s))
	for _, r := range s {
		m[r] = true
	}
	return m
}
