package ttp

import (
	"fmt"

	"lexequal/internal/phoneme"
	"lexequal/internal/script"
)

// NewHindi returns the Hindi Text-To-Phoneme converter. Devanagari is a
// phonetically-spelled abugida, so conversion is a direct decomposition
// of the orthography — consonant letters carry an inherent schwa unless
// a dependent vowel sign (matra) or virama follows — plus Hindi's one
// nontrivial phonological process, schwa deletion: the inherent schwa is
// dropped word-finally and in the medial VC_CV context. This mirrors the
// behaviour of the Dhvani converter the paper used.
func NewHindi() Converter {
	return &hindiConverter{}
}

type hindiConverter struct{}

// Language implements Converter.
func (h *hindiConverter) Language() script.Language { return script.Hindi }

// hindiSegment is one phoneme plus the bookkeeping needed by the schwa
// deletion pass.
type hindiSegment struct {
	p        phoneme.Phoneme
	inherent bool // an inherent schwa (deletable); explicit vowels are not
}

var (
	devaConsonants map[rune]phoneme.String
	devaVowels     map[rune]phoneme.String // independent vowel letters
	devaMatras     map[rune]phoneme.String // dependent vowel signs
	devaNukta      map[rune]rune           // base letter -> nukta variant
)

func init() {
	c := func(m map[string]string) map[rune]phoneme.String {
		out := make(map[rune]phoneme.String, len(m))
		for k, v := range m {
			rs := []rune(k)
			if len(rs) != 1 {
				panic("ttp: devanagari table key must be one rune: " + k)
			}
			out[rs[0]] = phoneme.MustParse(v)
		}
		return out
	}
	devaConsonants = c(map[string]string{
		"क": "k", "ख": "kʰ", "ग": "ɡ", "घ": "ɡʱ", "ङ": "ŋ",
		"च": "tʃ", "छ": "tʃʰ", "ज": "dʒ", "झ": "dʒʱ", "ञ": "ɲ",
		"ट": "ʈ", "ठ": "ʈʰ", "ड": "ɖ", "ढ": "ɖʱ", "ण": "ɳ",
		"त": "t̪", "थ": "tʰ", "द": "d̪", "ध": "dʱ", "न": "n",
		"प": "p", "फ": "pʰ", "ब": "b", "भ": "bʱ", "म": "m",
		"य": "j", "र": "r", "ल": "l", "व": "ʋ", "ळ": "ɭ",
		"श": "ʃ", "ष": "ʂ", "स": "s", "ह": "ɦ",
		// Nukta (Perso-Arabic loan) letters, precomposed forms
		// (U+0958..U+095E; source text in decomposed form is folded by
		// normalizeNukta below).
		"क़": "q", "ख़": "x", "ग़": "ɣ", "ज़": "z",
		"ड़": "ɽ", "ढ़": "ɽ", "फ़": "f",
	})
	devaVowels = c(map[string]string{
		"अ": "ə", "आ": "aː", "इ": "ɪ", "ई": "iː", "उ": "ʊ", "ऊ": "uː",
		"ऋ": "rɪ", "ए": "eː", "ऐ": "ɛː", "ओ": "oː", "औ": "ɔː", "ऑ": "ɒ", "ऍ": "æ",
	})
	devaMatras = c(map[string]string{
		"ा": "aː", "ि": "ɪ", "ी": "iː", "ु": "ʊ", "ू": "uː",
		"ृ": "rɪ", "े": "eː", "ै": "ɛː", "ो": "oː", "ौ": "ɔː", "ॉ": "ɒ", "ॅ": "æ",
	})
	// Combining-nukta normalization: base + U+093C -> precomposed.
	devaNukta = map[rune]rune{
		'क': 'क़', 'ख': 'ख़', 'ग': 'ग़', 'ज': 'ज़',
		'ड': 'ड़', 'ढ': 'ढ़', 'फ': 'फ़',
	}
}

const (
	virama      = '्'
	anusvara    = 'ं'
	candrabindu = 'ँ'
	visarga     = 'ः'
	nuktaSign   = '़'
)

// Convert implements Converter.
func (h *hindiConverter) Convert(text string) (phoneme.String, error) {
	runes := normalizeNukta([]rune(text))
	var out phoneme.String
	word := make([]rune, 0, 32)
	sawLetter := false
	flush := func() {
		if len(word) > 0 {
			out = append(out, convertHindiWord(word)...)
			word = word[:0]
		}
	}
	for _, r := range runes {
		if isDevaRune(r) {
			word = append(word, r)
			sawLetter = true
		} else {
			flush()
		}
	}
	flush()
	if !sawLetter {
		return nil, fmt.Errorf("ttp: hindi converter: no devanagari characters in %q", text)
	}
	return out, nil
}

func isDevaRune(r rune) bool {
	if _, ok := devaConsonants[r]; ok {
		return true
	}
	if _, ok := devaVowels[r]; ok {
		return true
	}
	if _, ok := devaMatras[r]; ok {
		return true
	}
	switch r {
	case virama, anusvara, candrabindu, visarga, nuktaSign:
		return true
	}
	return r >= 0x0900 && r <= 0x097F
}

// normalizeNukta folds base-letter + combining-nukta sequences into the
// precomposed nukta letters the consonant table uses.
func normalizeNukta(rs []rune) []rune {
	out := rs[:0:0]
	for i := 0; i < len(rs); i++ {
		if i+1 < len(rs) && rs[i+1] == nuktaSign {
			if folded, ok := devaNukta[rs[i]]; ok {
				out = append(out, folded)
				i++
				continue
			}
		}
		out = append(out, rs[i])
	}
	return out
}

// convertHindiWord decomposes one Devanagari word and applies schwa
// deletion.
func convertHindiWord(w []rune) phoneme.String {
	var segs []hindiSegment
	appendPh := func(ps phoneme.String, inherent bool) {
		for _, p := range ps {
			segs = append(segs, hindiSegment{p: p, inherent: inherent && p == phoneme.Schwa})
		}
	}
	pendingCons := phoneme.String(nil) // consonant awaiting vowel decision
	flushInherent := func() {
		if pendingCons != nil {
			appendPh(pendingCons, false)
			appendPh(phoneme.String{phoneme.Schwa}, true)
			pendingCons = nil
		}
	}
	for i := 0; i < len(w); i++ {
		r := w[i]
		if ps, ok := devaConsonants[r]; ok {
			flushInherent()
			pendingCons = ps
			continue
		}
		if ps, ok := devaMatras[r]; ok {
			if pendingCons != nil {
				appendPh(pendingCons, false)
				pendingCons = nil
			}
			appendPh(ps, false)
			continue
		}
		if ps, ok := devaVowels[r]; ok {
			flushInherent()
			appendPh(ps, false)
			continue
		}
		switch r {
		case virama:
			// Kill the inherent vowel: consonant joins a cluster.
			if pendingCons != nil {
				appendPh(pendingCons, false)
				pendingCons = nil
			}
		case anusvara, candrabindu:
			flushInherent()
			segs = append(segs, hindiSegment{p: anusvaraPhoneme(w, i)})
		case visarga:
			flushInherent()
			segs = append(segs, hindiSegment{p: phoneme.MustLookup("ɦ")})
		}
	}
	flushInherent()
	segs = deleteSchwas(segs)
	out := make(phoneme.String, len(segs))
	for i, s := range segs {
		out[i] = s.p
	}
	return out
}

// anusvaraPhoneme resolves ं to the nasal homorganic with the following
// consonant (ŋ before velars, m before labials, n otherwise).
func anusvaraPhoneme(w []rune, i int) phoneme.Phoneme {
	for j := i + 1; j < len(w); j++ {
		if ps, ok := devaConsonants[w[j]]; ok && len(ps) > 0 {
			switch ps[0].Features().Place {
			case phoneme.Velar:
				return phoneme.MustLookup("ŋ")
			case phoneme.Bilabial, phoneme.Labiodental:
				return phoneme.MustLookup("m")
			case phoneme.Retroflex:
				return phoneme.MustLookup("ɳ")
			case phoneme.Palatal, phoneme.PostAlveolar:
				return phoneme.MustLookup("ɲ")
			}
			return phoneme.MustLookup("n")
		}
	}
	return phoneme.MustLookup("n")
}

// deleteSchwas applies Hindi schwa deletion: the word-final inherent
// schwa is always dropped; a medial inherent schwa is dropped in the
// V C _ C V context (and deletions do not cascade) and in hiatus
// (V C _ V — a schwa directly before another vowel elides, as when a
// consonant-final name runs into a vowel-initial one).
func deleteSchwas(segs []hindiSegment) []hindiSegment {
	n := len(segs)
	if n == 0 {
		return segs
	}
	deleted := make([]bool, n)
	// Final inherent schwa (राम -> raːm, not raːmə).
	if segs[n-1].inherent && n > 1 {
		deleted[n-1] = true
	}
	isV := func(i int) bool {
		return i >= 0 && i < n && !deleted[i] && segs[i].p.IsVowel()
	}
	isC := func(i int) bool {
		return i >= 0 && i < n && !deleted[i] && segs[i].p.IsConsonant()
	}
	// Medial pass, right to left per the standard algorithm.
	for i := n - 2; i >= 1; i-- {
		if !segs[i].inherent || deleted[i] {
			continue
		}
		if isC(i-1) && isV(i-2) && ((isC(i+1) && isV(i+2)) || isV(i+1)) {
			deleted[i] = true
			i-- // no cascading deletion through the preceding consonant
		}
	}
	out := segs[:0]
	for i, s := range segs {
		if !deleted[i] {
			out = append(out, s)
		}
	}
	return out
}
