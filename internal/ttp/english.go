package ttp

import (
	"strings"

	"lexequal/internal/script"
)

// NewEnglish returns the English Text-To-Phoneme converter: a contextual
// letter-to-sound rule table in the NRL tradition, tuned for the proper-
// name domain of the paper (it understands the common romanizations of
// Indic names — kh/gh/bh/dh aspirates, doubled long vowels — alongside
// ordinary English spelling).
func NewEnglish() Converter {
	return newRuleEngine(script.English, englishClasses, englishPrep, englishRules)
}

var englishClasses = &classes{
	vowel:     set("aeiouy"),
	consonant: set("bcdfghjklmnpqrstvwxz"),
	voiced:    set("bdvgjlmnrwz"),
	sibilant:  set("scgzxj"),
	coronal:   set("tsrdlznj"),
	front:     set("eiy"),
}

// englishPrep lowercases and folds Latin diacritics: the English
// converter reads "René" as "rene" (the paper's é-aware matching is the
// business of the French converter).
func englishPrep(s string) string {
	s = strings.ToLower(s)
	var b strings.Builder
	for _, r := range s {
		if f, ok := latinFold[r]; ok {
			b.WriteRune(f)
		} else {
			b.WriteRune(r)
		}
	}
	return b.String()
}

var latinFold = map[rune]rune{
	'á': 'a', 'à': 'a', 'â': 'a', 'ä': 'a', 'ã': 'a', 'å': 'a', 'ā': 'a',
	'é': 'e', 'è': 'e', 'ê': 'e', 'ë': 'e', 'ē': 'e',
	'í': 'i', 'ì': 'i', 'î': 'i', 'ï': 'i', 'ī': 'i',
	'ó': 'o', 'ò': 'o', 'ô': 'o', 'ö': 'o', 'õ': 'o', 'ō': 'o', 'ő': 'o',
	'ú': 'u', 'ù': 'u', 'û': 'u', 'ü': 'u', 'ū': 'u',
	'ñ': 'n', 'ç': 'c', 'ß': 's', 'ø': 'o', 'æ': 'e', 'œ': 'e',
	'ý': 'y', 'ÿ': 'y',
}

// englishRules is the ordered rule table. Within a letter, more specific
// rules must precede more general ones; the engine fires the first rule
// whose literal and contexts match.
var englishRules = []rule{
	// --- A ---
	{"_", "a", "_", "ə"},
	{"", "aa", "", "ɑː"},
	{"", "ai", "", "eː"},
	{"", "ay", "", "eː"},
	{"", "ao", "", "aʊ"},
	{"", "au", "", "ɔ"},
	{"", "aw", "_", "ɔ"},
	{"", "aw", "^", "ɔ"},
	{"", "alk", "", "ɔk"},
	{"", "ah", "_", "ɑː"},
	{"", "ah", "^", "ɑː"},
	{"", "ar", "_", "ɑr"},
	{"", "ar", "^", "ɑr"},
	{"", "a", "r#", "ɛ"},
	{"", "a", "^e_", "eː"},
	{"", "a", "^%", "eː"},
	{"", "a", "_", "ə"},
	// Open syllable (single consonant then a vowel) and word-final
	// closed syllable: the long/low vowel, as in the unanglicized
	// pronunciation of most proper names (Rama, Khan, Jawahar).
	{"", "a", "^#", "ɑ"},
	{"", "a", "^_", "ɑ"},
	// Default: the open central vowel. In the proper-name domain most
	// remaining 'a's are the low vowel of romanized names (Ankit,
	// Lakshmi, Patel), not the English TRAP vowel.
	{"", "a", "", "a"},

	// --- B ---
	{"m", "b", "_", ""},
	{"", "bh", "", "bʱ"},
	{"", "bb", "", "b"},
	{"", "b", "", "b"},

	// --- C ---
	{"s", "ch", "", "k"},
	{"", "chh", "", "tʃʰ"},
	{"", "ch", "r", "k"}, // Christina, Christopher
	{"", "ch", "l", "k"}, // Chloe
	{"", "ch", "", "tʃ"},
	{"", "ck", "", "k"},
	{"", "cc", "+", "ks"},
	{"", "cc", "", "k"},
	{"", "c", "+", "s"},
	{"", "c", "", "k"},

	// --- D ---
	{"", "dge", "", "dʒ"},
	{"", "dh", "", "dʱ"},
	{"", "dd", "", "d"},
	{"", "d", "", "d"},

	// --- E ---
	{"_^", "e", "_", "iː"},
	{"", "ee", "", "iː"},
	{"", "ea", "", "iː"},
	{"", "eh", "", "eː"},
	{"", "ei", "", "eː"},
	{"", "eu", "", "ju"},
	{"", "ew", "", "ju"},
	{"", "ey", "_", "i"},
	{"", "er", "_", "ər"},
	{"", "er", "^", "ər"},
	{"", "e", "_", ""},
	{"", "e", "", "ɛ"},

	// --- F ---
	{"", "ff", "", "f"},
	{"", "f", "", "f"},

	// --- G ---
	{"_", "gn", "", "n"},
	{"", "gh", "#", "ɡʱ"},
	{"", "gh", "", ""},
	{"", "gg", "", "ɡ"},
	{"", "ge", "_", "dʒ"},
	{"", "g", "e", "dʒ"},
	{"", "g", "y", "dʒ"},
	{"", "g", "", "ɡ"},

	// --- H ---
	{"", "h", "_", ""},
	{"", "h", "", "h"},

	// --- I ---
	{"", "ie", "_", "i"},
	{"", "igh", "", "aɪ"},
	{"", "ii", "", "iː"},
	{"", "ine", "_", "in"}, // name suffix: Christine, Catherine
	{"", "i", "^e_", "aɪ"},
	{"", "i", "_", "i"},
	{"", "i", "", "ɪ"},

	// --- J ---
	{"", "jh", "", "dʒʱ"},
	{"", "j", "", "dʒ"},

	// --- K ---
	{"_", "kn", "", "n"},
	{"", "kh", "", "kʰ"},
	{"", "kk", "", "k"},
	{"", "k", "", "k"},

	// --- L ---
	{"", "ll", "", "l"},
	{"", "l", "", "l"},

	// --- M ---
	{"_", "mc", "", "mək"},
	{"", "mm", "", "m"},
	{"", "m", "", "m"},

	// --- N ---
	{"", "nn", "", "n"},
	{"", "ngh", "_", "ŋ"},
	{"", "ng", "_", "ŋ"},
	{"", "ng", "", "ŋɡ"},
	{"", "n", "", "n"},

	// --- O ---
	{"", "oo", "", "u"},
	{"", "ohn", "", "ɒn"}, // John, Johnson
	{"", "oh", "", "oː"},
	{"", "ough", "_", "oː"},
	{"", "ou", "", "aʊ"},
	{"", "ow", "_", "oː"},
	{"", "ow", "", "aʊ"},
	{"", "oy", "", "ɔɪ"},
	{"", "oa", "", "oː"},
	{"", "or", "_", "ɔr"},
	{"", "or", "^", "ɔr"},
	{"", "o", "^e_", "oː"},
	{"", "o", "_", "oː"},
	{"", "o", "", "ɒ"},

	// --- P ---
	{"", "ph", "", "f"},
	{"", "pp", "", "p"},
	{"", "p", "", "p"},

	// --- Q ---
	{"", "qu", "", "kw"},
	{"", "q", "", "k"},

	// --- R ---
	{"", "rr", "", "r"},
	{"", "rh", "", "r"},
	{"", "r", "", "r"},

	// --- S ---
	{"", "sh", "", "ʃ"},
	{"", "ssion", "", "ʃən"},
	{"", "sion", "", "ʃən"},
	{"", "son", "_", "sən"}, // patronymic suffix: Johnson, Anderson
	{"", "ss", "", "s"},
	{"#", "s", "#", "z"},
	{"", "s", "", "s"},

	// --- T ---
	{"", "tion", "", "ʃən"},
	{"", "tch", "", "tʃ"},
	{"", "th", "", "θ"},
	{"", "tt", "", "t"},
	{"", "t", "", "t"},

	// --- U ---
	{"_", "u", "ni", "ju"},
	{"", "u", "^e_", "u"},
	{"", "u", "_", "u"},
	{"", "u", "r", "ʊ"},
	// Open syllable: the full back vowel, as in romanized names
	// (Sukumar, Ahuja, Suman).
	{"", "u", "^#", "u"},
	{"", "u", "", "ə"},

	// --- V ---
	{"", "v", "", "v"},

	// --- W ---
	{"_", "wr", "", "r"},
	{"", "wh", "", "w"},
	{"", "w", "", "w"},

	// --- X ---
	{"_", "x", "", "z"},
	{"", "x", "", "ks"},

	// --- Y ---
	{"_", "y", "", "j"},
	{"", "y", "_", "i"},
	{"", "y", "^e_", "aɪ"},
	{"", "y", "", "ɪ"},

	// --- Z ---
	{"", "zh", "", "ʒ"},
	{"", "zz", "", "z"},
	{"", "z", "", "z"},
}
