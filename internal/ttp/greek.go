package ttp

import (
	"strings"

	"lexequal/internal/script"
)

// NewGreek returns the Modern Greek Text-To-Phoneme converter. Greek
// orthography is nearly regular once the vowel digraphs and the
// voiced-stop digraphs (μπ, ντ, γκ) are handled, which a contextual
// rule table captures directly.
func NewGreek() Converter {
	return newRuleEngine(script.Greek, greekClasses, greekPrep, greekRules)
}

var greekClasses = &classes{
	vowel:     set("αεηιουω"),
	consonant: set("βγδζθκλμνξπρστφχψ"),
	voiced:    set("βγδζλμνρ"),
	sibilant:  set("σζξψ"),
	coronal:   set("τσρδλζν"),
	front:     set("ειη"),
}

// greekPrep lowercases, folds the final sigma, and strips the tonos and
// dialytika accents so the rule table sees bare letters.
func greekPrep(s string) string {
	s = strings.ToLower(s)
	var b strings.Builder
	for _, r := range s {
		if f, ok := greekFold[r]; ok {
			b.WriteRune(f)
		} else {
			b.WriteRune(r)
		}
	}
	return b.String()
}

var greekFold = map[rune]rune{
	'ς': 'σ',
	'ά': 'α', 'έ': 'ε', 'ή': 'η', 'ί': 'ι', 'ό': 'ο', 'ύ': 'υ', 'ώ': 'ω',
	'ϊ': 'ι', 'ϋ': 'υ', 'ΐ': 'ι', 'ΰ': 'υ',
}

var greekRules = []rule{
	// Vowel digraphs.
	{"", "ου", "", "u"},
	{"", "αι", "", "e"},
	{"", "ει", "", "i"},
	{"", "οι", "", "i"},
	{"", "υι", "", "i"},
	// αυ/ευ: [av]/[ev] before voiced sounds and vowels, [af]/[ef] else.
	{"", "αυ", ".", "av"},
	{"", "αυ", "#", "av"},
	{"", "αυ", "", "af"},
	{"", "ευ", ".", "ɛv"},
	{"", "ευ", "#", "ɛv"},
	{"", "ευ", "", "ɛf"},
	// Voiced-stop digraphs.
	{"_", "μπ", "", "b"},
	{"", "μπ", "", "mb"},
	{"_", "ντ", "", "d"},
	{"", "ντ", "", "nd"},
	{"_", "γκ", "", "ɡ"},
	{"", "γκ", "", "ŋɡ"},
	{"", "γγ", "", "ŋɡ"},
	{"", "γχ", "", "ŋx"},
	// Affricate digraphs.
	{"", "τζ", "", "dz"},
	{"", "τσ", "", "ts"},
	// γι + vowel: the iota is a glide (Γιαννης -> jannis).
	{"", "γι", "#", "j"},
	// γ: palatal before front vowels, velar fricative otherwise.
	{"", "γ", "+", "j"},
	{"", "γ", "", "ɣ"},
	// σ voices before voiced consonants.
	{"", "σ", ".", "z"},
	{"", "σ", "", "s"},
	// χ: palatal before front vowels, velar otherwise.
	{"", "χ", "+", "ç"},
	{"", "χ", "", "x"},
	// Simple vowels.
	{"", "α", "", "a"},
	{"", "ε", "", "ɛ"},
	{"", "η", "", "i"},
	{"", "ι", "", "i"},
	{"", "ο", "", "o"},
	{"", "υ", "", "i"},
	{"", "ω", "", "o"},
	// Simple consonants.
	{"", "β", "", "v"},
	{"", "δ", "", "ð"},
	{"", "ζ", "", "z"},
	{"", "θ", "", "θ"},
	{"", "κ", "", "k"},
	{"", "λ", "", "l"},
	{"", "μ", "", "m"},
	{"", "ν", "", "n"},
	{"", "ξ", "", "ks"},
	{"", "π", "", "p"},
	{"", "ρ", "", "r"},
	{"", "τ", "", "t"},
	{"", "φ", "", "f"},
	{"", "ψ", "", "ps"},
}
