package ttp

import (
	"testing"

	"lexequal/internal/script"
)

func BenchmarkConvert(b *testing.B) {
	reg := Default()
	cases := []struct {
		lang script.Language
		text string
	}{
		{script.English, "Jawaharlal"},
		{script.Hindi, "जवाहरलाल"},
		{script.Tamil, "ஜவஹர்லால்"},
		{script.Greek, "Παπαδοπουλος"},
		{script.Spanish, "Guillermo"},
		{script.French, "François"},
	}
	for _, c := range cases {
		b.Run(string(c.lang), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := reg.Convert(c.text, c.lang); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
