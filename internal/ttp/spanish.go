package ttp

import (
	"strings"

	"lexequal/internal/script"
)

// NewSpanish returns the Spanish Text-To-Phoneme converter (Latin
// American seseo variety: c/z before front vowels yield s). Spanish
// orthography is regular enough that a modest rule table is essentially
// complete.
func NewSpanish() Converter {
	return newRuleEngine(script.Spanish, spanishClasses, spanishPrep, spanishRules)
}

var spanishClasses = &classes{
	vowel:     set("aeiouáéíóúü"),
	consonant: set("bcdfghjklmnñpqrstvwxyz"),
	voiced:    set("bdvgjlmnñrwz"),
	sibilant:  set("szcjx"),
	coronal:   set("tsrdlzn"),
	front:     set("eiéí"),
}

func spanishPrep(s string) string { return strings.ToLower(s) }

var spanishRules = []rule{
	// Digraphs.
	{"", "ch", "", "tʃ"},
	{"", "ll", "", "ʎ"},
	{"", "rr", "", "r"},
	{"", "qu", "", "k"},
	{"", "gü", "", "ɡw"},
	{"", "gu", "+", "ɡ"},
	// ñ.
	{"", "ñ", "", "ɲ"},
	// c: soft before front vowels.
	{"", "c", "+", "s"},
	{"", "c", "", "k"},
	// g: velar fricative before front vowels.
	{"", "g", "+", "x"},
	{"", "g", "", "ɡ"},
	// j is always [x]; h is silent; z is seseo [s]; v merges with b.
	{"", "j", "", "x"},
	{"", "h", "", ""},
	{"", "z", "", "s"},
	{"", "v", "", "b"},
	{"", "x", "", "ks"},
	// y: vowel finally, palatal glide otherwise.
	{"", "y", "_", "i"},
	{"", "y", "", "j"},
	// r: trill word-initially and after l/n/s, tap otherwise.
	{"_", "r", "", "r"},
	{"l", "r", "", "r"},
	{"n", "r", "", "r"},
	{"s", "r", "", "r"},
	{"", "r", "", "ɾ"},
	// Vowels (accents mark stress only — quality is unchanged).
	{"", "a", "", "a"}, {"", "á", "", "a"},
	{"", "e", "", "e"}, {"", "é", "", "e"},
	{"", "i", "", "i"}, {"", "í", "", "i"},
	{"", "o", "", "o"}, {"", "ó", "", "o"},
	{"", "u", "", "u"}, {"", "ú", "", "u"}, {"", "ü", "", "u"},
	// Plain consonants.
	{"", "b", "", "b"},
	{"", "d", "", "d"},
	{"", "f", "", "f"},
	{"", "k", "", "k"},
	{"", "l", "", "l"},
	{"", "m", "", "m"},
	{"", "n", "", "n"},
	{"", "p", "", "p"},
	{"", "s", "", "s"},
	{"", "t", "", "t"},
	{"", "w", "", "w"},
}
