package ttp

import (
	"fmt"

	"lexequal/internal/phoneme"
	"lexequal/internal/script"
)

// NewTamil returns the Tamil Text-To-Phoneme converter. Tamil script is
// phonetic but deliberately under-specified: a single stop letter stands
// for both the voiced and voiceless (and aspirated) sounds, with the
// realization determined by position — voiceless word-initially and when
// geminated, voiced after a nasal and between vowels. The converter
// implements that allophony, which is precisely the phoneme-set mismatch
// the paper's experiments exercise (the paper hand-converted its Tamil
// strings "assuming phonetic nature of the Tamil language").
func NewTamil() Converter {
	return &tamilConverter{}
}

type tamilConverter struct{}

// Language implements Converter.
func (t *tamilConverter) Language() script.Language { return script.Tamil }

// tamilStop describes the contextual realizations of one stop letter.
type tamilStop struct {
	voiceless phoneme.String // word-initial / geminate realization
	voiced    phoneme.String // post-nasal realization
	medial    phoneme.String // intervocalic realization
}

var (
	tamilStops      map[rune]tamilStop
	tamilSonorants  map[rune]phoneme.String // nasals, liquids, glides, grantha
	tamilIndepVowel map[rune]phoneme.String
	tamilMatra      map[rune]phoneme.String
)

const (
	tamilPulli  = '்'
	tamilAytham = 'ஃ'
)

func init() {
	p := phoneme.MustParse
	tamilStops = map[rune]tamilStop{
		'க': {p("k"), p("ɡ"), p("ɡ")},
		'ச': {p("tʃ"), p("dʒ"), p("s")}, // intervocalic ச is [s]
		'ட': {p("ʈ"), p("ɖ"), p("ɖ")},
		'த': {p("t̪"), p("d̪"), p("d̪")},
		'ப': {p("p"), p("b"), p("b")},
		'ற': {p("r"), p("r"), p("r")}, // ற்ற = ttr historically; modern trill
	}
	one := func(m map[string]string) map[rune]phoneme.String {
		out := make(map[rune]phoneme.String, len(m))
		for k, v := range m {
			rs := []rune(k)
			if len(rs) != 1 {
				panic("ttp: tamil table key must be one rune: " + k)
			}
			out[rs[0]] = phoneme.MustParse(v)
		}
		return out
	}
	tamilSonorants = one(map[string]string{
		"ங": "ŋ", "ஞ": "ɲ", "ண": "ɳ", "ந": "n", "ன": "n", "ம": "m",
		"ய": "j", "ர": "ɾ", "ல": "l", "ள": "ɭ", "ழ": "ɻ", "வ": "ʋ",
		// Grantha letters for loan sounds.
		"ஜ": "dʒ", "ஷ": "ʂ", "ஸ": "s", "ஹ": "ɦ",
	})
	tamilIndepVowel = one(map[string]string{
		"அ": "a", "ஆ": "aː", "இ": "i", "ஈ": "iː", "உ": "u", "ஊ": "uː",
		"எ": "e", "ஏ": "eː", "ஐ": "ai", "ஒ": "o", "ஓ": "oː", "ஔ": "au",
	})
	tamilMatra = one(map[string]string{
		"ா": "aː", "ி": "i", "ீ": "iː", "ு": "u", "ூ": "uː",
		"ெ": "e", "ே": "eː", "ை": "ai", "ொ": "o", "ோ": "oː", "ௌ": "au",
	})
}

// tamilUnit is one orthographic unit: a consonant letter with either a
// vowel (inherent or matra) or a pulli, or a bare vowel letter.
type tamilUnit struct {
	cons  rune           // 0 when the unit is a bare vowel
	vowel phoneme.String // nil when the consonant carries a pulli
}

// Convert implements Converter.
func (t *tamilConverter) Convert(text string) (phoneme.String, error) {
	var out phoneme.String
	word := make([]rune, 0, 32)
	sawLetter := false
	flush := func() {
		if len(word) > 0 {
			out = append(out, convertTamilWord(word)...)
			word = word[:0]
		}
	}
	for _, r := range text {
		if isTamilRune(r) {
			word = append(word, r)
			sawLetter = true
		} else {
			flush()
		}
	}
	flush()
	if !sawLetter {
		return nil, fmt.Errorf("ttp: tamil converter: no tamil characters in %q", text)
	}
	return out, nil
}

func isTamilRune(r rune) bool { return r >= 0x0B80 && r <= 0x0BFF }

func convertTamilWord(w []rune) phoneme.String {
	// Pass 1: group into orthographic units.
	var units []tamilUnit
	inherent := phoneme.MustParse("a")
	for i := 0; i < len(w); i++ {
		r := w[i]
		if _, isStop := tamilStops[r]; isStop {
			units = append(units, tamilUnit{cons: r, vowel: inherent})
			continue
		}
		if _, isSon := tamilSonorants[r]; isSon {
			units = append(units, tamilUnit{cons: r, vowel: inherent})
			continue
		}
		if v, ok := tamilIndepVowel[r]; ok {
			units = append(units, tamilUnit{vowel: v})
			continue
		}
		if v, ok := tamilMatra[r]; ok {
			if len(units) > 0 && units[len(units)-1].cons != 0 {
				units[len(units)-1].vowel = v
			}
			continue
		}
		if r == tamilPulli {
			if len(units) > 0 && units[len(units)-1].cons != 0 {
				units[len(units)-1].vowel = nil
			}
			continue
		}
		// Aytham and anything else: skipped (ஃ only occurs in loan
		// digraphs like ஃப for f, which we approximate as p + f-less).
	}

	// Pass 2: emit phonemes with positional voicing for stops.
	var out phoneme.String
	prevVowel := false // previous emitted phoneme is a vowel
	prevNasal := false
	for i, u := range units {
		if u.cons == 0 {
			out = append(out, u.vowel...)
			prevVowel, prevNasal = true, false
			continue
		}
		if st, isStop := tamilStops[u.cons]; isStop {
			geminate := i+1 < len(units) && units[i+1].cons == u.cons && u.vowel == nil
			var ph phoneme.String
			switch {
			case geminate:
				// First half of a geminate: the pair degeminates to one
				// voiceless stop, emitted by the second half.
				ph = nil
			case i == 0:
				ph = st.voiceless
			case units[i-1].cons == u.cons && units[i-1].vowel == nil:
				// Second half of a geminate: voiceless.
				ph = st.voiceless
			case prevNasal:
				ph = st.voiced
			case u.vowel == nil:
				// Syllable coda (pulli before a different consonant).
				ph = st.voiceless
			case prevVowel:
				ph = st.medial
			default:
				ph = st.voiceless
			}
			out = append(out, ph...)
			if len(ph) > 0 {
				prevVowel, prevNasal = false, false
			}
		} else {
			ph := tamilSonorants[u.cons]
			out = append(out, ph...)
			f := ph[len(ph)-1].Features()
			prevNasal = f.Manner == phoneme.Nasal
			prevVowel = false
		}
		if u.vowel != nil {
			out = append(out, u.vowel...)
			prevVowel, prevNasal = true, false
		}
	}
	return out
}
