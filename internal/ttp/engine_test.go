package ttp

import (
	"testing"

	"lexequal/internal/script"
)

// miniEngine builds a tiny rule table over a toy alphabet to exercise
// each context-pattern class in isolation.
func miniEngine(table []rule) *ruleEngine {
	cls := &classes{
		vowel:     set("aeiou"),
		consonant: set("bcdfgklmnprstvz"),
		voiced:    set("bdgvznmlr"),
		sibilant:  set("sz"),
		coronal:   set("tdsznlr"),
		front:     set("ei"),
	}
	return newRuleEngine(script.English, cls, func(s string) string { return s }, table)
}

func out(t *testing.T, e *ruleEngine, in string) string {
	t.Helper()
	p, err := e.Convert(in)
	if err != nil {
		t.Fatalf("Convert(%q): %v", in, err)
	}
	return p.IPA()
}

func TestEngineWordBoundaryContexts(t *testing.T) {
	e := miniEngine([]rule{
		{"_", "k", "", "ɡ"}, // word-initial k -> ɡ
		{"", "k", "_", "x"}, // word-final k -> x
		{"", "k", "", "k"},  // otherwise k
		{"", "a", "", "a"},
	})
	if got := out(t, e, "kakak"); got != "ɡakax" {
		t.Errorf("boundary contexts: %q", got)
	}
	// Boundaries reset between words.
	if got := out(t, e, "ka ka"); got != "ɡaɡa" {
		t.Errorf("multi-word boundaries: %q", got)
	}
}

func TestEngineVowelAndConsonantClasses(t *testing.T) {
	e := miniEngine([]rule{
		{"#", "t", "", "d"},  // t after one-or-more vowels -> d
		{"", "t", "#", "tʰ"}, // t before vowels -> tʰ (lower priority)
		{"", "t", "", "t"},
		{"", "s", ":a", "z"}, // s before (any consonants)+a -> z
		{"", "s", "", "s"},
		{"", "a", "", "a"}, {"", "k", "", "k"},
	})
	if got := out(t, e, "ta"); got != "tʰa" {
		t.Errorf("t before vowel: %q", got)
	}
	if got := out(t, e, "at"); got != "ad" {
		t.Errorf("t after vowel: %q", got)
	}
	// ':' matches zero consonants...
	if got := out(t, e, "sa"); got != "za" {
		t.Errorf("s with zero-consonant gap: %q", got)
	}
	// ...and several.
	if got := out(t, e, "skka"); got != "zkka" {
		t.Errorf("s with consonant run: %q", got)
	}
	// No following a: plain s.
	if got := out(t, e, "sk"); got != "sk" {
		t.Errorf("s without a: %q", got)
	}
}

func TestEngineSingleCharClasses(t *testing.T) {
	e := miniEngine([]rule{
		{"", "n", "^", "m"}, // n before exactly one consonant... (then anything)
		{"", "n", "", "n"},
		{".", "p", "", "b"}, // p after a voiced consonant -> b
		{"", "p", "", "p"},
		{"&", "t", "", "d"}, // t after a sibilant -> d
		{"", "t", "", "t"},
		{"", "r", "+", "rj"}, // r before a front vowel (e/i)
		{"", "r", "", "r"},
		{"", "a", "", "a"}, {"", "e", "", "e"}, {"", "k", "", "k"},
		{"", "b", "", "b"}, {"", "s", "", "s"},
	})
	if got := out(t, e, "nk"); got != "mk" {
		t.Errorf("^ class: %q", got)
	}
	if got := out(t, e, "na"); got != "na" {
		t.Errorf("^ class negative: %q", got)
	}
	if got := out(t, e, "bpa"); got != "bba" {
		t.Errorf(". class: %q", got)
	}
	if got := out(t, e, "kpa"); got != "kpa" {
		t.Errorf(". class negative: %q", got)
	}
	if got := out(t, e, "sta"); got != "sda" {
		t.Errorf("& class: %q", got)
	}
	if got := out(t, e, "re"); got != "rje" {
		t.Errorf("+ class: %q", got)
	}
	if got := out(t, e, "ra"); got != "ra" {
		t.Errorf("+ class negative: %q", got)
	}
}

func TestEngineSuffixClass(t *testing.T) {
	e := miniEngine([]rule{
		{"", "t", "%", "d"}, // t before a suffix (e, er, es, ed, ing, ely)
		{"", "t", "", "t"},
		{"", "a", "", "a"}, {"", "e", "", "e"}, {"", "r", "", "r"},
		{"", "i", "", "i"}, {"", "n", "", "n"}, {"", "g", "", "ɡ"},
		{"", "s", "", "s"},
	})
	for in, want := range map[string]string{
		"te":   "de",
		"ter":  "der",
		"ting": "dinɡ",
		"ta":   "ta",
	} {
		if got := out(t, e, in); got != want {
			t.Errorf("%q -> %q, want %q", in, got, want)
		}
	}
}

func TestEngineFirstMatchWinsAndSilence(t *testing.T) {
	e := miniEngine([]rule{
		{"", "kk", "", "k"}, // longer literal listed first wins
		{"", "k", "", "ɡ"},
		{"", "a", "", "a"},
		// no rule for 'z': silent
	})
	if got := out(t, e, "kka"); got != "ka" {
		t.Errorf("longest literal: %q", got)
	}
	if got := out(t, e, "kazka"); got != "ɡaɡa" {
		t.Errorf("silent letter handling: %q", got)
	}
}

func TestEngineUntranscribableInput(t *testing.T) {
	e := miniEngine([]rule{{"", "a", "", "a"}})
	if _, err := e.Convert("1234"); err == nil {
		t.Error("pure non-letters accepted")
	}
	p, err := e.Convert("")
	if err != nil || len(p) != 0 {
		t.Errorf("empty input: %v, %v", p, err)
	}
}

func TestEnginePanicsOnEmptyMatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("empty-match rule accepted")
		}
	}()
	miniEngine([]rule{{"", "", "", "a"}})
}
