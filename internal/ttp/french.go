package ttp

import (
	"strings"

	"lexequal/internal/script"
)

// NewFrench returns the French Text-To-Phoneme converter. French
// orthography is the least regular of the Latin-script languages here;
// the rule table covers the productive patterns that matter for proper
// names — vowel digraphs (eau, ou, oi, ai, eu), nasal vowels, soft c/g,
// silent final consonants and the silent final e.
func NewFrench() Converter {
	return newRuleEngine(script.French, frenchClasses, frenchPrep, frenchRules)
}

var frenchClasses = &classes{
	vowel:     set("aeiouyàâäéèêëîïôöùûüœ"),
	consonant: set("bcçdfghjklmnpqrstvwxz"),
	voiced:    set("bdvgjlmnrwz"),
	sibilant:  set("szcjxç"),
	coronal:   set("tsrdlzn"),
	front:     set("eiyéèêë"),
}

func frenchPrep(s string) string { return strings.ToLower(s) }

var frenchRules = []rule{
	// --- Vowel digraphs/trigraphs ---
	{"", "eaux", "_", "o"},
	{"", "eau", "", "o"},
	{"", "aux", "_", "o"},
	{"", "au", "", "o"},
	{"", "oeu", "", "œ"},
	{"", "œu", "", "œ"},
	{"", "œ", "", "œ"},
	{"", "oin", "_", "wɛ̃"},
	{"", "oin", "^", "wɛ̃"},
	{"", "oi", "", "wa"},
	{"", "oî", "", "wa"},
	{"", "oy", "#", "waj"},
	{"", "oy", "", "wa"},
	{"", "où", "", "u"},
	{"", "oû", "", "u"},
	{"", "ou", "", "u"},
	// ain/aim/ein: nasal [ɛ̃] before consonant or end.
	{"", "ain", "_", "ɛ̃"},
	{"", "ain", "^", "ɛ̃"},
	{"", "aim", "_", "ɛ̃"},
	{"", "ein", "_", "ɛ̃"},
	{"", "ein", "^", "ɛ̃"},
	{"", "ai", "", "ɛ"},
	{"", "aî", "", "ɛ"},
	{"", "ay", "_", "ɛ"},
	{"", "ei", "", "ɛ"},
	{"", "eu", "", "ø"},
	// --- Nasal vowels (vowel + n/m before consonant or end) ---
	{"", "ann", "", "an"},
	{"", "amm", "", "am"},
	{"", "an", "_", "ɑ̃"},
	{"", "an", "^", "ɑ̃"},
	{"", "am", "^", "ɑ̃"},
	{"", "enn", "", "ɛn"},
	{"", "emm", "", "ɛm"},
	{"", "ean", "_", "ɑ̃"}, // Jean
	{"", "ean", "^", "ɑ̃"},
	{"", "ien", "_", "jɛ̃"},
	{"", "ien", "^", "jɛ̃"},
	{"", "en", "_", "ɑ̃"},
	{"", "en", "^", "ɑ̃"},
	{"", "em", "^", "ɑ̃"},
	{"", "inn", "", "in"},
	{"", "imm", "", "im"},
	{"", "in", "_", "ɛ̃"},
	{"", "in", "^", "ɛ̃"},
	{"", "im", "^", "ɛ̃"},
	{"", "onn", "", "ɔn"},
	{"", "omm", "", "ɔm"},
	{"", "on", "_", "ɔ̃"},
	{"", "on", "^", "ɔ̃"},
	{"", "om", "^", "ɔ̃"},
	{"", "un", "_", "œ̃"},
	{"", "un", "^", "œ̃"},
	{"", "um", "^", "œ̃"},
	{"", "yn", "^", "ɛ̃"},
	{"", "ym", "^", "ɛ̃"},
	// --- Glide clusters ---
	{"", "ille", "_", "ij"},
	{"", "ail", "_", "aj"},
	{"", "aill", "", "aj"},
	{"", "eil", "_", "ɛj"},
	{"", "eill", "", "ɛj"},
	// --- Consonant digraphs ---
	{"", "ch", "", "ʃ"},
	{"", "gn", "", "ɲ"},
	{"", "ph", "", "f"},
	{"", "th", "", "t"},
	{"", "qu", "", "k"},
	{"", "gu", "+", "ɡ"},
	// --- Soft/hard c and g ---
	{"", "ç", "", "s"},
	{"", "cc", "+", "ks"},
	{"", "c", "+", "s"},
	{"", "c", "_", "k"},
	{"", "c", "", "k"},
	{"", "g", "+", "ʒ"},
	{"", "g", "_", ""},
	{"", "g", "", "ɡ"},
	{"", "j", "", "ʒ"},
	{"", "h", "", ""},
	// --- s: silent finally, voiced between vowels ---
	{"", "ss", "", "s"},
	{"", "s", "_", ""},
	{"#", "s", "#", "z"},
	{"", "s", "", "s"},
	// --- Silent final consonants ---
	{"", "er", "_", "e"},
	{"", "ez", "_", "e"},
	{"", "et", "_", "ɛ"},
	{"", "t", "_", ""},
	{"", "d", "_", ""},
	{"", "p", "_", ""},
	{"", "x", "_", ""},
	{"", "z", "_", ""},
	{"", "x", "", "ks"},
	// --- r ---
	{"", "rr", "", "ʁ"},
	{"", "r", "", "ʁ"},
	// --- Remaining vowels ---
	{"", "â", "", "ɑ"},
	{"", "à", "", "a"},
	{"", "ä", "", "a"},
	{"", "a", "", "a"},
	{"", "é", "", "e"},
	{"", "è", "", "ɛ"},
	{"", "ê", "", "ɛ"},
	{"", "ë", "", "ɛ"},
	{"_^", "e", "_", "ə"}, // monosyllables: le, de
	{"", "e", "_", ""},    // final e silent
	{"", "e", "^^", "ɛ"},  // e before a consonant cluster is open
	{"", "e", "", "ə"},
	{"", "î", "", "i"},
	{"", "ï", "", "i"},
	{"", "i", "#", "j"}, // i before a vowel glides
	{"", "i", "", "i"},
	{"", "ô", "", "o"},
	{"", "ö", "", "o"},
	{"", "o", "", "ɔ"},
	{"", "û", "", "y"},
	{"", "ù", "", "y"},
	{"", "ü", "", "y"},
	{"", "u", "", "y"},
	{"", "ÿ", "", "i"},
	{"", "y", "#", "j"},
	{"", "y", "", "i"},
	// --- Plain consonants ---
	{"", "bb", "", "b"},
	{"", "b", "", "b"},
	{"", "dd", "", "d"},
	{"", "d", "", "d"},
	{"", "ff", "", "f"},
	{"", "f", "", "f"},
	{"", "k", "", "k"},
	{"", "ll", "", "l"},
	{"", "l", "", "l"},
	{"", "mm", "", "m"},
	{"", "m", "", "m"},
	{"", "nn", "", "n"},
	{"", "n", "", "n"},
	{"", "pp", "", "p"},
	{"", "p", "", "p"},
	{"", "q", "", "k"},
	{"", "tt", "", "t"},
	{"", "t", "", "t"},
	{"", "v", "", "v"},
	{"", "w", "", "v"},
}
