// Package ttp implements Text-To-Phoneme conversion: the linguistic
// resource the LexEQUAL operator depends on to transform a multilingual
// string into its phonemic (IPA) representation (the transform() step of
// Figure 8 in the paper).
//
// The paper integrated third-party converters (ForeignWord for English,
// Dhvani for Hindi, hand conversion for Tamil). This package implements
// equivalent converters from scratch: a contextual rewrite-rule engine
// drives the Latin-script and Greek converters (in the tradition of the
// NRL letter-to-sound rules), while the Indic converters decompose the
// phonetically-spelled orthography directly, applying each language's
// phonology (Hindi schwa deletion, Tamil stop voicing).
//
// Converter output is normalized per the paper's §4.1: suprasegmentals,
// tones and accents are never emitted, so phoneme strings are directly
// comparable across languages.
package ttp

import (
	"fmt"
	"sort"
	"sync"

	"lexequal/internal/phoneme"
	"lexequal/internal/script"
)

// Converter transforms text in one language into its phonemic
// representation. Implementations must be safe for concurrent use.
type Converter interface {
	// Language returns the language this converter understands.
	Language() script.Language
	// Convert returns the phonemic transcription of text. Characters
	// outside the language's writing system are skipped; an error is
	// returned only when nothing could be transcribed from a non-empty
	// input.
	Convert(text string) (phoneme.String, error)
}

// Registry maps languages to converters; it is the S_L set of "languages
// with IPA transformations" from the paper's algorithm. A nil *Registry
// is empty.
type Registry struct {
	mu   sync.RWMutex
	byLn map[script.Language]Converter
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byLn: make(map[script.Language]Converter)}
}

// Register adds (or replaces) the converter for its language.
func (r *Registry) Register(c Converter) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.byLn[c.Language()] = c
}

// Get returns the converter for lang.
func (r *Registry) Get(lang script.Language) (Converter, bool) {
	if r == nil {
		return nil, false
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	c, ok := r.byLn[lang]
	return c, ok
}

// Has reports whether lang has a registered converter (lang ∈ S_L).
func (r *Registry) Has(lang script.Language) bool {
	_, ok := r.Get(lang)
	return ok
}

// Languages lists the registered languages in sorted order.
func (r *Registry) Languages() []script.Language {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]script.Language, 0, len(r.byLn))
	for l := range r.byLn {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Convert transcribes text as lang using the registered converter.
func (r *Registry) Convert(text string, lang script.Language) (phoneme.String, error) {
	c, ok := r.Get(lang)
	if !ok {
		return nil, &NoResourceError{Lang: lang}
	}
	return c.Convert(text)
}

// NoResourceError reports that no TTP resource exists for a language —
// the NORESOURCE outcome of the paper's algorithm.
type NoResourceError struct {
	Lang script.Language
}

func (e *NoResourceError) Error() string {
	return fmt.Sprintf("ttp: no text-to-phoneme resource for language %q", e.Lang)
}

// Default returns a registry with all six built-in converters
// (English, Hindi, Tamil, Greek, Spanish, French) registered.
func Default() *Registry {
	r := NewRegistry()
	r.Register(NewEnglish())
	r.Register(NewHindi())
	r.Register(NewTamil())
	r.Register(NewGreek())
	r.Register(NewSpanish())
	r.Register(NewFrench())
	return r
}
