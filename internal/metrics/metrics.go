// Package metrics implements the match-quality methodology of the
// paper's §4.2: every phonemic string is matched against every other,
// a match is correct iff the tag numbers agree, and
//
//	Recall    = m1 / Σ C(n_i, 2)
//	Precision = m1 / m2
//
// where m1 counts correct reported matches and m2 all reported matches.
// The evaluator computes each pair's distance ratio once per cost model
// and then derives the full threshold sweep from the sorted ratios, so
// regenerating Figures 11 and 12 costs one all-pairs pass per ICSC
// value.
package metrics

import (
	"fmt"
	"math"
	"sort"

	"lexequal/internal/core"
	"lexequal/internal/dataset"
	"lexequal/internal/editdist"
	"lexequal/internal/phoneme"
	"lexequal/internal/ttp"
)

// QualityPoint is one (threshold, cost) evaluation.
type QualityPoint struct {
	Threshold float64
	ICSC      float64
	Recall    float64
	Precision float64
	Correct   int // m1
	Reported  int // m2
	Ideal     int // Σ C(n_i, 2)
}

// Distance from the perfect-match corner (recall 1, precision 1); the
// paper picks operating parameters by proximity to that corner.
func (p QualityPoint) CornerDistance() float64 {
	dr := 1 - p.Recall
	dp := 1 - p.Precision
	return math.Sqrt(dr*dr + dp*dp)
}

// Evaluator holds the phonemized lexicon and per-pair ground truth.
type Evaluator struct {
	phon    []phoneme.String
	tags    []int
	minLen  []int
	ideal   int
	entries int
}

// NewEvaluator phonemizes every lexicon entry once.
func NewEvaluator(lex *dataset.Lexicon, reg *ttp.Registry) (*Evaluator, error) {
	if reg == nil {
		reg = ttp.Default()
	}
	ev := &Evaluator{ideal: lex.IdealMatches(), entries: len(lex.Entries)}
	for _, e := range lex.Entries {
		p, err := reg.Convert(e.Text.Value, e.Text.Lang)
		if err != nil {
			return nil, fmt.Errorf("metrics: transform %s: %w", e.Text, err)
		}
		if len(p) == 0 {
			return nil, fmt.Errorf("metrics: empty phoneme string for %s", e.Text)
		}
		ev.phon = append(ev.phon, p)
		ev.tags = append(ev.tags, e.Tag)
	}
	return ev, nil
}

// Entries returns the number of lexicon strings.
func (ev *Evaluator) Entries() int { return ev.entries }

// Ideal returns Σ C(n_i, 2).
func (ev *Evaluator) Ideal() int { return ev.ideal }

// pairRatio is one pair's normalized distance and ground truth.
type pairRatio struct {
	ratio   float64 // editdistance / min(|a|,|b|)
	correct bool    // tags equal
}

// ratios computes every pair's distance ratio under the cost model.
// maxRatio bounds the DP (ratios above it are recorded as +inf — they
// can never match at thresholds ≤ maxRatio, which is all we sweep).
func (ev *Evaluator) ratios(cm editdist.CostModel, maxRatio float64) []pairRatio {
	n := len(ev.phon)
	out := make([]pairRatio, 0, n*(n-1)/2)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			a, b := ev.phon[i], ev.phon[j]
			minLen := len(a)
			if len(b) < minLen {
				minLen = len(b)
			}
			bound := maxRatio * float64(minLen)
			d, ok := editdist.DistanceBounded(a, b, cm, bound)
			r := math.Inf(1)
			if ok {
				r = d / float64(minLen)
			}
			out = append(out, pairRatio{ratio: r, correct: ev.tags[i] == ev.tags[j]})
		}
	}
	return out
}

// Sweep evaluates recall/precision at each threshold for one clustered
// cost model (identified by its ICSC for reporting). Thresholds must be
// ascending; the underlying all-pairs distances are computed once.
func (ev *Evaluator) Sweep(cm editdist.CostModel, icsc float64, thresholds []float64) []QualityPoint {
	if len(thresholds) == 0 {
		return nil
	}
	maxThr := thresholds[len(thresholds)-1]
	rs := ev.ratios(cm, maxThr)
	sort.Slice(rs, func(i, j int) bool { return rs[i].ratio < rs[j].ratio })
	points := make([]QualityPoint, 0, len(thresholds))
	idx, m1, m2 := 0, 0, 0
	for _, thr := range thresholds {
		for idx < len(rs) && rs[idx].ratio <= thr {
			m2++
			if rs[idx].correct {
				m1++
			}
			idx++
		}
		p := QualityPoint{Threshold: thr, ICSC: icsc, Correct: m1, Reported: m2, Ideal: ev.ideal}
		if ev.ideal > 0 {
			p.Recall = float64(m1) / float64(ev.ideal)
		}
		if m2 > 0 {
			p.Precision = float64(m1) / float64(m2)
		} else {
			p.Precision = 1 // vacuous precision at thresholds reporting nothing
		}
		points = append(points, p)
	}
	return points
}

// SweepClustered runs Sweep for a clustered cost model built from the
// given partition/ICSC/weak-indel parameters.
func (ev *Evaluator) SweepClustered(clusters *phoneme.Clusters, icsc, weakIndel float64, thresholds []float64) ([]QualityPoint, error) {
	cm, err := editdist.NewClusteredWeak(clusters, icsc, weakIndel)
	if err != nil {
		return nil, err
	}
	return ev.Sweep(cm, icsc, thresholds), nil
}

// Grid evaluates the full (ICSC × threshold) grid of Figures 11 and 12:
// one row of QualityPoints per ICSC value.
func (ev *Evaluator) Grid(clusters *phoneme.Clusters, weakIndel float64, icscs, thresholds []float64) ([][]QualityPoint, error) {
	out := make([][]QualityPoint, 0, len(icscs))
	for _, icsc := range icscs {
		points, err := ev.SweepClustered(clusters, icsc, weakIndel, thresholds)
		if err != nil {
			return nil, err
		}
		out = append(out, points)
	}
	return out, nil
}

// Best returns the grid point closest to the perfect-match corner — the
// paper's §4.3 parameter-selection rule ("the closest points on the
// precision-recall graphs to the top-right corner").
func Best(grid [][]QualityPoint) QualityPoint {
	best := QualityPoint{Recall: 0, Precision: 0, Threshold: math.NaN(), ICSC: math.NaN()}
	bestD := math.Inf(1)
	for _, row := range grid {
		for _, p := range row {
			if d := p.CornerDistance(); d < bestD {
				bestD = d
				best = p
			}
		}
	}
	return best
}

// SuggestParameters implements the paper's future-work item of
// automatically deriving matching parameters from a tagged training
// set: it grid-searches ICSC and threshold on the lexicon and returns
// the corner-closest operating point.
func SuggestParameters(lex *dataset.Lexicon, reg *ttp.Registry, clusters *phoneme.Clusters) (QualityPoint, error) {
	ev, err := NewEvaluator(lex, reg)
	if err != nil {
		return QualityPoint{}, err
	}
	icscs := []float64{0, 0.125, 0.25, 0.375, 0.5, 0.75, 1}
	thresholds := []float64{0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.35, 0.4, 0.45, 0.5}
	grid, err := ev.Grid(clusters, core.DefaultWeakIndel, icscs, thresholds)
	if err != nil {
		return QualityPoint{}, err
	}
	return Best(grid), nil
}
