package metrics

import (
	"fmt"
	"sync/atomic"

	"lexequal/internal/core"
)

// PipelineCounters accumulates per-stage execution counters across
// queries: rows probed, candidates admitted to DP verification, rows
// pruned by the length and count filters, DP cells evaluated, matches
// reported, and q-gram signature-cache hits. All fields are atomics so
// morsel workers and concurrent sessions can record without a lock.
type PipelineCounters struct {
	Queries      atomic.Int64
	Rows         atomic.Int64
	Candidates   atomic.Int64
	PrunedLength atomic.Int64
	PrunedCount  atomic.Int64
	DPCells      atomic.Int64
	Matches      atomic.Int64
	SigCacheHits atomic.Int64
}

// Record folds one strategy execution's Stats into the counters.
func (pc *PipelineCounters) Record(st core.Stats) {
	pc.Queries.Add(1)
	pc.Rows.Add(int64(st.Rows))
	pc.Candidates.Add(int64(st.Candidates))
	pc.PrunedLength.Add(int64(st.PrunedLength))
	pc.PrunedCount.Add(int64(st.PrunedCount))
	pc.DPCells.Add(st.DPCells)
	pc.Matches.Add(int64(st.Matches))
	pc.SigCacheHits.Add(int64(st.SigCacheHits))
}

// Reset zeroes every counter.
func (pc *PipelineCounters) Reset() {
	pc.Queries.Store(0)
	pc.Rows.Store(0)
	pc.Candidates.Store(0)
	pc.PrunedLength.Store(0)
	pc.PrunedCount.Store(0)
	pc.DPCells.Store(0)
	pc.Matches.Store(0)
	pc.SigCacheHits.Store(0)
}

// PipelineSnapshot is a point-in-time copy of the counters, safe to
// compare and render.
type PipelineSnapshot struct {
	Queries      int64
	Rows         int64
	Candidates   int64
	PrunedLength int64
	PrunedCount  int64
	DPCells      int64
	Matches      int64
	SigCacheHits int64
}

// Snapshot copies the current counter values.
func (pc *PipelineCounters) Snapshot() PipelineSnapshot {
	return PipelineSnapshot{
		Queries:      pc.Queries.Load(),
		Rows:         pc.Rows.Load(),
		Candidates:   pc.Candidates.Load(),
		PrunedLength: pc.PrunedLength.Load(),
		PrunedCount:  pc.PrunedCount.Load(),
		DPCells:      pc.DPCells.Load(),
		Matches:      pc.Matches.Load(),
		SigCacheHits: pc.SigCacheHits.Load(),
	}
}

// PruneRate is the fraction of probed rows eliminated before DP
// verification (0 when nothing was probed).
func (s PipelineSnapshot) PruneRate() float64 {
	if s.Rows == 0 {
		return 0
	}
	return float64(s.PrunedLength+s.PrunedCount) / float64(s.Rows)
}

// String renders the snapshot as the one-line summary used by SHOW
// LEXSTATS and the bench tool.
func (s PipelineSnapshot) String() string {
	return fmt.Sprintf(
		"queries=%d rows=%d pruned_length=%d pruned_count=%d candidates=%d dp_cells=%d matches=%d sig_cache_hits=%d",
		s.Queries, s.Rows, s.PrunedLength, s.PrunedCount, s.Candidates, s.DPCells, s.Matches, s.SigCacheHits)
}
